# Tier-1 CI for the Converse reproduction.
#
#   make tier1         vet + build + test (the ROADMAP tier-1 gate)
#   make race          full test suite under the race detector
#   make machine-race  the lock-free machine layer alone under -race
#   make overhead      observability overhead gate: the disabled-path
#                      benchmarks must report zero allocations
#   make bench         comm fast-path benchmarks; writes BENCH_comm.json
#   make net-smoke     multi-process smoke: jacobi + quickstart + commbench
#                      under converserun -np 4 on real TCP sockets
#   make ci            tier1 + race gates + overhead + smokes

GO ?= go

.PHONY: ci tier1 vet build test race machine-race overhead bench commbench-smoke net-smoke

ci: tier1 race machine-race overhead commbench-smoke net-smoke

tier1: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The MPSC inbox ring is the one lock-free structure in the tree; gate
# it separately so a failure names the layer directly.
machine-race:
	$(GO) test -race ./internal/machine/...

# Overhead gate: run the zero-overhead-when-off benchmarks and fail if
# any reports a nonzero allocation count. BenchmarkDispatchOff,
# BenchmarkNullTracerOverhead and BenchmarkMetricsEnabled cover the full
# dispatch path; BenchmarkMetricsDisabled covers the raw hooks.
overhead:
	@out=$$($(GO) test ./internal/core/ -run '^$$' \
		-bench 'DispatchOff|NullTracerOverhead|MetricsEnabled|MetricsDisabled' \
		-benchmem -benchtime 200000x); \
	echo "$$out"; \
	if echo "$$out" | grep -E ' [1-9][0-9]* allocs/op'; then \
		echo 'FAIL: observability path allocates when it must not'; exit 1; \
	fi; \
	echo 'overhead gate: 0 allocs/op on all instrumented paths'

# Full benchmark pass: the core micro-benchmarks, the steady-state
# 0-alloc benchmarks, and the commbench report (BENCH_comm.json).
bench:
	$(GO) test ./internal/core/ -run '^$$' -bench . -benchmem
	$(GO) test ./internal/bench/ -run '^$$' -bench SendAndFreeSteadyState \
		-benchmem -benchtime 20000x
	$(GO) run ./cmd/commbench -o BENCH_comm.json

# CI smoke: a fast deterministic commbench run proving the tool and the
# fan-in/ping-pong harness work end to end (no wall-clock benchmarks).
commbench-smoke:
	$(GO) run ./cmd/commbench -smoke -o /dev/null

# Multi-process smoke: real programs as converserun jobs, each rank an
# OS process on the TCP machine layer, with a hard timeout so a
# distributed hang fails CI instead of wedging it. The example binaries
# run unmodified — the same sources `go run` executes in-process.
net-smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) build -o $$tmp/converserun ./cmd/converserun && \
	$(GO) build -o $$tmp/jacobi ./examples/jacobi && \
	$(GO) build -o $$tmp/quickstart ./examples/quickstart && \
	$(GO) build -o $$tmp/commbench ./cmd/commbench && \
	$$tmp/converserun -np 4 -timeout 120s $$tmp/jacobi && \
	$$tmp/converserun -np 4 -timeout 120s $$tmp/quickstart && \
	$$tmp/commbench -transport tcp -pes 4 -smoke -o /dev/null && \
	echo 'net-smoke: jacobi + quickstart + commbench ok under converserun -np 4'
