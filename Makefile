# Tier-1 CI for the Converse reproduction.
#
#   make tier1         vet + build + test (the ROADMAP tier-1 gate)
#   make race          full test suite under the race detector
#   make machine-race  the lock-free machine layer alone under -race
#   make overhead      observability overhead gate: the disabled-path
#                      benchmarks must report zero allocations
#   make bench         comm fast-path benchmarks; writes BENCH_comm.json
#   make net-smoke     multi-process smoke: jacobi + quickstart + commbench
#                      under converserun -np 4 on real TCP sockets
#   make chaos-smoke   reliability gate: jacobi under a fault plan must
#                      converge byte-identically with the retry policy,
#                      and die fast under failfast
#   make bench-faults  throughput-vs-loss sweep; writes BENCH_faults.json
#   make bench-collectives
#                      flat-vs-tree broadcast sweep over node shapes;
#                      writes BENCH_collectives.json
#   make collectives-smoke
#                      SMP-hybrid smoke: jacobi as a 4-node x 2-PE TCP
#                      job (converserun -nodes/-ppn) plus the fast
#                      collectives sweep
#   make monitor-smoke live-introspection gate: jacobi -np 4 with
#                      converserun -monitor, scraped with conversetop
#                      (tables, JSON, and a CPU capture)
#   make service-smoke elastic-service gate: the 3-daemon/36-job churn
#                      soak (kill + rejoin a daemon mid-burst, hard
#                      completion budget, zero leaked goroutines) plus
#                      a conversed/converserun -daemon/conversetop
#                      -jobs end-to-end run over real binaries
#   make bench-jobs    warm-service vs cold-launch job throughput;
#                      writes BENCH_jobs.json
#   make profile       the 8..256-PE scale ladder; writes BENCH_scale.json
#   make lint          converselint (msgownership, handlerreg,
#                      blockinhandler, noallocinhot, wirekinds,
#                      atomicmix, lockdiscipline) over the whole repo,
#                      via go vet -vettool — run twice, so the second
#                      pass also proves the .vetx fact cache replays
#   make msgcheck-test full test suite with the dynamic ownership
#                      checker compiled in (-tags msgcheck)
#   make ci            tier1 + race gates + overhead + lint + msgcheck + smokes

GO ?= go

.PHONY: ci tier1 vet build test race machine-race overhead bench bench-faults bench-collectives bench-jobs commbench-smoke net-smoke chaos-smoke collectives-smoke monitor-smoke service-smoke chaos-service-smoke profile lint msgcheck-test

ci: tier1 race machine-race overhead lint msgcheck-test commbench-smoke net-smoke chaos-smoke collectives-smoke monitor-smoke service-smoke chaos-service-smoke

tier1: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Static ownership/protocol/concurrency checks: build converselint and
# run it the way editors and CI caches like best — as a go vet tool.
# Findings exit nonzero. The second vet pass is the fact-cache sanity
# leg: it must succeed replaying the .vetx fact files the first pass
# wrote (a fact that gob-decodes differently, or a nondeterministic
# analyzer, fails exactly here). `go run ./cmd/converselint ./...` is
# the cache-free standalone equivalent.
lint:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) build -o $$tmp/converselint ./cmd/converselint && \
	$(GO) vet -vettool=$$tmp/converselint ./... && \
	$(GO) vet -vettool=$$tmp/converselint ./... && \
	echo 'lint: msgownership handlerreg blockinhandler noallocinhot wirekinds atomicmix lockdiscipline clean (facts cached + replayed)'

# Dynamic ownership checks: the whole suite with the msgcheck runtime
# checker compiled in (poisoned pools, generation stamps, checked
# accessors). Catches use-after-transfer the static analyzer cannot see.
msgcheck-test:
	$(GO) test -tags msgcheck ./...

# The MPSC inbox ring is the one lock-free structure in the tree; gate
# it separately so a failure names the layer directly.
machine-race:
	$(GO) test -race ./internal/machine/...

# Overhead gate: run the zero-overhead-when-off benchmarks and fail if
# any reports a nonzero allocation count. BenchmarkDispatchOff,
# BenchmarkNullTracerOverhead and BenchmarkMetricsEnabled cover the full
# dispatch path; BenchmarkMetricsDisabled covers the raw hooks;
# BenchmarkMonitorIdle proves a live but unpolled monitor endpoint is
# invisible to the scheduler.
overhead:
	@out=$$($(GO) test ./internal/core/ -run '^$$' \
		-bench 'DispatchOff|NullTracerOverhead|MetricsEnabled|MetricsDisabled|MonitorIdle' \
		-benchmem -benchtime 200000x); \
	echo "$$out"; \
	if echo "$$out" | grep -E ' [1-9][0-9]* allocs/op'; then \
		echo 'FAIL: observability path allocates when it must not'; exit 1; \
	fi; \
	echo 'overhead gate: 0 allocs/op on all instrumented paths'

# Full benchmark pass: the core micro-benchmarks, the steady-state
# 0-alloc benchmarks, and the commbench report (BENCH_comm.json).
bench:
	$(GO) test ./internal/core/ -run '^$$' -bench . -benchmem
	$(GO) test ./internal/bench/ -run '^$$' -bench SendAndFreeSteadyState \
		-benchmem -benchtime 20000x
	$(GO) run ./cmd/commbench -o BENCH_comm.json

# CI smoke: a fast deterministic commbench run proving the tool and the
# fan-in/ping-pong harness work end to end (no wall-clock benchmarks).
commbench-smoke:
	$(GO) run ./cmd/commbench -smoke -o /dev/null

# Multi-process smoke: real programs as converserun jobs, each rank an
# OS process on the TCP machine layer, with a hard timeout so a
# distributed hang fails CI instead of wedging it. The example binaries
# run unmodified — the same sources `go run` executes in-process.
net-smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) build -o $$tmp/converserun ./cmd/converserun && \
	$(GO) build -o $$tmp/jacobi ./examples/jacobi && \
	$(GO) build -o $$tmp/quickstart ./examples/quickstart && \
	$(GO) build -o $$tmp/commbench ./cmd/commbench && \
	$$tmp/converserun -np 4 -timeout 120s $$tmp/jacobi && \
	$$tmp/converserun -np 4 -timeout 120s $$tmp/quickstart && \
	$$tmp/commbench -transport tcp -pes 4 -smoke -o /dev/null && \
	echo 'net-smoke: jacobi + quickstart + commbench ok under converserun -np 4'

# Chaos gate: jacobi -np 4 under a 1% drop plan plus a scripted mid-run
# link kill must (a) exit 0 under the retry policy, (b) produce output
# byte-identical to a fault-free run once the reliability summary and
# the nondeterministic monitor count are filtered out, and (c) report
# nonzero retransmit and recovery counters proving the faults actually
# bit. A failfast leg with the same link kill must exit nonzero. Hard
# timeouts turn a distributed hang into a CI failure.
chaos-smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) build -o $$tmp/converserun ./cmd/converserun && \
	$(GO) build -o $$tmp/jacobi ./examples/jacobi && \
	$$tmp/converserun -np 4 -timeout 120s $$tmp/jacobi -perpe 8 > $$tmp/clean.out && \
	$$tmp/converserun -np 4 -timeout 120s -heartbeat 50ms -failure retry \
		-faults 'seed=7,drop=0.01,killlink=1-0@120' \
		$$tmp/jacobi -perpe 8 > $$tmp/chaos.out && \
	grep -v -e '\[reliability\]' -e 'monitor' $$tmp/clean.out | sort > $$tmp/clean.cmp && \
	grep -v -e '\[reliability\]' -e 'monitor' $$tmp/chaos.out | sort > $$tmp/chaos.cmp && \
	cmp $$tmp/clean.cmp $$tmp/chaos.cmp && \
	grep -q 'retransmits=[1-9]' $$tmp/chaos.out && \
	grep -q -e 'recoveries=[1-9]' -e 'link_downs=[1-9]' $$tmp/chaos.out && \
	if $$tmp/converserun -np 4 -timeout 60s -heartbeat 250ms \
		-faults 'seed=7,killlink=1-0@120' \
		$$tmp/jacobi -perpe 8 > $$tmp/failfast.out 2>&1; then \
		echo 'FAIL: failfast survived a scripted link kill'; \
		cat $$tmp/failfast.out; exit 1; \
	fi && \
	echo 'chaos-smoke: retry converged byte-identically under faults; failfast died as required'

# Throughput-vs-loss sweep on the TCP transport under the retry policy;
# writes BENCH_faults.json (the table EXPERIMENTS.md quotes).
bench-faults:
	$(GO) run ./cmd/commbench -transport tcp -faults sweep

# Flat-vs-tree broadcast sweep across machine sizes and node shapes
# (1/4/8 PEs per node) on the modeled sim substrate; writes
# BENCH_collectives.json (the table EXPERIMENTS.md quotes). Virtual
# time: the table is deterministic.
bench-collectives:
	$(GO) run ./cmd/commbench -collectives -o BENCH_collectives.json

# SMP-hybrid smoke: the same jacobi binary as a 4-node x 2-PE TCP job
# — 4 worker processes hosting 2 PEs each, intra-node traffic on the
# in-memory path, inter-node on the wire — plus the fast collectives
# sweep proving the flat-vs-tree harness end to end.
collectives-smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) build -o $$tmp/converserun ./cmd/converserun && \
	$(GO) build -o $$tmp/jacobi ./examples/jacobi && \
	$$tmp/converserun -np 8 -nodes 4 -ppn 2 -timeout 120s $$tmp/jacobi && \
	$(GO) run ./cmd/commbench -collectives -smoke -o /dev/null && \
	echo 'collectives-smoke: jacobi ok as 4 nodes x 2 PEs; flat-vs-tree sweep ok'

# Live-introspection gate: jacobi as a 4-rank TCP job held open by
# -minwall, its mesh monitor scraped three ways with conversetop — the
# JSON snapshot must be well-formed and cover all 4 PEs, the rendered
# table must show 4 PE rows, and a CPU capture through the same socket
# must parse as a pprof profile (conversetop validates it before
# reporting). The job itself must still exit 0 afterwards.
monitor-smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	{ $(GO) build -o $$tmp/converserun ./cmd/converserun && \
	  $(GO) build -o $$tmp/jacobi ./examples/jacobi && \
	  $(GO) build -o $$tmp/conversetop ./cmd/conversetop; } || exit 1; \
	( $$tmp/converserun -np 4 -timeout 120s -monitor 127.0.0.1:0 \
		$$tmp/jacobi -perpe 8 -minwall 15s > $$tmp/job.out 2>&1; \
		echo $$? > $$tmp/job.rc ) & \
	jobpid=$$!; \
	addr=; tok=; \
	for i in $$(seq 1 200); do \
		set -- $$(sed -n 's/^converserun: monitor on \(.*\) token \(.*\)$$/\1 \2/p' $$tmp/job.out); \
		addr=$$1; tok=$$2; [ -n "$$addr" ] && break; sleep 0.1; \
	done; \
	if [ -z "$$addr" ]; then \
		echo 'FAIL: converserun never printed the monitor address'; \
		cat $$tmp/job.out; exit 1; \
	fi; \
	$$tmp/conversetop -connect $$addr -token $$tok -once -json > $$tmp/snap.json && \
	grep -q '"schema": "converse-ccs/1"' $$tmp/snap.json && \
	grep -q '"num_pes": 4' $$tmp/snap.json && \
	grep -q '"metrics"' $$tmp/snap.json && \
	test $$(grep -c '"pe":' $$tmp/snap.json) -eq 4 && \
	$$tmp/conversetop -connect $$addr -token $$tok -once > $$tmp/top.out && \
	grep -q 'converse mesh: 4 PEs, 4 reachable' $$tmp/top.out && \
	$$tmp/conversetop -connect $$addr -token $$tok \
		-pprof cpu -seconds 1 -rank 0 -o $$tmp/cpu.pprof > $$tmp/prof.out && \
	grep -q 'cpu profile:' $$tmp/prof.out && \
	test -s $$tmp/cpu.pprof && \
	wait $$jobpid ; \
	if [ "$$(cat $$tmp/job.rc)" != 0 ]; then \
		echo 'FAIL: monitored jacobi job exited nonzero'; \
		cat $$tmp/job.out; exit 1; \
	fi; \
	echo 'monitor-smoke: snapshot + table + cpu capture ok against a live 4-rank mesh'

# Elastic-service gate, two legs. The soak (TestServiceSoak) is the
# hard one: 3 daemons x 4 slots, 36 concurrent mixed jacobi/pingpong
# jobs, one daemon killed and a replacement joined mid-burst — every
# job must finish inside the budget (churned gangs requeue onto the
# survivors) and teardown must return to the baseline goroutine count.
# The CLI leg proves the real binaries: a conversed gateway with its
# local daemon, concurrent converserun -daemon submits (flag and
# CONVERSED_ADDR forms), and conversetop -jobs reading back the table.
service-smoke:
	$(GO) test ./internal/service/ -run 'TestServiceSoak' -count=1 -timeout 180s -v
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"; kill $$gpid 2>/dev/null' EXIT && \
	{ $(GO) build -o $$tmp/conversed ./cmd/conversed && \
	  $(GO) build -o $$tmp/converserun ./cmd/converserun && \
	  $(GO) build -o $$tmp/conversetop ./cmd/conversetop; } || exit 1; \
	$$tmp/conversed -listen 127.0.0.1:0 -slots 4 -token smoke 2> $$tmp/conversed.log & \
	gpid=$$!; \
	addr=; \
	for i in $$(seq 1 100); do \
		addr=$$(sed -n 's/^conversed: gateway on \(.*\) (.*$$/\1/p' $$tmp/conversed.log); \
		[ -n "$$addr" ] && break; sleep 0.1; \
	done; \
	if [ -z "$$addr" ]; then \
		echo 'FAIL: conversed never printed its gateway address'; \
		cat $$tmp/conversed.log; exit 1; \
	fi; \
	$$tmp/converserun -daemon $$addr -token smoke -np 4 -timeout 60s jacobi '{"n":32,"iters":8}' && \
	CONVERSED_ADDR=$$addr CONVERSED_TOKEN=smoke \
		$$tmp/converserun -np 2 -timeout 60s pingpong '{"iters":200,"bytes":128}' && \
	$$tmp/conversetop -connect $$addr -token smoke -jobs -once > $$tmp/jobs.out && \
	grep -q 'jacobi.*done' $$tmp/jobs.out && \
	grep -q 'pingpong.*done' $$tmp/jobs.out && \
	echo 'service-smoke: churn soak + conversed/converserun/conversetop e2e ok'

# Crash-tolerance gate, two legs. TestServiceChaos is the PR-8 soak
# with the control plane itself under attack: 24 mixed jobs on
# 3 daemons x 4 slots while one daemon is SIGKILLed and replaced, the
# gateway is hard-stopped mid-burst (no clean shutdown, sockets cut)
# and restarted from its journal, and a second daemon is drained
# gracefully — every job must reach exactly one terminal state, no
# job may run twice past its requeue budget, and teardown must return
# to the baseline goroutine count. The CLI leg proves the same story
# with the real binaries: a -state gateway takes a job to done and a
# second job past its -deadline (distinct terminal reason), then is
# killed with SIGKILL and restarted on the same address — the journal
# must replay both terminal jobs (epoch 2 in conversetop), and the
# recovered gateway must still schedule fresh work.
chaos-service-smoke:
	$(GO) test ./internal/service/ -run 'TestServiceChaos' -count=1 -timeout 300s -v
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"; kill $$gpid 2>/dev/null' EXIT && \
	{ $(GO) build -o $$tmp/conversed ./cmd/conversed && \
	  $(GO) build -o $$tmp/converserun ./cmd/converserun && \
	  $(GO) build -o $$tmp/conversetop ./cmd/conversetop; } || exit 1; \
	$$tmp/conversed -listen 127.0.0.1:0 -slots 4 -token smoke -state $$tmp/state 2> $$tmp/conversed.log & \
	gpid=$$!; \
	addr=; \
	for i in $$(seq 1 100); do \
		addr=$$(sed -n 's/^conversed: gateway on \(.*\) (.*$$/\1/p' $$tmp/conversed.log); \
		[ -n "$$addr" ] && break; sleep 0.1; \
	done; \
	if [ -z "$$addr" ]; then \
		echo 'FAIL: conversed never printed its gateway address'; \
		cat $$tmp/conversed.log; exit 1; \
	fi; \
	$$tmp/converserun -daemon $$addr -token smoke -np 4 -timeout 60s jacobi '{"n":32,"iters":8}' || \
		{ echo 'FAIL: pre-crash jacobi job failed'; exit 1; }; \
	if $$tmp/converserun -daemon $$addr -token smoke -np 2 -timeout 60s -deadline 300ms \
			pingpong '{"iters":500000,"bytes":64}'; then \
		echo 'FAIL: over-deadline job was not killed'; exit 1; \
	fi; \
	kill -9 $$gpid; wait $$gpid 2>/dev/null; \
	$$tmp/conversed -listen $$addr -slots 4 -token smoke -state $$tmp/state -recovery 1s 2> $$tmp/conversed2.log & \
	gpid=$$!; \
	up=; \
	for i in $$(seq 1 100); do \
		up=$$(sed -n 's/^conversed: gateway on \(.*\) (.*$$/\1/p' $$tmp/conversed2.log); \
		[ -n "$$up" ] && break; sleep 0.1; \
	done; \
	if [ -z "$$up" ]; then \
		echo 'FAIL: restarted conversed never came up'; \
		cat $$tmp/conversed2.log; exit 1; \
	fi; \
	grep -q 'recovered journal' $$tmp/conversed2.log || \
		{ echo 'FAIL: restart did not replay the journal'; cat $$tmp/conversed2.log; exit 1; }; \
	$$tmp/converserun -daemon $$addr -token smoke -np 2 -timeout 60s pingpong '{"iters":200,"bytes":128}' || \
		{ echo 'FAIL: post-recovery submit failed'; cat $$tmp/conversed2.log; exit 1; }; \
	$$tmp/conversetop -connect $$addr -token smoke -jobs -once > $$tmp/jobs.out || exit 1; \
	grep -q 'epoch 2' $$tmp/jobs.out && \
	grep -q 'jacobi.*done' $$tmp/jobs.out && \
	grep -q 'deadline-killed' $$tmp/jobs.out && \
	grep -q 'pingpong.*done' $$tmp/jobs.out || \
		{ echo 'FAIL: recovered job table missing expected rows'; cat $$tmp/jobs.out; exit 1; }; \
	echo 'chaos-service-smoke: chaos soak + journal kill/restart/deadline e2e ok'

# Warm-service vs per-job cold-launch throughput and completion
# latency; writes BENCH_jobs.json (the table EXPERIMENTS.md quotes).
bench-jobs:
	$(GO) run ./cmd/commbench -jobs -o BENCH_jobs.json

# The 8..256-PE scale ladder on the simulated substrate, with CPU and
# heap captures pulled through a live ccs monitor socket at every
# point; writes BENCH_scale.json (the table EXPERIMENTS.md quotes).
# The collectives sweep rides along so one `make profile` refreshes
# both scaling artifacts.
profile: bench-collectives
	$(GO) run ./cmd/commbench -scale -o BENCH_scale.json
