# Tier-1 CI for the Converse reproduction.
#
#   make tier1     vet + build + test (the ROADMAP tier-1 gate)
#   make race      full test suite under the race detector
#   make overhead  observability overhead gate: the disabled-path
#                  benchmarks must report zero allocations
#   make ci        all of the above

GO ?= go

.PHONY: ci tier1 vet build test race overhead bench

ci: tier1 race overhead

tier1: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Overhead gate: run the zero-overhead-when-off benchmarks and fail if
# any reports a nonzero allocation count. BenchmarkDispatchOff,
# BenchmarkNullTracerOverhead and BenchmarkMetricsEnabled cover the full
# dispatch path; BenchmarkMetricsDisabled covers the raw hooks.
overhead:
	@out=$$($(GO) test ./internal/core/ -run '^$$' \
		-bench 'DispatchOff|NullTracerOverhead|MetricsEnabled|MetricsDisabled' \
		-benchmem -benchtime 200000x); \
	echo "$$out"; \
	if echo "$$out" | grep -E ' [1-9][0-9]* allocs/op'; then \
		echo 'FAIL: observability path allocates when it must not'; exit 1; \
	fi; \
	echo 'overhead gate: 0 allocs/op on all instrumented paths'

bench:
	$(GO) test ./internal/core/ -run '^$$' -bench . -benchmem
