# Tier-1 CI for the Converse reproduction.
#
#   make tier1         vet + build + test (the ROADMAP tier-1 gate)
#   make race          full test suite under the race detector
#   make machine-race  the lock-free machine layer alone under -race
#   make overhead      observability overhead gate: the disabled-path
#                      benchmarks must report zero allocations
#   make bench         comm fast-path benchmarks; writes BENCH_comm.json
#   make net-smoke     multi-process smoke: jacobi + quickstart + commbench
#                      under converserun -np 4 on real TCP sockets
#   make chaos-smoke   reliability gate: jacobi under a fault plan must
#                      converge byte-identically with the retry policy,
#                      and die fast under failfast
#   make bench-faults  throughput-vs-loss sweep; writes BENCH_faults.json
#   make lint          converselint (msgownership, handlerreg,
#                      blockinhandler, noallocinhot) over the whole
#                      repo, via go vet -vettool
#   make msgcheck-test full test suite with the dynamic ownership
#                      checker compiled in (-tags msgcheck)
#   make ci            tier1 + race gates + overhead + lint + msgcheck + smokes

GO ?= go

.PHONY: ci tier1 vet build test race machine-race overhead bench bench-faults commbench-smoke net-smoke chaos-smoke lint msgcheck-test

ci: tier1 race machine-race overhead lint msgcheck-test commbench-smoke net-smoke chaos-smoke

tier1: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Static ownership/handler checks: build converselint and run it the
# way editors and CI caches like best — as a go vet tool. Findings exit
# nonzero. `go run ./cmd/converselint ./...` is the cache-free
# standalone equivalent.
lint:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) build -o $$tmp/converselint ./cmd/converselint && \
	$(GO) vet -vettool=$$tmp/converselint ./... && \
	echo 'lint: msgownership handlerreg blockinhandler noallocinhot clean'

# Dynamic ownership checks: the whole suite with the msgcheck runtime
# checker compiled in (poisoned pools, generation stamps, checked
# accessors). Catches use-after-transfer the static analyzer cannot see.
msgcheck-test:
	$(GO) test -tags msgcheck ./...

# The MPSC inbox ring is the one lock-free structure in the tree; gate
# it separately so a failure names the layer directly.
machine-race:
	$(GO) test -race ./internal/machine/...

# Overhead gate: run the zero-overhead-when-off benchmarks and fail if
# any reports a nonzero allocation count. BenchmarkDispatchOff,
# BenchmarkNullTracerOverhead and BenchmarkMetricsEnabled cover the full
# dispatch path; BenchmarkMetricsDisabled covers the raw hooks.
overhead:
	@out=$$($(GO) test ./internal/core/ -run '^$$' \
		-bench 'DispatchOff|NullTracerOverhead|MetricsEnabled|MetricsDisabled' \
		-benchmem -benchtime 200000x); \
	echo "$$out"; \
	if echo "$$out" | grep -E ' [1-9][0-9]* allocs/op'; then \
		echo 'FAIL: observability path allocates when it must not'; exit 1; \
	fi; \
	echo 'overhead gate: 0 allocs/op on all instrumented paths'

# Full benchmark pass: the core micro-benchmarks, the steady-state
# 0-alloc benchmarks, and the commbench report (BENCH_comm.json).
bench:
	$(GO) test ./internal/core/ -run '^$$' -bench . -benchmem
	$(GO) test ./internal/bench/ -run '^$$' -bench SendAndFreeSteadyState \
		-benchmem -benchtime 20000x
	$(GO) run ./cmd/commbench -o BENCH_comm.json

# CI smoke: a fast deterministic commbench run proving the tool and the
# fan-in/ping-pong harness work end to end (no wall-clock benchmarks).
commbench-smoke:
	$(GO) run ./cmd/commbench -smoke -o /dev/null

# Multi-process smoke: real programs as converserun jobs, each rank an
# OS process on the TCP machine layer, with a hard timeout so a
# distributed hang fails CI instead of wedging it. The example binaries
# run unmodified — the same sources `go run` executes in-process.
net-smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) build -o $$tmp/converserun ./cmd/converserun && \
	$(GO) build -o $$tmp/jacobi ./examples/jacobi && \
	$(GO) build -o $$tmp/quickstart ./examples/quickstart && \
	$(GO) build -o $$tmp/commbench ./cmd/commbench && \
	$$tmp/converserun -np 4 -timeout 120s $$tmp/jacobi && \
	$$tmp/converserun -np 4 -timeout 120s $$tmp/quickstart && \
	$$tmp/commbench -transport tcp -pes 4 -smoke -o /dev/null && \
	echo 'net-smoke: jacobi + quickstart + commbench ok under converserun -np 4'

# Chaos gate: jacobi -np 4 under a 1% drop plan plus a scripted mid-run
# link kill must (a) exit 0 under the retry policy, (b) produce output
# byte-identical to a fault-free run once the reliability summary and
# the nondeterministic monitor count are filtered out, and (c) report
# nonzero retransmit and recovery counters proving the faults actually
# bit. A failfast leg with the same link kill must exit nonzero. Hard
# timeouts turn a distributed hang into a CI failure.
chaos-smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) build -o $$tmp/converserun ./cmd/converserun && \
	$(GO) build -o $$tmp/jacobi ./examples/jacobi && \
	$$tmp/converserun -np 4 -timeout 120s $$tmp/jacobi -perpe 8 > $$tmp/clean.out && \
	$$tmp/converserun -np 4 -timeout 120s -heartbeat 50ms -failure retry \
		-faults 'seed=7,drop=0.01,killlink=1-0@120' \
		$$tmp/jacobi -perpe 8 > $$tmp/chaos.out && \
	grep -v -e '\[reliability\]' -e 'monitor' $$tmp/clean.out | sort > $$tmp/clean.cmp && \
	grep -v -e '\[reliability\]' -e 'monitor' $$tmp/chaos.out | sort > $$tmp/chaos.cmp && \
	cmp $$tmp/clean.cmp $$tmp/chaos.cmp && \
	grep -q 'retransmits=[1-9]' $$tmp/chaos.out && \
	grep -q -e 'recoveries=[1-9]' -e 'link_downs=[1-9]' $$tmp/chaos.out && \
	if $$tmp/converserun -np 4 -timeout 60s -heartbeat 250ms \
		-faults 'seed=7,killlink=1-0@120' \
		$$tmp/jacobi -perpe 8 > $$tmp/failfast.out 2>&1; then \
		echo 'FAIL: failfast survived a scripted link kill'; \
		cat $$tmp/failfast.out; exit 1; \
	fi && \
	echo 'chaos-smoke: retry converged byte-identically under faults; failfast died as required'

# Throughput-vs-loss sweep on the TCP transport under the retry policy;
# writes BENCH_faults.json (the table EXPERIMENTS.md quotes).
bench-faults:
	$(GO) run ./cmd/commbench -transport tcp -faults sweep
