# Tier-1 CI for the Converse reproduction.
#
#   make tier1         vet + build + test (the ROADMAP tier-1 gate)
#   make race          full test suite under the race detector
#   make machine-race  the lock-free machine layer alone under -race
#   make overhead      observability overhead gate: the disabled-path
#                      benchmarks must report zero allocations
#   make bench         comm fast-path benchmarks; writes BENCH_comm.json
#   make ci            tier1 + race gates + overhead + commbench smoke

GO ?= go

.PHONY: ci tier1 vet build test race machine-race overhead bench commbench-smoke

ci: tier1 race machine-race overhead commbench-smoke

tier1: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The MPSC inbox ring is the one lock-free structure in the tree; gate
# it separately so a failure names the layer directly.
machine-race:
	$(GO) test -race ./internal/machine/...

# Overhead gate: run the zero-overhead-when-off benchmarks and fail if
# any reports a nonzero allocation count. BenchmarkDispatchOff,
# BenchmarkNullTracerOverhead and BenchmarkMetricsEnabled cover the full
# dispatch path; BenchmarkMetricsDisabled covers the raw hooks.
overhead:
	@out=$$($(GO) test ./internal/core/ -run '^$$' \
		-bench 'DispatchOff|NullTracerOverhead|MetricsEnabled|MetricsDisabled' \
		-benchmem -benchtime 200000x); \
	echo "$$out"; \
	if echo "$$out" | grep -E ' [1-9][0-9]* allocs/op'; then \
		echo 'FAIL: observability path allocates when it must not'; exit 1; \
	fi; \
	echo 'overhead gate: 0 allocs/op on all instrumented paths'

# Full benchmark pass: the core micro-benchmarks, the steady-state
# 0-alloc benchmarks, and the commbench report (BENCH_comm.json).
bench:
	$(GO) test ./internal/core/ -run '^$$' -bench . -benchmem
	$(GO) test ./internal/bench/ -run '^$$' -bench SendAndFreeSteadyState \
		-benchmem -benchtime 20000x
	$(GO) run ./cmd/commbench -o BENCH_comm.json

# CI smoke: a fast deterministic commbench run proving the tool and the
# fan-in/ping-pong harness work end to end (no wall-clock benchmarks).
commbench-smoke:
	$(GO) run ./cmd/commbench -smoke -o /dev/null
