// Package bench re-exports the measurement harness behind the paper's
// evaluation figures and the communication fast-path benchmarks
// (BENCH_comm.json). See converse/internal/bench for details.
package bench

import (
	"io"
	"testing"

	"converse/internal/bench"
	"converse/internal/core"
	"converse/internal/netmodel"
)

// Sizes is the message-size sweep used for every figure, in bytes.
var Sizes = bench.Sizes

// Row is one point of a figure: modeled one-way times per layer.
type Row = bench.Row

// Figure describes one of the paper's evaluation figures.
type Figure = bench.Figure

// Native measures the raw machine-layer round trip.
func Native(model *netmodel.Model, size, rounds int) float64 {
	return bench.Native(model, size, rounds)
}

// Converse measures the round trip through Converse handler dispatch.
func Converse(model *netmodel.Model, size, rounds int) float64 {
	return bench.Converse(model, size, rounds)
}

// ConverseWith is Converse with an explicit coalescing configuration.
func ConverseWith(model *netmodel.Model, size, rounds int, co core.CoalesceConfig) float64 {
	return bench.ConverseWith(model, size, rounds, co)
}

// Queued adds the receive-side scheduler-queue pass (Figure 6).
func Queued(model *netmodel.Model, size, rounds int) float64 {
	return bench.Queued(model, size, rounds)
}

// FanIn measures the many-to-one pattern: all other processors send
// msgs messages of the given size to processor 0; the result is the
// virtual time until the last dispatch on processor 0.
func FanIn(model *netmodel.Model, pes, msgs, size int, co core.CoalesceConfig) float64 {
	return bench.FanIn(model, pes, msgs, size, co)
}

// FanInThroughput converts a FanIn time to messages per virtual ms.
func FanInThroughput(elapsedUs float64, pes, msgs int) float64 {
	return bench.FanInThroughput(elapsedUs, pes, msgs)
}

// SteadyStateAllocs reports wall-clock heap allocations and
// nanoseconds per pooled SyncSendAndFree round trip.
func SteadyStateAllocs(co core.CoalesceConfig) (allocsPerOp, nsPerOp float64) {
	return bench.SteadyStateAllocs(co)
}

// SteadyStateBench exposes the steady-state round trip to go-test
// benchmarks.
func SteadyStateBench(b *testing.B, co core.CoalesceConfig) { bench.SteadyStateBench(b, co) }

// Sweep runs all layers over the standard size sweep.
func Sweep(model *netmodel.Model, rounds int) []Row { return bench.Sweep(model, rounds) }

// Figures returns the paper's five evaluation figures in order.
func Figures() []Figure { return bench.Figures() }

// Print writes a figure's table to w.
func Print(w io.Writer, fig Figure, rounds int) error { return bench.Print(w, fig, rounds) }

// NetPingPong measures the wall-clock round trip between processors 0
// and 1 on the substrate selected by cfg.Transport, returning one-way
// microseconds as seen by processor 0 (zero on other ranks).
func NetPingPong(cfg core.Config, size, rounds int) (float64, error) {
	return bench.NetPingPong(cfg, size, rounds)
}

// NetFanIn measures the wall-clock many-to-one burst into processor 0
// on the substrate selected by cfg.Transport: the first-to-last
// dispatch span in microseconds and the throughput over it in messages
// per millisecond (zeros on ranks other than 0).
func NetFanIn(cfg core.Config, msgs, size int) (elapsedUs, msgsPerMs float64, err error) {
	return bench.NetFanIn(cfg, msgs, size)
}

// ScalePEs is the default processor ladder for the scale profile
// (commbench -scale, BENCH_scale.json).
var ScalePEs = bench.ScalePEs

// ScalePoint is one row of the scale profile.
type ScalePoint = bench.ScalePoint

// ScaleOptions parameterizes ScaleSweep.
type ScaleOptions = bench.ScaleOptions

// ScaleSweep runs the 8→256-PE ladder on the simulated substrate,
// capturing CPU and heap profiles through a live ccs monitor socket at
// each point.
func ScaleSweep(peList []int, opt ScaleOptions) ([]ScalePoint, error) {
	return bench.ScaleSweep(peList, opt)
}
