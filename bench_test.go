// Benchmarks reproducing the paper's evaluation (§5) and quantifying
// its "need-based cost" design claim (§3).
//
// One benchmark per evaluation figure (Figures 4-8) drives the real
// round-trip program on the corresponding machine model; wall time is
// the real software path on the host, and the modeled one-way virtual
// time — the number the paper plots — is attached as a custom metric
// (model-us/oneway). Figure 6's queueing experiment has its own bench.
//
// The microbenches measure the real cost of each optional layer so the
// "pay only for what you use" ladder is visible in ns: raw machine
// transport < +handler dispatch < +scheduler queue < +priority queue,
// plus thread switching, message-manager, synchronization and
// vector-send costs.
package converse_test

import (
	"sync/atomic"
	"testing"
	"time"

	"converse/internal/bench"
	"converse/internal/core"
	"converse/internal/csync"
	"converse/internal/cth"
	"converse/internal/lang/charm"
	"converse/internal/lang/dp"
	"converse/internal/lang/tsm"
	"converse/internal/ldb"
	"converse/internal/machine"
	"converse/internal/msgmgr"
	"converse/internal/netmodel"
	"converse/internal/queue"
)

const benchWatchdog = 10 * time.Minute

// --- figure benches (§5, Figures 4-8) -------------------------------

// benchFigure runs b.N round trips of the Converse layer at a reference
// 64-byte size on the given machine model, reporting the modeled
// one-way virtual time alongside real wall time.
func benchFigure(b *testing.B, model *netmodel.Model, queued bool) {
	const size = 64
	cm := core.NewMachine(core.Config{PEs: 2, Model: model, Watchdog: benchWatchdog})
	done := false
	echoed := 0
	twoPhase := func(p *core.Proc, msg []byte) bool {
		if !queued || core.FlagsOf(msg) != 0 {
			return false
		}
		buf := p.GrabBuffer()
		core.SetFlags(buf, 1)
		p.Enqueue(buf)
		return true
	}
	ponged := 0
	var hPing, hPong, hStop int
	hPing = cm.RegisterHandler(func(p *core.Proc, msg []byte) {
		if twoPhase(p, msg) {
			return
		}
		reply := p.Alloc(size - core.HeaderSize)
		core.SetHandler(reply, hPong)
		p.SyncSendAndFree(0, reply)
		echoed++
	})
	hPong = cm.RegisterHandler(func(p *core.Proc, msg []byte) {
		if twoPhase(p, msg) {
			return
		}
		ponged++
	})
	hStop = cm.RegisterHandler(func(p *core.Proc, msg []byte) { done = true })

	err := cm.Run(func(p *core.Proc) {
		if p.MyPe() == 0 {
			msg := core.NewMsg(hPing, size-core.HeaderSize)
			start := p.TimerUs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.SyncSend(1, msg)
				want := ponged + 1
				p.ServeUntil(func() bool { return ponged == want })
			}
			b.StopTimer()
			oneWay := (p.TimerUs() - start) / float64(2*b.N)
			b.ReportMetric(oneWay, "model-us/oneway")
			p.SyncSendAndFree(1, core.NewMsg(hStop, 0))
			return
		}
		p.ServeUntil(func() bool { return done })
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFigure4ATMHP reproduces Figure 4 (ATM-connected HPs).
func BenchmarkFigure4ATMHP(b *testing.B) { benchFigure(b, netmodel.ATMHP(), false) }

// BenchmarkFigure5T3D reproduces Figure 5 (Cray T3D).
func BenchmarkFigure5T3D(b *testing.B) { benchFigure(b, netmodel.T3D(), false) }

// BenchmarkFigure6MyrinetFM reproduces Figure 6's main series
// (Myrinet/FM Suns, direct handler dispatch).
func BenchmarkFigure6MyrinetFM(b *testing.B) { benchFigure(b, netmodel.MyrinetFM(), false) }

// BenchmarkFigure6Queued reproduces Figure 6's queueing experiment:
// every received message passes through the scheduler's queue.
func BenchmarkFigure6Queued(b *testing.B) { benchFigure(b, netmodel.MyrinetFM(), true) }

// BenchmarkFigure7SP1 reproduces Figure 7 (IBM SP-1).
func BenchmarkFigure7SP1(b *testing.B) { benchFigure(b, netmodel.SP1(), false) }

// BenchmarkFigure8Paragon reproduces Figure 8 (Intel Paragon).
func BenchmarkFigure8Paragon(b *testing.B) { benchFigure(b, netmodel.Paragon(), false) }

// BenchmarkFigureSweeps regenerates the full size sweep of every figure
// once per iteration (heavyweight; used to sanity-check cmd/figures).
func BenchmarkFigureSweeps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, fig := range bench.Figures() {
			bench.Sweep(fig.Model, 10)
		}
	}
}

// --- need-based-cost microbenches (§3) -------------------------------

// BenchmarkNativeTransport measures the raw machine layer: a self-send
// and receive with no Converse dispatch — the baseline every other
// layer's overhead is measured against.
func BenchmarkNativeTransport(b *testing.B) {
	m := machine.New(machine.Config{PEs: 1})
	pe := m.PE(0)
	buf := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pe.Send(0, buf)
		if _, ok := pe.TryRecv(); !ok {
			b.Fatal("lost packet")
		}
	}
}

// BenchmarkHandlerDispatch adds the Converse layer: generalized-message
// send plus handler-table dispatch (CmiSyncSend + CmiDeliverMsgs), the
// paper's "few tens of instructions" claim in real nanoseconds.
func BenchmarkHandlerDispatch(b *testing.B) {
	cm := core.NewMachine(core.Config{PEs: 1, Watchdog: benchWatchdog})
	h := cm.RegisterHandler(func(p *core.Proc, msg []byte) {})
	err := cm.Run(func(p *core.Proc) {
		msg := core.NewMsg(h, 64-core.HeaderSize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.SyncSend(0, msg)
			if p.DeliverMsgs(1) != 1 {
				b.Fatal("lost message")
			}
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSchedulerQueue adds the scheduler-queue pass: the cost paid
// only by languages that schedule through the queue (Figure 6's extra).
func BenchmarkSchedulerQueue(b *testing.B) {
	cm := core.NewMachine(core.Config{PEs: 1, Watchdog: benchWatchdog})
	ran := 0
	h := cm.RegisterHandler(func(p *core.Proc, msg []byte) { ran++ })
	err := cm.Run(func(p *core.Proc) {
		msg := core.NewMsg(h, 64-core.HeaderSize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Enqueue(msg)
			p.ScheduleUntilIdle()
		}
		if ran != b.N {
			b.Fatalf("ran %d of %d", ran, b.N)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkPriorityQueue uses the integer-priority heap instead of the
// FIFO lane — the §2.3 feature, costed.
func BenchmarkPriorityQueue(b *testing.B) {
	cm := core.NewMachine(core.Config{PEs: 1, Watchdog: benchWatchdog})
	h := cm.RegisterHandler(func(p *core.Proc, msg []byte) {})
	err := cm.Run(func(p *core.Proc) {
		msg := core.NewMsg(h, 64-core.HeaderSize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.EnqueuePrio(msg, int32(i%64))
			p.ScheduleUntilIdle()
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkBitVectorQueue costs the bit-vector priority queue.
func BenchmarkBitVectorQueue(b *testing.B) {
	cm := core.NewMachine(core.Config{PEs: 1, Watchdog: benchWatchdog})
	h := cm.RegisterHandler(func(p *core.Proc, msg []byte) {})
	err := cm.Run(func(p *core.Proc) {
		msg := core.NewMsg(h, 64-core.HeaderSize)
		prio := queue.BitVec{0x1234, 0x5678}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.EnqueueBitVec(msg, prio)
			p.ScheduleUntilIdle()
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkThreadSwitch measures one suspend/resume round trip between
// the main context and a thread object — the core Cth primitive.
func BenchmarkThreadSwitch(b *testing.B) {
	cm := core.NewMachine(core.Config{PEs: 1, Watchdog: benchWatchdog})
	err := cm.Run(func(p *core.Proc) {
		rt := cth.Init(p)
		th := rt.Create(func() {
			for {
				rt.Suspend()
			}
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rt.Resume(th) // runs until the thread suspends back
		}
		b.StopTimer()
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkThreadCreateExit measures thread-object creation plus exit.
func BenchmarkThreadCreateExit(b *testing.B) {
	cm := core.NewMachine(core.Config{PEs: 1, Watchdog: benchWatchdog})
	err := cm.Run(func(p *core.Proc) {
		rt := cth.Init(p)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			th := rt.Create(func() {})
			rt.Resume(th)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkLockUnlock measures an uncontended csync lock cycle.
func BenchmarkLockUnlock(b *testing.B) {
	cm := core.NewMachine(core.Config{PEs: 1, Watchdog: benchWatchdog})
	err := cm.Run(func(p *core.Proc) {
		rt := cth.Init(p)
		l := csync.NewLock(rt)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			l.Lock()
			if err := l.Unlock(); err != nil {
				b.Fatal(err)
			}
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMsgMgrPutGet measures message-manager insert + tagged
// retrieval (the blocking-receive languages' storage path).
func BenchmarkMsgMgrPutGet(b *testing.B) {
	mm := msgmgr.New()
	msg := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mm.Put(msg, i%16)
		if _, _, ok := mm.Get(i % 16); !ok {
			b.Fatal("lost message")
		}
	}
}

// BenchmarkMsgMgrTwoTagWildcard measures two-tag retrieval with a
// wildcard, the PVM-style (src, tag) addressing.
func BenchmarkMsgMgrTwoTagWildcard(b *testing.B) {
	mm := msgmgr.New()
	msg := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mm.Put2(msg, i%16, i%4)
		if _, _, _, ok := mm.Get2(i%16, msgmgr.Wildcard); !ok {
			b.Fatal("lost message")
		}
	}
}

// BenchmarkVectorSend measures the EMI gather-send: three pieces
// gathered into one message and delivered.
func BenchmarkVectorSend(b *testing.B) {
	cm := core.NewMachine(core.Config{PEs: 1, Watchdog: benchWatchdog})
	h := cm.RegisterHandler(func(p *core.Proc, msg []byte) {})
	err := cm.Run(func(p *core.Proc) {
		a := make([]byte, 16)
		bb := make([]byte, 32)
		c := make([]byte, 16)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.VectorSend(0, h, a, bb, c)
			p.Progress()
			if p.DeliverMsgs(1) != 1 {
				b.Fatal("lost message")
			}
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkBroadcast8 measures an 8-PE broadcast plus delivery.
func BenchmarkBroadcast8(b *testing.B) {
	cm := core.NewMachine(core.Config{PEs: 8, Watchdog: benchWatchdog})
	h := cm.RegisterHandler(func(p *core.Proc, msg []byte) {})
	hStop := cm.RegisterHandler(func(p *core.Proc, msg []byte) { p.ExitScheduler() })
	err := cm.Run(func(p *core.Proc) {
		if p.MyPe() != 0 {
			// Passive PEs absorb messages until stopped.
			p.Scheduler(-1)
			return
		}
		msg := core.NewMsg(h, 64-core.HeaderSize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.SyncBroadcast(msg)
		}
		b.StopTimer()
		p.SyncBroadcastAllAndFree(core.NewMsg(hStop, 0))
	})
	if err != nil {
		b.Fatal(err)
	}
}

// --- ablation benches for design choices -----------------------------

// broadcastCompletion measures the modeled completion time of one
// 1 KB broadcast on a pes-wide T3D, flat vs tree.
func broadcastCompletion(b *testing.B, pes int, tree bool) {
	cm := core.NewMachine(core.Config{PEs: pes, Model: netmodel.T3D(), Watchdog: benchWatchdog})
	var last atomic.Int64 // max delivery time, fixed-point us*1000
	received := new(atomic.Int64)
	h := cm.RegisterHandler(func(p *core.Proc, msg []byte) {
		now := int64(p.TimerUs() * 1000)
		for {
			old := last.Load()
			if now <= old || last.CompareAndSwap(old, now) {
				break
			}
		}
		received.Add(1)
	})
	hStop := cm.RegisterHandler(func(p *core.Proc, msg []byte) { p.ExitScheduler() })
	err := cm.Run(func(p *core.Proc) {
		if p.MyPe() != 0 {
			p.Scheduler(-1)
			return
		}
		msg := core.NewMsg(h, 1024)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if tree {
				p.SyncBroadcastTree(msg)
				p.Scheduler(pes) // serve forwarding envelopes
			} else {
				p.SyncBroadcast(msg)
			}
			for int(received.Load()) < (i+1)*(pes-1) {
				p.Scheduler(1)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(last.Load())/1000/float64(b.N), "model-us/bcast")
		p.SyncBroadcastAllAndFree(core.NewMsg(hStop, 0))
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkBroadcastFlat64 and BenchmarkBroadcastTree64 compare the
// O(P) flat broadcast against the O(log P) spanning-tree broadcast on a
// 64-PE T3D (ablation for the "machine layer should optimize group
// operations" design point).
func BenchmarkBroadcastFlat64(b *testing.B) { broadcastCompletion(b, 64, false) }

// BenchmarkBroadcastTree64 is the tree side of the ablation.
func BenchmarkBroadcastTree64(b *testing.B) { broadcastCompletion(b, 64, true) }

// BenchmarkCharmLocalInvoke measures a full local chare method
// invocation: send -> queue -> replay -> dispatch.
func BenchmarkCharmLocalInvoke(b *testing.B) {
	cm := core.NewMachine(core.Config{PEs: 1, Watchdog: benchWatchdog})
	err := cm.Run(func(p *core.Proc) {
		rt := charm.Attach(p, ldb.NewSpray())
		typeID := rt.Register(
			func(rt *charm.RT, self charm.ChareID, msg []byte) any { return nil },
			func(rt *charm.RT, obj any, msg []byte) {},
		)
		id := rt.CreateHere(typeID, nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rt.Send(typeID, id, 0, nil)
			p.ScheduleUntilIdle()
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkChareMigration measures a full migration round: pack, ship,
// rebuild, moved-notice, forwarding entry.
func BenchmarkChareMigration(b *testing.B) {
	cm := core.NewMachine(core.Config{PEs: 2, Watchdog: benchWatchdog})
	done := false
	hStop := cm.RegisterHandler(func(p *core.Proc, msg []byte) {
		done = true
		p.ExitScheduler()
	})
	err := cm.Run(func(p *core.Proc) {
		rt := charm.Attach(p, ldb.NewSpray())
		typeID := rt.Register(func(rt *charm.RT, self charm.ChareID, msg []byte) any {
			return &packable{}
		})
		rt.SetUnpacker(typeID, func(rt *charm.RT, self charm.ChareID, blob []byte) any {
			return &packable{}
		})
		if p.MyPe() != 0 {
			p.ServeUntil(func() bool { return done })
			return
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			id := rt.CreateHere(typeID, nil)
			rt.Migrate(typeID, id, 1)
			p.ScheduleUntilIdle() // process the moved-notice
		}
		b.StopTimer()
		p.SyncSendAndFree(1, core.NewMsg(hStop, 0))
	})
	if err != nil {
		b.Fatal(err)
	}
}

type packable struct{}

func (*packable) Pack() []byte { return nil }

// BenchmarkTSMThreadMessage measures a same-PE thread-to-thread tagged
// message: send, park, awaken, context switch, receive.
func BenchmarkTSMThreadMessage(b *testing.B) {
	cm := core.NewMachine(core.Config{PEs: 1, Watchdog: benchWatchdog})
	err := cm.Run(func(p *core.Proc) {
		ts := tsm.Attach(p)
		b.ResetTimer()
		ts.Create(func() {
			for i := 0; i < b.N; i++ {
				ts.Send(0, 1, nil)
				ts.Recv(2)
			}
		})
		ts.Create(func() {
			for i := 0; i < b.N; i++ {
				ts.Recv(1)
				ts.Send(0, 2, nil)
			}
		})
		ts.Run()
		b.StopTimer()
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkDPAllReduce measures a machine-wide float reduction +
// broadcast on 8 PEs.
func BenchmarkDPAllReduce(b *testing.B) {
	cm := core.NewMachine(core.Config{PEs: 8, Watchdog: benchWatchdog})
	err := cm.Run(func(p *core.Proc) {
		d := dp.Attach(p)
		v := d.NewVector(64, func(i int) float64 { return float64(i) })
		if p.MyPe() == 0 {
			b.ResetTimer()
		}
		for i := 0; i < b.N; i++ {
			v.Sum()
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}
