// Package ccs re-exports the live introspection plane: per-process
// monitor endpoints (opened by converse.Machine.StartMonitor or
// automatically under converserun -monitor), the client functions that
// read them (used by cmd/conversetop), the launcher-side aggregator,
// and the minimal pprof reader. See converse/internal/ccs for the
// protocol and design.
package ccs

import (
	"io"

	"converse/internal/ccs"
)

// Monitor is a running per-process introspection endpoint.
type Monitor = ccs.Monitor

// Config parameterizes a Monitor endpoint.
type Config = ccs.Config

// Source is one observable processor (implemented by the core).
type Source = ccs.Source

// Snapshot is a mesh- or process-wide monitor snapshot.
type Snapshot = ccs.Snapshot

// PEView is one processor's entry in a Snapshot.
type PEView = ccs.PEView

// SchedState is a doorbell-published scheduler view.
type SchedState = ccs.SchedState

// Aggregate is the launcher-side monitor mux.
type Aggregate = ccs.Aggregate

// Profile is a decoded pprof capture; ProfSample is one sample.
type (
	Profile    = ccs.Profile
	ProfSample = ccs.ProfSample
)

// Profile kinds for FetchProfile.
const (
	ProfileCPU  = ccs.ProfileCPU
	ProfileHeap = ccs.ProfileHeap
)

// SchemaV1 is the current Snapshot.Schema value.
const SchemaV1 = ccs.SchemaV1

// NewMonitor opens an endpoint and serves it until Close.
func NewMonitor(cfg Config) (*Monitor, error) { return ccs.NewMonitor(cfg) }

// Fetch requests a snapshot from the monitor endpoint at addr.
func Fetch(addr, token string) (*Snapshot, error) { return ccs.Fetch(addr, token) }

// FetchProfile requests one pprof capture and writes the raw bytes to
// w; see internal/ccs.FetchProfile.
func FetchProfile(addr, token, profile string, seconds float64, rank int, w io.Writer) error {
	return ccs.FetchProfile(addr, token, profile, seconds, rank, w)
}

// ServeAggregate opens a mesh-wide monitor socket fanning out to the
// per-rank endpoints reported by backends.
func ServeAggregate(addr, token string, backends func() map[int]string) (*Aggregate, error) {
	return ccs.ServeAggregate(addr, token, backends)
}

// ParseProfile decodes a pprof capture (gzipped or raw proto).
func ParseProfile(data []byte) (*Profile, error) { return ccs.ParseProfile(data) }
