package main

// The -jobs mode: throughput and completion latency of the elastic
// service (BENCH_jobs.json). A warm conversed cluster — gateway plus
// three in-process daemons — takes a stream of small mixed jobs; the
// baseline runs the same stream cold, spinning a fresh one-daemon
// cluster up and down around every job, which is what per-job
// converserun launches cost. The gap is the value of keeping the
// mesh machinery warm.

import (
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"converse/service"
)

type jobsModeResult struct {
	Mode       string  `json:"mode"`
	Jobs       int     `json:"jobs"`
	JobsPerSec float64 `json:"jobs_per_sec"`
	P50MS      float64 `json:"p50_ms"`
	P99MS      float64 `json:"p99_ms"`
}

type jobsReport struct {
	Daemons       int            `json:"daemons"`
	SlotsPer      int            `json:"slots_per_daemon"`
	Gang          int            `json:"gang"`
	Warm          jobsModeResult `json:"warm_service"`
	Cold          jobsModeResult `json:"cold_launch_baseline"`
	Speedup       float64        `json:"throughput_speedup"`
	P50SpeedupLat float64        `json:"p50_latency_speedup"`
}

// jobsMain measures both modes and writes the report.
func jobsMain(out string, smoke bool) {
	nJobs, daemons, slots, gang := 48, 3, 4, 4
	if smoke {
		nJobs = 16
	}

	warm, err := runWarm(nJobs, daemons, slots, gang)
	if err != nil {
		log.Fatalf("commbench: warm service: %v", err)
	}
	cold, err := runCold(nJobs, slots, gang)
	if err != nil {
		log.Fatalf("commbench: cold baseline: %v", err)
	}

	r := jobsReport{
		Daemons: daemons, SlotsPer: slots, Gang: gang,
		Warm: warm, Cold: cold,
		Speedup:       warm.JobsPerSec / cold.JobsPerSec,
		P50SpeedupLat: cold.P50MS / warm.P50MS,
	}
	writeJSON(out, r)
	fmt.Fprintf(os.Stderr, "commbench: warm %.1f jobs/s (p50 %.1fms p99 %.1fms), cold %.1f jobs/s (p50 %.1fms), %.1fx throughput\n",
		warm.JobsPerSec, warm.P50MS, warm.P99MS, cold.JobsPerSec, cold.P50MS, r.Speedup)
}

// jobArgs alternates the two built-in workloads, small enough that
// per-job overhead (rendezvous, scheduling, teardown) dominates —
// which is exactly what this benchmark isolates.
func jobArgs(i int) (workload string, args map[string]int) {
	if i%2 == 0 {
		return "pingpong", map[string]int{"iters": 50, "bytes": 128}
	}
	return "jacobi", map[string]int{"n": 32, "iters": 8}
}

// runWarm pushes the whole stream through one long-lived cluster,
// keeping the backlog fed so the scheduler is never idle.
func runWarm(nJobs, daemons, slots, gang int) (jobsModeResult, error) {
	g, err := service.NewGateway(service.GatewayConfig{
		Addr: "127.0.0.1:0", BacklogCap: nJobs + 1,
		Logf: func(string, ...any) {},
	})
	if err != nil {
		return jobsModeResult{}, err
	}
	defer g.Close()
	for i := 0; i < daemons; i++ {
		d, err := service.StartDaemon(service.DaemonConfig{Gateway: g.Addr(), Slots: slots})
		if err != nil {
			return jobsModeResult{}, err
		}
		defer d.Stop()
	}
	c := &service.Client{Addr: g.Addr()}

	start := time.Now()
	ids := make([]string, nJobs)
	for i := range ids {
		wl, args := jobArgs(i)
		id, err := c.Submit("", wl, args, gang)
		if err != nil {
			return jobsModeResult{}, fmt.Errorf("submit %d: %w", i, err)
		}
		ids[i] = id
	}
	lat := make([]float64, 0, nJobs)
	for i, id := range ids {
		in, err := c.WaitJob(id, 120*time.Second)
		if err != nil {
			return jobsModeResult{}, err
		}
		if in.State != string(service.Done) {
			return jobsModeResult{}, fmt.Errorf("job %d (%s) ended %s: %s", i, id, in.State, in.Error)
		}
		lat = append(lat, in.QueueWaitMS+in.RuntimeMS)
	}
	elapsed := time.Since(start)
	return modeResult("warm", nJobs, elapsed, lat), nil
}

// runCold spins a fresh single-daemon cluster up and down around
// every job — the per-job process-launch shape, minus exec overhead
// (which only widens the real gap).
func runCold(nJobs, slots, gang int) (jobsModeResult, error) {
	start := time.Now()
	lat := make([]float64, 0, nJobs)
	for i := 0; i < nJobs; i++ {
		jobStart := time.Now()
		g, err := service.NewGateway(service.GatewayConfig{
			Addr: "127.0.0.1:0",
			Logf: func(string, ...any) {},
		})
		if err != nil {
			return jobsModeResult{}, err
		}
		d, err := service.StartDaemon(service.DaemonConfig{Gateway: g.Addr(), Slots: gang})
		if err != nil {
			g.Close()
			return jobsModeResult{}, err
		}
		c := &service.Client{Addr: g.Addr()}
		wl, args := jobArgs(i)
		id, err := c.Submit("", wl, args, gang)
		if err == nil {
			var in service.JobInfo
			in, err = c.WaitJob(id, 120*time.Second)
			if err == nil && in.State != string(service.Done) {
				err = fmt.Errorf("job %d ended %s: %s", i, in.State, in.Error)
			}
		}
		d.Stop()
		g.Close()
		if err != nil {
			return jobsModeResult{}, err
		}
		lat = append(lat, float64(time.Since(jobStart))/1e6)
	}
	return modeResult("cold", nJobs, time.Since(start), lat), nil
}

func modeResult(mode string, nJobs int, elapsed time.Duration, latMS []float64) jobsModeResult {
	sort.Float64s(latMS)
	pct := func(p float64) float64 {
		if len(latMS) == 0 {
			return 0
		}
		i := int(p * float64(len(latMS)-1))
		return latMS[i]
	}
	return jobsModeResult{
		Mode:       mode,
		Jobs:       nJobs,
		JobsPerSec: float64(nJobs) / elapsed.Seconds(),
		P50MS:      pct(0.50),
		P99MS:      pct(0.99),
	}
}
