// Command commbench measures the communication fast path and writes
// BENCH_comm.json: small-message fan-in throughput and ping-pong
// latency with coalescing off and on (virtual time, deterministic),
// plus wall-clock steady-state allocation counts for the pooled send
// path.
//
// With -transport tcp it instead measures the machine layer itself in
// wall-clock time — the same ping-pong and fan-in programs on the
// in-process simulated substrate and on the real TCP network substrate
// — and writes BENCH_net.json quantifying the wire's overhead. Run
// directly it launches itself as a converserun job; under converserun
// it joins the job it finds.
//
// With -transport tcp -faults it measures the reliability sub-layer:
// -faults takes a fault plan (internal/faultnet grammar) applied under
// the retry policy, or the word "sweep" to run the fan-in at a range of
// frame-drop rates (0, 0.1%, 1%, 5%) and write BENCH_faults.json — the
// throughput-vs-loss curve of the ack/retransmit machinery.
//
// With -collectives it measures the two-level topology-aware broadcast
// tree against the flat per-peer send loop it replaced, on the modeled
// simulated substrate (virtual time, deterministic), across machine
// sizes and node shapes (1, 4 and 8 PEs per node), and writes
// BENCH_collectives.json — the flat-vs-tree table EXPERIMENTS.md
// quotes.
//
// With -jobs it measures the elastic service (conversed): sustained
// jobs/sec and p50/p99 completion latency of a warm three-daemon
// cluster against a baseline that cold-starts a cluster around every
// job, and writes BENCH_jobs.json.
//
// With -scale it runs the 8→256-PE ladder on the simulated substrate
// and writes BENCH_scale.json: ping-pong latency and fan-in throughput
// per processor count, plus the scheduler-loop CPU share and live heap
// from pprof captures pulled through a ccs monitor socket (-pes is
// ignored; the ladder is fixed).
//
// Usage:
//
//	commbench [-o BENCH_comm.json] [-pes 8] [-msgs 400] [-size 64] [-smoke]
//	commbench -transport tcp [-o BENCH_net.json] [-pes 4] [-msgs 400] [-size 64] [-smoke]
//	commbench -transport tcp -faults sweep [-o BENCH_faults.json] [-smoke]
//	commbench -collectives [-o BENCH_collectives.json] [-size 64] [-smoke]
//	commbench -scale [-o BENCH_scale.json] [-msgs 200] [-size 64] [-smoke]
//	commbench -jobs [-o BENCH_jobs.json] [-smoke]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sync/atomic"
	"time"

	converse "converse"
	"converse/bench"
	"converse/mnet"
	"converse/netmodel"
)

type fanInResult struct {
	Machine        string  `json:"machine"`
	OffUs          float64 `json:"off_us"`
	OnUs           float64 `json:"on_us"`
	Speedup        float64 `json:"speedup"`
	OffMsgsPerMs   float64 `json:"off_msgs_per_ms"`
	OnMsgsPerMs    float64 `json:"on_msgs_per_ms"`
	MeetsTwoXFloor bool    `json:"meets_2x_floor"`
}

type pingPongResult struct {
	Machine     string  `json:"machine"`
	DirectUs    float64 `json:"direct_us"`
	CoalescedUs float64 `json:"coalesced_us"`
}

type steadyStateResult struct {
	Coalesced   bool    `json:"coalesced"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	NsPerOp     float64 `json:"ns_per_op"`
}

type report struct {
	PEs         int                 `json:"pes"`
	MsgsPerPE   int                 `json:"msgs_per_pe"`
	MsgSize     int                 `json:"msg_size"`
	Rounds      int                 `json:"pingpong_rounds"`
	FanIn       []fanInResult       `json:"fan_in"`
	PingPong    []pingPongResult    `json:"ping_pong"`
	SteadyState []steadyStateResult `json:"steady_state"`
}

func main() {
	out := flag.String("o", "", "output file (- for stdout; default BENCH_comm.json or BENCH_net.json)")
	transport := flag.String("transport", "sim", "machine layer to measure: sim (virtual-time fast path) or tcp (wall-clock sim-vs-tcp)")
	pes := flag.Int("pes", 8, "processors in the fan-in pattern (>= 2: one receiver plus at least one sender)")
	msgs := flag.Int("msgs", 400, "messages per sending PE")
	size := flag.Int("size", 64, "message size in bytes")
	rounds := flag.Int("rounds", 200, "ping-pong rounds")
	smoke := flag.Bool("smoke", false, "small, fast run for CI (skips wall-clock allocs)")
	faults := flag.String("faults", "", `with -transport tcp: a fault plan run under the retry policy, or "sweep" for the drop-rate sweep (BENCH_faults.json)`)
	scale := flag.Bool("scale", false, "run the 8..256-PE scale ladder on the sim substrate (BENCH_scale.json)")
	collectives := flag.Bool("collectives", false, "run the flat-vs-tree broadcast sweep on the sim substrate (BENCH_collectives.json)")
	jobs := flag.Bool("jobs", false, "measure the elastic service's job throughput vs per-job cold launches (BENCH_jobs.json)")
	flag.Parse()

	if *pes < 2 {
		log.Fatalf("commbench: -pes %d: the fan-in pattern needs at least 2 processors (one receiver, one sender)", *pes)
	}
	if *smoke {
		*msgs, *rounds = 50, 20
	}
	if *jobs {
		if *out == "" {
			*out = "BENCH_jobs.json"
		}
		jobsMain(*out, *smoke)
		return
	}
	if *collectives {
		if *out == "" {
			*out = "BENCH_collectives.json"
		}
		collectivesMain(*out, *size, *smoke)
		return
	}
	if *scale {
		if *out == "" {
			*out = "BENCH_scale.json"
		}
		scaleMain(*out, *msgs, *size, *rounds, *smoke)
		return
	}

	switch *transport {
	case "tcp":
		if *faults == "sweep" {
			if *out == "" {
				*out = "BENCH_faults.json"
			}
			faultMain(*out, *pes, *msgs, *size)
			return
		}
		if *out == "" {
			*out = "BENCH_net.json"
		}
		netMain(*out, *pes, *msgs, *size, *rounds, *faults)
		return
	case "sim":
		if *faults != "" {
			log.Fatalf("commbench: -faults needs -transport tcp (the sim substrate has no reliability layer to measure)")
		}
	default:
		log.Fatalf("commbench: unknown -transport %q (want sim or tcp)", *transport)
	}
	if *out == "" {
		*out = "BENCH_comm.json"
	}

	off := converse.CoalesceConfig{}
	on := converse.CoalesceConfig{Enabled: true}

	r := report{PEs: *pes, MsgsPerPE: *msgs, MsgSize: *size, Rounds: *rounds}
	for _, m := range netmodel.All() {
		fOff := bench.FanIn(m, *pes, *msgs, *size, off)
		fOn := bench.FanIn(m, *pes, *msgs, *size, on)
		r.FanIn = append(r.FanIn, fanInResult{
			Machine:        m.Name,
			OffUs:          fOff,
			OnUs:           fOn,
			Speedup:        fOff / fOn,
			OffMsgsPerMs:   bench.FanInThroughput(fOff, *pes, *msgs),
			OnMsgsPerMs:    bench.FanInThroughput(fOn, *pes, *msgs),
			MeetsTwoXFloor: fOff/fOn >= 2,
		})
		r.PingPong = append(r.PingPong, pingPongResult{
			Machine:     m.Name,
			DirectUs:    bench.Converse(m, *size, *rounds),
			CoalescedUs: bench.ConverseWith(m, *size, *rounds, on),
		})
	}

	if !*smoke {
		for _, co := range []converse.CoalesceConfig{off, on} {
			allocs, ns := bench.SteadyStateAllocs(co)
			r.SteadyState = append(r.SteadyState, steadyStateResult{
				Coalesced: co.Enabled, AllocsPerOp: allocs, NsPerOp: ns,
			})
		}
	}

	writeJSON(*out, &r)
	for _, f := range r.FanIn {
		fmt.Printf("%-22s fan-in %dx%dx%dB  off=%8.0fus  on=%8.0fus  speedup=%.2fx\n",
			f.Machine, *pes, *msgs, *size, f.OffUs, f.OnUs, f.Speedup)
	}
	for _, s := range r.SteadyState {
		fmt.Printf("steady-state coalesced=%-5v  %.2f allocs/op  %.0f ns/op\n",
			s.Coalesced, s.AllocsPerOp, s.NsPerOp)
	}
}

// writeJSON marshals v to out ("-" for stdout).
func writeJSON(out string, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", out)
}

// --- -transport tcp: wall-clock sim-vs-tcp machine-layer overhead ---

type netPoint struct {
	Transport string  `json:"transport"`
	Coalesced bool    `json:"coalesced"`
	OneWayUs  float64 `json:"one_way_us,omitempty"`
	ElapsedUs float64 `json:"elapsed_us,omitempty"`
	MsgsPerMs float64 `json:"msgs_per_ms,omitempty"`
}

type netReport struct {
	NP        int        `json:"np"`
	PEs       int        `json:"pes"`
	MsgsPerPE int        `json:"msgs_per_pe"`
	MsgSize   int        `json:"msg_size"`
	Rounds    int        `json:"pingpong_rounds"`
	PingPong  []netPoint `json:"ping_pong"`
	FanIn     []netPoint `json:"fan_in"`
	// PingPongTCPOverhead is the tcp/sim ratio of one-way wall-clock
	// times: what crossing a real socket costs relative to an
	// in-process channel on the identical program.
	PingPongTCPOverhead float64 `json:"pingpong_tcp_overhead"`
}

// netMain measures the same ping-pong and fan-in programs on the
// simulated and TCP substrates in wall-clock time. Outside a
// converserun job it launches itself as one; inside, every rank runs
// the TCP measurements (each machine is one rendezvous round, so the
// creation order below must be identical on all ranks) and rank 0
// additionally runs the in-process sim baselines and writes the report.
func netMain(out string, pes, msgs, size, rounds int, faults string) {
	if pes < 2 {
		log.Fatalf("commbench: -transport tcp needs -pes >= 2, have %d", pes)
	}
	if !mnet.InJob() {
		exe, err := os.Executable()
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		if err := mnet.Launch(mnet.LaunchConfig{
			NP: pes, Prog: exe, Args: os.Args[1:], Timeout: 10 * time.Minute,
		}); err != nil {
			log.Fatalf("commbench: tcp job failed after %v: %v", time.Since(start).Round(time.Millisecond), err)
		}
		return
	}

	const wdog = 2 * time.Minute
	off := converse.CoalesceConfig{}
	on := converse.CoalesceConfig{Enabled: true}
	r := netReport{NP: pes, PEs: pes, MsgsPerPE: msgs, MsgSize: size, Rounds: rounds}
	rank0 := mnet.Rank() == 0

	var simPP float64
	if rank0 {
		// In-process baselines: same code, sim substrate, same wall clock.
		simCfg := converse.Config{Transport: converse.TransportSim, Watchdog: wdog}
		var err error
		simCfg.PEs = 2
		simPP, err = bench.NetPingPong(simCfg, size, rounds)
		if err != nil {
			log.Fatalf("commbench: sim ping-pong: %v", err)
		}
		r.PingPong = append(r.PingPong, netPoint{Transport: "sim", OneWayUs: simPP})
		simCfg.PEs = pes
		for _, co := range []converse.CoalesceConfig{off, on} {
			simCfg.Coalesce = co
			el, tput, err := bench.NetFanIn(simCfg, msgs, size)
			if err != nil {
				log.Fatalf("commbench: sim fan-in: %v", err)
			}
			r.FanIn = append(r.FanIn, netPoint{Transport: "sim", Coalesced: co.Enabled, ElapsedUs: el, MsgsPerMs: tput})
		}
	}

	tcpCfg := converse.Config{Transport: converse.TransportTCP, Watchdog: wdog}
	if faults != "" {
		// A fault plan only makes sense with the reliability layer on:
		// under fail-fast the first injected drop would kill the job.
		tcpCfg.FailurePolicy = converse.FailRetry
		tcpCfg.Faults = faults
	}
	tcpCfg.PEs = 2
	tcpPP, err := bench.NetPingPong(tcpCfg, size, rounds)
	if err != nil {
		log.Fatalf("commbench: tcp ping-pong: %v", err)
	}
	tcpCfg.PEs = pes
	var tcpFI [2][2]float64
	for i, co := range []converse.CoalesceConfig{off, on} {
		tcpCfg.Coalesce = co
		el, tput, err := bench.NetFanIn(tcpCfg, msgs, size)
		if err != nil {
			log.Fatalf("commbench: tcp fan-in: %v", err)
		}
		tcpFI[i] = [2]float64{el, tput}
	}
	if !rank0 {
		return
	}

	r.PingPong = append(r.PingPong, netPoint{Transport: "tcp", OneWayUs: tcpPP})
	for i, co := range []bool{false, true} {
		r.FanIn = append(r.FanIn, netPoint{Transport: "tcp", Coalesced: co, ElapsedUs: tcpFI[i][0], MsgsPerMs: tcpFI[i][1]})
	}
	if simPP > 0 {
		r.PingPongTCPOverhead = tcpPP / simPP
	}
	writeJSON(out, &r)
	for _, p := range r.PingPong {
		fmt.Printf("%-4s ping-pong %dB        one-way %8.2f us\n", p.Transport, size, p.OneWayUs)
	}
	for _, p := range r.FanIn {
		fmt.Printf("%-4s fan-in %dx%dx%dB coalesced=%-5v  %8.0f us  %8.1f msgs/ms\n",
			p.Transport, pes, msgs, size, p.Coalesced, p.ElapsedUs, p.MsgsPerMs)
	}
	fmt.Printf("tcp/sim ping-pong overhead: %.1fx\n", r.PingPongTCPOverhead)
}

// --- -faults sweep: throughput vs injected frame loss ---

type faultPoint struct {
	DropRate  float64 `json:"drop_rate"`
	Plan      string  `json:"plan"`
	ElapsedUs float64 `json:"elapsed_us"`
	MsgsPerMs float64 `json:"msgs_per_ms"`
	// SlowdownX is this point's elapsed time over the clean (0% drop)
	// run's: what the retransmit machinery costs at this loss rate.
	SlowdownX float64 `json:"slowdown_vs_clean"`
}

type faultReport struct {
	NP        int          `json:"np"`
	PEs       int          `json:"pes"`
	MsgsPerPE int          `json:"msgs_per_pe"`
	MsgSize   int          `json:"msg_size"`
	Policy    string       `json:"policy"`
	Points    []faultPoint `json:"points"`
}

// faultDropRates is the sweep: clean baseline, then loss rates spanning
// "background noise" to "badly degraded network".
var faultDropRates = []float64{0, 0.001, 0.01, 0.05}

// faultMain runs the fan-in at each drop rate under the retry policy.
// Every rank runs every point (one rendezvous round per machine, same
// order everywhere); rank 0 writes the report.
func faultMain(out string, pes, msgs, size int) {
	if pes < 2 {
		log.Fatalf("commbench: -faults sweep needs -pes >= 2, have %d", pes)
	}
	if !mnet.InJob() {
		exe, err := os.Executable()
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		if err := mnet.Launch(mnet.LaunchConfig{
			NP: pes, Prog: exe, Args: os.Args[1:], Timeout: 10 * time.Minute,
			FailurePolicy: mnet.FailRetry,
			// A tight heartbeat keeps the retransmit timeout (hb/2) small,
			// so the sweep measures steady-loss throughput rather than
			// tail-drop RTO stalls of the 1s default.
			Heartbeat: 50 * time.Millisecond,
		}); err != nil {
			log.Fatalf("commbench: fault sweep job failed after %v: %v", time.Since(start).Round(time.Millisecond), err)
		}
		return
	}

	const wdog = 2 * time.Minute
	r := faultReport{NP: pes, PEs: pes, MsgsPerPE: msgs, MsgSize: size, Policy: "retry"}
	var clean float64
	for _, rate := range faultDropRates {
		plan := ""
		if rate > 0 {
			plan = fmt.Sprintf("seed=7,drop=%g", rate)
		}
		cfg := converse.Config{
			Transport:     converse.TransportTCP,
			Watchdog:      wdog,
			PEs:           pes,
			FailurePolicy: converse.FailRetry,
			Faults:        plan,
		}
		el, tput, err := bench.NetFanIn(cfg, msgs, size)
		if err != nil {
			log.Fatalf("commbench: fan-in at drop=%g: %v", rate, err)
		}
		if rate == 0 {
			clean = el
		}
		slow := 0.0
		if clean > 0 {
			slow = el / clean
		}
		r.Points = append(r.Points, faultPoint{
			DropRate: rate, Plan: plan, ElapsedUs: el, MsgsPerMs: tput, SlowdownX: slow,
		})
	}
	if mnet.Rank() != 0 {
		return
	}
	writeJSON(out, &r)
	for _, p := range r.Points {
		fmt.Printf("drop=%-6g fan-in %dx%dx%dB  %10.0f us  %8.1f msgs/ms  %5.2fx vs clean\n",
			p.DropRate, pes, msgs, size, p.ElapsedUs, p.MsgsPerMs, p.SlowdownX)
	}
}

// --- -scale: the 8..256-PE ladder (BENCH_scale.json) ---

type scaleReport struct {
	MsgsPerPE      int                `json:"msgs_per_pe"`
	MsgSize        int                `json:"msg_size"`
	Rounds         int                `json:"pingpong_rounds"`
	ProfileSeconds float64            `json:"profile_seconds"`
	Points         []bench.ScalePoint `json:"points"`
}

// scaleMain runs the ladder on the in-process simulated substrate; CPU
// and heap captures per point go through a live ccs monitor socket.
func scaleMain(out string, msgs, size, rounds int, smoke bool) {
	opt := bench.ScaleOptions{
		Msgs: msgs, Size: size, Rounds: rounds,
		ProfileSeconds: 1.3,
		Log:            os.Stdout,
	}
	ladder := bench.ScalePEs
	if smoke {
		// CI variant: two small points, sub-second captures.
		ladder = []int{4, 8}
		opt.ProfileSeconds = 0.3
	}
	points, err := bench.ScaleSweep(ladder, opt)
	if err != nil {
		log.Fatalf("commbench: %v", err)
	}
	writeJSON(out, &scaleReport{
		MsgsPerPE: opt.Msgs, MsgSize: opt.Size, Rounds: opt.Rounds,
		ProfileSeconds: opt.ProfileSeconds, Points: points,
	})
}

// --- -collectives: flat loop vs two-level tree (BENCH_collectives.json) ---

type collectivePoint struct {
	PEs   int `json:"pes"`
	PPN   int `json:"ppn"`
	Nodes int `json:"nodes"`
	// FlatUs is the completion time (last PE's arrival, virtual us) of
	// the pre-tree broadcast: one serial send per destination, all
	// charged to the root. TreeUs is the same broadcast through the
	// two-level spanning tree (binomial across nodes, flat fan-out
	// within each node).
	FlatUs  float64 `json:"flat_us"`
	TreeUs  float64 `json:"tree_us"`
	Speedup float64 `json:"speedup"`
}

type collectiveReport struct {
	Machine string            `json:"machine"`
	MsgSize int               `json:"msg_size"`
	Points  []collectivePoint `json:"points"`
}

// collectiveLadder and collectiveShapes span the sweep: machine sizes
// against PEs-per-node groupings (1 = the classic flat machine, 4 and 8
// = SMP-style nodes where intra-node hops are pointer handoffs).
var (
	collectiveLadder = []int{8, 16, 32, 64, 128}
	collectiveShapes = []int{1, 4, 8}
)

// broadcastCompletion measures one broadcast from PE 0 on a modeled
// sim machine of pes processors grouped ppn to a node, and returns the
// virtual time at which the last PE received its copy. Virtual time
// makes the number deterministic: reruns produce the identical table.
func broadcastCompletion(m *netmodel.Model, pes, ppn, size int, tree bool) float64 {
	cfg := converse.Config{PEs: pes, Model: m, Watchdog: 2 * time.Minute}
	if ppn > 1 {
		sizes := make([]int, pes/ppn)
		for i := range sizes {
			sizes[i] = ppn
		}
		cfg.NodeSizes = sizes
	}
	cm := converse.NewMachine(cfg)
	var last atomic.Int64 // max arrival time, fixed-point ns
	h := cm.RegisterHandler(func(p *converse.Proc, msg []byte) {
		now := int64(p.TimerUs() * 1000)
		for {
			old := last.Load()
			if now <= old || last.CompareAndSwap(old, now) {
				break
			}
		}
		p.ExitScheduler()
	})
	err := cm.Run(func(p *converse.Proc) {
		if p.MyPe() == 0 {
			msg := converse.MakeMsg(h, make([]byte, size))
			if tree {
				p.Broadcast(msg, converse.ExcludeSelf)
				p.Scheduler(pes) // serve relay traffic; returns at idle
			} else {
				for q := 1; q < pes; q++ {
					p.SyncSend(q, msg)
				}
			}
			return
		}
		p.Scheduler(-1)
	})
	if err != nil {
		log.Fatalf("commbench: broadcast pes=%d ppn=%d tree=%v: %v", pes, ppn, tree, err)
	}
	return float64(last.Load()) / 1000
}

// collectivesMain sweeps the flat-vs-tree broadcast over the ladder and
// node shapes on the sim substrate.
func collectivesMain(out string, size int, smoke bool) {
	ladder := collectiveLadder
	if smoke {
		ladder = []int{8, 16}
	}
	model := netmodel.T3D()
	r := collectiveReport{Machine: model.Name, MsgSize: size}
	for _, ppn := range collectiveShapes {
		for _, pes := range ladder {
			if pes%ppn != 0 {
				continue
			}
			flat := broadcastCompletion(model, pes, ppn, size, false)
			tree := broadcastCompletion(model, pes, ppn, size, true)
			r.Points = append(r.Points, collectivePoint{
				PEs: pes, PPN: ppn, Nodes: pes / ppn,
				FlatUs: flat, TreeUs: tree, Speedup: flat / tree,
			})
		}
	}
	writeJSON(out, &r)
	for _, p := range r.Points {
		fmt.Printf("bcast %3d PEs x %d/node (%2d nodes)  flat=%8.1fus  tree=%8.1fus  speedup=%.2fx\n",
			p.PEs, p.PPN, p.Nodes, p.FlatUs, p.TreeUs, p.Speedup)
	}
}
