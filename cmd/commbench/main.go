// Command commbench measures the communication fast path and writes
// BENCH_comm.json: small-message fan-in throughput and ping-pong
// latency with coalescing off and on (virtual time, deterministic),
// plus wall-clock steady-state allocation counts for the pooled send
// path.
//
// Usage:
//
//	commbench [-o BENCH_comm.json] [-pes 8] [-msgs 400] [-size 64] [-smoke]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	converse "converse"
	"converse/bench"
	"converse/netmodel"
)

type fanInResult struct {
	Machine        string  `json:"machine"`
	OffUs          float64 `json:"off_us"`
	OnUs           float64 `json:"on_us"`
	Speedup        float64 `json:"speedup"`
	OffMsgsPerMs   float64 `json:"off_msgs_per_ms"`
	OnMsgsPerMs    float64 `json:"on_msgs_per_ms"`
	MeetsTwoXFloor bool    `json:"meets_2x_floor"`
}

type pingPongResult struct {
	Machine     string  `json:"machine"`
	DirectUs    float64 `json:"direct_us"`
	CoalescedUs float64 `json:"coalesced_us"`
}

type steadyStateResult struct {
	Coalesced   bool    `json:"coalesced"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	NsPerOp     float64 `json:"ns_per_op"`
}

type report struct {
	PEs         int                 `json:"pes"`
	MsgsPerPE   int                 `json:"msgs_per_pe"`
	MsgSize     int                 `json:"msg_size"`
	Rounds      int                 `json:"pingpong_rounds"`
	FanIn       []fanInResult       `json:"fan_in"`
	PingPong    []pingPongResult    `json:"ping_pong"`
	SteadyState []steadyStateResult `json:"steady_state"`
}

func main() {
	out := flag.String("o", "BENCH_comm.json", "output file (- for stdout)")
	pes := flag.Int("pes", 8, "processors in the fan-in pattern")
	msgs := flag.Int("msgs", 400, "messages per sending PE")
	size := flag.Int("size", 64, "message size in bytes")
	rounds := flag.Int("rounds", 200, "ping-pong rounds")
	smoke := flag.Bool("smoke", false, "small, fast run for CI (skips wall-clock allocs)")
	flag.Parse()

	if *smoke {
		*msgs, *rounds = 50, 20
	}

	off := converse.CoalesceConfig{}
	on := converse.CoalesceConfig{Enabled: true}

	r := report{PEs: *pes, MsgsPerPE: *msgs, MsgSize: *size, Rounds: *rounds}
	for _, m := range netmodel.All() {
		fOff := bench.FanIn(m, *pes, *msgs, *size, off)
		fOn := bench.FanIn(m, *pes, *msgs, *size, on)
		r.FanIn = append(r.FanIn, fanInResult{
			Machine:        m.Name,
			OffUs:          fOff,
			OnUs:           fOn,
			Speedup:        fOff / fOn,
			OffMsgsPerMs:   bench.FanInThroughput(fOff, *pes, *msgs),
			OnMsgsPerMs:    bench.FanInThroughput(fOn, *pes, *msgs),
			MeetsTwoXFloor: fOff/fOn >= 2,
		})
		r.PingPong = append(r.PingPong, pingPongResult{
			Machine:     m.Name,
			DirectUs:    bench.Converse(m, *size, *rounds),
			CoalescedUs: bench.ConverseWith(m, *size, *rounds, on),
		})
	}

	if !*smoke {
		for _, co := range []converse.CoalesceConfig{off, on} {
			allocs, ns := bench.SteadyStateAllocs(co)
			r.SteadyState = append(r.SteadyState, steadyStateResult{
				Coalesced: co.Enabled, AllocsPerOp: allocs, NsPerOp: ns,
			})
		}
	}

	data, err := json.MarshalIndent(&r, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	for _, f := range r.FanIn {
		fmt.Printf("%-22s fan-in %dx%dx%dB  off=%8.0fus  on=%8.0fus  speedup=%.2fx\n",
			f.Machine, *pes, *msgs, *size, f.OffUs, f.OnUs, f.Speedup)
	}
	for _, s := range r.SteadyState {
		fmt.Printf("steady-state coalesced=%-5v  %.2f allocs/op  %.0f ns/op\n",
			s.Coalesced, s.AllocsPerOp, s.NsPerOp)
	}
}
