// Command conversed is the elastic cluster service daemon. One
// conversed per host pre-warms a node of PEs; the gateway instance
// additionally accepts jobs (submit/status/cancel/logs over the
// converse wire framing) and gang-schedules them onto the registered
// daemons. Daemons join and leave live: a newly joined conversed
// becomes schedulable immediately, and killing one drains its gangs
// back into the queue to be re-run on the survivors instead of
// failing the jobs.
//
// The gateway host runs an in-process daemon too (disable with
// -slots 0), so a single conversed invocation is already a working
// one-host cluster.
//
// Usage:
//
//	conversed -listen 127.0.0.1:7077 -slots 8 -token SECRET   # gateway + local daemon
//	conversed -join  HOST:7077 -slots 8 -token SECRET         # worker joins the cluster
//
// Submit with converserun -daemon HOST:7077 (or CONVERSED_ADDR), and
// watch the job table with conversetop -connect HOST:7077 -jobs.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"converse/service"
)

func main() {
	listen := flag.String("listen", "", "run the gateway on this address (one per cluster)")
	join := flag.String("join", "", "join the gateway at this address as a worker daemon")
	slots := flag.Int("slots", 4, "PEs this host offers (gateway mode: 0 disables the local daemon)")
	token := flag.String("token", "", "service auth token; every client and daemon must present it when set")
	name := flag.String("name", "", "daemon name (default host-derived; the gateway uniquifies)")
	backlog := flag.Int("backlog", 64, "gateway admission queue bound; submits beyond it are rejected")
	requeues := flag.Int("requeues", 3, "gateway per-job requeue budget after daemon loss")
	watchdog := flag.Duration("watchdog", 60*time.Second, "gateway bound on one job attempt's runtime")
	heartbeat := flag.Duration("heartbeat", 500*time.Millisecond, "job mesh liveness interval")
	stateDir := flag.String("state", "", "gateway journal directory; restarting with the same dir recovers jobs")
	recovery := flag.Duration("recovery", 5*time.Second, "post-restart window for daemons to re-register before lost gangs requeue")
	advertise := flag.String("advertise", "", "host other machines dial to reach this process's meshes (default loopback-only)")
	drainTO := flag.Duration("drain", 10*time.Second, "SIGTERM drain bound: how long running gangs get to finish")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: conversed -listen ADDR [flags]   (gateway)\n")
		fmt.Fprintf(os.Stderr, "       conversed -join ADDR [flags]     (worker)\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if (*listen == "") == (*join == "") {
		fmt.Fprintln(os.Stderr, "conversed: exactly one of -listen (gateway) or -join (worker) is required")
		flag.Usage()
		os.Exit(2)
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "conversed: "+format+"\n", args...)
	}

	if *name == "" {
		if h, err := os.Hostname(); err == nil {
			*name = h
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	if *listen != "" {
		g, err := service.NewGateway(service.GatewayConfig{
			Addr:           *listen,
			Token:          *token,
			BacklogCap:     *backlog,
			MaxRequeues:    *requeues,
			Heartbeat:      *heartbeat,
			JobWatchdog:    *watchdog,
			StateDir:       *stateDir,
			RecoveryWindow: *recovery,
			DrainTimeout:   *drainTO,
			Advertise:      *advertise,
			Logf:           logf,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "conversed: %v\n", err)
			os.Exit(1)
		}
		logf("gateway on %s (backlog %d, watchdog %v)", g.Addr(), *backlog, *watchdog)
		if *slots > 0 {
			d, err := service.StartDaemon(service.DaemonConfig{
				Gateway: g.Addr(), Token: *token, Name: *name, Slots: *slots,
				Advertise: *advertise, Logf: logf,
			})
			if err != nil {
				g.Close()
				fmt.Fprintf(os.Stderr, "conversed: starting local daemon: %v\n", err)
				os.Exit(1)
			}
			logf("local daemon %s offering %d PEs", d.Name(), *slots)
			defer d.Stop()
		}
		s := <-sig
		if s == syscall.SIGTERM {
			// Graceful: stop admitting, let gangs finish (bounded), journal
			// a clean-shutdown record so the next -state run starts warm.
			logf("SIGTERM: draining")
			g.Drain()
			return
		}
		logf("shutting down")
		g.Close()
		return
	}

	d, err := service.StartDaemon(service.DaemonConfig{
		Gateway: *join, Token: *token, Name: *name, Slots: *slots,
		Advertise: *advertise, Logf: logf,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "conversed: %v\n", err)
		os.Exit(1)
	}
	logf("daemon %s joined %s offering %d PEs", d.Name(), *join, *slots)
	done := make(chan struct{})
	go func() { d.Wait(); close(done) }()
	select {
	case s := <-sig:
		if s == syscall.SIGTERM {
			// Graceful: tell the gateway to stop placing gangs here, finish
			// the local ones (bounded), then leave.
			logf("SIGTERM: draining local gangs")
			d.Drain()
			return
		}
		logf("leaving the cluster")
		d.Stop()
	case <-done:
		// Unrecoverable gateway loss ends the session; local gangs were
		// drained after the reconnect window expired.
		logf("gateway session ended")
	}
}
