// Converselint checks Converse programs for violations of the
// runtime's message-ownership, protocol, and concurrency invariants.
// It bundles seven analyzers:
//
//	msgownership    no use of a message buffer after a Transfer send or free
//	handlerreg      handler indices come from Register*, not integer literals
//	blockinhandler  no blocking operations inside message handlers
//	noallocinhot    //converse:hotpath functions stay allocation-free
//	wirekinds       frame-kind planes stay disjoint; no raw kind literals
//	atomicmix       fields touched via sync/atomic are atomic everywhere
//	lockdiscipline  mutex-guarded fields stay guarded; no lock-order cycles
//
// The last three are modular: they export per-package facts (declared
// kind ranges, atomic fields, guarded fields) that flow to importing
// packages, so cross-package violations are caught no matter which
// side of the import edge they sit on.
//
// Run it standalone over package patterns:
//
//	converselint ./...
//	converselint -c msgownership,handlerreg ./examples/...
//	converselint -json ./...
//
// or as a go vet tool, which applies it package-by-package with go
// vet's caching and fact propagation through .vetx files:
//
//	go vet -vettool=$(command -v converselint) ./...
//
// A finding can be suppressed by the preceding (or trailing) comment
//
//	//lint:ignore <analyzer> <justification>
//
// where the justification is mandatory.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"converse/internal/lint"
	"converse/internal/lint/load"
)

// modulePath gates which vet units are analyzed: go vet hands the tool
// every dependency unit down to the standard library, and typechecking
// all of those would multiply lint cost for zero findings. Out-of-module
// units only relay facts.
const modulePath = "converse"

func main() {
	// The go vet protocol probes the tool before use: -V=full must
	// print an identifying version line (it becomes part of go vet's
	// cache key) and -flags must list the tool's analyzer flags.
	progname := filepath.Base(os.Args[0])
	if len(os.Args) == 2 {
		switch os.Args[1] {
		case "-V=full", "--V=full":
			// The line must parse as "name version ver [buildID=id]";
			// hashing our own executable makes go vet's result cache
			// invalidate whenever the tool is rebuilt.
			fmt.Printf("%s version devel buildID=%s\n", progname, selfID())
			return
		case "-flags", "--flags":
			fmt.Println("[]")
			return
		}
	}
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		os.Exit(vetUnit(os.Args[1]))
	}
	os.Exit(standalone())
}

// selfID hashes the running executable for the -V=full build ID.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		return "unknown"
	}
	sum := sha256.Sum256(data)
	return fmt.Sprintf("%x", sum[:16])
}

// jsonDiag is the machine-readable diagnostic shape for -json mode.
type jsonDiag struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// standalone loads whole package patterns through the go tool and
// lints them all. When any requested analyzer is modular, in-module
// dependencies of the matched packages are loaded too (facts-only) and
// analyzed first, dependency order, so facts flow exactly as they do
// under go vet.
func standalone() int {
	var (
		checks   = flag.String("c", "", "comma-separated analyzers to run (default: all)")
		list     = flag.Bool("list", false, "list analyzers and exit")
		dirFlag  = flag.String("C", ".", "change to this directory before loading packages")
		jsonFlag = flag.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: converselint [-c analyzers] [-json] [packages...]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		return 0
	}
	if *checks != "" {
		var err error
		analyzers, err = lint.ByName(strings.Split(*checks, ","))
		if err != nil {
			fmt.Fprintf(os.Stderr, "converselint: %v\n", err)
			return 1
		}
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loadFn := load.Packages
	if lint.HasFacts(analyzers) {
		loadFn = load.PackagesAndDeps
	}
	pkgs, err := loadFn(*dirFlag, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "converselint: %v\n", err)
		return 1
	}
	facts := lint.NewFactStore()
	found := 0
	var all []jsonDiag
	for _, pkg := range pkgs {
		if !pkg.FactsOnly {
			for _, e := range pkg.TypeErrors {
				fmt.Fprintf(os.Stderr, "converselint: %s: %v\n", pkg.ImportPath, e)
				found++
			}
		}
		facts.NoteImports(pkg.ImportPath, pkg.Imports)
		diags, err := lint.RunWithFacts(pkg, analyzers, facts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "converselint: %v\n", err)
			return 1
		}
		for _, d := range diags {
			if *jsonFlag {
				all = append(all, jsonDiag{
					Analyzer: d.Analyzer,
					File:     d.Pos.Filename,
					Line:     d.Pos.Line,
					Col:      d.Pos.Column,
					Message:  d.Message,
				})
			} else {
				fmt.Printf("%s\n", d)
			}
			found++
		}
	}
	if *jsonFlag {
		if all == nil {
			all = []jsonDiag{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(all)
	}
	if found > 0 {
		return 1
	}
	return 0
}

// vetConfig mirrors the JSON configuration the go command hands a
// -vettool for each package unit (x/tools unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// inModule reports whether an import path belongs to this module (test
// variants like "p [p.test]" included).
func inModule(importPath string) bool {
	path, _, _ := strings.Cut(importPath, " [")
	return path == modulePath || strings.HasPrefix(path, modulePath+"/")
}

// vetUnit lints one package unit described by a go vet .cfg file.
//
// Fact flow: the facts of every direct dependency are read from its
// .vetx file (PackageVetx), the unit's own modular analyzers add their
// facts, and the union is written to VetxOutput — so each vetx file
// carries the transitive closure and one level of PackageVetx suffices.
// Units outside this module (go vet visits the whole dependency graph,
// standard library included) are not analyzed, only relayed.
func vetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "converselint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "converselint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	facts := lint.NewFactStore()
	for _, vetx := range cfg.PackageVetx {
		if err := facts.ReadVetx(vetx); err != nil && !os.IsNotExist(err) {
			fmt.Fprintf(os.Stderr, "converselint: %v\n", err)
			return 1
		}
	}
	writeFacts := func() int {
		if cfg.VetxOutput == "" {
			return 0
		}
		if err := facts.WriteVetx(cfg.VetxOutput); err != nil {
			fmt.Fprintf(os.Stderr, "converselint: %v\n", err)
			return 1
		}
		return 0
	}

	if !inModule(cfg.ImportPath) {
		return writeFacts()
	}

	exports := map[string]string{}
	for path, canonical := range cfg.ImportMap {
		if file, ok := cfg.PackageFile[canonical]; ok {
			exports[path] = file
		}
	}
	pkg, err := load.Unit(cfg.ImportPath, cfg.Dir, cfg.GoFiles, exports)
	if err != nil {
		fmt.Fprintf(os.Stderr, "converselint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	if len(pkg.TypeErrors) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return writeFacts()
		}
		for _, e := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "converselint: %s: %v\n", cfg.ImportPath, e)
		}
		return 1
	}
	pkg.FactsOnly = cfg.VetxOnly
	diags, err := lint.RunWithFacts(pkg, lint.Analyzers(), facts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "converselint: %v\n", err)
		return 1
	}
	if rc := writeFacts(); rc != 0 {
		return rc
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s\n", d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
