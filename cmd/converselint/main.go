// Converselint checks Converse programs for violations of the
// runtime's message-ownership and handler invariants. It bundles four
// analyzers:
//
//	msgownership    no use of a message buffer after a Transfer send or free
//	handlerreg      handler indices come from Register*, not integer literals
//	blockinhandler  no blocking operations inside message handlers
//	noallocinhot    //converse:hotpath functions stay allocation-free
//
// Run it standalone over package patterns:
//
//	converselint ./...
//	converselint -c msgownership,handlerreg ./examples/...
//
// or as a go vet tool, which applies it package-by-package with go
// vet's caching and test-variant handling:
//
//	go vet -vettool=$(command -v converselint) ./...
//
// A finding can be suppressed by the preceding (or trailing) comment
//
//	//lint:ignore <analyzer> <justification>
//
// where the justification is mandatory.
package main

import (
	"crypto/sha256"
	"encoding/gob"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"converse/internal/lint"
	"converse/internal/lint/load"
)

func main() {
	// The go vet protocol probes the tool before use: -V=full must
	// print an identifying version line (it becomes part of go vet's
	// cache key) and -flags must list the tool's analyzer flags.
	progname := filepath.Base(os.Args[0])
	if len(os.Args) == 2 {
		switch os.Args[1] {
		case "-V=full", "--V=full":
			// The line must parse as "name version ver [buildID=id]";
			// hashing our own executable makes go vet's result cache
			// invalidate whenever the tool is rebuilt.
			fmt.Printf("%s version devel buildID=%s\n", progname, selfID())
			return
		case "-flags", "--flags":
			fmt.Println("[]")
			return
		}
	}
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		os.Exit(vetUnit(os.Args[1]))
	}
	os.Exit(standalone())
}

// selfID hashes the running executable for the -V=full build ID.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		return "unknown"
	}
	sum := sha256.Sum256(data)
	return fmt.Sprintf("%x", sum[:16])
}

// standalone loads whole package patterns through the go tool and
// lints them all.
func standalone() int {
	var (
		checks  = flag.String("c", "", "comma-separated analyzers to run (default: all)")
		list    = flag.Bool("list", false, "list analyzers and exit")
		dirFlag = flag.String("C", ".", "change to this directory before loading packages")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: converselint [-c analyzers] [packages...]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		return 0
	}
	if *checks != "" {
		var err error
		analyzers, err = lint.ByName(strings.Split(*checks, ","))
		if err != nil {
			fmt.Fprintf(os.Stderr, "converselint: %v\n", err)
			return 1
		}
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := load.Packages(*dirFlag, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "converselint: %v\n", err)
		return 1
	}
	found := 0
	for _, pkg := range pkgs {
		for _, e := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "converselint: %s: %v\n", pkg.ImportPath, e)
			found++
		}
		diags, err := lint.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "converselint: %v\n", err)
			return 1
		}
		for _, d := range diags {
			fmt.Printf("%s\n", d)
			found++
		}
	}
	if found > 0 {
		return 1
	}
	return 0
}

// vetConfig mirrors the JSON configuration the go command hands a
// -vettool for each package unit (x/tools unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetUnit lints one package unit described by a go vet .cfg file.
func vetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "converselint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "converselint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// The go command requires the facts output file to exist even
	// though converselint exports no facts.
	if cfg.VetxOutput != "" {
		f, err := os.Create(cfg.VetxOutput)
		if err != nil {
			fmt.Fprintf(os.Stderr, "converselint: %v\n", err)
			return 1
		}
		gob.NewEncoder(f).Encode([]string(nil))
		f.Close()
	}
	if cfg.VetxOnly {
		return 0
	}

	exports := map[string]string{}
	for path, canonical := range cfg.ImportMap {
		if file, ok := cfg.PackageFile[canonical]; ok {
			exports[path] = file
		}
	}
	pkg, err := load.Unit(cfg.ImportPath, cfg.Dir, cfg.GoFiles, exports)
	if err != nil {
		fmt.Fprintf(os.Stderr, "converselint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	if len(pkg.TypeErrors) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		for _, e := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "converselint: %s: %v\n", cfg.ImportPath, e)
		}
		return 1
	}
	diags, err := lint.Run(pkg, lint.Analyzers())
	if err != nil {
		fmt.Fprintf(os.Stderr, "converselint: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s\n", d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
