// Command converserun is the job launcher for the TCP network machine
// layer — the counterpart of Converse's charmrun. It starts -np copies
// of a Converse program as worker processes on this host, serves their
// rendezvous (node-table exchange, go and release barriers), forwards
// their CmiPrintf output, and propagates failure: the job exits nonzero
// the moment any worker dies, wedges, or reports a fatal error.
//
// The program itself needs no changes to run under converserun: the
// launcher passes the job coordinates through the environment, and
// core.NewMachine joins the mesh automatically (Transport auto/tcp).
//
// By default each worker process hosts exactly one PE (the classic 1:1
// rank↔PE mapping). The -nodes/-ppn flags group PEs onto SMP-style
// nodes: -np 8 -ppn 2 starts 4 worker processes hosting 2 PEs each,
// with intra-node messages moving by in-memory pointer handoff instead
// of the wire.
//
// Under -daemon ADDR (or with CONVERSED_ADDR set) converserun instead
// submits to a running conversed cluster: the program argument names a
// registered workload, -np is the gang size, and the optional second
// argument is a JSON object of workload parameters. The job runs on
// the cluster's warm PEs; this process streams its console output and
// exits 0 only if the job completes.
//
// Usage:
//
//	converserun -np 4 ./jacobi -n 64 -iters 100
//	converserun -np 8 -ppn 2 ./jacobi -n 64 -iters 100
//	converserun -daemon 127.0.0.1:7077 -np 4 jacobi '{"n":64,"iters":100}'
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"converse/mnet"
)

func main() {
	np := flag.Int("np", 1, "number of processors (PEs) in the job")
	nodes := flag.Int("nodes", 0, "number of worker processes (SMP nodes) to start; default -np/-ppn")
	ppn := flag.Int("ppn", 0, "PEs hosted per worker process; default -np/-nodes (1 if neither is given)")
	hosts := flag.String("hosts", "", "reserved: remote host list (only local jobs are supported so far)")
	timeout := flag.Duration("timeout", 0, "kill the whole job after this wall-clock time (0 = no limit)")
	heartbeat := flag.Duration("heartbeat", 0, "worker liveness interval (default 1s)")
	failure := flag.String("failure", "", "failure policy: failfast (default; first link fault kills the job) or retry (reliable links: ack/retransmit, reconnection, peer-down notification)")
	recovery := flag.Duration("recovery", 0, "under -failure retry, how long a lost link may take to recover before its peer is declared dead (default 8 heartbeats)")
	faults := flag.String("faults", "", `fault-injection plan applied by every worker to outbound data frames, e.g. "seed=7,drop=1%,killlink=1-0@120" (see internal/faultnet)`)
	monitor := flag.String("monitor", "", `serve a mesh-wide live-introspection socket on this address (e.g. "127.0.0.1:0"); poll it with conversetop`)
	daemon := flag.String("daemon", os.Getenv("CONVERSED_ADDR"), "submit to the conversed gateway at this address instead of launching processes (default $CONVERSED_ADDR)")
	svcToken := flag.String("token", os.Getenv("CONVERSED_TOKEN"), "service auth token for -daemon (default $CONVERSED_TOKEN)")
	deadline := flag.Duration("deadline", 0, "under -daemon: kill the job if it runs longer than this (0 = no limit)")
	maxmem := flag.Int("maxmem", 0, "under -daemon: kill the job if a rank's heap grows more than this many MiB (0 = no limit)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: converserun [flags] program [args...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *daemon != "" {
		if flag.NArg() < 1 || flag.NArg() > 2 {
			fmt.Fprintln(os.Stderr, "converserun: -daemon needs a workload name and optionally one JSON args object")
			flag.Usage()
			os.Exit(2)
		}
		args := ""
		if flag.NArg() == 2 {
			args = flag.Arg(1)
		}
		os.Exit(runSubmit(*daemon, *svcToken, flag.Arg(0), args, *np, *timeout, *deadline, *maxmem))
	}
	if *hosts != "" {
		fmt.Fprintln(os.Stderr, "converserun: -hosts is reserved for multi-host jobs and not implemented yet; run without it for a local job")
		os.Exit(2)
	}
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	nNodes, nPPN, err := resolveTopology(*np, *nodes, *ppn)
	if err != nil {
		fmt.Fprintf(os.Stderr, "converserun: %v\n", err)
		os.Exit(2)
	}

	start := time.Now()
	err = mnet.Launch(mnet.LaunchConfig{
		NP:             nNodes,
		PPN:            nPPN,
		Prog:           flag.Arg(0),
		Args:           flag.Args()[1:],
		Timeout:        *timeout,
		Heartbeat:      *heartbeat,
		FailurePolicy:  *failure,
		RecoveryWindow: *recovery,
		Faults:         *faults,
		Monitor:        *monitor,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "converserun: job failed after %v: %v\n", time.Since(start).Round(time.Millisecond), err)
		os.Exit(1)
	}
}

// resolveTopology validates -np/-nodes/-ppn against each other up front
// and derives the worker-process count and PEs-per-node. The invariant
// is nodes × ppn = np; a flag left at zero is derived from the others
// (neither given means the classic one PE per process).
func resolveTopology(np, nodes, ppn int) (int, int, error) {
	if np < 1 {
		return 0, 0, fmt.Errorf("-np must be >= 1, got %d", np)
	}
	if nodes < 0 || ppn < 0 {
		return 0, 0, fmt.Errorf("-nodes and -ppn must be positive (got -nodes %d -ppn %d)", nodes, ppn)
	}
	switch {
	case nodes == 0 && ppn == 0:
		return np, 1, nil
	case nodes == 0:
		if np%ppn != 0 {
			return 0, 0, fmt.Errorf("-np %d is not divisible by -ppn %d; give -nodes explicitly for an asymmetric machine", np, ppn)
		}
		return np / ppn, ppn, nil
	case ppn == 0:
		if np%nodes != 0 {
			return 0, 0, fmt.Errorf("-np %d is not divisible by -nodes %d; give -ppn explicitly for an asymmetric machine", np, nodes)
		}
		return nodes, np / nodes, nil
	default:
		if nodes*ppn != np {
			return 0, 0, fmt.Errorf("-nodes %d x -ppn %d is %d PEs, but -np is %d", nodes, ppn, nodes*ppn, np)
		}
		return nodes, ppn, nil
	}
}
