package main

import (
	"strings"
	"testing"
)

func TestResolveTopology(t *testing.T) {
	cases := []struct {
		name           string
		np, nodes, ppn int
		wantNodes      int
		wantPPN        int
		wantErr        string
	}{
		{name: "default flat", np: 4, wantNodes: 4, wantPPN: 1},
		{name: "ppn alone", np: 8, ppn: 2, wantNodes: 4, wantPPN: 2},
		{name: "nodes alone", np: 8, nodes: 2, wantNodes: 2, wantPPN: 4},
		{name: "both consistent", np: 8, nodes: 4, ppn: 2, wantNodes: 4, wantPPN: 2},
		{name: "single pe", np: 1, wantNodes: 1, wantPPN: 1},
		{name: "all pes one node", np: 6, nodes: 1, wantNodes: 1, wantPPN: 6},

		{name: "np zero", np: 0, wantErr: "-np must be >= 1"},
		{name: "negative nodes", np: 4, nodes: -1, wantErr: "must be positive"},
		{name: "ppn does not divide", np: 9, ppn: 2, wantErr: "not divisible by -ppn"},
		{name: "nodes does not divide", np: 9, nodes: 2, wantErr: "not divisible by -nodes"},
		{name: "both inconsistent", np: 8, nodes: 3, ppn: 2, wantErr: "-nodes 3 x -ppn 2 is 6 PEs, but -np is 8"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			nodes, ppn, err := resolveTopology(tc.np, tc.nodes, tc.ppn)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("resolveTopology(%d,%d,%d) = (%d,%d,nil), want error %q",
						tc.np, tc.nodes, tc.ppn, nodes, ppn, tc.wantErr)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error %q does not mention %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("resolveTopology(%d,%d,%d): %v", tc.np, tc.nodes, tc.ppn, err)
			}
			if nodes != tc.wantNodes || ppn != tc.wantPPN {
				t.Fatalf("resolveTopology(%d,%d,%d) = (%d,%d), want (%d,%d)",
					tc.np, tc.nodes, tc.ppn, nodes, ppn, tc.wantNodes, tc.wantPPN)
			}
		})
	}
}
