package main

// The thin-client side of the elastic service: under -daemon ADDR (or
// CONVERSED_ADDR in the environment) converserun stops being a
// process launcher and becomes a submit tool — the job runs on the
// conversed cluster's warm PEs, and this process just streams its
// console output and exits with the job's fate.

import (
	"fmt"
	"os"
	"time"

	"converse/service"
)

// runSubmit submits one named workload to a conversed gateway and
// follows it to a terminal state. gang is the PE count (-np); args is
// an optional JSON object with workload parameters; deadline and
// maxMemMB are the job's resource limits (0 = unlimited). Transient
// connect failures retry with jittered backoff for a few seconds — a
// gateway mid-restart refuses connections briefly, and a submit
// should outwait that rather than fail. Returns the process exit code.
func runSubmit(addr, token, workload, args string, gang int, timeout, deadline time.Duration, maxMemMB int) int {
	c := &service.Client{Addr: addr, Token: token}
	var rawArgs any
	if args != "" {
		rawArgs = jsonRaw(args)
	}
	start := time.Now()
	id, err := c.SubmitJob(service.SubmitSpec{
		Workload: workload, Args: rawArgs, Gang: gang,
		Deadline: deadline, MaxMemMB: maxMemMB,
		RetryWindow: 5 * time.Second,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "converserun: submit rejected: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "converserun: job %s submitted to %s (gang %d)\n", id, addr, gang)

	if timeout > 0 {
		t := time.AfterFunc(timeout, func() {
			fmt.Fprintf(os.Stderr, "converserun: timeout %v exceeded; cancelling %s\n", timeout, id)
			c.Cancel(id)
		})
		defer t.Stop()
	}

	state, jobErr, err := c.Logs(id, true, func(text string, isErr bool) {
		if isErr {
			fmt.Fprint(os.Stderr, text)
		} else {
			fmt.Fprint(os.Stdout, text)
		}
	})
	if err != nil {
		// The log stream broke (gateway restart, network); the job may
		// still be running — fall back to polling for the verdict.
		fmt.Fprintf(os.Stderr, "converserun: log stream lost (%v); polling for completion\n", err)
		in, werr := c.WaitJob(id, 24*time.Hour)
		if werr != nil {
			fmt.Fprintf(os.Stderr, "converserun: %v\n", werr)
			return 1
		}
		state, jobErr = in.State, in.Error
	}
	elapsed := time.Since(start).Round(time.Millisecond)
	if state != string(service.Done) {
		fmt.Fprintf(os.Stderr, "converserun: job %s %s after %v: %s\n", id, state, elapsed, jobErr)
		return 1
	}
	if in, err := c.Status(id); err == nil {
		fmt.Fprintf(os.Stderr, "converserun: job %s done in %v (queued %.0fms, ran %.0fms, %d bytes moved)\n",
			id, elapsed, in.QueueWaitMS, in.RuntimeMS, in.BytesMoved)
	} else {
		fmt.Fprintf(os.Stderr, "converserun: job %s done in %v\n", id, elapsed)
	}
	return 0
}

// jsonRaw passes a pre-encoded JSON string through Client.Submit's
// re-marshalling unchanged.
type jsonRaw string

func (r jsonRaw) MarshalJSON() ([]byte, error) { return []byte(r), nil }
