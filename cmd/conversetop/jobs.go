package main

// The -jobs view: instead of polling a mesh monitor, conversetop
// polls a conversed gateway and renders the cluster's job table —
// per-job state, gang size, queue wait, runtime, and bytes moved —
// plus the daemon roster and admission backlog.

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"converse/service"
)

// runJobs renders the conversed job table, refreshing in place unless
// once is set. Returns the process exit code.
func runJobs(addr, token string, interval time.Duration, once, asJSON bool) int {
	c := &service.Client{Addr: addr, Token: token}
	for {
		jobs, err := c.Jobs()
		if err != nil {
			fmt.Fprintf(os.Stderr, "conversetop: %v\n", err)
			return 1
		}
		daemons, backlog, backlogCap, err := c.Cluster()
		if err != nil {
			fmt.Fprintf(os.Stderr, "conversetop: %v\n", err)
			return 1
		}
		if asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			enc.Encode(struct {
				Daemons []service.DaemonInfo `json:"daemons"`
				Backlog int                  `json:"backlog"`
				Jobs    []service.JobInfo    `json:"jobs"`
			}{daemons, backlog, jobs})
		} else {
			if !once {
				fmt.Print("\x1b[H\x1b[2J")
			}
			renderJobs(jobs, daemons, backlog, backlogCap)
		}
		if once {
			return 0
		}
		time.Sleep(interval)
	}
}

// renderJobs prints the daemon roster line and the job table.
func renderJobs(jobs []service.JobInfo, daemons []service.DaemonInfo, backlog, backlogCap int) {
	slots, busy := 0, 0
	names := make([]string, 0, len(daemons))
	for _, d := range daemons {
		slots += d.Slots
		busy += d.Busy
		names = append(names, fmt.Sprintf("%s %d/%d", d.Name, d.Busy, d.Slots))
	}
	fmt.Printf("conversed: %d daemons (%s), %d/%d PEs busy, backlog %d/%d  (%s)\n\n",
		len(daemons), strings.Join(names, ", "), busy, slots, backlog, backlogCap,
		time.Now().Format("15:04:05"))
	fmt.Printf("%-22s %-10s %-9s %4s %9s %9s %9s %3s %s\n",
		"JOB", "WORKLOAD", "STATE", "GANG", "QWAIT", "RUNTIME", "BYTES", "RQ", "DAEMONS")
	for _, j := range jobs {
		line := fmt.Sprintf("%-22s %-10s %-9s %4d %9s %9s %9s %3d %s",
			j.ID, j.Workload, j.State, j.Gang,
			fmtMs(j.QueueWaitMS), fmtMs(j.RuntimeMS), fmtBytes(j.BytesMoved),
			j.Requeues, strings.Join(j.Daemons, ","))
		if j.Error != "" {
			line += "  [" + j.Error + "]"
		}
		fmt.Println(line)
	}
}

func fmtMs(ms float64) string {
	switch {
	case ms <= 0:
		return "-"
	case ms >= 60_000:
		return fmt.Sprintf("%.1fm", ms/60_000)
	case ms >= 1000:
		return fmt.Sprintf("%.1fs", ms/1000)
	}
	return fmt.Sprintf("%.0fms", ms)
}
