package main

// The -jobs view: instead of polling a mesh monitor, conversetop
// polls a conversed gateway and renders the cluster's job table —
// per-job state, gang size, queue wait, runtime, and bytes moved —
// plus the daemon roster and admission backlog.

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"converse/service"
)

// runJobs renders the conversed job table, refreshing in place unless
// once is set. Returns the process exit code.
func runJobs(addr, token string, interval time.Duration, once, asJSON bool) int {
	c := &service.Client{Addr: addr, Token: token}
	for {
		jobs, err := c.Jobs()
		if err != nil {
			fmt.Fprintf(os.Stderr, "conversetop: %v\n", err)
			return 1
		}
		cl, err := c.ClusterInfo()
		if err != nil {
			fmt.Fprintf(os.Stderr, "conversetop: %v\n", err)
			return 1
		}
		if asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			enc.Encode(struct {
				service.ClusterView
				Jobs []service.JobInfo `json:"jobs"`
			}{cl, jobs})
		} else {
			if !once {
				fmt.Print("\x1b[H\x1b[2J")
			}
			renderJobs(jobs, cl)
		}
		if once {
			return 0
		}
		time.Sleep(interval)
	}
}

// renderJobs prints the daemon roster line and the job table.
func renderJobs(jobs []service.JobInfo, cl service.ClusterView) {
	slots, busy := 0, 0
	names := make([]string, 0, len(cl.Daemons))
	for _, d := range cl.Daemons {
		slots += d.Slots
		busy += d.Busy
		tag := ""
		if d.Draining {
			tag = " draining"
		}
		names = append(names, fmt.Sprintf("%s %d/%d%s", d.Name, d.Busy, d.Slots, tag))
	}
	mode := ""
	if cl.Recovering {
		mode = ", RECOVERING"
	}
	fmt.Printf("conversed: epoch %d%s, %d daemons (%s), %d/%d PEs busy, backlog %d/%d  (%s)\n\n",
		cl.Epoch, mode, len(cl.Daemons), strings.Join(names, ", "), busy, slots,
		cl.Backlog, cl.BacklogCap, time.Now().Format("15:04:05"))
	fmt.Printf("%-22s %-10s %-10s %4s %9s %9s %9s %3s %-18s %-9s %s\n",
		"JOB", "WORKLOAD", "STATE", "GANG", "QWAIT", "RUNTIME", "BYTES", "RQ", "REASON", "LIMITS", "DAEMONS")
	for _, j := range jobs {
		line := fmt.Sprintf("%-22s %-10s %-10s %4d %9s %9s %9s %3d %-18s %-9s %s",
			j.ID, j.Workload, j.State, j.Gang,
			fmtMs(j.QueueWaitMS), fmtMs(j.RuntimeMS), fmtBytes(j.BytesMoved),
			j.Requeues, dash(j.Reason), fmtLimits(j), strings.Join(j.Daemons, ","))
		if j.Error != "" {
			line += "  [" + j.Error + "]"
		}
		fmt.Println(line)
	}
}

// dash renders an empty field as "-" so the table stays scannable.
func dash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// fmtLimits compacts a job's resource limits into one cell, e.g.
// "2s/64M" for a 2-second deadline with a 64 MiB heap ceiling.
func fmtLimits(j service.JobInfo) string {
	dl, mm := "-", "-"
	if j.DeadlineMS > 0 {
		dl = fmtMs(j.DeadlineMS)
	}
	if j.MaxMemMB > 0 {
		mm = fmt.Sprintf("%dM", j.MaxMemMB)
	}
	if dl == "-" && mm == "-" {
		return "-"
	}
	return dl + "/" + mm
}

func fmtMs(ms float64) string {
	switch {
	case ms <= 0:
		return "-"
	case ms >= 60_000:
		return fmt.Sprintf("%.1fm", ms/60_000)
	case ms >= 1000:
		return fmt.Sprintf("%.1fs", ms/1000)
	}
	return fmt.Sprintf("%.0fms", ms)
}
