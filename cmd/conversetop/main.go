// Command conversetop is the top-style viewer for a running Converse
// machine. It polls a live-introspection endpoint — the mesh-wide
// socket converserun serves under -monitor, or a single process's
// endpoint opened with Machine.StartMonitor — and renders per-PE
// utilization, scheduler queue, and traffic tables, refreshed in place;
// -json dumps the raw snapshot for scripts, and -pprof pulls a CPU or
// heap capture through the same socket and validates it.
//
// With -jobs, -connect names a conversed gateway instead of a mesh
// monitor, and the table is the cluster's job list: per-job state,
// gang size, queue wait, runtime, and bytes moved, with the daemon
// roster and admission backlog in the header.
//
// Usage:
//
//	conversetop -connect 127.0.0.1:40100                 # live tables
//	conversetop -connect ADDR -once                      # one table, exit
//	conversetop -connect ADDR -once -json                # one snapshot as JSON
//	conversetop -connect ADDR -pprof cpu -seconds 3 -rank 1 -o r1.pprof
//	conversetop -connect GATEWAY -jobs                   # conversed job table
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"converse/ccs"
)

func main() {
	connect := flag.String("connect", "", "monitor address to poll (converserun prints it: \"converserun: monitor on ADDR token TOK\")")
	token := flag.String("token", "", "job auth token from the same converserun line (empty for monitors opened without one)")
	interval := flag.Duration("interval", 1*time.Second, "refresh interval in live mode")
	once := flag.Bool("once", false, "print one snapshot and exit")
	asJSON := flag.Bool("json", false, "dump snapshots as JSON instead of tables")
	pprofKind := flag.String("pprof", "", `fetch one pprof capture instead of snapshots: "cpu" or "heap"`)
	seconds := flag.Float64("seconds", 2, "CPU capture window for -pprof cpu")
	rank := flag.Int("rank", 0, "rank whose process to profile (through an aggregated monitor)")
	out := flag.String("o", "", "output file for -pprof (default <kind>.pprof)")
	jobs := flag.Bool("jobs", false, "-connect is a conversed gateway: render the cluster's job table")
	flag.Parse()
	if *connect == "" {
		fmt.Fprintln(os.Stderr, "conversetop: -connect ADDR is required")
		flag.Usage()
		os.Exit(2)
	}

	if *jobs {
		os.Exit(runJobs(*connect, *token, *interval, *once, *asJSON))
	}

	if *pprofKind != "" {
		if err := fetchProfile(*connect, *token, *pprofKind, *seconds, *rank, *out); err != nil {
			fmt.Fprintf(os.Stderr, "conversetop: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var prev *ccs.Snapshot
	for {
		snap, err := ccs.Fetch(*connect, *token)
		if err != nil {
			fmt.Fprintf(os.Stderr, "conversetop: %v\n", err)
			os.Exit(1)
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			enc.Encode(snap)
		} else {
			if !*once {
				// Clear and home, like top: the table repaints in place.
				fmt.Print("\x1b[H\x1b[2J")
			}
			render(os.Stdout, snap, prev)
		}
		if *once {
			return
		}
		prev = snap
		time.Sleep(*interval)
	}
}

// fetchProfile pulls one capture, validates that it parses as a pprof
// profile, reports its shape, and saves the raw bytes.
func fetchProfile(addr, token, kind string, seconds float64, rank int, out string) error {
	if out == "" {
		out = kind + ".pprof"
	}
	var buf bytes.Buffer
	if err := ccs.FetchProfile(addr, token, kind, seconds, rank, &buf); err != nil {
		return err
	}
	prof, err := ccs.ParseProfile(buf.Bytes())
	if err != nil {
		return fmt.Errorf("capture is not a valid pprof profile: %w", err)
	}
	if err := os.WriteFile(out, buf.Bytes(), 0o644); err != nil {
		return err
	}
	fmt.Printf("conversetop: %s profile: %d samples, types %v, %d bytes -> %s\n",
		kind, len(prof.Samples), prof.SampleTypes, buf.Len(), out)
	for _, t := range topShares(prof, 5) {
		fmt.Printf("  %5.1f%% %s\n", t.share*100, t.fn)
	}
	return nil
}

type fnShare struct {
	fn    string
	share float64
}

// topShares ranks functions by cumulative share of the profile's last
// value column.
func topShares(p *ccs.Profile, n int) []fnShare {
	if len(p.SampleTypes) == 0 {
		return nil
	}
	col := len(p.SampleTypes) - 1
	total := p.Total(col)
	if total == 0 {
		return nil
	}
	cum := map[string]int64{}
	for _, s := range p.Samples {
		if col >= len(s.Values) {
			continue
		}
		seen := map[string]bool{}
		for _, fn := range s.Stack {
			if fn == "" || seen[fn] {
				continue
			}
			seen[fn] = true
			cum[fn] += s.Values[col]
		}
	}
	out := make([]fnShare, 0, len(cum))
	for fn, v := range cum {
		out = append(out, fnShare{fn, float64(v) / float64(total)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].share > out[j].share })
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// render prints the per-PE table. With a previous snapshot, msg/s and
// B/s columns are rates over the inter-snapshot wall-clock delta;
// without one they are cumulative totals.
func render(w *os.File, snap, prev *ccs.Snapshot) {
	fmt.Fprintf(w, "converse mesh: %d PEs, %d reachable", snap.NumPEs, len(snap.PEs))
	if len(snap.Missing) > 0 {
		fmt.Fprintf(w, ", missing ranks %v", snap.Missing)
	}
	fmt.Fprintf(w, "  (%s)\n\n", time.Unix(0, snap.UnixNanos).Format("15:04:05"))

	rateHdr := "TOT-MSG   TOT-B"
	var dt float64
	prevByPE := map[int]ccs.PEView{}
	if prev != nil {
		dt = float64(snap.UnixNanos-prev.UnixNanos) / 1e9
		if dt > 0 {
			rateHdr = "MSG/s     B/s"
		}
		for _, v := range prev.PEs {
			prevByPE[v.PE] = v
		}
	}
	fmt.Fprintf(w, "%4s %4s %6s %6s %6s %6s %5s %-9s %-9s %7s %s\n",
		"PE", "RANK", "UTIL%", "QLEN", "QHWM", "INBOX", "IDLE", rateHdr[:7], rateHdr[8:], "STALLS", "STATE")
	for _, v := range snap.PEs {
		util, qhwm := "-", "-"
		sent, sentB := uint64(0), uint64(0)
		stalls := uint64(0)
		if m := v.Metrics; m != nil {
			util = fmt.Sprintf("%.1f", m.Utilization()*100)
			qhwm = fmt.Sprintf("%d", m.QueueHWM)
			sent, sentB = sum64(m.SentMsgs), m.TotalSentBytes()
			stalls = m.NetStalls
		}
		msgCol, byteCol := fmt.Sprintf("%d", sent), fmtBytes(sentB)
		if pv, ok := prevByPE[v.PE]; ok && dt > 0 && pv.Metrics != nil && v.Metrics != nil {
			dm := float64(sent-sum64(pv.Metrics.SentMsgs)) / dt
			db := float64(sentB-pv.Metrics.TotalSentBytes()) / dt
			msgCol, byteCol = fmt.Sprintf("%.0f", dm), fmtBytes(uint64(db))
		}
		state := v.Blocked
		if !v.Fresh {
			state += " [stale]"
		}
		fmt.Fprintf(w, "%4d %4d %6s %6d %6s %6d %5d %-9s %-9s %7d %s\n",
			v.PE, v.Rank, util, v.Sched.QueueLen, qhwm, v.InboxLen,
			v.Sched.IdleCount, msgCol, byteCol, stalls, state)
	}
}

func sum64(xs []uint64) uint64 {
	var t uint64
	for _, x := range xs {
		t += x
	}
	return t
}

func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fG", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fM", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fK", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%d", b)
}
