// figures regenerates the paper's evaluation figures (§5, Figures 4-8):
// message-passing performance of Converse versus the native layer on the
// five machines of the evaluation — HP workstations on an ATM switch
// (Fig. 4), Cray T3D (Fig. 5), Suns on Myrinet with FM including the
// scheduler-queueing experiment (Fig. 6), IBM SP-1 (Fig. 7), and the
// Intel Paragon under SUNMOS (Fig. 8).
//
// Usage:
//
//	figures [-fig N] [-rounds N]
//
// With no -fig, all five figures print. Times are virtual microseconds
// from the machine cost models driven through the real runtime code
// paths; EXPERIMENTS.md compares the shapes to the paper's.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"converse/bench"
)

func main() {
	figNum := flag.Int("fig", 0, "figure number (4-8); 0 = all")
	rounds := flag.Int("rounds", 200, "round trips per measurement point")
	flag.Parse()

	printed := false
	for _, fig := range bench.Figures() {
		if *figNum != 0 && fig.Number != *figNum {
			continue
		}
		if err := bench.Print(os.Stdout, fig, *rounds); err != nil {
			log.Fatal(err)
		}
		printed = true
	}
	if !printed {
		fmt.Fprintf(os.Stderr, "no such figure %d (the paper has Figures 4-8)\n", *figNum)
		os.Exit(1)
	}
}
