// pingpong is the standalone round-trip measurement tool behind the
// paper's §5 experiments: it sends messages back and forth between two
// processors of a simulated machine and reports the average one-way
// time, for a chosen machine model, message size, and layer.
//
// Usage:
//
//	pingpong [-machine name] [-size bytes] [-rounds n] [-layer native|converse|queued] [-trace file]
//
// Machines: atm-hp, t3d, myrinet-fm, sp1, paragon. With -trace, a small
// traced run is also performed and its event stream written in the
// standard trace format (§3.3.2).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	core "converse"
	"converse/bench"
	"converse/netmodel"
	"converse/trace"
)

func main() {
	machineName := flag.String("machine", "myrinet-fm", "machine model: atm-hp, t3d, myrinet-fm, sp1, paragon")
	size := flag.Int("size", 64, "message size in bytes")
	rounds := flag.Int("rounds", 1000, "number of round trips")
	layer := flag.String("layer", "converse", "layer to measure: native, converse, queued")
	traceFile := flag.String("trace", "", "also write a 10-round traced run to this file")
	flag.Parse()

	var model *netmodel.Model
	switch strings.ToLower(*machineName) {
	case "atm-hp", "atmhp":
		model = netmodel.ATMHP()
	case "t3d":
		model = netmodel.T3D()
	case "myrinet-fm", "fm", "myrinet":
		model = netmodel.MyrinetFM()
	case "sp1", "sp":
		model = netmodel.SP1()
	case "paragon":
		model = netmodel.Paragon()
	default:
		log.Fatalf("unknown machine %q", *machineName)
	}

	var oneWay float64
	switch strings.ToLower(*layer) {
	case "native":
		oneWay = bench.Native(model, *size, *rounds)
	case "converse":
		oneWay = bench.Converse(model, *size, *rounds)
	case "queued":
		oneWay = bench.Queued(model, *size, *rounds)
	default:
		log.Fatalf("unknown layer %q", *layer)
	}

	fmt.Printf("%s, %d-byte messages, %d round trips, %s layer:\n",
		model.Name, *size, *rounds, *layer)
	fmt.Printf("  one-way time: %.2f us (round trip %.2f us)\n", oneWay, 2*oneWay)

	if *traceFile != "" {
		if err := writeTrace(model, *size, *traceFile); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  trace of a 10-round run written to %s\n", *traceFile)
	}
}

// writeTrace runs a short traced ping-pong and dumps the merged event
// stream in the standard format.
func writeTrace(model *netmodel.Model, size int, path string) error {
	col := trace.NewCollector(2)
	cm := core.NewMachine(core.Config{
		PEs: 2, Model: model, Watchdog: 30 * time.Second, Tracer: col.Tracer,
	})
	h := cm.RegisterHandler(func(p *core.Proc, msg []byte) {})
	payload := size - core.HeaderSize
	if payload < 0 {
		payload = 0
	}
	err := cm.Run(func(p *core.Proc) {
		msg := core.NewMsg(h, payload)
		for i := 0; i < 10; i++ {
			if p.MyPe() == 0 {
				p.SyncSend(1, msg)
				p.GetSpecificMsg(h)
			} else {
				p.GetSpecificMsg(h)
				p.SyncSend(0, msg)
			}
		}
	})
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return col.WriteText(f)
}
