// traceview is the Projections-style performance analysis tool of
// §3.3.2: it runs a built-in workload under tracing (or reads a trace
// previously exported in the standard text format) and prints per-PE
// utilization bars, the top handlers by inclusive time, and the PE×PE
// message-volume matrix. With -json it also exports the merged stream
// as Chrome trace-event JSON, loadable in Perfetto (ui.perfetto.dev)
// or chrome://tracing.
//
// Usage:
//
//	traceview [-workload pingpong|jacobi] [-pes n] [-machine name] [-rounds n]
//	          [-in trace.txt] [-json out.json] [-bins n] [-top n]
//
// Machines: atm-hp, t3d, myrinet-fm, sp1, paragon.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	core "converse"
	"converse/lang/sm"
	"converse/metrics"
	"converse/netmodel"
	"converse/trace"
)

func main() {
	workload := flag.String("workload", "pingpong", "built-in workload to trace: pingpong, jacobi")
	pes := flag.Int("pes", 4, "number of processors for the built-in workload")
	machineName := flag.String("machine", "myrinet-fm", "machine model: atm-hp, t3d, myrinet-fm, sp1, paragon")
	rounds := flag.Int("rounds", 50, "pingpong rounds / jacobi iteration cap")
	inFile := flag.String("in", "", "read this exported trace instead of running a workload")
	jsonFile := flag.String("json", "", "write the merged stream as Chrome trace-event JSON here")
	bins := flag.Int("bins", 40, "time bins in the utilization display")
	top := flag.Int("top", 10, "handlers to list in the time profile")
	flag.Parse()

	var (
		events []core.TraceEvent
		nPEs   int
		schema *trace.Schema
		snap   *metrics.Snapshot
	)

	if *inFile != "" {
		parsed, err := readTrace(*inFile)
		if err != nil {
			log.Fatal(err)
		}
		events, nPEs, schema = parsed.Events, parsed.PEs, parsed.Schema
		fmt.Printf("trace: %s (%d events, %d PEs)\n", *inFile, len(events), nPEs)
	} else {
		model := lookupModel(*machineName)
		col := trace.NewCollector(*pes)
		reg := metrics.New(*pes)
		switch strings.ToLower(*workload) {
		case "pingpong":
			runPingPong(col, reg, model, *pes, *rounds)
		case "jacobi":
			runJacobi(col, reg, model, *pes, *rounds)
		default:
			log.Fatalf("unknown workload %q", *workload)
		}
		events, nPEs, schema = col.Merged(), *pes, col.Schema()
		s := reg.Snapshot()
		snap = &s
		fmt.Printf("workload: %s on %d PEs (%s), %d trace events\n",
			*workload, nPEs, model.Name, len(events))
	}

	printUtilization(events, nPEs, *bins)
	printHandlerProfile(events, nPEs, *top, schema)
	printMessageMatrix(events, nPEs)
	if snap != nil {
		printMetrics(snap)
	}

	if *jsonFile != "" {
		f, err := os.Create(*jsonFile)
		if err != nil {
			log.Fatal(err)
		}
		if err := trace.WriteChrome(f, nPEs, events, schema); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nChrome trace-event JSON written to %s (open in ui.perfetto.dev)\n", *jsonFile)
	}
}

func lookupModel(name string) *netmodel.Model {
	switch strings.ToLower(name) {
	case "atm-hp", "atmhp":
		return netmodel.ATMHP()
	case "t3d":
		return netmodel.T3D()
	case "myrinet-fm", "fm", "myrinet":
		return netmodel.MyrinetFM()
	case "sp1", "sp":
		return netmodel.SP1()
	case "paragon":
		return netmodel.Paragon()
	default:
		log.Fatalf("unknown machine %q", name)
		return nil
	}
}

func readTrace(path string) (*trace.Parsed, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.ReadText(f)
}

// --- built-in workloads ----------------------------------------------

// runPingPong circulates a token around the PE ring for the given
// number of laps, with every hop traced.
func runPingPong(col *trace.Collector, reg *metrics.Registry, model *netmodel.Model, pes, rounds int) {
	cm := core.NewMachine(core.Config{
		PEs: pes, Model: model, Watchdog: 60 * time.Second,
		Tracer: col.Tracer, Metrics: reg,
	})
	var hToken, hStop int
	hToken = cm.RegisterHandler(func(p *core.Proc, msg []byte) {
		laps := int(binary.LittleEndian.Uint32(core.Payload(msg)))
		if p.MyPe() == 0 {
			laps--
		}
		if laps == 0 {
			for d := 0; d < p.NumPes(); d++ {
				p.SyncSendAndFree(d, core.NewMsg(hStop, 0))
			}
			return
		}
		fwd := core.NewMsg(hToken, 4)
		binary.LittleEndian.PutUint32(core.Payload(fwd), uint32(laps))
		p.SyncSendAndFree((p.MyPe()+1)%p.NumPes(), fwd)
	})
	hStop = cm.RegisterHandler(func(p *core.Proc, msg []byte) { p.ExitScheduler() })
	col.Schema().NameHandler(hToken, "token")
	col.Schema().NameHandler(hStop, "stop")
	err := cm.Run(func(p *core.Proc) {
		if p.MyPe() == 0 {
			msg := core.NewMsg(hToken, 4)
			binary.LittleEndian.PutUint32(core.Payload(msg), uint32(rounds+1))
			p.SyncSendAndFree(1%p.NumPes(), msg)
		}
		p.Scheduler(-1)
	})
	if err != nil {
		log.Fatal(err)
	}
}

// runJacobi runs the 1-D Jacobi relaxation of examples/jacobi (SM-layer
// halo exchange plus a message-driven residual monitor) under tracing.
func runJacobi(col *trace.Collector, reg *metrics.Registry, model *netmodel.Model, pes, iterCap int) {
	const (
		perPE  = 16
		tol    = 1e-4
		leftT  = 0.0
		rightT = 100.0
	)
	const (
		tagLeft  = 1
		tagRight = 2
		tagDelta = 3
		tagConv  = 4
	)
	f64 := func(b []byte) float64 { return math.Float64frombits(binary.LittleEndian.Uint64(b)) }
	bytes64 := func(v float64) []byte {
		return binary.LittleEndian.AppendUint64(nil, math.Float64bits(v))
	}

	cm := core.NewMachine(core.Config{
		PEs: pes, Model: model, Watchdog: 120 * time.Second,
		Tracer: col.Tracer, Metrics: reg,
	})
	hMon := cm.RegisterHandler(func(p *core.Proc, msg []byte) {})
	col.Schema().NameHandler(hMon, "residual-monitor")
	err := cm.Run(func(p *core.Proc) {
		s := sm.Attach(p)
		me := p.MyPe()
		u := make([]float64, perPE+2)
		nu := make([]float64, perPE+2)
		if me == 0 {
			u[0] = leftT
		}
		if me == pes-1 {
			u[perPE+1] = rightT
		}
		converged := false
		for it := 0; it < iterCap && !converged; it++ {
			if me > 0 {
				s.Send(me-1, tagRight, bytes64(u[1]))
			}
			if me < pes-1 {
				s.Send(me+1, tagLeft, bytes64(u[perPE]))
			}
			p.Scheduler(4)
			if me > 0 {
				d, _ := s.RecvFrom(me-1, tagLeft)
				u[0] = f64(d)
			}
			if me < pes-1 {
				d, _ := s.RecvFrom(me+1, tagRight)
				u[perPE+1] = f64(d)
			}
			var delta float64
			for i := 1; i <= perPE; i++ {
				nu[i] = 0.5 * (u[i-1] + u[i+1])
				delta = math.Max(delta, math.Abs(nu[i]-u[i]))
			}
			nu[0], nu[perPE+1] = u[0], u[perPE+1]
			u, nu = nu, u
			if me != 0 {
				s.Send(0, tagDelta, bytes64(delta))
				d, _, _ := s.Recv(tagConv)
				converged = d[0] == 1
			} else {
				for i := 1; i < pes; i++ {
					d, _, _ := s.Recv(tagDelta)
					delta = math.Max(delta, f64(d))
				}
				converged = delta < tol
				flag := []byte{0}
				if converged {
					flag[0] = 1
				}
				s.Broadcast(tagConv, flag)
				p.SyncSendAndFree(0, core.MakeMsg(hMon, bytes64(delta)))
			}
		}
		p.ScheduleUntilIdle()
	})
	if err != nil {
		log.Fatal(err)
	}
}

// --- report rendering ------------------------------------------------

func bar(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac*float64(width) + 0.5)
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}

func printUtilization(events []core.TraceEvent, pes, bins int) {
	u := trace.ComputeUtilization(events, pes, bins)
	nbins := 0
	if pes > 0 {
		nbins = len(u.Bins[0])
	}
	fmt.Printf("\nutilization over %.1f virtual us (%d bins of %.1f us):\n",
		u.End-u.Start, nbins, u.BinWidth())
	for pe := 0; pe < pes; pe++ {
		fmt.Printf("  PE %2d %5.1f%% |%s|\n", pe, 100*u.PEBusy(pe), bar(u.PEBusy(pe), 40))
	}
	var total float64
	for pe := 0; pe < pes; pe++ {
		total += u.PEBusy(pe)
	}
	fmt.Printf("  mean  %5.1f%%\n", 100*total/float64(pes))
}

func printHandlerProfile(events []core.TraceEvent, pes, top int, schema *trace.Schema) {
	prof := trace.HandlerProfile(events, pes)
	fmt.Printf("\ntop handlers by inclusive virtual time:\n")
	fmt.Printf("  %-24s %10s %12s %10s %10s\n", "handler", "calls", "incl us", "max us", "bytes")
	for i, h := range prof {
		if i >= top {
			fmt.Printf("  ... and %d more\n", len(prof)-top)
			break
		}
		name := fmt.Sprintf("handler-%d", h.Handler)
		if schema != nil {
			name = schema.HandlerName(h.Handler)
		}
		fmt.Printf("  %-24s %10d %12.1f %10.1f %10d\n",
			name, h.Count, h.InclusiveUs, h.MaxUs, h.Bytes)
	}
	if len(prof) == 0 {
		fmt.Printf("  (no handler events in trace)\n")
	}
}

func printMessageMatrix(events []core.TraceEvent, pes int) {
	msgs, bytes := trace.MessageMatrix(events, pes)
	fmt.Printf("\nmessage volume (messages, src row -> dst column):\n")
	fmt.Printf("  %6s", "")
	for d := 0; d < pes; d++ {
		fmt.Printf(" %8s", fmt.Sprintf("->%d", d))
	}
	fmt.Printf(" %10s\n", "bytes out")
	for s := 0; s < pes; s++ {
		fmt.Printf("  PE %2d", s)
		var rowBytes uint64
		for d := 0; d < pes; d++ {
			fmt.Printf(" %8d", msgs[s][d])
			rowBytes += bytes[s][d]
		}
		fmt.Printf(" %10d\n", rowBytes)
	}
}

func printMetrics(snap *metrics.Snapshot) {
	fmt.Printf("\nruntime metrics:\n")
	fmt.Printf("  %4s %10s %10s %10s %8s %8s %8s %8s\n",
		"PE", "busy us", "idle us", "dispatch", "q-hwm", "thr-sw", "seeds", "util")
	for _, pe := range snap.PEs {
		seeds := pe.SeedsDeposited + pe.SeedsRooted + pe.SeedsForwarded
		fmt.Printf("  %4d %10.1f %10.1f %10d %8d %8d %8d %7.1f%%\n",
			pe.PE, pe.BusyUs, pe.SchedIdleUs, pe.Dispatches, pe.QueueHWM,
			pe.ThreadSwitches, seeds, 100*pe.Utilization())
	}
	// Busiest handlers by metrics (latency histograms aggregated
	// machine-wide), complementing the trace-derived profile.
	totals := snap.HandlerTotals()
	sort.Slice(totals, func(i, j int) bool { return totals[i].TimeUs > totals[j].TimeUs })
	if len(totals) > 0 {
		h := totals[0]
		fmt.Printf("  hottest handler by metrics: id %d (%d calls, %.1f us total)\n",
			h.Handler, h.Count, h.TimeUs)
	}
}
