// Package converse is a Go implementation of Converse, the
// interoperable framework for parallel programming of Kale, Bhandarkar,
// Jagathesan and Krishnan (IPPS 1996). Converse lets modules written in
// different parallel paradigms — single-process (SPMD) modules,
// message-driven concurrent objects, and threads — coexist and
// interleave in a single parallel program, under one unified scheduler,
// paying only for the features each module uses.
//
// The package re-exports the core runtime (internal/core); the paper's
// other components have public facade packages:
//
//   - converse/netmodel — communication-cost models for the paper's
//     five evaluation machines (Figures 4-8)
//   - converse/bench — the measurement harness behind those figures and
//     the fast-path benchmarks
//   - converse/cth — thread objects (suspend/resume divorced from
//     scheduling policy)
//   - converse/csync — locks, condition variables, barriers
//   - converse/msgmgr — tagged message managers
//   - converse/ldb — seed-based dynamic load balancing
//   - converse/trace — event tracing, causal merge and Perfetto export
//   - converse/metrics — allocation-free per-PE runtime metrics
//   - converse/lang/{sm,tsm,dp,pvmc,charm,mdt} — language runtimes
//     built on the framework
//
// # Sending and message ownership
//
// Proc.Send is the unified entry point. By default the runtime copies
// the message and the caller keeps its buffer; passing the Transfer
// option hands the buffer to the runtime, which recycles it through
// the per-PE message pool once sent:
//
//	p.Send(dst, msg)                      // copy; caller keeps msg
//	p.Send(dst, msg, converse.Transfer)   // runtime takes msg
//	p.Send(converse.BroadcastOthers, msg) // every other processor
//	p.Send(converse.BroadcastAll, msg, converse.Transfer)
//
// Allocate send buffers with Proc.Alloc to hit the pool's sized
// classes; in steady state a Transfer send then completes without
// heap allocation. Small messages to the same destination are
// coalesced into one packet when Config.Coalesce.Enabled is set;
// delivery order per sender/receiver pair is preserved either way.
//
// # Nodes, topology and collectives
//
// A machine is a set of nodes, each hosting one or more processors —
// the paper's CmiMyNode/CmiNumNodes family. Proc.MyNode, Proc.NumNodes,
// Proc.NodeSize, Proc.NodeOf and Proc.NodeFirstPE expose the node×PE
// map; the old flat-PE helpers (Proc.MyPe, Proc.NumPes) remain and
// describe the same machine. Under the simulated substrate
// Config.NodeSizes shapes the map (nil = one node per PE); under TCP it
// comes from converserun -nodes/-ppn, and processors sharing a node
// share one OS process, exchanging intra-node messages by in-memory
// pointer handoff instead of the wire.
//
// Collectives are topology-aware: Proc.Broadcast, Proc.Reduce (with a
// Combiner registered machine-wide via RegisterCombiner) and
// Proc.Barrier all run on one two-level spanning tree — binomial across
// nodes, then a flat fan-out inside each node. The Send sentinels
// BroadcastOthers/BroadcastAll delegate to the same tree.
//
// # Quick start
//
//	cm := converse.NewMachine(converse.Config{PEs: 2})
//	var hPing int
//	hPing = cm.RegisterHandler(func(p *converse.Proc, msg []byte) {
//		if p.MyPe() == 1 {
//			p.SyncSend(0, converse.MakeMsg(hPing, converse.Payload(msg)))
//			return
//		}
//		p.Printf("reply: %s\n", converse.Payload(msg))
//		p.ExitScheduler()
//	})
//	cm.Run(func(p *converse.Proc) {
//		if p.MyPe() == 0 {
//			p.SyncSend(1, converse.MakeMsg(hPing, []byte("hello")))
//		}
//		p.Scheduler(-1)
//	})
//
// See examples/ for multi-paradigm programs and cmd/figures for the
// harness that regenerates the paper's evaluation figures.
package converse

import (
	"converse/internal/core"
	"converse/internal/metrics"
)

// Machine is a Converse machine: a simulated multicomputer with one
// Converse runtime instance per processor.
type Machine = core.Machine

// Config parameterizes a Machine.
type Config = core.Config

// Proc is one processor's Converse runtime instance.
type Proc = core.Proc

// Handler is a message-handler function (registered per processor).
type Handler = core.Handler

// CommHandle tracks an asynchronous communication operation.
type CommHandle = core.CommHandle

// Tracer receives runtime trace events.
type Tracer = core.Tracer

// TraceEvent is one trace record.
type TraceEvent = core.TraceEvent

// CoalesceConfig controls per-peer small-message coalescing
// (Config.Coalesce).
type CoalesceConfig = core.CoalesceConfig

// SendOpt is an option flag for Proc.Send.
type SendOpt = core.SendOpt

// Transfer makes Send take ownership of the message buffer: the
// caller must not touch it afterwards, and the runtime recycles it
// through the message pool.
const Transfer = core.Transfer

// ExcludeSelf makes Proc.Broadcast skip the calling processor (the
// Send sentinel BroadcastOthers passes it for you).
const ExcludeSelf = core.ExcludeSelf

// Combiner merges two reduction contributions into one (Proc.Reduce);
// it must be associative and commutative. Register combiners
// machine-wide with Machine.RegisterCombiner before Run.
type Combiner = core.Combiner

// BroadcastOthers, passed as the destination to Proc.Send, delivers
// the message to every processor except the sender; BroadcastAll
// includes the sender.
const (
	BroadcastOthers = core.BroadcastOthers
	BroadcastAll    = core.BroadcastAll
)

// HeaderSize is the generalized-message header size in bytes.
const HeaderSize = core.HeaderSize

// Transport values for Config.Transport: TransportAuto picks the TCP
// network machine inside a converserun job and the simulated
// multicomputer otherwise; the other two force a substrate.
const (
	TransportAuto = core.TransportAuto
	TransportSim  = core.TransportSim
	TransportTCP  = core.TransportTCP
)

// Failure policies for Config.FailurePolicy on the TCP network
// substrate: FailFast (the default) kills the whole job on the first
// link fault; FailRetry turns on the reliability sub-layer (checksums,
// acks, retransmission, session-resuming reconnection) and converts an
// unrecovered link into a peer-down notification delivered through
// Proc.NotifyPeerDown.
const (
	FailFast  = core.FailFast
	FailRetry = core.FailRetry
)

// NewMachine creates a Converse machine.
func NewMachine(cfg Config) *Machine { return core.NewMachine(cfg) }

// NewMsg allocates a generalized message with the given handler index
// and payload length.
func NewMsg(handler, payloadLen int) []byte { return core.NewMsg(handler, payloadLen) }

// MakeMsg builds a generalized message carrying a copy of payload.
func MakeMsg(handler int, payload []byte) []byte { return core.MakeMsg(handler, payload) }

// SetHandler stores the handler index in a message's header.
func SetHandler(msg []byte, handler int) { core.SetHandler(msg, handler) }

// HandlerOf extracts the handler index from a message's header.
func HandlerOf(msg []byte) int { return core.HandlerOf(msg) }

// Payload returns the message body after the header.
func Payload(msg []byte) []byte { return core.Payload(msg) }

// SetFlags stores the flag word in a message's header.
func SetFlags(msg []byte, flags uint32) { core.SetFlags(msg, flags) }

// FlagsOf extracts the flag word from a message's header.
func FlagsOf(msg []byte) uint32 { return core.FlagsOf(msg) }

// SetImmediate marks a message for dispatch on arrival, bypassing the
// scheduler queue (and the coalescing stage).
func SetImmediate(msg []byte) { core.SetImmediate(msg) }

// IsImmediate reports whether a message carries the immediate flag.
func IsImmediate(msg []byte) bool { return core.IsImmediate(msg) }

// NewMetrics builds a per-PE metrics registry for a machine of the
// given size; attach it via Config.Metrics and read it with
// Registry.Snapshot (safe while the machine runs). With no registry
// attached, the instrumented runtime paths cost only a nil check.
func NewMetrics(pes int) *metrics.Registry { return metrics.New(pes) }

// MetricsRegistry is the per-machine metrics registry type.
type MetricsRegistry = metrics.Registry

// MetricsSnapshot is a merged, read-consistent view of a registry.
type MetricsSnapshot = metrics.Snapshot
