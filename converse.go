// Package converse is a Go implementation of Converse, the
// interoperable framework for parallel programming of Kale, Bhandarkar,
// Jagathesan and Krishnan (IPPS 1996). Converse lets modules written in
// different parallel paradigms — single-process (SPMD) modules,
// message-driven concurrent objects, and threads — coexist and
// interleave in a single parallel program, under one unified scheduler,
// paying only for the features each module uses.
//
// The package re-exports the core runtime (internal/core); the paper's
// other components live in sibling packages of internal/:
//
//   - internal/machine — the simulated multicomputer substrate
//   - internal/netmodel — communication-cost models for the paper's five
//     evaluation machines (Figures 4-8)
//   - internal/queue — pluggable scheduler queueing strategies,
//     including bit-vector priorities
//   - internal/cth — thread objects (suspend/resume divorced from
//     scheduling policy)
//   - internal/csync — locks, condition variables, barriers
//   - internal/msgmgr — tagged message managers
//   - internal/emi — scatter/gather, global pointers, processor groups
//   - internal/ldb — seed-based dynamic load balancing
//   - internal/trace — event tracing, causal merge and Perfetto export
//   - internal/metrics — allocation-free per-PE runtime metrics
//   - internal/lang/{sm,tsm,pvmc,charm,mdt} — language runtimes built on
//     the framework
//
// # Quick start
//
//	cm := converse.NewMachine(converse.Config{PEs: 2})
//	var hPing int
//	hPing = cm.RegisterHandler(func(p *converse.Proc, msg []byte) {
//		if p.MyPe() == 1 {
//			p.SyncSend(0, converse.MakeMsg(hPing, converse.Payload(msg)))
//			return
//		}
//		p.Printf("reply: %s\n", converse.Payload(msg))
//		p.ExitScheduler()
//	})
//	cm.Run(func(p *converse.Proc) {
//		if p.MyPe() == 0 {
//			p.SyncSend(1, converse.MakeMsg(hPing, []byte("hello")))
//		}
//		p.Scheduler(-1)
//	})
//
// See examples/ for multi-paradigm programs and cmd/figures for the
// harness that regenerates the paper's evaluation figures.
package converse

import (
	"converse/internal/core"
	"converse/internal/metrics"
)

// Machine is a Converse machine: a simulated multicomputer with one
// Converse runtime instance per processor.
type Machine = core.Machine

// Config parameterizes a Machine.
type Config = core.Config

// Proc is one processor's Converse runtime instance.
type Proc = core.Proc

// Handler is a message-handler function (registered per processor).
type Handler = core.Handler

// CommHandle tracks an asynchronous communication operation.
type CommHandle = core.CommHandle

// Tracer receives runtime trace events.
type Tracer = core.Tracer

// TraceEvent is one trace record.
type TraceEvent = core.TraceEvent

// HeaderSize is the generalized-message header size in bytes.
const HeaderSize = core.HeaderSize

// NewMachine creates a Converse machine.
func NewMachine(cfg Config) *Machine { return core.NewMachine(cfg) }

// NewMsg allocates a generalized message with the given handler index
// and payload length.
func NewMsg(handler, payloadLen int) []byte { return core.NewMsg(handler, payloadLen) }

// MakeMsg builds a generalized message carrying a copy of payload.
func MakeMsg(handler int, payload []byte) []byte { return core.MakeMsg(handler, payload) }

// SetHandler stores the handler index in a message's header.
func SetHandler(msg []byte, handler int) { core.SetHandler(msg, handler) }

// HandlerOf extracts the handler index from a message's header.
func HandlerOf(msg []byte) int { return core.HandlerOf(msg) }

// Payload returns the message body after the header.
func Payload(msg []byte) []byte { return core.Payload(msg) }

// NewMetrics builds a per-PE metrics registry for a machine of the
// given size; attach it via Config.Metrics and read it with
// Registry.Snapshot (safe while the machine runs). With no registry
// attached, the instrumented runtime paths cost only a nil check.
func NewMetrics(pes int) *metrics.Registry { return metrics.New(pes) }

// MetricsRegistry is the per-machine metrics registry type.
type MetricsRegistry = metrics.Registry

// MetricsSnapshot is a merged, read-consistent view of a registry.
type MetricsSnapshot = metrics.Snapshot
