// Package csync re-exports the thread-synchronization abstractions
// built on the Converse threads package: locks, condition variables
// and barriers that suspend threads instead of spinning. See
// converse/internal/csync for details.
package csync

import (
	"converse/internal/csync"
	"converse/internal/cth"
)

// Lock is a thread-suspending mutual-exclusion lock.
type Lock = csync.Lock

// Cond is a thread-suspending condition variable.
type Cond = csync.Cond

// Barrier is a local thread barrier.
type Barrier = csync.Barrier

// NewLock creates a lock on the given thread runtime.
func NewLock(rt *cth.Runtime) *Lock { return csync.NewLock(rt) }

// NewCond creates a condition variable on the given thread runtime.
func NewCond(rt *cth.Runtime) *Cond { return csync.NewCond(rt) }

// NewBarrier creates a barrier on the given thread runtime.
func NewBarrier(rt *cth.Runtime) *Barrier { return csync.NewBarrier(rt) }
