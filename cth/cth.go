// Package cth re-exports the Converse threads runtime (§3.2.1):
// user-level threads that interleave with handler execution under the
// unified scheduler. See converse/internal/cth for details.
package cth

import (
	"converse/internal/core"
	"converse/internal/cth"
)

// Runtime is a processor's thread runtime.
type Runtime = cth.Runtime

// Thread is one user-level thread.
type Thread = cth.Thread

// Init creates (or returns) the thread runtime for a processor.
func Init(p *core.Proc) *Runtime { return cth.Init(p) }

// Get returns the processor's thread runtime, initializing on demand.
func Get(p *core.Proc) *Runtime { return cth.Get(p) }
