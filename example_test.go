package converse_test

import (
	"fmt"
	"time"

	"converse"
	"converse/internal/cth"
	"converse/internal/lang/mdt"
)

// Example_pingPong is the canonical Converse program: generalized
// messages dispatched by handler index under the unified scheduler.
func Example_pingPong() {
	cm := converse.NewMachine(converse.Config{PEs: 2, Watchdog: 10 * time.Second})
	out := make(chan string, 1)
	var h int
	h = cm.RegisterHandler(func(p *converse.Proc, msg []byte) {
		if p.MyPe() == 1 {
			p.SyncSend(0, converse.MakeMsg(h, append(converse.Payload(msg), "+pong"...)))
		} else {
			out <- string(converse.Payload(msg))
		}
		p.ExitScheduler()
	})
	if err := cm.Run(func(p *converse.Proc) {
		if p.MyPe() == 0 {
			p.SyncSend(1, converse.MakeMsg(h, []byte("ping")))
		}
		p.Scheduler(-1)
	}); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(<-out)
	// Output: ping+pong
}

// Example_priorities shows the scheduler's prioritized queueing (§2.3):
// lower priority values dispatch first, before the default FIFO lane.
func Example_priorities() {
	cm := converse.NewMachine(converse.Config{PEs: 1, Watchdog: 10 * time.Second})
	h := cm.RegisterHandler(func(p *converse.Proc, msg []byte) {
		fmt.Printf("%s ", converse.Payload(msg))
	})
	_ = cm.Run(func(p *converse.Proc) {
		p.Enqueue(converse.MakeMsg(h, []byte("default")))
		p.EnqueuePrio(converse.MakeMsg(h, []byte("urgent")), -1)
		p.EnqueuePrio(converse.MakeMsg(h, []byte("lazy")), 99)
		p.ScheduleUntilIdle()
	})
	fmt.Println()
	// Output: urgent default lazy
}

// Example_threads shows thread objects: cooperative suspend/resume with
// no hidden scheduler.
func Example_threads() {
	cm := converse.NewMachine(converse.Config{PEs: 1, Watchdog: 10 * time.Second})
	_ = cm.Run(func(p *converse.Proc) {
		rt := cth.Init(p)
		th := rt.Create(func() {
			fmt.Println("thread: first slice")
			rt.Suspend()
			fmt.Println("thread: second slice")
		})
		fmt.Println("main: resuming")
		rt.Resume(th)
		fmt.Println("main: back")
		rt.Resume(th)
	})
	// Output:
	// main: resuming
	// thread: first slice
	// main: back
	// thread: second slice
}

// Example_coordinationLanguage runs the paper's §4 message-driven
// thread language: two threads conversing by tag across processors.
func Example_coordinationLanguage() {
	cm := converse.NewMachine(converse.Config{PEs: 2, Watchdog: 10 * time.Second})
	out := make(chan string, 1)
	_ = cm.Run(func(p *converse.Proc) {
		m := mdt.Attach(p)
		if p.MyPe() == 0 {
			m.CreateThread(func() {
				m.Send(1, 7, []byte("work"))
				out <- string(m.Recv(8))
			})
		} else {
			m.CreateThread(func() {
				d := m.Recv(7)
				m.Send(0, 8, append(d, " done"...))
			})
		}
		m.Run()
	})
	fmt.Println(<-out)
	// Output: work done
}
