// branchbound demonstrates the paper's §2.3 argument for prioritized
// queueing strategies: "branch-and-bound problems, where the lower-bound
// of a node must be used as a priority to get good speedups".
//
// A 0/1 knapsack instance is solved by message-driven branch and bound
// over the Charm-flavoured chare runtime on a 4-PE simulated machine:
// every search node is an asynchronous invocation of a solver chare on a
// pseudo-random processor; incumbent improvements are broadcast; the
// computation ends by quiescence detection.
//
// The same search runs twice: once with the scheduler's default FIFO
// lane, and once with each node prioritized by (the negation of) its
// optimistic bound, so the most promising subtrees are explored first.
// Best-first pruning expands far fewer nodes — the effect the paper says
// prioritized queueing exists to provide.
//
// Run with: go run ./examples/branchbound
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"converse"
	"converse/lang/charm"
	"converse/ldb"
)

const (
	pes   = 4
	items = 18
)

// The knapsack instance (deterministic, moderately adversarial):
// weights and values with correlated noise, capacity at ~45%.
var (
	weights  [items]int64
	values   [items]int64
	capacity int64
)

func init() {
	state := int64(0x9e3779b9)
	next := func(mod int64) int64 {
		state = state*6364136223846793005 + 1442695040888963407
		v := (state >> 33) % mod
		if v < 0 {
			v += mod
		}
		return v
	}
	var total int64
	for i := 0; i < items; i++ {
		weights[i] = 10 + next(90)
		values[i] = weights[i] + next(40) // weakly correlated: hard-ish
		total += weights[i]
	}
	capacity = total * 45 / 100
}

// bound computes the fractional-relaxation optimistic bound for a node
// that has decided items [0,idx) with the given remaining capacity and
// accumulated value. Items are pre-sorted by density in sortOrder.
func bound(idx int, room, value int64) int64 {
	b := value
	for _, it := range sortOrder {
		if it < idx {
			continue
		}
		if weights[it] <= room {
			room -= weights[it]
			b += values[it]
		} else {
			b += values[it] * room / weights[it]
			break
		}
	}
	return b
}

// sortOrder holds item indices sorted by value density (descending).
var sortOrder [items]int

func init() {
	for i := range sortOrder {
		sortOrder[i] = i
	}
	for i := 1; i < items; i++ { // insertion sort by density
		for j := i; j > 0; j-- {
			a, b := sortOrder[j], sortOrder[j-1]
			if values[a]*weights[b] > values[b]*weights[a] {
				sortOrder[j], sortOrder[j-1] = b, a
			} else {
				break
			}
		}
	}
}

// node wire format: [idx u32][room i64][value i64]
func encodeNode(idx int, room, value int64) []byte {
	buf := make([]byte, 20)
	binary.LittleEndian.PutUint32(buf[0:], uint32(idx))
	binary.LittleEndian.PutUint64(buf[4:], uint64(room))
	binary.LittleEndian.PutUint64(buf[12:], uint64(value))
	return buf
}

func decodeNode(b []byte) (idx int, room, value int64) {
	return int(binary.LittleEndian.Uint32(b[0:])),
		int64(binary.LittleEndian.Uint64(b[4:])),
		int64(binary.LittleEndian.Uint64(b[12:]))
}

// solver is the per-PE chare holding the local incumbent.
type solver struct {
	best int64
}

// run executes one complete search and reports (best value, nodes
// expanded).
func run(prioritized bool) (int64, int64) {
	cm := converse.NewMachine(converse.Config{PEs: pes, Watchdog: 120 * time.Second})
	var expanded int64
	var bestSeen int64 // reporting only; pruning uses per-PE incumbents

	err := cm.Run(func(p *converse.Proc) {
		rt := charm.Attach(p, ldb.NewSpray())
		var solverType int
		rng := uint32(p.MyPe()*2654435761 + 12345)
		nextPE := func() int {
			rng = rng*1664525 + 1013904223
			return int(rng>>16) % pes
		}
		spawn := func(rt *charm.RT, idx int, room, value int64) {
			// Scatter the shallow frontier for load balance; deeper
			// nodes stay local, so each processor's scheduler queue
			// holds a deep backlog whose service order is exactly the
			// queueing strategy under test.
			pe := rt.Proc().MyPe()
			if idx < 6 {
				pe = nextPE()
			}
			to := charm.ChareID{PE: pe, Local: 1}
			msg := encodeNode(idx, room, value)
			if prioritized {
				// Higher bound = more promising = lower priority value.
				rt.SendPrio(solverType, to, 0, msg, int32(-bound(idx, room, value)))
			} else {
				rt.Send(solverType, to, 0, msg)
			}
		}
		solverType = rt.Register(
			func(rt *charm.RT, self charm.ChareID, msg []byte) any { return &solver{} },
			// entry 0: expand a search node
			func(rt *charm.RT, obj any, msg []byte) {
				s := obj.(*solver)
				idx, room, value := decodeNode(msg)
				if bound(idx, room, value) <= s.best {
					return // pruned
				}
				atomic.AddInt64(&expanded, 1)
				if idx == items {
					if value > s.best {
						s.best = value
						for b := atomic.LoadInt64(&bestSeen); value > b; b = atomic.LoadInt64(&bestSeen) {
							if atomic.CompareAndSwapInt64(&bestSeen, b, value) {
								break
							}
						}
						// Broadcast the incumbent to every solver.
						nb := make([]byte, 8)
						binary.LittleEndian.PutUint64(nb, uint64(value))
						for pe := 0; pe < pes; pe++ {
							rt.Send(solverType, charm.ChareID{PE: pe, Local: 1}, 1, nb)
						}
					}
					return
				}
				it := sortOrder[idx]
				spawn(rt, idx+1, room, value) // branch: skip the item
				if weights[it] <= room {      // branch: take the item
					spawn(rt, idx+1, room-weights[it], value+values[it])
				}
			},
			// entry 1: incumbent update
			func(rt *charm.RT, obj any, msg []byte) {
				s := obj.(*solver)
				v := int64(binary.LittleEndian.Uint64(msg))
				if v > s.best {
					s.best = v
				}
			},
		)
		id := rt.CreateHere(solverType, nil) // Local id 1 on every PE
		if id.Local != 1 {
			panic("solver chare did not get local id 1")
		}
		if p.MyPe() == 0 {
			spawn(rt, 0, capacity, 0)
			rt.StartQD(func(rt *charm.RT) { rt.ExitAll() })
		}
		p.Scheduler(-1)
	})
	if err != nil {
		log.Fatal(err)
	}
	return atomic.LoadInt64(&bestSeen), atomic.LoadInt64(&expanded)
}

func main() {
	fmt.Printf("0/1 knapsack: %d items, capacity %d, %d PEs\n\n", items, capacity, pes)
	fifoBest, fifoNodes := run(false)
	prioBest, prioNodes := run(true)
	fmt.Printf("%-22s %-12s %-12s\n", "queueing strategy", "best value", "nodes expanded")
	fmt.Printf("%-22s %-12d %-12d\n", "FIFO (default lane)", fifoBest, fifoNodes)
	fmt.Printf("%-22s %-12d %-12d\n", "bound-prioritized", prioBest, prioNodes)
	if fifoBest != prioBest {
		log.Fatalf("strategies disagree on the optimum: %d vs %d", fifoBest, prioBest)
	}
	fmt.Printf("\nprioritized expansion explored %.1f%% of FIFO's nodes\n",
		100*float64(prioNodes)/float64(fifoNodes))
}
