// cg solves a linear system with the conjugate-gradient method written
// against the data-parallel layer (internal/lang/dp, the DP-Charm
// stand-in): block-distributed vectors, Shift for the matrix-vector
// product of a circulant operator, and spanning-tree reductions for the
// dot products. Everything is collective, loosely synchronous SPMD —
// the classic data-parallel notation the paper lists among its verified
// clients.
//
// The system: A x = b with A = circ(2+sigma, -1, 0, …, 0, -1), a shifted
// ring Laplacian (symmetric positive definite for sigma > 0).
//
// Run with: go run ./examples/cg
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"converse"
	"converse/lang/dp"
)

const (
	pes   = 4
	n     = 64  // unknowns
	sigma = 0.5 // diagonal shift making A SPD
	tol   = 1e-10
)

// matvec computes y = A v for the shifted ring Laplacian using two
// cyclic shifts (collective).
func matvec(d *dp.DP, v *dp.Vector) *dp.Vector {
	up := v.Shift(1)
	down := v.Shift(-1)
	y := d.NewVector(v.Len(), nil)
	vl, ul, dl, yl := v.Local(), up.Local(), down.Local(), y.Local()
	for k := range yl {
		yl[k] = (2+sigma)*vl[k] - ul[k] - dl[k]
	}
	return y
}

func main() {
	cm := converse.NewMachine(converse.Config{PEs: pes, Watchdog: 60 * time.Second})
	var iters int
	var relRes float64
	err := cm.Run(func(p *converse.Proc) {
		d := dp.Attach(p)

		b := d.NewVector(n, func(i int) float64 { return math.Sin(0.3*float64(i)) + 1 })
		x := d.NewVector(n, nil) // x0 = 0
		r := d.NewVector(n, nil)
		copy(r.Local(), b.Local()) // r = b - A*0
		pvec := d.NewVector(n, nil)
		copy(pvec.Local(), r.Local())

		bNorm := b.Norm2()
		rr := r.Dot(r)
		it := 0
		for ; it < 2*n; it++ {
			if math.Sqrt(rr)/bNorm < tol {
				break
			}
			ap := matvec(d, pvec)
			alpha := rr / pvec.Dot(ap)
			x.Axpy(alpha, pvec)
			r.Axpy(-alpha, ap)
			rrNew := r.Dot(r)
			beta := rrNew / rr
			rr = rrNew
			// p = r + beta*p
			pl, rl := pvec.Local(), r.Local()
			for k := range pl {
				pl[k] = rl[k] + beta*pl[k]
			}
		}

		// Verify: ||A x - b|| / ||b||.
		ax := matvec(d, x)
		ax.Zip(b, func(a, bb float64) float64 { return a - bb })
		res := ax.Norm2() / bNorm
		if p.MyPe() == 0 {
			iters = it
			relRes = res
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CG on A=circ(%.1f,-1,…,-1), n=%d, %d PEs\n", 2+sigma, n, pes)
	fmt.Printf("converged in %d iterations, final relative residual %.2e\n", iters, relRes)
	if relRes > 1e-8 {
		log.Fatalf("residual too large: %v", relRes)
	}
}
