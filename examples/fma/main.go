// fma is the paper's §4 interoperability case study: a Fast Multipole
// Algorithm skeleton in which each phase uses the paradigm that fits it,
// all in one program on one simulated machine:
//
//   - Phase 1 — tree formation — is a traditional single-process module
//     (SPM) written against the SM messaging layer: a loosely synchronous
//     exchange computing the global bounding box and the per-leaf
//     particle counts ("this subdivision, in its simple formulation, can
//     be implemented in a traditional single-process module").
//
//   - Phase 2 — the all-to-all transfer of particles to their cells — is
//     message-driven, using the Charm-flavoured chare runtime: each leaf
//     cell is a chare that "continues execution as soon as all of its
//     particles have arrived".
//
//   - Phase 3 — the upward pass — expresses "the logic of individual
//     cells ... naturally as threads which communicate along the edges of
//     the tree": each internal tree node is a tSM thread that waits for
//     its two children's multipole summaries and forwards the combination
//     to its parent.
//
// The three runtimes share each processor under the unified Converse
// scheduler; control moves between them implicitly.
//
// Run with: go run ./examples/fma
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"converse"
	"converse/lang/charm"
	"converse/lang/sm"
	"converse/lang/tsm"
	"converse/ldb"
)

const (
	pes       = 4
	depth     = 3                // binary tree: nodes 0..2^(depth+1)-2
	nodes     = 1<<(depth+1) - 1 // 15
	firstLeaf = 1<<depth - 1     // 7
	leaves    = 1 << depth       // 8
	perPE     = 200              // particles generated per processor
)

// owner maps a tree node to its processor.
func owner(node int) int { return node % pes }

// leafOf maps a position in the global box to a leaf node index.
func leafOf(x, lo, hi float64) int {
	f := (x - lo) / (hi - lo)
	cell := int(f * leaves)
	if cell >= leaves {
		cell = leaves - 1
	}
	return firstLeaf + cell
}

// leafChareLocal computes the processor-local chare id that leaf got at
// creation: each processor creates its owned leaves in increasing node
// order, so the k-th owned leaf has local id k+1.
func leafChareLocal(leaf int) uint32 {
	k := uint32(0)
	for n := firstLeaf; n < leaf; n++ {
		if owner(n) == owner(leaf) {
			k++
		}
	}
	return k + 1
}

// tags for the SPM phase and the thread phase.
const (
	tagBox    = 1   // particle bounds to PE0
	tagBoxBC  = 2   // global box broadcast
	tagCount  = 3   // per-leaf counts to PE0
	tagExpect = 4   // expected-count broadcast
	tagResult = 900 // root result broadcast to every PE
	tagNode   = 100 // +node: child->parent multipole messages
)

// multipole is the summary a cell passes up: total mass and the
// mass-weighted coordinate sum.
type multipole struct {
	mass, wx float64
	count    int64
}

func encodeMP(m multipole) []byte {
	buf := make([]byte, 24)
	binary.LittleEndian.PutUint64(buf[0:], math.Float64bits(m.mass))
	binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(m.wx))
	binary.LittleEndian.PutUint64(buf[16:], uint64(m.count))
	return buf
}

func decodeMP(b []byte) multipole {
	return multipole{
		mass:  math.Float64frombits(binary.LittleEndian.Uint64(b[0:])),
		wx:    math.Float64frombits(binary.LittleEndian.Uint64(b[8:])),
		count: int64(binary.LittleEndian.Uint64(b[16:])),
	}
}

// leafCell is the phase-2 chare: it absorbs particles and, once all
// expected ones have arrived, emits its multipole into the thread phase.
type leafCell struct {
	node     int
	expected int
	mp       multipole
}

func main() {
	cm := converse.NewMachine(converse.Config{PEs: pes, Watchdog: 60 * time.Second})
	err := cm.Run(run)
	if err != nil {
		log.Fatal(err)
	}
}

func run(p *converse.Proc) {
	me := p.MyPe()
	s := sm.Attach(p)
	ts := tsm.Attach(p)
	rt := charm.Attach(p, ldb.NewSpray())

	// Register the leaf-cell chare type (same order on every PE).
	var leafType int
	leafType = rt.Register(
		func(rt *charm.RT, self charm.ChareID, msg []byte) any {
			return &leafCell{
				node:     int(binary.LittleEndian.Uint32(msg[0:])),
				expected: int(binary.LittleEndian.Uint32(msg[4:])),
			}
		},
		// entry 0: a particle arrives: [x f64][mass f64]
		func(rt *charm.RT, obj any, msg []byte) {
			c := obj.(*leafCell)
			x := math.Float64frombits(binary.LittleEndian.Uint64(msg[0:]))
			mass := math.Float64frombits(binary.LittleEndian.Uint64(msg[8:]))
			c.mp.mass += mass
			c.mp.wx += mass * x
			c.mp.count++
			if int(c.mp.count) == c.expected {
				// Cell complete: hand the summary to the thread phase
				// along the tree edge to the parent.
				parent := (c.node - 1) / 2
				t := tsm.Attach(rt.Proc())
				t.Send(owner(parent), tagNode+parent, encodeMP(c.mp))
			}
		},
	)

	// --- Phase 1: SPM tree formation over SM -------------------------
	rng := rand.New(rand.NewSource(int64(me) + 1))
	xs := make([]float64, perPE)
	masses := make([]float64, perPE)
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := range xs {
		xs[i] = rng.Float64()*10 - 5
		masses[i] = 0.5 + rng.Float64()
		lo = math.Min(lo, xs[i])
		hi = math.Max(hi, xs[i])
	}
	// Reduce the bounding box at PE0, loosely synchronously.
	buf := make([]byte, 16)
	binary.LittleEndian.PutUint64(buf[0:], math.Float64bits(lo))
	binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(hi))
	if me != 0 {
		s.Send(0, tagBox, buf)
		box, _, _ := s.Recv(tagBoxBC)
		lo = math.Float64frombits(binary.LittleEndian.Uint64(box[0:]))
		hi = math.Float64frombits(binary.LittleEndian.Uint64(box[8:]))
	} else {
		for i := 1; i < pes; i++ {
			d, _, _ := s.Recv(tagBox)
			lo = math.Min(lo, math.Float64frombits(binary.LittleEndian.Uint64(d[0:])))
			hi = math.Max(hi, math.Float64frombits(binary.LittleEndian.Uint64(d[8:])))
		}
		binary.LittleEndian.PutUint64(buf[0:], math.Float64bits(lo))
		binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(hi))
		s.Broadcast(tagBoxBC, buf)
	}
	// Count local particles per leaf; sum the counts at PE0.
	counts := make([]uint32, leaves)
	for _, x := range xs {
		counts[leafOf(x, lo, hi)-firstLeaf]++
	}
	cbuf := make([]byte, 4*leaves)
	for i, c := range counts {
		binary.LittleEndian.PutUint32(cbuf[4*i:], c)
	}
	expected := make([]uint32, leaves)
	if me != 0 {
		s.Send(0, tagCount, cbuf)
		d, _, _ := s.Recv(tagExpect)
		for i := range expected {
			expected[i] = binary.LittleEndian.Uint32(d[4*i:])
		}
	} else {
		copy(expected, counts)
		for i := 1; i < pes; i++ {
			d, _, _ := s.Recv(tagCount)
			for j := range expected {
				expected[j] += binary.LittleEndian.Uint32(d[4*j:])
			}
		}
		for i, c := range expected {
			binary.LittleEndian.PutUint32(cbuf[4*i:], c)
		}
		s.Broadcast(tagExpect, cbuf)
	}
	s.Barrier() // end of the loosely synchronous phase

	// --- Phase 2 setup: anchor leaf chares on their owners -----------
	for node := firstLeaf; node < nodes; node++ {
		if owner(node) != me {
			continue
		}
		cmsg := make([]byte, 8)
		binary.LittleEndian.PutUint32(cmsg[0:], uint32(node))
		binary.LittleEndian.PutUint32(cmsg[4:], expected[node-firstLeaf])
		rt.CreateHere(leafType, cmsg)
	}
	s.Barrier() // all cells exist before particles fly

	// --- Phase 3 setup: one thread per owned internal node -----------
	var rootMass, rootCenter float64
	for node := 0; node < firstLeaf; node++ {
		if owner(node) != me {
			continue
		}
		ts.Create(func() {
			var agg multipole
			for c := 0; c < 2; c++ {
				d, _, _ := ts.Recv(tagNode + node)
				mp := decodeMP(d)
				agg.mass += mp.mass
				agg.wx += mp.wx
				agg.count += mp.count
			}
			if node == 0 {
				// Root: publish the global summary to every PE.
				for pe := 0; pe < pes; pe++ {
					ts.Send(pe, tagResult, encodeMP(agg))
				}
				return
			}
			parent := (node - 1) / 2
			ts.Send(owner(parent), tagNode+parent, encodeMP(agg))
		})
	}
	// A waiter thread per PE picks up the root's published result.
	ts.Create(func() {
		resData, _, _ := ts.Recv(tagResult)
		mp := decodeMP(resData)
		rootMass = mp.mass
		rootCenter = mp.wx / mp.mass
		if mp.count != pes*perPE {
			p.Printf("pe %d: LOST PARTICLES: %d of %d\n", me, mp.count, pes*perPE)
		}
	})

	// --- Phase 2: message-driven all-to-all particle transfer --------
	pbuf := make([]byte, 16)
	for i, x := range xs {
		leaf := leafOf(x, lo, hi)
		to := charm.ChareID{PE: owner(leaf), Local: leafChareLocal(leaf)}
		binary.LittleEndian.PutUint64(pbuf[0:], math.Float64bits(x))
		binary.LittleEndian.PutUint64(pbuf[8:], math.Float64bits(masses[i]))
		rt.Send(leafType, to, 0, pbuf)
		_ = i
	}

	// Drive everything: chares absorb particles, threads aggregate,
	// the scheduler interleaves all of it until local threads finish.
	ts.Run()

	if me == 0 {
		fmt.Printf("FMA skeleton: %d particles, %d leaf cells, %d tree threads\n",
			pes*perPE, leaves, firstLeaf)
		fmt.Printf("total mass %.4f, center of mass %.4f (domain [%.3f, %.3f])\n",
			rootMass, rootCenter, lo, hi)
	}
}
