// jacobi shows the two control regimes of §2.2 sharing a processor: a
// loosely synchronous SPM stencil code (explicit regime, over the SM
// layer) that, while waiting for its halo exchanges, explicitly grants
// bounded scheduler time with ScheduleFor(n) — the paper's "This call is
// useful for SPM modules to allow a certain amount of concurrent
// execution while they wait for data" — so that a message-driven
// progress monitor (implicit regime) stays live during the solve.
//
// The computation is a 1-D Jacobi relaxation of a heat rod with fixed
// boundary temperatures, partitioned across processors.
//
// Run with: go run ./examples/jacobi
//
// With -trace FILE, the run is traced and the merged event stream is
// written as Chrome trace-event JSON, loadable in Perfetto
// (ui.perfetto.dev) or chrome://tracing; cmd/traceview -in reads the
// text form written with -tracetext FILE.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"sync/atomic"
	"time"

	"converse"
	"converse/lang/sm"
	"converse/mnet"
	"converse/trace"
)

const (
	maxIters = 100000
	leftT    = 0.0   // fixed boundary temperature, left end
	rightT   = 100.0 // fixed boundary temperature, right end
)

// perPE and tol are set from flags: problem size and convergence
// tolerance (the chaos-smoke CI gate shrinks the run with -perpe).
// pes follows the surrounding converserun job's topology (-np, or
// -nodes × -ppn); standalone sim runs keep the default.
var (
	pes   = 4
	perPE = 32
	tol   = 1e-5
)

const (
	tagLeft  = 1 // halo going left
	tagRight = 2 // halo going right
	tagDelta = 3 // per-iteration residual to PE0
	tagConv  = 4 // convergence broadcast
)

func f64(b []byte) float64     { return math.Float64frombits(binary.LittleEndian.Uint64(b)) }
func bytes64(v float64) []byte { return binary.LittleEndian.AppendUint64(nil, math.Float64bits(v)) }

func main() {
	traceJSON := flag.String("trace", "", "write a Chrome trace-event JSON file of the run (Perfetto)")
	traceText := flag.String("tracetext", "", "write the run's trace in the standard text format (cmd/traceview -in)")
	minwall := flag.Duration("minwall", 0, "keep iterating at least this long even after convergence (gives monitors something to watch)")
	flag.IntVar(&perPE, "perpe", perPE, "interior points per processor")
	flag.Float64Var(&tol, "tol", tol, "convergence tolerance on the residual")
	flag.Parse()
	if perPE < 1 {
		log.Fatalf("jacobi: -perpe must be >= 1, got %d", perPE)
	}
	if n := mnet.JobPEs(); n > 0 {
		pes = n
	}

	cfg := converse.Config{PEs: pes, Watchdog: 120 * time.Second}
	var col *trace.Collector
	if *traceJSON != "" || *traceText != "" {
		col = trace.NewCollector(pes)
		cfg.Tracer = col.Tracer
	}
	cm := converse.NewMachine(cfg)
	var monitorTicks int64
	var iters int

	// The message-driven monitor: PE0 hosts a handler fed with residuals
	// and prints progress. It runs only when the SPM module grants the
	// scheduler cycles (ScheduleFor).
	var hMon int
	var monIters int64
	hMon = cm.RegisterHandler(func(p *converse.Proc, msg []byte) {
		atomic.AddInt64(&monitorTicks, 1)
		it := atomic.AddInt64(&monIters, 1)
		if it%1000 == 0 {
			p.Printf("monitor: iteration %d, residual %.3g\n", it, f64(converse.Payload(msg)))
		}
	})

	err := cm.Run(func(p *converse.Proc) {
		s := sm.Attach(p)
		me := p.MyPe()

		// Local slab with two ghost cells.
		u := make([]float64, perPE+2)
		nu := make([]float64, perPE+2)
		if me == 0 {
			u[0] = leftT
		}
		if me == pes-1 {
			u[perPE+1] = rightT
		}

		// Loop exit is decided by PE0 alone and carried on the tagConv
		// broadcast: convergence past any -minwall floor, or the
		// iteration cap. Ranks deciding independently (own clock, own
		// counter) could disagree near the boundaries and deadlock the
		// halo exchange.
		stop := false
		start := time.Now()
		for it := 0; !stop; it++ {
			// Halo exchange with neighbors (SPM explicit regime).
			if me > 0 {
				s.Send(me-1, tagRight, bytes64(u[1]))
			}
			if me < pes-1 {
				s.Send(me+1, tagLeft, bytes64(u[perPE]))
			}
			// While waiting, grant the implicit regime some cycles:
			// monitor messages get delivered here.
			p.Scheduler(4)
			if me > 0 {
				d, _ := s.RecvFrom(me-1, tagLeft)
				u[0] = f64(d)
			}
			if me < pes-1 {
				d, _ := s.RecvFrom(me+1, tagRight)
				u[perPE+1] = f64(d)
			}

			// Jacobi sweep.
			var delta float64
			for i := 1; i <= perPE; i++ {
				nu[i] = 0.5 * (u[i-1] + u[i+1])
				delta = math.Max(delta, math.Abs(nu[i]-u[i]))
			}
			nu[0], nu[perPE+1] = u[0], u[perPE+1]
			u, nu = nu, u

			// Reduce the residual at PE0, loosely synchronously.
			if me != 0 {
				s.Send(0, tagDelta, bytes64(delta))
				d, _, _ := s.Recv(tagConv)
				stop = d[0] == 1
			} else {
				for i := 1; i < pes; i++ {
					d, _, _ := s.Recv(tagDelta)
					delta = math.Max(delta, f64(d))
				}
				// The iteration cap yields to an unexpired -minwall
				// floor: the floor is a wall-clock bound, so lifting
				// the cap cannot run away.
				stop = (delta < tol || it+1 >= maxIters) && time.Since(start) >= *minwall
				flag := []byte{0}
				if stop {
					flag[0] = 1
				}
				s.Broadcast(tagConv, flag)
				// Feed the message-driven monitor (implicit regime).
				p.SyncSendAndFree(0, converse.MakeMsg(hMon, bytes64(delta)))
				iters = it + 1
			}
		}

		// Verify against the analytic solution: a straight line from
		// leftT to rightT.
		n := pes * perPE
		var maxErr float64
		for i := 1; i <= perPE; i++ {
			global := me*perPE + i
			want := leftT + (rightT-leftT)*float64(global)/float64(n+1)
			maxErr = math.Max(maxErr, math.Abs(u[i]-want))
		}
		if maxErr > 0.5 {
			p.Printf("pe %d: WARNING max error vs analytic = %v\n", me, maxErr)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("jacobi: %d points on %d PEs converged in %d iterations\n", pes*perPE, pes, iters)
	fmt.Printf("monitor handler ran %d times inside ScheduleFor windows\n", atomic.LoadInt64(&monitorTicks))

	if col != nil {
		col.Schema().NameHandler(hMon, "residual-monitor")
		if *traceJSON != "" {
			if err := writeFile(*traceJSON, col.WriteChrome); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("Chrome trace written to %s (open in ui.perfetto.dev)\n", *traceJSON)
		}
		if *traceText != "" {
			if err := writeFile(*traceText, col.WriteText); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("text trace written to %s (analyze with traceview -in)\n", *traceText)
		}
	}
}

// writeFile creates path and streams one of the collector's exports
// into it.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
