// mdt-lang demonstrates the paper's §4 third benefit — "the ability to
// put together a new language quickly and efficiently" — using the mdt
// coordination language, whose entire runtime (internal/lang/mdt) is
// about 100 lines built from the message manager, the thread object and
// the Converse scheduler, mirroring the paper's one-day, ~100-line
// implementation story.
//
// The program is a distributed pipeline-sieve: a chain of message-driven
// threads spread across processors, each filtering multiples of its
// prime from the number stream — the classic CSP exercise, written in
// five lines of application logic per stage.
//
// Run with: go run ./examples/mdt-lang
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"sync"
	"time"

	"converse"
	"converse/lang/mdt"
)

const (
	pes    = 4
	limit  = 200 // sieve numbers up to here
	maxLen = 50  // generous cap on pipeline stages
)

// Each sieve stage s lives on PE s%pes and listens on tag 1000+s.
func stagePE(s int) int  { return s % pes }
func stageTag(s int) int { return 1000 + s }

const end = 0 // sentinel value terminating the stream

func main() {
	cm := converse.NewMachine(converse.Config{PEs: pes, Watchdog: 60 * time.Second})
	var mu sync.Mutex
	var primes []int

	err := cm.Run(func(p *converse.Proc) {
		m := mdt.Attach(p)
		me := p.MyPe()

		// Every PE hosts the stages assigned to it. A stage learns its
		// prime from the first number it receives, then filters.
		for s := 0; s < maxLen; s++ {
			if stagePE(s) != me {
				continue
			}
			m.CreateThread(func() {
				buf := make([]byte, 4)
				first := binary.LittleEndian.Uint32(m.Recv(stageTag(s)))
				if first == end {
					// Stream ended before reaching this stage: cascade
					// the sentinel so later stages terminate too.
					if s+1 < maxLen {
						binary.LittleEndian.PutUint32(buf, end)
						m.Send(stagePE(s+1), stageTag(s+1), buf)
					}
					return
				}
				prime := int(first)
				mu.Lock()
				primes = append(primes, prime)
				mu.Unlock()
				for {
					n := binary.LittleEndian.Uint32(m.Recv(stageTag(s)))
					if n == end {
						// Propagate the sentinel and finish.
						if s+1 < maxLen {
							binary.LittleEndian.PutUint32(buf, end)
							m.Send(stagePE(s+1), stageTag(s+1), buf)
						}
						return
					}
					if int(n)%prime != 0 {
						binary.LittleEndian.PutUint32(buf, n)
						m.Send(stagePE(s+1), stageTag(s+1), buf)
					}
				}
			})
		}

		// PE0 additionally runs the generator thread.
		if me == 0 {
			m.CreateThread(func() {
				buf := make([]byte, 4)
				for n := 2; n <= limit; n++ {
					binary.LittleEndian.PutUint32(buf, uint32(n))
					m.Send(stagePE(0), stageTag(0), buf)
				}
				binary.LittleEndian.PutUint32(buf, end)
				m.Send(stagePE(0), stageTag(0), buf)
			})
		}

		m.Run()
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("pipeline sieve over %d PEs found %d primes <= %d:\n", pes, len(primes), limit)
	fmt.Println(primes)
	if len(primes) != 46 || primes[0] != 2 || primes[len(primes)-1] != 199 {
		log.Fatalf("sieve is wrong (expected 46 primes up to 199)")
	}
}
