// migration demonstrates the two extended load-balancing situations the
// paper describes beyond seed balancing (§3.3.1, footnote 2): object
// migration with message forwarding, and quasi-dynamic load balancing —
// "after a phase ... the load and communication patterns are analyzed,
// and a new global distribution of entities to processors is derived."
//
// A set of worker chares with wildly uneven compute costs is created
// entirely on processor 0. The program runs two phases of computation;
// between phases it either does nothing (baseline) or calls
// charm.Rebalance. Compute cost is charged to the virtual clock, so the
// phase makespan — the maximum processor virtual time — shows directly
// what rebalancing buys. Messages in both phases are addressed to the
// chares' ORIGINAL ids: after migration they reach the moved chares
// through the forwarding machinery.
//
// Run with: go run ./examples/migration
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"sync"
	"time"

	"converse"
	"converse/lang/charm"
	"converse/ldb"
	"converse/netmodel"
)

const (
	pes     = 4
	workers = 32
	phases  = 2
)

// workCost returns worker w's per-phase compute cost in microseconds:
// deliberately skewed so a few chares dominate.
func workCost(w int) float64 { return float64(50 + (w%8)*(w%8)*60) }

// worker is a migratable chare that charges its cost to the virtual
// clock when poked.
type worker struct {
	idx  int
	done int
}

func (w *worker) Pack() []byte {
	out := make([]byte, 8)
	binary.LittleEndian.PutUint32(out[0:], uint32(w.idx))
	binary.LittleEndian.PutUint32(out[4:], uint32(w.done))
	return out
}

func run(rebalance bool) (makespan float64) {
	cm := converse.NewMachine(converse.Config{
		PEs: pes, Model: netmodel.T3D(), Watchdog: 60 * time.Second,
	})
	var mu sync.Mutex
	var maxTime float64
	err := cm.Run(func(p *converse.Proc) {
		rt := charm.Attach(p, ldb.NewSpray())
		typeID := rt.Register(
			func(rt *charm.RT, self charm.ChareID, msg []byte) any {
				return &worker{idx: int(binary.LittleEndian.Uint32(msg))}
			},
			// entry 0: do one phase of work
			func(rt *charm.RT, obj any, msg []byte) {
				w := obj.(*worker)
				rt.Proc().PE().Charge(workCost(w.idx)) // the compute cost
				w.done++
			},
		)
		rt.SetUnpacker(typeID, func(rt *charm.RT, self charm.ChareID, blob []byte) any {
			return &worker{
				idx:  int(binary.LittleEndian.Uint32(blob[0:])),
				done: int(binary.LittleEndian.Uint32(blob[4:])),
			}
		})

		// All workers created on PE0: maximal imbalance.
		var ids []charm.ChareID
		if p.MyPe() == 0 {
			for w := 0; w < workers; w++ {
				payload := make([]byte, 4)
				binary.LittleEndian.PutUint32(payload, uint32(w))
				ids = append(ids, rt.CreateHere(typeID, payload))
			}
		}

		for phase := 0; phase < phases; phase++ {
			if rebalance {
				rt.Rebalance(typeID)
			}
			if p.MyPe() == 0 {
				for _, id := range ids {
					rt.Send(typeID, id, 0, nil) // original addresses
				}
				rt.StartQD(func(rt *charm.RT) { rt.ExitAll() })
			}
			p.Scheduler(-1)
		}
		mu.Lock()
		if t := p.TimerUs(); t > maxTime {
			maxTime = t
		}
		mu.Unlock()
	})
	if err != nil {
		log.Fatal(err)
	}
	return maxTime
}

func main() {
	baseline := run(false)
	balanced := run(true)
	fmt.Printf("%d uneven workers created on PE0 of a %d-PE T3D, %d phases\n\n", workers, pes, phases)
	fmt.Printf("%-28s %12s\n", "strategy", "makespan (us)")
	fmt.Printf("%-28s %12.0f\n", "no rebalancing", baseline)
	fmt.Printf("%-28s %12.0f\n", "quasi-dynamic rebalancing", balanced)
	if balanced >= baseline {
		log.Fatalf("rebalancing did not help (%.0f vs %.0f)", balanced, baseline)
	}
	fmt.Printf("\nspeedup from migration: %.2fx\n", baseline/balanced)
}
