// namd-mini reenacts the paper's second §4 case study: the NAMD
// molecular dynamics story. NAMD's core computes short-range forces and
// "depends on the Fast Multipole Algorithm (FMA) to compute long-range
// electrostatic forces. There are two implementations of FMA, one in PVM
// and the other in Charm++ ... With Converse it will be possible to use
// the Charm++ version of NAMD with the PVM-based FMA module."
//
// This program is exactly that composition, in miniature, on a simulated
// 4-PE machine:
//
//   - The MD core is written in the Charm-flavoured chare runtime: one
//     "patch" chare per processor owns a slab of particles, exchanges
//     boundary particles with neighbor patches every step, and computes
//     short-range (cutoff) forces, all message-driven.
//
//   - The long-range module is written against the PVM-flavoured layer:
//     a loosely synchronous SPM collective that gathers charge moments
//     from every processor and returns a far-field approximation — a
//     stand-in for the PVM FMA.
//
// Each timestep, control passes explicitly from the message-driven core
// to the SPM module and back (§2.2's explicit regime embedded in an
// implicit one), exercising the interoperability the paper promises.
//
// Run with: go run ./examples/namd-mini
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"
	"math/rand"
	"sync/atomic"
	"time"

	"converse"
	"converse/lang/charm"
	"converse/lang/pvmc"
	"converse/ldb"
)

const (
	pes      = 4
	perPatch = 64  // particles per patch (one patch per PE)
	steps    = 20  // MD timesteps
	cutoff   = 0.6 // short-range interaction radius
	boxLen   = 4.0 // periodic 1-D box
	dt       = 2e-4
)

// particle is a 1-D charged particle.
type particle struct {
	x, v, q float64
}

// patch is the per-processor chare owning a slab of the box.
type patch struct {
	parts []particle
	// ghost exchange state for the current step
	ghosts   []particle
	gotSides int
	stepDone bool
}

func encodeParticles(ps []particle) []byte {
	buf := make([]byte, 4+24*len(ps))
	binary.LittleEndian.PutUint32(buf, uint32(len(ps)))
	off := 4
	for _, p := range ps {
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(p.x))
		binary.LittleEndian.PutUint64(buf[off+8:], math.Float64bits(p.v))
		binary.LittleEndian.PutUint64(buf[off+16:], math.Float64bits(p.q))
		off += 24
	}
	return buf
}

func decodeParticles(b []byte) []particle {
	n := int(binary.LittleEndian.Uint32(b))
	ps := make([]particle, n)
	off := 4
	for i := range ps {
		ps[i].x = math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
		ps[i].v = math.Float64frombits(binary.LittleEndian.Uint64(b[off+8:]))
		ps[i].q = math.Float64frombits(binary.LittleEndian.Uint64(b[off+16:]))
		off += 24
	}
	return ps
}

// shortRangeForce is a softened Coulomb-like pair force with a cutoff.
func shortRangeForce(p, q particle) float64 {
	d := p.x - q.x
	// minimum-image convention in the periodic box
	if d > boxLen/2 {
		d -= boxLen
	}
	if d < -boxLen/2 {
		d += boxLen
	}
	if math.Abs(d) > cutoff || d == 0 {
		return 0
	}
	return p.q * q.q * d / (math.Abs(d*d*d) + 0.1)
}

// longRangeFMA is the PVM-based long-range module: a loosely synchronous
// collective. Every PE contributes its patch's total charge and dipole
// moment; every PE receives the global moments and derives a (crude)
// far-field force coefficient. The interface — call it, it blocks, all
// PEs participate — is exactly how an SPM FMA module would be reused.
func longRangeFMA(v *pvmc.PVM, qTot, dip float64) (gq, gdip float64) {
	const tagMoments = 70
	if v.Mytid() != 0 {
		v.InitSend().PackFloat64(qTot, dip)
		v.Send(0, tagMoments)
		v.Recv(0, tagMoments+1)
		return v.RecvBuf().UnpackFloat64(), v.RecvBuf().UnpackFloat64()
	}
	gq, gdip = qTot, dip
	for i := 1; i < v.NumTasks(); i++ {
		v.Recv(pvmc.Any, tagMoments)
		gq += v.RecvBuf().UnpackFloat64()
		gdip += v.RecvBuf().UnpackFloat64()
	}
	v.InitSend().PackFloat64(gq, gdip)
	v.Bcast(tagMoments + 1)
	return gq, gdip
}

func main() {
	cm := converse.NewMachine(converse.Config{PEs: pes, Watchdog: 120 * time.Second})
	var totalEnergyDrift float64
	var exchanged int64

	err := cm.Run(func(p *converse.Proc) {
		me := p.MyPe()
		rt := charm.Attach(p, ldb.NewSpray())
		v := pvmc.Attach(p)

		var patchType int
		patchType = rt.Register(
			func(rt *charm.RT, self charm.ChareID, msg []byte) any {
				return &patch{parts: decodeParticles(msg)}
			},
			// entry 0: ghost particles from a neighbor patch
			func(rt *charm.RT, obj any, msg []byte) {
				pt := obj.(*patch)
				pt.ghosts = append(pt.ghosts, decodeParticles(msg)...)
				pt.gotSides++
				atomic.AddInt64(&exchanged, 1)
				if pt.gotSides == 2 {
					pt.stepDone = true
				}
			},
		)

		// Build the local patch: particles in slab [me, me+1) of the box.
		rng := rand.New(rand.NewSource(int64(me) * 7779))
		parts := make([]particle, perPatch)
		for i := range parts {
			parts[i] = particle{
				x: float64(me) + rng.Float64(),
				v: rng.NormFloat64() * 0.1,
				q: rng.Float64()*2 - 1,
			}
		}
		id := rt.CreateHere(patchType, encodeParticles(parts))
		pt := rt.Chare(id).(*patch)

		left := charm.ChareID{PE: (me + pes - 1) % pes, Local: 1}
		right := charm.ChareID{PE: (me + 1) % pes, Local: 1}

		energy0 := -1.0
		for step := 0; step < steps; step++ {
			// --- message-driven ghost exchange (Charm module) -------
			var lb, rb []particle // boundary particles near each edge
			for _, q := range pt.parts {
				if q.x-float64(me) < cutoff {
					lb = append(lb, q)
				}
				if float64(me+1)-q.x < cutoff {
					rb = append(rb, q)
				}
			}
			pt.ghosts = pt.ghosts[:0]
			pt.gotSides = 0
			pt.stepDone = false
			rt.Send(patchType, left, 0, encodeParticles(lb))
			rt.Send(patchType, right, 0, encodeParticles(rb))
			// Drive the scheduler until both neighbor slabs arrived.
			p.ServeUntil(func() bool { return pt.stepDone })

			// --- short-range forces (local + ghosts) ----------------
			forces := make([]float64, len(pt.parts))
			var qTot, dip float64
			for i, a := range pt.parts {
				for j, b := range pt.parts {
					if i != j {
						forces[i] += shortRangeForce(a, b)
					}
				}
				for _, g := range pt.ghosts {
					forces[i] += shortRangeForce(a, g)
				}
				qTot += a.q
				dip += a.q * a.x
			}

			// --- long-range forces via the PVM FMA module -----------
			// Control passes explicitly to the SPM module; all PEs
			// enter it together (loosely synchronous).
			gq, gdip := longRangeFMA(v, qTot, dip)
			center := gdip / (gq + 1e-12)
			for i, a := range pt.parts {
				// crude mean-field pull toward/away from the global
				// charge centroid
				forces[i] += 0.05 * a.q * gq * (center - a.x) / boxLen
			}

			// --- integrate ------------------------------------------
			var ke float64
			for i := range pt.parts {
				pt.parts[i].v += dt * forces[i]
				pt.parts[i].x += dt * pt.parts[i].v
				// periodic wrap (particles stay assigned to their patch
				// in this miniature; slabs overlap via ghosts)
				if pt.parts[i].x < 0 {
					pt.parts[i].x += boxLen
				}
				if pt.parts[i].x >= boxLen {
					pt.parts[i].x -= boxLen
				}
				ke += 0.5 * pt.parts[i].v * pt.parts[i].v
			}
			if energy0 < 0 {
				energy0 = ke
			}
			if me == 0 && (step == 0 || step == steps-1) {
				p.Printf("step %2d: kinetic energy %.5f, global charge %.4f\n", step, ke, gq)
			}
			if step == steps-1 && me == 0 {
				totalEnergyDrift = math.Abs(ke-energy0) / (energy0 + 1e-12)
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("namd-mini: %d PEs x %d particles, %d steps, %d ghost exchanges\n",
		pes, perPatch, steps, atomic.LoadInt64(&exchanged))
	fmt.Printf("relative kinetic-energy drift on PE0: %.3f\n", totalEnergyDrift)
}
