// Quickstart: the smallest useful Converse program.
//
// It demonstrates the core model on a simulated 4-processor machine:
// generalized messages (first word names the handler), handler
// registration, the unified scheduler, and the virtual clock. Two
// mini-programs run back to back:
//
//  1. a ring: a token hops PE 0 -> 1 -> 2 -> 3 -> 0, each hop appending
//     its processor id;
//  2. a timed ping-pong between PE 0 and PE 1 over the Myrinet/FM cost
//     model, printing the modeled round-trip time for a few sizes —
//     a miniature of the paper's Figure 6 measurement.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"converse"
	"converse/netmodel"
)

func main() {
	ring()
	pingpong()
}

// ring passes a token around all processors once.
func ring() {
	const pes = 4
	cm := converse.NewMachine(converse.Config{PEs: pes, Watchdog: 30 * time.Second})

	var hToken, hDone int
	hToken = cm.RegisterHandler(func(p *converse.Proc, msg []byte) {
		trail := append(converse.Payload(msg), byte('0'+p.MyPe()))
		if p.MyPe() == pes-1 {
			// Back to the start: report and shut everyone down.
			p.Printf("ring trail: %s\n", trail)
			p.SyncBroadcastAllAndFree(converse.MakeMsg(hDone, nil))
			return
		}
		p.SyncSendAndFree(p.MyPe()+1, converse.MakeMsg(hToken, trail))
	})
	hDone = cm.RegisterHandler(func(p *converse.Proc, msg []byte) {
		p.ExitScheduler()
	})

	err := cm.Run(func(p *converse.Proc) {
		if p.MyPe() == 0 {
			p.SyncSendAndFree(1, converse.MakeMsg(hToken, []byte{'0'}))
		}
		p.Scheduler(-1) // implicit control regime: the scheduler drives
	})
	if err != nil {
		log.Fatal(err)
	}
}

// pingpong measures modeled round-trip times on the Myrinet/FM machine
// of Figure 6.
func pingpong() {
	mod := netmodel.MyrinetFM()
	cm := converse.NewMachine(converse.Config{PEs: 2, Model: mod, Watchdog: 30 * time.Second})
	hEcho := cm.RegisterHandler(func(p *converse.Proc, msg []byte) {})

	sizes := []int{16, 128, 1024, 16384}
	fmt.Printf("%-10s %-16s %-16s\n", "bytes", "one-way (model)", "one-way (run)")
	err := cm.Run(func(p *converse.Proc) {
		const rounds = 100
		for _, size := range sizes {
			msg := converse.NewMsg(hEcho, size-converse.HeaderSize)
			if p.MyPe() == 0 {
				start := p.TimerUs()
				for i := 0; i < rounds; i++ {
					p.SyncSend(1, msg)
					p.GetSpecificMsg(hEcho)
				}
				oneWay := (p.TimerUs() - start) / (2 * rounds)
				fmt.Printf("%-10d %-16.2f %-16.2f\n", size, mod.OneWayConverse(size), oneWay)
			} else {
				for i := 0; i < rounds; i++ {
					p.GetSpecificMsg(hEcho)
					p.SyncSend(0, msg)
				}
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}
}
