module converse

go 1.23
