// Integration tests: whole-machine programs combining the paradigms the
// paper's framework exists to make coexist — SPM modules, message-driven
// objects, and threads, sharing processors under one scheduler.
package converse_test

import (
	"encoding/binary"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"converse"
	"converse/internal/core"
	"converse/internal/emi"
	"converse/internal/lang/charm"
	"converse/internal/lang/pvmc"
	"converse/internal/lang/sm"
	"converse/internal/lang/tsm"
	"converse/internal/ldb"
	"converse/internal/trace"
)

// TestPublicAPI exercises the root package's re-exported surface.
func TestPublicAPI(t *testing.T) {
	msg := converse.NewMsg(3, 4)
	if len(msg) != converse.HeaderSize+4 {
		t.Fatalf("NewMsg length %d", len(msg))
	}
	converse.SetHandler(msg, 9)
	if converse.HandlerOf(msg) != 9 {
		t.Fatal("handler round trip failed")
	}
	m2 := converse.MakeMsg(1, []byte("abc"))
	if string(converse.Payload(m2)) != "abc" {
		t.Fatal("payload round trip failed")
	}

	cm := converse.NewMachine(converse.Config{PEs: 2, Watchdog: 10 * time.Second})
	got := ""
	var h int
	h = cm.RegisterHandler(func(p *converse.Proc, msg []byte) {
		if p.MyPe() == 1 {
			p.SyncSend(0, converse.MakeMsg(h, converse.Payload(msg)))
		} else {
			got = string(converse.Payload(msg))
		}
		p.ExitScheduler()
	})
	err := cm.Run(func(p *converse.Proc) {
		if p.MyPe() == 0 {
			p.SyncSend(1, converse.MakeMsg(h, []byte("round")))
		}
		p.Scheduler(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != "round" {
		t.Fatalf("got %q", got)
	}
}

// TestThreeParadigmsOneProcessor runs an SPM module, a chare, and a
// thread on the same processors in one program, all cross-communicating:
// the SPM side feeds a chare; the chare triggers a thread; the thread
// reports back to the SPM side via SM. This is the paper's central
// interoperability scenario.
func TestThreeParadigmsOneProcessor(t *testing.T) {
	const pes = 2
	cm := converse.NewMachine(converse.Config{PEs: pes, Watchdog: 20 * time.Second})
	var final string
	err := cm.Run(func(p *converse.Proc) {
		s := sm.Attach(p)
		ts := tsm.Attach(p)
		rt := charm.Attach(p, ldb.NewSpray())

		var echoType int
		echoType = rt.Register(
			func(rt *charm.RT, self charm.ChareID, msg []byte) any { return nil },
			// entry 0: transform the payload and wake the thread side
			func(rt *charm.RT, obj any, msg []byte) {
				out := strings.ToUpper(string(msg))
				tsm.Attach(rt.Proc()).Send(1, 50, []byte(out))
			},
		)
		id := rt.CreateHere(echoType, nil)

		if p.MyPe() == 1 {
			// The thread side: waits for the chare's output, decorates
			// it, ships it back to PE0's SPM module over SM.
			ts.Create(func() {
				d, _, _ := ts.Recv(50)
				s.Send(0, 60, append(d, []byte("-via-thread")...))
			})
		}

		if p.MyPe() == 0 {
			// SPM module: kick the chare on PE1 (message-driven world) …
			rt.Send(echoType, charm.ChareID{PE: 1, Local: id.Local}, 0, []byte("payload"))
			// … then block SPM-style for the final SM message, while
			// the scheduler stays available to other modules via the
			// CMI's buffering.
			d, _, _ := s.Recv(60)
			final = string(d)
			return
		}
		ts.Run()
	})
	if err != nil {
		t.Fatal(err)
	}
	if final != "PAYLOAD-via-thread" {
		t.Fatalf("final = %q", final)
	}
}

// TestExplicitInvokesImplicit reproduces the paper's footnote scenario:
// an SPM module invokes a function in a concurrent (message-driven)
// module, which deposits messages; the SPM module then explicitly
// invokes the scheduler, and the result of the concurrent computation
// comes back before the scheduler returns.
func TestExplicitInvokesImplicit(t *testing.T) {
	cm := converse.NewMachine(converse.Config{PEs: 1, Watchdog: 10 * time.Second})
	result := 0
	var hWork, hDone int
	hWork = cm.RegisterHandler(func(p *converse.Proc, msg []byte) {
		n := int(binary.LittleEndian.Uint32(converse.Payload(msg)))
		if n == 0 {
			p.Enqueue(converse.NewMsg(hDone, 0))
			return
		}
		result += n
		next := converse.NewMsg(hWork, 4)
		binary.LittleEndian.PutUint32(converse.Payload(next), uint32(n-1))
		p.Enqueue(next)
	})
	hDone = cm.RegisterHandler(func(p *converse.Proc, msg []byte) {
		p.ExitScheduler()
	})
	err := cm.Run(func(p *converse.Proc) {
		// SPM module deposits work into the concurrent regime …
		seed := converse.NewMsg(hWork, 4)
		binary.LittleEndian.PutUint32(converse.Payload(seed), 10)
		p.Enqueue(seed)
		// … and explicitly relinquishes control to the scheduler.
		p.Scheduler(-1)
		// Control is back: the concurrent computation has finished.
		if result != 55 {
			t.Errorf("result = %d, want 55", result)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPVMAndCharmShareMachine runs a PVM-style SPM collective and a
// chare fan-out in the same program — the NAMD/FMA reuse story.
func TestPVMAndCharmShareMachine(t *testing.T) {
	const pes = 4
	cm := converse.NewMachine(converse.Config{PEs: pes, Watchdog: 20 * time.Second})
	var chareWork int64
	err := cm.Run(func(p *converse.Proc) {
		v := pvmc.Attach(p)
		rt := charm.Attach(p, ldb.NewRandom(int64(p.MyPe())+7))
		workType := rt.Register(func(rt *charm.RT, self charm.ChareID, msg []byte) any {
			atomic.AddInt64(&chareWork, 1)
			return nil
		})

		// Phase A: message-driven fan-out with quiescence.
		if p.MyPe() == 0 {
			for i := 0; i < 20; i++ {
				rt.Create(workType, nil)
			}
			rt.StartQD(func(rt *charm.RT) { rt.ExitAll() })
		}
		p.Scheduler(-1)

		// Phase B: loosely synchronous PVM collective on the same PEs.
		v.Barrier()
		if v.Mytid() != 0 {
			v.InitSend().PackInt(int64(v.Mytid()))
			v.Send(0, 5)
			return
		}
		sum := int64(0)
		for i := 1; i < pes; i++ {
			v.Recv(pvmc.Any, 5)
			sum += v.RecvBuf().UnpackInt()
		}
		if sum != 1+2+3 {
			t.Errorf("pvm reduce sum = %d", sum)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if chareWork != 20 {
		t.Fatalf("chare work = %d, want 20", chareWork)
	}
}

// TestTracedMultiParadigmRun attaches the tracing module to a combined
// run and checks the standard-format invariants across paradigms.
func TestTracedMultiParadigmRun(t *testing.T) {
	const pes = 2
	col := trace.NewCollector(pes)
	cm := converse.NewMachine(converse.Config{
		PEs: pes, Watchdog: 20 * time.Second, Tracer: col.Tracer,
	})
	err := cm.Run(func(p *converse.Proc) {
		ts := tsm.Attach(p)
		rt := charm.Attach(p, ldb.NewSpray())
		typ := rt.Register(func(rt *charm.RT, self charm.ChareID, msg []byte) any { return nil })
		if p.MyPe() == 0 {
			ts.Create(func() {
				ts.Send(1, 9, []byte("x"))
				ts.Recv(10)
			})
			rt.Create(typ, nil)
		} else {
			ts.Create(func() {
				ts.Recv(9)
				ts.Send(0, 10, nil)
			})
		}
		ts.Run()
	})
	if err != nil {
		t.Fatal(err)
	}
	s := col.Summarize()
	if s.Counts[core.EvThreadCreate] < 2 {
		t.Errorf("thread creations traced = %d", s.Counts[core.EvThreadCreate])
	}
	if s.Counts[core.EvObjectCreate] != 1 {
		t.Errorf("object creations traced = %d, want 1", s.Counts[core.EvObjectCreate])
	}
	if s.Sends == 0 || s.Sends != s.Recvs {
		t.Errorf("sends=%d recvs=%d", s.Sends, s.Recvs)
	}
	if s.Counts[core.EvBegin] != s.Counts[core.EvEnd] {
		t.Error("unbalanced handler begin/end")
	}
}

// TestEMIScatterIntoSPM: an advance-receive posted by an SPM module
// fills user buffers directly from a message produced by a chare on
// another processor.
func TestEMIScatterIntoSPM(t *testing.T) {
	cm := converse.NewMachine(converse.Config{PEs: 2, Watchdog: 20 * time.Second})
	payloadHandler := cm.RegisterHandler(func(p *converse.Proc, msg []byte) {
		t.Error("scattered message must not reach its handler")
	})
	err := cm.Run(func(p *converse.Proc) {
		emi.Init(p)
		if p.MyPe() == 1 {
			msg := converse.NewMsg(payloadHandler, 12)
			pl := converse.Payload(msg)
			binary.LittleEndian.PutUint32(pl[0:], 0xfeed)
			copy(pl[4:], "datablob")
			p.SyncSendAndFree(0, msg)
			return
		}
		dst := make([]byte, 8)
		reg := emi.RegisterScatter(p,
			[]emi.Match{{Offset: converse.HeaderSize, Value: 0xfeed}},
			[]emi.Segment{{MsgOffset: converse.HeaderSize + 4, Dst: dst}})
		p.ServeUntil(reg.Done)
		if string(dst) != "datablob" {
			t.Errorf("scattered %q", dst)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestGlobalPointersAcrossParadigms: a chare publishes data in a
// global-pointer region; an SPM module on another PE SyncGets it.
func TestGlobalPointersAcrossParadigms(t *testing.T) {
	cm := converse.NewMachine(converse.Config{PEs: 2, Watchdog: 20 * time.Second})
	carrier := cm.RegisterHandler(func(p *converse.Proc, msg []byte) {})
	err := cm.Run(func(p *converse.Proc) {
		s := emi.Init(p)
		if p.MyPe() == 0 {
			region := []byte("published-by-pe0")
			g := s.Create(region)
			ptr := converse.NewMsg(carrier, emi.GlobalPtrSize)
			g.Encode(converse.Payload(ptr))
			p.SyncSendAndFree(1, ptr)
			// Serve gets until the peer overwrites the first byte.
			p.ServeUntil(func() bool { return region[0] == '!' })
			return
		}
		g := emi.DecodeGlobalPtr(converse.Payload(p.GetSpecificMsg(carrier)))
		dst := make([]byte, 9)
		s.SyncGet(g, dst)
		if string(dst) != "published" {
			t.Errorf("SyncGet = %q", dst)
		}
		s.SyncPut(g, []byte("!"))
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestObservabilityEndToEnd runs a multi-paradigm, multi-PE program
// with both the tracer and the metrics registry attached, then checks
// (a) the merge property — every receive appears after its matching
// send in the globally merged stream, even with zero-cost timestamp
// ties — and (b) that the metrics registry agrees with the trace on
// message and dispatch counts.
func TestObservabilityEndToEnd(t *testing.T) {
	const pes = 4
	col := trace.NewCollector(pes)
	reg := converse.NewMetrics(pes)
	// No Model: the zero-cost machine produces heavily tied timestamps,
	// the hard case for a causally consistent global merge.
	cm := converse.NewMachine(converse.Config{
		PEs: pes, Watchdog: 20 * time.Second, Tracer: col.Tracer, Metrics: reg,
	})
	err := cm.Run(func(p *converse.Proc) {
		ts := tsm.Attach(p)
		bal := ldb.New(p, ldb.NewSpray())
		hWork := p.RegisterHandler(func(p *core.Proc, msg []byte) {})
		ts.Create(func() {
			for i := 0; i < 5; i++ {
				seed := converse.NewMsg(hWork, 8)
				bal.Deposit(seed)
				ts.Send((p.MyPe()+1)%pes, 7, []byte{byte(i)})
				ts.Recv(7)
			}
		})
		ts.Run()
		p.ScheduleUntilIdle()
	})
	if err != nil {
		t.Fatal(err)
	}

	// (a) Causal consistency of the global merge.
	type link struct{ src, dst int }
	sends := map[link]int{}
	merged := col.Merged()
	for i, e := range merged {
		if i > 0 && e.T < merged[i-1].T {
			t.Fatalf("merged stream not time sorted at %d", i)
		}
		switch e.Kind {
		case core.EvSend:
			sends[link{e.PE, e.Dst}]++
		case core.EvRecv:
			l := link{e.Src, e.PE}
			sends[l]--
			if sends[l] < 0 {
				t.Fatalf("event %d: receive on link %v precedes its send", i, l)
			}
		}
	}

	// (b) Metrics agree with the trace.
	s := col.Summarize()
	snap := reg.Snapshot()
	var sentMsgs, dispatches, seeds uint64
	for _, pe := range snap.PEs {
		for _, n := range pe.SentMsgs {
			sentMsgs += n
		}
		dispatches += pe.Dispatches
		seeds += pe.SeedsDeposited
	}
	if sentMsgs != s.Sends {
		t.Errorf("metrics sends=%d, trace sends=%d", sentMsgs, s.Sends)
	}
	if dispatches != s.Counts[core.EvBegin] {
		t.Errorf("metrics dispatches=%d, trace begins=%d", dispatches, s.Counts[core.EvBegin])
	}
	if seeds != pes*5 {
		t.Errorf("seeds deposited=%d, want %d", seeds, pes*5)
	}
}
