// Package bench implements the measurement harness behind the paper's
// evaluation (§5, Figures 4-8): the round-trip program "that sends a
// large number of messages back and forth between two processors",
// from which "the average time for one individual message send,
// transmission, receipt and handling" is computed.
//
// Three layers are measured, matching the paper's series:
//
//   - Native: the lowest-level communication layer available on the
//     machine (here, the raw simulated-machine send/receive) — the
//     baseline each figure compares against.
//   - Converse: the same round trip through Converse generalized
//     messages and handler dispatch (CmiSyncSend + handler), the
//     paper's main series.
//   - Queued: the second experiment (Figure 6 only in the paper):
//     "each handler upon receiving a message enqueues it in the
//     scheduler's queue; the scheduler then picks a message from its
//     queue and schedules it for execution" — the cost paid only by
//     languages such as Charm that schedule objects through the queue.
//
// Times are virtual microseconds from the machine's cost model plus the
// measured software path; the real wall-clock software cost of each
// layer is measured separately by the root bench_test.go microbenches.
package bench

import (
	"fmt"
	"io"
	"time"

	"converse/internal/core"
	"converse/internal/machine"
	"converse/internal/netmodel"
)

// Sizes is the message-size sweep used for every figure, in bytes
// (total message size, header included).
var Sizes = []int{8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536}

// Row is one point of a figure: modeled one-way times in microseconds
// for each layer at one message size.
type Row struct {
	Size     int
	Native   float64
	Converse float64
	Queued   float64
}

// watchdog bounds each measurement machine run.
const watchdog = 60 * time.Second

// Native measures the raw machine-layer round trip: the lowest-level
// layer, bypassing Converse dispatch entirely. It returns the one-way
// time in virtual microseconds.
func Native(model *netmodel.Model, size, rounds int) float64 {
	m := machine.New(machine.Config{PEs: 2, Model: model, Watchdog: watchdog})
	var elapsed float64
	err := m.Run(func(pe *machine.PE) {
		buf := make([]byte, size)
		if pe.ID() == 0 {
			start := pe.Clock()
			for i := 0; i < rounds; i++ {
				pe.Send(1, buf)
				if _, ok := pe.Recv(); !ok {
					panic("bench: native recv failed")
				}
			}
			elapsed = pe.Clock() - start
			return
		}
		for i := 0; i < rounds; i++ {
			pkt, ok := pe.Recv()
			if !ok {
				panic("bench: native recv failed")
			}
			pe.SendOwned(0, pkt.Data)
		}
	})
	if err != nil {
		panic(err)
	}
	return elapsed / float64(2*rounds)
}

// Converse measures the round trip through Converse handler dispatch:
// "on the receiving processor, for every message, the message was
// delivered to a handler which responded by sending a return message."
// No scheduler queue is involved.
func Converse(model *netmodel.Model, size, rounds int) float64 {
	return converseRT(model, size, rounds, false, core.CoalesceConfig{})
}

// Queued is Converse plus the receive-side scheduler-queue pass on the
// echo processor (the Figure 6 experiment).
func Queued(model *netmodel.Model, size, rounds int) float64 {
	return converseRT(model, size, rounds, true, core.CoalesceConfig{})
}

func converseRT(model *netmodel.Model, size, rounds int, queued bool, co core.CoalesceConfig) float64 {
	if size < core.HeaderSize {
		size = core.HeaderSize
	}
	cm := core.NewMachine(core.Config{PEs: 2, Model: model, Watchdog: watchdog, Coalesce: co})
	echoed, ponged := 0, 0
	// twoPhase implements the Figure 6 variant on a handler: a fresh
	// message is enqueued in the scheduler's queue and replayed, using
	// the flags word to mark the replay. It reports whether the caller
	// should return (the work happens on the replay).
	twoPhase := func(p *core.Proc, msg []byte) bool {
		if !queued || core.FlagsOf(msg) != 0 {
			return false
		}
		buf := p.GrabBuffer()
		core.SetFlags(buf, 1)
		p.Enqueue(buf)
		return true
	}
	var hPing, hPong int
	hPing = cm.RegisterHandler(func(p *core.Proc, msg []byte) {
		if twoPhase(p, msg) {
			return
		}
		reply := p.Alloc(len(msg) - core.HeaderSize)
		core.SetHandler(reply, hPong)
		p.SyncSendAndFree(0, reply)
		echoed++
	})
	hPong = cm.RegisterHandler(func(p *core.Proc, msg []byte) {
		if twoPhase(p, msg) {
			return
		}
		ponged++
	})

	var elapsed float64
	err := cm.Run(func(p *core.Proc) {
		msg := core.NewMsg(hPing, size-core.HeaderSize)
		if p.MyPe() == 0 {
			start := p.TimerUs()
			for i := 0; i < rounds; i++ {
				p.SyncSend(1, msg)
				want := ponged + 1
				p.ServeUntil(func() bool { return ponged == want })
			}
			elapsed = p.TimerUs() - start
			return
		}
		p.ServeUntil(func() bool { return echoed == rounds })
	})
	if err != nil {
		panic(err)
	}
	return elapsed / float64(2*rounds)
}

// Sweep runs all three layers over the standard size sweep on the given
// machine model.
func Sweep(model *netmodel.Model, rounds int) []Row {
	rows := make([]Row, 0, len(Sizes))
	for _, size := range Sizes {
		rows = append(rows, Row{
			Size:     size,
			Native:   Native(model, size, rounds),
			Converse: Converse(model, size, rounds),
			Queued:   Queued(model, size, rounds),
		})
	}
	return rows
}

// Figure describes one of the paper's evaluation figures.
type Figure struct {
	Number int
	Model  *netmodel.Model
	// ShowQueued marks Figure 6, the only one the paper runs the
	// queueing experiment on.
	ShowQueued bool
}

// Figures returns the paper's five evaluation figures in order.
func Figures() []Figure {
	return []Figure{
		{Number: 4, Model: netmodel.ATMHP()},
		{Number: 5, Model: netmodel.T3D()},
		{Number: 6, Model: netmodel.MyrinetFM(), ShowQueued: true},
		{Number: 7, Model: netmodel.SP1()},
		{Number: 8, Model: netmodel.Paragon()},
	}
}

// Print writes a figure's table to w, one series per column, matching
// the layout recorded in EXPERIMENTS.md.
func Print(w io.Writer, fig Figure, rounds int) error {
	rows := Sweep(fig.Model, rounds)
	if _, err := fmt.Fprintf(w, "Figure %d: %s — one-way message time (virtual us)\n",
		fig.Number, fig.Model.Name); err != nil {
		return err
	}
	header := fmt.Sprintf("%-10s %-12s %-12s", "bytes", "native", "converse")
	if fig.ShowQueued {
		header += fmt.Sprintf(" %-12s", "conv+queue")
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for _, r := range rows {
		line := fmt.Sprintf("%-10d %-12.2f %-12.2f", r.Size, r.Native, r.Converse)
		if fig.ShowQueued {
			line += fmt.Sprintf(" %-12.2f", r.Queued)
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
