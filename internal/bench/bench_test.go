package bench

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"converse/internal/netmodel"
)

// rounds is kept small: virtual-time results are deterministic, so a
// handful of round trips gives exact averages.
const rounds = 20

// TestFigure6PaperNumbers drives the real runtime on the Myrinet/FM
// model and checks the numbers the paper states in §5: FM delivers
// short messages in ~25 us, Converse needs ~31 us, and routing received
// messages through the scheduler's queue adds ~9-15 us for short
// messages, becoming negligible for large ones.
func TestFigure6PaperNumbers(t *testing.T) {
	mod := netmodel.MyrinetFM()
	for _, size := range []int{8, 64, 128} {
		if n := Native(mod, size, rounds); math.Abs(n-25) > 1 {
			t.Errorf("native one-way at %dB = %.2f us, paper says ~25", size, n)
		}
		if c := Converse(mod, size, rounds); math.Abs(c-31) > 1 {
			t.Errorf("converse one-way at %dB = %.2f us, paper says ~31", size, c)
		}
	}
	over := Queued(mod, 64, rounds) - Converse(mod, 64, rounds)
	if over < 9 || over > 15 {
		t.Errorf("queueing overhead = %.2f us, paper says 9-15", over)
	}
	// "For large messages, the relative difference becomes negligible."
	big := 65536
	rel := (Queued(mod, big, rounds) - Converse(mod, big, rounds)) / Converse(mod, big, rounds)
	if rel > 0.02 {
		t.Errorf("relative queueing overhead at 64KB = %.3f, want < 2%%", rel)
	}
}

// TestFigure5T3DShape checks the T3D behaviours the paper reports:
// near-native short-message performance and the 16 KB packetization
// jump.
func TestFigure5T3DShape(t *testing.T) {
	mod := netmodel.T3D()
	gap := Converse(mod, 8, rounds) - Native(mod, 8, rounds)
	if gap <= 0 || gap > 2 {
		t.Errorf("T3D short-message Converse gap = %.2f us; paper: 'very close to the best possible'", gap)
	}
	below := Converse(mod, 16376, rounds)
	at := Converse(mod, 16384, rounds)
	if at-below < 50 {
		t.Errorf("no 16KB jump through the runtime: %.2f -> %.2f us", below, at)
	}
}

// TestAllFiguresShapeCriteria applies the shape criteria from DESIGN.md
// to every machine: (a) Converse tracks native with a small constant
// gap; (b) ordering native < converse < queued holds everywhere; (c)
// the relative gap vanishes for large messages.
func TestAllFiguresShapeCriteria(t *testing.T) {
	for _, fig := range Figures() {
		mod := fig.Model
		gapSmall := Converse(mod, 8, rounds) - Native(mod, 8, rounds)
		gapBig := Converse(mod, 65536, rounds) - Native(mod, 65536, rounds)
		if math.Abs(gapSmall-gapBig) > 0.5 {
			t.Errorf("%s: Converse gap not constant: %.2f vs %.2f us", mod.Name, gapSmall, gapBig)
		}
		if gapSmall <= 0 || gapSmall > 7 {
			t.Errorf("%s: Converse gap %.2f us outside 'few tens of instructions'", mod.Name, gapSmall)
		}
		for _, size := range []int{8, 1024, 65536} {
			n, c, q := Native(mod, size, rounds), Converse(mod, size, rounds), Queued(mod, size, rounds)
			if !(n < c && c < q) {
				t.Errorf("%s at %dB: want native < converse < queued, got %.2f %.2f %.2f",
					mod.Name, size, n, c, q)
			}
		}
		if rel := gapBig / Native(mod, 65536, rounds); rel > 0.05 {
			t.Errorf("%s: relative gap at 64KB = %.3f, want < 5%%", mod.Name, rel)
		}
	}
}

// TestRuntimeMatchesClosedForm: the harness drives real code paths, so
// its numbers must agree exactly with the model's closed-form OneWay
// functions — any divergence means a layer is charging the wrong cost.
func TestRuntimeMatchesClosedForm(t *testing.T) {
	for _, fig := range Figures() {
		mod := fig.Model
		for _, size := range []int{8, 512, 16384} {
			if got, want := Native(mod, size, rounds), mod.OneWay(size); math.Abs(got-want) > 1e-9 {
				t.Errorf("%s native %dB: harness %.4f vs model %.4f", mod.Name, size, got, want)
			}
			if got, want := Converse(mod, size, rounds), mod.OneWayConverse(size); math.Abs(got-want) > 1e-9 {
				t.Errorf("%s converse %dB: harness %.4f vs model %.4f", mod.Name, size, got, want)
			}
			if got, want := Queued(mod, size, rounds), mod.OneWayQueued(size); math.Abs(got-want) > 1e-9 {
				t.Errorf("%s queued %dB: harness %.4f vs model %.4f", mod.Name, size, got, want)
			}
		}
	}
}

// TestSweepMonotone: one-way time never decreases with message size on
// any machine or layer.
func TestSweepMonotone(t *testing.T) {
	for _, fig := range Figures() {
		rows := Sweep(fig.Model, 5)
		for i := 1; i < len(rows); i++ {
			if rows[i].Native < rows[i-1].Native ||
				rows[i].Converse < rows[i-1].Converse ||
				rows[i].Queued < rows[i-1].Queued {
				t.Errorf("%s: non-monotone at %d bytes", fig.Model.Name, rows[i].Size)
			}
		}
	}
}

func TestFiguresList(t *testing.T) {
	figs := Figures()
	if len(figs) != 5 {
		t.Fatalf("Figures() returned %d, want 5 (Figures 4-8)", len(figs))
	}
	for i, f := range figs {
		if f.Number != i+4 {
			t.Errorf("figure %d has number %d", i, f.Number)
		}
		if f.ShowQueued != (f.Number == 6) {
			t.Errorf("queueing experiment must be exactly Figure 6")
		}
	}
}

func TestPrintFormat(t *testing.T) {
	var buf bytes.Buffer
	fig := Figures()[2] // Figure 6
	if err := Print(&buf, fig, 5); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 6") || !strings.Contains(out, "conv+queue") {
		t.Fatalf("output missing expected columns:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2+len(Sizes) {
		t.Fatalf("got %d lines, want %d", len(lines), 2+len(Sizes))
	}
	var buf4 bytes.Buffer
	if err := Print(&buf4, Figures()[0], 5); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf4.String(), "conv+queue") {
		t.Fatal("Figure 4 must not show the queueing series")
	}
}
