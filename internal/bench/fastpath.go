package bench

import (
	"fmt"
	"testing"

	"converse/internal/core"
	"converse/internal/netmodel"
)

// This file measures the communication fast path: pooled messages and
// sender-side coalescing (the BENCH_comm.json experiments run by
// cmd/commbench). The classic round-trip measurement in bench.go prices
// isolated messages; the fan-in measurement here prices the many-to-one
// burst pattern coalescing exists for.

// ConverseWith is Converse with an explicit coalescing configuration:
// the round trip through handler dispatch, coalescing applied to the
// ping and echo messages. With coalescing on, each message still
// travels alone (the round trip is strictly alternating), so this
// measures the fast path's per-message overhead floor — pack framing
// plus the receive-side unpack — rather than any amortization win.
func ConverseWith(model *netmodel.Model, size, rounds int, co core.CoalesceConfig) float64 {
	return converseRT(model, size, rounds, false, co)
}

// FanIn measures the many-to-one pattern on a machine of pes
// processors: every processor except 0 sends msgs messages of the
// given size to processor 0, which consumes them through the
// scheduler. It returns the virtual time in microseconds from start
// until processor 0 has dispatched the last message. Small messages
// make this receiver-bound: processor 0 pays the native per-message
// receive overhead once per packet, so coalescing (which turns ~32
// messages into one packet) raises fan-in throughput by the ratio
// netmodel.OneWayConverse / OneWayCoalesced of recv-side costs.
func FanIn(model *netmodel.Model, pes, msgs, size int, co core.CoalesceConfig) float64 {
	if size < core.HeaderSize {
		size = core.HeaderSize
	}
	cm := core.NewMachine(core.Config{
		PEs: pes, Model: model, Watchdog: watchdog, Coalesce: co,
	})
	total := (pes - 1) * msgs
	received := 0
	h := cm.RegisterHandler(func(p *core.Proc, msg []byte) {
		received++
		if received == total {
			p.ExitScheduler()
		}
	})
	var elapsed float64
	err := cm.Run(func(p *core.Proc) {
		if p.MyPe() == 0 {
			start := p.TimerUs()
			p.Scheduler(-1)
			elapsed = p.TimerUs() - start
			return
		}
		msg := core.NewMsg(h, size-core.HeaderSize)
		for i := 0; i < msgs; i++ {
			p.SyncSend(0, msg)
		}
	})
	if err != nil {
		panic(err)
	}
	if received != total {
		panic(fmt.Sprintf("bench: fan-in delivered %d of %d messages", received, total))
	}
	return elapsed
}

// FanInThroughput converts a FanIn elapsed time to messages per virtual
// millisecond.
func FanInThroughput(elapsedUs float64, pes, msgs int) float64 {
	return float64((pes-1)*msgs) / elapsedUs * 1000
}

// steadyState is the wall-clock benchmark body for the pooled
// SyncSendAndFree round trip: processor 0 allocates a message from the
// pool, transfers it, and blocks for the echo; processor 1's handler
// grabs the buffer and sends it straight back. After warmup every
// buffer in the cycle comes from and returns to a pool, so the steady
// state performs no heap allocation — the property BENCH_comm.json
// records and the Makefile's bench gate enforces.
func steadyState(b *testing.B, co core.CoalesceConfig) {
	cm := core.NewMachine(core.Config{PEs: 2, Watchdog: watchdog, Coalesce: co})
	var hPing, hPong, hStop int
	hPing = cm.RegisterHandler(func(p *core.Proc, msg []byte) {
		buf := p.GrabBuffer()
		core.SetHandler(buf, hPong)
		p.SyncSendAndFree(0, buf)
	})
	hPong = cm.RegisterHandler(func(p *core.Proc, msg []byte) {})
	hStop = cm.RegisterHandler(func(p *core.Proc, msg []byte) { p.ExitScheduler() })
	b.ReportAllocs()
	err := cm.Run(func(p *core.Proc) {
		if p.MyPe() != 0 {
			p.Scheduler(-1)
			return
		}
		roundTrip := func() {
			msg := p.Alloc(56)
			core.SetHandler(msg, hPing)
			p.SyncSendAndFree(1, msg)
			p.GetSpecificMsg(hPong)
		}
		for i := 0; i < 64; i++ {
			roundTrip() // warm both processors' pools
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			roundTrip()
		}
		b.StopTimer()
		p.SyncSend(1, core.MakeMsg(hStop, nil))
	})
	if err != nil {
		b.Fatal(err)
	}
}

// SteadyStateBench exposes the steady-state round trip to go-test
// benchmarks (see fastpath_test.go).
func SteadyStateBench(b *testing.B, co core.CoalesceConfig) { steadyState(b, co) }

// SteadyStateAllocs runs the steady-state round trip under the Go
// benchmark harness and reports heap allocations and wall-clock
// nanoseconds per round trip. Allocations are reported as a float so a
// rare once-per-many-ops allocation is visible rather than rounded
// away.
func SteadyStateAllocs(co core.CoalesceConfig) (allocsPerOp, nsPerOp float64) {
	r := testing.Benchmark(func(b *testing.B) { steadyState(b, co) })
	return float64(r.MemAllocs) / float64(r.N), float64(r.NsPerOp())
}
