package bench

import (
	"testing"

	"converse/internal/core"
	"converse/internal/netmodel"
)

// TestFanInCoalesceSpeedup is the acceptance gate for the coalescing
// fast path: on an 8-PE machine, small-message fan-in throughput must
// at least double when coalescing is on. The measurement is in virtual
// time, so it is fully deterministic.
func TestFanInCoalesceSpeedup(t *testing.T) {
	const pes, msgs, size = 8, 400, 64
	for _, model := range []*netmodel.Model{netmodel.ATMHP(), netmodel.SP1()} {
		off := FanIn(model, pes, msgs, size, core.CoalesceConfig{})
		on := FanIn(model, pes, msgs, size, core.CoalesceConfig{Enabled: true})
		if off <= 0 || on <= 0 {
			t.Fatalf("%s: non-positive elapsed times %v, %v", model.Name, off, on)
		}
		speedup := off / on
		t.Logf("%s: fan-in %d PEs x %d msgs x %dB: off=%.0fus on=%.0fus speedup=%.2fx",
			model.Name, pes, msgs, size, off, on, speedup)
		if speedup < 2 {
			t.Errorf("%s: fan-in speedup %.2fx, want >= 2x", model.Name, speedup)
		}
	}
}

// TestPingPongCoalesceOverheadBounded checks the flip side: strictly
// alternating round trips cannot amortize anything, so coalescing may
// cost a little (pack framing + unpack copy) but must stay within a
// few percent of the direct path.
func TestPingPongCoalesceOverheadBounded(t *testing.T) {
	model := netmodel.MyrinetFM()
	off := Converse(model, 64, 200)
	on := ConverseWith(model, 64, 200, core.CoalesceConfig{Enabled: true})
	if on > off*1.25 {
		t.Errorf("coalesced ping-pong %.2fus vs direct %.2fus: overhead > 25%%", on, off)
	}
	t.Logf("ping-pong 64B: direct=%.2fus coalesced=%.2fus", off, on)
}

// BenchmarkSendAndFreeSteadyState is the 0 allocs/op gate for the
// pooled send fast path (run by the Makefile's bench target).
func BenchmarkSendAndFreeSteadyState(b *testing.B) {
	SteadyStateBench(b, core.CoalesceConfig{})
}

func BenchmarkSendAndFreeSteadyStateCoalesced(b *testing.B) {
	SteadyStateBench(b, core.CoalesceConfig{Enabled: true})
}

// TestPingPongDeterministic checks that virtual-time measurements are
// exactly repeatable when the workload forces a total order on
// communication, as the strictly alternating round trip does: each
// side blocks for the other, so the schedule — and therefore every
// clock advance — is fixed regardless of goroutine timing. (Fan-in
// elapsed time is deliberately not asserted equal across runs: how the
// receiver's dispatch charges interleave with its arrival-stamp
// advances depends on how many packets each inbox poll finds, which
// varies with real scheduling; that is a property of the concurrent
// simulation, not a bug.)
func TestPingPongDeterministic(t *testing.T) {
	model := netmodel.T3D()
	for _, co := range []core.CoalesceConfig{{}, {Enabled: true}} {
		a := ConverseWith(model, 64, 100, co)
		b := ConverseWith(model, 64, 100, co)
		if a != b {
			t.Errorf("coalesced=%v: ping-pong not deterministic: %v vs %v", co.Enabled, a, b)
		}
	}
}
