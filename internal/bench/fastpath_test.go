package bench

import (
	"testing"

	"converse/internal/core"
	"converse/internal/netmodel"
)

// TestFanInCoalesceSpeedup is the acceptance gate for the coalescing
// fast path: on an 8-PE machine, small-message fan-in throughput must
// at least double when coalescing is on. The measurement is in virtual
// time, so it is fully deterministic.
func TestFanInCoalesceSpeedup(t *testing.T) {
	const pes, msgs, size = 8, 400, 64
	for _, model := range []*netmodel.Model{netmodel.ATMHP(), netmodel.SP1()} {
		off := FanIn(model, pes, msgs, size, core.CoalesceConfig{})
		on := FanIn(model, pes, msgs, size, core.CoalesceConfig{Enabled: true})
		if off <= 0 || on <= 0 {
			t.Fatalf("%s: non-positive elapsed times %v, %v", model.Name, off, on)
		}
		speedup := off / on
		t.Logf("%s: fan-in %d PEs x %d msgs x %dB: off=%.0fus on=%.0fus speedup=%.2fx",
			model.Name, pes, msgs, size, off, on, speedup)
		if speedup < 2 {
			t.Errorf("%s: fan-in speedup %.2fx, want >= 2x", model.Name, speedup)
		}
	}
}

// TestPingPongCoalesceOverheadBounded checks the flip side: strictly
// alternating round trips cannot amortize anything, so coalescing may
// cost a little (pack framing + unpack copy) but must stay within a
// few percent of the direct path.
func TestPingPongCoalesceOverheadBounded(t *testing.T) {
	model := netmodel.MyrinetFM()
	off := Converse(model, 64, 200)
	on := ConverseWith(model, 64, 200, core.CoalesceConfig{Enabled: true})
	if on > off*1.25 {
		t.Errorf("coalesced ping-pong %.2fus vs direct %.2fus: overhead > 25%%", on, off)
	}
	t.Logf("ping-pong 64B: direct=%.2fus coalesced=%.2fus", off, on)
}

// BenchmarkSendAndFreeSteadyState is the 0 allocs/op gate for the
// pooled send fast path (run by the Makefile's bench target).
func BenchmarkSendAndFreeSteadyState(b *testing.B) {
	SteadyStateBench(b, core.CoalesceConfig{})
}

func BenchmarkSendAndFreeSteadyStateCoalesced(b *testing.B) {
	SteadyStateBench(b, core.CoalesceConfig{Enabled: true})
}

func TestFanInDeterministic(t *testing.T) {
	model := netmodel.T3D()
	a := FanIn(model, 4, 100, 64, core.CoalesceConfig{Enabled: true})
	b := FanIn(model, 4, 100, 64, core.CoalesceConfig{Enabled: true})
	if a != b {
		t.Errorf("fan-in not deterministic: %v vs %v", a, b)
	}
}
