package bench

import (
	"fmt"
	"time"

	"converse/internal/core"
)

// This file measures the machine layer itself in wall-clock time, so
// the simulated multicomputer and the TCP network substrate can be
// compared on identical programs (cmd/commbench -transport tcp,
// BENCH_net.json). The virtual-time measurements elsewhere in this
// package price the paper's cost models; these price the real software
// stack underneath them.
//
// Under the network substrate every rank executes the same function in
// its own OS process and only processor 0 can observe a meaningful
// time, so each measurement returns its result on processor 0 and zero
// on every other rank. Ranks beyond cfg.PEs (surplus nodes of a wider
// converserun job) participate in the machine's lifecycle barriers but
// run no driver.

// NetPingPong measures the wall-clock round trip between processors 0
// and 1 through full Converse dispatch on the substrate selected by
// cfg.Transport. It returns the one-way time in microseconds as seen
// by processor 0.
func NetPingPong(cfg core.Config, size, rounds int) (float64, error) {
	if cfg.PEs < 2 {
		return 0, fmt.Errorf("bench: ping-pong needs at least 2 PEs, have %d", cfg.PEs)
	}
	if size < core.HeaderSize {
		size = core.HeaderSize
	}
	cm := core.NewMachine(cfg)
	echoed := 0
	var hPing, hPong int
	hPing = cm.RegisterHandler(func(p *core.Proc, msg []byte) {
		reply := p.Alloc(len(msg) - core.HeaderSize)
		core.SetHandler(reply, hPong)
		p.SyncSendAndFree(0, reply)
		echoed++
	})
	ponged := 0
	hPong = cm.RegisterHandler(func(p *core.Proc, msg []byte) { ponged++ })

	var elapsed time.Duration
	err := cm.Run(func(p *core.Proc) {
		switch p.MyPe() {
		case 0:
			msg := core.NewMsg(hPing, size-core.HeaderSize)
			start := time.Now()
			for i := 0; i < rounds; i++ {
				p.SyncSend(1, msg)
				want := ponged + 1
				p.ServeUntil(func() bool { return ponged == want })
			}
			elapsed = time.Since(start)
		case 1:
			p.ServeUntil(func() bool { return echoed == rounds })
		}
	})
	if err != nil {
		return 0, err
	}
	return float64(elapsed.Microseconds()) / float64(2*rounds), nil
}

// NetFanIn measures the wall-clock many-to-one burst: every processor
// except 0 sends msgs messages of the given size to processor 0. The
// result is the time in microseconds from processor 0's first dispatch
// to its last — a span measured entirely on one clock, so it is valid
// even though the senders' processes start at slightly different
// moments — along with the delivered-message throughput over that span
// in messages per millisecond.
func NetFanIn(cfg core.Config, msgs, size int) (elapsedUs, msgsPerMs float64, err error) {
	if cfg.PEs < 2 {
		return 0, 0, fmt.Errorf("bench: fan-in needs at least 2 PEs, have %d", cfg.PEs)
	}
	if size < core.HeaderSize {
		size = core.HeaderSize
	}
	cm := core.NewMachine(cfg)
	total := (cfg.PEs - 1) * msgs
	received := 0
	var first, last time.Time
	h := cm.RegisterHandler(func(p *core.Proc, msg []byte) {
		if received == 0 {
			first = time.Now()
		}
		received++
		if received == total {
			last = time.Now()
			p.ExitScheduler()
		}
	})
	err = cm.Run(func(p *core.Proc) {
		if p.MyPe() == 0 {
			p.Scheduler(-1)
			return
		}
		msg := core.NewMsg(h, size-core.HeaderSize)
		for i := 0; i < msgs; i++ {
			p.SyncSend(0, msg)
		}
	})
	if err != nil {
		return 0, 0, err
	}
	if received == 0 {
		// Not processor 0 (network substrate): nothing measured here.
		return 0, 0, nil
	}
	if received != total {
		return 0, 0, fmt.Errorf("bench: fan-in delivered %d of %d messages", received, total)
	}
	span := last.Sub(first)
	us := float64(span.Microseconds())
	if us <= 0 {
		us = 1 // sub-microsecond bursts: avoid a zero denominator
	}
	return us, float64(total-1) / us * 1000, nil
}
