package bench

// The 8→256-PE scale profile (cmd/commbench -scale, BENCH_scale.json).
//
// Each ladder point runs the wall-clock network suite (NetPingPong,
// NetFanIn) on the in-process simulated substrate at that processor
// count, then repeats the fan-in under a live CPU capture pulled
// through a real ccs monitor socket — the same introspection endpoint
// conversetop uses — so the published scheduler-loop share is measured
// by the shipping profiling path, not a test-only hook. Allocation
// cost per delivered message comes from the runtime's cumulative
// Mallocs counter around one fan-in run (machine construction is
// included, amortized over the burst).

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"converse/internal/ccs"
	"converse/internal/core"
)

// ScalePEs is the default processor ladder for the scale profile.
var ScalePEs = []int{8, 16, 32, 64, 128, 256}

// schedFrames are the scheduler-loop frames whose cumulative CPU share
// the profile reports: the main dispatch loops and the network-drain
// path that feeds them.
var schedFrames = []string{
	"core.(*Proc).Scheduler",
	"core.(*Proc).ServeUntil",
	"core.(*Proc).ScheduleUntilIdle",
	"core.(*Proc).deliverFromNetwork",
}

// ScalePoint is one row of BENCH_scale.json.
type ScalePoint struct {
	PEs int `json:"pes"`
	// PingPongOneWayUs is the 0↔1 one-way latency with pes-2 other
	// processors idle on the same machine.
	PingPongOneWayUs float64 `json:"pingpong_one_way_us"`
	// Fan-in burst: every processor but 0 sends Msgs messages to 0.
	FanInElapsedUs float64 `json:"fanin_elapsed_us"`
	FanInMsgsPerMs float64 `json:"fanin_msgs_per_ms"`
	// SchedCPUShare is the cumulative CPU fraction spent under the
	// scheduler loops (schedFrames) during fan-in bursts; CoreCPUShare
	// widens that to all of internal/core.
	SchedCPUShare float64 `json:"sched_cpu_share"`
	CoreCPUShare  float64 `json:"core_cpu_share"`
	// AllocsPerMsg is heap allocations per delivered message over one
	// fan-in burst (machine construction amortized in).
	AllocsPerMsg float64 `json:"allocs_per_msg"`
	// HeapInuseBytes is the process's live heap right after the timed
	// burst, while the machine's pools are still reachable.
	HeapInuseBytes int64 `json:"heap_inuse_bytes"`
}

// ScaleOptions parameterizes ScaleSweep.
type ScaleOptions struct {
	Msgs   int // messages per sending PE in the fan-in burst
	Size   int // message size in bytes
	Rounds int // ping-pong rounds
	// ProfileSeconds is the CPU-capture window per ladder point; the
	// fan-in repeats until the capture completes.
	ProfileSeconds float64
	Log            io.Writer // progress lines; nil for silent
}

// ScaleSweep runs the ladder and returns one point per processor
// count. The sim substrate multiplexes all PEs into this process, so
// CPU and heap captures see the whole machine.
func ScaleSweep(peList []int, opt ScaleOptions) ([]ScalePoint, error) {
	if opt.Msgs <= 0 || opt.Size <= 0 || opt.Rounds <= 0 {
		return nil, fmt.Errorf("bench: scale sweep needs positive msgs/size/rounds, have %d/%d/%d",
			opt.Msgs, opt.Size, opt.Rounds)
	}
	if opt.ProfileSeconds <= 0 {
		opt.ProfileSeconds = 1.3
	}
	logf := func(format string, args ...any) {
		if opt.Log != nil {
			fmt.Fprintf(opt.Log, format, args...)
		}
	}
	var points []ScalePoint
	for _, pes := range peList {
		if pes < 2 {
			return nil, fmt.Errorf("bench: scale sweep needs >= 2 PEs per point, have %d", pes)
		}
		pt, err := scalePoint(pes, opt)
		if err != nil {
			return nil, fmt.Errorf("bench: scale point pes=%d: %w", pes, err)
		}
		logf("pes=%-4d ping-pong %7.2f us   fan-in %9.0f us %8.1f msgs/ms   sched %4.1f%% core %4.1f%%   %.2f allocs/msg\n",
			pt.PEs, pt.PingPongOneWayUs, pt.FanInElapsedUs, pt.FanInMsgsPerMs,
			pt.SchedCPUShare*100, pt.CoreCPUShare*100, pt.AllocsPerMsg)
		points = append(points, pt)
	}
	return points, nil
}

func scalePoint(pes int, opt ScaleOptions) (ScalePoint, error) {
	cfg := core.Config{Transport: core.TransportSim, Watchdog: 5 * time.Minute}
	pt := ScalePoint{PEs: pes}

	cfg.PEs = pes
	pp, err := NetPingPong(cfg, opt.Size, opt.Rounds)
	if err != nil {
		return pt, err
	}
	pt.PingPongOneWayUs = pp

	// The timed fan-in doubles as the allocation count: the Mallocs
	// delta over machine build + burst, per delivered message.
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	el, tput, err := NetFanIn(cfg, opt.Msgs, opt.Size)
	if err != nil {
		return pt, err
	}
	runtime.ReadMemStats(&after)
	pt.FanInElapsedUs, pt.FanInMsgsPerMs = el, tput
	pt.AllocsPerMsg = float64(after.Mallocs-before.Mallocs) / float64((pes-1)*opt.Msgs)
	pt.HeapInuseBytes = int64(after.HeapInuse)

	// Profile captures go through a real monitor socket so the sweep
	// exercises the shipping introspection path end to end.
	mon, err := ccs.NewMonitor(ccs.Config{Addr: "127.0.0.1:0", NumPEs: pes})
	if err != nil {
		return pt, err
	}
	defer mon.Close()

	var cpuBuf bytes.Buffer
	fetchDone := make(chan error, 1)
	go func() {
		fetchDone <- ccs.FetchProfile(mon.Addr(), "", ccs.ProfileCPU, opt.ProfileSeconds, 0, &cpuBuf)
	}()
	// Keep the machine busy with fan-in bursts for the whole capture
	// window, then drain the last burst after the fetch returns.
	var fetchErr error
	done := false
	for !done {
		if _, _, err := NetFanIn(cfg, opt.Msgs, opt.Size); err != nil {
			return pt, err
		}
		select {
		case fetchErr = <-fetchDone:
			done = true
		default:
		}
	}
	if fetchErr != nil {
		return pt, fmt.Errorf("cpu capture: %w", fetchErr)
	}
	prof, err := ccs.ParseProfile(cpuBuf.Bytes())
	if err != nil {
		return pt, fmt.Errorf("cpu capture does not parse: %w", err)
	}
	pt.SchedCPUShare = prof.Share(schedFrames...)
	pt.CoreCPUShare = prof.Share("internal/core")

	// A heap capture through the same socket, parsed as a cross-check
	// that the profile path works at this scale (the live-heap number
	// itself comes from MemStats above — by the time this capture runs
	// the bench machines are garbage, so its totals are near zero).
	var heapBuf bytes.Buffer
	if err := ccs.FetchProfile(mon.Addr(), "", ccs.ProfileHeap, 0, 0, &heapBuf); err != nil {
		return pt, fmt.Errorf("heap capture: %w", err)
	}
	hp, err := ccs.ParseProfile(heapBuf.Bytes())
	if err != nil {
		return pt, fmt.Errorf("heap capture does not parse: %w", err)
	}
	if !strings.Contains(strings.Join(hp.SampleTypes, " "), "inuse_space") {
		return pt, fmt.Errorf("heap capture has sample types %v, want inuse_space", hp.SampleTypes)
	}
	return pt, nil
}
