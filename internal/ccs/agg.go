package ccs

import (
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"converse/internal/wire"
)

// Aggregate is the launcher-side monitor mux (converserun -monitor): it
// serves one socket that re-exports a mesh-wide view assembled from
// every rank's per-process endpoint. Snapshots fan out to all known
// backends concurrently and merge; profile requests are proxied to the
// requested rank's endpoint frame-by-frame.
type Aggregate struct {
	token string
	ln    net.Listener
	// backends reports the current rank -> endpoint address map; the
	// launcher updates it as workers report in, so the aggregate is
	// valid from the first reported rank onward.
	backends func() map[int]string

	mu     sync.Mutex
	closed bool
}

// ServeAggregate opens the mesh-wide monitor socket on addr. backends
// must be safe for concurrent calls.
func ServeAggregate(addr, token string, backends func() map[int]string) (*Aggregate, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ccs: listen %s: %w", addr, err)
	}
	a := &Aggregate{token: token, ln: ln, backends: backends}
	go a.acceptLoop()
	return a, nil
}

// Addr is the aggregate's actual listen address.
func (a *Aggregate) Addr() string { return a.ln.Addr().String() }

// Close stops the aggregate socket.
func (a *Aggregate) Close() error {
	a.mu.Lock()
	a.closed = true
	a.mu.Unlock()
	return a.ln.Close()
}

func (a *Aggregate) acceptLoop() {
	for {
		c, err := a.ln.Accept()
		if err != nil {
			a.mu.Lock()
			done := a.closed
			a.mu.Unlock()
			if done {
				return
			}
			time.Sleep(50 * time.Millisecond)
			continue
		}
		go a.serveConn(c)
	}
}

func (a *Aggregate) serveConn(c net.Conn) {
	defer c.Close()
	c.SetReadDeadline(time.Now().Add(ioTimeout))
	k, payload, err := wire.ReadFrame(c)
	if err != nil {
		return
	}
	if k != kReq {
		writeErr(c, fmt.Sprintf("ccs: unexpected frame kind %d, want request", k))
		return
	}
	var req reqMsg
	if err := json.Unmarshal(payload, &req); err != nil {
		writeErr(c, fmt.Sprintf("ccs: bad request: %v", err))
		return
	}
	if a.token != "" && req.Token != a.token {
		writeErr(c, "ccs: bad token")
		return
	}
	c.SetReadDeadline(time.Time{})
	switch req.Op {
	case OpSnapshot:
		snap := a.snapshot()
		payload, err := json.Marshal(snap)
		if err != nil {
			writeErr(c, fmt.Sprintf("ccs: encoding snapshot: %v", err))
			return
		}
		c.SetWriteDeadline(time.Now().Add(ioTimeout))
		wire.WriteFrame(c, kSnap, payload)
	case OpProfile:
		a.proxyProfile(c, req)
	default:
		writeErr(c, fmt.Sprintf("ccs: unknown op %q", req.Op))
	}
}

// snapshot fans out to every known backend and merges the per-rank
// views into one mesh-wide Snapshot sorted by PE. Unreachable ranks are
// listed in Missing rather than failing the whole view: a wedged or
// dying worker is exactly when you want the rest of the picture.
func (a *Aggregate) snapshot() *Snapshot {
	be := a.backends()
	ranks := make([]int, 0, len(be))
	for r := range be {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)

	out := &Snapshot{Schema: SchemaV1, UnixNanos: time.Now().UnixNano()}
	views := make([]*Snapshot, len(ranks))
	var wg sync.WaitGroup
	for i, r := range ranks {
		wg.Add(1)
		go func(i, r int) {
			defer wg.Done()
			snap, err := Fetch(be[r], a.token)
			if err == nil {
				views[i] = snap
			}
		}(i, r)
	}
	wg.Wait()
	for i, r := range ranks {
		v := views[i]
		if v == nil {
			out.Missing = append(out.Missing, r)
			continue
		}
		if v.NumPEs > out.NumPEs {
			out.NumPEs = v.NumPEs
		}
		if out.Job == "" {
			out.Job = v.Job
		}
		for _, pe := range v.PEs {
			pe.Rank = r
			out.PEs = append(out.PEs, pe)
		}
	}
	sort.Slice(out.PEs, func(i, j int) bool { return out.PEs[i].PE < out.PEs[j].PE })
	return out
}

// proxyProfile forwards a profile request to the requested rank's
// endpoint and relays the response frames verbatim.
func (a *Aggregate) proxyProfile(c net.Conn, req reqMsg) {
	be := a.backends()
	addr, ok := be[req.Rank]
	if !ok {
		writeErr(c, fmt.Sprintf("ccs: no monitor endpoint known for rank %d", req.Rank))
		return
	}
	up, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		writeErr(c, fmt.Sprintf("ccs: dialing rank %d monitor: %v", req.Rank, err))
		return
	}
	defer up.Close()
	if err := sendReq(up, req); err != nil {
		writeErr(c, err.Error())
		return
	}
	wait := ioTimeout + time.Duration(req.Seconds*float64(time.Second))
	for {
		up.SetReadDeadline(time.Now().Add(wait))
		k, payload, err := wire.ReadFrame(up)
		if err != nil {
			writeErr(c, fmt.Sprintf("ccs: relaying from rank %d: %v", req.Rank, err))
			return
		}
		c.SetWriteDeadline(time.Now().Add(ioTimeout))
		if err := wire.WriteFrame(c, k, payload); err != nil {
			return
		}
		if k == kProfEnd || k == kErr {
			return
		}
	}
}
