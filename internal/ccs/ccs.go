// Package ccs is the live introspection plane: a Converse
// client-server (CCS-style) monitor endpoint each rank opens on demand,
// plus the client and launcher-side aggregator that read it.
//
// The Charm lineage pairs the scheduler with a client-server interface
// so a running machine can be observed without stopping it; this
// package is that interface for this runtime. Each endpoint serves, on
// request:
//
//   - a point-in-time snapshot: the metrics registry (PR 1), scheduler
//     queue state published through the core's doorbell (so nothing
//     ever reads driver-local state from a foreign goroutine and the
//     scheduler is never blocked), inbox depth, and the blocked-thread
//     description,
//   - pprof CPU and heap captures, streamed back as frames.
//
// The protocol reuses the mnet wire framing (internal/wire) with its
// own kind range and the job's auth token, so a monitor speaks the same
// checksummed byte format as the mesh but a cross-connected client
// fails loudly. One request per connection; responses are JSON for
// snapshots and raw chunk frames for profiles.
//
// Design rule: this package must not import internal/core or
// internal/mnet. The core adapts itself to the Source interface and
// dials in; that keeps observation decoupled from the scheduler the
// same way fibers are decoupled from pthreads — by interface, not by
// embedding.
package ccs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"converse/internal/metrics"
	"converse/internal/wire"
)

// Frame kinds, in a range disjoint from internal/mnet's so a client
// dialing the wrong port gets a loud kind error, not silent misparse.
const (
	kReq       byte = 64 + iota // client request (JSON, reqMsg)
	kSnap                       // snapshot response (JSON, Snapshot)
	kProfChunk                  // one chunk of a pprof capture
	kProfEnd                    // end of a pprof capture stream
	kErr                        // request failed (JSON, errMsg)
)

// Ops a request can ask for.
const (
	OpSnapshot = "snapshot"
	OpProfile  = "profile"
)

// Profile kinds.
const (
	ProfileCPU  = "cpu"
	ProfileHeap = "heap"
)

const (
	// probeTimeout bounds how long a snapshot waits for one scheduler
	// to answer its doorbell before reporting the last published state
	// as stale.
	probeTimeout = 250 * time.Millisecond
	// defaultProfileSeconds is the CPU capture window when the request
	// does not name one; maxProfileSeconds bounds it.
	defaultProfileSeconds = 2.0
	maxProfileSeconds     = 60.0
	// ioTimeout bounds single reads/writes on monitor connections.
	ioTimeout = 30 * time.Second
)

// SchedState is a point-in-time view of one processor's scheduler,
// published by the core's doorbell handler (internal/core re-exports
// this type; the doorbell is documented there).
type SchedState struct {
	// QueueLen is the scheduler queue depth (CsdLength).
	QueueLen int `json:"queue_len"`
	// DeferredLen counts messages set aside by GetSpecificMsg.
	DeferredLen int `json:"deferred_len"`
	// NetqLen counts network messages ingested but not yet scheduled.
	NetqLen int `json:"netq_len"`
	// DispatchDepth is the nested-dispatch depth at publish time (0 =
	// between handlers; >0 = ringed from inside a blocking receive
	// under a live handler).
	DispatchDepth int `json:"dispatch_depth"`
	// IdleCount is how many times the scheduler has blocked idle.
	IdleCount uint64 `json:"idle_count"`
	// Seq increments on every doorbell publish.
	Seq uint64 `json:"seq"`
}

// Source is one observable processor: the core adapts each local Proc
// to this interface. All methods must be safe to call from the
// monitor's goroutines.
type Source interface {
	// PEID is the processor's machine-wide id.
	PEID() int
	// Probe rings the processor's doorbell and returns its scheduler
	// state; ok=false means the answer is stale (scheduler busy or the
	// substrate cannot inject).
	Probe(timeout time.Duration) (SchedState, bool)
	// Blocked describes why the processor is blocked, in the shared
	// diagnostic format, or "" if unknown.
	Blocked() string
	// InboxLen is the machine-level inbound queue depth.
	InboxLen() int
}

// PEView is one processor's entry in a Snapshot.
type PEView struct {
	PE   int `json:"pe"`
	Rank int `json:"rank"`
	// Node is the PE's node in the machine's node×PE topology
	// (CmiNodeOf); equal to Rank on classic 1-PE-per-node jobs. Sources
	// that don't know their node report 0.
	Node  int        `json:"node"`
	Sched SchedState `json:"sched"`
	// Fresh reports whether Sched was published in answer to this
	// snapshot's doorbell ring (false = last known, possibly stale).
	Fresh    bool   `json:"fresh"`
	Blocked  string `json:"blocked,omitempty"`
	InboxLen int    `json:"inbox_len"`
	// Metrics is the PR 1 registry view for this processor; nil when
	// the machine runs without a metrics registry.
	Metrics *metrics.PESnapshot `json:"metrics,omitempty"`
}

// Snapshot is a mesh- or process-wide monitor snapshot.
type Snapshot struct {
	// Schema names the snapshot layout for scripts.
	Schema string `json:"schema"`
	// Job names the elastic-service job this snapshot belongs to;
	// empty for classic batch machines.
	Job string `json:"job,omitempty"`
	// NumPEs is the machine size; PEs holds the processors this
	// endpoint (or aggregate) could reach.
	NumPEs int      `json:"num_pes"`
	PEs    []PEView `json:"pes"`
	// Missing lists ranks an aggregate view could not reach.
	Missing []int `json:"missing,omitempty"`
	// UnixNanos stamps when the snapshot was assembled (client rate
	// computations divide by the delta between two snapshots).
	UnixNanos int64 `json:"unix_nanos"`
}

// SchemaV1 is the current Snapshot.Schema value.
const SchemaV1 = "converse-ccs/1"

type reqMsg struct {
	Token   string  `json:"token,omitempty"`
	Op      string  `json:"op"`
	Profile string  `json:"profile,omitempty"`
	Seconds float64 `json:"seconds,omitempty"`
	// Rank selects one rank's endpoint through an aggregator (profiles
	// are always per-process); -1 or absent means "this endpoint" and,
	// for snapshots through an aggregator, "all ranks".
	Rank int `json:"rank,omitempty"`
}

type errMsg struct {
	Error string `json:"error"`
}

// Config parameterizes a per-process Monitor endpoint.
type Config struct {
	// Addr is the TCP listen address ("127.0.0.1:0" for an ephemeral
	// local port).
	Addr string
	// Token, when non-empty, must match every request's token (the
	// launcher passes the job token through).
	Token string
	// NumPEs is the machine size reported in snapshots.
	NumPEs int
	// Rank is this process's rank (0 under the sim substrate).
	Rank int
	// Registry, if non-nil, contributes per-PE metrics to snapshots.
	Registry *metrics.Registry
	// Sources are the processors living in this process.
	Sources []Source
	// Job, when non-empty, names the elastic-service job this machine
	// executes; it is stamped on every snapshot so viewers can
	// attribute load per job.
	Job string
}

// Monitor is a running per-process introspection endpoint.
type Monitor struct {
	cfg Config
	ln  net.Listener

	mu     sync.Mutex
	closed bool
}

// cpuMu serializes CPU profiling process-wide: the runtime supports one
// CPU profile at a time regardless of how many monitors ask.
var cpuMu sync.Mutex

// NewMonitor opens an endpoint and serves it on background goroutines
// until Close.
func NewMonitor(cfg Config) (*Monitor, error) {
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("ccs: listen %s: %w", cfg.Addr, err)
	}
	m := &Monitor{cfg: cfg, ln: ln}
	go m.acceptLoop()
	return m, nil
}

// Addr is the endpoint's actual listen address.
func (m *Monitor) Addr() string { return m.ln.Addr().String() }

// Close stops the endpoint. In-flight requests finish on their own.
func (m *Monitor) Close() error {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	return m.ln.Close()
}

func (m *Monitor) acceptLoop() {
	for {
		c, err := m.ln.Accept()
		if err != nil {
			m.mu.Lock()
			done := m.closed
			m.mu.Unlock()
			if done {
				return
			}
			// Transient accept errors (EMFILE etc): back off and retry.
			time.Sleep(50 * time.Millisecond)
			continue
		}
		go m.serveConn(c)
	}
}

// serveConn handles one request-response exchange and closes.
func (m *Monitor) serveConn(c net.Conn) {
	defer c.Close()
	c.SetReadDeadline(time.Now().Add(ioTimeout))
	k, payload, err := wire.ReadFrame(c)
	if err != nil {
		return
	}
	if k != kReq {
		writeErr(c, fmt.Sprintf("ccs: unexpected frame kind %d, want request", k))
		return
	}
	var req reqMsg
	if err := json.Unmarshal(payload, &req); err != nil {
		writeErr(c, fmt.Sprintf("ccs: bad request: %v", err))
		return
	}
	if m.cfg.Token != "" && req.Token != m.cfg.Token {
		writeErr(c, "ccs: bad token")
		return
	}
	c.SetReadDeadline(time.Time{})
	switch req.Op {
	case OpSnapshot:
		snap := m.snapshot()
		payload, err := json.Marshal(snap)
		if err != nil {
			writeErr(c, fmt.Sprintf("ccs: encoding snapshot: %v", err))
			return
		}
		c.SetWriteDeadline(time.Now().Add(ioTimeout))
		wire.WriteFrame(c, kSnap, payload)
	case OpProfile:
		m.serveProfile(c, req)
	default:
		writeErr(c, fmt.Sprintf("ccs: unknown op %q", req.Op))
	}
}

// snapshot assembles this process's view. All sources are probed
// concurrently so one busy scheduler delays the snapshot by at most one
// probe timeout, not one per PE.
func (m *Monitor) snapshot() *Snapshot {
	snap := &Snapshot{
		Schema:    SchemaV1,
		Job:       m.cfg.Job,
		NumPEs:    m.cfg.NumPEs,
		PEs:       make([]PEView, len(m.cfg.Sources)),
		UnixNanos: time.Now().UnixNano(),
	}
	var reg *metrics.Snapshot
	if m.cfg.Registry != nil {
		s := m.cfg.Registry.Snapshot()
		reg = &s
	}
	var wg sync.WaitGroup
	for i, src := range m.cfg.Sources {
		wg.Add(1)
		go func(i int, src Source) {
			defer wg.Done()
			st, fresh := src.Probe(probeTimeout)
			v := PEView{
				PE:       src.PEID(),
				Rank:     m.cfg.Rank,
				Sched:    st,
				Fresh:    fresh,
				Blocked:  src.Blocked(),
				InboxLen: src.InboxLen(),
			}
			// Per-node grouping: sources that know their place in the
			// node×PE topology (core's procSource) report it; plain
			// test fakes fall back to node 0.
			if ns, ok := src.(interface{ Node() int }); ok {
				v.Node = ns.Node()
			}
			if reg != nil && v.PE >= 0 && v.PE < len(reg.PEs) {
				pe := reg.PEs[v.PE]
				v.Metrics = &pe
			}
			snap.PEs[i] = v
		}(i, src)
	}
	wg.Wait()
	return snap
}

// serveProfile streams one pprof capture back as chunk frames.
func (m *Monitor) serveProfile(c net.Conn, req reqMsg) {
	w := &chunkWriter{c: c}
	switch req.Profile {
	case ProfileCPU:
		secs := req.Seconds
		if secs <= 0 {
			secs = defaultProfileSeconds
		}
		if secs > maxProfileSeconds {
			secs = maxProfileSeconds
		}
		if !cpuMu.TryLock() {
			writeErr(c, "ccs: a CPU profile is already being captured")
			return
		}
		err := pprof.StartCPUProfile(w)
		if err == nil {
			time.Sleep(time.Duration(secs * float64(time.Second)))
			pprof.StopCPUProfile()
		}
		cpuMu.Unlock()
		if err != nil {
			writeErr(c, fmt.Sprintf("ccs: cpu profile: %v", err))
			return
		}
	case ProfileHeap:
		runtime.GC() // material allocations only, per pprof convention
		if err := pprof.WriteHeapProfile(w); err != nil {
			writeErr(c, fmt.Sprintf("ccs: heap profile: %v", err))
			return
		}
	default:
		writeErr(c, fmt.Sprintf("ccs: unknown profile %q (want %q or %q)", req.Profile, ProfileCPU, ProfileHeap))
		return
	}
	if w.err != nil {
		return // client went away mid-stream
	}
	c.SetWriteDeadline(time.Now().Add(ioTimeout))
	wire.WriteFrame(c, kProfEnd, nil)
}

// chunkWriter frames every Write as one profile chunk.
type chunkWriter struct {
	c   net.Conn
	err error
}

func (w *chunkWriter) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	w.c.SetWriteDeadline(time.Now().Add(ioTimeout))
	if err := wire.WriteFrame(w.c, kProfChunk, p); err != nil {
		w.err = err
		return 0, err
	}
	return len(p), nil
}

func writeErr(c net.Conn, msg string) {
	payload, _ := json.Marshal(errMsg{Error: msg})
	c.SetWriteDeadline(time.Now().Add(ioTimeout))
	wire.WriteFrame(c, kErr, payload)
}

// decodeErr turns a kErr payload into an error.
func decodeErr(payload []byte) error {
	var e errMsg
	if json.Unmarshal(payload, &e) == nil && e.Error != "" {
		return errors.New(e.Error)
	}
	return errors.New("ccs: remote error")
}

var _ io.Writer = (*chunkWriter)(nil)
