package ccs_test

// End-to-end tests over the real stack: a sim-substrate machine opens a
// monitor endpoint (core.Machine.StartMonitor adapts its processors to
// ccs.Source), and the client functions read it over a real socket.

import (
	"bytes"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"converse/internal/ccs"
	"converse/internal/core"
	"converse/internal/metrics"
)

// startServing builds a PEs-wide sim machine whose drivers serve until
// released, returning the machine, a stop function, and the Run error
// channel.
func startServing(t *testing.T, pes int, reg *metrics.Registry) (*core.Machine, func()) {
	t.Helper()
	cm := core.NewMachine(core.Config{PEs: pes, Metrics: reg})
	var stop atomic.Bool
	errCh := make(chan error, 1)
	go func() {
		errCh <- cm.Run(func(p *core.Proc) {
			p.ServeUntil(func() bool { return stop.Load() })
		})
	}()
	release := func() {
		stop.Store(true)
		// Wake any idle-blocked scheduler so it re-evaluates the
		// predicate: the probe's doorbell is itself the wakeup.
		for i := 0; i < pes; i++ {
			cm.Proc(i).ProbeSchedState(time.Second)
		}
		if err := <-errCh; err != nil {
			t.Errorf("machine run: %v", err)
		}
	}
	return cm, release
}

func TestSnapshotLiveSimMachine(t *testing.T) {
	reg := metrics.New(4)
	cm, release := startServing(t, 4, reg)
	defer release()

	mon, err := cm.StartMonitor("127.0.0.1:0", "tok")
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	snap, err := ccs.Fetch(mon.Addr(), "tok")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Schema != ccs.SchemaV1 {
		t.Errorf("schema = %q, want %q", snap.Schema, ccs.SchemaV1)
	}
	if snap.NumPEs != 4 || len(snap.PEs) != 4 {
		t.Fatalf("snapshot covers %d/%d PEs, want 4/4", len(snap.PEs), snap.NumPEs)
	}
	for _, v := range snap.PEs {
		if !v.Fresh {
			t.Errorf("pe %d: stale sched state from an idle, serving scheduler", v.PE)
		}
		if v.Sched.Seq == 0 {
			t.Errorf("pe %d: doorbell never published (seq 0)", v.PE)
		}
		if v.Metrics == nil {
			t.Errorf("pe %d: no metrics in snapshot despite a registry", v.PE)
		}
		if v.Blocked == "" {
			t.Errorf("pe %d: no block-state description", v.PE)
		}
	}
}

func TestSnapshotRejectsBadToken(t *testing.T) {
	cm, release := startServing(t, 2, nil)
	defer release()
	mon, err := cm.StartMonitor("127.0.0.1:0", "right")
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	if _, err := ccs.Fetch(mon.Addr(), "wrong"); err == nil || !strings.Contains(err.Error(), "token") {
		t.Fatalf("Fetch with wrong token: err = %v, want token rejection", err)
	}
	if _, err := ccs.Fetch(mon.Addr(), "right"); err != nil {
		t.Fatalf("Fetch with right token: %v", err)
	}
}

func TestHeapProfileRoundTrip(t *testing.T) {
	cm, release := startServing(t, 2, nil)
	defer release()
	mon, err := cm.StartMonitor("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	var buf bytes.Buffer
	if err := ccs.FetchProfile(mon.Addr(), "", ccs.ProfileHeap, 0, 0, &buf); err != nil {
		t.Fatal(err)
	}
	prof, err := ccs.ParseProfile(buf.Bytes())
	if err != nil {
		t.Fatalf("heap capture does not parse: %v", err)
	}
	if len(prof.SampleTypes) == 0 {
		t.Fatal("heap profile has no sample types")
	}
	// The standard heap profile carries alloc/inuse columns.
	joined := strings.Join(prof.SampleTypes, " ")
	if !strings.Contains(joined, "inuse_space") {
		t.Errorf("heap sample types %v missing inuse_space", prof.SampleTypes)
	}
}

func TestCPUProfileRoundTrip(t *testing.T) {
	cm, release := startServing(t, 2, nil)
	defer release()
	mon, err := cm.StartMonitor("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	var buf bytes.Buffer
	if err := ccs.FetchProfile(mon.Addr(), "", ccs.ProfileCPU, 0.2, 0, &buf); err != nil {
		t.Fatal(err)
	}
	prof, err := ccs.ParseProfile(buf.Bytes())
	if err != nil {
		t.Fatalf("cpu capture does not parse: %v", err)
	}
	if got := strings.Join(prof.SampleTypes, " "); !strings.Contains(got, "cpu") {
		t.Errorf("cpu sample types = %v, want a cpu column", prof.SampleTypes)
	}
	if prof.DurationNanos <= 0 {
		t.Errorf("cpu profile duration %d, want > 0", prof.DurationNanos)
	}
}

// fakeSource is a synthetic processor for aggregator tests.
type fakeSource struct{ pe int }

func (f fakeSource) PEID() int { return f.pe }
func (f fakeSource) Probe(time.Duration) (ccs.SchedState, bool) {
	return ccs.SchedState{QueueLen: f.pe * 10, Seq: 1}, true
}
func (f fakeSource) Blocked() string { return "running" }
func (f fakeSource) InboxLen() int   { return f.pe }

func TestAggregateMergesAndReportsMissing(t *testing.T) {
	// Two live per-rank endpoints plus one dead backend address.
	m0, err := ccs.NewMonitor(ccs.Config{Addr: "127.0.0.1:0", Token: "t", NumPEs: 3, Rank: 0,
		Sources: []ccs.Source{fakeSource{pe: 0}}})
	if err != nil {
		t.Fatal(err)
	}
	defer m0.Close()
	m1, err := ccs.NewMonitor(ccs.Config{Addr: "127.0.0.1:0", Token: "t", NumPEs: 3, Rank: 1,
		Sources: []ccs.Source{fakeSource{pe: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	defer m1.Close()

	backends := func() map[int]string {
		return map[int]string{0: m0.Addr(), 1: m1.Addr(), 2: "127.0.0.1:1"}
	}
	agg, err := ccs.ServeAggregate("127.0.0.1:0", "t", backends)
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()

	snap, err := ccs.Fetch(agg.Addr(), "t")
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.PEs) != 2 {
		t.Fatalf("aggregate reached %d PEs, want 2", len(snap.PEs))
	}
	for i, v := range snap.PEs {
		if v.PE != i || v.Rank != i {
			t.Errorf("merged view %d: pe=%d rank=%d, want both %d (sorted, rank restamped)", i, v.PE, v.Rank, i)
		}
	}
	if len(snap.Missing) != 1 || snap.Missing[0] != 2 {
		t.Errorf("missing = %v, want [2]", snap.Missing)
	}

	// Profile proxying: a heap capture through the aggregate for rank 1
	// must come back as a valid profile.
	var buf bytes.Buffer
	if err := ccs.FetchProfile(agg.Addr(), "t", ccs.ProfileHeap, 0, 1, &buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ccs.ParseProfile(buf.Bytes()); err != nil {
		t.Fatalf("proxied heap capture does not parse: %v", err)
	}
	// And an unknown rank is a clean error, not a hang.
	if err := ccs.FetchProfile(agg.Addr(), "t", ccs.ProfileHeap, 0, 9, &buf); err == nil {
		t.Error("profile for unknown rank succeeded, want error")
	}
}

func TestProfileShare(t *testing.T) {
	p := &ccs.Profile{
		SampleTypes: []string{"samples/count", "cpu/nanoseconds"},
		Samples: []ccs.ProfSample{
			{Stack: []string{"runtime.mallocgc", "core.(*Proc).dispatch", "core.(*Proc).Scheduler"}, Values: []int64{1, 30}},
			{Stack: []string{"main.compute"}, Values: []int64{1, 70}},
		},
	}
	if got := p.Share("core.(*Proc).Scheduler"); got != 0.3 {
		t.Errorf("Share(scheduler) = %v, want 0.3", got)
	}
	if got := p.Share("nosuchfunc"); got != 0 {
		t.Errorf("Share(nosuchfunc) = %v, want 0", got)
	}
	if got := p.Share("main.compute", "core."); got != 1.0 {
		t.Errorf("Share(both) = %v, want 1.0", got)
	}
}
