package ccs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"time"

	"converse/internal/wire"
)

// dialTimeout bounds connecting to an endpoint.
const dialTimeout = 5 * time.Second

// Fetch requests a snapshot from the monitor endpoint at addr.
func Fetch(addr, token string) (*Snapshot, error) {
	c, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("ccs: dial %s: %w", addr, err)
	}
	defer c.Close()
	if err := sendReq(c, reqMsg{Token: token, Op: OpSnapshot}); err != nil {
		return nil, err
	}
	c.SetReadDeadline(time.Now().Add(ioTimeout))
	k, payload, err := wire.ReadFrame(c)
	if err != nil {
		return nil, fmt.Errorf("ccs: reading snapshot from %s: %w", addr, err)
	}
	switch k {
	case kSnap:
		var snap Snapshot
		if err := json.Unmarshal(payload, &snap); err != nil {
			return nil, fmt.Errorf("ccs: decoding snapshot: %w", err)
		}
		return &snap, nil
	case kErr:
		return nil, decodeErr(payload)
	default:
		return nil, fmt.Errorf("ccs: unexpected frame kind %d, want snapshot", k)
	}
}

// FetchProfile requests one pprof capture (ProfileCPU or ProfileHeap)
// from the endpoint at addr and writes the raw pprof bytes to w.
// seconds sizes a CPU capture window (0 = server default); rank routes
// through an aggregator to one rank's process (pass 0 for a per-process
// endpoint).
func FetchProfile(addr, token, profile string, seconds float64, rank int, w io.Writer) error {
	c, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return fmt.Errorf("ccs: dial %s: %w", addr, err)
	}
	defer c.Close()
	req := reqMsg{Token: token, Op: OpProfile, Profile: profile, Seconds: seconds, Rank: rank}
	if err := sendReq(c, req); err != nil {
		return err
	}
	// A CPU capture takes its whole window before the first chunk
	// arrives; size the read deadline for it.
	wait := ioTimeout + time.Duration(seconds*float64(time.Second))
	for {
		c.SetReadDeadline(time.Now().Add(wait))
		k, payload, err := wire.ReadFrame(c)
		if err != nil {
			return fmt.Errorf("ccs: reading profile from %s: %w", addr, err)
		}
		switch k {
		case kProfChunk:
			if _, err := w.Write(payload); err != nil {
				return err
			}
		case kProfEnd:
			return nil
		case kErr:
			return decodeErr(payload)
		default:
			return fmt.Errorf("ccs: unexpected frame kind %d in profile stream", k)
		}
	}
}

func sendReq(c net.Conn, req reqMsg) error {
	payload, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("ccs: encoding request: %w", err)
	}
	c.SetWriteDeadline(time.Now().Add(ioTimeout))
	if err := wire.WriteFrame(c, kReq, payload); err != nil {
		return fmt.Errorf("ccs: sending request: %w", err)
	}
	return nil
}
