package ccs

// A minimal pprof protobuf reader. The profiles the monitor streams
// back are protocol-buffer encoded (gzipped profile.proto); the repo is
// stdlib-only, so this file walks the wire format by hand — just the
// fields the tooling needs: samples, their values, and the function
// names on each stack. conversetop and the scale sweep use it to
// validate captures end-to-end and to compute the scheduler-loop CPU
// share for BENCH_scale.json.

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Profile is a decoded pprof capture.
type Profile struct {
	// SampleTypes names each value column, "type/unit" (e.g.
	// "cpu/nanoseconds", "inuse_space/bytes").
	SampleTypes []string
	// Samples hold one value per sample type and the sampled call
	// stack as function names, leaf first.
	Samples []ProfSample

	TimeNanos     int64
	DurationNanos int64
}

// ProfSample is one sample: a call stack and its value columns.
type ProfSample struct {
	Stack  []string
	Values []int64
}

// Total sums value column col over all samples.
func (p *Profile) Total(col int) int64 {
	var t int64
	for _, s := range p.Samples {
		if col < len(s.Values) {
			t += s.Values[col]
		}
	}
	return t
}

// Share returns the fraction of the profile's last value column (CPU
// nanoseconds for CPU captures) attributed to samples whose stack
// contains a function matching any of the given substrings. Matching
// anywhere in the stack makes it a cumulative share.
func (p *Profile) Share(substrs ...string) float64 {
	if len(p.SampleTypes) == 0 {
		return 0
	}
	col := len(p.SampleTypes) - 1
	total := p.Total(col)
	if total == 0 {
		return 0
	}
	var matched int64
sample:
	for _, s := range p.Samples {
		if col >= len(s.Values) {
			continue
		}
		for _, fn := range s.Stack {
			for _, sub := range substrs {
				if strings.Contains(fn, sub) {
					matched += s.Values[col]
					continue sample
				}
			}
		}
	}
	return float64(matched) / float64(total)
}

// ParseProfile decodes a pprof capture (gzipped or raw proto).
func ParseProfile(data []byte) (*Profile, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("ccs: profile gzip: %w", err)
		}
		raw, err := io.ReadAll(zr)
		if err != nil {
			return nil, fmt.Errorf("ccs: profile gunzip: %w", err)
		}
		data = raw
	}
	var (
		strTab              []string
		funcName            = map[uint64]uint64{}   // function id -> name string index
		locFuncs            = map[uint64][]uint64{} // location id -> function ids, leaf first
		rawSmpls            []rawSample
		valTypes            []rawValType
		timeNanos, durNanos int64
	)
	err := walkFields(data, func(tag uint64, wt int, v uint64, b []byte) error {
		switch tag {
		case 1: // sample_type
			vt, err := parseValType(b)
			if err != nil {
				return err
			}
			valTypes = append(valTypes, vt)
		case 2: // sample
			s, err := parseSample(b)
			if err != nil {
				return err
			}
			rawSmpls = append(rawSmpls, s)
		case 4: // location
			id, fns, err := parseLocation(b)
			if err != nil {
				return err
			}
			locFuncs[id] = fns
		case 5: // function
			id, name, err := parseFunction(b)
			if err != nil {
				return err
			}
			funcName[id] = name
		case 6: // string_table
			strTab = append(strTab, string(b))
		case 9: // time_nanos
			timeNanos = int64(v)
		case 10: // duration_nanos
			durNanos = int64(v)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("ccs: malformed profile: %w", err)
	}
	str := func(i uint64) string {
		if i < uint64(len(strTab)) {
			return strTab[i]
		}
		return ""
	}
	p := &Profile{TimeNanos: timeNanos, DurationNanos: durNanos}
	for _, vt := range valTypes {
		p.SampleTypes = append(p.SampleTypes, str(vt.typ)+"/"+str(vt.unit))
	}
	for _, rs := range rawSmpls {
		s := ProfSample{Values: rs.values}
		for _, loc := range rs.locs {
			for _, fid := range locFuncs[loc] {
				s.Stack = append(s.Stack, str(funcName[fid]))
			}
		}
		p.Samples = append(p.Samples, s)
	}
	if len(p.SampleTypes) == 0 {
		return nil, errors.New("ccs: profile has no sample types")
	}
	return p, nil
}

type rawValType struct{ typ, unit uint64 }

type rawSample struct {
	locs   []uint64
	values []int64
}

// walkFields iterates a protobuf message's fields. For varint fields
// fn gets the value in v; for length-delimited fields the bytes in b.
func walkFields(data []byte, fn func(tag uint64, wt int, v uint64, b []byte) error) error {
	for len(data) > 0 {
		key, n := uvarint(data)
		if n <= 0 {
			return errors.New("bad field key")
		}
		data = data[n:]
		tag, wt := key>>3, int(key&7)
		switch wt {
		case 0: // varint
			v, n := uvarint(data)
			if n <= 0 {
				return errors.New("bad varint")
			}
			data = data[n:]
			if err := fn(tag, wt, v, nil); err != nil {
				return err
			}
		case 1: // fixed64
			if len(data) < 8 {
				return errors.New("short fixed64")
			}
			if err := fn(tag, wt, 0, nil); err != nil {
				return err
			}
			data = data[8:]
		case 2: // length-delimited
			l, n := uvarint(data)
			if n <= 0 || uint64(len(data)-n) < l {
				return errors.New("bad length-delimited field")
			}
			if err := fn(tag, wt, 0, data[n:n+int(l)]); err != nil {
				return err
			}
			data = data[n+int(l):]
		case 5: // fixed32
			if len(data) < 4 {
				return errors.New("short fixed32")
			}
			if err := fn(tag, wt, 0, nil); err != nil {
				return err
			}
			data = data[4:]
		default:
			return fmt.Errorf("unsupported wire type %d", wt)
		}
	}
	return nil
}

func parseValType(b []byte) (rawValType, error) {
	var vt rawValType
	err := walkFields(b, func(tag uint64, wt int, v uint64, _ []byte) error {
		switch tag {
		case 1:
			vt.typ = v
		case 2:
			vt.unit = v
		}
		return nil
	})
	return vt, err
}

func parseSample(b []byte) (rawSample, error) {
	var s rawSample
	err := walkFields(b, func(tag uint64, wt int, v uint64, b []byte) error {
		switch tag {
		case 1: // location_id (packed or not)
			if wt == 2 {
				return eachUvarint(b, func(u uint64) { s.locs = append(s.locs, u) })
			}
			s.locs = append(s.locs, v)
		case 2: // value (packed or not)
			if wt == 2 {
				return eachUvarint(b, func(u uint64) { s.values = append(s.values, int64(u)) })
			}
			s.values = append(s.values, int64(v))
		}
		return nil
	})
	return s, err
}

func parseLocation(b []byte) (id uint64, fns []uint64, err error) {
	err = walkFields(b, func(tag uint64, wt int, v uint64, b []byte) error {
		switch tag {
		case 1:
			id = v
		case 4: // line
			return walkFields(b, func(tag uint64, wt int, v uint64, _ []byte) error {
				if tag == 1 {
					fns = append(fns, v)
				}
				return nil
			})
		}
		return nil
	})
	return id, fns, err
}

func parseFunction(b []byte) (id, name uint64, err error) {
	err = walkFields(b, func(tag uint64, wt int, v uint64, _ []byte) error {
		switch tag {
		case 1:
			id = v
		case 2:
			name = v
		}
		return nil
	})
	return id, name, err
}

func eachUvarint(b []byte, fn func(uint64)) error {
	for len(b) > 0 {
		v, n := uvarint(b)
		if n <= 0 {
			return errors.New("bad packed varint")
		}
		fn(v)
		b = b[n:]
	}
	return nil
}

// uvarint decodes one base-128 varint; pprof encodes negative int64s
// as 10-byte two's-complement varints, which this handles by wrapping.
func uvarint(b []byte) (uint64, int) {
	var v uint64
	var shift uint
	for i, c := range b {
		if i == 10 {
			return 0, -1
		}
		v |= uint64(c&0x7f) << shift
		if c&0x80 == 0 {
			return v, i + 1
		}
		shift += 7
	}
	return 0, 0
}
