// Package cio provides elementary parallel file I/O primitives over
// Converse, a first cut at the §6 future-work item: "Design of
// appropriate primitives for parallel file I/O and their
// implementations on different machines will also be the subject of
// future research."
//
// Following the MMI's host-based I/O philosophy (CmiPrintf is
// "implemented on top of the messaging layer using asynchronous
// sends"), these primitives funnel data through processor 0, which owns
// the actual stream: WriteOrdered performs a collective rank-ordered
// write (every processor contributes a block; the file sees block 0,
// block 1, ... regardless of arrival order), and ReadScatter performs
// the dual collective read (processor 0 reads fixed-size blocks and
// deals them out by rank).
package cio

import (
	"encoding/binary"
	"fmt"
	"io"

	"converse/internal/core"
)

// IO is the per-processor parallel-I/O runtime.
type IO struct {
	p *core.Proc
	h int

	// pending collective state at the root
	blocks   [][]byte
	have     int
	ack      bool
	ackTotal int
	inBlock  []byte
	inOK     bool
}

// wire format: [kind u8][rank u32][len u32][data...]
const (
	kData  = 1 // rank's block to the root
	kAck   = 2 // root's completion ack
	kBlock = 3 // scattered block to a rank
)

// extKey locates the IO state in a Proc.
const extKey = "converse.cio"

// Attach creates (or returns) the processor's parallel-I/O runtime.
func Attach(p *core.Proc) *IO {
	if c, ok := p.Ext(extKey).(*IO); ok {
		return c
	}
	c := &IO{p: p}
	c.h = p.RegisterHandler(c.onMsg)
	p.SetExt(extKey, c)
	return c
}

func (c *IO) onMsg(p *core.Proc, msg []byte) {
	pl := core.Payload(msg)
	switch pl[0] {
	case kData:
		rank := int(binary.LittleEndian.Uint32(pl[1:]))
		n := int(binary.LittleEndian.Uint32(pl[5:]))
		blk := make([]byte, n)
		copy(blk, pl[9:])
		c.blocks[rank] = blk
		c.have++
	case kAck:
		c.ackTotal = int(binary.LittleEndian.Uint32(pl[9:]))
		c.ack = true
	case kBlock:
		n := int(binary.LittleEndian.Uint32(pl[5:]))
		c.inBlock = make([]byte, n)
		copy(c.inBlock, pl[9:])
		c.inOK = true
	default:
		panic(fmt.Sprintf("cio: pe %d: unknown message kind %d", p.MyPe(), pl[0]))
	}
}

func (c *IO) send(dst int, kind byte, rank int, data []byte) {
	msg := core.NewMsg(c.h, 9+len(data))
	pl := core.Payload(msg)
	pl[0] = kind
	binary.LittleEndian.PutUint32(pl[1:], uint32(rank))
	binary.LittleEndian.PutUint32(pl[5:], uint32(len(data)))
	copy(pl[9:], data)
	c.p.SyncSendAndFree(dst, msg)
}

// WriteOrdered is a collective rank-ordered write: every processor
// passes its block (possibly empty); processor 0 — the only one whose w
// is used — writes the blocks in rank order and acknowledges everyone.
// It returns the total bytes written (on every processor) once the
// write is durable in w.
func (c *IO) WriteOrdered(w io.Writer, block []byte) (int, error) {
	if c.p.MyPe() != 0 {
		c.ack = false
		c.send(0, kData, c.p.MyPe(), block)
		c.p.ServeUntil(func() bool { return c.ack })
		return c.ackTotal, nil
	}
	c.blocks = make([][]byte, c.p.NumPes())
	c.blocks[0] = block
	c.have = 1
	c.p.ServeUntil(func() bool { return c.have == c.p.NumPes() })
	total := 0
	for _, blk := range c.blocks {
		n, err := w.Write(blk)
		total += n
		if err != nil {
			return total, fmt.Errorf("cio: ordered write: %w", err)
		}
	}
	c.ackTotal = total
	for pe := 1; pe < c.p.NumPes(); pe++ {
		ackMsg := make([]byte, 4)
		binary.LittleEndian.PutUint32(ackMsg, uint32(total))
		c.send(pe, kAck, 0, ackMsg)
	}
	c.blocks = nil
	return total, nil
}

// ReadScatter is the collective dual: processor 0 reads one
// blockSize-byte block per processor from r (short final blocks are
// allowed at EOF) and deals block i to rank i. Every processor returns
// its own block; a rank beyond EOF receives an empty block.
func (c *IO) ReadScatter(r io.Reader, blockSize int) ([]byte, error) {
	if c.p.MyPe() != 0 {
		c.inOK = false
		c.p.ServeUntil(func() bool { return c.inOK })
		blk := c.inBlock
		c.inBlock = nil
		return blk, nil
	}
	var mine []byte
	for pe := 0; pe < c.p.NumPes(); pe++ {
		buf := make([]byte, blockSize)
		n, err := io.ReadFull(r, buf)
		if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("cio: scatter read: %w", err)
		}
		if pe == 0 {
			mine = buf[:n]
			continue
		}
		c.send(pe, kBlock, pe, buf[:n])
	}
	return mine, nil
}
