package cio

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"converse/internal/core"
)

func newMachine(pes int) *core.Machine {
	return core.NewMachine(core.Config{PEs: pes, Watchdog: 15 * time.Second})
}

func TestWriteOrdered(t *testing.T) {
	const pes = 4
	cm := newMachine(pes)
	var out bytes.Buffer
	totals := make([]int, pes)
	err := cm.Run(func(p *core.Proc) {
		c := Attach(p)
		block := []byte(fmt.Sprintf("[block-%d]", p.MyPe()))
		var w *bytes.Buffer
		if p.MyPe() == 0 {
			w = &out
		}
		var werr error
		totals[p.MyPe()], werr = c.WriteOrdered(ioWriterOrNil(w), block)
		if werr != nil {
			t.Errorf("pe %d: %v", p.MyPe(), werr)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "[block-0][block-1][block-2][block-3]"
	if out.String() != want {
		t.Fatalf("file = %q, want %q", out.String(), want)
	}
	for pe, n := range totals {
		if n != len(want) {
			t.Errorf("pe %d: total = %d, want %d", pe, n, len(want))
		}
	}
}

// ioWriterOrNil keeps the nil interface clean for non-root PEs.
func ioWriterOrNil(b *bytes.Buffer) *bytes.Buffer { return b }

func TestWriteOrderedEmptyBlocks(t *testing.T) {
	const pes = 3
	cm := newMachine(pes)
	var out bytes.Buffer
	err := cm.Run(func(p *core.Proc) {
		c := Attach(p)
		var block []byte
		if p.MyPe() == 1 {
			block = []byte("only-middle")
		}
		var w *bytes.Buffer
		if p.MyPe() == 0 {
			w = &out
		}
		if _, err := c.WriteOrdered(ioWriterOrNil(w), block); err != nil {
			t.Errorf("pe %d: %v", p.MyPe(), err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != "only-middle" {
		t.Fatalf("file = %q", out.String())
	}
}

func TestWriteOrderedRepeated(t *testing.T) {
	const pes = 2
	cm := newMachine(pes)
	var out bytes.Buffer
	err := cm.Run(func(p *core.Proc) {
		c := Attach(p)
		var w *bytes.Buffer
		if p.MyPe() == 0 {
			w = &out
		}
		for round := 0; round < 3; round++ {
			block := []byte(fmt.Sprintf("r%dp%d;", round, p.MyPe()))
			if _, err := c.WriteOrdered(ioWriterOrNil(w), block); err != nil {
				t.Errorf("%v", err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "r0p0;r0p1;r1p0;r1p1;r2p0;r2p1;"
	if out.String() != want {
		t.Fatalf("file = %q, want %q", out.String(), want)
	}
}

func TestReadScatter(t *testing.T) {
	const pes = 4
	cm := newMachine(pes)
	input := "AAAABBBBCCCCDDDD"
	got := make([]string, pes)
	err := cm.Run(func(p *core.Proc) {
		c := Attach(p)
		var r *strings.Reader
		if p.MyPe() == 0 {
			r = strings.NewReader(input)
		}
		blk, err := c.ReadScatter(readerOrNil(r), 4)
		if err != nil {
			t.Errorf("pe %d: %v", p.MyPe(), err)
			return
		}
		got[p.MyPe()] = string(blk)
	})
	if err != nil {
		t.Fatal(err)
	}
	for pe, want := range []string{"AAAA", "BBBB", "CCCC", "DDDD"} {
		if got[pe] != want {
			t.Errorf("pe %d: block %q, want %q", pe, got[pe], want)
		}
	}
}

func readerOrNil(r *strings.Reader) *strings.Reader { return r }

func TestReadScatterShortFile(t *testing.T) {
	const pes = 3
	cm := newMachine(pes)
	got := make([]string, pes)
	err := cm.Run(func(p *core.Proc) {
		c := Attach(p)
		var r *strings.Reader
		if p.MyPe() == 0 {
			r = strings.NewReader("XXYY Z") // 1.5 blocks of 4
		}
		blk, err := c.ReadScatter(readerOrNil(r), 4)
		if err != nil {
			t.Errorf("pe %d: %v", p.MyPe(), err)
			return
		}
		got[p.MyPe()] = string(blk)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != "XXYY" || got[1] != " Z" || got[2] != "" {
		t.Fatalf("blocks = %q", got)
	}
}

func TestScatterThenOrderedWriteRoundTrip(t *testing.T) {
	// read-scatter a file, transform blocks in parallel, write it back
	// ordered: the composition must preserve order.
	const pes = 4
	cm := newMachine(pes)
	input := "abcdEFGHijklMNOP"
	var out bytes.Buffer
	err := cm.Run(func(p *core.Proc) {
		c := Attach(p)
		var r *strings.Reader
		var w *bytes.Buffer
		if p.MyPe() == 0 {
			r = strings.NewReader(input)
			w = &out
		}
		blk, err := c.ReadScatter(readerOrNil(r), 4)
		if err != nil {
			t.Errorf("%v", err)
			return
		}
		upper := bytes.ToUpper(blk)
		if _, err := c.WriteOrdered(ioWriterOrNil(w), upper); err != nil {
			t.Errorf("%v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != "ABCDEFGHIJKLMNOP" {
		t.Fatalf("round trip = %q", out.String())
	}
}
