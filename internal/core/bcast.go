package core

import "encoding/binary"

// Spanning-tree broadcast. The MMI "provides many variants of broadcast
// calls", and the paper's EMI discussion notes the machine layer is
// best placed to optimize group operations using its knowledge of the
// topology. The flat SyncBroadcast costs the sender O(P) sends; the
// tree variant forwards along a recursive-halving spanning tree, so the
// caller pays O(log P) and the virtual-time depth of the whole
// broadcast drops from linear to logarithmic (see the ablation
// benchmarks in bench_test.go).
//
// The forwarding handler is registered by newProc on every processor
// before any user handler, so its index is uniform machine-wide.

// treeHdr is the forwarding envelope: [root u32][relLo u32][relHi u32],
// ranks relative to the root (mod NumPes), followed by the user
// message. The receiving processor owns relative range [relLo, relHi):
// it repeatedly splits off the upper half to the processor at the
// half's start, then delivers the user message locally.
const treeHdr = 12

// SyncBroadcastTree sends msg to every processor except this one, with
// delivery fanning out along a spanning tree rooted here
// (CmiSyncBroadcast implemented "at a lower level ... for the sake of
// efficiency"). Each recipient's handler receives its own copy and owns
// it (no GrabBuffer needed). The caller may reuse msg on return.
func (p *Proc) SyncBroadcastTree(msg []byte) {
	p.checkSend(0, msg)
	n := p.NumPes()
	if n == 1 {
		return
	}
	p.forwardTree(p.MyPe(), 0, n, msg)
}

// SyncBroadcastTreeAll is SyncBroadcastTree including this processor:
// the local copy is enqueued in the scheduler's queue.
func (p *Proc) SyncBroadcastTreeAll(msg []byte) {
	p.SyncBroadcastTree(msg)
	local := make([]byte, len(msg))
	copy(local, msg)
	p.Enqueue(local)
}

// forwardTree ships the upper halves of relative range [lo, hi) onward,
// keeping the shrinking lower half local.
func (p *Proc) forwardTree(root, lo, hi int, user []byte) {
	n := p.NumPes()
	for hi-lo > 1 {
		mid := (lo + hi + 1) / 2
		dst := (root + mid) % n
		env := NewMsg(p.treeBcastHandler, treeHdr+len(user))
		pl := Payload(env)
		binary.LittleEndian.PutUint32(pl[0:], uint32(root))
		binary.LittleEndian.PutUint32(pl[4:], uint32(mid))
		binary.LittleEndian.PutUint32(pl[8:], uint32(hi))
		copy(pl[treeHdr:], user)
		p.SyncSendAndFree(dst, env)
		hi = mid
	}
}

// onTreeBcast forwards an envelope's subranges and delivers the user
// message locally.
func onTreeBcast(p *Proc, msg []byte) {
	pl := Payload(msg)
	root := int(binary.LittleEndian.Uint32(pl[0:]))
	lo := int(binary.LittleEndian.Uint32(pl[4:]))
	hi := int(binary.LittleEndian.Uint32(pl[8:]))
	user := pl[treeHdr:]
	p.forwardTree(root, lo, hi, user)
	own := make([]byte, len(user))
	copy(own, user)
	p.dispatch(own)
}
