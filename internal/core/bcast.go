package core

import "encoding/binary"

// Two-level spanning-tree broadcast. The MMI "provides many variants of
// broadcast calls", and the paper's EMI discussion notes the machine
// layer is best placed to optimize group operations using its knowledge
// of the topology. With the node-level machine interface (CmiMyNode and
// friends) the topology has two tiers — wire hops between nodes, memory
// handoffs inside one — so the broadcast tree has two levels to match:
//
//   1. Inter-node: a recursive-halving (binomial-shaped) tree over node
//      representatives (each node's first PE), so only O(NumNodes) wire
//      messages are sent and the caller pays O(log NumNodes) of them.
//   2. Intra-node: each representative fans the plain user message out
//      to its node's remaining PEs — in-memory copies, never the wire.
//
// With the default flat topology (every PE its own node) level 2 is
// empty and this degenerates to the classic per-PE recursive-halving
// tree. The forwarding handler is registered by newProc on every
// processor before any user handler, so its index is uniform
// machine-wide.

// treeHdr is the forwarding envelope: [root u32][relLo u32][relHi u32]
// — *node* ranks relative to the root PE's node (mod NumNodes) —
// followed by the user message. The receiving representative owns
// relative node range [relLo, relHi): it repeatedly splits off the
// upper half to the representative at the half's start, fans out inside
// its own node, and delivers the user message locally.
const treeHdr = 12

// SyncBroadcastTree sends msg to every processor except this one, with
// delivery fanning out along the two-level spanning tree rooted here
// (CmiSyncBroadcast implemented "at a lower level ... for the sake of
// efficiency"). Each recipient's handler receives its own copy and owns
// it (no GrabBuffer needed). The caller may reuse msg on return.
func (p *Proc) SyncBroadcastTree(msg []byte) {
	p.checkSend(0, msg)
	p.bcastTree(msg)
}

// SyncBroadcastTreeAll is SyncBroadcastTree including this processor:
// the local copy is enqueued in the scheduler's queue.
func (p *Proc) SyncBroadcastTreeAll(msg []byte) {
	p.SyncBroadcastTree(msg)
	local := make([]byte, len(msg))
	copy(local, msg)
	p.Enqueue(local)
}

// bcastTree ships msg to every PE except this one: inter-node envelopes
// first (so wire transfers start before local work), then the intra-node
// fan-out. All broadcast entry points — Broadcast, the Send sentinels,
// AsyncBroadcast's progress arm, SyncBroadcastTree — funnel here; this
// is the one fan-out implementation.
func (p *Proc) bcastTree(msg []byte) {
	if p.NumPes() == 1 {
		return
	}
	p.forwardTreeNodes(p.MyPe(), 0, p.NumNodes(), msg)
	p.fanOutNode(msg)
}

// forwardTreeNodes ships the upper halves of relative node range
// [lo, hi) onward to their representatives, keeping the shrinking lower
// half local. Ranks are node ranks relative to root's node.
func (p *Proc) forwardTreeNodes(root, lo, hi int, user []byte) {
	nn := p.NumNodes()
	rootNode := p.NodeOf(root)
	for hi-lo > 1 {
		mid := (lo + hi + 1) / 2
		dst := p.nodeFirst[(rootNode+mid)%nn]
		env := NewMsg(p.treeBcastHandler, treeHdr+len(user))
		pl := Payload(env)
		binary.LittleEndian.PutUint32(pl[0:], uint32(root))
		binary.LittleEndian.PutUint32(pl[4:], uint32(mid))
		binary.LittleEndian.PutUint32(pl[8:], uint32(hi))
		copy(pl[treeHdr:], user)
		p.SyncSendAndFree(dst, env)
		hi = mid
	}
}

// fanOutNode copies the plain user message to every other PE of this
// processor's node — the intra-node level of the broadcast tree. These
// sends never cross the wire: under the simulated machine they are
// pooled in-memory handoffs with no wire time, under the network
// substrate they go straight into the sibling PE's inbox.
func (p *Proc) fanOutNode(user []byte) {
	me := p.MyPe()
	g := p.pe.NodeOf(me)
	first := p.nodeFirst[g]
	for q, n := first, p.NodeSize(g); q < first+n; q++ {
		if q != me {
			p.send(q, user, false)
		}
	}
}

// onTreeBcast runs on a node representative: it forwards the envelope's
// sub-halves to further representatives, fans out inside its own node,
// and delivers the user message locally.
func onTreeBcast(p *Proc, msg []byte) {
	pl := Payload(msg)
	root := int(binary.LittleEndian.Uint32(pl[0:]))
	lo := int(binary.LittleEndian.Uint32(pl[4:]))
	hi := int(binary.LittleEndian.Uint32(pl[8:]))
	user := pl[treeHdr:]
	p.forwardTreeNodes(root, lo, hi, user)
	p.fanOutNode(user)
	own := make([]byte, len(user))
	copy(own, user)
	p.dispatch(own)
}
