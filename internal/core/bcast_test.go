package core

import (
	"sync/atomic"
	"testing"
	"time"

	"converse/internal/netmodel"
)

func TestTreeBroadcastAllSizesAndRoots(t *testing.T) {
	for _, pes := range []int{1, 2, 3, 4, 5, 7, 8, 9, 16} {
		for _, root := range []int{0, pes - 1, pes / 2} {
			cm := NewMachine(Config{PEs: pes, Watchdog: 15 * time.Second})
			recv := make([]int64, pes)
			h := cm.RegisterHandler(func(p *Proc, msg []byte) {
				atomic.AddInt64(&recv[p.MyPe()], 1)
				if string(Payload(msg)) != "tree-payload" {
					t.Errorf("pes=%d root=%d pe=%d payload corrupted", pes, root, p.MyPe())
				}
				p.ExitScheduler()
			})
			err := cm.Run(func(p *Proc) {
				if p.MyPe() == root {
					p.SyncBroadcastTree(MakeMsg(h, []byte("tree-payload")))
					// The root serves forwarding traffic destined to
					// others but never its own copy.
					p.Scheduler(pes) // bounded: returns at idle
					return
				}
				p.Scheduler(-1)
			})
			if err != nil {
				t.Fatalf("pes=%d root=%d: %v", pes, root, err)
			}
			for pe, n := range recv {
				want := int64(1)
				if pe == root {
					want = 0
				}
				if n != want {
					t.Errorf("pes=%d root=%d: pe %d received %d, want %d", pes, root, pe, n, want)
				}
			}
		}
	}
}

func TestTreeBroadcastAllIncludesSelf(t *testing.T) {
	const pes = 6
	cm := NewMachine(Config{PEs: pes, Watchdog: 15 * time.Second})
	recv := make([]int64, pes)
	h := cm.RegisterHandler(func(p *Proc, msg []byte) {
		atomic.AddInt64(&recv[p.MyPe()], 1)
		p.ExitScheduler()
	})
	err := cm.Run(func(p *Proc) {
		if p.MyPe() == 2 {
			p.SyncBroadcastTreeAll(MakeMsg(h, nil))
		}
		p.Scheduler(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	for pe, n := range recv {
		if n != 1 {
			t.Errorf("pe %d received %d, want 1", pe, n)
		}
	}
}

// TestTreeBroadcastLogDepth: on a modeled machine, tree broadcast
// completion time grows logarithmically with machine size while the
// flat broadcast's sender-side cost grows linearly — the ablation the
// design argues for.
func TestTreeBroadcastLogDepth(t *testing.T) {
	completion := func(pes int, tree bool) float64 {
		cm := NewMachine(Config{PEs: pes, Model: netmodel.T3D(), Watchdog: 30 * time.Second})
		var last atomic.Int64 // max arrival time in ns (fixed-point us*1000)
		h := cm.RegisterHandler(func(p *Proc, msg []byte) {
			now := int64(p.TimerUs() * 1000)
			for {
				old := last.Load()
				if now <= old || last.CompareAndSwap(old, now) {
					break
				}
			}
			p.ExitScheduler()
		})
		err := cm.Run(func(p *Proc) {
			if p.MyPe() == 0 {
				msg := MakeMsg(h, make([]byte, 1024))
				if tree {
					p.SyncBroadcastTree(msg)
					p.Scheduler(pes)
				} else {
					// The pre-tree flat fan-out: one serial send per
					// destination, all from the root (the baseline the
					// two-level tree replaced).
					for q := 1; q < pes; q++ {
						p.SyncSend(q, msg)
					}
				}
				return
			}
			p.Scheduler(-1)
		})
		if err != nil {
			t.Fatal(err)
		}
		return float64(last.Load()) / 1000
	}
	const pes = 128
	flat := completion(pes, false)
	tree := completion(pes, true)
	if tree >= flat {
		t.Fatalf("tree broadcast (%.1f us) not faster than flat (%.1f us) at %d PEs", tree, flat, pes)
	}
	// Flat completion is dominated by the sender's O(P) serial sends;
	// the tree's O(log P) depth should cut it severalfold at 128 PEs on
	// a low-latency machine.
	if flat/tree < 2 {
		t.Errorf("tree speedup only %.2fx at %d PEs (flat %.1f, tree %.1f us)", flat/tree, pes, flat, tree)
	}
}
