package core

import (
	"encoding/binary"
	"fmt"

	"converse/internal/machine"
)

// Send coalescing: the sender-side half of the communication fast path.
//
// Small messages bound for the same destination within one scheduler
// iteration are packed into a single machine-level packet, so the
// per-packet native costs (send overhead, wire latency, receive
// overhead) are paid once per pack instead of once per message; see
// netmodel.OneWayCoalesced for the cost model. Packs are flushed by the
// progress engine (Progress, hence every scheduler iteration), when a
// peer's pack fills its batch or byte window, and always before this
// processor blocks waiting for the network — a staged message can never
// be the one a blocked receive is waiting for.
//
// Ordering: messages to one destination stay in send order inside a
// pack, and a direct (uncoalesced) send to a destination first flushes
// that destination's pack, so per-pair FIFO delivery is preserved
// exactly as without coalescing. Immediate messages are never staged.
//
// Pack wire format: a normal 8-byte Converse header whose handler index
// is the built-in packHandler, followed by one length-prefixed segment
// per message: u32 little-endian total length, then the message bytes
// (header included).

// CoalesceConfig tunes sender-side message coalescing. The zero value
// disables it, preserving one-packet-per-message behaviour.
type CoalesceConfig struct {
	// Enabled turns coalescing on.
	Enabled bool
	// MaxMsgSize is the largest message (bytes, header included) that
	// is staged rather than sent directly. Default 512.
	MaxMsgSize int
	// MaxBatch flushes a peer's pack once it holds this many messages.
	// Default 32.
	MaxBatch int
	// MaxBytes bounds a pack's total size; a message that does not fit
	// flushes the pack first. Default 4096 (one pool class, so pack
	// buffers recycle perfectly).
	MaxBytes int
}

// normalized fills in defaults and enforces internal consistency.
func (c CoalesceConfig) normalized() CoalesceConfig {
	if !c.Enabled {
		return CoalesceConfig{}
	}
	if c.MaxMsgSize <= 0 {
		c.MaxMsgSize = 512
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = 4096
	}
	if c.MaxBytes < 256 {
		c.MaxBytes = 256
	}
	// Every staged message must fit in an empty pack.
	if max := c.MaxBytes - HeaderSize - 4; c.MaxMsgSize > max {
		c.MaxMsgSize = max
	}
	return c
}

// pack is the per-destination staging buffer.
type pack struct {
	buf   []byte // pool buffer of len MaxBytes; nil when nothing staged
	n     int    // bytes filled (including the pack header)
	count int    // messages staged
}

// coalescable reports whether msg takes the staging path.
func (p *Proc) coalescable(msg []byte) bool {
	return p.co.Enabled && len(msg) <= p.co.MaxMsgSize && !IsImmediate(msg)
}

// stageMsg copies msg into dst's pack, flushing first when the pack is
// out of room and after when the batch window fills.
//
//converse:hotpath
func (p *Proc) stageMsg(dst int, msg []byte) {
	if p.stage == nil {
		p.stage = make([]pack, p.NumPes())
	}
	pk := &p.stage[dst]
	need := 4 + len(msg)
	if pk.buf != nil && pk.n+need > p.co.MaxBytes {
		p.flushPeer(dst)
	}
	if pk.buf == nil {
		pk.buf = p.Alloc(p.co.MaxBytes - HeaderSize)
		SetHandler(pk.buf, p.packHandler)
		pk.n = HeaderSize
	}
	binary.LittleEndian.PutUint32(pk.buf[pk.n:], uint32(len(msg)))
	copy(pk.buf[pk.n+4:], msg)
	pk.n += need
	pk.count++
	p.staged++
	if p.met != nil {
		p.met.CoalesceStaged()
	}
	if pk.count >= p.co.MaxBatch {
		p.flushPeer(dst)
	}
}

// flushPeer transmits dst's staged pack, if any, as one packet.
//
//converse:hotpath
func (p *Proc) flushPeer(dst int) {
	if p.stage == nil {
		return
	}
	pk := &p.stage[dst]
	if pk.buf == nil {
		return
	}
	buf, n, count := pk.buf, pk.n, pk.count
	pk.buf, pk.n, pk.count = nil, 0, 0
	p.staged -= count
	mcSend(buf)
	p.pe.SendOwned(dst, buf[:n])
	if p.met != nil {
		p.met.CoalesceFlush()
	}
}

// flushAll transmits every staged pack. It is called by Progress and
// before every blocking network wait.
func (p *Proc) flushAll() {
	if p.staged == 0 {
		return
	}
	for dst := range p.stage {
		p.flushPeer(dst)
	}
}

// --- inbound side: the network ingestion queue ---

// netMsg is one inbound Converse message after ingestion: packs have
// been split back into their constituent messages.
type netMsg struct {
	data []byte
	src  int
}

// pullNet returns the next inbound network message without blocking,
// draining the machine-level inbox in whole batches.
func (p *Proc) pullNet() (netMsg, bool) {
	if m, ok := p.netq.PopFront(); ok {
		return m, true
	}
	for {
		n := p.pe.TryRecvBatch(p.rbuf[:])
		if n == 0 {
			return netMsg{}, false
		}
		for i := 0; i < n; i++ {
			p.ingest(p.rbuf[i])
			p.rbuf[i] = machine.Packet{}
		}
		if m, ok := p.netq.PopFront(); ok {
			return m, true
		}
		// A batch of empty packs is impossible (packs are only sent
		// non-empty), but loop for robustness.
	}
}

// recvNetBlock returns the next inbound message, blocking until one
// arrives. It flushes this processor's own staged packs first — the
// receiver a pack is waiting on may be waiting on us — and returns
// ok=false when the machine stops.
func (p *Proc) recvNetBlock() (netMsg, bool) {
	for {
		if m, ok := p.pullNet(); ok {
			return m, true
		}
		p.flushAll()
		pkt, ok := p.pe.Recv()
		if !ok {
			return netMsg{}, false
		}
		p.ingest(pkt)
		if m, ok := p.netq.PopFront(); ok {
			return m, true
		}
	}
}

// ingest turns one machine-level packet into queued Converse messages,
// unpacking coalesced packs. Unpacked segments are copied into pool
// buffers so the buffer-ownership protocol (grab or recycle) works
// unchanged for coalesced and direct messages alike.
func (p *Proc) ingest(pkt machine.Packet) {
	data := pkt.Data
	// Adopt before the first header read: under msgcheck a transferred
	// buffer arrives retired by the sender's mcSend, and ownership
	// passes to this processor here.
	mcAdopt(data)
	if len(data) >= HeaderSize && HandlerOf(data) == p.packHandler {
		p.unpack(data, pkt.Src)
		return
	}
	p.netq.PushBack(netMsg{data: data, src: pkt.Src})
}

// packSeg returns the message segment starting at offset off of a pack
// and the offset of the following one. It validates the length prefix
// against the pack's bounds: truncated, corrupt, or oversized input
// yields an error — never a panic, an out-of-range access, or an
// allocation (the segment aliases the pack; FuzzUnpack exercises this).
// It is a plain function rather than a closure-based iterator so the
// unpack path stays allocation-free in the steady state.
//
//converse:hotpath
func packSeg(data []byte, off int) (seg []byte, next int, err error) {
	if off+4 > len(data) {
		return nil, 0, fmt.Errorf("truncated length prefix at offset %d of %d", off, len(data))
	}
	n := int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	if n < HeaderSize || n > len(data)-off {
		return nil, 0, fmt.Errorf("segment of %d bytes at offset %d overruns pack of %d", n, off, len(data))
	}
	return data[off : off+n : off+n], off + n, nil
}

// unpack splits a pack into its messages, charging the per-message
// unpack cost, and recycles the pack buffer. A malformed pack is a
// runtime-integrity failure (the sender staged it, so it was well
// formed when it left): unpack fails the processor loudly.
func (p *Proc) unpack(data []byte, src int) {
	for off := HeaderSize; off < len(data); {
		seg, next, err := packSeg(data, off)
		if err != nil {
			panic(fmt.Sprintf("core: pe %d: bad coalesced pack from %d: %v", p.MyPe(), src, err))
		}
		buf := p.Alloc(len(seg) - HeaderSize)
		copy(buf, seg)
		off = next
		p.chargeUnpack()
		if p.met != nil {
			p.met.CoalesceUnpacked()
		}
		p.netq.PushBack(netMsg{data: buf, src: src})
	}
	p.recycle(data)
}

// chargeUnpack bills the receive-side cost of splitting one message out
// of a pack.
func (p *Proc) chargeUnpack() {
	if p.unpackOv > 0 {
		p.pe.Charge(p.unpackOv)
	}
}

// onPack is the built-in handler for coalesced packs. Packs are
// normally split during ingestion and never dispatched; this handler
// exists so a pack that reaches dispatch anyway (for example one
// grabbed and re-enqueued by diagnostic code) still delivers its
// messages.
func onPack(p *Proc, msg []byte) {
	for off := HeaderSize; off < len(msg); {
		seg, next, err := packSeg(msg, off)
		if err != nil {
			panic(fmt.Sprintf("core: pe %d: bad coalesced pack in dispatch: %v", p.MyPe(), err))
		}
		buf := p.Alloc(len(seg) - HeaderSize)
		copy(buf, seg)
		off = next
		p.dispatch(buf)
	}
}
