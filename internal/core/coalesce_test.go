package core

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"converse/internal/metrics"
)

// newCoalesceMachine builds a machine with sender-side coalescing on.
func newCoalesceMachine(pes int, co CoalesceConfig) *Machine {
	co.Enabled = true
	return NewMachine(Config{PEs: pes, Watchdog: 10 * time.Second, Coalesce: co})
}

func TestCoalesceDeliversAllAndPacks(t *testing.T) {
	const pes = 2
	const msgs = 100
	reg := metrics.New(pes)
	cm := NewMachine(Config{
		PEs: pes, Watchdog: 10 * time.Second,
		Coalesce: CoalesceConfig{Enabled: true},
		Metrics:  reg,
	})
	got := 0
	var h, hStop int
	h = cm.RegisterHandler(func(p *Proc, msg []byte) { got++ })
	hStop = cm.RegisterHandler(func(p *Proc, msg []byte) { p.ExitScheduler() })
	err := cm.Run(func(p *Proc) {
		if p.MyPe() == 0 {
			for i := 0; i < msgs; i++ {
				p.SyncSend(1, MakeMsg(h, []byte("tiny")))
			}
			p.SyncSend(1, MakeMsg(hStop, nil))
			return
		}
		p.Scheduler(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != msgs {
		t.Fatalf("delivered %d messages, want %d", got, msgs)
	}
	snap := reg.Snapshot()
	s0 := snap.PEs[0]
	if s0.CoalesceStaged < uint64(msgs) {
		t.Errorf("staged %d, want >= %d", s0.CoalesceStaged, msgs)
	}
	// 101 small messages must travel in far fewer packets than 101.
	if s0.CoalescePacks == 0 || s0.CoalescePacks > uint64(msgs)/2 {
		t.Errorf("flushed %d packs for %d messages", s0.CoalescePacks, msgs)
	}
	s1 := snap.PEs[1]
	if s1.CoalesceUnpacked < uint64(msgs) {
		t.Errorf("unpacked %d, want >= %d", s1.CoalesceUnpacked, msgs)
	}
}

// TestCoalescedPerPairFIFO is the ordering property test: several
// senders blast one receiver with randomly sized messages — some small
// enough to coalesce, some forced onto the direct path — with random
// explicit flushes mixed in. Every interleaving of staged and direct
// sends must still deliver each sender's messages in send order.
func TestCoalescedPerPairFIFO(t *testing.T) {
	const pes = 4
	const per = 300
	rng := rand.New(rand.NewSource(1996))
	sizes := make([][]int, pes)
	for src := 1; src < pes; src++ {
		sizes[src] = make([]int, per)
		for i := range sizes[src] {
			switch rng.Intn(3) {
			case 0:
				sizes[src][i] = 8 + rng.Intn(64) // well under MaxMsgSize
			case 1:
				sizes[src][i] = 8 + rng.Intn(504) // straddles the limit
			default:
				sizes[src][i] = 600 + rng.Intn(1400) // always direct
			}
		}
	}
	cm := newCoalesceMachine(pes, CoalesceConfig{})
	next := make([]uint32, pes)
	total := 0
	var h int
	h = cm.RegisterHandler(func(p *Proc, msg []byte) {
		src := binary.LittleEndian.Uint32(Payload(msg))
		seq := binary.LittleEndian.Uint32(Payload(msg)[4:])
		if seq != next[src] {
			t.Errorf("sender %d: got seq %d, want %d", src, seq, next[src])
		}
		next[src]++
		total++
		if total == (pes-1)*per {
			p.ExitScheduler()
		}
	})
	err := cm.Run(func(p *Proc) {
		if p.MyPe() == 0 {
			p.Scheduler(-1)
			return
		}
		sendRng := rand.New(rand.NewSource(int64(p.MyPe())))
		for i := 0; i < per; i++ {
			msg := p.Alloc(sizes[p.MyPe()][i])
			SetHandler(msg, h)
			binary.LittleEndian.PutUint32(Payload(msg), uint32(p.MyPe()))
			binary.LittleEndian.PutUint32(Payload(msg)[4:], uint32(i))
			if sendRng.Intn(2) == 0 {
				p.SyncSendAndFree(0, msg)
			} else {
				p.SyncSend(0, msg)
			}
			if sendRng.Intn(16) == 0 {
				p.Progress() // random flush boundary
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != (pes-1)*per {
		t.Fatalf("delivered %d, want %d", total, (pes-1)*per)
	}
}

// TestCoalesceFlushBeforeBlockingReceive would deadlock if a staged
// request could sit unflushed while its sender blocks waiting for the
// reply.
func TestCoalesceFlushBeforeBlockingReceive(t *testing.T) {
	cm := newCoalesceMachine(2, CoalesceConfig{})
	var hReq, hReply int
	hReq = cm.RegisterHandler(func(p *Proc, msg []byte) {
		p.SyncSend(0, MakeMsg(hReply, []byte("pong")))
		p.ExitScheduler()
	})
	hReply = cm.RegisterHandler(func(p *Proc, msg []byte) {})
	err := cm.Run(func(p *Proc) {
		if p.MyPe() == 0 {
			p.SyncSend(1, MakeMsg(hReq, []byte("ping"))) // staged, not sent
			reply := p.GetSpecificMsg(hReply)            // must flush, then block
			if string(Payload(reply)) != "pong" {
				t.Errorf("reply payload = %q", Payload(reply))
			}
			return
		}
		p.Scheduler(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCoalesceImmediateNotStaged(t *testing.T) {
	// An immediate message must bypass staging: with nothing else
	// flushing, a staged immediate would never preempt anyone.
	cm := newCoalesceMachine(2, CoalesceConfig{})
	ran := false
	var hImm, hStop int
	hImm = cm.RegisterHandler(func(p *Proc, msg []byte) {
		ran = true
		p.SyncSend(0, MakeMsg(hStop, nil)) // unblock the sender
		p.SyncSend(1, MakeMsg(hStop, nil)) // and ourselves
	})
	hStop = cm.RegisterHandler(func(p *Proc, msg []byte) {})
	err := cm.Run(func(p *Proc) {
		if p.MyPe() == 0 {
			msg := MakeMsg(hImm, []byte("now"))
			SetImmediate(msg)
			p.SyncSend(1, msg)
			p.GetSpecificMsg(hStop)
			return
		}
		// PE 1 waits for a handler that only the immediate message's
		// handler will feed; the immediate is dispatched mid-wait.
		p.GetSpecificMsg(hStop)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("immediate handler did not run while receiver was blocked")
	}
}

func TestSendUnifiedAPI(t *testing.T) {
	const pes = 3
	cm := newTestMachine(pes)
	counts := make([]int, pes)
	var h, hStop int
	h = cm.RegisterHandler(func(p *Proc, msg []byte) {
		counts[p.MyPe()]++
	})
	hStop = cm.RegisterHandler(func(p *Proc, msg []byte) { p.ExitScheduler() })
	err := cm.Run(func(p *Proc) {
		if p.MyPe() == 0 {
			p.Send(1, MakeMsg(h, []byte("a")))               // plain
			p.Send(1, MakeMsg(h, []byte("b")), Transfer)     // ownership transfer
			p.Send(BroadcastOthers, MakeMsg(h, []byte("c"))) // to 1 and 2
			p.Send(BroadcastAll, MakeMsg(h, []byte("d")), Transfer)
			p.Scheduler(1) // deliver own broadcast copy
			for dst := 1; dst < pes; dst++ {
				p.Send(dst, MakeMsg(hStop, nil))
			}
			return
		}
		p.Scheduler(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 4, 2}
	for pe, n := range counts {
		if n != want[pe] {
			t.Errorf("pe %d received %d messages, want %d", pe, n, want[pe])
		}
	}
}

func TestSendInvalidDestinationPanics(t *testing.T) {
	cm := newTestMachine(1)
	h := cm.RegisterHandler(func(p *Proc, msg []byte) {})
	err := cm.Run(func(p *Proc) {
		p.Send(-7, MakeMsg(h, nil))
	})
	if err == nil || !strings.Contains(err.Error(), "invalid destination") {
		t.Fatalf("err = %v, want invalid-destination panic", err)
	}
}

func TestCheckSendRejectsShortMessage(t *testing.T) {
	cm := newTestMachine(1)
	err := cm.Run(func(p *Proc) {
		p.SyncSend(0, make([]byte, HeaderSize-1))
	})
	if err == nil || !strings.Contains(err.Error(), "smaller than") {
		t.Fatalf("err = %v, want short-message panic", err)
	}
}

// TestAsyncSendLifecycle exercises CmiAsyncSend under the pooled fast
// path: the caller's buffer must stay intact (and reusable only after
// IsSent), payloads must arrive unscathed despite heavy pool churn on
// both sides, and Release must work on completed handles.
func TestAsyncSendLifecycle(t *testing.T) {
	const rounds = 50
	cm := newCoalesceMachine(2, CoalesceConfig{})
	got := 0
	var h, hStop int
	h = cm.RegisterHandler(func(p *Proc, msg []byte) {
		want := fmt.Sprintf("async-%03d", got)
		if string(Payload(msg)) != want {
			t.Errorf("payload = %q, want %q", Payload(msg), want)
		}
		got++
	})
	hStop = cm.RegisterHandler(func(p *Proc, msg []byte) { p.ExitScheduler() })
	err := cm.Run(func(p *Proc) {
		if p.MyPe() == 0 {
			for i := 0; i < rounds; i++ {
				msg := MakeMsg(h, []byte(fmt.Sprintf("async-%03d", i)))
				hdl := p.AsyncSend(1, msg)
				// Churn the pool while the send is pending; the async
				// buffer must be untouched by it.
				for j := 0; j < 8; j++ {
					p.recycle(p.Alloc(100))
				}
				for !p.IsSent(hdl) {
				}
				p.Release(hdl)
				// The buffer is caller-owned again: scribbling on it
				// now must not corrupt what PE 1 receives.
				copy(Payload(msg), "XXXXXXXXX")
			}
			p.SyncSend(1, MakeMsg(hStop, nil))
			return
		}
		p.Scheduler(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != rounds {
		t.Fatalf("delivered %d async messages, want %d", got, rounds)
	}
}

func TestAsyncBroadcastLifecycle(t *testing.T) {
	const pes = 4
	cm := newTestMachine(pes)
	counts := make([]int, pes)
	var h int
	h = cm.RegisterHandler(func(p *Proc, msg []byte) {
		if string(Payload(msg)) != "fanout" {
			t.Errorf("pe %d payload = %q", p.MyPe(), Payload(msg))
		}
		counts[p.MyPe()]++
		// Exit on receipt: the broadcast travels the two-level tree, so a
		// PE must not gate its exit on a p2p message that may outrun the
		// tree relay. Relaying happens before local dispatch, so exiting
		// here never strands a subtree.
		p.ExitScheduler()
	})
	err := cm.Run(func(p *Proc) {
		if p.MyPe() == 0 {
			msg := MakeMsg(h, []byte("fanout"))
			hdl := p.AsyncBroadcast(msg)
			for !p.IsSent(hdl) {
			}
			p.Release(hdl)
			// Serve relay traffic until the machine drains (bounded
			// steps: Scheduler returns at idle).
			p.Scheduler(pes)
			return
		}
		p.Scheduler(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	for pe := 1; pe < pes; pe++ {
		if counts[pe] != 1 {
			t.Errorf("pe %d received %d broadcast copies, want 1", pe, counts[pe])
		}
	}
}

// TestVectorSendOwnedBuffer checks the gather-send's runtime-owned
// buffer: it is recycled into the pool after transmission and the
// gathered payload arrives intact.
func TestVectorSendOwnedBuffer(t *testing.T) {
	cm := newCoalesceMachine(2, CoalesceConfig{})
	ok := false
	var h, hStop int
	h = cm.RegisterHandler(func(p *Proc, msg []byte) {
		ok = string(Payload(msg)) == "one two three"
	})
	hStop = cm.RegisterHandler(func(p *Proc, msg []byte) { p.ExitScheduler() })
	err := cm.Run(func(p *Proc) {
		if p.MyPe() == 0 {
			hdl := p.VectorSend(1, h, []byte("one "), []byte("two "), []byte("three"))
			for !p.IsSent(hdl) {
			}
			p.Release(hdl)
			p.SyncSend(1, MakeMsg(hStop, nil))
			return
		}
		p.Scheduler(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("vector payload mangled")
	}
}

func TestPackSegRejectsMalformed(t *testing.T) {
	// A well-formed one-segment pack, then mutilations of it.
	msg := MakeMsg(3, []byte("payload"))
	pack := make([]byte, HeaderSize, HeaderSize+4+len(msg))
	pack = binary.LittleEndian.AppendUint32(pack, uint32(len(msg)))
	pack = append(pack, msg...)

	if seg, next, err := packSeg(pack, HeaderSize); err != nil || next != len(pack) || len(seg) != len(msg) {
		t.Fatalf("valid pack: seg=%d next=%d err=%v", len(seg), next, err)
	}
	cases := map[string][]byte{
		"truncated prefix":  pack[:HeaderSize+2],
		"truncated payload": pack[:len(pack)-3],
		"oversized length": func() []byte {
			b := append([]byte(nil), pack...)
			binary.LittleEndian.PutUint32(b[HeaderSize:], 1<<30)
			return b
		}(),
		"sub-header length": func() []byte {
			b := append([]byte(nil), pack...)
			binary.LittleEndian.PutUint32(b[HeaderSize:], uint32(HeaderSize-1))
			return b
		}(),
	}
	for name, data := range cases {
		if _, _, err := packSeg(data, HeaderSize); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

// FuzzUnpack drives the pack-segment walk with arbitrary bytes:
// truncated, corrupt, or oversized packs must produce an error — never
// a panic, an out-of-bounds segment, or a stuck loop.
func FuzzUnpack(f *testing.F) {
	mk := func(msgs ...[]byte) []byte {
		pack := make([]byte, HeaderSize)
		for _, m := range msgs {
			pack = binary.LittleEndian.AppendUint32(pack, uint32(len(m)))
			pack = append(pack, m...)
		}
		return pack
	}
	f.Add(mk(MakeMsg(1, []byte("a"))))
	f.Add(mk(MakeMsg(1, []byte("a")), MakeMsg(2, []byte("bc")), MakeMsg(3, nil)))
	f.Add([]byte{})
	f.Add(make([]byte, HeaderSize+4))
	f.Fuzz(func(t *testing.T, data []byte) {
		for off := HeaderSize; off < len(data); {
			seg, next, err := packSeg(data, off)
			if err != nil {
				return // the only acceptable outcome for malformed input
			}
			if next <= off || next > len(data) {
				t.Fatalf("walk escaped bounds: off=%d next=%d len=%d", off, next, len(data))
			}
			if len(seg) < HeaderSize {
				t.Fatalf("segment of %d bytes below the header size", len(seg))
			}
			off = next
		}
	})
}
