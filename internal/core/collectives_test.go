package core

import (
	"encoding/binary"
	"sync/atomic"
	"testing"
	"time"
)

// The two-level collectives (bcast.go, reduce.go) over explicit node
// maps: correctness must not depend on the machine's nodes×PEs shape,
// only the routing does.

var nodeMaps = [][]int{
	nil,             // flat: one node per PE
	{1, 3, 4},       // asymmetric, the ISSUE's example
	{4, 4},          // two symmetric SMP nodes
	{8},             // everything on one node (pure intra-node fan-out)
	{2, 1, 2, 1, 2}, // alternating
}

func pesOf(sizes []int) int {
	if sizes == nil {
		return 8
	}
	n := 0
	for _, s := range sizes {
		n += s
	}
	return n
}

func TestBroadcastAllNodeMapsAndRoots(t *testing.T) {
	for _, sizes := range nodeMaps {
		pes := pesOf(sizes)
		for _, root := range []int{0, pes / 2, pes - 1} {
			cm := NewMachine(Config{PEs: pes, NodeSizes: sizes, Watchdog: 15 * time.Second})
			recv := make([]int64, pes)
			h := cm.RegisterHandler(func(p *Proc, msg []byte) {
				atomic.AddInt64(&recv[p.MyPe()], 1)
				if string(Payload(msg)) != "node-bcast" {
					t.Errorf("sizes=%v root=%d pe=%d payload corrupted", sizes, root, p.MyPe())
				}
				p.ExitScheduler()
			})
			err := cm.Run(func(p *Proc) {
				if p.MyPe() == root {
					p.Broadcast(MakeMsg(h, []byte("node-bcast")))
				}
				p.Scheduler(-1)
			})
			if err != nil {
				t.Fatalf("sizes=%v root=%d: %v", sizes, root, err)
			}
			for pe, n := range recv {
				if n != 1 {
					t.Errorf("sizes=%v root=%d: pe %d received %d copies, want 1", sizes, root, pe, n)
				}
			}
		}
	}
}

func TestBroadcastExcludeSelfOnNodeMap(t *testing.T) {
	const root = 5 // node 2 of {1,3,4}, not a representative
	sizes := []int{1, 3, 4}
	pes := pesOf(sizes)
	cm := NewMachine(Config{PEs: pes, NodeSizes: sizes, Watchdog: 15 * time.Second})
	recv := make([]int64, pes)
	h := cm.RegisterHandler(func(p *Proc, msg []byte) {
		atomic.AddInt64(&recv[p.MyPe()], 1)
		p.ExitScheduler()
	})
	err := cm.Run(func(p *Proc) {
		if p.MyPe() == root {
			p.Broadcast(MakeMsg(h, nil), ExcludeSelf)
			p.Scheduler(pes) // serve relay traffic; returns at idle
			return
		}
		p.Scheduler(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	for pe, n := range recv {
		want := int64(1)
		if pe == root {
			want = 0
		}
		if n != want {
			t.Errorf("pe %d received %d copies, want %d", pe, n, want)
		}
	}
}

// TestReduceSumOverNodeMaps: every PE contributes its rank+1; the
// merged sum must arrive exactly once, on PE 0, whatever the node map.
func TestReduceSumOverNodeMaps(t *testing.T) {
	for _, sizes := range nodeMaps {
		pes := pesOf(sizes)
		cm := NewMachine(Config{PEs: pes, NodeSizes: sizes, Watchdog: 15 * time.Second})
		sum := cm.RegisterCombiner(func(a, b []byte) []byte {
			binary.LittleEndian.PutUint64(a, binary.LittleEndian.Uint64(a)+binary.LittleEndian.Uint64(b))
			return a
		})
		var got atomic.Int64
		var hDone, hStop int
		hDone = cm.RegisterHandler(func(p *Proc, msg []byte) {
			got.Store(int64(binary.LittleEndian.Uint64(Payload(msg))))
			p.Broadcast(MakeMsg(hStop, nil))
		})
		hStop = cm.RegisterHandler(func(p *Proc, msg []byte) { p.ExitScheduler() })
		err := cm.Run(func(p *Proc) {
			msg := NewMsg(hDone, 8)
			binary.LittleEndian.PutUint64(Payload(msg), uint64(p.MyPe()+1))
			p.Reduce(sum, msg, Transfer)
			p.Scheduler(-1)
		})
		if err != nil {
			t.Fatalf("sizes=%v: %v", sizes, err)
		}
		want := int64(pes * (pes + 1) / 2)
		if got.Load() != want {
			t.Errorf("sizes=%v: reduced sum = %d, want %d", sizes, got.Load(), want)
		}
	}
}

// TestReduceSequencesMatchByCallOrder: back-to-back reductions with
// different data must not cross-merge even though their envelopes are
// in flight concurrently.
func TestReduceSequencesMatchByCallOrder(t *testing.T) {
	sizes := []int{1, 3, 4}
	pes := pesOf(sizes)
	const rounds = 5
	cm := NewMachine(Config{PEs: pes, NodeSizes: sizes, Watchdog: 15 * time.Second})
	max := cm.RegisterCombiner(func(a, b []byte) []byte {
		if binary.LittleEndian.Uint64(b) > binary.LittleEndian.Uint64(a) {
			return b
		}
		return a
	})
	var results []uint64
	var hDone, hStop int
	hDone = cm.RegisterHandler(func(p *Proc, msg []byte) {
		results = append(results, binary.LittleEndian.Uint64(Payload(msg)))
		if len(results) == rounds {
			p.Broadcast(MakeMsg(hStop, nil))
		}
	})
	hStop = cm.RegisterHandler(func(p *Proc, msg []byte) { p.ExitScheduler() })
	err := cm.Run(func(p *Proc) {
		for r := 0; r < rounds; r++ {
			msg := NewMsg(hDone, 8)
			// Max over PEs of 1000*(r+1)+pe: distinct per round.
			binary.LittleEndian.PutUint64(Payload(msg), uint64(1000*(r+1)+p.MyPe()))
			p.Reduce(max, msg, Transfer)
		}
		p.Scheduler(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != rounds {
		t.Fatalf("PE 0 saw %d reduction results, want %d", len(results), rounds)
	}
	for r, got := range results {
		if want := uint64(1000*(r+1) + pes - 1); got != want {
			t.Errorf("round %d: max = %d, want %d", r, got, want)
		}
	}
}

// TestBarrierSeparatesRounds: no processor may leave barrier k before
// every processor has entered it, on any node map.
func TestBarrierSeparatesRounds(t *testing.T) {
	for _, sizes := range [][]int{nil, {1, 3, 4}, {4, 4}} {
		pes := pesOf(sizes)
		const rounds = 3
		cm := NewMachine(Config{PEs: pes, NodeSizes: sizes, Watchdog: 15 * time.Second})
		var entered [rounds]atomic.Int64
		err := cm.Run(func(p *Proc) {
			for r := 0; r < rounds; r++ {
				entered[r].Add(1)
				p.Barrier()
				if got := entered[r].Load(); got != int64(pes) {
					t.Errorf("sizes=%v: pe %d left barrier %d with %d/%d entered", sizes, p.MyPe(), r, got, pes)
				}
			}
		})
		if err != nil {
			t.Fatalf("sizes=%v: %v", sizes, err)
		}
	}
}

// TestSendSentinelsUseTree: the BroadcastOthers/BroadcastAll sentinels
// must deliver over the same tree implementation (one copy everywhere)
// on an explicit node map.
func TestSendSentinelsUseTree(t *testing.T) {
	sizes := []int{2, 3, 3}
	pes := pesOf(sizes)
	cm := NewMachine(Config{PEs: pes, NodeSizes: sizes, Watchdog: 15 * time.Second})
	recv := make([]int64, pes)
	h := cm.RegisterHandler(func(p *Proc, msg []byte) {
		atomic.AddInt64(&recv[p.MyPe()], 1)
		p.ExitScheduler()
	})
	err := cm.Run(func(p *Proc) {
		if p.MyPe() == 3 {
			p.Send(BroadcastAll, MakeMsg(h, nil), Transfer)
		}
		p.Scheduler(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	for pe, n := range recv {
		if n != 1 {
			t.Errorf("pe %d received %d copies, want 1", pe, n)
		}
	}
}
