package core

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"converse/internal/faultnet"
	"converse/internal/machine"
	"converse/internal/metrics"
)

// Transport names for Config.Transport.
const (
	// TransportAuto (the empty string) selects the TCP network layer
	// when the process runs inside a converserun job (CONVERSE_NET_*
	// environment set by the launcher) and the in-process simulated
	// multicomputer otherwise. Programs need no source changes to run
	// under either substrate.
	TransportAuto = ""
	// TransportSim forces the in-process simulated multicomputer even
	// inside a converserun job (used by benchmarks to measure the
	// in-process baseline next to the wire).
	TransportSim = "sim"
	// TransportTCP requires the TCP network layer; NewMachine panics if
	// the process is not part of a converserun job.
	TransportTCP = "tcp"
)

// Failure policies for Config.FailurePolicy (network substrate). The
// strings equal internal/mnet's FailFast/FailRetry — asserted by a core
// test — because netmachine.go is deliberately the only core file that
// may import mnet.
const (
	// FailFast (the default) kills the whole job on the first link
	// fault — the paper's fail-stop posture.
	FailFast = "failfast"
	// FailRetry turns on the machine layer's reliability sub-layer:
	// checksummed, sequenced, acked frames; retransmission; and
	// session-resuming reconnection inside Config.RecoveryWindow. A peer
	// whose link stays down past the window is declared dead through the
	// peer-down notification path (Proc.NotifyPeerDown) instead of
	// killing the job.
	FailRetry = "retry"
)

// Config parameterizes a Converse machine.
type Config struct {
	// PEs is the number of processors; must be >= 1.
	PEs int
	// NodeSizes, when non-nil, groups the PEs into nodes — NodeSizes[g]
	// PEs on node g, numbered contiguously, summing to PEs — so the
	// simulated substrate presents any nodes×PEs topology for in-process
	// testing (see machine.Config.NodeSizes). Nil means the flat map:
	// one node per PE. Ignored by the TCP substrate, whose node map
	// comes from the launcher (-nodes/-ppn).
	NodeSizes []int
	// Transport selects the machine substrate: TransportAuto (default),
	// TransportSim, or TransportTCP. Under TCP each processor is an OS
	// process connected over the internal/mnet machine layer.
	Transport string
	// Model prices communication in virtual microseconds (see
	// internal/netmodel). If it also implements ConverseCosts, the
	// Converse software overheads are charged too. Nil means all
	// communication is free (functional mode).
	Model machine.CostModel
	// Watchdog, if nonzero, aborts Run after the given wall-clock time,
	// turning deadlocks in tests into errors.
	Watchdog time.Duration
	// Tracer, if non-nil, is called once per PE to build its event
	// tracer.
	Tracer func(pe int) Tracer
	// Metrics, if non-nil, attaches the per-PE observability registry
	// (internal/metrics): scheduler idle/busy time, queue depth
	// high-water marks, per-handler dispatch latency, per-peer message
	// volume. It must have been built for the same number of PEs. When
	// nil, the instrumented hot paths cost one nil check.
	Metrics *metrics.Registry
	// Coalesce tunes sender-side small-message coalescing (see
	// CoalesceConfig). The zero value leaves coalescing off.
	Coalesce CoalesceConfig
	// FailurePolicy selects the network substrate's reaction to link
	// faults: FailFast (the default) or FailRetry. It overrides the
	// launcher-provided policy (converserun -failure) when set, and is
	// ignored by the simulated substrate, which has no wire to fail.
	FailurePolicy string
	// RecoveryWindow bounds how long a lost link may stay down under
	// FailRetry before its peer is declared dead. Zero means the machine
	// layer's default (a small multiple of the heartbeat).
	RecoveryWindow time.Duration
	// Job, when non-empty, tags this machine as belonging to one named
	// job of the elastic cluster service (internal/service): the tag
	// flows into every processor (Proc.Job) and into monitor snapshots
	// (ccs.Snapshot.Job) so introspection tooling can attribute load
	// per job on a host running many machines. Empty for classic
	// one-machine batch runs.
	Job string
	// Faults is a fault-injection plan in the internal/faultnet grammar
	// (e.g. "seed=7,drop=1%,killlink=1-0@120"); empty means no
	// injection. Under the TCP substrate faults hit outbound data frames
	// *below* the reliability layer, so FailRetry must repair them;
	// under the simulated substrate packets are faulted directly — there
	// is no reliability layer, so the program itself feels the loss.
	Faults string
}

// Machine is a Converse machine: one Converse runtime instance (Proc)
// per processor on some machine substrate. On the simulated
// multicomputer all processors live in this process; on a network
// substrate this process holds exactly one of them and the rest are
// peer OS processes. It is the Go counterpart of the
// ConverseInit/ConverseExit bracket — New builds and initializes all
// components, Run coordinates startup and termination.
type Machine struct {
	m     *machine.Machine // simulated substrate; nil under net
	net   NetSubstrate     // network substrate; nil under sim
	npes  int
	wdog  time.Duration
	procs []*Proc           // all PEs under sim; this process's PEs under net
	met   *metrics.Registry // Config.Metrics, for the monitor endpoint
	job   string            // Config.Job, for monitor snapshots
}

// NewMachine creates a Converse machine on the substrate selected by
// Config.Transport (see TransportAuto).
func NewMachine(cfg Config) *Machine {
	if cfg.Metrics != nil && cfg.Metrics.NumPEs() != cfg.PEs {
		panic(fmt.Sprintf("core: metrics registry built for %d PEs, machine has %d",
			cfg.Metrics.NumPEs(), cfg.PEs))
	}
	switch cfg.Transport {
	case TransportAuto:
		if netInJob() {
			return newNetMachine(cfg)
		}
	case TransportSim:
	case TransportTCP:
		if !netInJob() {
			panic("core: Transport \"tcp\" outside a converserun job (no CONVERSE_NET_* environment); start the program with cmd/converserun")
		}
		return newNetMachine(cfg)
	default:
		panic(fmt.Sprintf("core: unknown Transport %q (want %q, %q or %q)",
			cfg.Transport, TransportAuto, TransportSim, TransportTCP))
	}
	plan, err := faultnet.Parse(cfg.Faults)
	if err != nil {
		panic(fmt.Sprintf("core: %v", err))
	}
	m := machine.New(machine.Config{PEs: cfg.PEs, NodeSizes: cfg.NodeSizes, Model: cfg.Model, Watchdog: cfg.Watchdog})
	cm := &Machine{m: m, npes: cfg.PEs, met: cfg.Metrics, job: cfg.Job}
	cm.procs = make([]*Proc, cfg.PEs)
	for i := range cm.procs {
		var sub Substrate = m.PE(i)
		if in := faultnet.New(plan, i); in != nil {
			sub = faultnet.WrapSim(m.PE(i), in)
		}
		cm.procs[i] = newProc(sub, cfg.Coalesce)
		cm.procs[i].job = cfg.Job
		if cfg.Tracer != nil {
			cm.procs[i].SetTracer(cfg.Tracer(i))
		}
		if cfg.Metrics != nil {
			cm.procs[i].SetMetrics(cfg.Metrics.PE(i))
		}
	}
	return cm
}

// multiPESubstrate is the optional capability of a network substrate
// whose process hosts more than one of the machine's processors
// (SMP-style node: mnet with -ppn > 1). LocalPE's result must satisfy
// Substrate; the return type is any because the machine layers cannot
// import core to name the interface.
type multiPESubstrate interface {
	LocalPEs() int
	LocalPE(i int) any
}

// NewMachineOn creates a Converse machine on an external substrate: the
// local node is sub (one OS process of a multi-process machine, hosting
// one or more PEs), and Run coordinates with the peers through the
// substrate's lifecycle. Most callers use NewMachine with
// Config.Transport instead; this constructor is the seam tests and
// alternative launchers plug into.
func NewMachineOn(sub NetSubstrate, cfg Config) *Machine {
	if cfg.Metrics != nil && cfg.Metrics.NumPEs() != cfg.PEs {
		panic(fmt.Sprintf("core: metrics registry built for %d PEs, machine has %d",
			cfg.Metrics.NumPEs(), cfg.PEs))
	}
	cm := &Machine{net: sub, npes: cfg.PEs, wdog: cfg.Watchdog, met: cfg.Metrics, job: cfg.Job}
	// A node substrate exposes one Substrate per local PE; build one
	// runtime instance on each. Plain single-PE substrates (tests,
	// surplus ranks with no local PEs) get one instance on sub itself.
	if mp, ok := sub.(multiPESubstrate); ok && mp.LocalPEs() > 0 {
		for i := 0; i < mp.LocalPEs(); i++ {
			s, ok := mp.LocalPE(i).(Substrate)
			if !ok {
				panic(fmt.Sprintf("core: substrate's LocalPE(%d) does not satisfy core.Substrate", i))
			}
			cm.procs = append(cm.procs, newProc(s, cfg.Coalesce))
		}
	} else {
		cm.procs = []*Proc{newProc(sub, cfg.Coalesce)}
	}
	for _, p := range cm.procs {
		p.job = cfg.Job
	}
	// A substrate that can declare peers dead (mnet under FailRetry)
	// reports through the generalized-message path: the notification is
	// posted to each local PE's built-in peer-down handler, so user
	// callbacks (Proc.NotifyPeerDown) always run in scheduler context.
	if n, ok := sub.(peerDownNotifier); ok {
		n.SetPeerDownHandler(func(pe int, reason string) {
			for _, p := range cm.procs {
				p.pe.SendOwned(p.pe.ID(), makePeerDownMsg(p.peerDownHandler, pe, reason))
			}
		})
	}
	// Tracer and metrics factories are indexed by PE; surplus nodes
	// (rank >= node count) hold no processor of this machine, so they
	// get neither.
	if sub.Active() {
		for _, p := range cm.procs {
			if local := p.pe.ID(); local < cfg.PEs {
				if cfg.Tracer != nil {
					p.SetTracer(cfg.Tracer(local))
				}
				if cfg.Metrics != nil {
					p.SetMetrics(cfg.Metrics.PE(local))
				}
			}
		}
	}
	return cm
}

// NumPes reports the machine size.
func (cm *Machine) NumPes() int { return cm.npes }

// Proc returns the Converse runtime instance of processor pe. It is
// intended for pre-Run setup and post-Run inspection; during Run each
// processor must use only its own Proc. On a network substrate only the
// processors hosted by this process are addressable.
func (cm *Machine) Proc(pe int) *Proc {
	if cm.net != nil {
		for _, p := range cm.procs {
			if p.pe.ID() == pe {
				return p
			}
		}
		panic(fmt.Sprintf("core: Proc(%d) on network node %d: only this process's local processors are addressable", pe, cm.net.Node()))
	}
	return cm.procs[pe]
}

// LocalProc returns this process's Converse runtime instance: processor
// 0 under the simulated substrate (a convention for single-process
// inspection), the one local processor under a network substrate.
func (cm *Machine) LocalProc() *Proc { return cm.procs[0] }

// Machine exposes the underlying simulated multicomputer.
func (cm *Machine) Machine() *machine.Machine { return cm.m }

// RegisterHandler registers h on every processor (they all receive the
// same index) and returns that index. It must be called before Run; it
// matches the common Converse idiom of registering all handlers during
// startup so indices agree across processors.
func (cm *Machine) RegisterHandler(h Handler) int {
	idx := -1
	for _, p := range cm.procs {
		i := p.RegisterHandler(h)
		if idx == -1 {
			idx = i
		} else if i != idx {
			panic("core: handler index mismatch across PEs; register machine-wide handlers before per-PE ones")
		}
	}
	return idx
}

// RegisterCombiner registers a reduction combiner on every processor
// (they all receive the same index) and returns that index. Like
// RegisterHandler it must be called before Run.
func (cm *Machine) RegisterCombiner(c Combiner) int {
	idx := -1
	for _, p := range cm.procs {
		i := p.RegisterCombiner(c)
		if idx == -1 {
			idx = i
		} else if i != idx {
			panic("core: combiner index mismatch across PEs; register machine-wide combiners before per-PE ones")
		}
	}
	return idx
}

// SetConsole redirects the machine's atomic standard output/error. On a
// network substrate console output is relayed to the launcher and this
// call is a no-op.
func (cm *Machine) SetConsole(out, errw io.Writer) {
	if cm.m != nil {
		cm.m.SetConsole(out, errw)
	}
}

// SetInput redirects the machine's standard input (simulated substrate
// only).
func (cm *Machine) SetInput(r io.Reader) {
	if cm.m != nil {
		cm.m.SetInput(r)
	}
}

// Run starts the program: one driver per processor executing start with
// that processor's Proc, returning when all have finished (or with an
// error on panic or watchdog expiry). No Converse call may be made after
// Run returns, except for inspection of Procs.
//
// On a network substrate, "all" spans OS processes: Run executes start
// on the local processor (never on a surplus node), then holds the node
// in the job's termination barrier until every peer's driver has also
// returned, so no process tears down links a peer still needs.
func (cm *Machine) Run(start func(p *Proc)) error {
	if cm.net != nil {
		return cm.runNet(start)
	}
	return cm.m.Run(func(pe *machine.PE) {
		p := cm.procs[pe.ID()]
		start(p)
		// A driver that returns right after sending must not strand
		// staged coalescing packs.
		p.flushAll()
	})
}

// runNet is Run on a network substrate: go-barrier, one local driver
// per hosted PE with panic recovery, watchdog, asynchronous failure,
// termination barrier.
func (cm *Machine) runNet(start func(p *Proc)) error {
	sub := cm.net
	if err := sub.Start(); err != nil {
		sub.Fail(err)
		return err
	}
	done := make(chan error, len(cm.procs))
	drivers := 0
	if sub.Active() {
		// One driver goroutine per local PE: an SMP-style node hosts
		// its PEs as concurrent schedulers sharing the process (and its
		// zero-copy in-memory message path).
		for _, p := range cm.procs {
			drivers++
			go func(p *Proc) {
				defer func() {
					if r := recover(); r != nil {
						buf := make([]byte, 16<<10)
						n := runtime.Stack(buf, false)
						done <- fmt.Errorf("core: pe %d panicked: %v\n%s", p.pe.ID(), r, buf[:n])
					}
				}()
				start(p)
				p.flushAll()
				done <- nil
			}(p)
		}
	}

	var timeout <-chan time.Time
	if cm.wdog > 0 {
		t := time.NewTimer(cm.wdog)
		defer t.Stop()
		timeout = t.C
	}

	var runErr error
	for drivers > 0 && runErr == nil {
		select {
		case err := <-done:
			drivers--
			runErr = err
		case err := <-sub.Failure():
			// A peer died or the launcher vanished. Unblock the local
			// drivers and fail fast; do not wait for them (they may be
			// wedged in user code, and the job is already lost).
			sub.Stop()
			runErr = err
		case <-timeout:
			sub.Stop()
			runErr = fmt.Errorf("core: watchdog expired after %v (likely distributed deadlock: %s)",
				cm.wdog, sub.DescribeBlocked())
		}
	}
	if runErr != nil {
		sub.Fail(runErr)
		return runErr
	}
	return sub.Finish()
}

// Stop aborts the machine, unblocking all processors.
func (cm *Machine) Stop() {
	if cm.net != nil {
		cm.net.Stop()
		return
	}
	cm.m.Stop()
}
