package core

import (
	"fmt"
	"io"
	"time"

	"converse/internal/machine"
	"converse/internal/metrics"
)

// Config parameterizes a Converse machine.
type Config struct {
	// PEs is the number of processors; must be >= 1.
	PEs int
	// Model prices communication in virtual microseconds (see
	// internal/netmodel). If it also implements ConverseCosts, the
	// Converse software overheads are charged too. Nil means all
	// communication is free (functional mode).
	Model machine.CostModel
	// Watchdog, if nonzero, aborts Run after the given wall-clock time,
	// turning deadlocks in tests into errors.
	Watchdog time.Duration
	// Tracer, if non-nil, is called once per PE to build its event
	// tracer.
	Tracer func(pe int) Tracer
	// Metrics, if non-nil, attaches the per-PE observability registry
	// (internal/metrics): scheduler idle/busy time, queue depth
	// high-water marks, per-handler dispatch latency, per-peer message
	// volume. It must have been built for the same number of PEs. When
	// nil, the instrumented hot paths cost one nil check.
	Metrics *metrics.Registry
	// Coalesce tunes sender-side small-message coalescing (see
	// CoalesceConfig). The zero value leaves coalescing off.
	Coalesce CoalesceConfig
}

// Machine is a Converse machine: a simulated multicomputer with one
// Converse runtime instance (Proc) per processor. It is the Go
// counterpart of the ConverseInit/ConverseExit bracket — New builds and
// initializes all components, Run coordinates startup and termination.
type Machine struct {
	m     *machine.Machine
	procs []*Proc
}

// NewMachine creates a Converse machine.
func NewMachine(cfg Config) *Machine {
	if cfg.Metrics != nil && cfg.Metrics.NumPEs() != cfg.PEs {
		panic(fmt.Sprintf("core: metrics registry built for %d PEs, machine has %d",
			cfg.Metrics.NumPEs(), cfg.PEs))
	}
	m := machine.New(machine.Config{PEs: cfg.PEs, Model: cfg.Model, Watchdog: cfg.Watchdog})
	cm := &Machine{m: m}
	cm.procs = make([]*Proc, cfg.PEs)
	for i := range cm.procs {
		cm.procs[i] = newProc(m.PE(i), cfg.Coalesce)
		if cfg.Tracer != nil {
			cm.procs[i].SetTracer(cfg.Tracer(i))
		}
		if cfg.Metrics != nil {
			cm.procs[i].SetMetrics(cfg.Metrics.PE(i))
		}
	}
	return cm
}

// NumPes reports the machine size.
func (cm *Machine) NumPes() int { return len(cm.procs) }

// Proc returns the Converse runtime instance of processor pe. It is
// intended for pre-Run setup and post-Run inspection; during Run each
// processor must use only its own Proc.
func (cm *Machine) Proc(pe int) *Proc { return cm.procs[pe] }

// Machine exposes the underlying simulated multicomputer.
func (cm *Machine) Machine() *machine.Machine { return cm.m }

// RegisterHandler registers h on every processor (they all receive the
// same index) and returns that index. It must be called before Run; it
// matches the common Converse idiom of registering all handlers during
// startup so indices agree across processors.
func (cm *Machine) RegisterHandler(h Handler) int {
	idx := -1
	for _, p := range cm.procs {
		i := p.RegisterHandler(h)
		if idx == -1 {
			idx = i
		} else if i != idx {
			panic("core: handler index mismatch across PEs; register machine-wide handlers before per-PE ones")
		}
	}
	return idx
}

// SetConsole redirects the machine's atomic standard output/error.
func (cm *Machine) SetConsole(out, errw io.Writer) { cm.m.SetConsole(out, errw) }

// SetInput redirects the machine's standard input.
func (cm *Machine) SetInput(r io.Reader) { cm.m.SetInput(r) }

// Run starts the program: one driver per processor executing start with
// that processor's Proc, returning when all have finished (or with an
// error on panic or watchdog expiry). No Converse call may be made after
// Run returns, except for inspection of Procs.
func (cm *Machine) Run(start func(p *Proc)) error {
	return cm.m.Run(func(pe *machine.PE) {
		p := cm.procs[pe.ID()]
		start(p)
		// A driver that returns right after sending must not strand
		// staged coalescing packs.
		p.flushAll()
	})
}

// Stop aborts the machine, unblocking all processors.
func (cm *Machine) Stop() { cm.m.Stop() }
