package core

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"converse/internal/netmodel"
)

// TestVectorSendReassemblyProperty: for any list of pieces, the
// gathered message's payload is their concatenation.
func TestVectorSendReassemblyProperty(t *testing.T) {
	f := func(pieces [][]byte) bool {
		cm := newTestMachine(1)
		var got []byte
		h := cm.RegisterHandler(func(p *Proc, msg []byte) {
			got = append([]byte(nil), Payload(msg)...)
			p.ExitScheduler()
		})
		err := cm.Run(func(p *Proc) {
			p.VectorSend(0, h, pieces...)
			p.Scheduler(-1)
		})
		if err != nil {
			return false
		}
		var want []byte
		for _, piece := range pieces {
			want = append(want, piece...)
		}
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTimerMonotonic(t *testing.T) {
	cm := NewMachine(Config{PEs: 2, Model: netmodel.T3D(), Watchdog: 10 * time.Second})
	h := cm.RegisterHandler(func(p *Proc, msg []byte) {})
	err := cm.Run(func(p *Proc) {
		last := p.Timer()
		if last != p.TimerUs()/1e6 {
			t.Error("Timer/TimerUs inconsistent")
		}
		for i := 0; i < 50; i++ {
			if p.MyPe() == 0 {
				p.SyncSend(1, NewMsg(h, 100))
			} else {
				p.GetSpecificMsg(h)
			}
			if now := p.Timer(); now < last {
				t.Fatalf("timer went backwards: %v -> %v", last, now)
			} else {
				last = now
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSelfSendThroughScheduler(t *testing.T) {
	cm := newTestMachine(1)
	got := 0
	var h int
	h = cm.RegisterHandler(func(p *Proc, msg []byte) {
		got++
		if got < 5 {
			p.SyncSend(p.MyPe(), MakeMsg(h, nil)) // self-send chain
		} else {
			p.ExitScheduler()
		}
	})
	err := cm.Run(func(p *Proc) {
		p.SyncSend(0, MakeMsg(h, nil))
		p.Scheduler(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Fatalf("got %d", got)
	}
}

func TestServeUntilStopPanics(t *testing.T) {
	cm := NewMachine(Config{PEs: 1, Watchdog: 200 * time.Millisecond})
	err := cm.Run(func(p *Proc) {
		p.ServeUntil(func() bool { return false })
	})
	if err == nil {
		t.Fatal("ServeUntil survived machine stop")
	}
}

func TestBroadcastOnSinglePE(t *testing.T) {
	cm := newTestMachine(1)
	n := 0
	h := cm.RegisterHandler(func(p *Proc, msg []byte) { n++ })
	err := cm.Run(func(p *Proc) {
		p.SyncBroadcast(MakeMsg(h, nil))    // no peers: nothing sent
		p.SyncBroadcastAll(MakeMsg(h, nil)) // delivers only to self
		p.ScheduleUntilIdle()
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("handled %d, want 1", n)
	}
}

func TestDeliverMsgsBudget(t *testing.T) {
	cm := newTestMachine(1)
	n := 0
	h := cm.RegisterHandler(func(p *Proc, msg []byte) { n++ })
	err := cm.Run(func(p *Proc) {
		for i := 0; i < 6; i++ {
			p.SyncSend(0, MakeMsg(h, nil))
		}
		if got := p.DeliverMsgs(2); got != 2 || n != 2 {
			t.Errorf("DeliverMsgs(2) = %d, handled %d", got, n)
		}
		if got := p.DeliverMsgs(-1); got != 4 || n != 6 {
			t.Errorf("DeliverMsgs(-1) = %d, handled %d", got, n)
		}
		if got := p.DeliverMsgs(-1); got != 0 {
			t.Errorf("empty DeliverMsgs = %d", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllocReusesLargestFit(t *testing.T) {
	cm := newTestMachine(1)
	err := cm.Run(func(p *Proc) {
		h := p.RegisterHandler(func(p *Proc, msg []byte) {})
		// Recycle two buffers of different sizes.
		p.SyncSend(0, NewMsg(h, 100))
		p.SyncSend(0, NewMsg(h, 10))
		p.Scheduler(2)
		small := p.Alloc(5) // must reuse one of them
		if cap(small) < HeaderSize+5 {
			t.Error("Alloc returned too-small buffer")
		}
		if len(small) != HeaderSize+5 {
			t.Errorf("Alloc length = %d", len(small))
		}
		if HandlerOf(small) != 0 || FlagsOf(small) != 0 {
			t.Error("Alloc did not reset the header")
		}
		big := p.Alloc(4096) // nothing big enough: fresh allocation
		if len(big) != HeaderSize+4096 {
			t.Errorf("big Alloc length = %d", len(big))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPoolBounded(t *testing.T) {
	cm := newTestMachine(1)
	h := cm.RegisterHandler(func(p *Proc, msg []byte) {})
	err := cm.Run(func(p *Proc) {
		// Recycle far more buffers than the pool retains; it must not
		// grow unboundedly (white-box: per-class cap is poolClassCap).
		// All sends go out before any dispatch recycles, so all 500
		// buffers come back to the pool in one burst.
		for i := 0; i < 500; i++ {
			msg := p.Alloc(100)
			SetHandler(msg, h)
			p.SyncSendAndFree(0, msg)
		}
		p.Scheduler(500)
		if n := p.pool.poolLen(); n > len(poolClassSizes)*poolClassCap {
			t.Errorf("pool grew to %d", n)
		}
		for ci, cls := range p.pool.classes {
			if len(cls) > poolClassCap {
				t.Errorf("class %d grew to %d buffers", ci, len(cls))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestZeroLengthPayload(t *testing.T) {
	cm := newTestMachine(2)
	ok := false
	h := cm.RegisterHandler(func(p *Proc, msg []byte) {
		ok = len(Payload(msg)) == 0
		p.ExitScheduler()
	})
	err := cm.Run(func(p *Proc) {
		if p.MyPe() == 0 {
			p.SyncSendAndFree(1, NewMsg(h, 0))
			return
		}
		p.Scheduler(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("zero-length payload mangled")
	}
}

func TestImmediateDispatchedNormallyByScheduler(t *testing.T) {
	// An immediate message that arrives while the scheduler (not a
	// blocking receive) is running is just dispatched like any other.
	cm := newTestMachine(1)
	ran := false
	h := cm.RegisterHandler(func(p *Proc, msg []byte) {
		ran = true
		p.ExitScheduler()
	})
	err := cm.Run(func(p *Proc) {
		msg := MakeMsg(h, nil)
		SetImmediate(msg)
		p.SyncSendAndFree(0, msg)
		p.Scheduler(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("immediate message lost in scheduler path")
	}
}

func TestGetSpecificAfterImmediateChain(t *testing.T) {
	// An immediate handler that itself sends the awaited message: the
	// blocked GetSpecificMsg must pick it up.
	cm := newTestMachine(2)
	var hImm, hData int
	hImm = cm.RegisterHandler(func(p *Proc, msg []byte) {
		p.SyncSendAndFree(p.MyPe(), MakeMsg(hData, []byte("from-imm")))
	})
	hData = cm.RegisterHandler(func(p *Proc, msg []byte) {})
	err := cm.Run(func(p *Proc) {
		if p.MyPe() == 1 {
			imm := MakeMsg(hImm, nil)
			SetImmediate(imm)
			p.SyncSendAndFree(0, imm)
			return
		}
		msg := p.GetSpecificMsg(hData)
		if string(Payload(msg)) != "from-imm" {
			t.Errorf("payload %q", Payload(msg))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
