// The monitor doorbell: the scheduler-side half of the live
// introspection plane (internal/ccs).
//
// All scheduler state — queue depths, the dispatch stack, the idle
// counter — is strictly driver-goroutine-local, so a monitor thread
// must not read it directly. Instead it "rings the doorbell": it
// injects a tiny immediate self-message through the substrate's
// foreign-safe Inject path and waits briefly. The scheduler dispatches
// the doorbell like any other immediate message — between handlers, or
// inline while blocked in GetSpecificMsg — and the handler publishes a
// consistent snapshot of the driver-local state into atomic cells the
// monitor then reads. The scheduler is never blocked, never locked, and
// pays nothing while no probe is in flight; a wedged or long-running
// handler simply makes the probe time out, returning the last published
// (stale) state with ok=false.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"converse/internal/ccs"
	"converse/internal/machine"
)

// selfInjector is the optional substrate capability the doorbell needs:
// publish a message to the substrate's own inbox from any goroutine.
// Both built-in substrates (*machine.PE, *mnet.Node) implement it;
// wrappers that don't (the fault-injection Sub) degrade to stale
// snapshots.
type selfInjector interface {
	Inject(data []byte)
}

// SchedState is a point-in-time view of one processor's scheduler,
// published by the doorbell handler. It is defined in internal/ccs
// (the introspection plane's snapshot schema) and re-exported here.
type SchedState = ccs.SchedState

// bellState is the doorbell's shared mailbox: the handler (driver
// goroutine) stores, probes (any goroutine) load.
type bellState struct {
	queueLen      atomic.Int64
	deferredLen   atomic.Int64
	netqLen       atomic.Int64
	dispatchDepth atomic.Int64
	idleCount     atomic.Uint64
	seq           atomic.Uint64

	// done is signaled (capacity 1, nonblocking) by the handler after a
	// publish; mu serializes probers so one drained signal answers one
	// probe.
	done chan struct{}
	mu   sync.Mutex
}

// onDoorbell publishes the driver-local scheduler state into the atomic
// mailbox and signals the waiting prober. It runs on the scheduler's
// own goroutine, so the plain reads of q/deferred/netq/dispStack/nIdle
// are race-free; everything it writes is an atomic cell and it
// allocates nothing, keeping the probe invisible to the hot path.
//
//converse:hotpath
func onDoorbell(p *Proc, msg []byte) {
	b := &p.bell
	b.queueLen.Store(int64(p.q.Len()))
	b.deferredLen.Store(int64(p.deferred.Len()))
	b.netqLen.Store(int64(p.netq.Len()))
	// The doorbell's own dispatch frame is on the stack; don't count it.
	b.dispatchDepth.Store(int64(len(p.dispStack) - 1))
	b.idleCount.Store(p.nIdle)
	b.seq.Add(1)
	select {
	case b.done <- struct{}{}:
	default:
	}
}

// load reads the mailbox (any goroutine).
func (b *bellState) load() SchedState {
	return SchedState{
		QueueLen:      int(b.queueLen.Load()),
		DeferredLen:   int(b.deferredLen.Load()),
		NetqLen:       int(b.netqLen.Load()),
		DispatchDepth: int(b.dispatchDepth.Load()),
		IdleCount:     b.idleCount.Load(),
		Seq:           b.seq.Load(),
	}
}

// ProbeSchedState rings this processor's doorbell and waits up to
// timeout for the scheduler to answer. It may be called from any
// goroutine. ok reports freshness: true means the returned state was
// published in response to this probe; false means the scheduler didn't
// get to the doorbell in time (busy in a long handler, or the substrate
// can't inject) and the state is the last published one — possibly
// zero, never torn.
func (p *Proc) ProbeSchedState(timeout time.Duration) (st SchedState, ok bool) {
	b := &p.bell
	inj, can := p.pe.(selfInjector)
	if !can {
		return b.load(), false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	// Drain a stale completion from a previously timed-out probe so the
	// wait below pairs with this ring.
	select {
	case <-b.done:
	default:
	}
	before := b.seq.Load()
	msg := NewMsg(p.bellHandler, 0)
	SetImmediate(msg)
	inj.Inject(msg)
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-b.done:
		return b.load(), b.seq.Load() != before
	case <-t.C:
		return b.load(), false
	}
}

// procSource adapts one Proc to the monitor's Source interface. All of
// its methods stay off driver-local state: the probe goes through the
// doorbell, and block/inbox state comes from the substrate's
// foreign-safe diagnostics.
type procSource struct {
	p *Proc
}

func (s procSource) PEID() int { return s.p.pe.ID() }

func (s procSource) Probe(timeout time.Duration) (SchedState, bool) {
	return s.p.ProbeSchedState(timeout)
}

func (s procSource) Blocked() string {
	// The network substrates (mnet.Node and its per-PE mnet.NodePE)
	// describe themselves; the simulated PE exposes raw block state.
	switch sub := s.p.pe.(type) {
	case interface{ DescribeBlocked() string }:
		return sub.DescribeBlocked()
	case interface{ BlockState() machine.BlockState }:
		return machine.FormatBlockState(fmt.Sprintf("pe%d", s.p.pe.ID()), sub.BlockState())
	}
	return ""
}

func (s procSource) Node() int { return s.p.pe.Node() }

func (s procSource) InboxLen() int {
	if il, ok := s.p.pe.(interface{ InboxLen() int }); ok {
		return il.InboxLen()
	}
	return 0
}

// StartMonitor opens a live introspection endpoint (internal/ccs) for
// this machine on addr ("127.0.0.1:0" for an ephemeral port). Every
// processor living in this process becomes an observable source; the
// machine's metrics registry (Config.Metrics), if any, is served with
// each snapshot. token, when non-empty, must accompany every request.
// The endpoint runs on its own goroutines until Close and never blocks
// the schedulers: all scheduler state flows through the doorbell.
func (cm *Machine) StartMonitor(addr, token string) (*ccs.Monitor, error) {
	cfg := ccs.Config{
		Addr:     addr,
		Token:    token,
		NumPEs:   cm.npes,
		Registry: cm.met,
		Job:      cm.job,
	}
	for _, p := range cm.procs {
		if cm.net != nil && (!cm.net.Active() || p.pe.ID() >= cm.npes) {
			continue // surplus node: holds no processor of this machine
		}
		cfg.Sources = append(cfg.Sources, procSource{p: p})
	}
	if cm.net != nil {
		cfg.Rank = cm.net.Node()
	}
	return ccs.NewMonitor(cfg)
}
