package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"converse/internal/metrics"
)

// TestProbeSchedStateFresh: a serving scheduler answers its doorbell
// with a fresh, consistent view; repeated probes advance the sequence.
func TestProbeSchedStateFresh(t *testing.T) {
	cm := NewMachine(Config{PEs: 2})
	var stop atomic.Bool
	done := make(chan error, 1)
	go func() {
		done <- cm.Run(func(p *Proc) {
			p.ServeUntil(func() bool { return stop.Load() })
		})
	}()
	st1, ok := cm.Proc(0).ProbeSchedState(time.Second)
	if !ok {
		t.Fatalf("probe of an idle serving scheduler timed out (state %+v)", st1)
	}
	st2, ok := cm.Proc(0).ProbeSchedState(time.Second)
	if !ok || st2.Seq <= st1.Seq {
		t.Errorf("second probe: ok=%v seq %d after %d, want fresh and advancing", ok, st2.Seq, st1.Seq)
	}
	if st1.QueueLen != 0 || st1.DispatchDepth != 0 {
		t.Errorf("idle scheduler state %+v, want empty queue at depth 0", st1)
	}
	stop.Store(true)
	cm.Proc(0).ProbeSchedState(time.Second)
	cm.Proc(1).ProbeSchedState(time.Second)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestProbeSchedStateNotRunning: with no driver to answer, the probe
// must time out and say so rather than block or fabricate freshness.
func TestProbeSchedStateNotRunning(t *testing.T) {
	cm := NewMachine(Config{PEs: 1})
	st, ok := cm.Proc(0).ProbeSchedState(20 * time.Millisecond)
	if ok {
		t.Fatalf("probe of a never-started scheduler reported fresh state %+v", st)
	}
	if st.Seq != 0 {
		t.Errorf("seq = %d before any doorbell publish, want 0", st.Seq)
	}
}

// TestSnapshotUnderLoadRace is the regression test for the snapshot
// tearing fix: metrics snapshots and scheduler-state probes hammered
// from foreign goroutines while the machine runs flat out. Under -race
// this proves the doorbell path reads no driver-local state off-thread
// and the registry snapshot touches only atomic cells.
func TestSnapshotUnderLoadRace(t *testing.T) {
	const (
		pes     = 4
		msgs    = 2000
		probers = 3
	)
	reg := metrics.New(pes)
	cm := NewMachine(Config{PEs: pes, Metrics: reg})
	var recv atomic.Uint64
	var bounce int
	bounce = cm.RegisterHandler(func(p *Proc, msg []byte) {
		recv.Add(1)
		if n := recv.Load(); n < pes*msgs {
			fwd := p.Alloc(8)
			SetHandler(fwd, bounce)
			p.SyncSendAndFree((p.MyPe()+1)%pes, fwd)
		}
	})

	runDone := make(chan error, 1)
	var stopProbes atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < probers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Cycle over every PE: beyond hammering the doorbell, the
			// probes' injected messages are what wake idle-blocked
			// schedulers to re-check their exit predicate.
			for i := g; !stopProbes.Load(); i++ {
				p := cm.Proc(i % pes)
				p.ProbeSchedState(50 * time.Millisecond)
				snap := reg.Snapshot()
				if len(snap.PEs) != pes {
					t.Errorf("snapshot covers %d PEs, want %d", len(snap.PEs), pes)
					return
				}
			}
		}(g)
	}

	go func() {
		runDone <- cm.Run(func(p *Proc) {
			// Seed a few concurrent bounce chains per PE, then serve
			// until the machine-wide count is reached.
			for i := 0; i < 4; i++ {
				msg := NewMsg(bounce, 8-HeaderSize)
				p.SyncSend((p.MyPe()+1)%pes, msg)
			}
			p.ServeUntil(func() bool { return recv.Load() >= pes*msgs })
		})
	}()
	if err := <-runDone; err != nil {
		t.Fatal(err)
	}
	stopProbes.Store(true)
	wg.Wait()

	// The counters the handlers bumped must all be visible.
	snap := reg.Snapshot()
	var dispatched uint64
	for _, pe := range snap.PEs {
		dispatched += pe.Dispatches
	}
	if dispatched < pes*msgs {
		t.Errorf("snapshot shows %d dispatches, want >= %d", dispatched, pes*msgs)
	}
}
