// Package core implements the Converse core: generalized messages, the
// handler registry, the Converse machine interface (CMI), and the
// unified scheduler (Csd) described in §3.1 of the paper.
//
// A generalized message is an arbitrary block of memory whose first word
// specifies the function that will handle it — here, an index into a
// per-processor handler table (the paper prefers the index form over a
// raw pointer because it works on heterogeneous machines and is
// smaller). A generalized message can represent a message sent from a
// remote processor, a scheduler entry for a ready thread, or a delayed
// function call with its argument; the unified scheduler treats all
// three identically.
package core

import (
	"encoding/binary"
	"fmt"
)

// HeaderSize is the size of the generalized-message header in bytes
// (CmiMsgHeaderSizeBytes): a 4-byte handler index followed by 4 bytes of
// flags reserved for runtime layers (the language-specific second
// handler trick of §3.3 stores state here in some runtimes).
const HeaderSize = 8

// Handler is a message-handler function, registered per processor with
// RegisterHandler. The msg slice includes the header; use Payload to
// access the body. Ownership of msg remains with the CMI unless the
// handler calls GrabBuffer.
type Handler func(p *Proc, msg []byte)

// NewMsg allocates a fresh generalized message with the given handler
// index and payload length. The payload bytes are zeroed.
func NewMsg(handler int, payloadLen int) []byte {
	msg := make([]byte, HeaderSize+payloadLen)
	SetHandler(msg, handler)
	return msg
}

// MakeMsg builds a generalized message carrying a copy of payload.
func MakeMsg(handler int, payload []byte) []byte {
	msg := NewMsg(handler, len(payload))
	copy(msg[HeaderSize:], payload)
	return msg
}

// SetHandler stores the handler index in a message's header
// (CmiSetHandler).
//
//converse:hotpath
func SetHandler(msg []byte, handler int) {
	mcCheck(msg)
	if len(msg) < HeaderSize {
		panic(fmt.Sprintf("core: message of %d bytes is smaller than the %d-byte header", len(msg), HeaderSize))
	}
	binary.LittleEndian.PutUint32(msg[0:4], uint32(handler))
}

// HandlerOf extracts the handler index from a message's header.
//
//converse:hotpath
func HandlerOf(msg []byte) int {
	mcCheck(msg)
	if len(msg) < HeaderSize {
		panic(fmt.Sprintf("core: message of %d bytes is smaller than the %d-byte header", len(msg), HeaderSize))
	}
	return int(binary.LittleEndian.Uint32(msg[0:4]))
}

// immediateBit is the core-reserved bit of the header flags word
// marking a preemptive ("immediate") message — the interrupt-message
// facility the paper lists as future work. Language runtimes own the
// remaining 31 bits through SetFlags/FlagsOf, which mask it.
const immediateBit = 1 << 31

// SetFlags stores the language-owned part of a message's flags word
// (31 bits; the core reserves one bit for SetImmediate). The core does
// not interpret these bits; language runtimes use them freely — for
// example to distinguish "fresh from the network" from "replayed from
// the scheduler queue" without registering a second handler.
//
//converse:hotpath
func SetFlags(msg []byte, flags uint32) {
	mcCheck(msg)
	imm := binary.LittleEndian.Uint32(msg[4:8]) & immediateBit
	binary.LittleEndian.PutUint32(msg[4:8], flags&^immediateBit|imm)
}

// FlagsOf returns the language-owned part of the message's flags word.
//
//converse:hotpath
func FlagsOf(msg []byte) uint32 {
	mcCheck(msg)
	return binary.LittleEndian.Uint32(msg[4:8]) &^ immediateBit
}

// SetImmediate marks msg as an immediate (preemptive) message: its
// handler runs as soon as the destination processor touches the network
// — even inside a blocking GetSpecificMsg waiting for a different
// handler, where ordinary messages are set aside. Immediate handlers
// should be short and self-contained, like interrupt handlers; they run
// in whatever context the processor happens to be in. (The paper's §6:
// "Preemptive messages (interrupt messages) will be investigated in the
// future" — this is that facility, as it later appeared in Converse.)
func SetImmediate(msg []byte) {
	mcCheck(msg)
	msg[7] |= 0x80 // high bit of the little-endian flags word
}

// IsImmediate reports whether msg is marked immediate.
//
//converse:hotpath
func IsImmediate(msg []byte) bool {
	mcCheck(msg)
	return msg[7]&0x80 != 0
}

// Payload returns the message body after the header. The slice aliases
// msg; writes are visible to other holders of the message.
//
//converse:hotpath
func Payload(msg []byte) []byte {
	mcCheck(msg)
	return msg[HeaderSize:]
}
