package core

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestMsgHeaderRoundTrip(t *testing.T) {
	msg := NewMsg(42, 16)
	if len(msg) != HeaderSize+16 {
		t.Fatalf("len = %d, want %d", len(msg), HeaderSize+16)
	}
	if HandlerOf(msg) != 42 {
		t.Fatalf("HandlerOf = %d, want 42", HandlerOf(msg))
	}
	SetHandler(msg, 7)
	if HandlerOf(msg) != 7 {
		t.Fatalf("HandlerOf after SetHandler = %d, want 7", HandlerOf(msg))
	}
	SetFlags(msg, 0x5eadbeef) // language flags are 31 bits
	if FlagsOf(msg) != 0x5eadbeef {
		t.Fatalf("FlagsOf = %#x", FlagsOf(msg))
	}
	if HandlerOf(msg) != 7 {
		t.Fatal("SetFlags clobbered the handler field")
	}
}

func TestMsgHeaderProperty(t *testing.T) {
	f := func(h uint16, flags uint32, payload []byte) bool {
		msg := MakeMsg(int(h), payload)
		SetFlags(msg, flags)
		// The language-owned flags are the low 31 bits; the core
		// reserves the top bit for SetImmediate.
		return HandlerOf(msg) == int(h) &&
			FlagsOf(msg) == flags&^(1<<31) &&
			bytes.Equal(Payload(msg), payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPayloadAliases(t *testing.T) {
	msg := MakeMsg(1, []byte("abc"))
	Payload(msg)[0] = 'X'
	if string(msg[HeaderSize:]) != "Xbc" {
		t.Fatal("Payload does not alias the message")
	}
}

func TestShortMessagePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"SetHandler": func() { SetHandler(make([]byte, 4), 1) },
		"HandlerOf":  func() { HandlerOf(make([]byte, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on short slice did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestMakeMsgCopiesPayload(t *testing.T) {
	src := []byte("orig")
	msg := MakeMsg(3, src)
	src[0] = 'X'
	if string(Payload(msg)) != "orig" {
		t.Fatal("MakeMsg did not copy the payload")
	}
}
