//go:build !msgcheck

package core

// Default build: the dynamic message-ownership checker is compiled out.
// Every hook below is an empty function the compiler inlines away, so
// the fast path pays nothing; build with -tags msgcheck to enable the
// checking implementations in msgcheck_on.go.

// MsgCheckEnabled reports whether this binary was built with the
// msgcheck dynamic ownership checker.
const MsgCheckEnabled = false

// mcStamp records that buf's current generation begins here (Alloc).
func mcStamp(buf []byte) {}

// mcFree records that buf was recycled; pooled says whether the pool
// retained it.
func mcFree(buf []byte, pooled bool) {}

// mcSend records that buf was handed to the machine layer.
func mcSend(buf []byte) {}

// mcAdopt records that buf arrived from the machine layer and is owned
// by this processor now.
func mcAdopt(buf []byte) {}

// mcCheck panics if buf was freed or transferred (msgcheck builds).
func mcCheck(buf []byte) {}
