//go:build msgcheck

package core

// The msgcheck build compiles in the dynamic half of the
// message-ownership tooling (the static half is cmd/converselint's
// msgownership analyzer). A global registry keyed by buffer base
// address tracks every message buffer the runtime has ever owned:
//
//   - Proc.Alloc stamps the buffer with a fresh generation and records
//     the allocation stack.
//   - recycle poisons the payload with 0xDD and records the free stack;
//     the next Alloc of that buffer verifies the poison canary, so a
//     write-after-free is caught even when it happens through a raw
//     index expression no checked accessor sees.
//   - An ownership-transfer send records the transfer stack before the
//     buffer is handed to the machine layer; the receiving processor
//     adopts it at network ingestion, starting a new generation.
//
// Every header accessor (SetHandler, HandlerOf, Payload, ...) calls
// mcCheck, so touching a freed or transferred buffer panics with three
// stacks: where the generation was allocated, where ownership was
// released, and where the violation happened.

import (
	"fmt"
	"runtime/debug"
	"sync"
)

// MsgCheckEnabled reports whether this binary was built with the
// msgcheck dynamic ownership checker.
const MsgCheckEnabled = true

// mcPoison fills freed payloads; reads of freed buffers return
// conspicuous garbage and the Alloc-time canary check detects writes.
const mcPoison = 0xDD

// mcState is a registered buffer's position in its ownership lifecycle.
type mcState uint8

const (
	mcLive  mcState = iota // owned by caller code or the dispatcher
	mcFreed                // recycled into the message pool
	mcSent                 // handed to the machine layer by a transfer
)

func (s mcState) String() string {
	switch s {
	case mcLive:
		return "live"
	case mcFreed:
		return "freed (recycled into the message pool)"
	case mcSent:
		return "transferred to the runtime (ownership-transfer send)"
	}
	return "in unknown state"
}

// mcRecord is one buffer's ownership history. allocStack is the stack
// that began the current generation; lossStack the one that ended it.
type mcRecord struct {
	gen        uint64
	state      mcState
	poisoned   bool
	allocStack []byte
	lossStack  []byte
}

// mcReg is the global buffer registry. Buffers cross processors (a
// transfer send hands the identical backing array to the destination
// PE), so the registry cannot be PE-local.
var mcReg = struct {
	sync.Mutex
	m map[*byte]*mcRecord
}{m: make(map[*byte]*mcRecord)}

// mcViolation builds the three-stack panic message.
func mcViolation(kind string, rec *mcRecord) string {
	alloc := rec.allocStack
	if alloc == nil {
		alloc = []byte("(buffer was not allocated through Proc.Alloc)\n")
	}
	return fmt.Sprintf(
		"core: msgcheck: %s: buffer is %s (generation %d)\n"+
			"buffer allocated at:\n%s\nownership released at:\n%s\nviolating access at:\n%s",
		kind, rec.state, rec.gen, alloc, rec.lossStack, debug.Stack())
}

// mcStamp begins a new generation for buf: Alloc and the oversized
// fallback call it on every buffer they return, before touching the
// header. If the buffer is coming back out of the pool, the poison
// canary is verified first.
func mcStamp(buf []byte) {
	if len(buf) == 0 {
		return
	}
	stack := debug.Stack()
	mcReg.Lock()
	defer mcReg.Unlock()
	rec := mcReg.m[&buf[0]]
	if rec == nil {
		rec = &mcRecord{}
		mcReg.m[&buf[0]] = rec
	}
	if rec.state == mcFreed && rec.poisoned {
		full := buf[:cap(buf)]
		for i := HeaderSize; i < len(full); i++ {
			if full[i] != mcPoison {
				panic(fmt.Sprintf(
					"core: msgcheck: pooled buffer modified after free (byte %d of generation %d)\n"+
						"buffer allocated at:\n%s\nbuffer freed at:\n%s\ndetected at next Alloc:\n%s",
					i, rec.gen, rec.allocStack, rec.lossStack, stack))
			}
		}
	}
	rec.gen++
	rec.state = mcLive
	rec.poisoned = false
	rec.allocStack = stack
	rec.lossStack = nil
}

// mcFree ends buf's generation at recycle time. When the pool retains
// the buffer the payload is poisoned and the record kept, so both
// use-after-free (checked accessors) and write-after-free (canary at
// next Alloc) are caught. When the pool drops the buffer the record is
// deleted: the memory returns to the garbage collector and a later
// unrelated allocation may reuse the address.
func mcFree(buf []byte, pooled bool) {
	if len(buf) == 0 {
		return
	}
	stack := debug.Stack()
	mcReg.Lock()
	defer mcReg.Unlock()
	rec := mcReg.m[&buf[0]]
	if rec != nil && rec.state != mcLive {
		panic(mcViolation("buffer released twice", rec))
	}
	if !pooled {
		delete(mcReg.m, &buf[0])
		return
	}
	if rec == nil {
		rec = &mcRecord{gen: 1}
		mcReg.m[&buf[0]] = rec
	}
	full := buf[:cap(buf)]
	for i := HeaderSize; i < len(full); i++ {
		full[i] = mcPoison
	}
	rec.state = mcFreed
	rec.poisoned = true
	rec.lossStack = stack
}

// mcSend ends buf's generation just before the machine layer takes the
// backing array. No poisoning: the bytes are the message in flight. It
// must run before SendOwned — afterwards the destination processor may
// already have adopted the buffer.
func mcSend(buf []byte) {
	if len(buf) == 0 {
		return
	}
	stack := debug.Stack()
	mcReg.Lock()
	defer mcReg.Unlock()
	rec := mcReg.m[&buf[0]]
	if rec == nil {
		rec = &mcRecord{gen: 1}
		mcReg.m[&buf[0]] = rec
	}
	if rec.state != mcLive && rec.allocStack != nil {
		panic(mcViolation("buffer transferred twice", rec))
	}
	rec.state = mcSent
	rec.lossStack = stack
}

// mcAdopt starts a new generation for a buffer arriving from the
// machine layer: the sender retired it with mcSend (or it is a fresh
// network read), and from here on this processor owns it.
func mcAdopt(buf []byte) {
	if len(buf) == 0 {
		return
	}
	stack := debug.Stack()
	mcReg.Lock()
	defer mcReg.Unlock()
	rec := mcReg.m[&buf[0]]
	if rec == nil {
		rec = &mcRecord{}
		mcReg.m[&buf[0]] = rec
	}
	rec.gen++
	rec.state = mcLive
	rec.poisoned = false
	rec.allocStack = stack
	rec.lossStack = nil
}

// mcCheck panics if buf's ownership has been released. It is called by
// every header accessor; unregistered buffers (plain NewMsg output the
// runtime never recycled) pass freely.
func mcCheck(buf []byte) {
	if len(buf) == 0 {
		return
	}
	mcReg.Lock()
	rec := mcReg.m[&buf[0]]
	if rec == nil || rec.state == mcLive {
		mcReg.Unlock()
		return
	}
	mcReg.Unlock()
	panic(mcViolation("use of message buffer after ownership release", rec))
}

// MsgCheckGen returns buf's current generation and whether the buffer
// is live. It exists so tests (and debugging sessions) can capture a
// generation handle before a transfer and prove the buffer was reused.
func MsgCheckGen(buf []byte) (gen uint64, live bool) {
	if len(buf) == 0 {
		return 0, false
	}
	mcReg.Lock()
	defer mcReg.Unlock()
	rec := mcReg.m[&buf[0]]
	if rec == nil {
		return 0, false
	}
	return rec.gen, rec.state == mcLive
}

// MsgCheckAssertGen panics unless buf is live in exactly the given
// generation — the stale-handle check: a caller that stashed a buffer
// across a transfer sees either a retired state or a newer generation.
func MsgCheckAssertGen(buf []byte, gen uint64) {
	if len(buf) == 0 {
		panic("core: msgcheck: AssertGen of empty buffer")
	}
	mcReg.Lock()
	rec := mcReg.m[&buf[0]]
	mcReg.Unlock()
	if rec == nil {
		panic("core: msgcheck: AssertGen of untracked buffer")
	}
	if rec.state != mcLive {
		panic(mcViolation("stale generation handle", rec))
	}
	if rec.gen != gen {
		panic(fmt.Sprintf(
			"core: msgcheck: generation reuse: buffer is at generation %d, handle is for generation %d\n"+
				"current generation allocated at:\n%s\nstale handle checked at:\n%s",
			rec.gen, gen, rec.allocStack, debug.Stack()))
	}
}
