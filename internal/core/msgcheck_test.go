//go:build msgcheck

package core

// Tests for the dynamic ownership checker (go test -tags msgcheck).
// These prove the acceptance property of the msgcheck build: a
// deliberate use-after-transfer panics naming both the allocation site
// and the violating access, generation handles detect buffer reuse,
// and the poison canary catches raw writes after free.

import (
	"strings"
	"testing"
	"time"
)

// mustPanic runs f and returns the recovered panic text.
func mustPanic(t *testing.T, f func()) string {
	t.Helper()
	var got string
	func() {
		defer func() {
			if r := recover(); r != nil {
				got = toString(r)
			}
		}()
		f()
	}()
	if got == "" {
		t.Fatal("expected a msgcheck panic, got none")
	}
	return got
}

func toString(r interface{}) string {
	if s, ok := r.(string); ok {
		return s
	}
	if e, ok := r.(error); ok {
		return e.Error()
	}
	return "non-string panic"
}

// allocTransferAndLeak runs a 1-PE coalescing machine, allocates a
// buffer (the allocation site the panic must name), transfers it with
// SyncSendAndFree, and leaks the stale slice to the caller.
func allocTransferAndLeak(t *testing.T) []byte {
	t.Helper()
	cm := NewMachine(Config{
		PEs: 1, Watchdog: 10 * time.Second,
		Coalesce: CoalesceConfig{Enabled: true},
	})
	h := cm.RegisterHandler(func(p *Proc, msg []byte) {})
	var leaked []byte
	err := cm.Run(func(p *Proc) {
		msg := p.Alloc(16)
		SetHandler(msg, h)
		p.SyncSendAndFree(0, msg) // staged (copied) and recycled: ownership gone
		leaked = msg
	})
	if err != nil {
		t.Fatal(err)
	}
	return leaked
}

func TestMsgCheckUseAfterTransferPanics(t *testing.T) {
	leaked := allocTransferAndLeak(t)
	text := mustPanic(t, func() { _ = HandlerOf(leaked) })
	for _, want := range []string{
		"msgcheck",
		"use of message buffer after ownership release",
		"buffer allocated at",
		"ownership released at",
		"violating access at",
		// Both the allocation site (inside allocTransferAndLeak) and
		// the violating access (this test) live in this file, so the
		// recorded stacks must name it.
		"msgcheck_test.go",
		"allocTransferAndLeak",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("panic text missing %q:\n%s", want, text)
		}
	}
	// Every checked accessor trips, not just HandlerOf.
	for name, access := range map[string]func(){
		"SetHandler": func() { SetHandler(leaked, 0) },
		"Payload":    func() { _ = Payload(leaked) },
		"FlagsOf":    func() { _ = FlagsOf(leaked) },
	} {
		if text := mustPanic(t, access); !strings.Contains(text, "msgcheck") {
			t.Errorf("%s: panic text missing msgcheck marker:\n%s", name, text)
		}
	}
}

func TestMsgCheckGenerationReuseDetected(t *testing.T) {
	cm := NewMachine(Config{
		PEs: 1, Watchdog: 10 * time.Second,
		Coalesce: CoalesceConfig{Enabled: true},
	})
	h := cm.RegisterHandler(func(p *Proc, msg []byte) {})
	var stale, fresh []byte
	var staleGen uint64
	err := cm.Run(func(p *Proc) {
		stale = p.Alloc(16)
		SetHandler(stale, h)
		var live bool
		staleGen, live = MsgCheckGen(stale)
		if !live {
			t.Error("freshly allocated buffer not live")
		}
		p.SyncSendAndFree(0, stale)
		// The pool is LIFO, so the next Alloc of the same class hands
		// the same backing array back out under a new generation.
		fresh = p.Alloc(16)
		SetHandler(fresh, h)
	})
	if err != nil {
		t.Fatal(err)
	}
	if &stale[0] != &fresh[0] {
		t.Skip("pool did not reuse the buffer; generation test needs address reuse")
	}
	gen, live := MsgCheckGen(fresh)
	if !live || gen <= staleGen {
		t.Fatalf("reused buffer: gen=%d live=%v, want live and > %d", gen, live, staleGen)
	}
	// The stale handle aliases live memory, so plain accessors cannot
	// catch it — the generation check can.
	MsgCheckAssertGen(fresh, gen) // current handle: fine
	text := mustPanic(t, func() { MsgCheckAssertGen(stale, staleGen) })
	if !strings.Contains(text, "generation reuse") {
		t.Errorf("panic text missing generation reuse marker:\n%s", text)
	}
}

func TestMsgCheckCanaryCatchesRawWriteAfterFree(t *testing.T) {
	cm := NewMachine(Config{
		PEs: 1, Watchdog: 10 * time.Second,
		Coalesce: CoalesceConfig{Enabled: true},
	})
	h := cm.RegisterHandler(func(p *Proc, msg []byte) {})
	// The violation happens on a PE goroutine, where the machine layer
	// converts the msgcheck panic into Run's error.
	err := cm.Run(func(p *Proc) {
		msg := p.Alloc(16)
		SetHandler(msg, h)
		body := Payload(msg) // alias taken while still live
		p.SyncSendAndFree(0, msg)
		// A raw index write through the stale alias goes around
		// every checked accessor...
		body[0] = 42
		// ...but lands in the poisoned region, so the canary scan
		// at the next Alloc of the class reports it.
		_ = p.Alloc(16)
	})
	if err == nil {
		t.Fatal("expected the canary panic to fail the run")
	}
	for _, want := range []string{"modified after free", "buffer freed at"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("run error missing %q:\n%s", want, err)
		}
	}
}

func TestMsgCheckDoubleFreePanics(t *testing.T) {
	cm := NewMachine(Config{
		PEs: 1, Watchdog: 10 * time.Second,
		Coalesce: CoalesceConfig{Enabled: true},
	})
	h := cm.RegisterHandler(func(p *Proc, msg []byte) {})
	err := cm.Run(func(p *Proc) {
		msg := p.Alloc(16)
		SetHandler(msg, h)
		p.SyncSendAndFree(0, msg)
		p.SyncSendAndFree(0, msg)
	})
	if err == nil {
		t.Fatal("expected the double transfer to fail the run")
	}
	if !strings.Contains(err.Error(), "msgcheck") {
		t.Errorf("run error missing msgcheck marker:\n%s", err)
	}
}

// TestMsgCheckCrossPETransferAdopted proves a transferred buffer is
// adopted at the destination: the receiver handles the identical
// backing array without a false positive, and generations advance.
func TestMsgCheckCrossPETransferAdopted(t *testing.T) {
	cm := NewMachine(Config{PEs: 2, Watchdog: 10 * time.Second})
	delivered := false
	var h, hStop int
	h = cm.RegisterHandler(func(p *Proc, msg []byte) {
		delivered = true
		if gen, live := MsgCheckGen(msg); !live || gen == 0 {
			t.Errorf("delivered buffer gen=%d live=%v, want adopted and live", gen, live)
		}
	})
	hStop = cm.RegisterHandler(func(p *Proc, msg []byte) { p.ExitScheduler() })
	err := cm.Run(func(p *Proc) {
		if p.MyPe() == 0 {
			// Big enough to dodge coalescing everywhere: the direct
			// path hands the backing array to PE 1.
			msg := p.Alloc(2048)
			SetHandler(msg, h)
			p.SyncSendAndFree(1, msg)
			p.SyncSend(1, MakeMsg(hStop, nil))
			return
		}
		p.Scheduler(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !delivered {
		t.Fatal("transfer send not delivered")
	}
}
