package core

// The binding between the core and the TCP network machine layer
// (internal/mnet). This is deliberately the only file in the core that
// knows mnet exists: everything else consumes the Substrate interface,
// mirroring how Converse ports swap machine layers under an unchanged
// core.

import (
	"fmt"

	"converse/internal/mnet"
)

// netInJob reports whether this process was spawned by converserun
// (the CONVERSE_NET_* environment is set).
func netInJob() bool { return mnet.InJob() }

// newNetMachine joins the surrounding converserun job and builds the
// local node's Converse machine on the TCP substrate. Failures here are
// unrecoverable configuration or rendezvous errors; per the machine
// layer's failure model they abort the process loudly rather than limp.
func newNetMachine(cfg Config) *Machine {
	ncfg, err := mnet.EnvJobConfig(cfg.PEs)
	if err != nil {
		panic(fmt.Sprintf("core: joining converserun job: %v", err))
	}
	// Program-level Config wins over the launcher environment, so a
	// program that hard-codes a failure policy or fault plan behaves the
	// same under any launcher invocation.
	if cfg.FailurePolicy != "" {
		ncfg.FailurePolicy = cfg.FailurePolicy
	}
	if cfg.RecoveryWindow > 0 {
		ncfg.RecoveryWindow = cfg.RecoveryWindow
	}
	if cfg.Faults != "" {
		ncfg.Faults = cfg.Faults
	}
	node, err := mnet.Join(ncfg)
	if err != nil {
		panic(fmt.Sprintf("core: joining converserun job: %v", err))
	}
	cm := NewMachineOn(node, cfg)
	if cfg.Metrics != nil && node.Active() && node.ID() < cfg.PEs {
		node.SetMetrics(cfg.Metrics.PE(node.ID()))
	}
	return cm
}
