package core

// The binding between the core and the TCP network machine layer
// (internal/mnet). This is deliberately the only file in the core that
// knows mnet exists: everything else consumes the Substrate interface,
// mirroring how Converse ports swap machine layers under an unchanged
// core.

import (
	"fmt"
	"os"

	"converse/internal/ccs"
	"converse/internal/metrics"
	"converse/internal/mnet"
)

// netInJob reports whether this process was spawned by converserun
// (the CONVERSE_NET_* environment is set).
func netInJob() bool { return mnet.InJob() }

// newNetMachine joins the surrounding converserun job and builds the
// local node's Converse machine on the TCP substrate. Failures here are
// unrecoverable configuration or rendezvous errors; per the machine
// layer's failure model they abort the process loudly rather than limp.
func newNetMachine(cfg Config) *Machine {
	ncfg, err := mnet.EnvJobConfig(cfg.PEs)
	if err != nil {
		panic(fmt.Sprintf("core: joining converserun job: %v", err))
	}
	// Program-level Config wins over the launcher environment, so a
	// program that hard-codes a failure policy or fault plan behaves the
	// same under any launcher invocation.
	if cfg.FailurePolicy != "" {
		ncfg.FailurePolicy = cfg.FailurePolicy
	}
	if cfg.RecoveryWindow > 0 {
		ncfg.RecoveryWindow = cfg.RecoveryWindow
	}
	if cfg.Faults != "" {
		ncfg.Faults = cfg.Faults
	}
	monitor := os.Getenv(mnet.EnvMonitor) != ""
	if monitor && cfg.Metrics == nil {
		// The launcher asked for live introspection; give the snapshot
		// something to show even when the program attached no registry.
		cfg.Metrics = metrics.New(cfg.PEs)
	}
	node, err := mnet.Join(ncfg)
	if err != nil {
		panic(fmt.Sprintf("core: joining converserun job: %v", err))
	}
	cm := NewMachineOn(node, cfg)
	if cfg.Metrics != nil && node.Active() && node.ID() < cfg.PEs {
		node.SetMetrics(cfg.Metrics.PE(node.ID()))
	}
	if monitor && node.Active() && node.ID() < cfg.PEs {
		startNetMonitor(cm, node, ncfg.Token)
	}
	return cm
}

// netMonitor is the current rendezvous round's introspection endpoint.
// A program that builds machines in sequence (examples/quickstart)
// joins once per machine; each join replaces the previous endpoint so
// the launcher's aggregator always reaches the live machine.
var netMonitor *ccs.Monitor

// startNetMonitor opens this worker's local introspection endpoint on
// an ephemeral port and reports its address to the launcher, which
// aggregates all ranks behind converserun -monitor.
func startNetMonitor(cm *Machine, node *mnet.Node, token string) {
	if netMonitor != nil {
		netMonitor.Close()
		netMonitor = nil
	}
	mon, err := cm.StartMonitor("127.0.0.1:0", token)
	if err != nil {
		// Introspection is an observer, never a reason to kill the job.
		fmt.Fprintf(os.Stderr, "core: monitor endpoint: %v\n", err)
		return
	}
	netMonitor = mon
	if err := node.ReportMonitor(mon.Addr()); err != nil {
		fmt.Fprintf(os.Stderr, "core: reporting monitor address: %v\n", err)
	}
}
