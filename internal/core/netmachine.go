package core

// The binding between the core and the TCP network machine layer
// (internal/mnet). This is deliberately the only file in the core that
// knows mnet exists: everything else consumes the Substrate interface,
// mirroring how Converse ports swap machine layers under an unchanged
// core.

import (
	"fmt"

	"converse/internal/mnet"
)

// netInJob reports whether this process was spawned by converserun
// (the CONVERSE_NET_* environment is set).
func netInJob() bool { return mnet.InJob() }

// newNetMachine joins the surrounding converserun job and builds the
// local node's Converse machine on the TCP substrate. Failures here are
// unrecoverable configuration or rendezvous errors; per the machine
// layer's failure model they abort the process loudly rather than limp.
func newNetMachine(cfg Config) *Machine {
	node, err := mnet.JoinFromEnv(cfg.PEs)
	if err != nil {
		panic(fmt.Sprintf("core: joining converserun job: %v", err))
	}
	cm := NewMachineOn(node, cfg)
	if cfg.Metrics != nil && node.Active() && node.ID() < cfg.PEs {
		node.SetMetrics(cfg.Metrics.PE(node.ID()))
	}
	return cm
}
