package core

import (
	"testing"
	"time"

	"converse/internal/metrics"
)

// These benchmarks guard the observability layer's zero-overhead-when-
// off contract: with no tracer and no metrics registry, the scheduler's
// dispatch and send paths must not allocate, and the instrumentation
// hooks must cost no more than a nil check. The Makefile's overhead
// target fails CI if any of the *Disabled/*Overhead benchmarks report
// allocations.

// nullTracer is a local no-op Tracer. (internal/trace.Null is the
// public one, but trace imports core, so tests in package core define
// their own.)
type nullTracer struct{}

func (nullTracer) Event(TraceEvent) {}

// benchDispatch measures the full local dispatch path — allocate from
// the buffer pool, enqueue, schedule, dispatch, recycle — on one PE of
// a machine configured by cfg. Steady state must be allocation-free
// when tracing and metrics are off.
func benchDispatch(b *testing.B, mutate func(*Config)) {
	cfg := Config{PEs: 1, Watchdog: 5 * time.Minute}
	if mutate != nil {
		mutate(&cfg)
	}
	cm := NewMachine(cfg)
	h := cm.RegisterHandler(func(p *Proc, msg []byte) {})
	err := cm.Run(func(p *Proc) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			msg := p.Alloc(0)
			SetHandler(msg, h)
			p.Enqueue(msg)
			p.ScheduleUntilIdle()
		}
		b.StopTimer()
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkDispatchOff is the baseline: no tracer, no metrics.
func BenchmarkDispatchOff(b *testing.B) {
	benchDispatch(b, nil)
}

// BenchmarkNullTracerOverhead runs the same path with a no-op tracer
// installed: the cost of the trace hooks when events are discarded.
func BenchmarkNullTracerOverhead(b *testing.B) {
	benchDispatch(b, func(cfg *Config) {
		cfg.Tracer = func(pe int) Tracer { return nullTracer{} }
	})
}

// BenchmarkMetricsEnabled runs the dispatch path with a live metrics
// registry, for comparison against BenchmarkDispatchOff (the recording
// itself is also allocation-free).
func BenchmarkMetricsEnabled(b *testing.B) {
	benchDispatch(b, func(cfg *Config) {
		cfg.Metrics = metrics.New(1)
	})
}

// BenchmarkMonitorIdle proves the introspection plane costs the send/
// dispatch path nothing while no probe is in flight: a live monitor
// endpoint is attached (metrics registry and all), nobody polls it,
// and the hot loop must stay allocation-free. The doorbell handler only
// runs when rung, so an idle monitor is invisible to the scheduler.
func BenchmarkMonitorIdle(b *testing.B) {
	cfg := Config{PEs: 1, Watchdog: 5 * time.Minute, Metrics: metrics.New(1)}
	cm := NewMachine(cfg)
	mon, err := cm.StartMonitor("127.0.0.1:0", "")
	if err != nil {
		b.Fatal(err)
	}
	defer mon.Close()
	h := cm.RegisterHandler(func(p *Proc, msg []byte) {})
	err = cm.Run(func(p *Proc) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			msg := p.Alloc(0)
			SetHandler(msg, h)
			p.Enqueue(msg)
			p.ScheduleUntilIdle()
		}
		b.StopTimer()
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMetricsDisabled measures the raw instrumentation hooks on a
// Proc with no registry attached: each must compile down to a nil check
// (sub-5ns, zero allocations).
func BenchmarkMetricsDisabled(b *testing.B) {
	cm := NewMachine(Config{PEs: 1, Watchdog: 5 * time.Minute})
	err := cm.Run(func(p *Proc) {
		b.Run("send-hook", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p.noteSend(0, 64)
			}
		})
		b.Run("recv-hook", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p.noteRecv(0, 64)
			}
		})
		b.Run("enqueue-hook", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p.noteEnqueue()
			}
		})
		b.Run("idle-hook", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p.noteIdleEnd(p.noteIdleStart())
			}
		})
	})
	if err != nil {
		b.Fatal(err)
	}
}
