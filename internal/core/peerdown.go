package core

// Peer-down notification (the failure-notification API). Converse is
// fail-stop by default, but under the FailRetry policy the network
// machine layer keeps the job alive through transient link faults; a
// link that stays down past the recovery window turns into a *peer
// death declaration* instead of job death. The machine layer delivers
// that declaration here as a generalized message to a built-in handler
// (registered uniformly on every processor, like the spanning-tree
// broadcast forwarder), so the upper layers — the load balancer
// re-homing seeds, a language runtime draining an object — observe it
// in ordinary scheduler context with no locking concerns.

import (
	"encoding/binary"
)

// peerDownNotifier is the optional NetSubstrate extension through which
// a machine layer reports a peer declared dead (mnet.Node implements
// it). The callback may run on any goroutine; core immediately re-posts
// it through the message path.
type peerDownNotifier interface {
	SetPeerDownHandler(func(pe int, reason string))
}

// makePeerDownMsg encodes a peer-death declaration as a generalized
// message: [u32 LE pe][reason bytes].
func makePeerDownMsg(handler, pe int, reason string) []byte {
	msg := NewMsg(handler, 4+len(reason))
	pl := Payload(msg)
	binary.LittleEndian.PutUint32(pl[:4], uint32(pe))
	copy(pl[4:], reason)
	return msg
}

// onPeerDown is the built-in handler for peer-death declarations. The
// first declaration for a given peer marks it dead and runs the
// registered callbacks; repeats (possible if the machine layer loses
// several links to the same dying peer) are dropped.
func onPeerDown(p *Proc, msg []byte) {
	pl := Payload(msg)
	if len(pl) < 4 {
		return
	}
	pe := int(binary.LittleEndian.Uint32(pl[:4]))
	if p.deadPEs == nil {
		p.deadPEs = make(map[int]bool)
	}
	if p.deadPEs[pe] {
		return
	}
	p.deadPEs[pe] = true
	reason := string(pl[4:])
	for _, f := range p.peerDownFns {
		f(pe, reason)
	}
}

// NotifyPeerDown registers f to run on this processor, in scheduler
// context, when the machine layer declares a peer dead (FailRetry
// policy, recovery window exhausted). Multiple callbacks run in
// registration order; each dead peer is announced exactly once.
// Register before Run, like handlers.
func (p *Proc) NotifyPeerDown(f func(pe int, reason string)) {
	if f == nil {
		panic("core: NotifyPeerDown(nil)")
	}
	p.peerDownFns = append(p.peerDownFns, f)
}

// PeerAlive reports whether processor pe has not been declared dead.
// Peers are live until the machine layer says otherwise; under the
// simulated substrate or FailFast every peer is always live.
func (p *Proc) PeerAlive(pe int) bool { return !p.deadPEs[pe] }

// PeerDownMsg decodes a peer-death declaration message (for tests and
// diagnostic handlers that re-dispatch it).
func PeerDownMsg(msg []byte) (pe int, reason string, ok bool) {
	pl := Payload(msg)
	if len(pl) < 4 {
		return 0, "", false
	}
	return int(binary.LittleEndian.Uint32(pl[:4])), string(pl[4:]), true
}
