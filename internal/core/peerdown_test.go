package core

import (
	"fmt"
	"testing"
	"time"

	"converse/internal/mnet"
)

// TestFailurePolicyStringsMatchMachineLayer pins the contract that lets
// core declare FailFast/FailRetry without importing mnet outside
// netmachine.go: the strings must be identical.
func TestFailurePolicyStringsMatchMachineLayer(t *testing.T) {
	if FailFast != mnet.FailFast || FailRetry != mnet.FailRetry {
		t.Fatalf("core policies (%q, %q) diverged from mnet (%q, %q)",
			FailFast, FailRetry, mnet.FailFast, mnet.FailRetry)
	}
}

func TestPeerDownNotificationDispatch(t *testing.T) {
	cm := NewMachine(Config{PEs: 2, Watchdog: 10 * time.Second})
	var got []string
	p0 := cm.Proc(0)
	p0.NotifyPeerDown(func(pe int, reason string) {
		got = append(got, fmt.Sprintf("%d:%s", pe, reason))
	})
	p0.NotifyPeerDown(func(pe int, reason string) {
		got = append(got, fmt.Sprintf("second:%d", pe))
	})
	err := cm.Run(func(p *Proc) {
		if p.MyPe() != 0 {
			return
		}
		if !p.PeerAlive(1) {
			t.Error("peer 1 dead before any declaration")
		}
		// The machine layer posts declarations through the message path;
		// emulate two for the same peer — the second must dedupe.
		p.SyncSend(0, makePeerDownMsg(p.peerDownHandler, 1, "recovery window exhausted"))
		p.SyncSend(0, makePeerDownMsg(p.peerDownHandler, 1, "repeat"))
		p.Scheduler(4)
		if p.PeerAlive(1) {
			t.Error("peer 1 still alive after declaration")
		}
		if !p.PeerAlive(0) {
			t.Error("peer 0 wrongly dead")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"1:recovery window exhausted", "second:1"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("callbacks saw %v, want %v", got, want)
	}
}

func TestPeerDownMsgRoundTrip(t *testing.T) {
	msg := makePeerDownMsg(3, 7, "link lost")
	if HandlerOf(msg) != 3 {
		t.Errorf("handler = %d, want 3", HandlerOf(msg))
	}
	pe, reason, ok := PeerDownMsg(msg)
	if !ok || pe != 7 || reason != "link lost" {
		t.Errorf("decoded (%d, %q, %v), want (7, \"link lost\", true)", pe, reason, ok)
	}
	if _, _, ok := PeerDownMsg(NewMsg(0, 2)); ok {
		t.Error("undersized payload decoded")
	}
}

// TestBuiltinHandlerIndicesAligned guards the machine-wide handler
// alignment invariant: the first user-registered handler must get the
// same index on every processor and on a fresh proc that index must be
// 7 (tree bcast, pack, peer-down, doorbell, reduce, barrier root and
// barrier release come first).
func TestBuiltinHandlerIndicesAligned(t *testing.T) {
	cm := NewMachine(Config{PEs: 3})
	idx := cm.RegisterHandler(func(*Proc, []byte) {})
	if idx != 7 {
		t.Fatalf("first user handler index = %d, want 7 (after the seven built-ins)", idx)
	}
}
