package core

// The per-PE sized-class message pool. Together with the
// buffer-ownership protocol (CmiGrabBuffer) it closes the allocation
// loop of the communication fast path: handlers that do not grab their
// buffer return it here, Alloc and the coalescing stage take buffers
// from here, and a steady-state SyncSendAndFree cycle performs no heap
// allocation at all (BenchmarkSendAndFreeSteadyState enforces this).
//
// Buffers are segregated by capacity into a few power-of-four-ish
// classes so a small control message never pins a 64 KB buffer and a
// large allocation never triggers a linear hunt. Each class is a small
// LIFO stack (hot buffers stay cache-warm) with a per-class retention
// bound so the pool cannot hold a high-water mark hostage.

// poolClassSizes are the buffer capacities the pool hands out, in
// bytes of total message (header included). Requests larger than the
// biggest class fall through to the heap and are never pooled.
var poolClassSizes = [...]int{64, 256, 1024, 4096, 16384, 65536}

// poolClassCap bounds the buffers retained per class.
const poolClassCap = 32

// msgPool is the per-processor pool; it is strictly PE-local, like all
// Converse runtime state, so no locking is involved.
type msgPool struct {
	classes [len(poolClassSizes)][][]byte
}

// allocClass returns the index of the smallest class that can serve a
// buffer of want bytes, or -1 if want exceeds every class.
func allocClass(want int) int {
	for i, sz := range poolClassSizes {
		if want <= sz {
			return i
		}
	}
	return -1
}

// recycleClass returns the class a buffer of capacity c feeds, the
// largest class whose allocations it can always satisfy, or -1 when
// the buffer is too small to pool.
func recycleClass(c int) int {
	ci := -1
	for i, sz := range poolClassSizes {
		if c >= sz {
			ci = i
		}
	}
	return ci
}

// Alloc returns a message buffer with at least the given payload
// capacity, reusing recycled buffers when possible (the CMI buffer
// pool). The returned message has its handler field zeroed; the caller
// must SetHandler it. Contents beyond the header are unspecified.
//
//converse:hotpath
func (p *Proc) Alloc(payloadLen int) []byte {
	want := HeaderSize + payloadLen
	ci := allocClass(want)
	if ci >= 0 {
		// Serve from the ideal class, or any larger one that has a
		// buffer spare; upward search keeps the miss rate low when
		// traffic mixes sizes.
		for c := ci; c < len(poolClassSizes); c++ {
			cls := p.pool.classes[c]
			if n := len(cls); n > 0 {
				buf := cls[n-1][:want]
				cls[n-1] = nil
				p.pool.classes[c] = cls[:n-1]
				// Stamp before the header writes below: the buffer is
				// still in the freed state until mcStamp revives it.
				mcStamp(buf)
				//lint:ignore handlerreg Alloc hands out messages with the handler field deliberately zeroed; the caller must SetHandler a registered index before sending.
				SetHandler(buf, 0)
				SetFlags(buf, 0)
				p.notePoolHit()
				return buf
			}
		}
		p.notePoolMiss()
		// Miss: allocate at full class capacity so the buffer recycles
		// back into the same class it serves.
		buf := make([]byte, poolClassSizes[ci])[:want]
		mcStamp(buf)
		return buf
	}
	p.notePoolMiss()
	//lint:ignore handlerreg the oversized-allocation path also returns an unset (zero) handler field for the caller to fill in.
	msg := NewMsg(0, payloadLen)
	mcStamp(msg)
	return msg
}

// recycle returns a buffer to the pool, dropping it when its class is
// full or it is too small to ever serve an allocation.
//
//converse:hotpath
func (p *Proc) recycle(buf []byte) {
	ci := recycleClass(cap(buf))
	pooled := ci >= 0 && len(p.pool.classes[ci]) < poolClassCap
	mcFree(buf, pooled)
	if pooled {
		//lint:ignore noallocinhot the class backing array doubles a few times up to poolClassCap then reuses capacity; steady state appends allocation-free
		p.pool.classes[ci] = append(p.pool.classes[ci], buf[:cap(buf)])
	}
}

// poolLen reports the total buffers currently retained (tests).
func (p *msgPool) poolLen() int {
	n := 0
	for _, c := range p.classes {
		n += len(c)
	}
	return n
}

// notePoolHit records a pooled allocation in the metrics registry.
func (p *Proc) notePoolHit() {
	if p.met != nil {
		p.met.PoolHit()
	}
}

// notePoolMiss records an allocation that fell through to the heap.
func (p *Proc) notePoolMiss() {
	if p.met != nil {
		p.met.PoolMiss()
	}
}
