package core

import (
	"fmt"

	"converse/internal/machine"
	"converse/internal/metrics"
	"converse/internal/queue"
)

// ConverseCosts extends machine.CostModel with the Converse-layer
// software costs: the "few tens of instructions" the framework adds over
// a native implementation (§3), and the scheduler-queue pass measured in
// the Figure 6 experiment. A cost model that implements this interface
// (internal/netmodel.Model does) gets these charged to the virtual
// clock; with any other model they are zero.
type ConverseCosts interface {
	CvsSendOverhead() float64
	CvsRecvOverhead() float64
	SchedOverhead() float64
}

// CoalesceCosts optionally extends a cost model with the per-message
// receive-side cost of splitting a coalesced pack apart
// (netmodel.Model implements it). Without it, unpacking is free in
// virtual time.
type CoalesceCosts interface {
	UnpackOverhead() float64
}

// Tracer receives runtime events for the tracing module (§3.3.2). The
// core, thread, and language layers all emit through this interface;
// internal/trace provides implementations.
type Tracer interface {
	Event(e TraceEvent)
}

// EventKind enumerates the standard trace events that all language
// implementations must record per the paper: message send, receive and
// processing, plus object and thread creation.
type EventKind uint8

// Standard event kinds.
const (
	EvSend          EventKind = iota + 1 // message sent; Src=this PE, Dst, Size, Handler
	EvRecv                               // message picked up from network; Src, Size, Handler
	EvBegin                              // handler processing begins; Handler
	EvEnd                                // handler processing ends; Handler
	EvEnqueue                            // message enqueued in scheduler queue; Handler
	EvThreadCreate                       // thread object created; Aux=thread id
	EvThreadResume                       // thread resumed; Aux=thread id
	EvThreadSuspend                      // thread suspended; Aux=thread id
	EvObjectCreate                       // language-level object created; Aux=object id
	EvUser                               // first self-describing user kind (see internal/trace)
)

// TraceEvent is one trace record in the standard format.
type TraceEvent struct {
	Kind    EventKind
	T       float64 // virtual time, microseconds
	PE      int
	Src     int
	Dst     int
	Size    int
	Handler int
	Aux     int
}

// Proc is one processor's Converse runtime instance: handler table,
// scheduler queue and machine-interface state. Converse keeps all
// runtime state strictly processor-local; a Proc's methods (other than
// those documented as cross-PE, none currently) must be called only from
// its PE's driver goroutine or a thread hand-off chain rooted there.
type Proc struct {
	pe    Substrate
	costs ConverseCosts // nil when the model prices no Converse costs

	// stopq is the substrate's optional stop query (machine.PE, mnet's
	// NodePE and Node all provide one). Scheduler loops poll it so a PE
	// busy with purely local messages — which never blocks in Recv —
	// still notices that the machine was stopped (watchdog, Fail, or an
	// external kill) instead of spinning forever.
	stopq interface{ Stopped() bool }

	handlers []Handler

	q        queue.Sched[[]byte] // the scheduler's queue (pluggable strategies)
	deferred queue.Deque[[]byte] // network messages set aside by GetSpecificMsg

	// Inbound ingestion: machine packets are drained in batches through
	// rbuf, split out of coalesced packs, and queued here as Converse
	// messages (see coalesce.go).
	netq queue.Deque[netMsg]
	rbuf [32]machine.Packet

	// Outbound coalescing state: per-destination staging packs and the
	// total count of staged messages (see coalesce.go).
	co          CoalesceConfig
	stage       []pack
	staged      int
	packHandler int
	unpackOv    float64

	exit bool // set by ExitScheduler

	// Buffer-ownership protocol (CmiGrabBuffer): the CMI owns the
	// buffer of the message currently being handled (dispStack, one
	// frame per nested dispatch) or most recently retrieved (lastGot)
	// unless grabbed; un-grabbed buffers are recycled through pool.
	dispStack []ownedBuf
	lastGot   ownedBuf
	ownSeq    uint64
	pool      msgPool

	// pending asynchronous sends, flushed by the progress engine
	async queue.Deque[*CommHandle]

	// preDispatch hooks run on every network message before handler
	// dispatch; a hook returning true consumes the message (used by the
	// EMI scatter facility).
	pre []func(msg []byte) bool

	tracer Tracer
	met    *metrics.PE // nil when no metrics registry is attached

	// job tags the machine this processor belongs to with its elastic
	// cluster service job name (core.Config.Job); empty for classic
	// batch machines. Immutable after construction, so handlers may
	// read it freely.
	job string

	// treeBcastHandler is the built-in spanning-tree broadcast
	// forwarder (bcast.go), registered first on every processor.
	treeBcastHandler int

	// nodeFirst caches each node's first global PE (the topology is
	// immutable for the life of the machine), so the two-level
	// collectives pay O(1) per tree edge.
	nodeFirst []int

	// Collective state (reduce.go): the built-in reduction and barrier
	// handlers, the combiner registry, in-flight reductions keyed by
	// sequence number, and the barrier release watermark.
	reduceHandler  int
	barRootHandler int
	barRelHandler  int
	combiners      []Combiner
	reds           map[uint64]*reduction
	redSeq         uint64
	barCombiner    int
	barSeq         uint64
	barDone        uint64

	// peerDownHandler is the built-in peer-death declaration handler
	// (peerdown.go); deadPEs and peerDownFns are its processor-local
	// state.
	peerDownHandler int
	deadPEs         map[int]bool
	peerDownFns     []func(pe int, reason string)

	// ext stores per-processor state for higher layers (thread runtime,
	// language runtimes), keyed by package-chosen strings.
	ext map[string]any

	nIdle uint64 // times the scheduler found nothing to do (stats)

	// bell is the monitor doorbell (monitor.go): bellHandler is the
	// built-in handler that publishes scheduler state into the atomic
	// cells; ProbeSchedState rings it from foreign goroutines.
	bellHandler int
	bell        bellState
}

// ownedBuf is one CMI-owned message buffer awaiting grab-or-recycle.
type ownedBuf struct {
	msg     []byte
	grabbed bool
	seq     uint64
}

func newProc(pe Substrate, co CoalesceConfig) *Proc {
	p := &Proc{pe: pe, co: co.normalized(), ext: make(map[string]any)}
	if sq, ok := pe.(interface{ Stopped() bool }); ok {
		p.stopq = sq
	}
	if cc, ok := pe.Model().(ConverseCosts); ok {
		p.costs = cc
	}
	if uc, ok := pe.Model().(CoalesceCosts); ok {
		p.unpackOv = uc.UnpackOverhead()
	}
	// Built-in handlers come first, uniformly on every processor, so
	// user handler indices stay aligned machine-wide.
	p.treeBcastHandler = p.RegisterHandler(onTreeBcast)
	p.packHandler = p.RegisterHandler(onPack)
	p.peerDownHandler = p.RegisterHandler(onPeerDown)
	p.bellHandler = p.RegisterHandler(onDoorbell)
	p.reduceHandler = p.RegisterHandler(onReduce)
	p.barRootHandler = p.RegisterHandler(onBarrierRoot)
	p.barRelHandler = p.RegisterHandler(onBarrierRelease)
	p.barCombiner = p.RegisterCombiner(func(acc, _ []byte) []byte { return acc })
	p.bell.done = make(chan struct{}, 1)
	// Cache the node→first-PE map; the topology is immutable.
	nn := pe.NumNodes()
	p.nodeFirst = make([]int, nn)
	for g := 1; g < nn; g++ {
		p.nodeFirst[g] = p.nodeFirst[g-1] + pe.NodeSize(g-1)
	}
	return p
}

// MyNode returns the node hosting this processor (CmiMyNode). A node is
// a group of PEs sharing a process (network substrates) or a configured
// node map (simulated machine); with no configured topology every PE is
// its own node.
func (p *Proc) MyNode() int { return p.pe.Node() }

// NumNodes returns the machine's node count (CmiNumNodes).
func (p *Proc) NumNodes() int { return p.pe.NumNodes() }

// NodeSize returns the number of PEs hosted by the given node
// (CmiNodeSize).
func (p *Proc) NodeSize(node int) int { return p.pe.NodeSize(node) }

// NodeOf returns the node hosting the given PE (CmiNodeOf).
func (p *Proc) NodeOf(pe int) int { return p.pe.NodeOf(pe) }

// NodeFirstPE returns the lowest-numbered PE of the given node
// (CmiNodeFirst); nodes host contiguous PE ranges.
func (p *Proc) NodeFirstPE(node int) int { return p.nodeFirst[node] }

// MyPe returns this processor's logical id (CmiMyPe).
func (p *Proc) MyPe() int { return p.pe.ID() }

// NumPes returns the machine size (CmiNumPe).
func (p *Proc) NumPes() int { return p.pe.NumPEs() }

// PE exposes the underlying machine-level substrate: the simulated
// processing element (*machine.PE) or the network node (*mnet.Node),
// behind the narrow interface the core consumes.
func (p *Proc) PE() Substrate { return p.pe }

// Timer returns the current virtual time in seconds since startup
// (CmiTimer; "usually has at least microsecond accuracy").
func (p *Proc) Timer() float64 { return p.pe.Clock() / 1e6 }

// TimerUs returns the current virtual time in microseconds.
func (p *Proc) TimerUs() float64 { return p.pe.Clock() }

// RegisterHandler adds a message handler to this processor's table and
// returns its index (CmiRegisterHandler). For SPMD use, register
// handlers in the same order on every processor so indices agree, as in
// Converse itself.
func (p *Proc) RegisterHandler(h Handler) int {
	if h == nil {
		panic("core: RegisterHandler(nil)")
	}
	p.handlers = append(p.handlers, h)
	return len(p.handlers) - 1
}

// HandlerFunc returns the handler function registered under index id
// (CmiGetHandlerFunction).
func (p *Proc) HandlerFunc(id int) Handler {
	if id < 0 || id >= len(p.handlers) {
		panic(fmt.Sprintf("core: pe %d: no handler registered under index %d", p.MyPe(), id))
	}
	return p.handlers[id]
}

// SetTracer installs (or removes, with nil) the event tracer.
func (p *Proc) SetTracer(t Tracer) { p.tracer = t }

// Tracer returns the installed tracer, or nil.
func (p *Proc) Tracer() Tracer { return p.tracer }

// SetMetrics installs (or removes, with nil) this processor's metrics
// registry. Like the tracer it is normally wired machine-wide through
// Config.Metrics.
func (p *Proc) SetMetrics(m *metrics.PE) { p.met = m }

// Metrics returns the processor's metrics registry, or nil when
// observability is off. Higher layers (cth, ldb, language runtimes)
// record through it with a nil check, mirroring the tracer discipline.
func (p *Proc) Metrics() *metrics.PE { return p.met }

// Job returns the name of the elastic-service job this processor's
// machine executes (core.Config.Job), or "" for classic batch
// machines. The tag is immutable for the machine's lifetime.
func (p *Proc) Job() string { return p.job }

// trace emits an event if a tracer is installed.
func (p *Proc) trace(kind EventKind, src, dst, size, handler, aux int) {
	if p.tracer == nil {
		return
	}
	p.tracer.Event(TraceEvent{
		Kind: kind, T: p.pe.Clock(), PE: p.MyPe(),
		Src: src, Dst: dst, Size: size, Handler: handler, Aux: aux,
	})
}

// --- metrics hook points (§3.3.2 observability) ---
//
// Each note* helper is a single nil check when no registry is attached;
// BenchmarkMetricsDisabled asserts the disabled cost (0 allocs, a few
// ns) on the dispatch and send hot paths.

// noteSend records a message sent to dst in the metrics registry.
func (p *Proc) noteSend(dst, n int) {
	if p.met != nil {
		p.met.MsgSent(dst, n)
	}
}

// noteRecv records a message received from src.
func (p *Proc) noteRecv(src, n int) {
	if p.met != nil {
		p.met.MsgRecv(src, n)
	}
}

// noteEnqueue records a scheduler-queue enqueue and its resulting depth.
func (p *Proc) noteEnqueue() {
	if p.met != nil {
		p.met.Enqueued(p.q.Len())
	}
}

// noteIdleStart samples the clock before a blocking network wait.
func (p *Proc) noteIdleStart() float64 {
	if p.met == nil {
		return 0
	}
	return p.pe.Clock()
}

// noteIdleEnd charges the virtual time that passed while blocked idle.
func (p *Proc) noteIdleEnd(from float64) {
	if p.met != nil {
		p.met.SchedIdle(p.pe.Clock() - from)
	}
}

// NoteThreadsSuspended adjusts the substrate's count of suspended
// thread objects, feeding the blocked-state diagnostics (the thread
// layer calls it around suspend/resume). A no-op on substrates that do
// not track block state.
func (p *Proc) NoteThreadsSuspended(delta int) {
	if n, ok := p.pe.(blockStateNoter); ok {
		n.NoteThreadsSuspended(delta)
	}
}

// NoteBarrierWaiters adjusts the substrate's count of threads blocked
// at a synchronization barrier (called by csync.Barrier).
func (p *Proc) NoteBarrierWaiters(delta int) {
	if n, ok := p.pe.(blockStateNoter); ok {
		n.NoteBarrierWaiters(delta)
	}
}

// AddPreDispatch registers a hook that sees every network message before
// handler dispatch; returning true consumes the message. The EMI scatter
// ("advance receive") facility is built on this.
func (p *Proc) AddPreDispatch(f func(msg []byte) bool) { p.pre = append(p.pre, f) }

// SetExt stores per-processor extension state for a higher layer.
func (p *Proc) SetExt(key string, v any) { p.ext[key] = v }

// Ext retrieves extension state stored with SetExt, or nil.
func (p *Proc) Ext(key string) any { return p.ext[key] }

// Printf performs an atomic formatted write to standard output
// (CmiPrintf).
func (p *Proc) Printf(format string, args ...any) { p.pe.Printf(format, args...) }

// Errorf performs an atomic formatted write to standard error
// (CmiError).
func (p *Proc) Errorf(format string, args ...any) { p.pe.Errorf(format, args...) }

// Scanf performs an atomic, blocking formatted read from standard input
// (CmiScanf).
func (p *Proc) Scanf(format string, args ...any) (int, error) {
	return p.pe.Scanf(format, args...)
}

// ScanfAsync is the non-blocking CmiScanf variant: it reads one input
// line and sends it to the given handler on this processor as the
// payload of a generalized message; the recipient can re-scan it
// (fmt.Sscanf), as the paper describes. Delivery happens through the
// normal message path, so the result is picked up by the scheduler.
func (p *Proc) ScanfAsync(handler int) error {
	line, err := p.pe.ReadLine()
	if err != nil {
		return err
	}
	p.SyncSend(p.MyPe(), MakeMsg(handler, []byte(line)))
	return nil
}
