package core

import (
	"encoding/binary"
	"fmt"
)

// Reductions and barriers over the same two-level topology-aware
// spanning tree as the broadcast (bcast.go), with the edge directions
// reversed: every PE contributes one message, contributions merge
// upward — intra-node members into their node's representative, then
// representatives along the binomial inter-node tree — and the fully
// merged message is dispatched on the root, PE 0. Like handler
// registration, reductions match by call order: every processor must
// issue the same sequence of Reduce/Barrier calls with the same
// combiner (the classic CmiReduce discipline).

// Combiner merges the payloads of two reduction contributions and
// returns the merged payload (it may be either argument, possibly
// resliced, or a fresh slice). Contributions merge in arrival order, so
// the operation must be associative and commutative for the result to
// be topology-independent. Combiners are registered with
// RegisterCombiner, in the same order on every processor.
type Combiner func(a, b []byte) []byte

// redHdr is the contribution envelope carried by the built-in reduction
// handler: [seq u64][combiner u32][user handler u32], followed by the
// merged payload so far.
const redHdr = 16

// reduction is one in-flight reduction on this processor: the partial
// merge and how many contributions (self, intra-node members if this PE
// is its node's representative, inter-node child representatives) are
// still expected.
type reduction struct {
	comb    int    // combiner index, -1 until the first contribution
	handler int    // user handler of the final message
	acc     []byte // merged payload so far
	got     int
	need    int
}

// RegisterCombiner adds a payload combiner to this processor's table
// and returns its index (CmiRegisterReduction-style). Like handlers,
// combiners must be registered in the same order on every processor so
// indices agree machine-wide.
func (p *Proc) RegisterCombiner(c Combiner) int {
	if c == nil {
		panic("core: RegisterCombiner(nil)")
	}
	p.combiners = append(p.combiners, c)
	return len(p.combiners) - 1
}

// Reduce contributes msg to a machine-wide reduction (CmiReduce): the
// payloads of all NumPes contributions are merged pairwise with the
// registered combiner and the merged message is delivered — dispatched
// to msg's handler — on PE 0. Every processor must call Reduce in the
// same collective order with the same combiner and handler; the call
// does not block (the contribution merges upward as the schedulers
// run), so a processor that must wait for the result should serve the
// scheduler until its completion handler fires. Transfer passes buffer
// ownership as in Send.
func (p *Proc) Reduce(combiner int, msg []byte, opts ...SendOpt) {
	var o SendOpt
	for _, opt := range opts {
		o |= opt
	}
	p.checkSend(0, msg)
	if combiner < 0 || combiner >= len(p.combiners) {
		panic(fmt.Sprintf("core: pe %d: Reduce with unregistered combiner %d", p.MyPe(), combiner))
	}
	seq := p.redSeq
	p.redSeq++
	r := p.redGet(seq)
	p.redContribute(seq, r, combiner, HandlerOf(msg), Payload(msg))
	if o&Transfer != 0 {
		p.recycle(msg)
	}
}

// redGet finds or creates the reduction with the given sequence number.
// Contributions can arrive from below before this processor reaches its
// own Reduce call for that sequence, so creation is lazy on both paths.
func (p *Proc) redGet(seq uint64) *reduction {
	if p.reds == nil {
		p.reds = make(map[uint64]*reduction)
	}
	r := p.reds[seq]
	if r == nil {
		r = &reduction{comb: -1, need: p.redExpect()}
		p.reds[seq] = r
	}
	return r
}

// redExpect counts the contributions this processor merges per
// reduction: its own, plus — when it is its node's representative —
// one from each other PE of its node and one from each child
// representative in the inter-node binomial tree rooted at node 0.
func (p *Proc) redExpect() int {
	me := p.MyPe()
	g := p.pe.NodeOf(me)
	if me != p.nodeFirst[g] {
		return 1
	}
	need := p.NodeSize(g) // self + intra-node members
	lo, hi := nodeTreeRange(p.NumNodes(), g)
	for hi-lo > 1 {
		mid := (lo + hi + 1) / 2
		need++
		hi = mid
	}
	return need
}

// redContribute merges one contribution into the reduction and, when it
// is the last one expected here, passes the merge upward (or dispatches
// it, on the root).
func (p *Proc) redContribute(seq uint64, r *reduction, comb, handler int, payload []byte) {
	if r.comb >= 0 && r.comb != comb {
		panic(fmt.Sprintf("core: pe %d: reduction %d sees combiner %d after %d (collective call order must match machine-wide)", p.MyPe(), seq, comb, r.comb))
	}
	if r.got > 0 && r.handler != handler {
		panic(fmt.Sprintf("core: pe %d: reduction %d sees handler %d after %d (collective call order must match machine-wide)", p.MyPe(), seq, handler, r.handler))
	}
	r.comb, r.handler = comb, handler
	if r.got == 0 {
		r.acc = append([]byte(nil), payload...)
	} else {
		r.acc = p.combiners[comb](r.acc, payload)
	}
	r.got++
	if r.got < r.need {
		return
	}
	delete(p.reds, seq)
	me := p.MyPe()
	if me == 0 {
		// Root: the reduction is complete; schedule the merged message.
		p.Enqueue(MakeMsg(r.handler, r.acc))
		return
	}
	// Interior: ship the partial merge to the parent — a non-
	// representative's parent is its own representative (an intra-node
	// handoff), a representative's is the representative of its parent
	// node in the binomial tree.
	g := p.pe.NodeOf(me)
	parent := p.nodeFirst[g]
	if me == parent {
		parent = p.nodeFirst[nodeTreeParent(p.NumNodes(), g)]
	}
	env := NewMsg(p.reduceHandler, redHdr+len(r.acc))
	pl := Payload(env)
	binary.LittleEndian.PutUint64(pl[0:], seq)
	binary.LittleEndian.PutUint32(pl[8:], uint32(r.comb))
	binary.LittleEndian.PutUint32(pl[12:], uint32(r.handler))
	copy(pl[redHdr:], r.acc)
	p.SyncSendAndFree(parent, env)
}

// onReduce merges a contribution arriving from below the tree.
func onReduce(p *Proc, msg []byte) {
	pl := Payload(msg)
	seq := binary.LittleEndian.Uint64(pl[0:])
	comb := int(binary.LittleEndian.Uint32(pl[8:]))
	handler := int(binary.LittleEndian.Uint32(pl[12:]))
	r := p.redGet(seq)
	p.redContribute(seq, r, comb, handler, pl[redHdr:])
}

// nodeTreeRange replays the binomial tree construction over [0, nn)
// rooted at node 0 and returns the node range g owned when it acquired
// ownership; the mids of that range's successive halvings are g's
// children, and the previous owner is g's parent.
func nodeTreeRange(nn, g int) (lo, hi int) {
	lo, hi = 0, nn
	for lo != g {
		mid := (lo + hi + 1) / 2
		if g >= mid {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, hi
}

// nodeTreeParent is the parent of node g in the binomial tree rooted at
// node 0 (g must not be 0).
func nodeTreeParent(nn, g int) int {
	lo, hi, parent := 0, nn, -1
	for lo != g {
		mid := (lo + hi + 1) / 2
		if g >= mid {
			parent, lo = lo, mid
		} else {
			hi = mid
		}
	}
	return parent
}

// Barrier blocks until every processor has called Barrier the same
// number of times (CmiBarrier): a reduction of empty contributions into
// PE 0 followed by a broadcast release, both over the two-level tree.
// The caller's scheduler keeps serving while blocked, so messages —
// including other PEs' contributions passing through this one — are
// still handled; like all collectives, every processor must reach the
// same Barrier calls in the same order.
func (p *Proc) Barrier() {
	seq := p.barSeq
	p.barSeq++
	msg := NewMsg(p.barRootHandler, 8)
	binary.LittleEndian.PutUint64(Payload(msg), seq)
	p.Reduce(p.barCombiner, msg, Transfer)
	p.ServeUntil(func() bool { return p.barDone > seq })
}

// onBarrierRoot fires on PE 0 when a barrier's reduction completes:
// every PE has arrived, so broadcast the release.
func onBarrierRoot(p *Proc, msg []byte) {
	rel := MakeMsg(p.barRelHandler, Payload(msg))
	p.Broadcast(rel, Transfer)
}

// onBarrierRelease admits this processor past the released barrier.
func onBarrierRelease(p *Proc, msg []byte) {
	seq := binary.LittleEndian.Uint64(Payload(msg))
	if seq+1 > p.barDone {
		p.barDone = seq + 1
	}
}
