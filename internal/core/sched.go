package core

import (
	"fmt"

	"converse/internal/queue"
)

// This file implements the unified scheduler (Csd) of §3.1.2 and the
// message-retrieval side of the machine interface (CmiGetMsg,
// CmiDeliverMsgs, CmiGetSpecificMsg), including the buffer-ownership
// protocol (CmiGrabBuffer).
//
// The scheduler's job is to repeatedly deliver messages to their
// handlers. There are two kinds of messages waiting to be scheduled:
// messages that have come from the network, and locally generated ones
// sitting in the scheduler's queue. Per the paper's pseudocode
// (Figure 3), each scheduler iteration first extracts as many messages
// as it can from the network, calling the handler for each, and then
// dequeues one message from the scheduler's queue and delivers it to its
// handler.

// Scheduler runs the Converse scheduler loop (CsdScheduler). If nMsgs is
// negative, it loops — blocking when idle — until ExitScheduler is
// called from a handler. Otherwise it processes at most nMsgs messages
// (network deliveries and queue dispatches both count) and returns
// early, without blocking, once both the network and the scheduler's
// queue are empty; this is the ScheduleFor(n) form that lets a
// single-process module grant a bounded amount of execution to
// concurrent modules while it waits for its own data.
// halted reports whether the underlying machine has been stopped out
// from under this processor. The scheduler loops poll it each
// iteration (one atomic load) so that a PE churning through local
// messages — which never reaches the blocking receive where a stop
// normally surfaces — still winds down promptly on watchdog expiry,
// job abort, or machine teardown.
func (p *Proc) halted() bool { return p.stopq != nil && p.stopq.Stopped() }

func (p *Proc) Scheduler(nMsgs int) {
	defer func() { p.exit = false }() // re-arming: scheduler may be re-entered
	remaining := nMsgs
	for !p.exit && remaining != 0 {
		if p.halted() {
			return
		}
		delivered := p.deliverFromNetwork(&remaining)
		if p.exit || remaining == 0 {
			return
		}
		if msg, ok := p.q.Deq(); ok {
			p.chargeSched()
			p.dispatch(msg)
			if remaining > 0 {
				remaining--
			}
			continue
		}
		if delivered == 0 {
			// Nothing from the network and nothing queued.
			if nMsgs >= 0 {
				return // bounded form never blocks
			}
			p.nIdle++
			idleFrom := p.noteIdleStart()
			m, ok := p.recvNetBlock() // block for the network
			if !ok {
				return // machine stopped
			}
			p.noteIdleEnd(idleFrom)
			p.dispatchNet(m.data, m.src)
			if remaining > 0 {
				remaining--
			}
		}
	}
}

// ScheduleUntilIdle runs the scheduler until there are no messages left
// in either the network's queue or the scheduler's queue, then returns.
// It also honors ExitScheduler.
func (p *Proc) ScheduleUntilIdle() {
	defer func() { p.exit = false }()
	for !p.exit {
		if p.halted() {
			return
		}
		n := -1 // sentinel: unbounded within this sweep
		delivered := p.deliverFromNetwork(&n)
		if p.exit {
			return
		}
		msg, ok := p.q.Deq()
		if !ok {
			if delivered == 0 {
				return
			}
			continue
		}
		p.chargeSched()
		p.dispatch(msg)
	}
}

// ExitScheduler makes the innermost running Scheduler/ScheduleUntilIdle
// return once control is back in its loop (CsdExitScheduler). It is
// normally called from a message handler.
func (p *Proc) ExitScheduler() { p.exit = true }

// ServeUntil runs the scheduler loop — network first, then the
// scheduler's queue, blocking when idle — until pred() reports true.
// Unlike GetSpecificMsg it keeps dispatching every message to its
// handler, so remote requests (one-sided operations, reductions) are
// served while waiting; this is the progress discipline synchronous EMI
// calls need to avoid cross-PE deadlock. pred is evaluated between
// messages; the call returns as soon as it holds.
func (p *Proc) ServeUntil(pred func() bool) {
	for !pred() {
		if p.halted() {
			return
		}
		one := 1
		if p.deliverFromNetwork(&one) > 0 {
			continue
		}
		if msg, ok := p.q.Deq(); ok {
			p.chargeSched()
			p.dispatch(msg)
			continue
		}
		idleFrom := p.noteIdleStart()
		m, ok := p.recvNetBlock() // idle: block for the network
		if !ok {
			panic(fmt.Sprintf("core: pe %d: machine stopped in ServeUntil", p.MyPe()))
		}
		p.noteIdleEnd(idleFrom)
		p.dispatchNet(m.data, m.src)
	}
}

// Enqueue places a generalized message in the scheduler's queue in FIFO
// order (CsdEnqueue). It is usually called from a handler that decides
// the message should be processed later rather than immediately; such a
// handler must call GrabBuffer first, since the CMI otherwise reclaims
// the buffer when the handler returns. Enqueue is also how local ready
// entities — threads, delayed calls — are scheduled.
func (p *Proc) Enqueue(msg []byte) {
	p.checkEnqueue(msg)
	p.trace(EvEnqueue, p.MyPe(), p.MyPe(), len(msg), HandlerOf(msg), 0)
	p.q.Enq(msg)
	p.noteEnqueue()
}

// EnqueueLifo places msg at the front of the scheduler's queue
// (CsdEnqueueLifo).
func (p *Proc) EnqueueLifo(msg []byte) {
	p.checkEnqueue(msg)
	p.trace(EvEnqueue, p.MyPe(), p.MyPe(), len(msg), HandlerOf(msg), 0)
	p.q.EnqLifo(msg)
	p.noteEnqueue()
}

// EnqueuePrio places msg in the scheduler's queue with an integer
// priority; smaller values are served first, negative values before all
// unprioritized work (CsdEnqueueGeneral with an integer priority).
func (p *Proc) EnqueuePrio(msg []byte, prio int32) {
	p.checkEnqueue(msg)
	p.trace(EvEnqueue, p.MyPe(), p.MyPe(), len(msg), HandlerOf(msg), 0)
	p.q.EnqPrio(msg, prio)
	p.noteEnqueue()
}

// EnqueueBitVec places msg in the scheduler's queue under a bit-vector
// priority (§2.3: needed by state-space search for consistent and
// monotonic speedups).
func (p *Proc) EnqueueBitVec(msg []byte, prio queue.BitVec) {
	p.checkEnqueue(msg)
	p.trace(EvEnqueue, p.MyPe(), p.MyPe(), len(msg), HandlerOf(msg), 0)
	p.q.EnqBitVec(msg, prio)
	p.noteEnqueue()
}

// QueueLen reports the number of messages in the scheduler's queue.
func (p *Proc) QueueLen() int { return p.q.Len() }

// IdleCount reports how many times the scheduler blocked idle (stats).
func (p *Proc) IdleCount() uint64 { return p.nIdle }

// checkEnqueue enforces the buffer-ownership protocol: enqueueing the
// message currently being handled without grabbing it first would let
// the CMI recycle the buffer while it sits in the queue.
func (p *Proc) checkEnqueue(msg []byte) {
	if len(msg) < HeaderSize {
		panic(fmt.Sprintf("core: pe %d: enqueue of %d-byte message, smaller than the header", p.MyPe(), len(msg)))
	}
	if top := p.topDispatch(); top != nil && !top.grabbed && sameBuffer(msg, top.msg) {
		panic(fmt.Sprintf("core: pe %d: handler enqueued its message buffer without CmiGrabBuffer; the CMI would recycle it", p.MyPe()))
	}
	if p.lastGot.msg != nil && !p.lastGot.grabbed && sameBuffer(msg, p.lastGot.msg) {
		panic(fmt.Sprintf("core: pe %d: enqueue of a retrieved message buffer without CmiGrabBuffer; the CMI would recycle it", p.MyPe()))
	}
}

// sameBuffer reports whether two slices share a backing array start.
func sameBuffer(a, b []byte) bool {
	return len(a) > 0 && len(b) > 0 && &a[0] == &b[0]
}

// --- message retrieval (CMI) ---

// DeliverMsgs retrieves messages that have arrived from the network and
// invokes the handler for each, up to maxMsgs (all available if
// maxMsgs < 0). It returns the number delivered (CmiDeliverMsgs). It
// does not touch the scheduler's queue.
func (p *Proc) DeliverMsgs(maxMsgs int) int {
	return p.deliverFromNetwork(&maxMsgs)
}

// deliverFromNetwork drains deferred and fresh network messages,
// dispatching each, decrementing *budget per message (budget<0 =
// unbounded), and returns the count delivered.
func (p *Proc) deliverFromNetwork(budget *int) int {
	p.Progress()
	n := 0
	for *budget != 0 && !p.exit && !p.halted() {
		if msg, ok := p.deferred.PopFront(); ok {
			p.dispatch(msg) // already charged receive costs at pickup
			n++
			if *budget > 0 {
				*budget--
			}
			continue
		}
		m, ok := p.pullNet()
		if !ok {
			break
		}
		p.dispatchNet(m.data, m.src)
		n++
		if *budget > 0 {
			*budget--
		}
	}
	return n
}

// GetMsg returns a recently received network message without invoking
// its handler (CmiGetMsg), or ok=false if none is available. Buffer
// ownership stays with the CMI: the buffer may be recycled at the next
// retrieval unless GrabBuffer is called.
func (p *Proc) GetMsg() (msg []byte, ok bool) {
	p.Progress()
	if m, ok := p.deferred.PopFront(); ok {
		p.setGot(m)
		return m, true
	}
	m, ok := p.pullNet()
	if !ok {
		return nil, false
	}
	p.chargeRecv()
	p.trace(EvRecv, m.src, p.MyPe(), len(m.data), HandlerOf(m.data), 0)
	p.noteRecv(m.src, len(m.data))
	p.setGot(m.data)
	return m.data, true
}

// GetSpecificMsg waits until a message for the specified handler is
// available and returns it, buffering any messages meant for other
// handlers in arrival order (CmiGetSpecificMsg). It supports
// languages with no concurrency within a process (§2.1): while the
// caller blocks, no other user-space activity takes place and no
// handlers run. Ownership of the returned buffer stays with the CMI
// unless GrabBuffer is called.
func (p *Proc) GetSpecificMsg(handler int) []byte {
	p.Progress()
	// First check messages previously set aside.
	for i := 0; i < p.deferred.Len(); i++ {
		m, _ := p.deferred.PopFront()
		if HandlerOf(m) == handler {
			p.setGot(m)
			return m
		}
		p.deferred.PushBack(m)
	}
	for {
		idleFrom := p.noteIdleStart()
		m, ok := p.recvNetBlock()
		if !ok {
			panic(fmt.Sprintf("core: pe %d: machine stopped while waiting in GetSpecificMsg(%d)", p.MyPe(), handler))
		}
		p.noteIdleEnd(idleFrom)
		p.chargeRecv()
		p.trace(EvRecv, m.src, p.MyPe(), len(m.data), HandlerOf(m.data), 0)
		p.noteRecv(m.src, len(m.data))
		if HandlerOf(m.data) == handler {
			p.setGot(m.data)
			return m.data
		}
		if IsImmediate(m.data) {
			// Preemptive message: its handler runs now, even though
			// this processor is blocked waiting for another handler.
			p.dispatch(m.data)
			continue
		}
		p.deferred.PushBack(m.data)
	}
}

// --- dispatch & buffer ownership ---

// dispatchNet delivers a fresh network message: pre-dispatch hooks
// (EMI scatter) run first; if none consumes it, the receive cost is
// charged and the handler invoked under the ownership protocol.
func (p *Proc) dispatchNet(msg []byte, src int) {
	for _, hook := range p.pre {
		if hook(msg) {
			return
		}
	}
	p.chargeRecv()
	p.trace(EvRecv, src, p.MyPe(), len(msg), HandlerOf(msg), 0)
	p.noteRecv(src, len(msg))
	p.dispatch(msg)
}

// dispatch invokes a message's handler under the buffer-ownership
// protocol: if the handler does not grab the buffer, the CMI reclaims it
// for reuse. Dispatches nest (a handler may invoke the scheduler), so
// in-flight buffers are kept on a stack.
//
//converse:hotpath
func (p *Proc) dispatch(msg []byte) {
	id := HandlerOf(msg)
	h := p.HandlerFunc(id)
	p.ownSeq++
	//lint:ignore noallocinhot the dispatch stack grows to the nesting depth once and reuses capacity thereafter
	p.dispStack = append(p.dispStack, ownedBuf{msg: msg, seq: p.ownSeq})
	var t0 float64
	if p.met != nil {
		t0 = p.pe.Clock()
	}
	p.trace(EvBegin, p.MyPe(), p.MyPe(), len(msg), id, 0)
	h(p, msg)
	p.trace(EvEnd, p.MyPe(), p.MyPe(), len(msg), id, 0)
	if p.met != nil {
		// Only outermost dispatches add scheduler busy time; nested
		// dispatches (a handler invoking the scheduler) would double
		// count it.
		p.met.HandlerDone(id, len(msg), p.pe.Clock()-t0, len(p.dispStack) == 1)
	}
	top := p.dispStack[len(p.dispStack)-1]
	p.dispStack = p.dispStack[:len(p.dispStack)-1]
	if !top.grabbed {
		p.recycle(top.msg)
	}
}

// topDispatch returns the innermost dispatch context, or nil.
func (p *Proc) topDispatch() *ownedBuf {
	if len(p.dispStack) == 0 {
		return nil
	}
	return &p.dispStack[len(p.dispStack)-1]
}

// setGot records msg as the most recently retrieved message (GetMsg /
// GetSpecificMsg), reclaiming the previous one if it was not grabbed.
func (p *Proc) setGot(msg []byte) {
	if p.lastGot.msg != nil && !p.lastGot.grabbed {
		p.recycle(p.lastGot.msg)
	}
	p.ownSeq++
	p.lastGot = ownedBuf{msg: msg, seq: p.ownSeq}
}

// GrabBuffer transfers ownership of the most recently acquired message —
// the one being handled, or the one just returned by
// GetMsg/GetSpecificMsg, whichever is newer — from the CMI to the caller
// (CmiGrabBuffer). A handler that wants to keep its message, for example
// to enqueue it in the scheduler's queue, must call this; otherwise the
// CMI recycles the buffer when the handler returns. It returns the
// (unchanged) buffer for convenience.
func (p *Proc) GrabBuffer() []byte {
	top := p.topDispatch()
	got := &p.lastGot
	switch {
	case top == nil && got.msg == nil:
		panic(fmt.Sprintf("core: pe %d: GrabBuffer outside message handling", p.MyPe()))
	case top == nil || (got.msg != nil && got.seq > top.seq):
		got.grabbed = true
		return got.msg
	default:
		top.grabbed = true
		return top.msg
	}
}

// chargeRecv bills the Converse receive-dispatch cost.
func (p *Proc) chargeRecv() {
	if p.costs != nil {
		p.pe.Charge(p.costs.CvsRecvOverhead())
	}
}

// chargeSched bills the scheduler-queue pass (enqueue+dequeue), the
// Figure 6 experiment's extra cost.
func (p *Proc) chargeSched() {
	if p.costs != nil {
		p.pe.Charge(p.costs.SchedOverhead())
	}
}
