package core

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// newTestMachine builds a small machine with a watchdog so failing tests
// error out instead of hanging.
func newTestMachine(pes int) *Machine {
	return NewMachine(Config{PEs: pes, Watchdog: 10 * time.Second})
}

func TestSchedulerPingPongHandlers(t *testing.T) {
	cm := newTestMachine(2)
	const rounds = 100
	var hPing, hDone int
	count := 0
	hPing = cm.RegisterHandler(func(p *Proc, msg []byte) {
		n := int(Payload(msg)[0])
		if p.MyPe() == 0 {
			count++
		}
		if n == 0 {
			p.SyncSend(1-p.MyPe(), MakeMsg(hDone, nil))
			p.ExitScheduler()
			return
		}
		reply := MakeMsg(hPing, []byte{byte(n - 1)})
		p.SyncSend(1-p.MyPe(), reply)
	})
	hDone = cm.RegisterHandler(func(p *Proc, msg []byte) {
		p.ExitScheduler()
	})
	err := cm.Run(func(p *Proc) {
		if p.MyPe() == 0 {
			p.SyncSend(1, MakeMsg(hPing, []byte{rounds}))
		}
		p.Scheduler(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != rounds/2 {
		t.Fatalf("PE0 handled %d pings, want %d", count, rounds/2)
	}
}

func TestSchedulerBoundedCountsMessages(t *testing.T) {
	cm := newTestMachine(1)
	handled := 0
	h := cm.RegisterHandler(func(p *Proc, msg []byte) { handled++ })
	err := cm.Run(func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.SyncSend(0, MakeMsg(h, nil))
		}
		p.Scheduler(4)
		if handled != 4 {
			t.Errorf("after Scheduler(4): handled = %d, want 4", handled)
		}
		p.Scheduler(100) // returns at idle without blocking
		if handled != 10 {
			t.Errorf("after Scheduler(100): handled = %d, want 10", handled)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScheduleUntilIdleDrainsBothQueues(t *testing.T) {
	cm := newTestMachine(1)
	var log []string
	var hNet, hQ int
	hNet = cm.RegisterHandler(func(p *Proc, msg []byte) {
		log = append(log, "net")
		// Generate local work: a delayed function via the queue.
		p.Enqueue(MakeMsg(hQ, nil))
	})
	hQ = cm.RegisterHandler(func(p *Proc, msg []byte) {
		log = append(log, "queued")
	})
	err := cm.Run(func(p *Proc) {
		p.SyncSend(0, MakeMsg(hNet, nil))
		p.SyncSend(0, MakeMsg(hNet, nil))
		p.ScheduleUntilIdle()
	})
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(log, ",")
	if joined != "net,net,queued,queued" && joined != "net,queued,net,queued" {
		t.Fatalf("order = %v", log)
	}
}

func TestSchedulerNetworkFirst(t *testing.T) {
	// Per Figure 3, each iteration drains the network before taking one
	// message from the scheduler queue.
	cm := newTestMachine(1)
	var order []string
	hq := cm.RegisterHandler(func(p *Proc, msg []byte) { order = append(order, "q") })
	hn := cm.RegisterHandler(func(p *Proc, msg []byte) { order = append(order, "n") })
	err := cm.Run(func(p *Proc) {
		p.Enqueue(MakeMsg(hq, nil))
		p.SyncSend(0, MakeMsg(hn, nil))
		p.Scheduler(2)
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(order, "") != "nq" {
		t.Fatalf("order = %v, want network before queue", order)
	}
}

func TestEnqueuePriorityOrder(t *testing.T) {
	cm := newTestMachine(1)
	var got []byte
	h := cm.RegisterHandler(func(p *Proc, msg []byte) {
		got = append(got, Payload(msg)[0])
	})
	err := cm.Run(func(p *Proc) {
		p.EnqueuePrio(MakeMsg(h, []byte{'c'}), 3)
		p.EnqueuePrio(MakeMsg(h, []byte{'a'}), -7)
		p.Enqueue(MakeMsg(h, []byte{'b'})) // default lane = prio 0
		p.EnqueuePrio(MakeMsg(h, []byte{'d'}), 9)
		p.ScheduleUntilIdle()
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "abcd" {
		t.Fatalf("dispatch order %q, want \"abcd\"", got)
	}
}

func TestEnqueueLifoOrder(t *testing.T) {
	cm := newTestMachine(1)
	var got []byte
	h := cm.RegisterHandler(func(p *Proc, msg []byte) {
		got = append(got, Payload(msg)[0])
	})
	err := cm.Run(func(p *Proc) {
		p.EnqueueLifo(MakeMsg(h, []byte{'1'}))
		p.EnqueueLifo(MakeMsg(h, []byte{'2'}))
		p.ScheduleUntilIdle()
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "21" {
		t.Fatalf("got %q, want \"21\"", got)
	}
}

func TestGetSpecificMsgBuffersOthers(t *testing.T) {
	cm := newTestMachine(2)
	var hA, hB int
	var handled []string
	hA = cm.RegisterHandler(func(p *Proc, msg []byte) { handled = append(handled, "A"+string(Payload(msg))) })
	hB = cm.RegisterHandler(func(p *Proc, msg []byte) { handled = append(handled, "B") })
	err := cm.Run(func(p *Proc) {
		if p.MyPe() == 1 {
			p.SyncSend(0, MakeMsg(hA, []byte("1")))
			p.SyncSend(0, MakeMsg(hA, []byte("2")))
			p.SyncSend(0, MakeMsg(hB, nil))
			return
		}
		// PE0 waits specifically for hB, buffering the hA messages.
		msg := p.GetSpecificMsg(hB)
		if HandlerOf(msg) != hB {
			t.Errorf("GetSpecificMsg returned handler %d", HandlerOf(msg))
		}
		// The buffered hA messages must now be delivered, in order.
		p.Scheduler(2)
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(handled, ",") != "A1,A2" {
		t.Fatalf("handled = %v, want buffered A1 then A2", handled)
	}
}

func TestGetMsg(t *testing.T) {
	cm := newTestMachine(1)
	h := cm.RegisterHandler(func(p *Proc, msg []byte) {})
	err := cm.Run(func(p *Proc) {
		if _, ok := p.GetMsg(); ok {
			t.Error("GetMsg on empty network returned ok")
		}
		p.SyncSend(0, MakeMsg(h, []byte("x")))
		msg, ok := p.GetMsg()
		if !ok || string(Payload(msg)) != "x" {
			t.Errorf("GetMsg = %q,%v", msg, ok)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEnqueueWithoutGrabPanics(t *testing.T) {
	cm := newTestMachine(1)
	var h int
	h = cm.RegisterHandler(func(p *Proc, msg []byte) {
		p.Enqueue(msg) // bug: no GrabBuffer
	})
	err := cm.Run(func(p *Proc) {
		p.SyncSend(0, MakeMsg(h, nil))
		p.Scheduler(1)
	})
	if err == nil || !strings.Contains(err.Error(), "GrabBuffer") {
		t.Fatalf("err = %v, want GrabBuffer protocol violation", err)
	}
}

func TestEnqueueWithGrabWorks(t *testing.T) {
	cm := newTestMachine(1)
	var hIn, hOut int
	done := false
	hIn = cm.RegisterHandler(func(p *Proc, msg []byte) {
		p.GrabBuffer()
		SetHandler(msg, hOut) // the §3.3 second-handler trick
		p.Enqueue(msg)
	})
	hOut = cm.RegisterHandler(func(p *Proc, msg []byte) {
		done = true
	})
	err := cm.Run(func(p *Proc) {
		p.SyncSend(0, MakeMsg(hIn, []byte("payload")))
		p.ScheduleUntilIdle()
	})
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("re-enqueued message never dispatched")
	}
}

func TestBufferRecycling(t *testing.T) {
	// An un-grabbed handler buffer is recycled: a subsequent Alloc of a
	// compatible size returns the same backing array.
	cm := newTestMachine(1)
	var seen []byte
	h := cm.RegisterHandler(func(p *Proc, msg []byte) {
		seen = msg // illegally retained (not grabbed) to observe recycling
	})
	err := cm.Run(func(p *Proc) {
		p.SyncSend(0, MakeMsg(h, make([]byte, 32)))
		p.Scheduler(1)
		buf := p.Alloc(32)
		if !sameBuffer(buf, seen) {
			t.Error("un-grabbed buffer was not recycled by Alloc")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGrabbedBufferNotRecycled(t *testing.T) {
	cm := newTestMachine(1)
	var kept []byte
	h := cm.RegisterHandler(func(p *Proc, msg []byte) {
		kept = p.GrabBuffer()
	})
	err := cm.Run(func(p *Proc) {
		p.SyncSend(0, MakeMsg(h, []byte("keepme!")))
		p.Scheduler(1)
		buf := p.Alloc(7)
		if sameBuffer(buf, kept) {
			t.Error("grabbed buffer was recycled")
		}
		if string(Payload(kept)) != "keepme!" {
			t.Errorf("grabbed buffer content = %q", Payload(kept))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGrabBufferOutsideHandlingPanics(t *testing.T) {
	cm := newTestMachine(1)
	err := cm.Run(func(p *Proc) {
		p.GrabBuffer()
	})
	if err == nil || !strings.Contains(err.Error(), "GrabBuffer") {
		t.Fatalf("err = %v", err)
	}
}

func TestUnregisteredHandlerPanics(t *testing.T) {
	// checkSend rejects a never-registered handler index at send time,
	// before the message crosses to another processor.
	cm := newTestMachine(1)
	err := cm.Run(func(p *Proc) {
		p.SyncSend(0, MakeMsg(99, nil))
		p.Scheduler(1)
	})
	if err == nil || !strings.Contains(err.Error(), "handler index 99") {
		t.Fatalf("err = %v, want unregistered-handler panic", err)
	}
}

func TestNestedScheduler(t *testing.T) {
	// A handler may invoke the scheduler recursively (the SPM module
	// footnote in §3.1.2: invoke a concurrent function, then run the
	// scheduler to process what it deposited).
	cm := newTestMachine(1)
	var order []string
	var hOuter, hInner int
	hInner = cm.RegisterHandler(func(p *Proc, msg []byte) {
		order = append(order, "inner")
	})
	hOuter = cm.RegisterHandler(func(p *Proc, msg []byte) {
		order = append(order, "outer-begin")
		p.Enqueue(MakeMsg(hInner, nil))
		p.Scheduler(1) // nested: processes the inner message
		order = append(order, "outer-end")
	})
	err := cm.Run(func(p *Proc) {
		p.SyncSend(0, MakeMsg(hOuter, nil))
		p.Scheduler(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "outer-begin,inner,outer-end"
	if got := strings.Join(order, ","); got != want {
		t.Fatalf("order = %q, want %q", got, want)
	}
}

func TestExitSchedulerStopsOuterLoopOnly(t *testing.T) {
	cm := newTestMachine(1)
	ran := 0
	var h int
	h = cm.RegisterHandler(func(p *Proc, msg []byte) {
		ran++
		p.ExitScheduler()
	})
	err := cm.Run(func(p *Proc) {
		p.SyncSend(0, MakeMsg(h, nil))
		p.Scheduler(-1)
		// The exit flag must be cleared: a new scheduler call works.
		p.SyncSend(0, MakeMsg(h, nil))
		p.Scheduler(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran != 2 {
		t.Fatalf("handler ran %d times, want 2", ran)
	}
}

func TestSchedulerBlocksIdleUntilMessage(t *testing.T) {
	cm := newTestMachine(2)
	got := false
	var h int
	h = cm.RegisterHandler(func(p *Proc, msg []byte) {
		got = true
		p.ExitScheduler()
	})
	err := cm.Run(func(p *Proc) {
		if p.MyPe() == 0 {
			p.Scheduler(-1) // must block idle, then process the late message
			return
		}
		time.Sleep(50 * time.Millisecond)
		p.SyncSend(0, MakeMsg(h, nil))
	})
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("late message not processed")
	}
}

func TestHandlerFuncLookup(t *testing.T) {
	cm := newTestMachine(1)
	called := false
	h := cm.RegisterHandler(func(p *Proc, msg []byte) { called = true })
	err := cm.Run(func(p *Proc) {
		fn := p.HandlerFunc(h)
		fn(p, MakeMsg(h, nil))
	})
	if err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("HandlerFunc did not return the registered handler")
	}
}

func TestRegisterNilHandlerPanics(t *testing.T) {
	cm := newTestMachine(1)
	defer func() {
		if recover() == nil {
			t.Fatal("RegisterHandler(nil) did not panic")
		}
	}()
	cm.Proc(0).RegisterHandler(nil)
}

func TestPerPEHandlerRegistration(t *testing.T) {
	// Runtime registration on a single Proc works and gets a distinct
	// index space continuation.
	cm := newTestMachine(2)
	shared := cm.RegisterHandler(func(p *Proc, msg []byte) {})
	err := cm.Run(func(p *Proc) {
		local := p.RegisterHandler(func(p *Proc, msg []byte) {})
		if local != shared+1 {
			t.Errorf("pe %d: local handler index = %d, want %d", p.MyPe(), local, shared+1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExtStorage(t *testing.T) {
	cm := newTestMachine(1)
	err := cm.Run(func(p *Proc) {
		if p.Ext("missing") != nil {
			t.Error("Ext of missing key != nil")
		}
		p.SetExt("k", 42)
		if p.Ext("k") != 42 {
			t.Error("Ext round trip failed")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScanfAsyncDeliversLine(t *testing.T) {
	cm := newTestMachine(1)
	cm.SetInput(strings.NewReader("hello 42\n"))
	var gotLine string
	h := cm.RegisterHandler(func(p *Proc, msg []byte) {
		gotLine = string(Payload(msg))
		p.ExitScheduler()
	})
	err := cm.Run(func(p *Proc) {
		if err := p.ScanfAsync(h); err != nil {
			t.Errorf("ScanfAsync: %v", err)
		}
		p.Scheduler(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	var s string
	var n int
	if _, err := fmt.Sscanf(gotLine, "%s %d", &s, &n); err != nil || s != "hello" || n != 42 {
		t.Fatalf("re-scan of %q failed: %v", gotLine, err)
	}
}

func TestImmediateMessagePreemptsBlockingReceive(t *testing.T) {
	cm := newTestMachine(2)
	var log []string
	var hUrgent, hData int
	hUrgent = cm.RegisterHandler(func(p *Proc, msg []byte) {
		log = append(log, "urgent:"+string(Payload(msg)))
	})
	hData = cm.RegisterHandler(func(p *Proc, msg []byte) {})
	err := cm.Run(func(p *Proc) {
		if p.MyPe() == 1 {
			urgent := MakeMsg(hUrgent, []byte("now"))
			SetImmediate(urgent)
			p.SyncSendAndFree(0, urgent)
			p.SyncSendAndFree(0, MakeMsg(hData, nil))
			return
		}
		// Blocked waiting for hData: the immediate message's handler
		// must run during the wait, not after.
		p.GetSpecificMsg(hData)
		log = append(log, "got-data")
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(log, ",") != "urgent:now,got-data" {
		t.Fatalf("log = %v, want urgent handler to preempt the wait", log)
	}
}

func TestNonImmediateDeferredDuringBlockingReceive(t *testing.T) {
	cm := newTestMachine(2)
	ran := false
	var hOther, hData int
	hOther = cm.RegisterHandler(func(p *Proc, msg []byte) { ran = true })
	hData = cm.RegisterHandler(func(p *Proc, msg []byte) {})
	err := cm.Run(func(p *Proc) {
		if p.MyPe() == 1 {
			p.SyncSendAndFree(0, MakeMsg(hOther, nil)) // ordinary
			p.SyncSendAndFree(0, MakeMsg(hData, nil))
			return
		}
		p.GetSpecificMsg(hData)
		if ran {
			t.Error("ordinary message dispatched during GetSpecificMsg")
		}
		p.Scheduler(1)
		if !ran {
			t.Error("deferred message never dispatched")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestImmediateFlagIsolatedFromLanguageFlags(t *testing.T) {
	msg := NewMsg(1, 4)
	SetImmediate(msg)
	SetFlags(msg, 0x7fffffff)
	if !IsImmediate(msg) {
		t.Fatal("SetFlags clobbered the immediate bit")
	}
	if FlagsOf(msg) != 0x7fffffff {
		t.Fatalf("FlagsOf = %#x", FlagsOf(msg))
	}
	msg2 := NewMsg(1, 4)
	SetFlags(msg2, 0xffffffff) // high bit must be masked out
	if IsImmediate(msg2) {
		t.Fatal("language flags leaked into the immediate bit")
	}
}
