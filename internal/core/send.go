package core

import "fmt"

// CommHandle tracks the progress of an asynchronous communication
// operation (CmiAsyncSend and friends). The machine's progress engine —
// which runs whenever the processor enters the scheduler or any receive
// call — completes pending operations; IsSent reports completion.
type CommHandle struct {
	dst      int // destination PE, or a bcast* sentinel
	msg      []byte
	sent     bool
	released bool
}

// Destination sentinels for asynchronous broadcasts.
const (
	bcastOthers = -1 // all processors except the sender
	bcastAll    = -2 // all processors including the sender
)

// SyncSend sends a generalized message to the destination processor
// (CmiSyncSend). When it returns, the caller may reuse or change msg.
func (p *Proc) SyncSend(dst int, msg []byte) {
	p.checkSend(dst, msg)
	p.chargeSend()
	p.trace(EvSend, p.MyPe(), dst, len(msg), HandlerOf(msg), 0)
	p.noteSend(dst, len(msg))
	p.pe.Send(dst, msg)
}

// SyncSendAndFree sends msg transferring ownership: the caller must not
// touch msg afterwards. This avoids the copy that SyncSend makes
// (CmiSyncSendAndFree).
func (p *Proc) SyncSendAndFree(dst int, msg []byte) {
	p.checkSend(dst, msg)
	p.chargeSend()
	p.trace(EvSend, p.MyPe(), dst, len(msg), HandlerOf(msg), 0)
	p.noteSend(dst, len(msg))
	p.pe.SendOwned(dst, msg)
}

// AsyncSend initiates an asynchronous send of msg to dst and returns a
// CommHandle for status enquiry (CmiAsyncSend). The message buffer must
// not be reused or freed until IsSent reports true. The send is
// performed by the progress engine, which runs on every entry to the
// scheduler or a receive call.
func (p *Proc) AsyncSend(dst int, msg []byte) *CommHandle {
	p.checkSend(dst, msg)
	h := &CommHandle{dst: dst, msg: msg}
	p.async.PushBack(h)
	return h
}

// IsSent reports whether the asynchronous operation has completed
// (CmiAsyncMsgSent). It also gives the progress engine a chance to run,
// so polling IsSent in a loop makes progress.
func (p *Proc) IsSent(h *CommHandle) bool {
	if !h.sent {
		p.Progress()
	}
	return h.sent
}

// Release returns the communication handle to the CMI
// (CmiReleaseCommHandle). It does not free the message buffer. Releasing
// an incomplete operation panics, as reusing the handle would race with
// the pending send.
func (p *Proc) Release(h *CommHandle) {
	if !h.sent {
		panic("core: Release of incomplete CommHandle")
	}
	h.released = true
}

// Progress flushes pending asynchronous operations. It is called
// implicitly by the scheduler and all receive paths; explicit calls are
// only needed in long computation loops that never touch the scheduler.
func (p *Proc) Progress() {
	for {
		h, ok := p.async.PopFront()
		if !ok {
			return
		}
		switch {
		case h.dst >= 0:
			p.chargeSend()
			p.trace(EvSend, p.MyPe(), h.dst, len(h.msg), HandlerOf(h.msg), 0)
			p.noteSend(h.dst, len(h.msg))
			p.pe.SendOwned(h.dst, h.msg)
		case h.dst == bcastOthers:
			p.SyncBroadcast(h.msg)
		case h.dst == bcastAll:
			p.SyncBroadcastAll(h.msg)
		}
		h.sent = true
	}
}

// SyncBroadcast sends msg to every processor except this one
// (CmiSyncBroadcast). The broadcast involves only the sender: it is not
// a barrier.
func (p *Proc) SyncBroadcast(msg []byte) {
	p.checkSend(0, msg)
	for dst := 0; dst < p.NumPes(); dst++ {
		if dst != p.MyPe() {
			p.SyncSend(dst, msg)
		}
	}
}

// SyncBroadcastAll sends msg to every processor including this one
// (CmiSyncBroadcastAll). The buffer is not freed.
func (p *Proc) SyncBroadcastAll(msg []byte) {
	p.SyncBroadcast(msg)
	p.SyncSend(p.MyPe(), msg)
}

// SyncBroadcastAllAndFree is SyncBroadcastAll transferring buffer
// ownership: msg must be heap-allocated and untouched afterwards
// (CmiSyncBroadcastAllAndFree).
func (p *Proc) SyncBroadcastAllAndFree(msg []byte) {
	p.SyncBroadcast(msg)
	p.SyncSendAndFree(p.MyPe(), msg)
}

// AsyncBroadcast initiates an asynchronous broadcast to all other
// processors and returns a handle (CmiAsyncBroadcast). msg must not be
// modified until IsSent reports true.
func (p *Proc) AsyncBroadcast(msg []byte) *CommHandle {
	p.checkSend(0, msg)
	// A broadcast handle completes when the progress engine has sent
	// copies to every peer.
	h := &CommHandle{dst: bcastOthers, msg: msg}
	p.async.PushBack(h)
	return h
}

// AsyncBroadcastAll is AsyncBroadcast including this processor.
func (p *Proc) AsyncBroadcastAll(msg []byte) *CommHandle {
	p.checkSend(0, msg)
	h := &CommHandle{dst: bcastAll, msg: msg}
	p.async.PushBack(h)
	return h
}

// VectorSend gathers the given pieces into one contiguous generalized
// message with the given handler and initiates an asynchronous send to
// dst (CmiVectorSend / the EMI gather-send). The pieces are logically
// concatenated in order; they must not be modified until the returned
// handle reports sent.
func (p *Proc) VectorSend(dst int, handler int, pieces ...[]byte) *CommHandle {
	total := 0
	for _, piece := range pieces {
		total += len(piece)
	}
	msg := NewMsg(handler, total)
	off := HeaderSize
	for _, piece := range pieces {
		off += copy(msg[off:], piece)
	}
	return p.AsyncSend(dst, msg)
}

// checkSend validates a message before transmission.
func (p *Proc) checkSend(dst int, msg []byte) {
	if len(msg) < HeaderSize {
		panic(fmt.Sprintf("core: pe %d: send of %d-byte message, smaller than the header", p.MyPe(), len(msg)))
	}
	if dst < 0 || dst >= p.NumPes() {
		panic(fmt.Sprintf("core: pe %d: send to invalid processor %d (machine has %d)", p.MyPe(), dst, p.NumPes()))
	}
}

// chargeSend bills the Converse-layer send overhead to the virtual
// clock.
func (p *Proc) chargeSend() {
	if p.costs != nil {
		p.pe.Charge(p.costs.CvsSendOverhead())
	}
}
