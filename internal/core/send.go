package core

import "fmt"

// CommHandle tracks the progress of an asynchronous communication
// operation (CmiAsyncSend and friends). The machine's progress engine —
// which runs whenever the processor enters the scheduler or any receive
// call — completes pending operations; IsSent reports completion.
type CommHandle struct {
	dst      int // destination PE, or a bcast* sentinel
	msg      []byte
	owned    bool // msg belongs to the runtime (VectorSend): recycle on send
	sent     bool
	released bool
}

// Destination sentinels for broadcasts, usable as the dst of Send and
// AsyncSend-via-progress operations.
const (
	bcastOthers = -1 // all processors except the sender
	bcastAll    = -2 // all processors including the sender

	// BroadcastOthers, as the destination of Send, delivers to every
	// processor except the sender (CmiSyncBroadcast).
	BroadcastOthers = bcastOthers
	// BroadcastAll, as the destination of Send, delivers to every
	// processor including the sender (CmiSyncBroadcastAll).
	BroadcastAll = bcastAll
)

// SendOpt adjusts the behaviour of Send. Options combine with |.
type SendOpt uint8

const (
	// Transfer passes ownership of the message buffer to the runtime: the
	// caller must not touch msg after Send returns, and in exchange the
	// runtime avoids copying it and recycles the buffer into the message
	// pool once transmitted. Without Transfer the caller keeps the buffer
	// and may reuse it immediately.
	Transfer SendOpt = 1 << iota
	// ExcludeSelf makes a collective skip the calling processor:
	// Broadcast delivers to every PE but this one (CmiSyncBroadcast
	// rather than CmiSyncBroadcastAll). Point-to-point sends ignore it.
	ExcludeSelf
)

// Send transmits a generalized message to dst, the single entry point
// the classic CMI send family is defined in terms of:
//
//	Send(dst, msg)                      = CmiSyncSend
//	Send(dst, msg, Transfer)            = CmiSyncSendAndFree
//	Send(BroadcastOthers, msg)          = CmiSyncBroadcast
//	Send(BroadcastAll, msg)             = CmiSyncBroadcastAll
//	Send(BroadcastAll, msg, Transfer)   = CmiSyncBroadcastAllAndFree
//
// dst is a processor number or one of the Broadcast* sentinels. With
// coalescing enabled, small non-immediate messages are staged into a
// per-destination pack and flushed by the progress engine; ordering to
// any single destination is preserved regardless.
func (p *Proc) Send(dst int, msg []byte, opts ...SendOpt) {
	var o SendOpt
	for _, opt := range opts {
		o |= opt
	}
	transfer := o&Transfer != 0
	switch {
	case dst >= 0:
		p.send(dst, msg, transfer)
	case dst == bcastOthers:
		p.broadcast(msg, o|ExcludeSelf)
	case dst == bcastAll:
		p.broadcast(msg, o&^ExcludeSelf)
	default:
		panic(fmt.Sprintf("core: pe %d: Send to invalid destination %d", p.MyPe(), dst))
	}
}

// send is the point-to-point fast path behind every synchronous send:
// validate, charge and record, then either stage into the coalescing
// pack (which copies, so the original can be recycled right away under
// Transfer) or hand the packet to the machine layer.
//
//converse:hotpath
func (p *Proc) send(dst int, msg []byte, transfer bool) {
	p.checkSend(dst, msg)
	p.chargeSend()
	p.trace(EvSend, p.MyPe(), dst, len(msg), HandlerOf(msg), 0)
	p.noteSend(dst, len(msg))
	if p.coalescable(msg) {
		p.stageMsg(dst, msg)
		if transfer {
			p.recycle(msg)
		}
		return
	}
	// Direct path: flush anything staged for dst first so per-pair
	// FIFO order holds across the coalesced/direct boundary.
	p.flushPeer(dst)
	if !transfer {
		// The caller keeps msg, so send a copy — drawn from the pool
		// rather than the heap, so the receiver's recycle feeds a
		// future send's Alloc and the steady state allocates nothing.
		buf := p.Alloc(len(msg) - HeaderSize)
		copy(buf, msg)
		msg = buf
	}
	// Retire before the handoff: once SendOwned returns, the
	// destination processor may already own the backing array.
	mcSend(msg)
	p.pe.SendOwned(dst, msg)
}

// Broadcast delivers msg to every processor through the one two-level
// spanning-tree implementation (bcast.go): binomial inter-node over
// node representatives, then intra-node fan-out. By default the calling
// processor is included (its copy goes through the normal loopback
// path); ExcludeSelf skips it, and Transfer passes buffer ownership as
// in Send. The Send(Broadcast*) sentinels and the CmiSyncBroadcast
// family are all defined in terms of this entry point.
func (p *Proc) Broadcast(msg []byte, opts ...SendOpt) {
	var o SendOpt
	for _, opt := range opts {
		o |= opt
	}
	p.broadcast(msg, o)
}

// broadcast is the single fan-out path behind every broadcast form.
// Validation runs up front so a bad header panics identically for every
// destination form, before any copy is staged or the buffer recycled —
// not only if some per-peer send happens to run (a 1-PE broadcast of
// others sends nothing). The broadcast involves only the sender: it is
// not a barrier.
func (p *Proc) broadcast(msg []byte, o SendOpt) {
	p.checkSend(p.MyPe(), msg)
	p.bcastTree(msg)
	if o&ExcludeSelf == 0 {
		p.send(p.MyPe(), msg, o&Transfer != 0)
	} else if o&Transfer != 0 {
		p.recycle(msg)
	}
}

// SyncSend sends a generalized message to the destination processor
// (CmiSyncSend). When it returns, the caller may reuse or change msg.
// It is Send(dst, msg).
func (p *Proc) SyncSend(dst int, msg []byte) { p.send(dst, msg, false) }

// SyncSendAndFree sends msg transferring ownership: the caller must not
// touch msg afterwards. This avoids the copy that SyncSend makes and
// recycles the buffer through the message pool (CmiSyncSendAndFree).
// It is Send(dst, msg, Transfer).
func (p *Proc) SyncSendAndFree(dst int, msg []byte) { p.send(dst, msg, true) }

// AsyncSend initiates an asynchronous send of msg to dst and returns a
// CommHandle for status enquiry (CmiAsyncSend). The message buffer must
// not be modified until IsSent reports true; it remains owned by the
// caller. The send is performed by the progress engine, which runs on
// every entry to the scheduler or a receive call.
func (p *Proc) AsyncSend(dst int, msg []byte) *CommHandle {
	p.checkSend(dst, msg)
	h := &CommHandle{dst: dst, msg: msg}
	p.async.PushBack(h)
	return h
}

// IsSent reports whether the asynchronous operation has completed
// (CmiAsyncMsgSent). It also gives the progress engine a chance to run,
// so polling IsSent in a loop makes progress.
func (p *Proc) IsSent(h *CommHandle) bool {
	if !h.sent {
		p.Progress()
	}
	return h.sent
}

// Release returns the communication handle to the CMI
// (CmiReleaseCommHandle). It does not free a caller-owned message
// buffer. Releasing an incomplete operation panics, as reusing the
// handle would race with the pending send.
func (p *Proc) Release(h *CommHandle) {
	if !h.sent {
		panic("core: Release of incomplete CommHandle")
	}
	h.released = true
}

// Progress runs the progress engine: it completes pending asynchronous
// operations and flushes staged coalescing packs. It is called
// implicitly by the scheduler and all receive paths; explicit calls are
// only needed in long computation loops that never touch the scheduler.
func (p *Proc) Progress() {
	for {
		h, ok := p.async.PopFront()
		if !ok {
			break
		}
		switch {
		case h.dst >= 0:
			// The caller keeps ownership of an async buffer, so the
			// send must copy (staging copies; the direct path copies
			// via pe.Send) — except for runtime-owned buffers
			// (VectorSend), which transfer and recycle.
			p.send(h.dst, h.msg, h.owned)
			if h.owned {
				h.msg = nil
			}
		case h.dst == bcastOthers:
			p.broadcast(h.msg, ExcludeSelf)
		case h.dst == bcastAll:
			p.broadcast(h.msg, 0)
		}
		h.sent = true
	}
	p.flushAll()
}

// SyncBroadcast sends msg to every processor except this one
// (CmiSyncBroadcast). It is Send(BroadcastOthers, msg).
func (p *Proc) SyncBroadcast(msg []byte) { p.Send(BroadcastOthers, msg) }

// SyncBroadcastAll sends msg to every processor including this one
// (CmiSyncBroadcastAll). The buffer is not freed. It is
// Send(BroadcastAll, msg).
func (p *Proc) SyncBroadcastAll(msg []byte) { p.Send(BroadcastAll, msg) }

// SyncBroadcastAllAndFree is SyncBroadcastAll transferring buffer
// ownership: msg must not be touched afterwards
// (CmiSyncBroadcastAllAndFree). It is Send(BroadcastAll, msg, Transfer).
func (p *Proc) SyncBroadcastAllAndFree(msg []byte) { p.Send(BroadcastAll, msg, Transfer) }

// AsyncBroadcast initiates an asynchronous broadcast to all other
// processors and returns a handle (CmiAsyncBroadcast). msg must not be
// modified until IsSent reports true.
func (p *Proc) AsyncBroadcast(msg []byte) *CommHandle {
	p.checkSend(0, msg)
	// A broadcast handle completes when the progress engine has sent
	// copies to every peer.
	h := &CommHandle{dst: bcastOthers, msg: msg}
	p.async.PushBack(h)
	return h
}

// AsyncBroadcastAll is AsyncBroadcast including this processor.
func (p *Proc) AsyncBroadcastAll(msg []byte) *CommHandle {
	p.checkSend(0, msg)
	h := &CommHandle{dst: bcastAll, msg: msg}
	p.async.PushBack(h)
	return h
}

// VectorSend gathers the given pieces into one contiguous generalized
// message with the given handler and initiates an asynchronous send to
// dst (CmiVectorSend / the EMI gather-send). The pieces are logically
// concatenated in order; they must not be modified until the returned
// handle reports sent. The gathered buffer comes from and returns to
// the message pool.
func (p *Proc) VectorSend(dst int, handler int, pieces ...[]byte) *CommHandle {
	total := 0
	for _, piece := range pieces {
		total += len(piece)
	}
	msg := p.Alloc(total)
	SetHandler(msg, handler)
	off := HeaderSize
	for _, piece := range pieces {
		off += copy(msg[off:], piece)
	}
	h := p.AsyncSend(dst, msg)
	h.owned = true
	return h
}

// checkSend validates a message before transmission: it must be at
// least a header, carry a handler index some processor has registered,
// and go to a processor that exists.
//
//converse:hotpath
func (p *Proc) checkSend(dst int, msg []byte) {
	if len(msg) < HeaderSize {
		panic(fmt.Sprintf("core: pe %d: send of %d-byte message, smaller than the %d-byte header", p.MyPe(), len(msg), HeaderSize))
	}
	if h := HandlerOf(msg); h < 0 || h >= len(p.handlers) {
		panic(fmt.Sprintf("core: pe %d: send of message with handler index %d, but only %d handlers are registered (forgot RegisterHandler, or sent a corrupt header?)", p.MyPe(), h, len(p.handlers)))
	}
	if dst < 0 || dst >= p.NumPes() {
		panic(fmt.Sprintf("core: pe %d: send to invalid processor %d (machine has %d)", p.MyPe(), dst, p.NumPes()))
	}
}

// chargeSend bills the Converse-layer send overhead to the virtual
// clock.
func (p *Proc) chargeSend() {
	if p.costs != nil {
		p.pe.Charge(p.costs.CvsSendOverhead())
	}
}
