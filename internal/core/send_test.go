package core

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"converse/internal/netmodel"
)

func TestSyncSendBufferReusable(t *testing.T) {
	cm := newTestMachine(2)
	var got string
	h := cm.RegisterHandler(func(p *Proc, msg []byte) {
		got = string(Payload(msg))
		p.ExitScheduler()
	})
	err := cm.Run(func(p *Proc) {
		if p.MyPe() == 0 {
			msg := MakeMsg(h, []byte("first"))
			p.SyncSend(1, msg)
			copy(Payload(msg), "XXXXX") // allowed after SyncSend returns
			return
		}
		p.Scheduler(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != "first" {
		t.Fatalf("receiver saw %q", got)
	}
}

func TestAsyncSendProgress(t *testing.T) {
	cm := newTestMachine(2)
	h := cm.RegisterHandler(func(p *Proc, msg []byte) { p.ExitScheduler() })
	err := cm.Run(func(p *Proc) {
		if p.MyPe() == 0 {
			msg := MakeMsg(h, []byte("async"))
			hdl := p.AsyncSend(1, msg)
			// The send completes through the progress engine.
			for !p.IsSent(hdl) {
			}
			p.Release(hdl)
			return
		}
		p.Scheduler(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAsyncSendDeferredUntilProgress(t *testing.T) {
	cm := newTestMachine(2)
	h := cm.RegisterHandler(func(p *Proc, msg []byte) {})
	cm.Proc(0) // silence linters; real assertions below
	err := cm.Run(func(p *Proc) {
		if p.MyPe() != 0 {
			return
		}
		hdl := p.AsyncSend(1, MakeMsg(h, nil))
		if hdl.sent {
			t.Error("AsyncSend completed synchronously; want deferral to progress engine")
		}
		other := cm.Machine().PE(1)
		if other.InboxLen() != 0 {
			t.Error("message transmitted before progress engine ran")
		}
		p.Progress()
		if !hdl.sent {
			t.Error("Progress did not complete the send")
		}
		if other.InboxLen() != 1 {
			t.Error("message not delivered after Progress")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReleaseIncompleteHandlePanics(t *testing.T) {
	cm := newTestMachine(2)
	h := cm.RegisterHandler(func(p *Proc, msg []byte) {})
	err := cm.Run(func(p *Proc) {
		if p.MyPe() != 0 {
			return
		}
		hdl := p.AsyncSend(1, MakeMsg(h, nil))
		p.Release(hdl) // incomplete: must panic
	})
	if err == nil {
		t.Fatal("Release of incomplete handle did not error")
	}
}

func TestSyncBroadcastExcludesSelf(t *testing.T) {
	const pes = 5
	cm := NewMachine(Config{PEs: pes, Watchdog: 10 * time.Second})
	recv := make([]int, pes)
	h := cm.RegisterHandler(func(p *Proc, msg []byte) {
		recv[p.MyPe()]++
		p.ExitScheduler()
	})
	err := cm.Run(func(p *Proc) {
		if p.MyPe() == 2 {
			p.SyncBroadcast(MakeMsg(h, nil))
			p.Scheduler(2) // drains nothing; must not receive own broadcast
			return
		}
		p.Scheduler(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	for pe, n := range recv {
		want := 1
		if pe == 2 {
			want = 0
		}
		if n != want {
			t.Errorf("PE %d received %d, want %d", pe, n, want)
		}
	}
}

func TestSyncBroadcastAllIncludesSelf(t *testing.T) {
	const pes = 4
	cm := NewMachine(Config{PEs: pes, Watchdog: 10 * time.Second})
	recv := make([]int, pes)
	h := cm.RegisterHandler(func(p *Proc, msg []byte) {
		recv[p.MyPe()]++
		p.ExitScheduler()
	})
	err := cm.Run(func(p *Proc) {
		if p.MyPe() == 0 {
			p.SyncBroadcastAllAndFree(MakeMsg(h, []byte("bcast")))
		}
		p.Scheduler(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	for pe, n := range recv {
		if n != 1 {
			t.Errorf("PE %d received %d, want 1", pe, n)
		}
	}
}

func TestAsyncBroadcast(t *testing.T) {
	const pes = 4
	cm := NewMachine(Config{PEs: pes, Watchdog: 10 * time.Second})
	recv := make([]int, pes)
	h := cm.RegisterHandler(func(p *Proc, msg []byte) {
		recv[p.MyPe()]++
		p.ExitScheduler()
	})
	err := cm.Run(func(p *Proc) {
		if p.MyPe() == 1 {
			hdl := p.AsyncBroadcast(MakeMsg(h, nil))
			for !p.IsSent(hdl) {
			}
			return
		}
		p.Scheduler(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	for pe, n := range recv {
		want := 1
		if pe == 1 {
			want = 0
		}
		if n != want {
			t.Errorf("PE %d received %d, want %d", pe, n, want)
		}
	}
}

func TestVectorSendGathers(t *testing.T) {
	cm := newTestMachine(2)
	var got []byte
	h := cm.RegisterHandler(func(p *Proc, msg []byte) {
		got = append([]byte(nil), Payload(msg)...)
		p.ExitScheduler()
	})
	err := cm.Run(func(p *Proc) {
		if p.MyPe() == 0 {
			a, b, c := []byte("one,"), []byte("two,"), []byte("three")
			hdl := p.VectorSend(1, h, a, b, c)
			for !p.IsSent(hdl) {
			}
			return
		}
		p.Scheduler(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("one,two,three")) {
		t.Fatalf("gathered payload = %q", got)
	}
}

func TestVectorSendEmptyPieces(t *testing.T) {
	cm := newTestMachine(1)
	var n = -1
	h := cm.RegisterHandler(func(p *Proc, msg []byte) {
		n = len(Payload(msg))
		p.ExitScheduler()
	})
	err := cm.Run(func(p *Proc) {
		p.VectorSend(0, h)
		p.Scheduler(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("payload length = %d, want 0", n)
	}
}

func TestSendToInvalidPePanics(t *testing.T) {
	cm := newTestMachine(2)
	h := cm.RegisterHandler(func(p *Proc, msg []byte) {})
	err := cm.Run(func(p *Proc) {
		if p.MyPe() == 0 {
			p.SyncSend(5, MakeMsg(h, nil))
		}
	})
	if err == nil {
		t.Fatal("send to invalid PE did not error")
	}
}

func TestSendShortMessagePanics(t *testing.T) {
	cm := newTestMachine(2)
	err := cm.Run(func(p *Proc) {
		if p.MyPe() == 0 {
			p.SyncSend(1, []byte{1, 2}) // smaller than header
		}
	})
	if err == nil {
		t.Fatal("short send did not error")
	}
}

// TestBroadcastValidationParity: every destination form of Send runs
// the same checkSend validation, so an unregistered handler index is
// rejected identically for point-to-point sends and for both broadcast
// sentinels — including the degenerate 1-PE BroadcastOthers, where no
// per-peer send ever runs to catch it late.
func TestBroadcastValidationParity(t *testing.T) {
	badMsg := func() []byte {
		msg := make([]byte, HeaderSize)
		SetHandler(msg, 9999) // never registered
		return msg
	}
	sends := map[string]func(p *Proc){
		"p2p":                  func(p *Proc) { p.SyncSend(0, badMsg()) },
		"broadcast-others":     func(p *Proc) { p.SyncBroadcast(badMsg()) },
		"broadcast-all":        func(p *Proc) { p.SyncBroadcastAll(badMsg()) },
		"broadcast-all-free":   func(p *Proc) { p.SyncBroadcastAllAndFree(badMsg()) },
		"send-others-transfer": func(p *Proc) { p.Send(BroadcastOthers, badMsg(), Transfer) },
	}
	for _, pes := range []int{1, 2} {
		for name, send := range sends {
			cm := newTestMachine(pes)
			cm.RegisterHandler(func(p *Proc, msg []byte) {})
			err := cm.Run(func(p *Proc) {
				if p.MyPe() == 0 {
					send(p)
				}
			})
			if err == nil || !strings.Contains(err.Error(), "handler index") {
				t.Errorf("%d PEs, %s: err = %v, want unregistered-handler panic", pes, name, err)
			}
		}
	}
}

// TestModeledTimingMatchesNetmodel ties core dispatch to the virtual
// clock: a ping-pong over the MyrinetFM model must cost exactly
// 2*OneWayConverse per round trip.
func TestModeledTimingMatchesNetmodel(t *testing.T) {
	mod := netmodel.MyrinetFM()
	cm := NewMachine(Config{PEs: 2, Model: mod, Watchdog: 10 * time.Second})
	const rounds = 10
	const size = 64
	h := cm.RegisterHandler(func(p *Proc, msg []byte) {})
	var elapsed float64
	err := cm.Run(func(p *Proc) {
		msg := NewMsg(h, size-HeaderSize)
		if p.MyPe() == 0 {
			start := p.TimerUs()
			for i := 0; i < rounds; i++ {
				p.SyncSend(1, msg)
				p.GetSpecificMsg(h)
			}
			elapsed = p.TimerUs() - start
			return
		}
		for i := 0; i < rounds; i++ {
			p.GetSpecificMsg(h)
			p.SyncSend(0, msg)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := rounds * 2 * mod.OneWayConverse(size)
	if math.Abs(elapsed-want) > 1e-6 {
		t.Fatalf("elapsed = %v us, want %v (model OneWayConverse=%v)",
			elapsed, want, mod.OneWayConverse(size))
	}
}
