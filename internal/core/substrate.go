package core

import "converse/internal/machine"

// Substrate is the narrow machine interface the Converse core actually
// consumes — the seam the paper calls the only machine-dependent layer
// (CMI/MMI). Everything above it (scheduler, handlers, threads,
// language runtimes) is substrate-agnostic: the simulated multicomputer
// (internal/machine.PE) and the TCP network layer (internal/mnet.Node)
// both satisfy it, and a program switches between them purely by
// configuration.
//
// The clock is in microseconds: virtual time under the simulated
// machine, wall time since node start under a network substrate (where
// Charge and AdvanceTo are no-ops, since real time advances itself).
type Substrate interface {
	// ID is the processor's logical number (CmiMyPe).
	ID() int
	// NumPEs is the machine size (CmiNumPe).
	NumPEs() int
	// Node is the node hosting this processor (CmiMyNode). A node is a
	// group of PEs that share a process (network substrates) or a
	// configured node map (the simulated machine): traffic inside it is
	// an in-memory handoff, traffic between nodes crosses the wire. PEs
	// are numbered so each node's PEs are contiguous. With no configured
	// topology every PE is its own node and Node() == ID().
	Node() int
	// NumNodes is the machine's node count (CmiNumNodes).
	NumNodes() int
	// NodeSize is the number of PEs hosted by the given node
	// (CmiNodeSize).
	NodeSize(node int) int
	// NodeOf is the node hosting the given PE (CmiNodeOf).
	NodeOf(pe int) int
	// Clock returns the current time in microseconds (CmiTimer).
	Clock() float64
	// Charge advances the clock by dt microseconds of modeled software
	// cost (no-op on wall-clock substrates).
	Charge(dt float64)
	// AdvanceTo moves the clock forward to t if t is later than now
	// (no-op on wall-clock substrates).
	AdvanceTo(t float64)
	// SendOwned transmits data to dst, taking ownership of the slice.
	SendOwned(dst int, data []byte)
	// TryRecvBatch fills out with up to len(out) inbound packets
	// without blocking and returns the count.
	TryRecvBatch(out []machine.Packet) int
	// Recv blocks until a packet arrives; ok=false means the machine
	// stopped while waiting.
	Recv() (machine.Packet, bool)
	// Model returns the communication cost model, or nil when
	// communication is priced by the real world (network substrates) or
	// free (functional mode).
	Model() machine.CostModel
	// Printf/Errorf perform atomic console writes (CmiPrintf/CmiError);
	// on a network substrate they are relayed to the launcher.
	Printf(format string, args ...any)
	Errorf(format string, args ...any)
	// Scanf/ReadLine perform atomic console reads (CmiScanf).
	Scanf(format string, args ...any) (int, error)
	ReadLine() (string, error)
}

// NetSubstrate extends Substrate with the job-level lifecycle of an
// out-of-process machine layer: the rendezvous barriers around Run, and
// asynchronous failure (a peer process died, the launcher vanished).
// internal/mnet.Node implements it.
type NetSubstrate interface {
	Substrate
	// Active reports whether this node is one of the machine's NumPEs
	// processors. A job may hold more worker processes than the machine
	// has PEs (converserun -np 4 running a 2-PE program); surplus nodes
	// are inactive: they participate in the rendezvous barriers but
	// never run the driver.
	Active() bool
	// Start completes the go-barrier: it returns once every node's mesh
	// is fully connected, so the first user send cannot race an accept.
	Start() error
	// Finish runs the termination barrier: the node announces that its
	// driver returned and blocks until every active node has done so,
	// then tears down its links. Converse programs coordinate their own
	// completion, so no node may close connections before all are done.
	Finish() error
	// Fail reports a local fatal error to the whole job; the launcher
	// tears everything down. Converse is not fault-tolerant: the only
	// job-level response to a failure is a fast, loud exit.
	Fail(err error)
	// Failure delivers at most one asynchronous job failure (peer death,
	// heartbeat loss, launcher gone).
	Failure() <-chan error
	// Stop unblocks a driver waiting in Recv (ok=false), like
	// machine.Machine.Stop.
	Stop()
	// DescribeBlocked reports the local node's block state in the
	// machine layer's shared diagnostic format, for failure reports.
	DescribeBlocked() string
}

// blockStateNoter is the optional substrate extension behind the
// Proc.NoteThreadsSuspended/NoteBarrierWaiters hooks; both the
// simulated PE and the network node implement it.
type blockStateNoter interface {
	NoteThreadsSuspended(delta int)
	NoteBarrierWaiters(delta int)
}
