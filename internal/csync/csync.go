// Package csync implements the Converse synchronization mechanisms of
// §3.2.3 and appendix §6: locks (mutexes), condition variables, and
// barriers, built purely on thread objects (internal/cth).
//
// These are *cooperative* primitives for Converse threads on a single
// processor: a thread that cannot proceed is queued on the primitive and
// suspended; releasing/signalling shifts ownership to the first waiter
// and awakens it (so it continues when its scheduler strategy runs it).
// They intentionally mirror the paper's semantics — the functionality is
// "an extension of the Posix threads standard ... [with] the scheduler
// separated out".
package csync

import (
	"fmt"

	"converse/internal/cth"
	"converse/internal/queue"
)

// Lock is a mutual-exclusion lock with a FIFO waiter queue (CtsLock).
// The zero value is not usable; create locks with NewLock on the owning
// processor's thread runtime.
type Lock struct {
	rt      *cth.Runtime
	owner   *cth.Thread
	waiters queue.Deque[*cth.Thread]
}

// NewLock creates an unlocked lock (CtsNewLock).
func NewLock(rt *cth.Runtime) *Lock { return &Lock{rt: rt} }

// TryLock attempts to take the lock without blocking (CtsTryLock). It
// returns true and makes the current thread the owner if the lock was
// free, false otherwise.
func (l *Lock) TryLock() bool {
	if l.owner != nil {
		return false
	}
	l.owner = l.rt.Self()
	return true
}

// Lock blocks the calling thread until it owns the lock (CtsLock).
// Several threads making this call queue up and receive the lock in FIFO
// order. Locking from the main (scheduler) context succeeds only if the
// lock is free, since the main context cannot suspend.
func (l *Lock) Lock() {
	if l.TryLock() {
		return
	}
	self := l.rt.Self()
	if self == l.owner {
		panic("csync: recursive Lock by owner")
	}
	l.waiters.PushBack(self)
	l.rt.Suspend()
	// When we are awakened, Unlock has already made us the owner.
	if l.owner != self {
		panic("csync: awakened waiter does not own the lock")
	}
}

// Unlock releases the lock (CtsUnLock). If threads are queued, ownership
// shifts to the first waiter, which is awakened. Unlock returns an error
// if the caller is not the owner.
func (l *Lock) Unlock() error {
	if l.owner != l.rt.Self() {
		return fmt.Errorf("csync: Unlock by non-owner thread")
	}
	next, ok := l.waiters.PopFront()
	if !ok {
		l.owner = nil
		return nil
	}
	l.owner = next
	l.rt.Awaken(next)
	return nil
}

// Locked reports whether the lock is currently held.
func (l *Lock) Locked() bool { return l.owner != nil }

// Cond is a condition variable (CtsNewCondn): several threads may block
// on it; Signal unblocks one, Broadcast unblocks all.
type Cond struct {
	rt      *cth.Runtime
	waiters queue.Deque[*cth.Thread]
}

// NewCond creates a condition variable.
func NewCond(rt *cth.Runtime) *Cond { return &Cond{rt: rt} }

// Wait suspends the calling thread on the condition variable
// (CtsCondnWait) until Signal or Broadcast releases it.
func (c *Cond) Wait() {
	c.waiters.PushBack(c.rt.Self())
	c.rt.Suspend()
}

// Signal awakens one thread waiting on the condition variable
// (CtsCondnSignal), in FIFO order. It is a no-op if none wait.
func (c *Cond) Signal() {
	if t, ok := c.waiters.PopFront(); ok {
		c.rt.Awaken(t)
	}
}

// Broadcast awakens all threads waiting on the condition variable
// (CtsCondnBroadcast).
func (c *Cond) Broadcast() {
	for {
		t, ok := c.waiters.PopFront()
		if !ok {
			return
		}
		c.rt.Awaken(t)
	}
}

// Waiting reports the number of threads blocked on the condition.
func (c *Cond) Waiting() int { return c.waiters.Len() }

// Barrier makes a group of k threads wait for each other: it is "a
// condition variable whose kth wait is a broadcast" (appendix §6.3).
type Barrier struct {
	cond *Cond
	need int
	have int
}

// NewBarrier creates a barrier awaiting no threads; call Reinit to arm
// it (CtsNewBarrier).
func NewBarrier(rt *cth.Runtime) *Barrier { return &Barrier{cond: NewCond(rt)} }

// Reinit frees any threads currently waiting and re-arms the barrier to
// await num threads (CtsBarrierReinit).
func (b *Barrier) Reinit(num int) {
	if num < 0 {
		panic("csync: Barrier.Reinit with negative count")
	}
	b.cond.Broadcast()
	b.need = num
	b.have = 0
}

// Arrive blocks the calling thread at the barrier; the arrival of the
// num-th thread (per Reinit) releases them all (CtsAtBarrier). The
// barrier then awaits the next group of num threads.
func (b *Barrier) Arrive() {
	b.have++
	if b.have >= b.need {
		b.have = 0
		b.cond.Broadcast()
		return
	}
	p := b.cond.rt.Proc()
	p.NoteBarrierWaiters(1)
	b.cond.Wait()
	p.NoteBarrierWaiters(-1)
}

// Waiting reports how many threads are currently blocked at the barrier.
func (b *Barrier) Waiting() int { return b.cond.Waiting() }
