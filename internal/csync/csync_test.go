package csync

import (
	"strings"
	"testing"
	"time"

	"converse/internal/core"
	"converse/internal/cth"
)

// run executes body on a 1-PE machine with a thread runtime.
func run(t *testing.T, body func(p *core.Proc, rt *cth.Runtime)) {
	t.Helper()
	cm := core.NewMachine(core.Config{PEs: 1, Watchdog: 10 * time.Second})
	err := cm.Run(func(p *core.Proc) {
		body(p, cth.Init(p))
	})
	if err != nil {
		t.Fatal(err)
	}
}

// drain resumes ready-pool threads until the pool is empty.
func drain(rt *cth.Runtime) {
	for rt.ReadyLen() > 0 {
		// Create a trampoline: suspend into the pool from a thread.
		th := rt.Create(func() {})
		th.SetStrategy(nil, nil)
		rt.Resume(th) // exiting thread's suspend strategy pops the pool
	}
}

func TestTryLock(t *testing.T) {
	run(t, func(p *core.Proc, rt *cth.Runtime) {
		l := NewLock(rt)
		if l.Locked() {
			t.Fatal("new lock is locked")
		}
		if !l.TryLock() {
			t.Fatal("TryLock on free lock failed")
		}
		if l.TryLock() {
			t.Fatal("TryLock on held lock succeeded")
		}
		if err := l.Unlock(); err != nil {
			t.Fatal(err)
		}
		if l.Locked() {
			t.Fatal("lock still held after Unlock")
		}
	})
}

func TestUnlockByNonOwnerErrors(t *testing.T) {
	run(t, func(p *core.Proc, rt *cth.Runtime) {
		l := NewLock(rt)
		if err := l.Unlock(); err == nil {
			t.Fatal("Unlock of free lock returned nil error")
		}
		th := rt.Create(func() { l.Lock() })
		rt.Resume(th)
		// Main does not own the lock.
		if err := l.Unlock(); err == nil {
			t.Fatal("Unlock by non-owner returned nil error")
		}
	})
}

func TestLockFIFOHandoff(t *testing.T) {
	run(t, func(p *core.Proc, rt *cth.Runtime) {
		l := NewLock(rt)
		var order []int
		holder := rt.Create(func() {
			l.Lock()
			rt.Suspend() // hold the lock while others queue
			if err := l.Unlock(); err != nil {
				t.Errorf("Unlock: %v", err)
			}
		})
		rt.Resume(holder)
		mk := func(id int) *cth.Thread {
			return rt.Create(func() {
				l.Lock()
				order = append(order, id)
				if err := l.Unlock(); err != nil {
					t.Errorf("Unlock: %v", err)
				}
			})
		}
		for i := 1; i <= 3; i++ {
			th := mk(i)
			rt.Resume(th) // each blocks in Lock, control returns here
		}
		rt.Resume(holder) // releases: ownership chains 1 -> 2 -> 3
		drain(rt)
		if got := len(order); got != 3 {
			t.Fatalf("order = %v", order)
		}
		for i, id := range order {
			if id != i+1 {
				t.Fatalf("order = %v, want FIFO [1 2 3]", order)
			}
		}
	})
}

func TestRecursiveLockPanics(t *testing.T) {
	cm := core.NewMachine(core.Config{PEs: 1, Watchdog: 10 * time.Second})
	err := cm.Run(func(p *core.Proc) {
		rt := cth.Init(p)
		l := NewLock(rt)
		th := rt.Create(func() {
			l.Lock()
			l.Lock() // recursive: must panic
		})
		rt.Resume(th)
	})
	if err == nil || !strings.Contains(err.Error(), "recursive") {
		t.Fatalf("err = %v", err)
	}
}

func TestCondSignalWakesOne(t *testing.T) {
	run(t, func(p *core.Proc, rt *cth.Runtime) {
		c := NewCond(rt)
		woken := 0
		for i := 0; i < 3; i++ {
			th := rt.Create(func() {
				c.Wait()
				woken++
			})
			rt.Resume(th)
		}
		if c.Waiting() != 3 {
			t.Fatalf("Waiting = %d, want 3", c.Waiting())
		}
		c.Signal()
		drain(rt)
		if woken != 1 {
			t.Fatalf("woken = %d after Signal, want 1", woken)
		}
		c.Broadcast()
		drain(rt)
		if woken != 3 {
			t.Fatalf("woken = %d after Broadcast, want 3", woken)
		}
	})
}

func TestCondSignalEmptyNoop(t *testing.T) {
	run(t, func(p *core.Proc, rt *cth.Runtime) {
		c := NewCond(rt)
		c.Signal()
		c.Broadcast()
		if c.Waiting() != 0 {
			t.Fatal("phantom waiters")
		}
	})
}

func TestBarrierReleasesAtK(t *testing.T) {
	run(t, func(p *core.Proc, rt *cth.Runtime) {
		b := NewBarrier(rt)
		b.Reinit(3)
		passed := 0
		for i := 0; i < 3; i++ {
			th := rt.Create(func() {
				b.Arrive()
				passed++
			})
			rt.Resume(th)
		}
		drain(rt)
		if passed != 3 {
			t.Fatalf("passed = %d, want 3 (all released at the 3rd arrival)", passed)
		}
	})
}

func TestBarrierBlocksBeforeK(t *testing.T) {
	run(t, func(p *core.Proc, rt *cth.Runtime) {
		b := NewBarrier(rt)
		b.Reinit(3)
		passed := 0
		for i := 0; i < 2; i++ {
			th := rt.Create(func() {
				b.Arrive()
				passed++
			})
			rt.Resume(th)
		}
		drain(rt)
		if passed != 0 {
			t.Fatalf("passed = %d before the 3rd arrival, want 0", passed)
		}
		if b.Waiting() != 2 {
			t.Fatalf("Waiting = %d, want 2", b.Waiting())
		}
	})
}

func TestBarrierReusable(t *testing.T) {
	run(t, func(p *core.Proc, rt *cth.Runtime) {
		b := NewBarrier(rt)
		b.Reinit(2)
		rounds := 0
		mk := func() *cth.Thread {
			return rt.Create(func() {
				b.Arrive()
				rounds++
				b.Arrive()
				rounds++
			})
		}
		t1, t2 := mk(), mk()
		rt.Resume(t1)
		rt.Resume(t2) // 2nd arrival: both pass round 1, arrive at round 2
		drain(rt)
		if rounds != 4 {
			t.Fatalf("rounds = %d, want 4 (barrier must re-arm)", rounds)
		}
	})
}

func TestBarrierReinitFreesWaiters(t *testing.T) {
	run(t, func(p *core.Proc, rt *cth.Runtime) {
		b := NewBarrier(rt)
		b.Reinit(5)
		freed := false
		th := rt.Create(func() {
			b.Arrive()
			freed = true
		})
		rt.Resume(th)
		b.Reinit(2) // must free the stuck waiter
		drain(rt)
		if !freed {
			t.Fatal("Reinit did not free waiting threads")
		}
	})
}

func TestBarrierNegativePanics(t *testing.T) {
	cm := core.NewMachine(core.Config{PEs: 1, Watchdog: 10 * time.Second})
	err := cm.Run(func(p *core.Proc) {
		rt := cth.Init(p)
		NewBarrier(rt).Reinit(-1)
	})
	if err == nil {
		t.Fatal("negative Reinit did not error")
	}
}

func TestProducerConsumerWithLockAndCond(t *testing.T) {
	// Classic bounded-buffer built from Lock + Cond, all cooperative.
	run(t, func(p *core.Proc, rt *cth.Runtime) {
		l := NewLock(rt)
		notEmpty := NewCond(rt)
		var buf []int
		var got []int
		consumer := rt.Create(func() {
			for len(got) < 5 {
				l.Lock()
				for len(buf) == 0 {
					if err := l.Unlock(); err != nil {
						t.Errorf("Unlock: %v", err)
					}
					notEmpty.Wait()
					l.Lock()
				}
				got = append(got, buf[0])
				buf = buf[1:]
				if err := l.Unlock(); err != nil {
					t.Errorf("Unlock: %v", err)
				}
			}
		})
		rt.Resume(consumer) // blocks in Wait
		for i := 1; i <= 5; i++ {
			l.Lock()
			buf = append(buf, i)
			if err := l.Unlock(); err != nil {
				t.Errorf("Unlock: %v", err)
			}
			notEmpty.Signal()
			drain(rt)
		}
		if len(got) != 5 {
			t.Fatalf("consumed %v", got)
		}
		for i, v := range got {
			if v != i+1 {
				t.Fatalf("consumed %v, want [1..5] in order", got)
			}
		}
	})
}

func TestCondSignalFIFO(t *testing.T) {
	run(t, func(p *core.Proc, rt *cth.Runtime) {
		c := NewCond(rt)
		var order []int
		for i := 1; i <= 3; i++ {
			th := rt.Create(func() {
				c.Wait()
				order = append(order, i)
			})
			rt.Resume(th)
		}
		for i := 0; i < 3; i++ {
			c.Signal()
			drain(rt)
		}
		for i, v := range order {
			if v != i+1 {
				t.Fatalf("order = %v, want FIFO", order)
			}
		}
	})
}

func TestTryLockFromSecondThread(t *testing.T) {
	run(t, func(p *core.Proc, rt *cth.Runtime) {
		l := NewLock(rt)
		holder := rt.Create(func() {
			l.Lock()
			rt.Suspend()
			if err := l.Unlock(); err != nil {
				t.Errorf("Unlock: %v", err)
			}
		})
		rt.Resume(holder)
		tried := rt.Create(func() {
			if l.TryLock() {
				t.Error("TryLock succeeded while held elsewhere")
			}
		})
		rt.Resume(tried)
		rt.Resume(holder)
		if l.Locked() {
			t.Error("lock still held at end")
		}
	})
}

func TestBarrierZeroCountReleasesImmediately(t *testing.T) {
	run(t, func(p *core.Proc, rt *cth.Runtime) {
		b := NewBarrier(rt)
		b.Reinit(0)
		passed := false
		th := rt.Create(func() {
			b.Arrive() // 0-or-1 needed: must pass immediately
			passed = true
		})
		rt.Resume(th)
		drain(rt)
		if !passed {
			t.Fatal("Arrive blocked at a zero barrier")
		}
	})
}
