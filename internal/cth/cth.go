// Package cth implements Converse thread objects (§3.2.2): the ability
// to suspend and resume a thread of control, deliberately divorced from
// any scheduling policy, locks, or other thread-package baggage. A
// language runtime composes thread objects with the unified scheduler
// and a message manager to build its own threading semantics (see
// internal/lang/tsm and internal/lang/mdt).
//
// The paper's implementation encapsulates a stack and program counter
// via setjmp/longjmp. Here each thread object owns a goroutine, but with
// strictly cooperative semantics: at most one context — the processor's
// main (scheduler) context or one thread — runs per processor at any
// instant, and control moves only through explicit Resume/Suspend/Exit
// hand-offs over unbuffered tokens. This preserves exactly what the
// paper needs from threads (user-level suspend/resume with pluggable
// awaken/suspend strategies); only the stack-switch mechanism differs.
//
// Per the paper, CthAwaken and CthSuspend work as a pair around a
// "ready pool": by default Awaken pushes onto a FIFO queue and Suspend
// pops it, resuming the main context when the pool is empty. A
// per-thread strategy (SetStrategy) can redirect both — most usefully to
// the Converse scheduler's queue, making a ready thread a generalized
// message (UseSchedulerStrategy), which is how the unified scheduler
// schedules threads and message-driven objects together.
package cth

import (
	"encoding/binary"
	"fmt"
	"runtime"

	"converse/internal/core"
	"converse/internal/queue"
)

// extKey locates a processor's thread runtime in its Proc.
const extKey = "converse.cth"

// Runtime is the per-processor thread runtime. Obtain one with Init (or
// Get) on the processor's own Proc; like everything in Converse it is
// strictly processor-local.
type Runtime struct {
	p       *core.Proc
	main    *Thread // the driver/scheduler context
	current *Thread
	ready   queue.Deque[*Thread] // default ready pool (FIFO)

	resumeHandler int // dispatches "ready thread" generalized messages
	threads       map[uint32]*Thread
	nextID        uint32
	next          *Thread      // strategy's pick, consumed by pickNext
	pending       *threadPanic // panic escaping a thread, re-raised on resume

	created, switches uint64 // statistics
}

// Thread is a thread object: a suspendable, resumable thread of control
// (CthCreate's THREAD). The zero value is not usable; create threads
// with Runtime.Create.
type Thread struct {
	rt      *Runtime
	id      uint32
	fn      func()
	token   chan struct{}
	started bool
	done    bool

	// suspendFn picks and resumes the next context when this thread
	// suspends; awakenFn stores the thread where suspendFn (of others)
	// will find it. Both default to the shared FIFO ready pool
	// (CthSetStrategy).
	suspendFn func(t *Thread)
	awakenFn  func(t *Thread)
}

// Init creates (or returns the existing) thread runtime for a processor
// (CthInit). It registers the resume handler used by the
// scheduler-strategy integration, so like all handler registration it
// should happen in the same order on every processor.
func Init(p *core.Proc) *Runtime {
	if rt, ok := p.Ext(extKey).(*Runtime); ok {
		return rt
	}
	rt := &Runtime{p: p, threads: make(map[uint32]*Thread)}
	rt.main = &Thread{rt: rt, id: 0, token: make(chan struct{}), started: true}
	rt.main.suspendFn = rt.defaultSuspend
	rt.main.awakenFn = rt.defaultAwaken
	rt.current = rt.main
	rt.resumeHandler = p.RegisterHandler(resumeFromMsg)
	p.SetExt(extKey, rt)
	return rt
}

// Get returns the processor's thread runtime, panicking if Init has not
// been called.
func Get(p *core.Proc) *Runtime {
	rt, ok := p.Ext(extKey).(*Runtime)
	if !ok {
		panic(fmt.Sprintf("cth: pe %d: thread runtime not initialized (call cth.Init)", p.MyPe()))
	}
	return rt
}

// Proc returns the runtime's processor.
func (rt *Runtime) Proc() *core.Proc { return rt.p }

// Create builds a new thread object that will execute fn when first
// resumed (CthCreate). The thread is not scheduled: resume it directly,
// or Awaken it into a ready pool. Goroutine stacks grow on demand, so
// CthCreateOfSize's stack-size parameter has no equivalent here.
func (rt *Runtime) Create(fn func()) *Thread {
	if fn == nil {
		panic("cth: Create(nil)")
	}
	rt.nextID++
	t := &Thread{rt: rt, id: rt.nextID, fn: fn, token: make(chan struct{})}
	t.suspendFn = rt.defaultSuspend
	t.awakenFn = rt.defaultAwaken
	rt.threads[t.id] = t
	rt.created++
	rt.emit(core.EvThreadCreate, t)
	if m := rt.p.Metrics(); m != nil {
		m.ThreadCreated()
	}
	return t
}

// Self returns the currently executing thread (CthSelf). In the main
// context it returns the main thread object.
func (rt *Runtime) Self() *Thread { return rt.current }

// IsMain reports whether t is the processor's main (scheduler) context.
func (t *Thread) IsMain() bool { return t == t.rt.main }

// Done reports whether the thread has exited.
func (t *Thread) Done() bool { return t.done }

// ID returns the thread's processor-local identifier.
func (t *Thread) ID() uint32 { return t.id }

// Resume immediately transfers control to t (CthResume); the caller's
// context blocks until something transfers control back. t runs until
// it, in turn, gives up control via Resume, Suspend, Yield or Exit.
func (rt *Runtime) Resume(t *Thread) {
	if t.done {
		panic(fmt.Sprintf("cth: pe %d: resume of exited thread %d", rt.p.MyPe(), t.id))
	}
	if t == rt.current {
		return
	}
	cur := rt.current
	rt.handoff(t)
	<-cur.token // block until control returns here
	rt.checkPending()
}

// handoff performs the actual context switch to t. It must be the LAST
// shared-state-touching action of the calling goroutine before it blocks
// on its own token (or exits): once the token is sent (or the goroutine
// started), t runs concurrently with whatever instructions remain in the
// caller.
//converse:hotpath
func (rt *Runtime) handoff(t *Thread) {
	rt.current = t
	rt.switches++
	rt.emit(core.EvThreadResume, t)
	if m := rt.p.Metrics(); m != nil {
		m.ThreadSwitch()
	}
	if !t.started {
		t.started = true
		//lint:ignore noallocinhot a thread's goroutine starts exactly once, on its first resume; every later switch reuses it via the token channel
		go t.body()
		return
	}
	t.token <- struct{}{}
}

// exitSentinel is the panic value Exit uses to unwind a thread's stack
// (running its deferred calls) before the final hand-off.
type exitSentinel struct{}

// threadPanic carries a real panic out of a thread goroutine so it can
// be re-raised in the next context and ultimately reach the machine's
// driver goroutine, where Run reports it.
type threadPanic struct {
	value any
	stack []byte
}

// body is the goroutine entry of a thread object.
func (t *Thread) body() {
	rt := t.rt
	rt.checkPending()
	defer func() {
		if r := recover(); r != nil {
			if _, isExit := r.(exitSentinel); !isExit {
				buf := make([]byte, 16<<10)
				n := runtime.Stack(buf, false)
				rt.pending = &threadPanic{value: r, stack: buf[:n]}
			}
		}
		// Falling off the end (or Exit, or a panic) ends the thread.
		rt.exitCurrent()
	}()
	t.fn()
}

// checkPending re-raises a panic that escaped a thread goroutine, in the
// newly resumed context, so it propagates to the machine driver.
func (rt *Runtime) checkPending() {
	if p := rt.pending; p != nil {
		rt.pending = nil
		panic(fmt.Sprintf("cth: pe %d: panic in thread: %v\n%s", rt.p.MyPe(), p.value, p.stack))
	}
}

// Suspend stops the current thread and transfers control to another
// (CthSuspend). Which one is chosen by the current thread's suspend
// strategy: by default, the thread longest in the ready pool, or the
// main context if the pool is empty. Control returns when somebody
// resumes this thread again. Suspending the main context is an error —
// the scheduler is the fallback target, it cannot itself wait.
//
//converse:hotpath
func (rt *Runtime) Suspend() {
	cur := rt.current
	if cur == rt.main {
		panic(fmt.Sprintf("cth: pe %d: Suspend called from the main (scheduler) context", rt.p.MyPe()))
	}
	rt.emit(core.EvThreadSuspend, cur)
	next := rt.pickNext(cur)
	if next == cur {
		return // the strategy chose to keep running this thread
	}
	rt.p.NoteThreadsSuspended(1)
	rt.handoff(next)
	<-cur.token
	rt.p.NoteThreadsSuspended(-1)
	rt.checkPending()
}

// pickNext runs cur's suspend strategy and returns the chosen context.
func (rt *Runtime) pickNext(cur *Thread) *Thread {
	rt.next = nil
	cur.suspendFn(cur)
	next := rt.next
	rt.next = nil
	if next == nil {
		next = rt.main
	}
	return next
}

// Awaken adds t to its ready pool — by default the runtime's FIFO pool —
// constituting permission for Suspend to transfer control to it
// (CthAwaken). It must only be called when it is acceptable for t to
// continue execution.
func (rt *Runtime) Awaken(t *Thread) {
	if t.done {
		panic(fmt.Sprintf("cth: pe %d: awaken of exited thread %d", rt.p.MyPe(), t.id))
	}
	t.awakenFn(t)
}

// Yield awakens the current thread and immediately suspends it
// (CthYield): control may pass to other ready threads and will normally
// come back.
//
//converse:hotpath
func (rt *Runtime) Yield() {
	rt.Awaken(rt.current)
	rt.Suspend()
}

// Exit terminates the current thread (CthExit): the thread ceases to
// exist — its deferred calls run — and control transfers as if by
// Suspend, honoring the thread's suspend strategy. Exit does not
// return. Calling Exit from the main context panics.
func (rt *Runtime) Exit() {
	if rt.current == rt.main {
		panic(fmt.Sprintf("cth: pe %d: Exit called from the main context", rt.p.MyPe()))
	}
	// Unwind via a sentinel panic so the thread's deferred calls run
	// before the final hand-off in body's recover block.
	panic(exitSentinel{})
}

// exitCurrent marks the current thread dead and hands control onward
// without expecting it back.
func (rt *Runtime) exitCurrent() {
	cur := rt.current
	cur.done = true
	delete(rt.threads, cur.id)
	rt.emit(core.EvThreadSuspend, cur)
	next := rt.pickNext(cur)
	if next == cur {
		panic(fmt.Sprintf("cth: pe %d: suspend strategy picked the exiting thread %d", rt.p.MyPe(), cur.id))
	}
	rt.handoff(next) // transfers control; nobody will resume cur
}

// SetStrategy overrides how Awaken stores t and how Suspend (called by
// t) finds the next thread (CthSetStrategy). awaken must store t
// somewhere Suspend-strategies can find it; suspend must locate a ready
// thread and resume it via ResumeFromStrategy, or fall back to
// ResumeMain. Only the selection order may be altered, not the
// semantics. Either function may be nil to keep the default.
func (t *Thread) SetStrategy(suspend func(*Thread), awaken func(*Thread)) {
	if suspend != nil {
		t.suspendFn = suspend
	}
	if awaken != nil {
		t.awakenFn = awaken
	}
}

// ResumeFromStrategy selects t as the next context to run. It may only
// be called from inside a suspend strategy; the runtime performs the
// actual switch after the strategy returns (so that the hand-off is the
// suspending goroutine's final shared-state action).
func (rt *Runtime) ResumeFromStrategy(t *Thread) {
	if t.done {
		panic(fmt.Sprintf("cth: pe %d: strategy resumed exited thread %d", rt.p.MyPe(), t.id))
	}
	rt.next = t
}

// ResumeMain selects the main (scheduler) context as the next to run,
// from inside a suspend strategy.
func (rt *Runtime) ResumeMain() { rt.next = rt.main }

// defaultSuspend pops the FIFO ready pool, falling back to main.
func (rt *Runtime) defaultSuspend(*Thread) {
	for {
		next, ok := rt.ready.PopFront()
		if !ok {
			rt.ResumeMain()
			return
		}
		if next.done {
			continue // awakened then exited through another path
		}
		rt.ResumeFromStrategy(next)
		return
	}
}

// defaultAwaken pushes onto the FIFO ready pool.
func (rt *Runtime) defaultAwaken(t *Thread) { rt.ready.PushBack(t) }

// ReadyLen reports the number of threads in the default ready pool.
func (rt *Runtime) ReadyLen() int { return rt.ready.Len() }

// Stats reports the number of threads created and context switches
// performed on this processor.
func (rt *Runtime) Stats() (created, switches uint64) { return rt.created, rt.switches }

// emit sends a thread trace event if tracing is on.
func (rt *Runtime) emit(kind core.EventKind, t *Thread) {
	if tr := rt.p.Tracer(); tr != nil {
		tr.Event(core.TraceEvent{
			Kind: kind, T: rt.p.TimerUs(), PE: rt.p.MyPe(), Aux: int(t.id),
		})
	}
}

// --- scheduler integration: a ready thread is a generalized message ---

// UseSchedulerStrategy makes t schedule through the Converse scheduler:
// Awaken enqueues a generalized message (a "scheduler entry for a ready
// thread", §3.1.1) with the given integer priority, and the scheduler
// resumes the thread when the message is dispatched; Suspend falls back
// to the default pool-then-main behaviour, so control returns to the
// scheduler when nothing else is ready. This is the unification that
// lets threads and message-driven objects interleave under one
// scheduler.
func (t *Thread) UseSchedulerStrategy(prio int32) {
	rt := t.rt
	t.SetStrategy(nil, func(t *Thread) {
		msg := core.NewMsg(rt.resumeHandler, 4)
		binary.LittleEndian.PutUint32(core.Payload(msg), t.id)
		if prio == 0 {
			rt.p.Enqueue(msg)
		} else {
			rt.p.EnqueuePrio(msg, prio)
		}
	})
}

// resumeFromMsg is the handler behind UseSchedulerStrategy.
func resumeFromMsg(p *core.Proc, msg []byte) {
	rt := Get(p)
	id := binary.LittleEndian.Uint32(core.Payload(msg))
	t, ok := rt.threads[id]
	if !ok || t.done {
		return // thread exited before its wake-up message was scheduled
	}
	rt.Resume(t)
}
