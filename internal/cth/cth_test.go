package cth

import (
	"strings"
	"testing"
	"time"

	"converse/internal/core"
)

// run executes body on PE0 of a 1-PE machine with watchdog.
func run(t *testing.T, body func(p *core.Proc, rt *Runtime)) {
	t.Helper()
	cm := core.NewMachine(core.Config{PEs: 1, Watchdog: 10 * time.Second})
	err := cm.Run(func(p *core.Proc) {
		rt := Init(p)
		body(p, rt)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCreateResumeSuspend(t *testing.T) {
	run(t, func(p *core.Proc, rt *Runtime) {
		var log []string
		th := rt.Create(func() {
			log = append(log, "t1")
			rt.Suspend()
			log = append(log, "t2")
		})
		log = append(log, "m1")
		rt.Resume(th)
		log = append(log, "m2")
		rt.Resume(th)
		log = append(log, "m3")
		got := strings.Join(log, ",")
		if got != "m1,t1,m2,t2,m3" {
			t.Errorf("order = %q", got)
		}
		if !th.Done() {
			t.Error("thread not done after fn returned")
		}
	})
}

func TestOnlyOneContextRuns(t *testing.T) {
	// The cooperative hand-off means shared state never races; this
	// test exercises heavy interleaving and relies on -race to catch
	// violations.
	run(t, func(p *core.Proc, rt *Runtime) {
		counter := 0
		const n = 50
		threads := make([]*Thread, n)
		for i := range threads {
			threads[i] = rt.Create(func() {
				for j := 0; j < 100; j++ {
					counter++
					rt.Yield()
				}
			})
			rt.Awaken(threads[i])
		}
		// Drive: repeatedly suspend into the pool via a driver thread.
		driver := rt.Create(func() {
			for rt.ReadyLen() > 0 {
				rt.Yield()
			}
		})
		rt.Resume(driver)
		for rt.ReadyLen() > 0 {
			next, _ := rt.ready.PopFront()
			if !next.Done() {
				rt.Resume(next)
			}
		}
		if counter != n*100 {
			t.Errorf("counter = %d, want %d", counter, n*100)
		}
	})
}

func TestYieldRoundRobin(t *testing.T) {
	run(t, func(p *core.Proc, rt *Runtime) {
		var order []int
		mk := func(id int) *Thread {
			return rt.Create(func() {
				for i := 0; i < 3; i++ {
					order = append(order, id)
					rt.Yield()
				}
			})
		}
		a, b := mk(1), mk(2)
		rt.Awaken(a)
		rt.Awaken(b)
		// Drain the pool from the main context.
		for rt.ReadyLen() > 0 {
			next, _ := rt.ready.PopFront()
			if !next.Done() {
				rt.Resume(next)
			}
		}
		want := []int{1, 2, 1, 2, 1, 2}
		if len(order) != len(want) {
			t.Fatalf("order = %v", order)
		}
		for i := range want {
			if order[i] != want[i] {
				t.Fatalf("order = %v, want %v", order, want)
			}
		}
	})
}

func TestSelfAndIsMain(t *testing.T) {
	run(t, func(p *core.Proc, rt *Runtime) {
		if !rt.Self().IsMain() {
			t.Error("main context Self() not main")
		}
		var inThread *Thread
		th := rt.Create(func() {
			inThread = rt.Self()
		})
		rt.Resume(th)
		if inThread != th {
			t.Error("Self inside thread != thread")
		}
		if inThread.IsMain() {
			t.Error("thread reported as main")
		}
	})
}

func TestExplicitExitRunsDefers(t *testing.T) {
	run(t, func(p *core.Proc, rt *Runtime) {
		deferred := false
		after := false
		th := rt.Create(func() {
			defer func() { deferred = true }()
			rt.Exit()
			after = true // unreachable
		})
		rt.Resume(th)
		if !deferred {
			t.Error("deferred function did not run on Exit")
		}
		if after {
			t.Error("code after Exit ran")
		}
		if !th.Done() {
			t.Error("thread not done after Exit")
		}
	})
}

func TestResumeExitedThreadPanics(t *testing.T) {
	cm := core.NewMachine(core.Config{PEs: 1, Watchdog: 10 * time.Second})
	err := cm.Run(func(p *core.Proc) {
		rt := Init(p)
		th := rt.Create(func() {})
		rt.Resume(th)
		rt.Resume(th) // exited: must panic
	})
	if err == nil || !strings.Contains(err.Error(), "exited") {
		t.Fatalf("err = %v, want exited-thread panic", err)
	}
}

func TestAwakenExitedThreadPanics(t *testing.T) {
	cm := core.NewMachine(core.Config{PEs: 1, Watchdog: 10 * time.Second})
	err := cm.Run(func(p *core.Proc) {
		rt := Init(p)
		th := rt.Create(func() {})
		rt.Resume(th)
		rt.Awaken(th)
	})
	if err == nil || !strings.Contains(err.Error(), "exited") {
		t.Fatalf("err = %v", err)
	}
}

func TestSuspendFromMainPanics(t *testing.T) {
	cm := core.NewMachine(core.Config{PEs: 1, Watchdog: 10 * time.Second})
	err := cm.Run(func(p *core.Proc) {
		rt := Init(p)
		rt.Suspend()
	})
	if err == nil || !strings.Contains(err.Error(), "main") {
		t.Fatalf("err = %v", err)
	}
}

func TestInitIdempotent(t *testing.T) {
	run(t, func(p *core.Proc, rt *Runtime) {
		if Init(p) != rt {
			t.Error("second Init returned a different runtime")
		}
		if Get(p) != rt {
			t.Error("Get returned a different runtime")
		}
	})
}

func TestGetWithoutInitPanics(t *testing.T) {
	cm := core.NewMachine(core.Config{PEs: 1, Watchdog: 10 * time.Second})
	err := cm.Run(func(p *core.Proc) {
		Get(p)
	})
	if err == nil || !strings.Contains(err.Error(), "not initialized") {
		t.Fatalf("err = %v", err)
	}
}

func TestSetStrategyCustomOrder(t *testing.T) {
	// A LIFO strategy: per the paper, each module may control the
	// order in which its own threads are scheduled.
	run(t, func(p *core.Proc, rt *Runtime) {
		var order []int
		var stack []*Thread
		lifoAwaken := func(t *Thread) { stack = append(stack, t) }
		lifoSuspend := func(*Thread) {
			if len(stack) == 0 {
				rt.ResumeMain()
				return
			}
			next := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			rt.ResumeFromStrategy(next)
		}
		mk := func(id int) *Thread {
			th := rt.Create(func() { order = append(order, id) })
			th.SetStrategy(lifoSuspend, lifoAwaken)
			return th
		}
		a, b, c := mk(1), mk(2), mk(3)
		rt.Awaken(a)
		rt.Awaken(b)
		rt.Awaken(c)
		// Kick off: resume the last awakened; each exit pops the stack.
		next := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		rt.Resume(next)
		if len(order) != 3 || order[0] != 3 || order[1] != 2 || order[2] != 1 {
			t.Errorf("order = %v, want [3 2 1]", order)
		}
	})
}

func TestSchedulerStrategy(t *testing.T) {
	// A thread awakened under the scheduler strategy becomes a
	// generalized message: the scheduler resumes it.
	cm := core.NewMachine(core.Config{PEs: 1, Watchdog: 10 * time.Second})
	err := cm.Run(func(p *core.Proc) {
		rt := Init(p)
		var log []string
		th := rt.Create(func() {
			log = append(log, "t-first")
			rt.Awaken(rt.Self()) // enqueue self, then give up control
			rt.Suspend()
			log = append(log, "t-second")
		})
		th.UseSchedulerStrategy(0)
		rt.Awaken(th) // enqueues the resume message
		log = append(log, "before-sched")
		p.ScheduleUntilIdle()
		log = append(log, "after-sched")
		got := strings.Join(log, ",")
		want := "before-sched,t-first,t-second,after-sched"
		if got != want {
			t.Errorf("order = %q, want %q", got, want)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSchedulerStrategyPriorities(t *testing.T) {
	// Two threads with different priorities: the higher-priority
	// (lower value) one runs first regardless of awaken order.
	cm := core.NewMachine(core.Config{PEs: 1, Watchdog: 10 * time.Second})
	err := cm.Run(func(p *core.Proc) {
		rt := Init(p)
		var order []string
		mk := func(name string, prio int32) *Thread {
			th := rt.Create(func() { order = append(order, name) })
			th.UseSchedulerStrategy(prio)
			return th
		}
		low := mk("low", 10)
		high := mk("high", -10)
		rt.Awaken(low)
		rt.Awaken(high)
		p.ScheduleUntilIdle()
		if strings.Join(order, ",") != "high,low" {
			t.Errorf("order = %v", order)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestResumeMessageForExitedThreadIgnored(t *testing.T) {
	cm := core.NewMachine(core.Config{PEs: 1, Watchdog: 10 * time.Second})
	err := cm.Run(func(p *core.Proc) {
		rt := Init(p)
		th := rt.Create(func() {})
		th.UseSchedulerStrategy(0)
		rt.Awaken(th) // message 1
		rt.Awaken(th) // message 2 (double-awaken before it runs)
		p.ScheduleUntilIdle()
		// Message 2 finds the thread exited; must be ignored silently.
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestThreadsAcrossMessages(t *testing.T) {
	// A thread suspends waiting for data that arrives as a message from
	// another PE; the handler awakens it (the basic tSM pattern).
	cm := core.NewMachine(core.Config{PEs: 2, Watchdog: 10 * time.Second})
	var hData int
	result := 0
	hData = cm.RegisterHandler(func(p *core.Proc, msg []byte) {
		rt := Get(p)
		waiting := p.Ext("waiting").(*Thread)
		p.SetExt("data", int(core.Payload(msg)[0]))
		rt.Awaken(waiting)
	})
	err := cm.Run(func(p *core.Proc) {
		rt := Init(p)
		if p.MyPe() == 1 {
			p.SyncSend(0, core.MakeMsg(hData, []byte{42}))
			return
		}
		th := rt.Create(func() {
			p.SetExt("waiting", rt.Self())
			rt.Suspend() // wait for the data message
			result = p.Ext("data").(int)
			p.ExitScheduler()
		})
		th.UseSchedulerStrategy(0)
		rt.Resume(th) // runs until it suspends
		p.Scheduler(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if result != 42 {
		t.Fatalf("result = %d, want 42", result)
	}
}

func TestStats(t *testing.T) {
	run(t, func(p *core.Proc, rt *Runtime) {
		c0, s0 := rt.Stats()
		th := rt.Create(func() { rt.Yield() })
		rt.Resume(th)
		// drain
		for rt.ReadyLen() > 0 {
			next, _ := rt.ready.PopFront()
			if !next.Done() {
				rt.Resume(next)
			}
		}
		c1, s1 := rt.Stats()
		if c1 != c0+1 {
			t.Errorf("created: %d -> %d", c0, c1)
		}
		if s1 <= s0 {
			t.Errorf("switches did not increase: %d -> %d", s0, s1)
		}
	})
}

func TestThreadPanicPropagates(t *testing.T) {
	cm := core.NewMachine(core.Config{PEs: 1, Watchdog: 10 * time.Second})
	err := cm.Run(func(p *core.Proc) {
		rt := Init(p)
		th := rt.Create(func() {
			panic("thread exploded")
		})
		rt.Resume(th)
	})
	if err == nil || !strings.Contains(err.Error(), "thread exploded") {
		t.Fatalf("err = %v, want thread panic propagation", err)
	}
}

func TestThreadPanicRunsDefers(t *testing.T) {
	cm := core.NewMachine(core.Config{PEs: 1, Watchdog: 10 * time.Second})
	cleaned := false
	_ = cm.Run(func(p *core.Proc) {
		rt := Init(p)
		th := rt.Create(func() {
			defer func() { cleaned = true }()
			panic("boom")
		})
		rt.Resume(th)
	})
	if !cleaned {
		t.Fatal("thread defers did not run on panic")
	}
}

func TestThousandThreadCascade(t *testing.T) {
	// A chain of 1000 threads, each resuming the next, all under the
	// scheduler strategy — stress for the hand-off protocol.
	cm := core.NewMachine(core.Config{PEs: 1, Watchdog: 30 * time.Second})
	err := cm.Run(func(p *core.Proc) {
		rt := Init(p)
		const n = 1000
		depth := 0
		var mk func(i int) *Thread
		mk = func(i int) *Thread {
			return rt.Create(func() {
				depth++
				if i+1 < n {
					next := mk(i + 1)
					next.UseSchedulerStrategy(0)
					rt.Awaken(next)
				}
			})
		}
		first := mk(0)
		first.UseSchedulerStrategy(0)
		rt.Awaken(first)
		p.ScheduleUntilIdle()
		if depth != n {
			t.Errorf("depth = %d, want %d", depth, n)
		}
		created, switches := rt.Stats()
		if created < n || switches < uint64(n) {
			t.Errorf("stats: created=%d switches=%d", created, switches)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInterleavedResumeAndScheduler(t *testing.T) {
	// Threads suspended mid-work are resumed both directly and through
	// scheduler messages; ordering within a thread must be preserved.
	cm := core.NewMachine(core.Config{PEs: 1, Watchdog: 30 * time.Second})
	err := cm.Run(func(p *core.Proc) {
		rt := Init(p)
		var trace []int
		th := rt.Create(func() {
			for i := 0; i < 6; i++ {
				trace = append(trace, i)
				rt.Suspend()
			}
		})
		th.UseSchedulerStrategy(0)
		for i := 0; i < 3; i++ {
			rt.Resume(th) // direct
			rt.Awaken(th) // via scheduler message
			p.ScheduleUntilIdle()
		}
		for i, v := range trace {
			if v != i {
				t.Fatalf("trace = %v", trace)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
