package emi

import (
	"bytes"
	"encoding/binary"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"converse/internal/core"
)

func newMachine(pes int) *core.Machine {
	return core.NewMachine(core.Config{PEs: pes, Watchdog: 10 * time.Second})
}

// --- scatter ---

func TestScatterMatchesAndCopies(t *testing.T) {
	cm := newMachine(2)
	fallback := cm.RegisterHandler(func(p *core.Proc, msg []byte) {
		t.Error("scattered message reached its handler")
	})
	err := cm.Run(func(p *core.Proc) {
		if p.MyPe() == 1 {
			msg := core.NewMsg(fallback, 12)
			pl := core.Payload(msg)
			binary.LittleEndian.PutUint32(pl[0:], 0xabcd)
			copy(pl[4:], "datadata")
			p.SyncSendAndFree(0, msg)
			return
		}
		a := make([]byte, 4)
		b := make([]byte, 4)
		reg := RegisterScatter(p,
			[]Match{{Offset: core.HeaderSize, Value: 0xabcd}},
			[]Segment{
				{MsgOffset: core.HeaderSize + 4, Dst: a},
				{MsgOffset: core.HeaderSize + 8, Dst: b},
			})
		p.ServeUntil(reg.Done)
		if string(a) != "data" || string(b) != "data" {
			t.Errorf("scattered a=%q b=%q", a, b)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatterNotify(t *testing.T) {
	cm := newMachine(2)
	notified := false
	payload := cm.RegisterHandler(func(p *core.Proc, msg []byte) {
		t.Error("scattered message dispatched to payload handler")
	})
	var hNotify int
	hNotify = cm.RegisterHandler(func(p *core.Proc, msg []byte) {
		notified = true
		p.ExitScheduler()
	})
	err := cm.Run(func(p *core.Proc) {
		if p.MyPe() == 1 {
			msg := core.NewMsg(payload, 8)
			binary.LittleEndian.PutUint32(core.Payload(msg), 7)
			copy(core.Payload(msg)[4:], "wxyz")
			p.SyncSendAndFree(0, msg)
			return
		}
		dst := make([]byte, 4)
		RegisterScatterNotify(p,
			[]Match{{Offset: core.HeaderSize, Value: 7}},
			[]Segment{{MsgOffset: core.HeaderSize + 4, Dst: dst}},
			hNotify)
		p.Scheduler(-1)
		if !notified || string(dst) != "wxyz" {
			t.Errorf("notified=%v dst=%q", notified, dst)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatterNonMatchingPassesThrough(t *testing.T) {
	cm := newMachine(1)
	delivered := false
	h := cm.RegisterHandler(func(p *core.Proc, msg []byte) {
		delivered = true
		p.ExitScheduler()
	})
	err := cm.Run(func(p *core.Proc) {
		RegisterScatter(p,
			[]Match{{Offset: core.HeaderSize, Value: 999}},
			nil)
		msg := core.NewMsg(h, 4)
		binary.LittleEndian.PutUint32(core.Payload(msg), 1) // != 999
		p.SyncSendAndFree(0, msg)
		p.Scheduler(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !delivered {
		t.Fatal("non-matching message was not delivered normally")
	}
}

func TestScatterOneShot(t *testing.T) {
	cm := newMachine(1)
	count := 0
	h := cm.RegisterHandler(func(p *core.Proc, msg []byte) { count++ })
	err := cm.Run(func(p *core.Proc) {
		dst := make([]byte, 0)
		RegisterScatter(p, []Match{{Offset: 0, Value: uint32(h)}}, []Segment{{MsgOffset: 0, Dst: dst}})
		// Handler index is the first header word: both messages match.
		p.SyncSendAndFree(0, core.NewMsg(h, 4))
		p.SyncSendAndFree(0, core.NewMsg(h, 4))
		p.Scheduler(2)
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("handler ran %d times; scatter must consume exactly one message", count)
	}
}

func TestScatterCancel(t *testing.T) {
	cm := newMachine(1)
	count := 0
	h := cm.RegisterHandler(func(p *core.Proc, msg []byte) { count++ })
	err := cm.Run(func(p *core.Proc) {
		reg := RegisterScatter(p, []Match{{Offset: 0, Value: uint32(h)}}, nil)
		reg.Cancel()
		p.SyncSendAndFree(0, core.NewMsg(h, 0))
		p.Scheduler(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("cancelled scatter intercepted the message (count=%d)", count)
	}
}

// --- global pointers ---

func TestGlobalPtrEncodeDecodeProperty(t *testing.T) {
	f := func(pe uint8, id uint32) bool {
		g := GlobalPtr{PE: int(pe), ID: id}
		buf := make([]byte, GlobalPtrSize)
		g.Encode(buf)
		return DecodeGlobalPtr(buf) == g
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGptrLocalGetPut(t *testing.T) {
	cm := newMachine(1)
	err := cm.Run(func(p *core.Proc) {
		s := Init(p)
		mem := []byte("0123456789")
		g := s.Create(mem)
		if !bytes.Equal(s.Deref(g), mem) {
			t.Error("Deref mismatch")
		}
		dst := make([]byte, 4)
		s.SyncGet(g, dst)
		if string(dst) != "0123" {
			t.Errorf("SyncGet = %q", dst)
		}
		s.SyncPut(g, []byte("AB"))
		if string(mem[:2]) != "AB" {
			t.Errorf("SyncPut result = %q", mem)
		}
		h := s.GetAt(g, 4, dst)
		if !h.Done() {
			t.Error("local GetAt not immediately done")
		}
		if string(dst) != "4567" {
			t.Errorf("GetAt(4) = %q", dst)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGptrRemoteSyncGetPut(t *testing.T) {
	cm := newMachine(2)
	done := cm.RegisterHandler(func(p *core.Proc, msg []byte) { p.ExitScheduler() })
	err := cm.Run(func(p *core.Proc) {
		s := Init(p)
		if p.MyPe() == 0 {
			mem := []byte("remote-region-bytes")
			g := s.Create(mem)
			// Ship the pointer to PE1.
			ptr := core.NewMsg(done, GlobalPtrSize)
			g.Encode(core.Payload(ptr))
			// Reuse handler index 'done' for the pointer-carrier: PE1
			// reads it via GetSpecificMsg instead of dispatching.
			p.SyncSendAndFree(1, ptr)
			// Serve gets/puts until PE1 signals completion.
			fin := false
			p.SetExt("fin", &fin)
			p.ServeUntil(func() bool { return string(mem[:3]) == "XYZ" })
			return
		}
		msg := p.GetSpecificMsg(done)
		g := DecodeGlobalPtr(core.Payload(msg))
		dst := make([]byte, 6)
		s.SyncGet(g, dst)
		if string(dst) != "remote" {
			t.Errorf("remote SyncGet = %q", dst)
		}
		s.SyncPut(g, []byte("XYZ"))
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGptrAsyncOverlap(t *testing.T) {
	cm := newMachine(2)
	carrier := cm.RegisterHandler(func(p *core.Proc, msg []byte) {})
	err := cm.Run(func(p *core.Proc) {
		s := Init(p)
		if p.MyPe() == 0 {
			mem := make([]byte, 64)
			for i := range mem {
				mem[i] = byte(i)
			}
			g := s.Create(mem)
			ptr := core.NewMsg(carrier, GlobalPtrSize)
			g.Encode(core.Payload(ptr))
			p.SyncSendAndFree(1, ptr)
			p.ServeUntil(func() bool { return mem[63] == 0xFF })
			return
		}
		g := DecodeGlobalPtr(core.Payload(p.GetSpecificMsg(carrier)))
		a := make([]byte, 8)
		b := make([]byte, 8)
		ha := s.GetAt(g, 0, a)
		hb := s.GetAt(g, 8, b)
		hp := s.PutAt(g, 63, []byte{0xFF})
		s.Wait(ha)
		s.Wait(hb)
		s.Wait(hp)
		for i := 0; i < 8; i++ {
			if a[i] != byte(i) || b[i] != byte(8+i) {
				t.Errorf("async gets wrong: a=%v b=%v", a, b)
				break
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGptrDerefRemotePanics(t *testing.T) {
	cm := newMachine(2)
	err := cm.Run(func(p *core.Proc) {
		s := Init(p)
		if p.MyPe() == 0 {
			s.Deref(GlobalPtr{PE: 1, ID: 1})
		}
	})
	if err == nil {
		t.Fatal("Deref of remote pointer did not error")
	}
}

func TestGptrOutOfRangePanics(t *testing.T) {
	cm := newMachine(1)
	err := cm.Run(func(p *core.Proc) {
		s := Init(p)
		g := s.Create(make([]byte, 4))
		s.SyncGet(g, make([]byte, 8))
	})
	if err == nil {
		t.Fatal("out-of-range get did not error")
	}
}

// --- processor groups ---

func TestPgrpTopology(t *testing.T) {
	cm := newMachine(8)
	err := cm.Run(func(p *core.Proc) {
		if p.MyPe() != 0 {
			return
		}
		s := Init(p)
		g := s.NewPgrp()
		s.AddChildren(g, 0, []int{1, 2})
		s.AddChildren(g, 1, []int{3, 4})
		s.AddChildren(g, 2, []int{5})
		if g.RootPE() != 0 || g.Size() != 6 {
			t.Errorf("root=%d size=%d", g.RootPE(), g.Size())
		}
		if g.Parent(0) != -1 || g.Parent(3) != 1 || g.Parent(5) != 2 {
			t.Error("parent links wrong")
		}
		if g.NumChildren(0) != 2 || g.NumChildren(1) != 2 || g.NumChildren(5) != 0 {
			t.Error("child counts wrong")
		}
		kids := g.Children(1)
		if len(kids) != 2 || kids[0] != 3 || kids[1] != 4 {
			t.Errorf("Children(1) = %v", kids)
		}
		if g.Contains(7) {
			t.Error("Contains(7) true")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPgrpEncodeDecode(t *testing.T) {
	cm := newMachine(4)
	err := cm.Run(func(p *core.Proc) {
		if p.MyPe() != 0 {
			return
		}
		s := Init(p)
		g := s.NewPgrp()
		s.AddChildren(g, 0, []int{2, 3})
		s.AddChildren(g, 2, []int{1})
		blob := g.Encode()
		d, n := DecodePgrp(blob)
		if n != len(blob) {
			t.Errorf("decode consumed %d of %d", n, len(blob))
		}
		if d.ID != g.ID || d.Size() != g.Size() || d.Parent(1) != 2 {
			t.Error("decoded group differs")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPgrpAddChildrenNonRootPanics(t *testing.T) {
	cm := newMachine(2)
	err := cm.Run(func(p *core.Proc) {
		s := Init(p)
		if p.MyPe() == 0 {
			g := s.NewPgrp()
			blob := g.Encode()
			carrier := p.RegisterHandler(func(p *core.Proc, m []byte) {})
			_ = carrier
			_ = blob
			return
		}
		// PE1 forges a group rooted at 0 and tries to extend it.
		g := &Pgrp{ID: 1, members: []int32{0}, parent: []int32{-1}}
		s.AddChildren(g, 0, []int{1})
	})
	if err == nil {
		t.Fatal("AddChildren by non-root did not error")
	}
}

func TestMulticastAlongTree(t *testing.T) {
	const pes = 6
	cm := core.NewMachine(core.Config{PEs: pes, Watchdog: 10 * time.Second})
	recv := make([]int, pes)
	h := cm.RegisterHandler(func(p *core.Proc, msg []byte) {
		recv[p.MyPe()] = int(core.Payload(msg)[0])
		p.ExitScheduler()
	})
	err := cm.Run(func(p *core.Proc) {
		s := Init(p)
		if p.MyPe() == 0 {
			g := s.NewPgrp()
			s.AddChildren(g, 0, []int{1, 2})
			s.AddChildren(g, 1, []int{3, 4})
			// PE5 is not a member: it must not receive anything.
			s.Multicast(g, core.MakeMsg(h, []byte{42}))
			// Root processes the envelope (forwarding to children) but,
			// being the caller, is excluded from local delivery.
			p.Scheduler(1)
			return
		}
		if p.MyPe() == 5 {
			return
		}
		p.Scheduler(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	for pe := 1; pe <= 4; pe++ {
		if recv[pe] != 42 {
			t.Errorf("member %d got %d, want 42", pe, recv[pe])
		}
	}
	if recv[0] != 0 || recv[5] != 0 {
		t.Errorf("caller/non-member received the multicast: %v", recv)
	}
}

func TestReduceSumTree(t *testing.T) {
	const pes = 7
	cm := core.NewMachine(core.Config{PEs: pes, Watchdog: 10 * time.Second})
	var result int64
	gotRoot := false
	err := cm.Run(func(p *core.Proc) {
		s := Init(p)
		// Every PE builds the identical group descriptor locally
		// (deterministic construction stands in for shipping it).
		g := fullBinaryTreeGroup(s, pes)
		r, isRoot := s.Reduce(g, int64(p.MyPe()+1), OpSum)
		if isRoot {
			result = r
			gotRoot = true
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !gotRoot {
		t.Fatal("no root result")
	}
	want := int64(pes * (pes + 1) / 2)
	if result != want {
		t.Fatalf("Reduce sum = %d, want %d", result, want)
	}
}

func TestReduceMaxMinProd(t *testing.T) {
	const pes = 5
	for _, tc := range []struct {
		op   ReduceOp
		want int64
	}{
		{OpMax, 5}, {OpMin, 1}, {OpProd, 120}, {OpSum, 15},
	} {
		cm := core.NewMachine(core.Config{PEs: pes, Watchdog: 10 * time.Second})
		var result int64
		err := cm.Run(func(p *core.Proc) {
			s := Init(p)
			g := fullBinaryTreeGroup(s, pes)
			if r, isRoot := s.Reduce(g, int64(p.MyPe()+1), tc.op); isRoot {
				result = r
			}
		})
		if err != nil {
			t.Fatalf("op %d: %v", tc.op, err)
		}
		if result != tc.want {
			t.Errorf("op %d: result = %d, want %d", tc.op, result, tc.want)
		}
	}
}

func TestSuccessiveReductions(t *testing.T) {
	const pes = 4
	cm := core.NewMachine(core.Config{PEs: pes, Watchdog: 10 * time.Second})
	results := make([]int64, 3)
	err := cm.Run(func(p *core.Proc) {
		s := Init(p)
		g := fullBinaryTreeGroup(s, pes)
		for round := 0; round < 3; round++ {
			if r, isRoot := s.Reduce(g, int64(round), OpSum); isRoot {
				results[round] = r
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for round, r := range results {
		if r != int64(round*pes) {
			t.Errorf("round %d: %d, want %d", round, r, round*pes)
		}
	}
}

func TestGroupBarrier(t *testing.T) {
	const pes = 6
	cm := core.NewMachine(core.Config{PEs: pes, Watchdog: 10 * time.Second})
	phase := make([]atomic.Int32, pes)
	err := cm.Run(func(p *core.Proc) {
		s := Init(p)
		g := fullBinaryTreeGroup(s, pes)
		phase[p.MyPe()].Store(1)
		s.Barrier(g)
		// After the barrier, every PE must observe every phase[i] >= 1.
		for pe := range phase {
			if ph := phase[pe].Load(); ph < 1 {
				t.Errorf("pe %d: saw phase[%d]=%d after barrier", p.MyPe(), pe, ph)
			}
		}
		phase[p.MyPe()].Store(2)
		s.Barrier(g) // reusable
	})
	if err != nil {
		t.Fatal(err)
	}
}

// fullBinaryTreeGroup deterministically builds the same spanning tree of
// all pes on every processor: member i's parent is (i-1)/2.
func fullBinaryTreeGroup(s *State, pes int) *Pgrp {
	g := &Pgrp{ID: 0x42}
	for i := 0; i < pes; i++ {
		g.members = append(g.members, int32(i))
		if i == 0 {
			g.parent = append(g.parent, -1)
		} else {
			g.parent = append(g.parent, int32((i-1)/2))
		}
	}
	return g
}

func TestScatterRegisteredAfterArrival(t *testing.T) {
	// The paper: advance registration "is expected (although not
	// required)". A message arriving first is deferred normally; a
	// scatter registered later only matches future messages — verify
	// the defined behaviour: the early message reaches its handler.
	cm := newMachine(1)
	delivered := 0
	h := cm.RegisterHandler(func(p *core.Proc, msg []byte) { delivered++ })
	err := cm.Run(func(p *core.Proc) {
		msg := core.NewMsg(h, 4)
		binary.LittleEndian.PutUint32(core.Payload(msg), 0xbeef)
		p.SyncSendAndFree(0, msg)
		p.Scheduler(1) // delivered before any registration
		reg := RegisterScatter(p,
			[]Match{{Offset: core.HeaderSize, Value: 0xbeef}},
			nil)
		// A second, matching message is scattered.
		msg2 := core.NewMsg(h, 4)
		binary.LittleEndian.PutUint32(core.Payload(msg2), 0xbeef)
		p.SyncSendAndFree(0, msg2)
		p.ServeUntil(reg.Done)
	})
	if err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1", delivered)
	}
}

func TestReduceSingleMemberGroup(t *testing.T) {
	cm := newMachine(2)
	err := cm.Run(func(p *core.Proc) {
		s := Init(p)
		if p.MyPe() != 0 {
			return
		}
		g := s.NewPgrp() // just the root
		r, isRoot := s.Reduce(g, 42, OpSum)
		if !isRoot || r != 42 {
			t.Errorf("single-member reduce = %d,%v", r, isRoot)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceFloat(t *testing.T) {
	const pes = 5
	cm := newMachine(pes)
	var sum, max float64
	err := cm.Run(func(p *core.Proc) {
		s := Init(p)
		g := fullBinaryTreeGroup(s, pes)
		if r, root := s.ReduceFloat(g, 0.5*float64(p.MyPe()+1), OpFSum); root {
			sum = r
		}
		if r, root := s.ReduceFloat(g, float64(p.MyPe()), OpFMax); root {
			max = r
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum != 0.5*15 {
		t.Errorf("float sum = %v, want 7.5", sum)
	}
	if max != pes-1 {
		t.Errorf("float max = %v", max)
	}
}

func TestReduceFloatBadOpPanics(t *testing.T) {
	cm := newMachine(1)
	err := cm.Run(func(p *core.Proc) {
		s := Init(p)
		s.ReduceFloat(s.NewPgrp(), 1, OpSum) // integer op: must panic
	})
	if err == nil {
		t.Fatal("ReduceFloat with integer op did not error")
	}
}

func TestMulticastByNonMember(t *testing.T) {
	// "Caller need not belong to group."
	const pes = 4
	cm := core.NewMachine(core.Config{PEs: pes, Watchdog: 10 * time.Second})
	recv := make([]atomic.Int32, pes)
	h := cm.RegisterHandler(func(p *core.Proc, msg []byte) {
		recv[p.MyPe()].Add(1)
		p.ExitScheduler()
	})
	err := cm.Run(func(p *core.Proc) {
		s := Init(p)
		if p.MyPe() == 3 {
			// PE3 multicasts to a group {0,1,2} it is not part of.
			g := &Pgrp{ID: 9, members: []int32{0, 1, 2}, parent: []int32{-1, 0, 0}}
			s.Multicast(g, core.MakeMsg(h, nil))
			return
		}
		p.Scheduler(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	for pe := 0; pe < 3; pe++ {
		if recv[pe].Load() != 1 {
			t.Errorf("member %d received %d", pe, recv[pe].Load())
		}
	}
	if recv[3].Load() != 0 {
		t.Error("non-member caller received its own multicast")
	}
}

func TestAllGroupTopology(t *testing.T) {
	cm := newMachine(7)
	err := cm.Run(func(p *core.Proc) {
		s := Init(p)
		g := s.AllGroup()
		if g.Size() != 7 || g.RootPE() != 0 {
			t.Errorf("AllGroup size=%d root=%d", g.Size(), g.RootPE())
		}
		if g.Parent(5) != 2 || g.Parent(1) != 0 {
			t.Error("AllGroup parents wrong")
		}
		// Identical construction everywhere.
		if g.ID != 1 {
			t.Errorf("AllGroup id = %d", g.ID)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGptrZeroLengthOps(t *testing.T) {
	cm := newMachine(1)
	err := cm.Run(func(p *core.Proc) {
		s := Init(p)
		g := s.Create(make([]byte, 8))
		s.SyncGet(g, nil) // zero bytes: no-op, must not panic
		s.SyncPut(g, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
}
