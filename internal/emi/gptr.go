package emi

import (
	"encoding/binary"
	"fmt"

	"converse/internal/core"
)

// GlobalPtr is an opaque handle naming a particular memory region on a
// particular processor (§3.1.3: "a global pointer is an opaque handler,
// which specifies a particular address on a particular processor").
// GlobalPtr values may be copied into messages (Encode/DecodeGlobalPtr)
// and used by any processor for Get/Put.
type GlobalPtr struct {
	PE int
	ID uint32
}

// GlobalPtrSize is the wire size of an encoded GlobalPtr.
const GlobalPtrSize = 8

// Encode serializes the pointer for embedding in a message payload.
func (g GlobalPtr) Encode(dst []byte) {
	binary.LittleEndian.PutUint32(dst[0:4], uint32(g.PE))
	binary.LittleEndian.PutUint32(dst[4:8], g.ID)
}

// DecodeGlobalPtr reads a pointer encoded by Encode.
func DecodeGlobalPtr(src []byte) GlobalPtr {
	return GlobalPtr{
		PE: int(binary.LittleEndian.Uint32(src[0:4])),
		ID: binary.LittleEndian.Uint32(src[4:8]),
	}
}

// Handle tracks the completion of an asynchronous Get or Put (the EMI
// CommHandle). Poll Done or block with State.Wait.
type Handle struct {
	done bool
	dst  []byte // Get destination, filled by the reply handler
}

// Done reports whether the operation has completed.
func (h *Handle) Done() bool { return h.done }

// State is the per-processor EMI runtime: global-pointer regions,
// pending one-sided operations, and the group-communication engine.
// Create it with Init on every processor at the same point of startup,
// so its handler indices agree machine-wide.
type State struct {
	p *core.Proc

	regions    map[uint32][]byte
	nextRegion uint32
	pending    map[uint32]*Handle
	nextReq    uint32

	hGetReq, hGetReply, hPutReq, hPutAck int

	// group communication (pgroup.go)
	hMcast, hReduce, hRelease int
	reductions                map[redKey]*redState
	seqs                      map[uint64]uint32
	released                  map[redKey]bool
	nextGrp                   uint32
}

// extKey locates the EMI state in a Proc.
const extKey = "converse.emi"

// Init creates (or returns) the processor's EMI state, registering its
// message handlers. Like all handler registration it must happen in the
// same order on every processor.
func Init(p *core.Proc) *State {
	if s, ok := p.Ext(extKey).(*State); ok {
		return s
	}
	if p.NumPes() > 256 {
		// Request ids pack the source PE into 8 bits of the wire word.
		panic("emi: machines larger than 256 PEs are not supported by the request encoding")
	}
	s := &State{
		p:          p,
		regions:    make(map[uint32][]byte),
		pending:    make(map[uint32]*Handle),
		reductions: make(map[redKey]*redState),
		seqs:       make(map[uint64]uint32),
		released:   make(map[redKey]bool),
	}
	s.hGetReq = p.RegisterHandler(s.onGetReq)
	s.hGetReply = p.RegisterHandler(s.onGetReply)
	s.hPutReq = p.RegisterHandler(s.onPutReq)
	s.hPutAck = p.RegisterHandler(s.onPutAck)
	s.hMcast = p.RegisterHandler(s.onMcast)
	s.hReduce = p.RegisterHandler(s.onReduce)
	s.hRelease = p.RegisterHandler(s.onRelease)
	p.SetExt(extKey, s)
	return s
}

// Get returns the processor's EMI state, panicking if Init was not
// called.
func Get(p *core.Proc) *State {
	s, ok := p.Ext(extKey).(*State)
	if !ok {
		panic(fmt.Sprintf("emi: pe %d: EMI not initialized (call emi.Init)", p.MyPe()))
	}
	return s
}

// Proc returns the state's processor.
func (s *State) Proc() *core.Proc { return s.p }

// Create registers mem as a globally addressable region and returns its
// global pointer (CmiGptrCreate). The memory stays owned by this
// processor; remote processors access it only through Get/Put.
func (s *State) Create(mem []byte) GlobalPtr {
	s.nextRegion++
	s.regions[s.nextRegion] = mem
	return GlobalPtr{PE: s.p.MyPe(), ID: s.nextRegion}
}

// Deref returns the local memory behind a global pointer (CmiGptrDref).
// It panics if g does not point at this processor.
func (s *State) Deref(g GlobalPtr) []byte {
	if g.PE != s.p.MyPe() {
		panic(fmt.Sprintf("emi: pe %d: Deref of remote global pointer (pe %d)", s.p.MyPe(), g.PE))
	}
	mem, ok := s.regions[g.ID]
	if !ok {
		panic(fmt.Sprintf("emi: pe %d: Deref of unknown region %d", s.p.MyPe(), g.ID))
	}
	return mem
}

// GetAt initiates copying len(dst) bytes from offset off of the region
// behind g into dst, returning a completion handle (CmiGet, with an
// explicit region offset). dst must stay valid until the handle is
// done.
func (s *State) GetAt(g GlobalPtr, off int, dst []byte) *Handle {
	if g.PE == s.p.MyPe() {
		mem := s.Deref(g)
		s.checkRange(g, mem, off, len(dst))
		copy(dst, mem[off:])
		return &Handle{done: true}
	}
	s.nextReq++
	h := &Handle{dst: dst}
	s.pending[s.nextReq] = h
	msg := core.NewMsg(s.hGetReq, 16)
	pl := core.Payload(msg)
	binary.LittleEndian.PutUint32(pl[0:], g.ID)
	binary.LittleEndian.PutUint32(pl[4:], uint32(off))
	binary.LittleEndian.PutUint32(pl[8:], uint32(len(dst)))
	binary.LittleEndian.PutUint32(pl[12:], s.nextReq<<8|uint32(s.p.MyPe()))
	s.p.SyncSendAndFree(g.PE, msg)
	return h
}

// GetPtr initiates copying the first len(dst) bytes of the region behind
// g into dst (CmiGet).
func (s *State) GetPtr(g GlobalPtr, dst []byte) *Handle { return s.GetAt(g, 0, dst) }

// SyncGet copies len(dst) bytes from the region behind g into dst,
// blocking — while continuing to serve incoming messages — until the
// data has arrived (CmiSyncGet).
func (s *State) SyncGet(g GlobalPtr, dst []byte) {
	s.Wait(s.GetPtr(g, dst))
}

// PutAt initiates copying src into the region behind g at offset off,
// returning a completion handle (CmiPut with an explicit offset). The
// data is captured at call time, so src may be reused immediately; the
// handle completes when the remote write is acknowledged.
func (s *State) PutAt(g GlobalPtr, off int, src []byte) *Handle {
	if g.PE == s.p.MyPe() {
		mem := s.Deref(g)
		s.checkRange(g, mem, off, len(src))
		copy(mem[off:], src)
		return &Handle{done: true}
	}
	s.nextReq++
	h := &Handle{}
	s.pending[s.nextReq] = h
	msg := core.NewMsg(s.hPutReq, 12+len(src))
	pl := core.Payload(msg)
	binary.LittleEndian.PutUint32(pl[0:], g.ID)
	binary.LittleEndian.PutUint32(pl[4:], uint32(off))
	binary.LittleEndian.PutUint32(pl[8:], s.nextReq<<8|uint32(s.p.MyPe()))
	copy(pl[12:], src)
	s.p.SyncSendAndFree(g.PE, msg)
	return h
}

// PutPtr initiates copying src to the start of the region behind g
// (CmiPut).
func (s *State) PutPtr(g GlobalPtr, src []byte) *Handle { return s.PutAt(g, 0, src) }

// SyncPut copies src into the region behind g, blocking — while serving
// incoming messages — until the remote processor acknowledges the write
// (CmiSyncPut; the paper's synchronous put).
func (s *State) SyncPut(g GlobalPtr, src []byte) {
	s.Wait(s.PutPtr(g, src))
}

// Wait blocks until h completes, serving incoming messages meanwhile, so
// that two processors Get-ing from each other cannot deadlock.
func (s *State) Wait(h *Handle) {
	s.p.ServeUntil(func() bool { return h.done })
}

func (s *State) checkRange(g GlobalPtr, mem []byte, off, n int) {
	if off < 0 || off+n > len(mem) {
		panic(fmt.Sprintf("emi: pe %d: access [%d:%d] outside %d-byte region %d@pe%d",
			s.p.MyPe(), off, off+n, len(mem), g.ID, g.PE))
	}
}

// --- handlers ---

func (s *State) onGetReq(p *core.Proc, msg []byte) {
	pl := core.Payload(msg)
	id := binary.LittleEndian.Uint32(pl[0:])
	off := int(binary.LittleEndian.Uint32(pl[4:]))
	n := int(binary.LittleEndian.Uint32(pl[8:]))
	req := binary.LittleEndian.Uint32(pl[12:])
	src := int(req & 0xff)
	g := GlobalPtr{PE: p.MyPe(), ID: id}
	mem := s.Deref(g)
	s.checkRange(g, mem, off, n)
	reply := core.NewMsg(s.hGetReply, 4+n)
	rp := core.Payload(reply)
	binary.LittleEndian.PutUint32(rp[0:], req)
	copy(rp[4:], mem[off:off+n])
	p.SyncSendAndFree(src, reply)
}

func (s *State) onGetReply(p *core.Proc, msg []byte) {
	pl := core.Payload(msg)
	req := binary.LittleEndian.Uint32(pl[0:]) >> 8
	h, ok := s.pending[req]
	if !ok {
		panic(fmt.Sprintf("emi: pe %d: get-reply for unknown request %d", p.MyPe(), req))
	}
	delete(s.pending, req)
	copy(h.dst, pl[4:])
	h.done = true
}

func (s *State) onPutReq(p *core.Proc, msg []byte) {
	pl := core.Payload(msg)
	id := binary.LittleEndian.Uint32(pl[0:])
	off := int(binary.LittleEndian.Uint32(pl[4:]))
	req := binary.LittleEndian.Uint32(pl[8:])
	src := int(req & 0xff)
	data := pl[12:]
	g := GlobalPtr{PE: p.MyPe(), ID: id}
	mem := s.Deref(g)
	s.checkRange(g, mem, off, len(data))
	copy(mem[off:], data)
	ack := core.NewMsg(s.hPutAck, 4)
	binary.LittleEndian.PutUint32(core.Payload(ack), req)
	p.SyncSendAndFree(src, ack)
}

func (s *State) onPutAck(p *core.Proc, msg []byte) {
	req := binary.LittleEndian.Uint32(core.Payload(msg)) >> 8
	h, ok := s.pending[req]
	if !ok {
		panic(fmt.Sprintf("emi: pe %d: put-ack for unknown request %d", p.MyPe(), req))
	}
	delete(s.pending, req)
	h.done = true
}
