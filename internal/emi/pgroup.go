package emi

import (
	"encoding/binary"
	"fmt"
	"math"

	"converse/internal/core"
)

// Pgrp is a processor group organized as a spanning tree rooted at the
// creating processor (§3.1.3-EMI: "calls for establishing process
// groups, broadcasting to an established process group, and carrying out
// reductions and other global operations, as well as spanning-tree based
// operations within a processor group").
//
// The root builds the tree with AddChildren; the descriptor is a plain
// value that can be encoded into messages, so any processor holding it
// can query the topology or initiate group operations (the multicast
// carries the descriptor along the tree, so members need no prior
// registration).
type Pgrp struct {
	ID      uint64
	members []int32 // members[0] is the root
	parent  []int32 // index into members of each member's parent; -1 at root
}

// NewPgrp creates a processor group with the calling processor as root
// (CmiPgrpCreate).
func (s *State) NewPgrp() *Pgrp {
	s.nextGrp++
	return &Pgrp{
		ID:      uint64(s.p.MyPe())<<32 | uint64(s.nextGrp),
		members: []int32{int32(s.p.MyPe())},
		parent:  []int32{-1},
	}
}

// AllGroup returns the machine-wide processor group: every processor,
// arranged as a binary spanning tree rooted at 0 (member i's parent is
// (i-1)/2). Each processor constructs the descriptor locally and they
// are identical everywhere, so AllGroup-based collectives need no setup
// communication. The group id 1 is reserved for it.
func (s *State) AllGroup() *Pgrp {
	g := &Pgrp{ID: 1}
	for i := 0; i < s.p.NumPes(); i++ {
		g.members = append(g.members, int32(i))
		if i == 0 {
			g.parent = append(g.parent, -1)
		} else {
			g.parent = append(g.parent, int32((i-1)/2))
		}
	}
	return g
}

// AddChildren adds the processors in procs to the group as children of
// member penum (CmiAddChildren). Per the paper this may be called only
// by the group's root processor, before the descriptor is shipped to
// other processors.
func (s *State) AddChildren(g *Pgrp, penum int, procs []int) {
	if s.p.MyPe() != g.RootPE() {
		panic(fmt.Sprintf("emi: pe %d: AddChildren called by non-root (root is %d)", s.p.MyPe(), g.RootPE()))
	}
	pi := g.index(penum)
	for _, pe := range procs {
		if g.contains(pe) {
			panic(fmt.Sprintf("emi: AddChildren: pe %d already in group", pe))
		}
		g.members = append(g.members, int32(pe))
		g.parent = append(g.parent, int32(pi))
	}
}

// RootPE returns the processor id of the group's root (CmiPgrpRoot).
func (g *Pgrp) RootPE() int { return int(g.members[0]) }

// Size reports the number of member processors.
func (g *Pgrp) Size() int { return len(g.members) }

// Members returns the member processor ids, root first.
func (g *Pgrp) Members() []int {
	out := make([]int, len(g.members))
	for i, m := range g.members {
		out[i] = int(m)
	}
	return out
}

// Parent returns the processor id of penum's parent in the group
// (CmiParent); the root's parent is -1.
func (g *Pgrp) Parent(penum int) int {
	pi := g.parent[g.index(penum)]
	if pi < 0 {
		return -1
	}
	return int(g.members[pi])
}

// NumChildren reports the number of children of penum in the group
// (CmiNumChildren).
func (g *Pgrp) NumChildren(penum int) int { return len(g.Children(penum)) }

// Children returns the processor ids of penum's children (CmiChildren).
func (g *Pgrp) Children(penum int) []int {
	pi := int32(g.index(penum))
	var out []int
	for i, par := range g.parent {
		if par == pi {
			out = append(out, int(g.members[i]))
		}
	}
	return out
}

// Contains reports whether pe is a member of the group.
func (g *Pgrp) Contains(pe int) bool { return g.contains(pe) }

func (g *Pgrp) contains(pe int) bool {
	for _, m := range g.members {
		if int(m) == pe {
			return true
		}
	}
	return false
}

func (g *Pgrp) index(pe int) int {
	for i, m := range g.members {
		if int(m) == pe {
			return i
		}
	}
	panic(fmt.Sprintf("emi: pe %d is not a member of group %d", pe, g.ID))
}

// Encode serializes the group descriptor.
func (g *Pgrp) Encode() []byte {
	buf := make([]byte, 12+8*len(g.members))
	binary.LittleEndian.PutUint64(buf[0:], g.ID)
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(g.members)))
	off := 12
	for i := range g.members {
		binary.LittleEndian.PutUint32(buf[off:], uint32(g.members[i]))
		binary.LittleEndian.PutUint32(buf[off+4:], uint32(g.parent[i]))
		off += 8
	}
	return buf
}

// DecodePgrp reads a descriptor written by Encode, returning it and the
// number of bytes consumed.
func DecodePgrp(buf []byte) (*Pgrp, int) {
	g := &Pgrp{ID: binary.LittleEndian.Uint64(buf[0:])}
	n := int(binary.LittleEndian.Uint32(buf[8:]))
	off := 12
	for i := 0; i < n; i++ {
		g.members = append(g.members, int32(binary.LittleEndian.Uint32(buf[off:])))
		g.parent = append(g.parent, int32(binary.LittleEndian.Uint32(buf[off+4:])))
		off += 8
	}
	return g, off
}

// Multicast sends the generalized message msg to every member of the
// group except the calling processor (CmiAsyncMulticast; the caller need
// not belong to the group). Delivery forwards along the group's spanning
// tree, each member handing copies to its children before invoking the
// message's handler locally. Each recipient's handler receives its own
// copy of msg and owns it (no GrabBuffer needed).
func (s *State) Multicast(g *Pgrp, msg []byte) {
	if len(msg) < core.HeaderSize {
		panic("emi: Multicast of message smaller than the header")
	}
	wrapped := s.wrapMcast(g, msg)
	s.p.SyncSendAndFree(g.RootPE(), wrapped)
}

// wrapMcast builds the tree-forwarding envelope:
// payload = [callerPE u32][grp blob][user msg].
func (s *State) wrapMcast(g *Pgrp, msg []byte) []byte {
	blob := g.Encode()
	w := core.NewMsg(s.hMcast, 4+len(blob)+len(msg))
	pl := core.Payload(w)
	binary.LittleEndian.PutUint32(pl[0:], uint32(s.p.MyPe()))
	copy(pl[4:], blob)
	copy(pl[4+len(blob):], msg)
	return w
}

// onMcast forwards the envelope to this member's children, then delivers
// the user message locally unless this processor is the original caller.
func (s *State) onMcast(p *core.Proc, msg []byte) {
	pl := core.Payload(msg)
	caller := int(binary.LittleEndian.Uint32(pl[0:]))
	g, n := DecodePgrp(pl[4:])
	user := pl[4+n:]
	for _, child := range g.Children(p.MyPe()) {
		fwd := core.NewMsg(s.hMcast, len(pl))
		copy(core.Payload(fwd), pl)
		p.SyncSendAndFree(child, fwd)
	}
	if p.MyPe() == caller {
		return
	}
	own := make([]byte, len(user))
	copy(own, user)
	p.HandlerFunc(core.HandlerOf(own))(p, own)
}

// --- reductions ---

// ReduceOp identifies a reduction operator.
type ReduceOp uint8

// Supported reduction operators. The integer operators combine int64
// contributions; the F-prefixed operators combine float64 contributions
// transported through their IEEE-754 bit patterns (used by the
// data-parallel layer).
const (
	OpSum ReduceOp = iota + 1
	OpMax
	OpMin
	OpProd
	OpFSum
	OpFMax
	OpFMin
)

func (op ReduceOp) apply(a, b int64) int64 {
	switch op {
	case OpSum:
		return a + b
	case OpMax:
		if a > b {
			return a
		}
		return b
	case OpMin:
		if a < b {
			return a
		}
		return b
	case OpProd:
		return a * b
	case OpFSum, OpFMax, OpFMin:
		x, y := math.Float64frombits(uint64(a)), math.Float64frombits(uint64(b))
		var r float64
		switch op {
		case OpFSum:
			r = x + y
		case OpFMax:
			r = math.Max(x, y)
		default:
			r = math.Min(x, y)
		}
		return int64(math.Float64bits(r))
	}
	panic(fmt.Sprintf("emi: unknown reduction op %d", op))
}

type redKey struct {
	grp uint64
	seq uint32
}

type redState struct {
	acc   int64
	have  int
	need  int // 0 until the local member contributes
	op    ReduceOp
	valid bool // acc holds at least one contribution
}

// Reduce performs a spanning-tree reduction over the group: every member
// must call it (in the same sequence relative to other Reduce calls on
// the same group) with its contribution. Contributions combine up the
// tree; at the root, Reduce returns (result, true); at other members it
// returns as soon as the subtree value has been sent up, with ok=false.
// While waiting for children, incoming messages are served.
func (s *State) Reduce(g *Pgrp, contrib int64, op ReduceOp) (result int64, ok bool) {
	me := s.p.MyPe()
	if !g.Contains(me) {
		panic(fmt.Sprintf("emi: pe %d: Reduce on a group it does not belong to", me))
	}
	s.seqs[g.ID]++
	key := redKey{grp: g.ID, seq: s.seqs[g.ID]}
	st := s.red(key)
	st.op = op
	st.need = 1 + g.NumChildren(me)
	s.contribute(st, contrib)
	s.p.ServeUntil(func() bool { return st.have == st.need })
	delete(s.reductions, key)
	if me == g.RootPE() {
		return st.acc, true
	}
	up := core.NewMsg(s.hReduce, 21)
	pl := core.Payload(up)
	binary.LittleEndian.PutUint64(pl[0:], key.grp)
	binary.LittleEndian.PutUint32(pl[8:], key.seq)
	pl[12] = byte(op)
	binary.LittleEndian.PutUint64(pl[13:], uint64(st.acc))
	s.p.SyncSendAndFree(g.Parent(me), up)
	return 0, false
}

// ReduceFloat is Reduce over float64 contributions; op must be one of
// the F-prefixed operators.
func (s *State) ReduceFloat(g *Pgrp, contrib float64, op ReduceOp) (result float64, ok bool) {
	if op != OpFSum && op != OpFMax && op != OpFMin {
		panic(fmt.Sprintf("emi: ReduceFloat with non-float op %d", op))
	}
	r, isRoot := s.Reduce(g, int64(math.Float64bits(contrib)), op)
	return math.Float64frombits(uint64(r)), isRoot
}

// red returns (creating if needed) the reduction state for key.
func (s *State) red(key redKey) *redState {
	st, ok := s.reductions[key]
	if !ok {
		st = &redState{}
		s.reductions[key] = st
	}
	return st
}

func (s *State) contribute(st *redState, v int64) {
	if st.valid {
		st.acc = st.op.apply(st.acc, v)
	} else {
		st.acc, st.valid = v, true
	}
	st.have++
}

// onReduce folds a child's subtree contribution into the local state.
// It may arrive before the local member has called Reduce; the state is
// created on demand and the op recorded from the message.
func (s *State) onReduce(p *core.Proc, msg []byte) {
	pl := core.Payload(msg)
	key := redKey{
		grp: binary.LittleEndian.Uint64(pl[0:]),
		seq: binary.LittleEndian.Uint32(pl[8:]),
	}
	op := ReduceOp(pl[12])
	v := int64(binary.LittleEndian.Uint64(pl[13:]))
	st := s.red(key)
	st.op = op
	s.contribute(st, v)
}

// --- group barrier ---

// Barrier blocks until every member of the group has called it: a
// reduction up the tree followed by a release multicast down it (a
// spanning-tree "global operation" in the paper's terms). All members,
// including the root, serve incoming messages while blocked.
func (s *State) Barrier(g *Pgrp) {
	key := redKey{grp: g.ID, seq: s.seqs[g.ID] + 1} // the sequence Reduce will use
	if _, root := s.Reduce(g, 0, OpSum); root {
		// Everyone has arrived: release down the tree.
		s.releaseChildren(g, key)
		return
	}
	s.p.ServeUntil(func() bool { return s.released[key] })
	delete(s.released, key)
	s.releaseChildren(g, key)
}

// releaseChildren forwards the barrier release to this member's
// children.
func (s *State) releaseChildren(g *Pgrp, key redKey) {
	for _, child := range g.Children(s.p.MyPe()) {
		rel := core.NewMsg(s.hRelease, 12)
		pl := core.Payload(rel)
		binary.LittleEndian.PutUint64(pl[0:], key.grp)
		binary.LittleEndian.PutUint32(pl[8:], key.seq)
		s.p.SyncSendAndFree(child, rel)
	}
}

func (s *State) onRelease(p *core.Proc, msg []byte) {
	pl := core.Payload(msg)
	key := redKey{
		grp: binary.LittleEndian.Uint64(pl[0:]),
		seq: binary.LittleEndian.Uint32(pl[8:]),
	}
	s.released[key] = true
}
