// Package emi implements the Extended Machine Interface of §3.1.3: the
// calls "concerned with scatter and gather style communications,
// processor groups, and global memory operations". (The gather side —
// CmiVectorSend — lives in internal/core with the other send calls; this
// package provides scattering, spanning-tree processor groups with
// multicast and reductions, and global pointers with get/put.)
package emi

import (
	"encoding/binary"
	"fmt"

	"converse/internal/core"
)

// Match identifies incoming messages for an advance-receive: a message
// matches when the little-endian uint32 at byte Offset equals Value.
// Multiple matches are conjunctive. Offsets are absolute within the
// message (header included), since the paper lets tags live at arbitrary
// positions.
type Match struct {
	Offset int
	Value  uint32
}

// Segment directs part of a matching message into user memory: len(Dst)
// bytes starting at byte MsgOffset of the message are copied into Dst.
type Segment struct {
	MsgOffset int
	Dst       []byte
}

// Scatter is a registered advance-receive. It is one-shot: after a
// message matches and is scattered, the registration is spent.
type Scatter struct {
	matches []Match
	segs    []Segment
	notify  int // handler to enqueue an empty message for; -1 = none
	done    bool
	src     int // source PE of the matched message (valid when done)
}

// Done reports whether a message has been scattered.
func (s *Scatter) Done() bool { return s.done }

// scatterKey locates the per-processor scatter table.
const scatterKey = "converse.emi.scatter"

type scatterTable struct {
	regs []*Scatter
}

// RegisterScatter posts an advance-receive (the EMI scatter call): when
// a network message satisfying all matches arrives, its pieces are
// copied into the segment destinations instead of being delivered to a
// handler. It is expected (although not required) that the registration
// is made before the message arrives; a registration can match a message
// that arrives at any later point.
func RegisterScatter(p *core.Proc, matches []Match, segs []Segment) *Scatter {
	return register(p, matches, segs, -1)
}

// RegisterScatterNotify is RegisterScatter plus notification: after
// scattering, a short empty message for the given handler is enqueued in
// the scheduler's queue, telling the recipient that the data has arrived
// (the paper's second scatter variant).
func RegisterScatterNotify(p *core.Proc, matches []Match, segs []Segment, handler int) *Scatter {
	return register(p, matches, segs, handler)
}

func register(p *core.Proc, matches []Match, segs []Segment, notify int) *Scatter {
	if len(matches) == 0 {
		panic("emi: scatter registration with no matches")
	}
	s := &Scatter{matches: matches, segs: segs, notify: notify}
	tbl, ok := p.Ext(scatterKey).(*scatterTable)
	if !ok {
		tbl = &scatterTable{}
		p.SetExt(scatterKey, tbl)
		p.AddPreDispatch(func(msg []byte) bool { return tbl.tryScatter(p, msg) })
	}
	tbl.regs = append(tbl.regs, s)
	return s
}

// Cancel withdraws an unmatched registration; it is a no-op once done.
func (s *Scatter) Cancel() { s.done = true }

// tryScatter is the pre-dispatch hook: the first live registration whose
// matches all hold consumes the message.
func (t *scatterTable) tryScatter(p *core.Proc, msg []byte) bool {
	for i, s := range t.regs {
		if s.done || !s.matchesMsg(msg) {
			continue
		}
		for _, seg := range s.segs {
			if seg.MsgOffset+len(seg.Dst) > len(msg) {
				panic(fmt.Sprintf("emi: pe %d: scatter segment [%d:%d] exceeds %d-byte message",
					p.MyPe(), seg.MsgOffset, seg.MsgOffset+len(seg.Dst), len(msg)))
			}
			copy(seg.Dst, msg[seg.MsgOffset:])
		}
		s.done = true
		t.regs = append(t.regs[:i], t.regs[i+1:]...)
		if s.notify >= 0 {
			p.Enqueue(core.NewMsg(s.notify, 0))
		}
		return true
	}
	return false
}

func (s *Scatter) matchesMsg(msg []byte) bool {
	for _, m := range s.matches {
		if m.Offset+4 > len(msg) {
			return false
		}
		if binary.LittleEndian.Uint32(msg[m.Offset:]) != m.Value {
			return false
		}
	}
	return true
}
