// Package faultnet is the deterministic fault-injection substrate: a
// seedable plan of network faults (drop, delay, duplicate, reorder,
// bit-corrupt, link stalls and kills, partitions, scripted crashes)
// that composes over either machine substrate. Under the TCP machine
// layer (internal/mnet) faults are injected at frame granularity below
// the reliability layer, so FailurePolicy=retry repairs them and
// failfast dies from them; under the simulated multicomputer WrapSim
// applies the same plan at packet granularity (with no reliability
// layer underneath, sim faults fail loudly — they exist to test how
// upper layers react, not to be survived).
//
// A plan is a comma-separated string of key=value terms:
//
//	seed=42                 RNG seed (default 1); same seed, same faults
//	drop=0.01               drop each data frame with probability 0.01 (or "1%")
//	dup=0.005               duplicate a frame
//	corrupt=0.002           flip one payload bit of a frame
//	reorder=0.01            hold a frame and emit it after its successor
//	delay=2ms               delay every frame
//	jitter=1ms              extra random delay in [0, jitter]
//	killlink=1-0@120        kill rank 1's link to rank 0 at its 120th frame
//	stall=0-1@200+300ms     stall rank 0's link to rank 1 for 300ms at frame 200
//	crash=2@500             crash rank 2 when it has staged 500 frames total
//	partition=0.1|2.3@2s+1s ranks {0,1} vs {2,3} partitioned for 1s, 2s in
//
// Probabilities apply per data frame, drawn from a per-link RNG seeded
// from (seed, sender rank, peer rank) — two runs with the same plan and
// the same per-link frame order inject the same faults, regardless of
// how links interleave.
package faultnet

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// LinkEvent is a scripted one-shot event on the directed link From→To,
// triggered when the link stages its AtFrame-th data frame.
type LinkEvent struct {
	From, To int
	AtFrame  uint64
	Dur      time.Duration // stall duration; zero for kills
}

// RankEvent is a scripted crash of one rank, triggered when that rank
// has staged AtFrame data frames in total (across all its links).
type RankEvent struct {
	Rank    int
	AtFrame uint64
}

// Partition is a timed split of the machine: frames between GroupA and
// GroupB are dropped during [After, After+For) on the injector's clock
// (started when the machine starts).
type Partition struct {
	GroupA, GroupB []int
	After, For     time.Duration
}

// Plan is one parsed fault plan. The zero value injects nothing.
type Plan struct {
	Seed    int64
	Drop    float64
	Dup     float64
	Corrupt float64
	Reorder float64
	Delay   time.Duration
	Jitter  time.Duration
	Kills   []LinkEvent
	Stalls  []LinkEvent
	Crashes []RankEvent
	Part    *Partition

	raw string
}

// String returns the plan in its source form.
func (p *Plan) String() string { return p.raw }

// Empty reports whether the plan injects no faults at all.
func (p *Plan) Empty() bool {
	return p.Drop == 0 && p.Dup == 0 && p.Corrupt == 0 && p.Reorder == 0 &&
		p.Delay == 0 && len(p.Kills) == 0 && len(p.Stalls) == 0 &&
		len(p.Crashes) == 0 && p.Part == nil
}

// Parse parses a fault-plan string (see the package comment for the
// grammar). An empty string parses to an empty plan.
func Parse(s string) (*Plan, error) {
	p := &Plan{Seed: 1, raw: s}
	if strings.TrimSpace(s) == "" {
		return p, nil
	}
	for _, term := range strings.Split(s, ",") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		key, val, ok := strings.Cut(term, "=")
		if !ok {
			return nil, fmt.Errorf("faultnet: term %q is not key=value", term)
		}
		var err error
		switch key {
		case "seed":
			p.Seed, err = strconv.ParseInt(val, 10, 64)
		case "drop":
			p.Drop, err = parseProb(val)
		case "dup":
			p.Dup, err = parseProb(val)
		case "corrupt":
			p.Corrupt, err = parseProb(val)
		case "reorder":
			p.Reorder, err = parseProb(val)
		case "delay":
			p.Delay, err = time.ParseDuration(val)
		case "jitter":
			p.Jitter, err = time.ParseDuration(val)
		case "killlink":
			var ev LinkEvent
			if ev, err = parseLinkEvent(val, false); err == nil {
				p.Kills = append(p.Kills, ev)
			}
		case "stall":
			var ev LinkEvent
			if ev, err = parseLinkEvent(val, true); err == nil {
				p.Stalls = append(p.Stalls, ev)
			}
		case "crash":
			var ev RankEvent
			if ev, err = parseRankEvent(val); err == nil {
				p.Crashes = append(p.Crashes, ev)
			}
		case "partition":
			p.Part, err = parsePartition(val)
		default:
			return nil, fmt.Errorf("faultnet: unknown fault %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("faultnet: bad %s value %q: %v", key, val, err)
		}
	}
	for _, pr := range []struct {
		name string
		v    float64
	}{{"drop", p.Drop}, {"dup", p.Dup}, {"corrupt", p.Corrupt}, {"reorder", p.Reorder}} {
		if pr.v < 0 || pr.v > 1 {
			return nil, fmt.Errorf("faultnet: %s probability %v outside [0,1]", pr.name, pr.v)
		}
	}
	if p.Delay < 0 || p.Jitter < 0 {
		return nil, fmt.Errorf("faultnet: negative delay/jitter")
	}
	return p, nil
}

// MustParse is Parse for plans known good at compile time (tests,
// examples); it panics on error.
func MustParse(s string) *Plan {
	p, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return p
}

func parseProb(s string) (float64, error) {
	pct := strings.HasSuffix(s, "%")
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		return 0, err
	}
	if pct {
		v /= 100
	}
	return v, nil
}

// parseLinkEvent parses "FROM-TO@FRAME" (kills) or "FROM-TO@FRAME+DUR"
// (stalls).
func parseLinkEvent(s string, wantDur bool) (LinkEvent, error) {
	var ev LinkEvent
	link, rest, ok := strings.Cut(s, "@")
	if !ok {
		return ev, fmt.Errorf("missing @FRAME")
	}
	from, to, ok := strings.Cut(link, "-")
	if !ok {
		return ev, fmt.Errorf("link is not FROM-TO")
	}
	var err error
	if ev.From, err = strconv.Atoi(from); err != nil {
		return ev, err
	}
	if ev.To, err = strconv.Atoi(to); err != nil {
		return ev, err
	}
	frame := rest
	if wantDur {
		var durs string
		if frame, durs, ok = strings.Cut(rest, "+"); !ok {
			return ev, fmt.Errorf("stall needs +DURATION")
		}
		if ev.Dur, err = time.ParseDuration(durs); err != nil {
			return ev, err
		}
	}
	n, err := strconv.ParseUint(frame, 10, 64)
	if err != nil {
		return ev, err
	}
	if n == 0 || ev.From < 0 || ev.To < 0 || ev.From == ev.To {
		return ev, fmt.Errorf("needs distinct non-negative ranks and frame >= 1")
	}
	ev.AtFrame = n
	return ev, nil
}

// parseRankEvent parses "RANK@FRAME".
func parseRankEvent(s string) (RankEvent, error) {
	var ev RankEvent
	rank, frame, ok := strings.Cut(s, "@")
	if !ok {
		return ev, fmt.Errorf("missing @FRAME")
	}
	var err error
	if ev.Rank, err = strconv.Atoi(rank); err != nil {
		return ev, err
	}
	if ev.AtFrame, err = strconv.ParseUint(frame, 10, 64); err != nil {
		return ev, err
	}
	if ev.Rank < 0 || ev.AtFrame == 0 {
		return ev, fmt.Errorf("needs rank >= 0 and frame >= 1")
	}
	return ev, nil
}

// parsePartition parses "A.B.C|D.E@AFTER+FOR".
func parsePartition(s string) (*Partition, error) {
	groups, when, ok := strings.Cut(s, "@")
	if !ok {
		return nil, fmt.Errorf("missing @AFTER+FOR")
	}
	ga, gb, ok := strings.Cut(groups, "|")
	if !ok {
		return nil, fmt.Errorf("groups are not A|B")
	}
	after, fors, ok := strings.Cut(when, "+")
	if !ok {
		return nil, fmt.Errorf("window is not AFTER+FOR")
	}
	part := &Partition{}
	var err error
	if part.GroupA, err = parseRanks(ga); err != nil {
		return nil, err
	}
	if part.GroupB, err = parseRanks(gb); err != nil {
		return nil, err
	}
	if part.After, err = time.ParseDuration(after); err != nil {
		return nil, err
	}
	if part.For, err = time.ParseDuration(fors); err != nil {
		return nil, err
	}
	if part.For <= 0 {
		return nil, fmt.Errorf("partition duration must be positive")
	}
	return part, nil
}

func parseRanks(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ".") {
		r, err := strconv.Atoi(f)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	sort.Ints(out)
	return out, nil
}
