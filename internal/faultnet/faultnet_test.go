package faultnet

import (
	"reflect"
	"testing"
	"time"

	"converse/internal/machine"
)

func TestParseFullGrammar(t *testing.T) {
	p, err := Parse("seed=42, drop=1%, dup=0.005, corrupt=0.002, reorder=0.01, " +
		"delay=2ms, jitter=1ms, killlink=1-0@120, stall=0-1@200+300ms, " +
		"crash=2@500, partition=0.1|2.3@2s+1s")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 || p.Drop != 0.01 || p.Dup != 0.005 || p.Corrupt != 0.002 || p.Reorder != 0.01 {
		t.Errorf("probabilities parsed wrong: %+v", p)
	}
	if p.Delay != 2*time.Millisecond || p.Jitter != time.Millisecond {
		t.Errorf("delays parsed wrong: %+v", p)
	}
	if want := []LinkEvent{{From: 1, To: 0, AtFrame: 120}}; !reflect.DeepEqual(p.Kills, want) {
		t.Errorf("Kills = %+v, want %+v", p.Kills, want)
	}
	if want := []LinkEvent{{From: 0, To: 1, AtFrame: 200, Dur: 300 * time.Millisecond}}; !reflect.DeepEqual(p.Stalls, want) {
		t.Errorf("Stalls = %+v, want %+v", p.Stalls, want)
	}
	if want := []RankEvent{{Rank: 2, AtFrame: 500}}; !reflect.DeepEqual(p.Crashes, want) {
		t.Errorf("Crashes = %+v, want %+v", p.Crashes, want)
	}
	if p.Part == nil || !reflect.DeepEqual(p.Part.GroupA, []int{0, 1}) ||
		!reflect.DeepEqual(p.Part.GroupB, []int{2, 3}) ||
		p.Part.After != 2*time.Second || p.Part.For != time.Second {
		t.Errorf("Part = %+v", p.Part)
	}
	if p.Empty() {
		t.Error("full plan reported empty")
	}
}

func TestParseEmptyAndDefaults(t *testing.T) {
	for _, s := range []string{"", "   "} {
		p, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if !p.Empty() || p.Seed != 1 {
			t.Errorf("Parse(%q) = %+v, want empty plan with seed 1", s, p)
		}
	}
	if New(MustParse(""), 0) != nil {
		t.Error("New on an empty plan must return nil (no injection)")
	}
	if New(nil, 0) != nil {
		t.Error("New(nil) must return nil")
	}
	var nilInj *Injector
	if s := nilInj.Stats(); s != (Stats{}) {
		t.Errorf("nil injector Stats() = %+v, want zero", s)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, s := range []string{
		"drop",              // not key=value
		"warp=0.1",          // unknown fault
		"drop=1.5",          // probability out of range
		"drop=150%",         // ditto, percent form
		"drop=x",            // not a number
		"delay=-2ms",        // negative duration
		"killlink=1@5",      // link missing TO
		"killlink=1-1@5",    // self-link
		"killlink=1-0@0",    // frame 0
		"stall=0-1@5",       // stall missing duration
		"crash=2",           // missing frame
		"partition=0|1@2s",  // window missing +FOR
		"partition=0.1@2+1", // missing group separator
	} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted", s)
		}
	}
}

func TestInjectorDeterminism(t *testing.T) {
	const plan = "seed=9,drop=0.2,dup=0.1,corrupt=0.1,reorder=0.1"
	draw := func(rank, peer, n int) []TxFault {
		li := New(MustParse(plan), rank).Link(peer)
		out := make([]TxFault, n)
		for i := range out {
			out[i] = li.Tx()
		}
		return out
	}
	a, b := draw(0, 1, 200), draw(0, 1, 200)
	if !reflect.DeepEqual(a, b) {
		t.Error("same plan, rank and link drew different fault sequences")
	}
	// A different link of the same rank, and the same link of a
	// different rank, must draw decorrelated sequences.
	if reflect.DeepEqual(a, draw(0, 2, 200)) {
		t.Error("links 0->1 and 0->2 drew identical fault sequences")
	}
	if reflect.DeepEqual(a, draw(1, 0, 200)) {
		t.Error("links 0->1 and 1->0 drew identical fault sequences")
	}
}

func TestScriptedLinkKillFiresOnce(t *testing.T) {
	in := New(MustParse("killlink=0-1@3"), 0)
	li := in.Link(1)
	for i := 1; i <= 5; i++ {
		f := li.Tx()
		if got, want := f.Kill, i == 3; got != want {
			t.Errorf("frame %d: Kill=%v, want %v", i, got, want)
		}
	}
	// The kill is 0->1 only: the reverse link and other ranks are clean.
	if New(MustParse("killlink=0-1@3"), 1) != nil {
		li2 := New(MustParse("killlink=0-1@3"), 1).Link(0)
		for i := 0; i < 5; i++ {
			if li2.Tx().Kill {
				t.Error("kill fired on the reverse link")
			}
		}
	}
	if s := in.Stats(); s.Kills != 1 || s.Frames != 5 {
		t.Errorf("Stats = %+v, want Kills=1 Frames=5", s)
	}
}

func TestScriptedCrashUsesTotalFrames(t *testing.T) {
	in := New(MustParse("crash=0@4"), 0)
	// Frames staged across two links both advance the crash clock.
	a, b := in.Link(1), in.Link(2)
	seq := []*LinkInjector{a, b, a, b}
	for i, li := range seq {
		f := li.Tx()
		if got, want := f.Crash, i == 3; got != want {
			t.Errorf("total frame %d: Crash=%v, want %v", i+1, got, want)
		}
	}
}

func TestStallAddsDelayOnce(t *testing.T) {
	li := New(MustParse("stall=0-1@2+250ms"), 0).Link(1)
	if f := li.Tx(); f.Delay != 0 {
		t.Errorf("frame 1 delayed by %v", f.Delay)
	}
	if f := li.Tx(); f.Delay != 250*time.Millisecond {
		t.Errorf("frame 2 delay = %v, want 250ms", f.Delay)
	}
	if f := li.Tx(); f.Delay != 0 {
		t.Errorf("frame 3 delayed by %v (stall must be one-shot)", f.Delay)
	}
}

// simPE is a minimal in-memory Substrate for exercising WrapSim.
type simPE struct {
	id   int
	sent [][]byte
	dst  []int
}

func (s *simPE) ID() int           { return s.id }
func (s *simPE) NumPEs() int       { return 4 }
func (s *simPE) Node() int         { return s.id }
func (s *simPE) NumNodes() int     { return 4 }
func (s *simPE) NodeSize(int) int  { return 1 }
func (s *simPE) NodeOf(pe int) int { return pe }
func (s *simPE) Clock() float64    { return 0 }
func (s *simPE) Charge(float64)    {}
func (s *simPE) AdvanceTo(float64) {}
func (s *simPE) SendOwned(dst int, data []byte) {
	s.dst = append(s.dst, dst)
	s.sent = append(s.sent, data)
}
func (s *simPE) TryRecvBatch([]machine.Packet) int { return 0 }
func (s *simPE) Recv() (machine.Packet, bool)      { return machine.Packet{}, false }
func (s *simPE) Model() machine.CostModel          { return nil }
func (s *simPE) Printf(string, ...any)             {}
func (s *simPE) Errorf(string, ...any)             {}
func (s *simPE) Scanf(string, ...any) (int, error) { return 0, nil }
func (s *simPE) ReadLine() (string, error)         { return "", nil }

func TestWrapSimDropsAndPassesLoopback(t *testing.T) {
	inner := &simPE{id: 0}
	sub := WrapSim(inner, New(MustParse("seed=3,drop=1"), 0))
	// Loopback is never faulted; remote sends all drop under drop=1.
	sub.SendOwned(0, []byte("self"))
	for i := 0; i < 10; i++ {
		sub.SendOwned(1, []byte("gone"))
	}
	if len(inner.sent) != 1 || inner.dst[0] != 0 {
		t.Fatalf("inner saw %d sends to %v, want only the loopback", len(inner.sent), inner.dst)
	}
	// A nil injector must return the substrate unchanged.
	if WrapSim(inner, nil) != Substrate(inner) {
		t.Error("WrapSim(nil injector) wrapped anyway")
	}
}

func TestWrapSimKillBlackholesForever(t *testing.T) {
	inner := &simPE{id: 0}
	sub := WrapSim(inner, New(MustParse("killlink=0-1@2"), 0))
	for i := 0; i < 6; i++ {
		sub.SendOwned(1, []byte{byte(i)})
	}
	// Frame 1 passes, frame 2 trips the kill, the rest blackhole.
	if len(inner.sent) != 1 || inner.sent[0][0] != 0 {
		t.Fatalf("inner saw %d sends (%v), want just the first", len(inner.sent), inner.dst)
	}
}
