package faultnet

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Injector executes one rank's side of a fault plan. Each directed link
// gets its own LinkInjector with an RNG seeded from (plan seed, rank,
// peer), so the fault sequence a link experiences depends only on that
// link's frame order — never on how concurrent links interleave.
type Injector struct {
	plan  *Plan
	rank  int
	total atomic.Uint64 // data frames staged across all links (crash clock)
	start atomic.Int64  // machine start, unix nanos (partition clock)

	mu    sync.Mutex
	links map[int]*LinkInjector

	// Counters, readable via Stats while the run is live.
	drops, dups, corrupts, holds, kills, stalls, delays, crashes atomic.Uint64
}

// New builds the injector for one rank of the plan. A nil or empty plan
// yields a nil injector, which every consumer treats as "no faults".
func New(plan *Plan, rank int) *Injector {
	if plan == nil || plan.Empty() {
		return nil
	}
	return &Injector{plan: plan, rank: rank, links: make(map[int]*LinkInjector)}
}

// Plan returns the plan this injector executes.
func (in *Injector) Plan() *Plan { return in.plan }

// StartClock marks the machine start; partition windows are measured
// from here. Idempotent.
func (in *Injector) StartClock() {
	in.start.CompareAndSwap(0, time.Now().UnixNano())
}

// Link returns the injector for this rank's link to peer, creating it
// on first use.
func (in *Injector) Link(peer int) *LinkInjector {
	in.mu.Lock()
	defer in.mu.Unlock()
	li := in.links[peer]
	if li == nil {
		seed := in.plan.Seed ^ int64(in.rank+1)<<40 ^ int64(peer+1)<<20
		li = &LinkInjector{in: in, peer: peer, rng: rand.New(rand.NewSource(seed))}
		for _, ev := range in.plan.Kills {
			if ev.From == in.rank && ev.To == peer {
				li.kills = append(li.kills, ev)
			}
		}
		for _, ev := range in.plan.Stalls {
			if ev.From == in.rank && ev.To == peer {
				li.stalls = append(li.stalls, ev)
			}
		}
		in.links[peer] = li
	}
	return li
}

// partitioned reports whether the link rank→peer is inside the plan's
// partition window right now.
func (in *Injector) partitioned(peer int) bool {
	part := in.plan.Part
	if part == nil {
		return false
	}
	start := in.start.Load()
	if start == 0 {
		return false
	}
	since := time.Duration(time.Now().UnixNano() - start)
	if since < part.After || since >= part.After+part.For {
		return false
	}
	return (inGroup(part.GroupA, in.rank) && inGroup(part.GroupB, peer)) ||
		(inGroup(part.GroupB, in.rank) && inGroup(part.GroupA, peer))
}

func inGroup(g []int, r int) bool {
	for _, v := range g {
		if v == r {
			return true
		}
	}
	return false
}

// crashDue reports whether staging the n-th total frame trips a
// scripted crash of this rank.
func (in *Injector) crashDue(n uint64) bool {
	for _, ev := range in.plan.Crashes {
		if ev.Rank == in.rank && n == ev.AtFrame {
			in.crashes.Add(1)
			return true
		}
	}
	return false
}

// Stats is a snapshot of the injector's fault counters.
type Stats struct {
	Frames, Drops, Dups, Corrupts, Holds, Kills, Stalls, Delays, Crashes uint64
}

// Stats returns the counters accumulated so far.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	return Stats{
		Frames: in.total.Load(), Drops: in.drops.Load(), Dups: in.dups.Load(),
		Corrupts: in.corrupts.Load(), Holds: in.holds.Load(), Kills: in.kills.Load(),
		Stalls: in.stalls.Load(), Delays: in.delays.Load(), Crashes: in.crashes.Load(),
	}
}

// TxFault is the injector's verdict on one outbound data frame.
type TxFault struct {
	Drop    bool // frame vanishes on the wire
	Dup     bool // frame is transmitted twice
	Corrupt bool // one payload bit is flipped in transit
	Hold    bool // frame is held and emitted after its successor (reorder)
	Kill    bool // the link dies now (scripted)
	Crash   bool // this rank dies now (scripted)

	CorruptBit int           // which bit to flip when Corrupt
	Delay      time.Duration // added transmission latency
}

// LinkInjector decides the fate of one directed link's frames. Calls
// are cheap (one mutex, a few RNG draws) and deterministic in the
// link's frame sequence.
type LinkInjector struct {
	in   *Injector
	peer int

	mu     sync.Mutex
	rng    *rand.Rand
	frames uint64
	kills  []LinkEvent
	stalls []LinkEvent
}

// Tx draws the fault verdict for the link's next outbound data frame.
func (li *LinkInjector) Tx() TxFault {
	li.mu.Lock()
	defer li.mu.Unlock()
	li.frames++
	total := li.in.total.Add(1)

	var f TxFault
	if li.in.crashDue(total) {
		f.Crash = true
		return f
	}
	for i, ev := range li.kills {
		if li.frames == ev.AtFrame {
			li.kills = append(li.kills[:i], li.kills[i+1:]...)
			li.in.kills.Add(1)
			f.Kill = true
			return f
		}
	}
	for i, ev := range li.stalls {
		if li.frames == ev.AtFrame {
			li.stalls = append(li.stalls[:i], li.stalls[i+1:]...)
			li.in.stalls.Add(1)
			f.Delay += ev.Dur
			break
		}
	}
	p := li.in.plan
	if li.in.partitioned(li.peer) {
		li.in.drops.Add(1)
		f.Drop = true
		return f
	}
	if p.Drop > 0 && li.rng.Float64() < p.Drop {
		li.in.drops.Add(1)
		f.Drop = true
		return f
	}
	if p.Corrupt > 0 && li.rng.Float64() < p.Corrupt {
		li.in.corrupts.Add(1)
		f.Corrupt = true
		f.CorruptBit = li.rng.Intn(1 << 20)
	}
	if p.Dup > 0 && li.rng.Float64() < p.Dup {
		li.in.dups.Add(1)
		f.Dup = true
	}
	if p.Reorder > 0 && li.rng.Float64() < p.Reorder {
		li.in.holds.Add(1)
		f.Hold = true
	}
	if p.Delay > 0 || p.Jitter > 0 {
		d := p.Delay
		if p.Jitter > 0 {
			d += time.Duration(li.rng.Int63n(int64(p.Jitter) + 1))
		}
		if d > 0 {
			li.in.delays.Add(1)
			f.Delay += d
		}
	}
	return f
}
