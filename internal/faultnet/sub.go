package faultnet

import (
	"fmt"
	"sync"
	"time"

	"converse/internal/machine"
)

// Substrate is a structural mirror of internal/core's Substrate
// interface (faultnet cannot import core without a cycle; Go's
// structural typing makes the mirror free). Anything core can run on,
// Sub can wrap.
type Substrate interface {
	ID() int
	NumPEs() int
	Node() int
	NumNodes() int
	NodeSize(node int) int
	NodeOf(pe int) int
	Clock() float64
	Charge(dt float64)
	AdvanceTo(t float64)
	SendOwned(dst int, data []byte)
	TryRecvBatch(out []machine.Packet) int
	Recv() (machine.Packet, bool)
	Model() machine.CostModel
	Printf(format string, args ...any)
	Errorf(format string, args ...any)
	Scanf(format string, args ...any) (int, error)
	ReadLine() (string, error)
}

// blockStateNoter mirrors core's optional diagnostics interface so the
// wrapper stays transparent to DescribeBlocked.
type blockStateNoter interface {
	NoteThreadsSuspended(delta int)
	NoteBarrierWaiters(delta int)
}

// Sub applies a fault plan to a simulated PE's outbound packets. The
// simulated machine has no reliability layer beneath it, so injected
// faults are *felt* by the program — dropped packets stay dropped,
// corrupted headers blow up dispatch — which is exactly the point:
// under sim, faultnet tests how upper layers react to loss, not
// whether the wire can repair it (that is the TCP substrate's job).
// Loopback sends are never faulted, matching the TCP layer where they
// bypass the wire entirely.
type Sub struct {
	Substrate
	in *Injector

	mu     sync.Mutex
	held   map[int][]byte // reorder stash, per destination
	killed map[int]bool   // links scripted dead: packets blackhole
}

// WrapSim wraps a simulated PE substrate with fault injection; a nil
// injector returns the substrate unchanged.
func WrapSim(inner Substrate, in *Injector) Substrate {
	if in == nil {
		return inner
	}
	in.StartClock()
	return &Sub{Substrate: inner, in: in, held: map[int][]byte{}, killed: map[int]bool{}}
}

// SendOwned applies the plan to one outbound packet and forwards the
// survivors (and any held predecessor) to the wrapped substrate.
func (s *Sub) SendOwned(dst int, data []byte) {
	if dst == s.ID() {
		s.Substrate.SendOwned(dst, data)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	f := s.in.Link(dst).Tx()
	if f.Crash {
		panic(fmt.Sprintf("faultnet: scripted crash of PE %d (plan %q)", s.ID(), s.in.plan.String()))
	}
	if f.Kill {
		s.killed[dst] = true
	}
	if s.killed[dst] {
		return
	}
	if f.Delay > 0 {
		// Virtual time: a delayed packet costs the sender latency.
		s.Charge(float64(f.Delay) / float64(time.Microsecond))
	}
	if f.Hold {
		if _, ok := s.held[dst]; !ok {
			s.held[dst] = data
			return
		}
	}
	if f.Drop {
		return
	}
	if f.Corrupt && len(data) > 0 {
		bit := f.CorruptBit % (len(data) * 8)
		data[bit/8] ^= 1 << (bit % 8)
	}
	s.Substrate.SendOwned(dst, data)
	if f.Dup {
		s.Substrate.SendOwned(dst, append([]byte(nil), data...))
	}
	if h, ok := s.held[dst]; ok {
		delete(s.held, dst)
		s.Substrate.SendOwned(dst, h)
	}
}

// NoteThreadsSuspended forwards to the wrapped substrate when it tracks
// block state.
func (s *Sub) NoteThreadsSuspended(delta int) {
	if n, ok := s.Substrate.(blockStateNoter); ok {
		n.NoteThreadsSuspended(delta)
	}
}

// NoteBarrierWaiters forwards to the wrapped substrate when it tracks
// block state.
func (s *Sub) NoteBarrierWaiters(delta int) {
	if n, ok := s.Substrate.(blockStateNoter); ok {
		n.NoteBarrierWaiters(delta)
	}
}
