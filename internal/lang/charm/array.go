package charm

import (
	"encoding/binary"
	"fmt"

	"converse/internal/core"
)

// Chare arrays: indexed collections of message-driven objects,
// addressable by integer index rather than by (processor, local id).
// They are the natural next abstraction over this runtime's machinery —
// the Charm lineage's arrays — and compose the pieces the paper
// describes: creation broadcasts fan out like group creation, element
// addressing routes through a fixed index→processor map, and
// invocations use the same two-phase prioritized dispatch as chares.
//
// Element i of an n-element array lives on processor i mod P (a static
// blockcyclic map keeps remote addressing computable without a
// directory; migration of array elements would reintroduce the
// forwarding machinery of migrate.go and is left out).

// ArrayID names a chare array; identical on every processor.
type ArrayID uint32

// ArrayCtor builds one element of an array: idx is the element's index
// in [0, n); msg is the creation payload shared by all elements.
type ArrayCtor func(rt *RT, aid ArrayID, idx int, msg []byte) any

// ArrayEntry is an invocable method of an array element.
type ArrayEntry func(rt *RT, elem any, idx int, msg []byte)

type arrayType struct {
	ctor ArrayCtor
	eps  []ArrayEntry
}

type arrayRec struct {
	typ   int
	n     int
	elems map[int]any
}

// RegisterArray adds an array chare type; call it in the same order on
// every processor.
func (rt *RT) RegisterArray(ctor ArrayCtor, eps ...ArrayEntry) int {
	rt.arrayTypes = append(rt.arrayTypes, arrayType{ctor: ctor, eps: eps})
	return len(rt.arrayTypes) - 1
}

// ArrayOwner returns the processor owning element idx of an array on
// this machine.
func (rt *RT) ArrayOwner(idx int) int { return idx % rt.p.NumPes() }

// CreateArray creates an n-element array of the given type: a creation
// broadcast makes every processor construct its owned elements. Like
// CreateGroup, invocations sent after CreateArray on the same processor
// are safe: the creation broadcast rides the two-level spanning tree,
// so a direct point-to-point invocation may overtake it, and any
// invocation arriving for a not-yet-known array is parked and replayed
// the moment its creation message lands.
func (rt *RT) CreateArray(typeID, n int, payload []byte) ArrayID {
	if typeID < 0 || typeID >= len(rt.arrayTypes) {
		panic(fmt.Sprintf("charm: pe %d: CreateArray of unregistered type %d", rt.p.MyPe(), typeID))
	}
	if n <= 0 {
		panic(fmt.Sprintf("charm: pe %d: CreateArray with %d elements", rt.p.MyPe(), n))
	}
	rt.nextArray++
	aid := ArrayID(uint32(rt.p.MyPe())<<20 | rt.nextArray)
	msg := core.NewMsg(rt.hArrNew, 16+len(payload))
	pl := core.Payload(msg)
	binary.LittleEndian.PutUint32(pl[0:], uint32(aid))
	binary.LittleEndian.PutUint32(pl[4:], uint32(typeID))
	binary.LittleEndian.PutUint32(pl[8:], uint32(n))
	binary.LittleEndian.PutUint32(pl[12:], uint32(len(payload)))
	copy(pl[16:], payload)
	rt.sent += uint64(rt.p.NumPes() - 1)
	rt.p.SyncBroadcast(msg)
	rt.buildElems(aid, typeID, n, payload)
	return aid
}

// buildElems constructs this processor's elements of the array.
func (rt *RT) buildElems(aid ArrayID, typeID, n int, payload []byte) {
	if _, dup := rt.arrays[aid]; dup {
		panic(fmt.Sprintf("charm: pe %d: duplicate array id %d", rt.p.MyPe(), aid))
	}
	rec := &arrayRec{typ: typeID, n: n, elems: make(map[int]any)}
	rt.arrays[aid] = rec
	for idx := rt.p.MyPe(); idx < n; idx += rt.p.NumPes() {
		if tr := rt.p.Tracer(); tr != nil {
			tr.Event(core.TraceEvent{Kind: core.EvObjectCreate, T: rt.p.TimerUs(), PE: rt.p.MyPe(), Aux: idx})
		}
		rec.elems[idx] = rt.arrayTypes[typeID].ctor(rt, aid, idx, payload)
	}
	// Replay invocations that overtook the creation broadcast, in
	// arrival order.
	if pending := rt.arrayPending[aid]; pending != nil {
		delete(rt.arrayPending, aid)
		for _, m := range pending {
			rt.invokeArrElem(rt.p, m)
		}
	}
}

func (rt *RT) onArrNew(p *core.Proc, msg []byte) {
	rt.processed++
	pl := core.Payload(msg)
	aid := ArrayID(binary.LittleEndian.Uint32(pl[0:]))
	typeID := int(binary.LittleEndian.Uint32(pl[4:]))
	n := int(binary.LittleEndian.Uint32(pl[8:]))
	plen := int(binary.LittleEndian.Uint32(pl[12:]))
	rt.buildElems(aid, typeID, n, pl[16:16+plen])
}

// Element returns the local element idx of the array, or nil if the
// element lives elsewhere (or the array is unknown here).
func (rt *RT) Element(aid ArrayID, idx int) any {
	rec, ok := rt.arrays[aid]
	if !ok {
		return nil
	}
	return rec.elems[idx]
}

// ArrayLen returns the element count of a locally known array, or 0.
func (rt *RT) ArrayLen(aid ArrayID) int {
	rec, ok := rt.arrays[aid]
	if !ok {
		return 0
	}
	return rec.n
}

// SendElem asynchronously invokes entry ep of element idx with the
// given data at default priority.
func (rt *RT) SendElem(aid ArrayID, idx, ep int, data []byte) {
	rt.SendElemPrio(aid, idx, ep, data, 0)
}

// SendElemPrio is SendElem with an integer priority (§2.3 semantics,
// identical to chare invocations).
func (rt *RT) SendElemPrio(aid ArrayID, idx, ep int, data []byte, prio int32) {
	rt.sent++
	msg := core.NewMsg(rt.hArrInv, 16+len(data))
	pl := core.Payload(msg)
	binary.LittleEndian.PutUint32(pl[0:], uint32(aid))
	binary.LittleEndian.PutUint32(pl[4:], uint32(idx))
	binary.LittleEndian.PutUint32(pl[8:], uint32(ep))
	binary.LittleEndian.PutUint32(pl[12:], uint32(prio))
	copy(pl[16:], data)
	owner := rt.ArrayOwner(idx)
	if owner == rt.p.MyPe() {
		core.SetFlags(msg, 1)
		rt.enqueueInvoke(msg, prio)
		return
	}
	rt.p.SyncSendAndFree(owner, msg)
}

// BroadcastArray invokes entry ep on every element of the array.
func (rt *RT) BroadcastArray(aid ArrayID, ep int, data []byte) {
	rec, ok := rt.arrays[aid]
	if !ok {
		panic(fmt.Sprintf("charm: pe %d: BroadcastArray of unknown array %d", rt.p.MyPe(), aid))
	}
	for idx := 0; idx < rec.n; idx++ {
		rt.SendElem(aid, idx, ep, data)
	}
}

// onArrInv is the two-phase array invocation handler.
func (rt *RT) onArrInv(p *core.Proc, msg []byte) {
	pl := core.Payload(msg)
	if core.FlagsOf(msg) == 0 {
		prio := int32(binary.LittleEndian.Uint32(pl[12:]))
		buf := p.GrabBuffer()
		core.SetFlags(buf, 1)
		rt.enqueueInvoke(buf, prio)
		return
	}
	aid := ArrayID(binary.LittleEndian.Uint32(pl[0:]))
	if _, ok := rt.arrays[aid]; !ok {
		// The invocation overtook its creation broadcast (creations ride
		// the spanning tree through relay processors; invocations go
		// direct). Park a copy; buildElems replays it when the creation
		// lands.
		rt.arrayPending[aid] = append(rt.arrayPending[aid], append([]byte(nil), msg...))
		return
	}
	rt.invokeArrElem(p, msg)
}

// invokeArrElem delivers a phase-two array invocation to its element.
func (rt *RT) invokeArrElem(p *core.Proc, msg []byte) {
	rt.processed++
	pl := core.Payload(msg)
	aid := ArrayID(binary.LittleEndian.Uint32(pl[0:]))
	idx := int(binary.LittleEndian.Uint32(pl[4:]))
	ep := int(binary.LittleEndian.Uint32(pl[8:]))
	rec := rt.arrays[aid]
	elem, ok := rec.elems[idx]
	if !ok {
		panic(fmt.Sprintf("charm: pe %d: array %d has no local element %d", p.MyPe(), aid, idx))
	}
	at := rt.arrayTypes[rec.typ]
	if ep < 0 || ep >= len(at.eps) {
		panic(fmt.Sprintf("charm: pe %d: array type %d has no entry %d", p.MyPe(), rec.typ, ep))
	}
	at.eps[ep](rt, elem, idx, pl[16:])
}
