package charm

import (
	"encoding/binary"
	"sync/atomic"
	"testing"

	"converse/internal/core"
	"converse/internal/ldb"
)

// elem is one array element accumulating values.
type elem struct {
	idx int
	sum int64
}

func TestArrayCreationSpread(t *testing.T) {
	const pes = 4
	const n = 10
	cm := newMachine(pes)
	created := make([]int64, pes)
	err := cm.Run(func(p *core.Proc) {
		rt := Attach(p, ldb.NewSpray())
		at := rt.RegisterArray(func(rt *RT, aid ArrayID, idx int, msg []byte) any {
			atomic.AddInt64(&created[rt.Proc().MyPe()], 1)
			return &elem{idx: idx}
		})
		if p.MyPe() == 0 {
			aid := rt.CreateArray(at, n, nil)
			if rt.ArrayLen(aid) != n {
				t.Errorf("ArrayLen = %d", rt.ArrayLen(aid))
			}
			rt.StartQD(func(rt *RT) { rt.ExitAll() })
		}
		p.Scheduler(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	// i mod P map: PEs 0,1 get 3 elements, PEs 2,3 get 2.
	want := []int64{3, 3, 2, 2}
	for pe, c := range created {
		if c != want[pe] {
			t.Errorf("PE %d created %d elements, want %d: %v", pe, c, want[pe], created)
		}
	}
}

func TestSendElemRoutesByIndex(t *testing.T) {
	const pes = 3
	const n = 7
	cm := newMachine(pes)
	var visited int64
	err := cm.Run(func(p *core.Proc) {
		rt := Attach(p, ldb.NewSpray())
		at := rt.RegisterArray(
			func(rt *RT, aid ArrayID, idx int, msg []byte) any { return &elem{idx: idx} },
			// entry 0: record that the right element got the message
			func(rt *RT, e any, idx int, msg []byte) {
				el := e.(*elem)
				if el.idx != idx || int(msg[0]) != idx {
					t.Errorf("element %d got message for %d/%d", el.idx, idx, msg[0])
				}
				if rt.ArrayOwner(idx) != rt.Proc().MyPe() {
					t.Errorf("element %d executed on wrong PE %d", idx, rt.Proc().MyPe())
				}
				atomic.AddInt64(&visited, 1)
			},
		)
		if p.MyPe() == 0 {
			aid := rt.CreateArray(at, n, nil)
			for idx := 0; idx < n; idx++ {
				rt.SendElem(aid, idx, 0, []byte{byte(idx)})
			}
			rt.StartQD(func(rt *RT) { rt.ExitAll() })
		}
		p.Scheduler(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if visited != n {
		t.Fatalf("visited = %d, want %d", visited, n)
	}
}

func TestBroadcastArray(t *testing.T) {
	const pes = 2
	const n = 5
	cm := newMachine(pes)
	var hits int64
	err := cm.Run(func(p *core.Proc) {
		rt := Attach(p, ldb.NewSpray())
		at := rt.RegisterArray(
			func(rt *RT, aid ArrayID, idx int, msg []byte) any { return nil },
			func(rt *RT, e any, idx int, msg []byte) { atomic.AddInt64(&hits, 1) },
		)
		if p.MyPe() == 0 {
			aid := rt.CreateArray(at, n, nil)
			rt.BroadcastArray(aid, 0, nil)
			rt.StartQD(func(rt *RT) { rt.ExitAll() })
		}
		p.Scheduler(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if hits != n {
		t.Fatalf("hits = %d, want %d", hits, n)
	}
}

// TestArrayNeighborExchange: the canonical array program — each element
// passes a value to element (i+1) mod n; after one round every element
// holds its left neighbor's index.
func TestArrayNeighborExchange(t *testing.T) {
	const pes = 4
	const n = 9
	cm := newMachine(pes)
	var correct int64
	err := cm.Run(func(p *core.Proc) {
		rt := Attach(p, ldb.NewSpray())
		var at int
		at = rt.RegisterArray(
			func(rt *RT, aid ArrayID, idx int, msg []byte) any { return &elem{idx: idx} },
			// entry 0: start — send my index to my right neighbor
			func(rt *RT, e any, idx int, msg []byte) {
				aid := ArrayID(binary.LittleEndian.Uint32(msg))
				out := make([]byte, 8)
				binary.LittleEndian.PutUint32(out, uint32(idx))
				binary.LittleEndian.PutUint32(out[4:], uint32(aid))
				rt.SendElem(aid, (idx+1)%n, 1, out)
			},
			// entry 1: receive the left neighbor's index
			func(rt *RT, e any, idx int, msg []byte) {
				from := int(binary.LittleEndian.Uint32(msg))
				if (from+1)%n == idx {
					atomic.AddInt64(&correct, 1)
				}
			},
		)
		if p.MyPe() == 0 {
			aid := rt.CreateArray(at, n, nil)
			start := make([]byte, 4)
			binary.LittleEndian.PutUint32(start, uint32(aid))
			rt.BroadcastArray(aid, 0, start)
			rt.StartQD(func(rt *RT) { rt.ExitAll() })
		}
		p.Scheduler(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if correct != n {
		t.Fatalf("correct = %d, want %d", correct, n)
	}
}

func TestElemPriorities(t *testing.T) {
	cm := newMachine(1)
	err := cm.Run(func(p *core.Proc) {
		rt := Attach(p, ldb.NewSpray())
		var order []byte
		at := rt.RegisterArray(
			func(rt *RT, aid ArrayID, idx int, msg []byte) any { return nil },
			func(rt *RT, e any, idx int, msg []byte) { order = append(order, msg[0]) },
		)
		aid := rt.CreateArray(at, 1, nil)
		rt.SendElemPrio(aid, 0, 0, []byte{'2'}, 5)
		rt.SendElemPrio(aid, 0, 0, []byte{'1'}, -5)
		p.ScheduleUntilIdle()
		if string(order) != "12" {
			t.Errorf("order = %q", order)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// An invocation of an array this processor has not seen created parks
// until the creation lands (the creation broadcast rides the spanning
// tree and can be overtaken); it must not run, and must not panic.
func TestUnknownArrayInvocationParks(t *testing.T) {
	cm := newMachine(1)
	err := cm.Run(func(p *core.Proc) {
		rt := Attach(p, ldb.NewSpray())
		ran := false
		rt.RegisterArray(func(rt *RT, aid ArrayID, idx int, msg []byte) any { return nil },
			func(rt *RT, e any, idx int, msg []byte) { ran = true })
		rt.SendElem(ArrayID(777), 0, 0, nil)
		p.ScheduleUntilIdle()
		if ran {
			t.Error("invocation of a never-created array ran")
		}
		if len(rt.arrayPending[ArrayID(777)]) != 1 {
			t.Errorf("parked invocations = %d, want 1", len(rt.arrayPending[ArrayID(777)]))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCreateArrayValidation(t *testing.T) {
	cm := newMachine(1)
	err := cm.Run(func(p *core.Proc) {
		rt := Attach(p, ldb.NewSpray())
		rt.CreateArray(5, 3, nil) // unregistered type
	})
	if err == nil {
		t.Fatal("unregistered array type did not error")
	}
	cm2 := newMachine(1)
	err = cm2.Run(func(p *core.Proc) {
		rt := Attach(p, ldb.NewSpray())
		at := rt.RegisterArray(func(rt *RT, aid ArrayID, idx int, msg []byte) any { return nil })
		rt.CreateArray(at, 0, nil) // zero elements
	})
	if err == nil {
		t.Fatal("zero-element array did not error")
	}
}

func TestElementAccessor(t *testing.T) {
	const pes = 2
	cm := newMachine(pes)
	err := cm.Run(func(p *core.Proc) {
		rt := Attach(p, ldb.NewSpray())
		at := rt.RegisterArray(func(rt *RT, aid ArrayID, idx int, msg []byte) any {
			return &elem{idx: idx}
		})
		if p.MyPe() != 0 {
			p.Scheduler(-1)
			return
		}
		aid := rt.CreateArray(at, 4, nil)
		// Local elements: 0 and 2 on PE0.
		if e := rt.Element(aid, 2); e == nil || e.(*elem).idx != 2 {
			t.Error("Element(2) wrong")
		}
		if rt.Element(aid, 1) != nil {
			t.Error("Element(1) should be remote (nil here)")
		}
		if rt.Element(ArrayID(999), 0) != nil {
			t.Error("unknown array Element != nil")
		}
		rt.StartQD(func(rt *RT) { rt.ExitAll() })
		p.Scheduler(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
}
