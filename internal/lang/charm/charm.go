// Package charm implements a Charm-flavoured runtime for message-driven
// concurrent objects ("chares") over Converse, standing in for the
// retargeted Charm runtime the paper reports ("The Charm runtime system
// itself has been retargeted for Converse").
//
// It exercises the Converse facilities the paper says such a runtime
// needs:
//
//   - Chare creation messages are seeds handed to the dynamic load
//     balancing module (§3.3.1); they float until they take root.
//   - Asynchronous method invocations are generalized messages. A
//     freshly received invocation is not executed immediately: its
//     handler grabs the buffer and enqueues it with its priority, using
//     the message's flags word to mark the replay — the exact
//     "second handler" technique of §3.3 for avoiding infinite regress.
//   - Priorities (integer or bit-vector, §2.3) order local execution.
//   - Quiescence detection (needed to terminate message-driven
//     programs) is built from counters and probe waves.
package charm

import (
	"encoding/binary"
	"fmt"

	"converse/internal/core"
	"converse/internal/ldb"
	"converse/internal/queue"
)

// ChareID names a chare instance: the processor it took root on and a
// processor-local index.
type ChareID struct {
	PE    int
	Local uint32
}

// Encode packs the id into 8 bytes.
func (id ChareID) Encode(dst []byte) {
	binary.LittleEndian.PutUint32(dst[0:], uint32(id.PE))
	binary.LittleEndian.PutUint32(dst[4:], id.Local)
}

// DecodeChareID unpacks an id encoded by Encode.
func DecodeChareID(src []byte) ChareID {
	return ChareID{
		PE:    int(binary.LittleEndian.Uint32(src[0:])),
		Local: binary.LittleEndian.Uint32(src[4:]),
	}
}

// ChareIDSize is the wire size of an encoded ChareID.
const ChareIDSize = 8

// Ctor builds a chare instance when its seed takes root. self is the
// identity the runtime assigned; msg is the creation payload.
type Ctor func(rt *RT, self ChareID, msg []byte) any

// Entry is an asynchronously invocable method of a chare type.
type Entry func(rt *RT, obj any, msg []byte)

// chareType is one registered chare class.
type chareType struct {
	ctor   Ctor
	eps    []Entry
	unpack Unpacker // non-nil for migratable types (migrate.go)
}

// chareRec is one anchored chare instance.
type chareRec struct {
	obj any
	typ int
}

// RT is the per-processor chare runtime.
type RT struct {
	p   *core.Proc
	bal *ldb.Balancer

	types  []chareType
	chares map[uint32]*chareRec
	next   uint32

	hCreate, hInvoke int

	// migration machinery (migrate.go)
	hMigrate, hMoved int
	inMove           map[uint32]*moveState
	forwards         map[uint32]ChareID
	migrations       uint64

	// quasi-dynamic load balancing (rebalance.go)
	hRebal       int
	rebal        *rebalState
	rebalPending [][]byte // control messages arriving before the local entry

	// group ("branch office") chares (group.go)
	groupTypes           []groupType
	groups               map[GroupID]*groupRec
	groupPending         map[GroupID][][]byte // invocations that outran the creation broadcast
	nextGroup            uint32
	hGroupNew, hGroupInv int

	// chare arrays (array.go)
	arrayTypes       []arrayType
	arrays           map[ArrayID]*arrayRec
	arrayPending     map[ArrayID][][]byte // invocations that outran the creation broadcast
	nextArray        uint32
	hArrNew, hArrInv int

	// quiescence machinery (quiesce.go)
	sent, processed     uint64
	hProbe, hReply, hQD int
	qdActive            bool
	qdRound             uint32
	qdGot               int
	qdSent, qdProc      uint64
	qdPrevSent          uint64
	qdPrevProc          uint64
	qdPrevBalanced      bool
	onQuiescence        func(rt *RT)
}

// extKey locates the chare runtime in a Proc.
const extKey = "converse.lang.charm"

// Attach creates (or returns) the processor's chare runtime, using the
// given load balancing policy for creation seeds. Call it on every
// processor at the same point of startup.
func Attach(p *core.Proc, pol ldb.Policy) *RT {
	if rt, ok := p.Ext(extKey).(*RT); ok {
		return rt
	}
	rt := &RT{
		p:            p,
		chares:       make(map[uint32]*chareRec),
		inMove:       make(map[uint32]*moveState),
		forwards:     make(map[uint32]ChareID),
		groups:       make(map[GroupID]*groupRec),
		groupPending: make(map[GroupID][][]byte),
		arrays:       make(map[ArrayID]*arrayRec),
		arrayPending: make(map[ArrayID][][]byte),
	}
	rt.bal = ldb.New(p, pol)
	rt.hCreate = p.RegisterHandler(rt.onCreate)
	rt.hInvoke = p.RegisterHandler(rt.onInvoke)
	rt.hProbe = p.RegisterHandler(rt.onProbe)
	rt.hReply = p.RegisterHandler(rt.onReply)
	rt.hQD = p.RegisterHandler(rt.onQD)
	rt.hMigrate = p.RegisterHandler(rt.onMigrate)
	rt.hMoved = p.RegisterHandler(rt.onMoved)
	rt.hRebal = p.RegisterHandler(rt.onRebal)
	rt.hGroupNew = p.RegisterHandler(rt.onGroupNew)
	rt.hGroupInv = p.RegisterHandler(rt.onGroupInv)
	rt.hArrNew = p.RegisterHandler(rt.onArrNew)
	rt.hArrInv = p.RegisterHandler(rt.onArrInv)
	p.SetExt(extKey, rt)
	return rt
}

// Get returns the processor's chare runtime, panicking if Attach has
// not been called.
func Get(p *core.Proc) *RT {
	rt, ok := p.Ext(extKey).(*RT)
	if !ok {
		panic(fmt.Sprintf("charm: pe %d: runtime not attached", p.MyPe()))
	}
	return rt
}

// Proc returns the runtime's processor.
func (rt *RT) Proc() *core.Proc { return rt.p }

// Register adds a chare type with its constructor and entry methods,
// returning the type id. Registration must happen in the same order on
// every processor.
func (rt *RT) Register(ctor Ctor, eps ...Entry) int {
	rt.types = append(rt.types, chareType{ctor: ctor, eps: eps})
	return len(rt.types) - 1
}

// Create asynchronously creates a chare of the given type. The creation
// message becomes a seed for the load balancer: the system, not the
// caller, picks the processor where it takes root (§3.3.1). The caller
// gets no id back — Charm-style, the new chare introduces itself via
// messages if needed.
func (rt *RT) Create(typeID int, payload []byte) {
	if typeID < 0 || typeID >= len(rt.types) {
		panic(fmt.Sprintf("charm: pe %d: Create of unregistered type %d", rt.p.MyPe(), typeID))
	}
	rt.sent++
	seed := core.NewMsg(rt.hCreate, 4+len(payload))
	pl := core.Payload(seed)
	binary.LittleEndian.PutUint32(pl[0:], uint32(typeID))
	copy(pl[4:], payload)
	rt.bal.Deposit(seed)
}

// CreateHere creates a chare on this processor immediately, bypassing
// the load balancer, and returns its id. Used for "anchored" chares
// like a main chare.
func (rt *RT) CreateHere(typeID int, payload []byte) ChareID {
	if typeID < 0 || typeID >= len(rt.types) {
		panic(fmt.Sprintf("charm: pe %d: CreateHere of unregistered type %d", rt.p.MyPe(), typeID))
	}
	return rt.instantiate(typeID, payload)
}

// onCreate roots a creation seed: the chare is instantiated here.
func (rt *RT) onCreate(p *core.Proc, msg []byte) {
	rt.processed++
	pl := core.Payload(msg)
	typeID := int(binary.LittleEndian.Uint32(pl[0:]))
	rt.instantiate(typeID, pl[4:])
}

func (rt *RT) instantiate(typeID int, payload []byte) ChareID {
	rt.next++
	id := ChareID{PE: rt.p.MyPe(), Local: rt.next}
	if tr := rt.p.Tracer(); tr != nil {
		tr.Event(core.TraceEvent{Kind: core.EvObjectCreate, T: rt.p.TimerUs(), PE: rt.p.MyPe(), Aux: int(id.Local)})
	}
	obj := rt.types[typeID].ctor(rt, id, payload)
	rt.chares[id.Local] = &chareRec{obj: obj, typ: typeID}
	return id
}

// invocation payload layout: [chare u64][type u32][ep u32][prio i32][data...]
const invHeader = ChareIDSize + 12

// Send asynchronously invokes entry method ep of the chare identified
// by (typeID, to) with the given data at default priority. The caller
// continues immediately — this is the asynchronous method invocation of
// §2.1's concurrent-object category.
func (rt *RT) Send(typeID int, to ChareID, ep int, data []byte) {
	rt.SendPrio(typeID, to, ep, data, 0)
}

// SendPrio is Send with an integer priority: smaller values execute
// first on the target processor (§2.3).
func (rt *RT) SendPrio(typeID int, to ChareID, ep int, data []byte, prio int32) {
	rt.sent++
	msg := rt.buildInvoke(typeID, to, ep, data, prio)
	if to.PE == rt.p.MyPe() {
		core.SetFlags(msg, 1) // already "replayed": straight to the queue
		rt.enqueueInvoke(msg, prio)
		return
	}
	rt.p.SyncSendAndFree(to.PE, msg)
}

func (rt *RT) buildInvoke(typeID int, to ChareID, ep int, data []byte, prio int32) []byte {
	msg := core.NewMsg(rt.hInvoke, invHeader+len(data))
	pl := core.Payload(msg)
	to.Encode(pl[0:])
	binary.LittleEndian.PutUint32(pl[8:], uint32(typeID))
	binary.LittleEndian.PutUint32(pl[12:], uint32(ep))
	binary.LittleEndian.PutUint32(pl[16:], uint32(prio))
	copy(pl[invHeader:], data)
	return msg
}

func (rt *RT) enqueueInvoke(msg []byte, prio int32) {
	if prio == 0 {
		rt.p.Enqueue(msg)
	} else {
		rt.p.EnqueuePrio(msg, prio)
	}
}

// onInvoke handles an invocation message in two phases, per §3.3: a
// fresh network message is grabbed and enqueued under its priority with
// the flags word marking it as replayed; the replay actually invokes the
// entry method.
func (rt *RT) onInvoke(p *core.Proc, msg []byte) {
	pl := core.Payload(msg)
	if core.FlagsOf(msg) == 0 {
		prio := int32(binary.LittleEndian.Uint32(pl[16:]))
		buf := p.GrabBuffer()
		core.SetFlags(buf, 1)
		rt.enqueueInvoke(buf, prio)
		return
	}
	rt.processed++
	id := DecodeChareID(pl[0:])
	typeID := int(binary.LittleEndian.Uint32(pl[8:]))
	ep := int(binary.LittleEndian.Uint32(pl[12:]))
	rec, ok := rt.chares[id.Local]
	if !ok {
		// The chare may have migrated away: hold or forward.
		if rt.redirectInvoke(p, msg, id.Local) {
			return
		}
		panic(fmt.Sprintf("charm: pe %d: invocation for unknown chare %v", p.MyPe(), id))
	}
	ct := rt.types[typeID]
	if ep < 0 || ep >= len(ct.eps) {
		panic(fmt.Sprintf("charm: pe %d: type %d has no entry method %d", p.MyPe(), typeID, ep))
	}
	ct.eps[ep](rt, rec.obj, pl[invHeader:])
}

// SendBitVec is Send with a bit-vector priority (local destinations
// only are prioritized exactly; remote destinations carry the first
// word as an integer priority, which preserves the ordering for the
// common one-word case).
func (rt *RT) SendBitVec(typeID int, to ChareID, ep int, data []byte, prio queue.BitVec) {
	if to.PE == rt.p.MyPe() {
		rt.sent++
		msg := rt.buildInvoke(typeID, to, ep, data, 0)
		core.SetFlags(msg, 1)
		rt.p.EnqueueBitVec(msg, prio)
		return
	}
	var head int32
	if len(prio) > 0 {
		head = int32(prio[0] ^ 0x80000000)
	}
	rt.SendPrio(typeID, to, ep, data, head)
}

// Stats reports the runtime's application-message counters.
func (rt *RT) Stats() (sent, processed uint64) { return rt.sent, rt.processed }

// Chare returns the chare instance anchored on this processor under the
// given id, or nil. It exists for driver code that anchors chares with
// CreateHere and needs to inspect them between scheduler sessions;
// remote chares are reachable only through Send.
func (rt *RT) Chare(id ChareID) any {
	if id.PE != rt.p.MyPe() {
		return nil
	}
	rec, ok := rt.chares[id.Local]
	if !ok {
		return nil
	}
	return rec.obj
}

// LocalChares returns the ids of the chares of the given type anchored
// on this processor, in unspecified order.
func (rt *RT) LocalChares(typeID int) []ChareID {
	var out []ChareID
	for local, rec := range rt.chares {
		if rec.typ == typeID {
			out = append(out, ChareID{PE: rt.p.MyPe(), Local: local})
		}
	}
	return out
}
