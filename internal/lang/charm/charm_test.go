package charm

import (
	"encoding/binary"
	"sync/atomic"
	"testing"
	"time"

	"converse/internal/core"
	"converse/internal/ldb"
	"converse/internal/queue"
)

func newMachine(pes int) *core.Machine {
	return core.NewMachine(core.Config{PEs: pes, Watchdog: 20 * time.Second})
}

func TestChareIDEncodeDecode(t *testing.T) {
	id := ChareID{PE: 3, Local: 0xdeadbeef}
	var buf [ChareIDSize]byte
	id.Encode(buf[:])
	if DecodeChareID(buf[:]) != id {
		t.Fatal("round trip failed")
	}
}

func TestLocalChareInvocation(t *testing.T) {
	cm := newMachine(1)
	err := cm.Run(func(p *core.Proc) {
		rt := Attach(p, ldb.NewSpray())
		type counter struct{ n int }
		var typeID int
		typeID = rt.Register(
			func(rt *RT, self ChareID, msg []byte) any { return &counter{} },
			func(rt *RT, obj any, msg []byte) { // ep 0: add
				obj.(*counter).n += int(msg[0])
			},
		)
		id := rt.CreateHere(typeID, nil)
		rt.Send(typeID, id, 0, []byte{5})
		rt.Send(typeID, id, 0, []byte{7})
		p.ScheduleUntilIdle()
		if got := rt.Chare(id).(*counter).n; got != 12 {
			t.Errorf("counter = %d, want 12", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPriorityOrdersExecution(t *testing.T) {
	cm := newMachine(1)
	err := cm.Run(func(p *core.Proc) {
		rt := Attach(p, ldb.NewSpray())
		var order []byte
		var typeID int
		typeID = rt.Register(
			func(rt *RT, self ChareID, msg []byte) any { return nil },
			func(rt *RT, obj any, msg []byte) { order = append(order, msg[0]) },
		)
		id := rt.CreateHere(typeID, nil)
		rt.SendPrio(typeID, id, 0, []byte{'c'}, 10)
		rt.SendPrio(typeID, id, 0, []byte{'a'}, -10)
		rt.SendPrio(typeID, id, 0, []byte{'b'}, 0) // default lane
		p.ScheduleUntilIdle()
		if string(order) != "abc" {
			t.Errorf("order = %q, want abc", order)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBitVecPriorityLocal(t *testing.T) {
	cm := newMachine(1)
	err := cm.Run(func(p *core.Proc) {
		rt := Attach(p, ldb.NewSpray())
		var order []byte
		var typeID int
		typeID = rt.Register(
			func(rt *RT, self ChareID, msg []byte) any { return nil },
			func(rt *RT, obj any, msg []byte) { order = append(order, msg[0]) },
		)
		id := rt.CreateHere(typeID, nil)
		rt.SendBitVec(typeID, id, 0, []byte{'z'}, queue.BitVec{0x90000000})
		rt.SendBitVec(typeID, id, 0, []byte{'y'}, queue.BitVec{0x10000000})
		rt.SendBitVec(typeID, id, 0, []byte{'x'}, queue.BitVec{0x10000000, 1})
		p.ScheduleUntilIdle()
		if string(order) != "yxz" {
			t.Errorf("order = %q, want yxz (lexicographic bit-vector)", order)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFanOutFanIn: a root chare fans work out to dynamically created
// worker chares (placed by the load balancer) and collects replies;
// quiescence detection notices completion and terminates all PEs.
func TestFanOutFanIn(t *testing.T) {
	const pes = 4
	const workers = 24
	cm := newMachine(pes)
	var rootID atomic.Value // ChareID of the root, set on PE0
	var total int64
	var quiesced int32

	// worker: created with [rootID][value]; sends value*2 back to root.
	// root: collects replies.
	err := cm.Run(func(p *core.Proc) {
		rt := Attach(p, ldb.NewRandom(int64(p.MyPe())+1))
		var rootType, workerType int
		type rootState struct{ got int }
		rootType = rt.Register(
			func(rt *RT, self ChareID, msg []byte) any { return &rootState{} },
			func(rt *RT, obj any, msg []byte) { // ep 0: reply from worker
				r := obj.(*rootState)
				r.got++
				atomic.AddInt64(&total, int64(binary.LittleEndian.Uint32(msg)))
			},
		)
		workerType = rt.Register(
			func(rt *RT, self ChareID, msg []byte) any {
				// Work happens at construction: double and reply.
				root := DecodeChareID(msg[0:])
				v := binary.LittleEndian.Uint32(msg[ChareIDSize:])
				reply := make([]byte, 4)
				binary.LittleEndian.PutUint32(reply, v*2)
				rt.Send(rootType, root, 0, reply)
				return nil
			},
		)
		_ = workerType
		if p.MyPe() == 0 {
			id := rt.CreateHere(rootType, nil)
			rootID.Store(id)
			for i := 1; i <= workers; i++ {
				payload := make([]byte, ChareIDSize+4)
				id.Encode(payload)
				binary.LittleEndian.PutUint32(payload[ChareIDSize:], uint32(i))
				rt.Create(workerType, payload)
			}
			rt.StartQD(func(rt *RT) {
				atomic.AddInt32(&quiesced, 1)
				rt.ExitAll()
			})
		}
		p.Scheduler(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(workers * (workers + 1)) // sum of 2i for i=1..workers
	if total != want {
		t.Fatalf("total = %d, want %d", total, want)
	}
	if quiesced != 1 {
		t.Fatalf("quiescence fired %d times", quiesced)
	}
}

func TestQuiescenceWaitsForPendingWork(t *testing.T) {
	// A chain of chare messages: quiescence must not fire while the
	// chain is still propagating.
	const pes = 3
	const chainLen = 30
	cm := newMachine(pes)
	var steps int64
	err := cm.Run(func(p *core.Proc) {
		rt := Attach(p, ldb.NewSpray())
		var typeID int
		typeID = rt.Register(
			func(rt *RT, self ChareID, msg []byte) any { return nil },
			func(rt *RT, obj any, msg []byte) {
				n := binary.LittleEndian.Uint32(msg)
				atomic.AddInt64(&steps, 1)
				if n > 0 {
					next := make([]byte, 4)
					binary.LittleEndian.PutUint32(next, n-1)
					// Forward to a chare on the next PE.
					to := ChareID{PE: (rt.Proc().MyPe() + 1) % pes, Local: 1}
					rt.Send(typeID, to, 0, next)
				}
			},
		)
		id := rt.CreateHere(typeID, nil) // Local 1 on every PE
		if id.Local != 1 {
			t.Errorf("expected local id 1, got %d", id.Local)
		}
		if p.MyPe() == 0 {
			first := make([]byte, 4)
			binary.LittleEndian.PutUint32(first, chainLen)
			rt.Send(typeID, id, 0, first)
			rt.StartQD(func(rt *RT) {
				if n := atomic.LoadInt64(&steps); n != chainLen+1 {
					t.Errorf("quiescence fired after %d steps, want %d", n, chainLen+1)
				}
				rt.ExitAll()
			})
		}
		p.Scheduler(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCreateSpreadsOverPEs(t *testing.T) {
	const pes = 4
	const n = 40
	cm := newMachine(pes)
	created := make([]int64, pes)
	err := cm.Run(func(p *core.Proc) {
		rt := Attach(p, ldb.NewSpray())
		typeID := rt.Register(func(rt *RT, self ChareID, msg []byte) any {
			atomic.AddInt64(&created[rt.Proc().MyPe()], 1)
			return nil
		})
		if p.MyPe() == 0 {
			for i := 0; i < n; i++ {
				rt.Create(typeID, nil)
			}
			rt.StartQD(func(rt *RT) { rt.ExitAll() })
		}
		p.Scheduler(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for pe, c := range created {
		sum += c
		if c == 0 {
			t.Errorf("PE %d created no chares under spray: %v", pe, created)
		}
	}
	if sum != n {
		t.Fatalf("created %d chares, want %d", sum, n)
	}
}

func TestUnknownChareInvocationPanics(t *testing.T) {
	cm := newMachine(1)
	err := cm.Run(func(p *core.Proc) {
		rt := Attach(p, ldb.NewSpray())
		typeID := rt.Register(func(rt *RT, self ChareID, msg []byte) any { return nil },
			func(rt *RT, obj any, msg []byte) {})
		rt.Send(typeID, ChareID{PE: 0, Local: 99}, 0, nil)
		p.ScheduleUntilIdle()
	})
	if err == nil {
		t.Fatal("invocation of unknown chare did not error")
	}
}

func TestCreateUnregisteredTypePanics(t *testing.T) {
	cm := newMachine(1)
	err := cm.Run(func(p *core.Proc) {
		rt := Attach(p, ldb.NewSpray())
		rt.Create(7, nil)
	})
	if err == nil {
		t.Fatal("Create of unregistered type did not error")
	}
}

func TestStatsBalance(t *testing.T) {
	cm := newMachine(1)
	err := cm.Run(func(p *core.Proc) {
		rt := Attach(p, ldb.NewSpray())
		typeID := rt.Register(func(rt *RT, self ChareID, msg []byte) any { return nil },
			func(rt *RT, obj any, msg []byte) {})
		id := rt.CreateHere(typeID, nil)
		for i := 0; i < 5; i++ {
			rt.Send(typeID, id, 0, nil)
		}
		sent, proc := rt.Stats()
		if sent != 5 || proc != 0 {
			t.Errorf("before scheduling: sent=%d proc=%d", sent, proc)
		}
		p.ScheduleUntilIdle()
		sent, proc = rt.Stats()
		if sent != 5 || proc != 5 {
			t.Errorf("after scheduling: sent=%d proc=%d", sent, proc)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendBitVecRemote(t *testing.T) {
	cm := newMachine(2)
	var gotSum atomic.Int32
	var gotCount atomic.Int32
	err := cm.Run(func(p *core.Proc) {
		rt := Attach(p, ldb.NewSpray())
		typeID := rt.Register(
			func(rt *RT, self ChareID, msg []byte) any { return nil },
			func(rt *RT, obj any, msg []byte) {
				gotSum.Add(int32(msg[0]))
				if gotCount.Add(1) == 2 {
					p.ExitScheduler()
				}
			},
		)
		if p.MyPe() == 1 {
			rt.CreateHere(typeID, nil)
			p.Scheduler(-1)
			return
		}
		// Remote bit-vector sends: the first word rides as an integer
		// priority at the destination.
		to := ChareID{PE: 1, Local: 1}
		rt.SendBitVec(typeID, to, 0, []byte{10}, queue.BitVec{0x90000000})
		rt.SendBitVec(typeID, to, 0, []byte{20}, queue.BitVec{0x10000000})
	})
	if err != nil {
		t.Fatal(err)
	}
	if gotCount.Load() != 2 || gotSum.Load() != 30 {
		t.Fatalf("count=%d sum=%d", gotCount.Load(), gotSum.Load())
	}
}

func TestBadEntryMethodPanics(t *testing.T) {
	cm := newMachine(1)
	err := cm.Run(func(p *core.Proc) {
		rt := Attach(p, ldb.NewSpray())
		typeID := rt.Register(func(rt *RT, self ChareID, msg []byte) any { return nil })
		id := rt.CreateHere(typeID, nil)
		rt.Send(typeID, id, 3, nil) // no entry method 3
		p.ScheduleUntilIdle()
	})
	if err == nil {
		t.Fatal("bad entry method did not error")
	}
}

func TestAttachIdempotentAndGet(t *testing.T) {
	cm := newMachine(1)
	err := cm.Run(func(p *core.Proc) {
		rt := Attach(p, ldb.NewSpray())
		if Attach(p, ldb.NewSpray()) != rt || Get(p) != rt {
			t.Error("Attach/Get not idempotent")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGetWithoutAttachPanics(t *testing.T) {
	cm := newMachine(1)
	err := cm.Run(func(p *core.Proc) { Get(p) })
	if err == nil {
		t.Fatal("Get without Attach did not error")
	}
}

func TestLocalChares(t *testing.T) {
	cm := newMachine(1)
	err := cm.Run(func(p *core.Proc) {
		rt := Attach(p, ldb.NewSpray())
		a := rt.Register(func(rt *RT, self ChareID, msg []byte) any { return nil })
		b := rt.Register(func(rt *RT, self ChareID, msg []byte) any { return nil })
		rt.CreateHere(a, nil)
		rt.CreateHere(a, nil)
		rt.CreateHere(b, nil)
		if n := len(rt.LocalChares(a)); n != 2 {
			t.Errorf("LocalChares(a) = %d", n)
		}
		if n := len(rt.LocalChares(b)); n != 1 {
			t.Errorf("LocalChares(b) = %d", n)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
