package charm

import (
	"encoding/binary"
	"fmt"

	"converse/internal/core"
)

// Group chares (Charm's "branch office chares"): an object with one
// branch on every processor, created collectively and invocable either
// on a single branch or on all branches at once. The original Charm
// runtime the paper retargets onto Converse has these as a primary
// abstraction; services like the paper's own load-balancing and
// quiescence modules are naturally branch-office-shaped.
//
// Creation: every processor registers the group type identically;
// CreateGroup (called on one processor) broadcasts a creation message,
// and each processor constructs its local branch with the same GroupID.
// Invocation: SendBranch targets one processor's branch; SendGroup
// invokes an entry on every branch.

// GroupID names a group chare; identical on every processor.
type GroupID uint32

// GroupCtor builds a processor's branch of a group.
type GroupCtor func(rt *RT, gid GroupID, msg []byte) any

// GroupEntry is an invocable method of a group branch.
type GroupEntry func(rt *RT, branch any, msg []byte)

type groupType struct {
	ctor GroupCtor
	eps  []GroupEntry
}

// RegisterGroup adds a group chare type; like Register, call it in the
// same order on every processor.
func (rt *RT) RegisterGroup(ctor GroupCtor, eps ...GroupEntry) int {
	rt.groupTypes = append(rt.groupTypes, groupType{ctor: ctor, eps: eps})
	return len(rt.groupTypes) - 1
}

// CreateGroup creates a branch of the given group type on every
// processor and returns the new group's id. The caller's branch is
// constructed immediately; remote branches are constructed when the
// creation message arrives. Invocations sent after this call are safe
// even though the creation broadcast rides the spanning tree (and so
// may be overtaken by a direct send): an invocation for a not-yet-known
// group is parked and replayed when its creation lands.
func (rt *RT) CreateGroup(typeID int, payload []byte) GroupID {
	if typeID < 0 || typeID >= len(rt.groupTypes) {
		panic(fmt.Sprintf("charm: pe %d: CreateGroup of unregistered type %d", rt.p.MyPe(), typeID))
	}
	// Group ids must be identical machine-wide: derive from the
	// creating processor and its counter.
	rt.nextGroup++
	gid := GroupID(uint32(rt.p.MyPe())<<20 | rt.nextGroup)
	msg := core.NewMsg(rt.hGroupNew, 12+len(payload))
	pl := core.Payload(msg)
	binary.LittleEndian.PutUint32(pl[0:], uint32(gid))
	binary.LittleEndian.PutUint32(pl[4:], uint32(typeID))
	binary.LittleEndian.PutUint32(pl[8:], uint32(len(payload)))
	copy(pl[12:], payload)
	rt.sent += uint64(rt.p.NumPes() - 1)
	rt.p.SyncBroadcast(msg)
	rt.buildBranch(gid, typeID, payload)
	return gid
}

// buildBranch constructs the local branch.
func (rt *RT) buildBranch(gid GroupID, typeID int, payload []byte) {
	if _, dup := rt.groups[gid]; dup {
		panic(fmt.Sprintf("charm: pe %d: duplicate group id %d", rt.p.MyPe(), gid))
	}
	if tr := rt.p.Tracer(); tr != nil {
		tr.Event(core.TraceEvent{Kind: core.EvObjectCreate, T: rt.p.TimerUs(), PE: rt.p.MyPe(), Aux: int(gid)})
	}
	rt.groups[gid] = &groupRec{
		obj: rt.groupTypes[typeID].ctor(rt, gid, payload),
		typ: typeID,
	}
	// Replay invocations that overtook the creation broadcast, in
	// arrival order.
	if pending := rt.groupPending[gid]; pending != nil {
		delete(rt.groupPending, gid)
		for _, m := range pending {
			rt.invokeGroupBranch(rt.p, m)
		}
	}
}

type groupRec struct {
	obj any
	typ int
}

// Branch returns this processor's branch of the group, or nil.
func (rt *RT) Branch(gid GroupID) any {
	rec, ok := rt.groups[gid]
	if !ok {
		return nil
	}
	return rec.obj
}

// onGroupNew constructs the local branch from a creation broadcast.
func (rt *RT) onGroupNew(p *core.Proc, msg []byte) {
	rt.processed++
	pl := core.Payload(msg)
	gid := GroupID(binary.LittleEndian.Uint32(pl[0:]))
	typeID := int(binary.LittleEndian.Uint32(pl[4:]))
	n := int(binary.LittleEndian.Uint32(pl[8:]))
	rt.buildBranch(gid, typeID, pl[12:12+n])
}

// SendBranch asynchronously invokes entry ep of the group's branch on
// processor pe.
func (rt *RT) SendBranch(gid GroupID, pe, ep int, data []byte) {
	rt.sent++
	msg := rt.buildGroupInvoke(gid, ep, data)
	if pe == rt.p.MyPe() {
		core.SetFlags(msg, 1)
		rt.p.Enqueue(msg)
		return
	}
	rt.p.SyncSendAndFree(pe, msg)
}

// SendGroup asynchronously invokes entry ep on every branch of the
// group, including the local one.
func (rt *RT) SendGroup(gid GroupID, ep int, data []byte) {
	for pe := 0; pe < rt.p.NumPes(); pe++ {
		rt.SendBranch(gid, pe, ep, data)
	}
}

// group invocation payload: [gid u32][ep u32][data...]
func (rt *RT) buildGroupInvoke(gid GroupID, ep int, data []byte) []byte {
	msg := core.NewMsg(rt.hGroupInv, 8+len(data))
	pl := core.Payload(msg)
	binary.LittleEndian.PutUint32(pl[0:], uint32(gid))
	binary.LittleEndian.PutUint32(pl[4:], uint32(ep))
	copy(pl[8:], data)
	return msg
}

// onGroupInv is the two-phase group invocation handler (same §3.3
// pattern as chare invocations).
func (rt *RT) onGroupInv(p *core.Proc, msg []byte) {
	pl := core.Payload(msg)
	if core.FlagsOf(msg) == 0 {
		buf := p.GrabBuffer()
		core.SetFlags(buf, 1)
		p.Enqueue(buf)
		return
	}
	gid := GroupID(binary.LittleEndian.Uint32(pl[0:]))
	if _, ok := rt.groups[gid]; !ok {
		// The invocation overtook its creation broadcast (creations ride
		// the spanning tree through relay processors; invocations go
		// direct). Park a copy; buildBranch replays it when the creation
		// lands.
		rt.groupPending[gid] = append(rt.groupPending[gid], append([]byte(nil), msg...))
		return
	}
	rt.invokeGroupBranch(p, msg)
}

// invokeGroupBranch delivers a phase-two group invocation to the local
// branch.
func (rt *RT) invokeGroupBranch(p *core.Proc, msg []byte) {
	rt.processed++
	pl := core.Payload(msg)
	gid := GroupID(binary.LittleEndian.Uint32(pl[0:]))
	ep := int(binary.LittleEndian.Uint32(pl[4:]))
	rec := rt.groups[gid]
	gt := rt.groupTypes[rec.typ]
	if ep < 0 || ep >= len(gt.eps) {
		panic(fmt.Sprintf("charm: pe %d: group type %d has no entry %d", p.MyPe(), rec.typ, ep))
	}
	gt.eps[ep](rt, rec.obj, pl[8:])
}
