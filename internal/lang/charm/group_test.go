package charm

import (
	"encoding/binary"
	"sync/atomic"
	"testing"

	"converse/internal/core"
	"converse/internal/ldb"
)

// branchCounter is a group chare branch accumulating values per PE.
type branchCounter struct {
	sum int64
}

func TestGroupCreateOnAllPEs(t *testing.T) {
	const pes = 4
	cm := newMachine(pes)
	var branches int64
	err := cm.Run(func(p *core.Proc) {
		rt := Attach(p, ldb.NewSpray())
		gt := rt.RegisterGroup(func(rt *RT, gid GroupID, msg []byte) any {
			atomic.AddInt64(&branches, 1)
			return &branchCounter{}
		})
		var gid GroupID
		if p.MyPe() == 0 {
			gid = rt.CreateGroup(gt, nil)
			rt.StartQD(func(rt *RT) { rt.ExitAll() })
		}
		p.Scheduler(-1)
		if p.MyPe() == 0 && rt.Branch(gid) == nil {
			t.Error("creator has no local branch")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if branches != pes {
		t.Fatalf("branches = %d, want %d", branches, pes)
	}
}

func TestSendGroupReachesEveryBranch(t *testing.T) {
	const pes = 4
	cm := newMachine(pes)
	var total int64
	err := cm.Run(func(p *core.Proc) {
		rt := Attach(p, ldb.NewSpray())
		gt := rt.RegisterGroup(
			func(rt *RT, gid GroupID, msg []byte) any { return &branchCounter{} },
			// entry 0: add a value on this branch
			func(rt *RT, branch any, msg []byte) {
				v := int64(binary.LittleEndian.Uint32(msg))
				branch.(*branchCounter).sum += v
				atomic.AddInt64(&total, v)
			},
		)
		if p.MyPe() == 0 {
			gid := rt.CreateGroup(gt, nil)
			val := make([]byte, 4)
			binary.LittleEndian.PutUint32(val, 5)
			rt.SendGroup(gid, 0, val)
			rt.StartQD(func(rt *RT) { rt.ExitAll() })
		}
		p.Scheduler(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != 5*pes {
		t.Fatalf("total = %d, want %d", total, 5*pes)
	}
}

func TestSendBranchTargetsOnePE(t *testing.T) {
	const pes = 3
	cm := newMachine(pes)
	hit := make([]int64, pes)
	err := cm.Run(func(p *core.Proc) {
		rt := Attach(p, ldb.NewSpray())
		gt := rt.RegisterGroup(
			func(rt *RT, gid GroupID, msg []byte) any { return nil },
			func(rt *RT, branch any, msg []byte) {
				atomic.AddInt64(&hit[rt.Proc().MyPe()], 1)
			},
		)
		if p.MyPe() == 0 {
			gid := rt.CreateGroup(gt, nil)
			rt.SendBranch(gid, 2, 0, nil)
			rt.SendBranch(gid, 0, 0, nil) // local branch
			rt.StartQD(func(rt *RT) { rt.ExitAll() })
		}
		p.Scheduler(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if hit[0] != 1 || hit[1] != 0 || hit[2] != 1 {
		t.Fatalf("hits = %v", hit)
	}
}

// TestGroupAsService: the classic branch-office pattern — a distributed
// counter service where each branch holds local state and an
// "aggregate" entry funnels branch values to the asker.
func TestGroupAsService(t *testing.T) {
	const pes = 4
	cm := newMachine(pes)
	var report int64
	err := cm.Run(func(p *core.Proc) {
		rt := Attach(p, ldb.NewSpray())
		var gt int
		gt = rt.RegisterGroup(
			func(rt *RT, gid GroupID, msg []byte) any {
				return &branchCounter{sum: int64(rt.Proc().MyPe() * 10)}
			},
			// entry 0: report local sum to the branch on PE msg[0]
			func(rt *RT, branch any, msg []byte) {
				gid := GroupID(binary.LittleEndian.Uint32(msg[1:]))
				val := make([]byte, 8)
				binary.LittleEndian.PutUint64(val, uint64(branch.(*branchCounter).sum))
				rt.SendBranch(gid, int(msg[0]), 1, val)
			},
			// entry 1: absorb a report
			func(rt *RT, branch any, msg []byte) {
				atomic.AddInt64(&report, int64(binary.LittleEndian.Uint64(msg)))
			},
		)
		if p.MyPe() == 0 {
			gid := rt.CreateGroup(gt, nil)
			ask := make([]byte, 5)
			ask[0] = 0 // report to PE0's branch
			binary.LittleEndian.PutUint32(ask[1:], uint32(gid))
			rt.SendGroup(gid, 0, ask)
			rt.StartQD(func(rt *RT) { rt.ExitAll() })
		}
		p.Scheduler(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if report != 0+10+20+30 {
		t.Fatalf("report = %d, want 60", report)
	}
}

// An invocation of a group this processor has not seen created parks
// until the creation lands (the creation broadcast rides the spanning
// tree and can be overtaken); it must not run, and must not panic.
func TestUnknownGroupInvocationParks(t *testing.T) {
	cm := newMachine(1)
	err := cm.Run(func(p *core.Proc) {
		rt := Attach(p, ldb.NewSpray())
		ran := false
		rt.RegisterGroup(func(rt *RT, gid GroupID, msg []byte) any { return nil },
			func(rt *RT, branch any, msg []byte) { ran = true })
		rt.SendBranch(GroupID(999), 0, 0, nil)
		p.ScheduleUntilIdle()
		if ran {
			t.Error("invocation of a never-created group ran")
		}
		if len(rt.groupPending[GroupID(999)]) != 1 {
			t.Errorf("parked invocations = %d, want 1", len(rt.groupPending[GroupID(999)]))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCreateGroupUnregisteredPanics(t *testing.T) {
	cm := newMachine(1)
	err := cm.Run(func(p *core.Proc) {
		rt := Attach(p, ldb.NewSpray())
		rt.CreateGroup(3, nil)
	})
	if err == nil {
		t.Fatal("unregistered group type did not error")
	}
}

func TestTwoGroupsCoexist(t *testing.T) {
	const pes = 2
	cm := newMachine(pes)
	var a, b int64
	err := cm.Run(func(p *core.Proc) {
		rt := Attach(p, ldb.NewSpray())
		ga := rt.RegisterGroup(func(rt *RT, gid GroupID, msg []byte) any { return nil },
			func(rt *RT, branch any, msg []byte) { atomic.AddInt64(&a, 1) })
		gb := rt.RegisterGroup(func(rt *RT, gid GroupID, msg []byte) any { return nil },
			func(rt *RT, branch any, msg []byte) { atomic.AddInt64(&b, 1) })
		if p.MyPe() == 0 {
			idA := rt.CreateGroup(ga, nil)
			idB := rt.CreateGroup(gb, nil)
			rt.SendGroup(idA, 0, nil)
			rt.SendGroup(idB, 0, nil)
			rt.SendGroup(idB, 0, nil)
			rt.StartQD(func(rt *RT) { rt.ExitAll() })
		}
		p.Scheduler(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if a != pes || b != 2*pes {
		t.Fatalf("a=%d b=%d", a, b)
	}
}
