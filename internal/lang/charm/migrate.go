package charm

import (
	"encoding/binary"
	"fmt"

	"converse/internal/core"
)

// Object migration, the first of the two extended load-balancing
// situations the paper describes beyond seed balancing (§3.3.1,
// footnote): "entities such as message-driven objects ... are moved from
// one processor to another while the computation is in progress.
// Supporting this involves queues for forwarding messages to migrated
// objects." The paper notes this is implementable on top of Converse as
// a library; this file is that library for chares.
//
// Protocol. Migrate packs the object, removes it locally, and ships the
// blob to the destination, which rebuilds it under a fresh id and
// replies with a "moved" notice. Until the notice arrives, invocations
// reaching the old home are held in a forwarding queue; afterwards, a
// permanent forwarding entry rewrites and re-sends them (and anything
// that arrives later) to the new home. Chained migrations forward hop
// by hop. Quiescence counters treat a forwarded message as processed
// here and sent anew, so detection stays exact.

// Migratable is implemented by chare objects that can move: Pack
// serializes the object's state for reconstruction on the destination.
type Migratable interface {
	Pack() []byte
}

// Unpacker rebuilds a migrated chare from its packed state on the
// destination processor.
type Unpacker func(rt *RT, self ChareID, blob []byte) any

// SetUnpacker registers the reconstruction function for a chare type,
// enabling migration for it. Like Register, call it identically on
// every processor.
func (rt *RT) SetUnpacker(typeID int, u Unpacker) {
	if typeID < 0 || typeID >= len(rt.types) {
		panic(fmt.Sprintf("charm: pe %d: SetUnpacker for unregistered type %d", rt.p.MyPe(), typeID))
	}
	rt.types[typeID].unpack = u
}

// Migrate moves the chare (typeID, id) from this processor to dst while
// the computation is in progress. The chare must live here, implement
// Migratable, and its type must have an Unpacker. Invocations in flight
// or arriving during and after the move are delivered to the new
// incarnation via the forwarding queue and forwarding table.
func (rt *RT) Migrate(typeID int, id ChareID, dst int) {
	if id.PE != rt.p.MyPe() {
		panic(fmt.Sprintf("charm: pe %d: Migrate of non-local chare %v", rt.p.MyPe(), id))
	}
	rec, ok := rt.chares[id.Local]
	if !ok {
		panic(fmt.Sprintf("charm: pe %d: Migrate of unknown chare %v", rt.p.MyPe(), id))
	}
	m, ok := rec.obj.(Migratable)
	if !ok {
		panic(fmt.Sprintf("charm: pe %d: chare %v does not implement Migratable", rt.p.MyPe(), id))
	}
	if rt.types[typeID].unpack == nil {
		panic(fmt.Sprintf("charm: pe %d: type %d has no Unpacker", rt.p.MyPe(), typeID))
	}
	if dst == rt.p.MyPe() {
		return // moving home is a no-op
	}
	blob := m.Pack()
	delete(rt.chares, id.Local)
	rt.inMove[id.Local] = &moveState{}

	msg := core.NewMsg(rt.hMigrate, 12+len(blob))
	pl := core.Payload(msg)
	binary.LittleEndian.PutUint32(pl[0:], uint32(typeID))
	binary.LittleEndian.PutUint32(pl[4:], uint32(rt.p.MyPe()))
	binary.LittleEndian.PutUint32(pl[8:], id.Local)
	copy(pl[12:], blob)
	rt.p.SyncSendAndFree(dst, msg)
	rt.migrations++
}

// moveState is the forwarding queue of a migration in progress.
type moveState struct {
	held [][]byte // grabbed invocation messages awaiting the new home
}

// Migrations reports how many chares this processor has migrated away.
func (rt *RT) Migrations() uint64 { return rt.migrations }

// onMigrate rebuilds an arriving chare and reports its new id home.
func (rt *RT) onMigrate(p *core.Proc, msg []byte) {
	pl := core.Payload(msg)
	typeID := int(binary.LittleEndian.Uint32(pl[0:]))
	origin := int(binary.LittleEndian.Uint32(pl[4:]))
	oldLocal := binary.LittleEndian.Uint32(pl[8:])
	rt.next++
	newID := ChareID{PE: p.MyPe(), Local: rt.next}
	if tr := p.Tracer(); tr != nil {
		tr.Event(core.TraceEvent{Kind: core.EvObjectCreate, T: p.TimerUs(), PE: p.MyPe(), Aux: int(newID.Local)})
	}
	rt.chares[newID.Local] = &chareRec{obj: rt.types[typeID].unpack(rt, newID, pl[12:]), typ: typeID}

	moved := core.NewMsg(rt.hMoved, 4+ChareIDSize)
	mp := core.Payload(moved)
	binary.LittleEndian.PutUint32(mp[0:], oldLocal)
	newID.Encode(mp[4:])
	p.SyncSendAndFree(origin, moved)
}

// onMoved installs the forwarding entry and flushes the held queue.
func (rt *RT) onMoved(p *core.Proc, msg []byte) {
	pl := core.Payload(msg)
	oldLocal := binary.LittleEndian.Uint32(pl[0:])
	newID := DecodeChareID(pl[4:])
	st, ok := rt.inMove[oldLocal]
	if !ok {
		panic(fmt.Sprintf("charm: pe %d: moved-notice for unknown migration %d", p.MyPe(), oldLocal))
	}
	delete(rt.inMove, oldLocal)
	rt.forwards[oldLocal] = newID
	for _, held := range st.held {
		rt.forwardInvoke(held, newID)
	}
}

// forwardInvoke rewrites an owned invocation message to the new home
// and re-sends it. The quiescence counters see one send.
func (rt *RT) forwardInvoke(msg []byte, to ChareID) {
	pl := core.Payload(msg)
	to.Encode(pl[0:])
	core.SetFlags(msg, 0) // fresh again at the destination
	rt.sent++
	rt.p.SyncSendAndFree(to.PE, msg)
}

// redirectInvoke handles a replayed invocation whose chare is gone:
// held if the migration is still in flight, forwarded if the new home
// is known. It reports whether it consumed the message.
func (rt *RT) redirectInvoke(p *core.Proc, msg []byte, local uint32) bool {
	if st, ok := rt.inMove[local]; ok {
		st.held = append(st.held, p.GrabBuffer())
		return true
	}
	if to, ok := rt.forwards[local]; ok {
		rt.forwardInvoke(p.GrabBuffer(), to)
		return true
	}
	return false
}
