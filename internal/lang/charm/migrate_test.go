package charm

import (
	"encoding/binary"
	"sync/atomic"
	"testing"
	"time"

	"converse/internal/core"
	"converse/internal/ldb"
)

// counterChare is a migratable chare accumulating byte values.
type counterChare struct {
	sum int64
}

func (c *counterChare) Pack() []byte {
	out := make([]byte, 8)
	binary.LittleEndian.PutUint64(out, uint64(c.sum))
	return out
}

// registerCounter registers the migratable counter type on a runtime,
// reporting final sums through the finals channel-free slice.
func registerCounter(rt *RT, total *int64) int {
	typeID := rt.Register(
		func(rt *RT, self ChareID, msg []byte) any { return &counterChare{} },
		// entry 0: add msg[0]
		func(rt *RT, obj any, msg []byte) {
			obj.(*counterChare).sum += int64(msg[0])
			atomic.AddInt64(total, int64(msg[0]))
		},
	)
	rt.SetUnpacker(typeID, func(rt *RT, self ChareID, blob []byte) any {
		return &counterChare{sum: int64(binary.LittleEndian.Uint64(blob))}
	})
	return typeID
}

func TestMigrationPreservesStateAndDelivery(t *testing.T) {
	cm := core.NewMachine(core.Config{PEs: 2, Watchdog: 20 * time.Second})
	var total int64
	var migratedSum int64
	err := cm.Run(func(p *core.Proc) {
		rt := Attach(p, ldb.NewSpray())
		typeID := registerCounter(rt, &total)
		if p.MyPe() != 0 {
			p.Scheduler(-1)
			return
		}
		id := rt.CreateHere(typeID, nil)
		// Feed it, then migrate it mid-computation, then feed the OLD
		// id again: the forwarding machinery must deliver.
		rt.Send(typeID, id, 0, []byte{5})
		p.ScheduleUntilIdle()
		rt.Migrate(typeID, id, 1)
		for i := 0; i < 4; i++ {
			rt.Send(typeID, id, 0, []byte{10}) // old address
		}
		rt.StartQD(func(rt *RT) {
			// All 45 units must have been absorbed somewhere.
			migratedSum = atomic.LoadInt64(&total)
			rt.ExitAll()
		})
		p.Scheduler(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if migratedSum != 45 {
		t.Fatalf("total delivered = %d, want 45", migratedSum)
	}
}

func TestMigrationHeldQueue(t *testing.T) {
	// Messages sent to the old home while the move is still in flight
	// must be held and flushed, not lost or crashed.
	cm := core.NewMachine(core.Config{PEs: 2, Watchdog: 20 * time.Second})
	var total int64
	err := cm.Run(func(p *core.Proc) {
		rt := Attach(p, ldb.NewSpray())
		typeID := registerCounter(rt, &total)
		if p.MyPe() != 0 {
			p.Scheduler(-1)
			return
		}
		id := rt.CreateHere(typeID, nil)
		rt.Migrate(typeID, id, 1)
		// The moved-notice has NOT been processed yet (we have not
		// scheduled): these go to the held queue.
		rt.Send(typeID, id, 0, []byte{1})
		rt.Send(typeID, id, 0, []byte{2})
		if rt.Migrations() != 1 {
			t.Errorf("Migrations = %d", rt.Migrations())
		}
		rt.StartQD(func(rt *RT) { rt.ExitAll() })
		p.Scheduler(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != 3 {
		t.Fatalf("total = %d, want 3", total)
	}
}

func TestChainedMigration(t *testing.T) {
	// A -> B -> C: messages to the original address traverse two
	// forwarding hops.
	cm := core.NewMachine(core.Config{PEs: 3, Watchdog: 20 * time.Second})
	var total int64
	// relay: on receipt, PE1 migrates its (only) resident chare onward
	// to PE2. Registered machine-wide before Attach so indices agree.
	hRelay := cm.RegisterHandler(func(p *core.Proc, msg []byte) {
		rt := Get(p)
		typeID := int(binary.LittleEndian.Uint32(core.Payload(msg)))
		for local := range rt.chares {
			rt.Migrate(typeID, ChareID{PE: p.MyPe(), Local: local}, 2)
		}
	})
	err := cm.Run(func(p *core.Proc) {
		rt := Attach(p, ldb.NewSpray())
		typeID := registerCounter(rt, &total)
		switch p.MyPe() {
		case 0:
			id := rt.CreateHere(typeID, nil)
			rt.Migrate(typeID, id, 1)
			p.ScheduleUntilIdle() // processes the moved-notice
			// Ask PE1 to push the chare onward to PE2.
			ctl := core.NewMsg(hRelay, 4)
			binary.LittleEndian.PutUint32(core.Payload(ctl), uint32(typeID))
			p.SyncSendAndFree(1, ctl)
			// The old address must still work after both hops.
			rt.Send(typeID, id, 0, []byte{7})
			rt.Send(typeID, id, 0, []byte{8})
			rt.StartQD(func(rt *RT) { rt.ExitAll() })
			p.Scheduler(-1)
		default:
			p.Scheduler(-1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != 15 {
		t.Fatalf("total = %d, want 15", total)
	}
}

func TestMigrateNonMigratablePanics(t *testing.T) {
	cm := core.NewMachine(core.Config{PEs: 2, Watchdog: 10 * time.Second})
	err := cm.Run(func(p *core.Proc) {
		rt := Attach(p, ldb.NewSpray())
		typeID := rt.Register(func(rt *RT, self ChareID, msg []byte) any {
			return struct{}{} // not Migratable
		})
		if p.MyPe() == 0 {
			id := rt.CreateHere(typeID, nil)
			rt.Migrate(typeID, id, 1)
		}
	})
	if err == nil {
		t.Fatal("migrating a non-Migratable chare did not error")
	}
}

func TestMigrateWithoutUnpackerPanics(t *testing.T) {
	cm := core.NewMachine(core.Config{PEs: 2, Watchdog: 10 * time.Second})
	err := cm.Run(func(p *core.Proc) {
		rt := Attach(p, ldb.NewSpray())
		typeID := rt.Register(func(rt *RT, self ChareID, msg []byte) any {
			return &counterChare{}
		})
		if p.MyPe() == 0 {
			id := rt.CreateHere(typeID, nil)
			rt.Migrate(typeID, id, 1)
		}
	})
	if err == nil {
		t.Fatal("migrating without an Unpacker did not error")
	}
}

func TestMigrateToSelfNoop(t *testing.T) {
	cm := core.NewMachine(core.Config{PEs: 1, Watchdog: 10 * time.Second})
	var total int64
	err := cm.Run(func(p *core.Proc) {
		rt := Attach(p, ldb.NewSpray())
		typeID := registerCounter(rt, &total)
		id := rt.CreateHere(typeID, nil)
		rt.Migrate(typeID, id, 0)
		rt.Send(typeID, id, 0, []byte{9})
		p.ScheduleUntilIdle()
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != 9 {
		t.Fatalf("total = %d", total)
	}
}
