package charm

import (
	"encoding/binary"
	"testing"

	"converse/internal/core"
	"converse/internal/ldb"
)

// Creation messages ride the two-level broadcast tree through relay
// processors, while invocations go point-to-point — so an invocation
// can reach a processor before the creation it depends on. These tests
// force that arrival order directly against the handlers and assert
// the runtime parks the early invocation and replays it when the
// creation lands.

func TestArrayInvocationOvertakesCreation(t *testing.T) {
	cm := newMachine(1)
	err := cm.Run(func(p *core.Proc) {
		rt := Attach(p, ldb.NewSpray())
		var got []int
		at := rt.RegisterArray(
			func(rt *RT, aid ArrayID, idx int, msg []byte) any { return &elem{idx: idx} },
			func(rt *RT, e any, idx int, data []byte) {
				got = append(got, int(binary.LittleEndian.Uint32(data)))
			})
		const aid = ArrayID(0x42)

		// Two invocations of element 0 arrive before the creation.
		for _, v := range []uint32{7, 8} {
			msg := core.NewMsg(rt.hArrInv, 20)
			pl := core.Payload(msg)
			binary.LittleEndian.PutUint32(pl[0:], uint32(aid))
			binary.LittleEndian.PutUint32(pl[4:], 0) // idx
			binary.LittleEndian.PutUint32(pl[8:], 0) // ep
			binary.LittleEndian.PutUint32(pl[16:], v)
			core.SetFlags(msg, 1)
			rt.onArrInv(p, msg)
		}
		if len(got) != 0 {
			t.Errorf("invocation ran before the array existed: %v", got)
		}

		// The creation lands: both park entries must replay in order.
		rt.buildElems(aid, at, 1, nil)
		if len(got) != 2 || got[0] != 7 || got[1] != 8 {
			t.Errorf("replayed invocations = %v, want [7 8]", got)
		}
		if rt.sent != 0 && rt.processed != rt.sent {
			t.Errorf("quiescence counters diverged: sent=%d processed=%d", rt.sent, rt.processed)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGroupInvocationOvertakesCreation(t *testing.T) {
	cm := newMachine(1)
	err := cm.Run(func(p *core.Proc) {
		rt := Attach(p, ldb.NewSpray())
		var got []int
		gt := rt.RegisterGroup(
			func(rt *RT, gid GroupID, msg []byte) any { return new(int) },
			func(rt *RT, branch any, msg []byte) {
				got = append(got, int(binary.LittleEndian.Uint32(msg)))
			})
		const gid = GroupID(0x99)

		msg := core.NewMsg(rt.hGroupInv, 12)
		pl := core.Payload(msg)
		binary.LittleEndian.PutUint32(pl[0:], uint32(gid))
		binary.LittleEndian.PutUint32(pl[4:], 0) // ep
		binary.LittleEndian.PutUint32(pl[8:], 5)
		core.SetFlags(msg, 1)
		rt.onGroupInv(p, msg)
		if len(got) != 0 {
			t.Errorf("invocation ran before the group existed: %v", got)
		}

		rt.buildBranch(gid, gt, nil)
		if len(got) != 1 || got[0] != 5 {
			t.Errorf("replayed invocations = %v, want [5]", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
