package charm

import (
	"encoding/binary"
	"fmt"

	"converse/internal/core"
)

// Quiescence detection. Message-driven programs have no natural end:
// work exists wherever messages are queued or in flight, so "done" is a
// global property — no chare message anywhere remains unprocessed. The
// runtime counts application messages sent and processed on each
// processor and an initiator runs repeated probe waves; following the
// classic double-wave (four-counter) scheme, quiescence is declared when
// two consecutive waves report identical, balanced global counts. The
// counters are monotonic, so unchanged balanced sums across two waves
// imply no activity occurred anywhere between them and nothing was in
// flight.

// StartQD begins quiescence detection on this processor (the
// initiator); onQuiescence runs here, in handler context, when the
// machine-wide chare computation has quiesced. Typical callbacks
// broadcast an exit (see ExitAll).
func (rt *RT) StartQD(onQuiescence func(rt *RT)) {
	if rt.qdActive {
		panic(fmt.Sprintf("charm: pe %d: quiescence detection already active", rt.p.MyPe()))
	}
	rt.qdActive = true
	rt.qdPrevBalanced = false
	rt.onQuiescence = onQuiescence
	rt.probeWave()
}

// probeWave broadcasts a round-stamped probe to every processor
// (including this one).
func (rt *RT) probeWave() {
	rt.qdRound++
	rt.qdGot = 0
	rt.qdSent, rt.qdProc = 0, 0
	msg := core.NewMsg(rt.hProbe, 8)
	pl := core.Payload(msg)
	binary.LittleEndian.PutUint32(pl[0:], rt.qdRound)
	binary.LittleEndian.PutUint32(pl[4:], uint32(rt.p.MyPe()))
	rt.p.SyncBroadcastAllAndFree(msg)
}

// onProbe reports this processor's counters back to the initiator.
func (rt *RT) onProbe(p *core.Proc, msg []byte) {
	pl := core.Payload(msg)
	round := binary.LittleEndian.Uint32(pl[0:])
	initiator := int(binary.LittleEndian.Uint32(pl[4:]))
	reply := core.NewMsg(rt.hReply, 20)
	rp := core.Payload(reply)
	binary.LittleEndian.PutUint32(rp[0:], round)
	binary.LittleEndian.PutUint64(rp[4:], rt.sent)
	binary.LittleEndian.PutUint64(rp[12:], rt.processed)
	p.SyncSendAndFree(initiator, reply)
}

// onReply accumulates a wave at the initiator and decides: quiescent,
// or probe again.
func (rt *RT) onReply(p *core.Proc, msg []byte) {
	if !rt.qdActive {
		return
	}
	pl := core.Payload(msg)
	if binary.LittleEndian.Uint32(pl[0:]) != rt.qdRound {
		return // stale wave
	}
	rt.qdSent += binary.LittleEndian.Uint64(pl[4:])
	rt.qdProc += binary.LittleEndian.Uint64(pl[12:])
	rt.qdGot++
	if rt.qdGot < p.NumPes() {
		return
	}
	balanced := rt.qdSent == rt.qdProc
	confirmed := balanced && rt.qdPrevBalanced &&
		rt.qdSent == rt.qdPrevSent && rt.qdProc == rt.qdPrevProc
	rt.qdPrevBalanced = balanced
	rt.qdPrevSent, rt.qdPrevProc = rt.qdSent, rt.qdProc
	if confirmed {
		rt.qdActive = false
		if rt.onQuiescence != nil {
			rt.onQuiescence(rt)
		}
		return
	}
	rt.probeWave()
}

// ExitAll broadcasts a scheduler-exit to every processor; each
// processor's innermost Scheduler call returns. Standard termination
// for chare programs after quiescence.
func (rt *RT) ExitAll() {
	rt.p.SyncBroadcastAllAndFree(core.NewMsg(rt.hQD, 0))
}

// onQD stops the local scheduler.
func (rt *RT) onQD(p *core.Proc, msg []byte) {
	p.ExitScheduler()
}
