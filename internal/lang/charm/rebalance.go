package charm

import (
	"encoding/binary"
	"fmt"

	"converse/internal/core"
)

// Quasi-dynamic load balancing, the second extended situation of the
// paper's §3.3.1 footnote: "after a phase or period of computation has
// completed, the load and communication patterns in that phase are
// analyzed, and a new global distribution of entities to processors is
// derived. After moving the entities to their new destinations ... the
// computation proceeds to the next stage." Built, as the paper says it
// can be, on top of Converse — here on top of the migration library.
//
// Rebalance is a collective call: every processor invokes it between
// phases (loosely synchronously). Processor 0 gathers per-processor
// chare counts, derives the evened-out distribution, and sends each
// overloaded processor a directive listing how many chares to ship
// where; everyone acknowledges and processor 0 releases the collective.

// rebalance wire tags carried in the control payloads.
const (
	rbCount = iota + 1 // worker -> 0: [tag u8][count u32]
	rbPlan             // 0 -> worker: [tag u8][npairs u32]{[dst u32][n u32]}...
	rbDone             // worker -> 0: [tag u8]
	rbGo               // 0 -> worker: [tag u8]
)

// rebalState tracks one collective rebalance on a processor.
type rebalState struct {
	counts   []int // at the coordinator: per-PE counts
	haveCnt  int
	plan     []byte // at workers: received directive
	havePlan bool
	dones    int
	released bool
}

// Rebalance migrates chares of the given type so that every processor
// ends up with an equal share (±1). All processors must call it, at the
// same point between computation phases; the type must have an Unpacker
// and its chares must implement Migratable. It returns the number of
// chares this processor shipped away.
func (rt *RT) Rebalance(typeID int) int {
	p := rt.p
	me := p.MyPe()
	st := &rebalState{}
	rt.rebal = st
	defer func() { rt.rebal = nil }()
	if me == 0 {
		st.counts = make([]int, p.NumPes())
	}
	// Replay control messages that arrived before we entered.
	pending := rt.rebalPending
	rt.rebalPending = nil
	for _, pl := range pending {
		rt.applyRebal(pl)
	}

	// Phase 1: report the local count to the coordinator.
	count := len(rt.LocalChares(typeID))
	if me == 0 {
		st.counts[0] = count
		st.haveCnt++
		p.ServeUntil(func() bool { return st.haveCnt == p.NumPes() })

		// Phase 2: derive the even distribution and the transfers.
		total := 0
		for _, c := range st.counts {
			total += c
		}
		target := make([]int, p.NumPes())
		for i := range target {
			target[i] = total / p.NumPes()
			if i < total%p.NumPes() {
				target[i]++
			}
		}
		// Greedy matching of surpluses to deficits.
		type deficit struct{ pe, n int }
		var deficits []deficit
		for pe, c := range st.counts {
			if c < target[pe] {
				deficits = append(deficits, deficit{pe, target[pe] - c})
			}
		}
		plans := make(map[int][][2]int) // src -> list of (dst, n)
		di := 0
		for pe, c := range st.counts {
			surplus := c - target[pe]
			for surplus > 0 && di < len(deficits) {
				n := surplus
				if n > deficits[di].n {
					n = deficits[di].n
				}
				plans[pe] = append(plans[pe], [2]int{deficits[di].pe, n})
				surplus -= n
				deficits[di].n -= n
				if deficits[di].n == 0 {
					di++
				}
			}
		}
		// Ship each worker its directive (possibly empty).
		for pe := 1; pe < p.NumPes(); pe++ {
			rt.sendRebal(pe, encodePlan(plans[pe]))
		}
		// Execute the coordinator's own directive.
		shipped := rt.executePlan(typeID, plans[0])
		// Phase 4: wait for acknowledgements, then release everyone.
		st.dones++ // the coordinator's own
		p.ServeUntil(func() bool { return st.dones == p.NumPes() })
		for pe := 1; pe < p.NumPes(); pe++ {
			rt.sendRebal(pe, []byte{rbGo})
		}
		return shipped
	}

	// Workers: report, await the plan, execute, acknowledge, await go.
	cnt := make([]byte, 5)
	cnt[0] = rbCount
	binary.LittleEndian.PutUint32(cnt[1:], uint32(count))
	rt.sendRebal(0, cnt)
	p.ServeUntil(func() bool { return st.havePlan })
	shipped := rt.executePlan(typeID, decodePlan(st.plan))
	rt.sendRebal(0, []byte{rbDone})
	p.ServeUntil(func() bool { return st.released })
	return shipped
}

// executePlan migrates n arbitrary local chares of the type to each
// destination in the plan.
func (rt *RT) executePlan(typeID int, plan [][2]int) int {
	shipped := 0
	local := rt.LocalChares(typeID)
	for _, pair := range plan {
		dst, n := pair[0], pair[1]
		for i := 0; i < n; i++ {
			if len(local) == 0 {
				panic(fmt.Sprintf("charm: pe %d: rebalance plan exceeds local chares", rt.p.MyPe()))
			}
			id := local[len(local)-1]
			local = local[:len(local)-1]
			rt.Migrate(typeID, id, dst)
			shipped++
		}
	}
	return shipped
}

// encodePlan serializes a directive.
func encodePlan(plan [][2]int) []byte {
	buf := make([]byte, 5+8*len(plan))
	buf[0] = rbPlan
	binary.LittleEndian.PutUint32(buf[1:], uint32(len(plan)))
	for i, pair := range plan {
		binary.LittleEndian.PutUint32(buf[5+8*i:], uint32(pair[0]))
		binary.LittleEndian.PutUint32(buf[9+8*i:], uint32(pair[1]))
	}
	return buf
}

// decodePlan parses a directive body (without the leading tag byte).
func decodePlan(body []byte) [][2]int {
	n := int(binary.LittleEndian.Uint32(body))
	plan := make([][2]int, n)
	for i := 0; i < n; i++ {
		plan[i][0] = int(binary.LittleEndian.Uint32(body[4+8*i:]))
		plan[i][1] = int(binary.LittleEndian.Uint32(body[8+8*i:]))
	}
	return plan
}

// sendRebal ships a rebalance control payload, with the source PE
// prepended.
func (rt *RT) sendRebal(dst int, payload []byte) {
	msg := core.NewMsg(rt.hRebal, 4+len(payload))
	pl := core.Payload(msg)
	binary.LittleEndian.PutUint32(pl, uint32(rt.p.MyPe()))
	copy(pl[4:], payload)
	rt.p.SyncSendAndFree(dst, msg)
}

// onRebal processes a rebalance control message. Messages from
// processors that entered the collective before this one are stashed
// and replayed when Rebalance starts here.
func (rt *RT) onRebal(p *core.Proc, msg []byte) {
	pl := core.Payload(msg)
	if rt.rebal == nil {
		rt.rebalPending = append(rt.rebalPending, append([]byte(nil), pl...))
		return
	}
	rt.applyRebal(pl)
}

// applyRebal applies one control payload to the active collective.
func (rt *RT) applyRebal(pl []byte) {
	src := int(binary.LittleEndian.Uint32(pl))
	body := pl[4:]
	st := rt.rebal
	switch body[0] {
	case rbCount:
		st.counts[src] = int(binary.LittleEndian.Uint32(body[1:]))
		st.haveCnt++
	case rbPlan:
		st.plan = append([]byte(nil), body[1:]...)
		st.havePlan = true
	case rbDone:
		st.dones++
	case rbGo:
		st.released = true
	default:
		panic(fmt.Sprintf("charm: pe %d: unknown rebalance tag %d", rt.p.MyPe(), body[0]))
	}
}
