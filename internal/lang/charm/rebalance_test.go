package charm

import (
	"sync/atomic"
	"testing"
	"time"

	"converse/internal/core"
	"converse/internal/ldb"
)

func TestRebalanceEvensOutChares(t *testing.T) {
	const pes = 4
	const total = 22 // not divisible by pes: targets are 6,6,5,5
	cm := core.NewMachine(core.Config{PEs: pes, Watchdog: 20 * time.Second})
	countsAfter := make([]int64, pes)
	var sum int64
	err := cm.Run(func(p *core.Proc) {
		rt := Attach(p, ldb.NewSpray())
		var tCount int64
		typeID := registerCounter(rt, &tCount)
		// Lopsided creation: everything on PE0.
		if p.MyPe() == 0 {
			for i := 0; i < total; i++ {
				id := rt.CreateHere(typeID, nil)
				rt.Send(typeID, id, 0, []byte{1}) // give each some state
			}
			p.ScheduleUntilIdle()
		}
		rt.Rebalance(typeID)
		// Let the moved-notices settle so forwarding tables are final.
		p.ScheduleUntilIdle()
		n := len(rt.LocalChares(typeID))
		atomic.StoreInt64(&countsAfter[p.MyPe()], int64(n))
		// Verify migrated state arrived intact: sum the counters.
		var local int64
		for _, id := range rt.LocalChares(typeID) {
			local += rt.Chare(id).(*counterChare).sum
		}
		atomic.AddInt64(&sum, local)
	})
	if err != nil {
		t.Fatal(err)
	}
	var n int64
	for pe, c := range countsAfter {
		n += c
		if c < total/pes || c > total/pes+1 {
			t.Errorf("PE %d has %d chares after rebalance, want %d or %d",
				pe, c, total/pes, total/pes+1)
		}
	}
	if n != total {
		t.Fatalf("chares after rebalance = %d, want %d", n, total)
	}
	if sum != total {
		t.Fatalf("migrated state sum = %d, want %d", sum, total)
	}
}

func TestRebalanceAlreadyBalancedShipsNothing(t *testing.T) {
	const pes = 3
	cm := core.NewMachine(core.Config{PEs: pes, Watchdog: 20 * time.Second})
	var shippedTotal int64
	err := cm.Run(func(p *core.Proc) {
		rt := Attach(p, ldb.NewSpray())
		var tc int64
		typeID := registerCounter(rt, &tc)
		for i := 0; i < 5; i++ {
			rt.CreateHere(typeID, nil)
		}
		shipped := rt.Rebalance(typeID)
		atomic.AddInt64(&shippedTotal, int64(shipped))
	})
	if err != nil {
		t.Fatal(err)
	}
	if shippedTotal != 0 {
		t.Fatalf("balanced system shipped %d chares", shippedTotal)
	}
}

func TestRebalanceThenComputePhase(t *testing.T) {
	// The quasi-dynamic pattern end to end: phase 1 creates lopsided
	// work, rebalance, phase 2 sends to the OLD addresses — forwarding
	// must route everything to the moved chares.
	const pes = 3
	const total = 9
	cm := core.NewMachine(core.Config{PEs: pes, Watchdog: 20 * time.Second})
	var delivered int64
	err := cm.Run(func(p *core.Proc) {
		rt := Attach(p, ldb.NewSpray())
		typeID := registerCounter(rt, &delivered)
		var ids []ChareID
		if p.MyPe() == 0 {
			for i := 0; i < total; i++ {
				ids = append(ids, rt.CreateHere(typeID, nil))
			}
		}
		rt.Rebalance(typeID)
		if p.MyPe() == 0 {
			// Phase 2: address chares by their pre-rebalance ids.
			for _, id := range ids {
				rt.Send(typeID, id, 0, []byte{2})
			}
			rt.StartQD(func(rt *RT) { rt.ExitAll() })
		}
		p.Scheduler(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if delivered != 2*total {
		t.Fatalf("delivered = %d, want %d", delivered, 2*total)
	}
}

func TestRepeatedRebalance(t *testing.T) {
	const pes = 2
	cm := core.NewMachine(core.Config{PEs: pes, Watchdog: 20 * time.Second})
	err := cm.Run(func(p *core.Proc) {
		rt := Attach(p, ldb.NewSpray())
		var tc int64
		typeID := registerCounter(rt, &tc)
		if p.MyPe() == 0 {
			for i := 0; i < 8; i++ {
				rt.CreateHere(typeID, nil)
			}
		}
		for round := 0; round < 3; round++ {
			rt.Rebalance(typeID)
			p.ScheduleUntilIdle()
		}
		if n := len(rt.LocalChares(typeID)); n != 4 {
			t.Errorf("pe %d: %d chares after repeated rebalance, want 4", p.MyPe(), n)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
