// Package dp implements a small data-parallel layer over Converse,
// standing in for DP-Charm, the data-parallel language the paper lists
// among its initial implementations ("Charm, Charm++, DP-Charm (a data
// parallel language), PVM, NXLib, and SM").
//
// The model is classic SPMD data parallelism: block-distributed vectors
// with elementwise operations, global reductions (through the EMI's
// spanning-tree reduction), cyclic shifts (halo exchange with ring
// neighbors), broadcasts and gathers. All operations on distributed
// vectors are collective: every processor calls them in the same order,
// loosely synchronously — the explicit control regime of §2.2.
package dp

import (
	"encoding/binary"
	"fmt"
	"math"

	"converse/internal/core"
	"converse/internal/emi"
	"converse/internal/msgmgr"
)

// DP is the per-processor data-parallel runtime.
type DP struct {
	p   *core.Proc
	s   *emi.State
	all *emi.Pgrp

	h   int
	mm  *msgmgr.M
	seq int
}

// extKey locates the DP state in a Proc.
const extKey = "converse.lang.dp"

// Attach creates (or returns) the processor's data-parallel runtime.
// It initializes the EMI if needed.
func Attach(p *core.Proc) *DP {
	if d, ok := p.Ext(extKey).(*DP); ok {
		return d
	}
	d := &DP{p: p, s: emi.Init(p), mm: msgmgr.New()}
	d.all = d.s.AllGroup()
	d.h = p.RegisterHandler(func(p *core.Proc, msg []byte) {
		pl := p.GrabBuffer()[core.HeaderSize:]
		tag := int(binary.LittleEndian.Uint32(pl))
		d.mm.Put(pl[4:], tag)
	})
	p.SetExt(extKey, d)
	return d
}

// Proc returns the runtime's processor.
func (d *DP) Proc() *core.Proc { return d.p }

// send ships a tagged data block to another processor's DP runtime.
func (d *DP) send(dst, tag int, data []byte) {
	msg := core.NewMsg(d.h, 4+len(data))
	pl := core.Payload(msg)
	binary.LittleEndian.PutUint32(pl, uint32(tag))
	copy(pl[4:], data)
	d.p.SyncSendAndFree(dst, msg)
}

// recv blocks (SPM-style) for a tagged block.
func (d *DP) recv(tag int) []byte {
	for {
		if msg, _, ok := d.mm.Get(tag); ok {
			return msg
		}
		d.p.GetSpecificMsg(d.h)
		buf := d.p.GrabBuffer()[core.HeaderSize:]
		mtag := int(binary.LittleEndian.Uint32(buf))
		if mtag == tag {
			return buf[4:]
		}
		d.mm.Put(buf[4:], mtag)
	}
}

// Vector is a block-distributed vector of float64: element i lives on
// the processor owning block i/ceil(n/P). All Vector methods are
// collective.
type Vector struct {
	dp    *DP
	n     int       // global length
	lo    int       // global index of local[0]
	local []float64 // this processor's block
}

// blockSize returns ceil(n/p).
func blockSize(n, p int) int { return (n + p - 1) / p }

// NewVector creates a distributed vector of global length n,
// initializing element i to init(i). Collective.
func (d *DP) NewVector(n int, init func(i int) float64) *Vector {
	if n <= 0 {
		panic(fmt.Sprintf("dp: pe %d: NewVector with length %d", d.p.MyPe(), n))
	}
	bs := blockSize(n, d.p.NumPes())
	lo := d.p.MyPe() * bs
	hi := lo + bs
	if hi > n {
		hi = n
	}
	if lo > n {
		lo = n
	}
	v := &Vector{dp: d, n: n, lo: lo, local: make([]float64, hi-lo)}
	if init != nil {
		for i := range v.local {
			v.local[i] = init(lo + i)
		}
	}
	return v
}

// Len returns the global length.
func (v *Vector) Len() int { return v.n }

// Local returns this processor's block (aliased, not copied).
func (v *Vector) Local() []float64 { return v.local }

// LocalRange returns the global index range [lo, hi) of the local block.
func (v *Vector) LocalRange() (lo, hi int) { return v.lo, v.lo + len(v.local) }

// Map replaces each element x_i with f(i, x_i). Purely local.
func (v *Vector) Map(f func(i int, x float64) float64) *Vector {
	for k := range v.local {
		v.local[k] = f(v.lo+k, v.local[k])
	}
	return v
}

// Zip combines two aligned vectors elementwise into v:
// v_i = f(v_i, w_i). Purely local; panics if shapes differ.
func (v *Vector) Zip(w *Vector, f func(a, b float64) float64) *Vector {
	v.check(w)
	for k := range v.local {
		v.local[k] = f(v.local[k], w.local[k])
	}
	return v
}

// Axpy performs v += a*w. Purely local.
func (v *Vector) Axpy(a float64, w *Vector) *Vector {
	v.check(w)
	for k := range v.local {
		v.local[k] += a * w.local[k]
	}
	return v
}

func (v *Vector) check(w *Vector) {
	if v.n != w.n || v.lo != w.lo {
		panic(fmt.Sprintf("dp: pe %d: shape mismatch (%d@%d vs %d@%d)", v.dp.p.MyPe(), v.n, v.lo, w.n, w.lo))
	}
}

// Sum returns the global sum of all elements on every processor.
// Collective: a spanning-tree reduction followed by a broadcast.
func (v *Vector) Sum() float64 { return v.reduceAll(emi.OpFSum, 0) }

// Max returns the global maximum on every processor. Collective.
func (v *Vector) Max() float64 { return v.reduceAll(emi.OpFMax, math.Inf(-1)) }

// Min returns the global minimum on every processor. Collective.
func (v *Vector) Min() float64 { return v.reduceAll(emi.OpFMin, math.Inf(1)) }

// Dot returns the global dot product <v, w> on every processor.
// Collective.
func (v *Vector) Dot(w *Vector) float64 {
	v.check(w)
	acc := 0.0
	for k := range v.local {
		acc += v.local[k] * w.local[k]
	}
	return v.dp.allReduce(acc, emi.OpFSum)
}

// Norm2 returns the global Euclidean norm on every processor.
func (v *Vector) Norm2() float64 { return math.Sqrt(v.Dot(v)) }

// reduceAll reduces the local block with op and identity id, returning
// the global value everywhere.
func (v *Vector) reduceAll(op emi.ReduceOp, id float64) float64 {
	acc := id
	for _, x := range v.local {
		switch op {
		case emi.OpFSum:
			acc += x
		case emi.OpFMax:
			acc = math.Max(acc, x)
		case emi.OpFMin:
			acc = math.Min(acc, x)
		}
	}
	return v.dp.allReduce(acc, op)
}

// allReduce reduces contrib across all processors and broadcasts the
// result back down, returning it everywhere. Collective.
func (d *DP) allReduce(contrib float64, op emi.ReduceOp) float64 {
	d.seq++
	tag := 1<<28 + d.seq
	r, isRoot := d.s.ReduceFloat(d.all, contrib, op)
	if isRoot {
		bits := make([]byte, 8)
		binary.LittleEndian.PutUint64(bits, math.Float64bits(r))
		for _, child := range d.all.Children(d.p.MyPe()) {
			d.send(child, tag, bits)
		}
		return r
	}
	bits := d.recv(tag)
	val := math.Float64frombits(binary.LittleEndian.Uint64(bits))
	for _, child := range d.all.Children(d.p.MyPe()) {
		d.send(child, tag, bits)
	}
	return val
}

// BroadcastScalar distributes x from the root processor to everyone;
// non-roots pass any value. Collective.
func (d *DP) BroadcastScalar(x float64) float64 {
	d.seq++
	tag := 1<<27 + d.seq
	if d.p.MyPe() == 0 {
		bits := make([]byte, 8)
		binary.LittleEndian.PutUint64(bits, math.Float64bits(x))
		for _, child := range d.all.Children(0) {
			d.send(child, tag, bits)
		}
		return x
	}
	bits := d.recv(tag)
	for _, child := range d.all.Children(d.p.MyPe()) {
		d.send(child, tag, bits)
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(bits))
}

// Shift returns a new vector w with w_i = v_{(i+k+n) mod n} — a cyclic
// shift by k (positive k pulls from higher indices). Collective: blocks
// exchange boundary data with the processors owning the shifted range.
func (v *Vector) Shift(k int) *Vector {
	d := v.dp
	n := v.n
	k = ((k % n) + n) % n
	d.seq++
	tag := 1<<26 + d.seq*64 // room for a per-destination offset below

	// Every element v_j must travel to global position (j-k+n) mod n.
	// Group the local block by destination processor and ship slices.
	bs := blockSize(n, d.p.NumPes())
	type chunk struct {
		destPos int // global position of the first element in dst vector
		vals    []float64
	}
	bySender := map[int][]chunk{}
	for off := 0; off < len(v.local); {
		j := v.lo + off
		dstPos := (j - k + n) % n
		dstPE := dstPos / bs
		// run length until either source block or destination block ends
		runEnd := len(v.local) - off
		dstBlockEnd := (dstPE+1)*bs - dstPos
		if dstBlockEnd < runEnd {
			runEnd = dstBlockEnd
		}
		// also stop at wrap-around of the destination index space
		if wrap := n - dstPos; wrap < runEnd {
			runEnd = wrap
		}
		bySender[dstPE] = append(bySender[dstPE], chunk{destPos: dstPos, vals: v.local[off : off+runEnd]})
		off += runEnd
	}
	for dstPE, chunks := range bySender {
		for _, c := range chunks {
			buf := make([]byte, 4+8*len(c.vals))
			binary.LittleEndian.PutUint32(buf, uint32(c.destPos))
			for i, x := range c.vals {
				binary.LittleEndian.PutUint64(buf[4+8*i:], math.Float64bits(x))
			}
			d.send(dstPE, tag, buf)
		}
	}

	// Receive until the local block of the result is fully populated.
	w := d.NewVector(n, nil)
	filled := 0
	for filled < len(w.local) {
		buf := d.recv(tag)
		pos := int(binary.LittleEndian.Uint32(buf))
		vals := (len(buf) - 4) / 8
		for i := 0; i < vals; i++ {
			w.local[pos-w.lo+i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[4+8*i:]))
		}
		filled += vals
	}
	return w
}

// Gather collects the whole vector on the root processor (returned
// there; nil elsewhere). Collective.
func (v *Vector) Gather() []float64 {
	d := v.dp
	d.seq++
	tag := 1<<25 + d.seq
	if d.p.MyPe() != 0 {
		buf := make([]byte, 4+8*len(v.local))
		binary.LittleEndian.PutUint32(buf, uint32(v.lo))
		for i, x := range v.local {
			binary.LittleEndian.PutUint64(buf[4+8*i:], math.Float64bits(x))
		}
		d.send(0, tag, buf)
		return nil
	}
	out := make([]float64, v.n)
	copy(out[v.lo:], v.local)
	got := len(v.local)
	for got < v.n {
		buf := d.recv(tag)
		pos := int(binary.LittleEndian.Uint32(buf))
		vals := (len(buf) - 4) / 8
		for i := 0; i < vals; i++ {
			out[pos+i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[4+8*i:]))
		}
		got += vals
	}
	return out
}
