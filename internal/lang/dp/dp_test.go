package dp

import (
	"math"
	"testing"
	"time"

	"converse/internal/core"
)

// run executes body on every PE of a pes-wide machine.
func run(t *testing.T, pes int, body func(p *core.Proc, d *DP)) {
	t.Helper()
	cm := core.NewMachine(core.Config{PEs: pes, Watchdog: 20 * time.Second})
	err := cm.Run(func(p *core.Proc) {
		body(p, Attach(p))
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVectorDistribution(t *testing.T) {
	run(t, 4, func(p *core.Proc, d *DP) {
		v := d.NewVector(10, func(i int) float64 { return float64(i) })
		lo, hi := v.LocalRange()
		bs := 3 // ceil(10/4)
		wantLo := p.MyPe() * bs
		if wantLo > 10 {
			wantLo = 10
		}
		wantHi := wantLo + bs
		if wantHi > 10 {
			wantHi = 10
		}
		if lo != wantLo || hi != wantHi {
			t.Errorf("pe %d: range [%d,%d), want [%d,%d)", p.MyPe(), lo, hi, wantLo, wantHi)
		}
		for k, x := range v.Local() {
			if x != float64(lo+k) {
				t.Errorf("pe %d: local[%d] = %v", p.MyPe(), k, x)
			}
		}
	})
}

func TestSumMaxMinEverywhere(t *testing.T) {
	run(t, 4, func(p *core.Proc, d *DP) {
		v := d.NewVector(17, func(i int) float64 { return float64(i + 1) })
		if s := v.Sum(); s != 17*18/2 {
			t.Errorf("pe %d: Sum = %v, want 153", p.MyPe(), s)
		}
		if m := v.Max(); m != 17 {
			t.Errorf("pe %d: Max = %v", p.MyPe(), m)
		}
		if m := v.Min(); m != 1 {
			t.Errorf("pe %d: Min = %v", p.MyPe(), m)
		}
	})
}

func TestMapZipAxpy(t *testing.T) {
	run(t, 3, func(p *core.Proc, d *DP) {
		v := d.NewVector(9, func(i int) float64 { return float64(i) })
		w := d.NewVector(9, func(i int) float64 { return 2 })
		v.Map(func(i int, x float64) float64 { return x * x }) // v_i = i^2
		v.Zip(w, func(a, b float64) float64 { return a + b })  // v_i = i^2+2
		v.Axpy(3, w)                                           // v_i = i^2+8
		lo, _ := v.LocalRange()
		for k, x := range v.Local() {
			i := lo + k
			if x != float64(i*i+8) {
				t.Errorf("pe %d: v[%d] = %v, want %d", p.MyPe(), i, x, i*i+8)
			}
		}
	})
}

func TestDotAndNorm(t *testing.T) {
	run(t, 4, func(p *core.Proc, d *DP) {
		v := d.NewVector(12, func(i int) float64 { return 1 })
		w := d.NewVector(12, func(i int) float64 { return float64(i) })
		if dot := v.Dot(w); dot != 66 {
			t.Errorf("pe %d: Dot = %v, want 66", p.MyPe(), dot)
		}
		if n := v.Norm2(); math.Abs(n-math.Sqrt(12)) > 1e-12 {
			t.Errorf("pe %d: Norm2 = %v", p.MyPe(), n)
		}
	})
}

func TestShiftRotation(t *testing.T) {
	for _, pes := range []int{1, 2, 4} {
		for _, k := range []int{1, -1, 3, 7, 0, 10} {
			run(t, pes, func(p *core.Proc, d *DP) {
				const n = 10
				v := d.NewVector(n, func(i int) float64 { return float64(i) })
				w := v.Shift(k)
				lo, _ := w.LocalRange()
				for idx, x := range w.Local() {
					i := lo + idx
					want := float64(((i+k)%n + n) % n)
					if x != want {
						t.Errorf("pes=%d k=%d pe %d: w[%d] = %v, want %v", pes, k, p.MyPe(), i, x, want)
					}
				}
			})
		}
	}
}

func TestBroadcastScalar(t *testing.T) {
	run(t, 5, func(p *core.Proc, d *DP) {
		x := -1.0
		if p.MyPe() == 0 {
			x = 3.75
		}
		got := d.BroadcastScalar(x)
		if got != 3.75 {
			t.Errorf("pe %d: broadcast = %v", p.MyPe(), got)
		}
	})
}

func TestGather(t *testing.T) {
	run(t, 4, func(p *core.Proc, d *DP) {
		v := d.NewVector(11, func(i int) float64 { return float64(i * 10) })
		out := v.Gather()
		if p.MyPe() != 0 {
			if out != nil {
				t.Errorf("pe %d: Gather returned non-nil", p.MyPe())
			}
			return
		}
		for i, x := range out {
			if x != float64(i*10) {
				t.Errorf("out[%d] = %v", i, x)
			}
		}
	})
}

func TestShapeMismatchPanics(t *testing.T) {
	cm := core.NewMachine(core.Config{PEs: 2, Watchdog: 10 * time.Second})
	err := cm.Run(func(p *core.Proc) {
		d := Attach(p)
		v := d.NewVector(4, nil)
		w := d.NewVector(6, nil)
		v.Zip(w, func(a, b float64) float64 { return a })
	})
	if err == nil {
		t.Fatal("shape mismatch did not error")
	}
}

// TestPowerIteration runs a small data-parallel power method on a
// circulant matrix A = circ(2,1,0,…,0,1) (1-D Laplacian-like ring),
// whose dominant eigenvalue is 4. Uses Shift for the off-diagonals and
// Dot/Norm for normalization — the full layer end to end.
func TestPowerIteration(t *testing.T) {
	run(t, 4, func(p *core.Proc, d *DP) {
		const n = 16
		v := d.NewVector(n, func(i int) float64 { return 1 + 0.1*float64(i%3) })
		var lambda float64
		for iter := 0; iter < 60; iter++ {
			up := v.Shift(1)
			down := v.Shift(-1)
			av := d.NewVector(n, nil)
			for k := range av.Local() {
				av.Local()[k] = 2*v.Local()[k] + up.Local()[k] + down.Local()[k]
			}
			lambda = av.Dot(v) / v.Dot(v)
			norm := av.Norm2()
			av.Map(func(i int, x float64) float64 { return x / norm })
			v = av
		}
		if math.Abs(lambda-4) > 1e-6 {
			t.Errorf("pe %d: dominant eigenvalue = %v, want 4", p.MyPe(), lambda)
		}
	})
}

// TestHeatDiffusion: explicit 1-D heat equation on a ring via Shift —
// total heat must be conserved exactly by the scheme.
func TestHeatDiffusion(t *testing.T) {
	run(t, 3, func(p *core.Proc, d *DP) {
		const n = 12
		u := d.NewVector(n, func(i int) float64 {
			if i == 0 {
				return 100
			}
			return 0
		})
		initial := u.Sum()
		for step := 0; step < 50; step++ {
			right := u.Shift(1)
			left := u.Shift(-1)
			next := d.NewVector(n, nil)
			for k := range next.Local() {
				next.Local()[k] = u.Local()[k] + 0.25*(left.Local()[k]-2*u.Local()[k]+right.Local()[k])
			}
			u = next
		}
		if math.Abs(u.Sum()-initial) > 1e-9 {
			t.Errorf("pe %d: heat not conserved: %v -> %v", p.MyPe(), initial, u.Sum())
		}
		// Diffusion must have spread the spike: max well below 100.
		if u.Max() > 50 {
			t.Errorf("pe %d: max = %v, diffusion too weak", p.MyPe(), u.Max())
		}
	})
}
