// Package mdt is the paper's §4 case study: a small coordination
// language supporting simple message-driven threads, whose entire
// runtime one of the authors wrote in about a day in roughly 100 lines
// of C by composing the message manager, the thread object and the
// Converse scheduler. This file is the same exercise in Go, at
// comparable length — the point being that Converse's components make a
// new language's runtime nearly free, leaving the effort where it
// belongs (compilation and optimization).
//
// The language: threads can be dynamically created; they send messages
// with a single tag to other processors; a thread can block for a
// specific tag and is continued when a matching message is received.
package mdt

import (
	"encoding/binary"

	"converse/internal/core"
	"converse/internal/cth"
	"converse/internal/msgmgr"
)

// MDT is the per-processor runtime of the coordination language.
type MDT struct {
	p       *core.Proc
	rt      *cth.Runtime
	mm      *msgmgr.M
	h       int
	waiting map[int][]*cth.Thread
	live    int
}

// Attach creates (or returns) the processor's runtime.
func Attach(p *core.Proc) *MDT {
	if m, ok := p.Ext("converse.lang.mdt").(*MDT); ok {
		return m
	}
	m := &MDT{p: p, rt: cth.Init(p), mm: msgmgr.New(), waiting: map[int][]*cth.Thread{}}
	m.h = p.RegisterHandler(m.onMsg)
	p.SetExt("converse.lang.mdt", m)
	return m
}

// CreateThread makes a new message-driven thread running fn and hands
// it to the Converse scheduler.
func (m *MDT) CreateThread(fn func()) {
	m.live++
	th := m.rt.Create(func() { defer func() { m.live-- }(); fn() })
	th.UseSchedulerStrategy(0)
	m.rt.Awaken(th)
}

// Send transmits data under tag to processor pe.
func (m *MDT) Send(pe, tag int, data []byte) {
	msg := core.NewMsg(m.h, 4+len(data))
	binary.LittleEndian.PutUint32(core.Payload(msg), uint32(tag))
	copy(core.Payload(msg)[4:], data)
	m.p.SyncSendAndFree(pe, msg)
}

// Recv blocks the calling thread until a message with the given tag
// arrives and returns its data.
func (m *MDT) Recv(tag int) []byte {
	for {
		if msg, _, ok := m.mm.Get(tag); ok {
			return msg[4:]
		}
		self := m.rt.Self()
		m.waiting[tag] = append(m.waiting[tag], self)
		m.rt.Suspend()
	}
}

// onMsg parks an arriving message and awakens one thread blocked on its
// tag, if any.
func (m *MDT) onMsg(p *core.Proc, msg []byte) {
	pl := p.GrabBuffer()[core.HeaderSize:]
	tag := int(binary.LittleEndian.Uint32(pl))
	m.mm.Put(pl, tag)
	if ws := m.waiting[tag]; len(ws) > 0 {
		m.waiting[tag] = ws[1:]
		m.rt.Awaken(ws[0])
	}
}

// Run drives the scheduler until all local threads have finished.
func (m *MDT) Run() { m.p.ServeUntil(func() bool { return m.live == 0 }) }
