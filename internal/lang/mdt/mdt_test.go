package mdt

import (
	"os"
	"strings"
	"testing"
	"time"

	"converse/internal/core"
)

func newMachine(pes int) *core.Machine {
	return core.NewMachine(core.Config{PEs: pes, Watchdog: 15 * time.Second})
}

func TestPingPong(t *testing.T) {
	cm := newMachine(2)
	var got string
	err := cm.Run(func(p *core.Proc) {
		m := Attach(p)
		if p.MyPe() == 0 {
			m.CreateThread(func() {
				m.Send(1, 1, []byte("hi"))
				got = string(m.Recv(2))
			})
		} else {
			m.CreateThread(func() {
				d := m.Recv(1)
				m.Send(0, 2, append(d, '!'))
			})
		}
		m.Run()
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != "hi!" {
		t.Fatalf("got %q", got)
	}
}

func TestDynamicThreadCreation(t *testing.T) {
	// A thread creates more threads; all converse by tag.
	cm := newMachine(1)
	total := 0
	err := cm.Run(func(p *core.Proc) {
		m := Attach(p)
		m.CreateThread(func() {
			for i := 0; i < 5; i++ {
				m.CreateThread(func() {
					m.Send(0, 100, []byte{byte(i)})
				})
			}
			for i := 0; i < 5; i++ {
				d := m.Recv(100)
				total += int(d[0]) + 1
			}
		})
		m.Run()
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != 15 {
		t.Fatalf("total = %d, want 15", total)
	}
}

func TestManyBlockedTagsInterleave(t *testing.T) {
	const n = 10
	cm := newMachine(2)
	sum := 0
	err := cm.Run(func(p *core.Proc) {
		m := Attach(p)
		if p.MyPe() == 0 {
			for i := 0; i < n; i++ {
				m.CreateThread(func() {
					d := m.Recv(10 + i)
					sum += int(d[0])
				})
			}
		} else {
			m.CreateThread(func() {
				// Deliver in reverse tag order to force buffering paths.
				for i := n - 1; i >= 0; i-- {
					m.Send(0, 10+i, []byte{byte(i)})
				}
			})
		}
		m.Run()
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum != n*(n-1)/2 {
		t.Fatalf("sum = %d, want %d", sum, n*(n-1)/2)
	}
}

func TestMessageBeforeThread(t *testing.T) {
	cm := newMachine(2)
	var got byte
	err := cm.Run(func(p *core.Proc) {
		m := Attach(p)
		if p.MyPe() == 1 {
			m.Send(0, 5, []byte{9})
			return
		}
		p.Scheduler(1) // park the message first
		m.CreateThread(func() { got = m.Recv(5)[0] })
		m.Run()
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 9 {
		t.Fatalf("got %d", got)
	}
}

// TestRuntimeIsAboutAHundredLines verifies the paper's §4 claim holds
// for this implementation too: the entire runtime (mdt.go) is on the
// order of 100 lines.
func TestRuntimeIsAboutAHundredLines(t *testing.T) {
	src, err := os.ReadFile("mdt.go")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(src), "\n")
	code := 0
	for _, l := range lines {
		trimmed := strings.TrimSpace(l)
		if trimmed == "" || strings.HasPrefix(trimmed, "//") {
			continue
		}
		code++
	}
	if code > 120 {
		t.Fatalf("mdt runtime is %d code lines; the paper's point is ~100", code)
	}
	if code < 40 {
		t.Fatalf("mdt runtime is only %d code lines; suspiciously empty", code)
	}
}
