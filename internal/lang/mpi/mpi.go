// Package mpi implements an MPI-style messaging layer over the minimal
// machine interface, substantiating the paper's §3.1.3 claim: the MMI
// deliberately omits tag/source-indexed retrieval and delivery-order
// bookkeeping, "yet it is possible to provide an efficient MPI-style
// retrieval on top of this interface."
//
// The layer provides the MPI surface that claim is about: sends and
// receives addressed by (source, tag) with MPI_ANY_SOURCE/MPI_ANY_TAG
// wildcards, a Status result, ordered delivery between pairs (inherited
// from the substrate's non-overtaking links plus FIFO parking), probes,
// Sendrecv, and the core collectives — Barrier, Bcast, Reduce,
// Allreduce, Gather — built on the EMI's spanning-tree processor groups.
// Like PVM and NX it is a single-process-module layer (§2.1).
package mpi

import (
	"encoding/binary"
	"fmt"

	"converse/internal/core"
	"converse/internal/emi"
	"converse/internal/msgmgr"
)

// Wildcards for Recv/Probe.
const (
	AnySource = msgmgr.Wildcard
	AnyTag    = msgmgr.Wildcard
)

// Reduction operations for Reduce/Allreduce.
const (
	OpSum  = emi.OpSum
	OpMax  = emi.OpMax
	OpMin  = emi.OpMin
	OpProd = emi.OpProd
)

// Status describes a completed receive.
type Status struct {
	Source int
	Tag    int
	Count  int // full length of the received message in bytes
}

// MPI is the per-processor MPI-style runtime ("communicator world").
type MPI struct {
	p   *core.Proc
	s   *emi.State
	all *emi.Pgrp
	h   int
	mm  *msgmgr.M
	seq int
}

// wire format: [tag u32][src u32][data...]
const mpiHeader = 8

// collTagBase reserves the upper tag range for collectives.
const collTagBase = 1 << 29

// extKey locates the MPI state in a Proc.
const extKey = "converse.lang.mpi"

// Attach creates (or returns) the processor's MPI-style layer; it
// initializes the EMI if needed.
func Attach(p *core.Proc) *MPI {
	if m, ok := p.Ext(extKey).(*MPI); ok {
		return m
	}
	m := &MPI{p: p, s: emi.Init(p), mm: msgmgr.New()}
	m.all = m.s.AllGroup()
	m.h = p.RegisterHandler(func(p *core.Proc, msg []byte) {
		m.park(p.GrabBuffer())
	})
	p.SetExt(extKey, m)
	return m
}

// Rank returns the calling processor's rank (MPI_Comm_rank).
func (m *MPI) Rank() int { return m.p.MyPe() }

// Size returns the communicator size (MPI_Comm_size).
func (m *MPI) Size() int { return m.p.NumPes() }

// Send transmits data to rank dst under tag (MPI_Send). The buffer may
// be reused on return.
func (m *MPI) Send(data []byte, dst, tag int) {
	if tag < 0 || tag >= collTagBase {
		panic(fmt.Sprintf("mpi: rank %d: tag %d outside the user range", m.Rank(), tag))
	}
	m.send(data, dst, tag)
}

func (m *MPI) send(data []byte, dst, tag int) {
	msg := core.NewMsg(m.h, mpiHeader+len(data))
	pl := core.Payload(msg)
	binary.LittleEndian.PutUint32(pl[0:], uint32(tag))
	binary.LittleEndian.PutUint32(pl[4:], uint32(m.Rank()))
	copy(pl[mpiHeader:], data)
	m.p.SyncSendAndFree(dst, msg)
}

// Recv blocks until a message matching (src, tag) — either may be a
// wildcard — arrives, copies at most len(buf) bytes into buf, and
// returns the status (MPI_Recv). Matching is FIFO among candidates, so
// pairwise delivery order is preserved, as MPI requires.
func (m *MPI) Recv(buf []byte, src, tag int) Status {
	for {
		if msg, t1, t2, ok := m.mm.Get2(tag, src); ok {
			return m.complete(msg, t1, t2, buf)
		}
		m.p.GetSpecificMsg(m.h)
		raw := m.p.GrabBuffer()
		pl := core.Payload(raw)
		mtag := int(binary.LittleEndian.Uint32(pl[0:]))
		msrc := int(binary.LittleEndian.Uint32(pl[4:]))
		if (tag == AnyTag || mtag == tag) && (src == AnySource || msrc == src) {
			return m.complete(pl, mtag, msrc, buf)
		}
		m.mm.Put2(pl, mtag, msrc)
	}
}

func (m *MPI) complete(pl []byte, tag, src int, buf []byte) Status {
	copy(buf, pl[mpiHeader:])
	return Status{Source: src, Tag: tag, Count: len(pl) - mpiHeader}
}

// Probe blocks until a matching message is available and returns its
// status without receiving it (MPI_Probe).
func (m *MPI) Probe(src, tag int) Status {
	for {
		if size, t1, t2, ok := m.mm.Probe2(tag, src); ok {
			return Status{Source: t2, Tag: t1, Count: size - mpiHeader}
		}
		m.p.GetSpecificMsg(m.h)
		m.park(m.p.GrabBuffer())
	}
}

// Iprobe reports whether a matching message is available, without
// blocking (MPI_Iprobe).
func (m *MPI) Iprobe(src, tag int) (Status, bool) {
	m.drain()
	if size, t1, t2, ok := m.mm.Probe2(tag, src); ok {
		return Status{Source: t2, Tag: t1, Count: size - mpiHeader}, true
	}
	return Status{}, false
}

// Sendrecv performs a combined send and receive (MPI_Sendrecv), safe
// against the head-on exchange that deadlocks naive code.
func (m *MPI) Sendrecv(sendBuf []byte, dst, sendTag int, recvBuf []byte, src, recvTag int) Status {
	m.Send(sendBuf, dst, sendTag)
	return m.Recv(recvBuf, src, recvTag)
}

func (m *MPI) park(raw []byte) {
	pl := core.Payload(raw)
	mtag := int(binary.LittleEndian.Uint32(pl[0:]))
	msrc := int(binary.LittleEndian.Uint32(pl[4:]))
	m.mm.Put2(pl, mtag, msrc)
}

func (m *MPI) drain() {
	for {
		msg, ok := m.p.GetMsg()
		if !ok {
			return
		}
		if core.HandlerOf(msg) == m.h {
			m.park(m.p.GrabBuffer())
			continue
		}
		m.p.GrabBuffer()
		m.p.Enqueue(msg)
	}
}

// --- collectives (spanning-tree, via the EMI group machinery) ---

// Barrier blocks until every rank has entered it (MPI_Barrier).
func (m *MPI) Barrier() { m.s.Barrier(m.all) }

// Bcast distributes buf from the root to every rank: the root's buf is
// sent, others' buf is filled (MPI_Bcast). All ranks pass buffers of
// the same length.
func (m *MPI) Bcast(buf []byte, root int) {
	m.seq++
	tag := collTagBase + m.seq
	if m.Rank() == root {
		// Tree fan-out rooted at the broadcast root: recursive halving
		// over ranks rotated so the root is rank 0.
		m.fanout(buf, root, 0, m.Size(), tag)
		return
	}
	m.recvColl(buf, tag)
}

// fanout ships halves of the rotated rank range [lo,hi) onward.
func (m *MPI) fanout(buf []byte, root, lo, hi, tag int) {
	for hi-lo > 1 {
		mid := (lo + hi + 1) / 2
		dst := (root + mid) % m.Size()
		// Prefix the payload with the subrange for further forwarding.
		env := make([]byte, 8+len(buf))
		binary.LittleEndian.PutUint32(env[0:], uint32(mid))
		binary.LittleEndian.PutUint32(env[4:], uint32(hi))
		copy(env[8:], buf)
		m.send(env, dst, tag)
		hi = mid
	}
}

// recvColl receives a fan-out envelope, forwards its subranges, and
// copies the payload into buf.
func (m *MPI) recvColl(buf []byte, tag int) {
	tmp := make([]byte, 8+len(buf))
	st := m.Recv(tmp, AnySource, tag)
	lo := int(binary.LittleEndian.Uint32(tmp[0:]))
	hi := int(binary.LittleEndian.Uint32(tmp[4:]))
	payload := tmp[8:st.Count]
	// Determine the root from the sender and our rotated position:
	// root = (rank - lo) mod size.
	root := ((m.Rank()-lo)%m.Size() + m.Size()) % m.Size()
	m.fanout(payload, root, lo, hi, tag)
	copy(buf, payload)
}

// Reduce combines every rank's contribution with op, delivering the
// result at the requested root; other ranks get 0 (MPI_Reduce over
// int64). Every rank must call it. If root is not the group tree's
// root, the result is relayed there with a collective-tagged message.
func (m *MPI) Reduce(contrib int64, op emi.ReduceOp, root int) int64 {
	r, isRoot := m.s.Reduce(m.all, contrib, op)
	treeRoot := m.all.RootPE()
	if root == treeRoot {
		if isRoot {
			return r
		}
		return 0
	}
	m.seq++
	tag := collTagBase + m.seq
	if isRoot {
		out := make([]byte, 8)
		binary.LittleEndian.PutUint64(out, uint64(r))
		m.send(out, root, tag)
		return 0
	}
	if m.Rank() == root {
		buf := make([]byte, 8)
		m.Recv(buf, AnySource, tag)
		return int64(binary.LittleEndian.Uint64(buf))
	}
	return 0
}

// Allreduce combines every rank's contribution and returns the result
// on every rank (MPI_Allreduce over int64).
func (m *MPI) Allreduce(contrib int64, op emi.ReduceOp) int64 {
	r, isRoot := m.s.Reduce(m.all, contrib, op)
	out := make([]byte, 8)
	m.seq++
	tag := collTagBase + m.seq
	if isRoot {
		binary.LittleEndian.PutUint64(out, uint64(r))
		m.fanout(out, 0, 0, m.Size(), tag)
		return r
	}
	m.recvColl(out, tag)
	return int64(binary.LittleEndian.Uint64(out))
}

// Gather collects every rank's fixed-size block at the root, ordered by
// rank (MPI_Gather). Returns the concatenation at root, nil elsewhere.
func (m *MPI) Gather(block []byte, root int) []byte {
	m.seq++
	tag := collTagBase + m.seq
	if m.Rank() != root {
		m.send(block, root, tag)
		return nil
	}
	out := make([]byte, len(block)*m.Size())
	copy(out[root*len(block):], block)
	for i := 0; i < m.Size()-1; i++ {
		tmp := make([]byte, len(block))
		st := m.Recv(tmp, AnySource, tag)
		copy(out[st.Source*len(block):], tmp)
	}
	return out
}
