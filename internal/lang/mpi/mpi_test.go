package mpi

import (
	"bytes"
	"sync/atomic"
	"testing"
	"time"

	"converse/internal/core"
)

func newMachine(pes int) *core.Machine {
	return core.NewMachine(core.Config{PEs: pes, Watchdog: 15 * time.Second})
}

func TestSendRecvStatus(t *testing.T) {
	cm := newMachine(2)
	err := cm.Run(func(p *core.Proc) {
		m := Attach(p)
		if m.Rank() == 0 {
			m.Send([]byte("hello-mpi"), 1, 42)
			return
		}
		buf := make([]byte, 32)
		st := m.Recv(buf, 0, 42)
		if st.Source != 0 || st.Tag != 42 || st.Count != 9 {
			t.Errorf("status = %+v", st)
		}
		if string(buf[:st.Count]) != "hello-mpi" {
			t.Errorf("buf = %q", buf[:st.Count])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWildcards(t *testing.T) {
	cm := newMachine(3)
	err := cm.Run(func(p *core.Proc) {
		m := Attach(p)
		switch m.Rank() {
		case 1:
			m.Send([]byte{1}, 0, 10)
		case 2:
			m.Send([]byte{2}, 0, 20)
		case 0:
			buf := make([]byte, 4)
			st1 := m.Recv(buf, AnySource, 20)
			if st1.Source != 2 || buf[0] != 2 {
				t.Errorf("Recv(*,20) = %+v", st1)
			}
			st2 := m.Recv(buf, 1, AnyTag)
			if st2.Tag != 10 || buf[0] != 1 {
				t.Errorf("Recv(1,*) = %+v", st2)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPairwiseOrderPreserved(t *testing.T) {
	// MPI guarantees non-overtaking between a pair with equal tags.
	cm := newMachine(2)
	err := cm.Run(func(p *core.Proc) {
		m := Attach(p)
		if m.Rank() == 0 {
			for i := 0; i < 50; i++ {
				m.Send([]byte{byte(i)}, 1, 7)
			}
			return
		}
		buf := make([]byte, 1)
		for i := 0; i < 50; i++ {
			m.Recv(buf, 0, 7)
			if int(buf[0]) != i {
				t.Fatalf("message %d overtaken by %d", i, buf[0])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProbeThenRecv(t *testing.T) {
	cm := newMachine(2)
	err := cm.Run(func(p *core.Proc) {
		m := Attach(p)
		if m.Rank() == 0 {
			m.Send([]byte("sized"), 1, 3)
			return
		}
		st := m.Probe(0, 3)
		if st.Count != 5 {
			t.Errorf("Probe count = %d", st.Count)
		}
		buf := make([]byte, st.Count) // classic probe-then-recv sizing
		m.Recv(buf, st.Source, st.Tag)
		if string(buf) != "sized" {
			t.Errorf("buf = %q", buf)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIprobe(t *testing.T) {
	cm := newMachine(2)
	err := cm.Run(func(p *core.Proc) {
		m := Attach(p)
		if m.Rank() == 0 {
			if _, ok := m.Iprobe(AnySource, AnyTag); ok {
				t.Error("Iprobe matched on empty system")
			}
			m.Send([]byte{1}, 1, 1)
			m.Recv(make([]byte, 1), 1, 2) // ack
			return
		}
		for {
			if st, ok := m.Iprobe(0, 1); ok {
				if st.Count != 1 {
					t.Errorf("Iprobe status = %+v", st)
				}
				break
			}
		}
		m.Recv(make([]byte, 1), 0, 1)
		m.Send([]byte{1}, 0, 2)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvHeadOnExchange(t *testing.T) {
	cm := newMachine(2)
	err := cm.Run(func(p *core.Proc) {
		m := Attach(p)
		other := 1 - m.Rank()
		out := []byte{byte(m.Rank() + 10)}
		in := make([]byte, 1)
		m.Sendrecv(out, other, 5, in, other, 5)
		if int(in[0]) != other+10 {
			t.Errorf("rank %d received %d", m.Rank(), in[0])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrier(t *testing.T) {
	const pes = 5
	cm := newMachine(pes)
	var arrived int64
	err := cm.Run(func(p *core.Proc) {
		m := Attach(p)
		atomic.AddInt64(&arrived, 1)
		m.Barrier()
		if n := atomic.LoadInt64(&arrived); n != pes {
			t.Errorf("rank %d passed barrier with %d arrivals", m.Rank(), n)
		}
		m.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastFromEachRoot(t *testing.T) {
	const pes = 6
	for root := 0; root < pes; root++ {
		cm := newMachine(pes)
		err := cm.Run(func(p *core.Proc) {
			m := Attach(p)
			buf := make([]byte, 8)
			if m.Rank() == root {
				copy(buf, "RootData")
			}
			m.Bcast(buf, root)
			if string(buf) != "RootData" {
				t.Errorf("root=%d rank=%d got %q", root, m.Rank(), buf)
			}
		})
		if err != nil {
			t.Fatalf("root %d: %v", root, err)
		}
	}
}

func TestReduceAtEveryRoot(t *testing.T) {
	const pes = 4
	for root := 0; root < pes; root++ {
		cm := newMachine(pes)
		results := make([]int64, pes)
		err := cm.Run(func(p *core.Proc) {
			m := Attach(p)
			results[m.Rank()] = m.Reduce(int64(m.Rank()+1), OpSum, root)
		})
		if err != nil {
			t.Fatalf("root %d: %v", root, err)
		}
		for rank, r := range results {
			want := int64(0)
			if rank == root {
				want = 10 // 1+2+3+4
			}
			if r != want {
				t.Errorf("root=%d rank=%d Reduce = %d, want %d", root, rank, r, want)
			}
		}
	}
}

func TestAllreduce(t *testing.T) {
	const pes = 7
	cm := newMachine(pes)
	err := cm.Run(func(p *core.Proc) {
		m := Attach(p)
		got := m.Allreduce(int64(m.Rank()+1), OpSum)
		if got != pes*(pes+1)/2 {
			t.Errorf("rank %d Allreduce = %d", m.Rank(), got)
		}
		if mx := m.Allreduce(int64(m.Rank()), OpMax); mx != pes-1 {
			t.Errorf("rank %d Allreduce max = %d", m.Rank(), mx)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGather(t *testing.T) {
	const pes = 4
	cm := newMachine(pes)
	err := cm.Run(func(p *core.Proc) {
		m := Attach(p)
		block := []byte{byte(m.Rank()), byte(m.Rank() * 2)}
		out := m.Gather(block, 1)
		if m.Rank() != 1 {
			if out != nil {
				t.Errorf("rank %d got non-nil gather", m.Rank())
			}
			return
		}
		want := []byte{0, 0, 1, 2, 2, 4, 3, 6}
		if !bytes.Equal(out, want) {
			t.Errorf("Gather = %v, want %v", out, want)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectivesInterleavedWithP2P(t *testing.T) {
	const pes = 4
	cm := newMachine(pes)
	err := cm.Run(func(p *core.Proc) {
		m := Attach(p)
		for round := 0; round < 5; round++ {
			// point-to-point ring...
			next := (m.Rank() + 1) % pes
			prev := (m.Rank() + pes - 1) % pes
			in := make([]byte, 1)
			m.Sendrecv([]byte{byte(m.Rank())}, next, 9, in, prev, 9)
			if int(in[0]) != prev {
				t.Errorf("round %d: rank %d got %d", round, m.Rank(), in[0])
			}
			// ...interleaved with collectives
			if s := m.Allreduce(1, OpSum); s != pes {
				t.Errorf("Allreduce = %d", s)
			}
			m.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBadTagPanics(t *testing.T) {
	cm := newMachine(1)
	err := cm.Run(func(p *core.Proc) {
		Attach(p).Send(nil, 0, -3)
	})
	if err == nil {
		t.Fatal("negative tag did not error")
	}
}
