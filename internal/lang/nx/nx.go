// Package nx implements an NX-flavoured messaging layer over the
// Converse machine interface, standing in for the NXLib prototype the
// paper lists among its initial implementations. NX was the native
// message-passing interface of the Intel iPSC/Paragon family; its
// signature calls are csend/crecv (synchronous, typed) and isend/irecv
// (asynchronous, completed via msgwait), plus infotype/infocount/
// infonode enquiries about the last received message.
//
// Like SM and PVM, NX is a single-process-module layer (§2.1): a
// blocked crecv buffers all other traffic. Message selection is by
// "type" (the NX tag), with -1 matching any type.
package nx

import (
	"encoding/binary"
	"fmt"

	"converse/internal/core"
	"converse/internal/msgmgr"
)

// AnyType matches any message type in crecv/irecv/iprobe.
const AnyType = msgmgr.Wildcard

// NX is the per-processor NX-flavoured runtime.
type NX struct {
	p  *core.Proc
	h  int
	mm *msgmgr.M

	// last-received message info (infotype/infocount/infonode)
	lastType, lastCount, lastNode int

	pending  []*Recv
	gsyncSeq int
}

// Recv is a posted asynchronous receive (irecv), completed by Wait.
type Recv struct {
	typ  int
	buf  []byte
	n    int
	node int
	rtyp int
	done bool
}

// Done reports whether the receive has completed.
func (r *Recv) Done() bool { return r.done }

// Count returns the received byte count (valid once done).
func (r *Recv) Count() int { return r.n }

// Node returns the sender's processor (valid once done).
func (r *Recv) Node() int { return r.node }

// Type returns the received message type (valid once done).
func (r *Recv) Type() int { return r.rtyp }

// wire format of an NX message payload: [type u32][src u32][data...]
const nxHeader = 8

// extKey locates the NX state in a Proc.
const extKey = "converse.lang.nx"

// Attach creates (or returns) the processor's NX layer.
func Attach(p *core.Proc) *NX {
	if x, ok := p.Ext(extKey).(*NX); ok {
		return x
	}
	x := &NX{p: p, mm: msgmgr.New(), lastType: -1, lastNode: -1}
	x.h = p.RegisterHandler(func(p *core.Proc, msg []byte) {
		x.park(p.GrabBuffer())
	})
	p.SetExt(extKey, x)
	return x
}

// Mynode returns the calling processor id (mynode()).
func (x *NX) Mynode() int { return x.p.MyPe() }

// Numnodes returns the machine size (numnodes()).
func (x *NX) Numnodes() int { return x.p.NumPes() }

// Csend synchronously sends data of the given type to node (csend).
// The buffer may be reused when it returns.
func (x *NX) Csend(typ int, data []byte, node int) {
	x.checkType(typ)
	x.csendInternal(typ, data, node)
}

// checkType validates a user message type.
func (x *NX) checkType(typ int) {
	if typ < 0 || typ >= gsyncBase {
		panic(fmt.Sprintf("nx: pe %d: message type %d outside the user range [0, 1<<30)", x.p.MyPe(), typ))
	}
}

// Isend initiates an asynchronous send and returns its handle; poll or
// wait on it with the core's progress rules (isend/msgwait). The data
// is captured at call time.
func (x *NX) Isend(typ int, data []byte, node int) *core.CommHandle {
	x.checkType(typ)
	msg := core.NewMsg(x.h, nxHeader+len(data))
	pl := core.Payload(msg)
	binary.LittleEndian.PutUint32(pl[0:], uint32(typ))
	binary.LittleEndian.PutUint32(pl[4:], uint32(x.p.MyPe()))
	copy(pl[nxHeader:], data)
	return x.p.AsyncSend(node, msg)
}

// Msgwait blocks until an asynchronous send completes (msgwait).
func (x *NX) Msgwait(h *core.CommHandle) {
	for !x.p.IsSent(h) {
	}
}

// Crecv blocks until a message of the given type (or AnyType) arrives
// and copies it into buf, returning the byte count (crecv). Messages of
// other types are buffered; messages for other handlers stay deferred
// in the CMI.
func (x *NX) Crecv(typ int, buf []byte) int {
	for {
		if msg, rtyp, ok := x.mm.Get(typ); ok {
			return x.complete(msg, rtyp, buf)
		}
		x.p.GetSpecificMsg(x.h)
		raw := x.p.GrabBuffer()
		pl := core.Payload(raw)
		mtyp := int(binary.LittleEndian.Uint32(pl[0:]))
		if typ == AnyType || mtyp == typ {
			return x.complete(pl, mtyp, buf)
		}
		x.mm.Put(pl, mtyp)
	}
}

// complete fills buf and the info fields from a matched raw payload.
func (x *NX) complete(pl []byte, typ int, buf []byte) int {
	src := int(binary.LittleEndian.Uint32(pl[4:]))
	n := copy(buf, pl[nxHeader:])
	x.lastType, x.lastCount, x.lastNode = typ, len(pl)-nxHeader, src
	return n
}

// Irecv posts an asynchronous receive for the given type into buf
// (irecv); complete it with MsgwaitRecv or poll Done via Probe-driven
// progress.
func (x *NX) Irecv(typ int, buf []byte) *Recv {
	r := &Recv{typ: typ, buf: buf}
	// Try to satisfy immediately from buffered traffic.
	x.drain()
	x.trySatisfy(r)
	if !r.done {
		x.pending = append(x.pending, r)
	}
	return r
}

// MsgwaitRecv blocks until the posted receive completes.
func (x *NX) MsgwaitRecv(r *Recv) {
	for !r.done {
		x.p.GetSpecificMsg(x.h)
		raw := x.p.GrabBuffer()
		pl := core.Payload(raw)
		mtyp := int(binary.LittleEndian.Uint32(pl[0:]))
		x.mm.Put(pl, mtyp)
		x.satisfyPending()
	}
	x.lastType, x.lastCount, x.lastNode = r.rtyp, r.n, r.node
}

// trySatisfy completes r from the message manager if a match is stored.
func (x *NX) trySatisfy(r *Recv) {
	msg, rtyp, ok := x.mm.Get(r.typ)
	if !ok {
		return
	}
	src := int(binary.LittleEndian.Uint32(msg[4:]))
	r.n = copy(r.buf, msg[nxHeader:])
	r.node, r.rtyp, r.done = src, rtyp, true
}

// satisfyPending completes as many posted receives as possible.
func (x *NX) satisfyPending() {
	kept := x.pending[:0]
	for _, r := range x.pending {
		x.trySatisfy(r)
		if !r.done {
			kept = append(kept, r)
		}
	}
	x.pending = kept
}

// Iprobe reports whether a message of the given type is available
// without blocking (iprobe).
func (x *NX) Iprobe(typ int) bool {
	x.drain()
	_, _, ok := x.mm.Probe(typ)
	return ok
}

// drain parks all currently available NX messages and feeds posted
// receives; non-NX traffic is enqueued for its handlers.
func (x *NX) drain() {
	for {
		msg, ok := x.p.GetMsg()
		if !ok {
			break
		}
		if core.HandlerOf(msg) == x.h {
			x.park(x.p.GrabBuffer())
			continue
		}
		x.p.GrabBuffer()
		x.p.Enqueue(msg)
	}
	x.satisfyPending()
}

func (x *NX) park(raw []byte) {
	pl := core.Payload(raw)
	x.mm.Put(pl, int(binary.LittleEndian.Uint32(pl[0:])))
}

// Infotype returns the type of the last completed receive (infotype).
func (x *NX) Infotype() int { return x.lastType }

// Infocount returns the byte count of the last completed receive
// (infocount).
func (x *NX) Infocount() int { return x.lastCount }

// Infonode returns the sending node of the last completed receive
// (infonode).
func (x *NX) Infonode() int { return x.lastNode }

// Gsync is the NX global synchronization (gsync): a counted all-to-all
// barrier over a reserved type range, round-stamped like sm.Barrier.
func (x *NX) Gsync() {
	x.gsyncSeq++
	typ := gsyncBase + x.gsyncSeq
	buf := []byte{}
	for node := 0; node < x.p.NumPes(); node++ {
		if node != x.p.MyPe() {
			x.csendInternal(typ, buf, node)
		}
	}
	tmp := make([]byte, 0)
	for n := 0; n < x.p.NumPes()-1; n++ {
		x.Crecv(typ, tmp)
	}
}

// gsync state and reserved type range.
const gsyncBase = 1 << 30

// csendInternal bypasses the user-type validation for reserved types.
func (x *NX) csendInternal(typ int, data []byte, node int) {
	msg := core.NewMsg(x.h, nxHeader+len(data))
	pl := core.Payload(msg)
	binary.LittleEndian.PutUint32(pl[0:], uint32(typ))
	binary.LittleEndian.PutUint32(pl[4:], uint32(x.p.MyPe()))
	copy(pl[nxHeader:], data)
	x.p.SyncSendAndFree(node, msg)
}
