package nx

import (
	"sync/atomic"
	"testing"
	"time"

	"converse/internal/core"
)

func newMachine(pes int) *core.Machine {
	return core.NewMachine(core.Config{PEs: pes, Watchdog: 15 * time.Second})
}

func TestCsendCrecv(t *testing.T) {
	cm := newMachine(2)
	err := cm.Run(func(p *core.Proc) {
		x := Attach(p)
		if x.Mynode() == 0 {
			x.Csend(5, []byte("hello"), 1)
			buf := make([]byte, 16)
			n := x.Crecv(6, buf)
			if n != 5 || string(buf[:n]) != "world" {
				t.Errorf("Crecv = %d %q", n, buf[:n])
			}
			return
		}
		buf := make([]byte, 16)
		n := x.Crecv(5, buf)
		if n != 5 || string(buf[:n]) != "hello" {
			t.Errorf("Crecv = %d %q", n, buf[:n])
		}
		x.Csend(6, []byte("world"), 0)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInfoCalls(t *testing.T) {
	cm := newMachine(3)
	err := cm.Run(func(p *core.Proc) {
		x := Attach(p)
		if x.Mynode() == 2 {
			x.Csend(9, []byte("abcdefg"), 0)
			return
		}
		if x.Mynode() != 0 {
			return
		}
		buf := make([]byte, 32)
		x.Crecv(AnyType, buf)
		if x.Infotype() != 9 || x.Infocount() != 7 || x.Infonode() != 2 {
			t.Errorf("info = %d,%d,%d; want 9,7,2", x.Infotype(), x.Infocount(), x.Infonode())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCrecvBuffersByType(t *testing.T) {
	cm := newMachine(2)
	err := cm.Run(func(p *core.Proc) {
		x := Attach(p)
		if x.Mynode() == 0 {
			x.Csend(1, []byte("a"), 1)
			x.Csend(2, []byte("b"), 1)
			return
		}
		buf := make([]byte, 4)
		x.Crecv(2, buf) // must buffer type 1
		if buf[0] != 'b' {
			t.Errorf("Crecv(2) got %q", buf[0])
		}
		x.Crecv(1, buf)
		if buf[0] != 'a' {
			t.Errorf("Crecv(1) got %q", buf[0])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsendMsgwait(t *testing.T) {
	cm := newMachine(2)
	err := cm.Run(func(p *core.Proc) {
		x := Attach(p)
		if x.Mynode() == 0 {
			h := x.Isend(3, []byte("async"), 1)
			x.Msgwait(h)
			return
		}
		buf := make([]byte, 8)
		if n := x.Crecv(3, buf); string(buf[:n]) != "async" {
			t.Errorf("got %q", buf[:n])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIrecvCompletesLater(t *testing.T) {
	cm := newMachine(2)
	err := cm.Run(func(p *core.Proc) {
		x := Attach(p)
		if x.Mynode() == 1 {
			x.Csend(7, []byte("posted"), 0)
			return
		}
		buf := make([]byte, 8)
		r := x.Irecv(7, buf)
		x.MsgwaitRecv(r)
		if !r.Done() || r.Count() != 6 || r.Node() != 1 || r.Type() != 7 {
			t.Errorf("recv info = %v %d %d %d", r.Done(), r.Count(), r.Node(), r.Type())
		}
		if string(buf[:r.Count()]) != "posted" {
			t.Errorf("buf = %q", buf[:r.Count()])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIrecvSatisfiedFromBuffered(t *testing.T) {
	cm := newMachine(2)
	err := cm.Run(func(p *core.Proc) {
		x := Attach(p)
		if x.Mynode() == 1 {
			x.Csend(4, []byte("early"), 0)
			x.Csend(5, []byte("gate"), 0)
			return
		}
		// Wait for the gate first, burying type 4 in the manager.
		buf := make([]byte, 8)
		x.Crecv(5, buf)
		r := x.Irecv(4, buf)
		if !r.Done() {
			t.Error("Irecv should complete immediately from buffered message")
		}
		if string(buf[:r.Count()]) != "early" {
			t.Errorf("buf = %q", buf[:r.Count()])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIprobe(t *testing.T) {
	cm := newMachine(2)
	err := cm.Run(func(p *core.Proc) {
		x := Attach(p)
		if x.Mynode() == 0 {
			if x.Iprobe(1) {
				t.Error("Iprobe matched on empty system")
			}
			x.Csend(1, []byte("x"), 1)
			buf := make([]byte, 4)
			x.Crecv(2, buf) // ack
			return
		}
		for !x.Iprobe(1) {
		}
		buf := make([]byte, 4)
		x.Crecv(1, buf)
		x.Csend(2, nil, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGsync(t *testing.T) {
	const pes = 4
	cm := newMachine(pes)
	var before int64
	err := cm.Run(func(p *core.Proc) {
		x := Attach(p)
		atomic.AddInt64(&before, 1)
		x.Gsync()
		if n := atomic.LoadInt64(&before); n != pes {
			t.Errorf("node %d passed gsync with %d arrivals", x.Mynode(), n)
		}
		x.Gsync() // reusable
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTruncatingCrecv(t *testing.T) {
	cm := newMachine(2)
	err := cm.Run(func(p *core.Proc) {
		x := Attach(p)
		if x.Mynode() == 0 {
			x.Csend(1, []byte("longmessage"), 1)
			return
		}
		buf := make([]byte, 4)
		n := x.Crecv(1, buf)
		if n != 4 || string(buf) != "long" {
			t.Errorf("truncating recv = %d %q", n, buf)
		}
		// infocount reports the full length, like NX.
		if x.Infocount() != 11 {
			t.Errorf("Infocount = %d, want 11", x.Infocount())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBadTypePanics(t *testing.T) {
	cm := newMachine(1)
	err := cm.Run(func(p *core.Proc) {
		Attach(p).Csend(-1, nil, 0)
	})
	if err == nil {
		t.Fatal("negative type did not error")
	}
}
