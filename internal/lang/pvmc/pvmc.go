// Package pvmc implements a PVM-flavoured messaging layer over the
// Converse machine interface, standing in for the PVM prototype the
// paper lists among its initial implementations ("Prototype
// implementations of PVM, NXLib, and SM ... are complete").
//
// It reproduces the PVM programming surface that matters for
// interoperability: task ids, typed pack/unpack buffers, blocking and
// non-blocking receives addressed by (source, tag) with wildcards, probe,
// broadcast, and a barrier. Like PVM, it is a single-process-module
// layer (§2.1 "no concurrency"): a blocked receive buffers all other
// traffic. A threaded variant simply runs these calls from tSM threads.
package pvmc

import (
	"encoding/binary"
	"fmt"
	"math"

	"converse/internal/core"
	"converse/internal/msgmgr"
)

// Any is the wildcard for Recv/Probe source and tag (pvm's -1).
const Any = msgmgr.Wildcard

// PVM is the per-processor PVM-flavoured runtime.
type PVM struct {
	p  *core.Proc
	h  int
	mm *msgmgr.M

	sendBuf *Buffer
	recvBuf *Buffer

	barrierSeq int
}

// wire format: [tag u32][src u32][packed data...]
const pvmHeader = 8

// barrierTagBase is the internal tag range used by Barrier.
const barrierTagBase = 1 << 30

// extKey locates the PVM state in a Proc.
const extKey = "converse.lang.pvmc"

// Attach creates (or returns) the processor's PVM layer.
func Attach(p *core.Proc) *PVM {
	if v, ok := p.Ext(extKey).(*PVM); ok {
		return v
	}
	v := &PVM{p: p, mm: msgmgr.New()}
	v.h = p.RegisterHandler(func(p *core.Proc, msg []byte) {
		v.park(p.GrabBuffer())
	})
	p.SetExt(extKey, v)
	return v
}

// Proc returns the layer's processor.
func (v *PVM) Proc() *core.Proc { return v.p }

// Mytid returns the calling task's id (pvm_mytid); tasks map 1:1 onto
// processors here.
func (v *PVM) Mytid() int { return v.p.MyPe() }

// NumTasks returns the number of tasks (pvm_gsize of the global group).
func (v *PVM) NumTasks() int { return v.p.NumPes() }

// InitSend clears the send buffer and makes it active (pvm_initsend).
func (v *PVM) InitSend() *Buffer {
	v.sendBuf = &Buffer{}
	return v.sendBuf
}

// SendBuf returns the active send buffer, creating one if needed.
func (v *PVM) SendBuf() *Buffer {
	if v.sendBuf == nil {
		return v.InitSend()
	}
	return v.sendBuf
}

// Send ships the active send buffer to task tid under tag (pvm_send).
// The buffer remains intact and may be sent again.
func (v *PVM) Send(tid, tag int) {
	if tag < 0 || tag >= barrierTagBase {
		panic(fmt.Sprintf("pvmc: pe %d: tag %d outside the user range", v.p.MyPe(), tag))
	}
	v.send(tid, tag)
}

func (v *PVM) send(tid, tag int) {
	data := v.SendBuf().bytes
	msg := core.NewMsg(v.h, pvmHeader+len(data))
	pl := core.Payload(msg)
	binary.LittleEndian.PutUint32(pl[0:], uint32(tag))
	binary.LittleEndian.PutUint32(pl[4:], uint32(v.p.MyPe()))
	copy(pl[pvmHeader:], data)
	v.p.SyncSendAndFree(tid, msg)
}

// Mcast ships the active send buffer to every listed task (pvm_mcast).
func (v *PVM) Mcast(tids []int, tag int) {
	for _, tid := range tids {
		v.Send(tid, tag)
	}
}

// Bcast ships the active send buffer to every other task (pvm_bcast on
// the global group).
func (v *PVM) Bcast(tag int) {
	for tid := 0; tid < v.p.NumPes(); tid++ {
		if tid != v.Mytid() {
			v.Send(tid, tag)
		}
	}
}

// Recv blocks until a message matching (src, tag) — either may be Any —
// arrives, makes it the active receive buffer, and returns (actual src,
// actual tag) (pvm_recv). While blocked, messages for other handlers
// are buffered by the CMI and PVM messages with other addresses are
// parked.
func (v *PVM) Recv(src, tag int) (rsrc, rtag int) {
	for {
		if msg, t1, t2, ok := v.mm.Get2(tag, src); ok {
			v.recvBuf = &Buffer{bytes: msg[pvmHeader:]}
			return t2, t1
		}
		v.p.GetSpecificMsg(v.h)
		buf := v.p.GrabBuffer()
		pl := core.Payload(buf)
		mtag := int(binary.LittleEndian.Uint32(pl[0:]))
		msrc := int(binary.LittleEndian.Uint32(pl[4:]))
		if (tag == Any || mtag == tag) && (src == Any || msrc == src) {
			v.recvBuf = &Buffer{bytes: pl[pvmHeader:]}
			return msrc, mtag
		}
		v.mm.Put2(pl, mtag, msrc)
	}
}

// Nrecv is the non-blocking receive (pvm_nrecv): if a matching message
// is available it becomes the active receive buffer and ok is true.
func (v *PVM) Nrecv(src, tag int) (rsrc, rtag int, ok bool) {
	v.drain()
	msg, t1, t2, ok := v.mm.Get2(tag, src)
	if !ok {
		return 0, 0, false
	}
	v.recvBuf = &Buffer{bytes: msg[pvmHeader:]}
	return t2, t1, true
}

// Probe reports whether a matching message is available without
// receiving it (pvm_probe).
func (v *PVM) Probe(src, tag int) bool {
	v.drain()
	_, _, _, ok := v.mm.Probe2(tag, src)
	return ok
}

// drain parks all currently available PVM network messages; non-PVM
// messages are enqueued for their handlers.
func (v *PVM) drain() {
	for {
		msg, ok := v.p.GetMsg()
		if !ok {
			return
		}
		if core.HandlerOf(msg) == v.h {
			v.park(v.p.GrabBuffer())
			continue
		}
		v.p.GrabBuffer()
		v.p.Enqueue(msg)
	}
}

func (v *PVM) park(buf []byte) {
	pl := core.Payload(buf)
	mtag := int(binary.LittleEndian.Uint32(pl[0:]))
	msrc := int(binary.LittleEndian.Uint32(pl[4:]))
	v.mm.Put2(pl, mtag, msrc)
}

// RecvBuf returns the active receive buffer (set by Recv/Nrecv).
func (v *PVM) RecvBuf() *Buffer {
	if v.recvBuf == nil {
		panic(fmt.Sprintf("pvmc: pe %d: no active receive buffer", v.p.MyPe()))
	}
	return v.recvBuf
}

// Barrier synchronizes all tasks (pvm_barrier on the global group),
// using round-stamped internal tags so rounds cannot interfere.
func (v *PVM) Barrier() {
	v.barrierSeq++
	tag := barrierTagBase + v.barrierSeq
	save := v.sendBuf
	v.sendBuf = &Buffer{}
	for tid := 0; tid < v.p.NumPes(); tid++ {
		if tid != v.Mytid() {
			v.send(tid, tag)
		}
	}
	v.sendBuf = save
	for n := 0; n < v.p.NumPes()-1; n++ {
		v.Recv(Any, tag)
	}
	v.recvBuf = nil
}

// Buffer is a typed pack/unpack buffer (pvm's pkint/upkint family).
// Packing appends; unpacking reads sequentially from the front.
type Buffer struct {
	bytes []byte
	rpos  int
}

// Len reports the packed size in bytes.
func (b *Buffer) Len() int { return len(b.bytes) }

// PackInt appends 64-bit integers (pvm_pkint).
func (b *Buffer) PackInt(vals ...int64) *Buffer {
	for _, v := range vals {
		b.bytes = binary.LittleEndian.AppendUint64(b.bytes, uint64(v))
	}
	return b
}

// PackFloat64 appends doubles (pvm_pkdouble).
func (b *Buffer) PackFloat64(vals ...float64) *Buffer {
	for _, v := range vals {
		b.bytes = binary.LittleEndian.AppendUint64(b.bytes, math.Float64bits(v))
	}
	return b
}

// PackString appends a length-prefixed string (pvm_pkstr).
func (b *Buffer) PackString(s string) *Buffer {
	b.bytes = binary.LittleEndian.AppendUint32(b.bytes, uint32(len(s)))
	b.bytes = append(b.bytes, s...)
	return b
}

// PackBytes appends a length-prefixed byte block (pvm_pkbyte).
func (b *Buffer) PackBytes(p []byte) *Buffer {
	b.bytes = binary.LittleEndian.AppendUint32(b.bytes, uint32(len(p)))
	b.bytes = append(b.bytes, p...)
	return b
}

// UnpackInt reads one 64-bit integer (pvm_upkint).
func (b *Buffer) UnpackInt() int64 {
	b.need(8)
	v := int64(binary.LittleEndian.Uint64(b.bytes[b.rpos:]))
	b.rpos += 8
	return v
}

// UnpackFloat64 reads one double (pvm_upkdouble).
func (b *Buffer) UnpackFloat64() float64 {
	b.need(8)
	v := math.Float64frombits(binary.LittleEndian.Uint64(b.bytes[b.rpos:]))
	b.rpos += 8
	return v
}

// UnpackString reads a length-prefixed string (pvm_upkstr).
func (b *Buffer) UnpackString() string {
	return string(b.UnpackBytes())
}

// UnpackBytes reads a length-prefixed byte block (pvm_upkbyte).
func (b *Buffer) UnpackBytes() []byte {
	b.need(4)
	n := int(binary.LittleEndian.Uint32(b.bytes[b.rpos:]))
	b.rpos += 4
	b.need(n)
	out := b.bytes[b.rpos : b.rpos+n]
	b.rpos += n
	return out
}

func (b *Buffer) need(n int) {
	if b.rpos+n > len(b.bytes) {
		panic(fmt.Sprintf("pvmc: unpack of %d bytes past end of %d-byte buffer (pos %d)", n, len(b.bytes), b.rpos))
	}
}
