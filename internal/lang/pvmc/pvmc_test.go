package pvmc

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"converse/internal/core"
)

func newMachine(pes int) *core.Machine {
	return core.NewMachine(core.Config{PEs: pes, Watchdog: 15 * time.Second})
}

func TestPackUnpackRoundTrip(t *testing.T) {
	b := &Buffer{}
	b.PackInt(42, -7).PackFloat64(3.25).PackString("hello").PackBytes([]byte{1, 2, 3})
	if b.UnpackInt() != 42 || b.UnpackInt() != -7 {
		t.Fatal("int round trip failed")
	}
	if b.UnpackFloat64() != 3.25 {
		t.Fatal("float round trip failed")
	}
	if b.UnpackString() != "hello" {
		t.Fatal("string round trip failed")
	}
	if !bytes.Equal(b.UnpackBytes(), []byte{1, 2, 3}) {
		t.Fatal("bytes round trip failed")
	}
}

func TestPackUnpackProperty(t *testing.T) {
	f := func(ints []int64, fs []float64, s string) bool {
		b := &Buffer{}
		b.PackInt(ints...)
		b.PackFloat64(fs...)
		b.PackString(s)
		for _, v := range ints {
			if b.UnpackInt() != v {
				return false
			}
		}
		for _, v := range fs {
			got := b.UnpackFloat64()
			if got != v && !(got != got && v != v) { // NaN-safe
				return false
			}
		}
		return b.UnpackString() == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnpackPastEndPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	(&Buffer{}).UnpackInt()
}

func TestSendRecvTyped(t *testing.T) {
	cm := newMachine(2)
	err := cm.Run(func(p *core.Proc) {
		v := Attach(p)
		if v.Mytid() == 0 {
			v.InitSend().PackInt(123).PackString("payload")
			v.Send(1, 10)
			src, tag := v.Recv(1, 20)
			if src != 1 || tag != 20 {
				t.Errorf("Recv = %d,%d", src, tag)
			}
			if v.RecvBuf().UnpackInt() != 246 {
				t.Error("reply value wrong")
			}
			return
		}
		src, _ := v.Recv(Any, 10)
		n := v.RecvBuf().UnpackInt()
		if s := v.RecvBuf().UnpackString(); s != "payload" {
			t.Errorf("string = %q", s)
		}
		v.InitSend().PackInt(n * 2)
		v.Send(src, 20)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvBySourceAndTag(t *testing.T) {
	cm := newMachine(3)
	err := cm.Run(func(p *core.Proc) {
		v := Attach(p)
		switch v.Mytid() {
		case 1:
			v.InitSend().PackInt(1)
			v.Send(0, 7)
		case 2:
			v.InitSend().PackInt(2)
			v.Send(0, 7)
		case 0:
			// Select by source despite same tag.
			if src, _ := v.Recv(2, 7); src != 2 || v.RecvBuf().UnpackInt() != 2 {
				t.Error("Recv(2,7) wrong")
			}
			if src, _ := v.Recv(1, 7); src != 1 || v.RecvBuf().UnpackInt() != 1 {
				t.Error("Recv(1,7) wrong")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNrecvAndProbe(t *testing.T) {
	cm := newMachine(2)
	err := cm.Run(func(p *core.Proc) {
		v := Attach(p)
		if v.Mytid() == 0 {
			if _, _, ok := v.Nrecv(Any, Any); ok {
				t.Error("Nrecv matched on empty system")
			}
			v.InitSend().PackInt(5)
			v.Send(1, 1)
			v.Recv(1, 2) // ack
			return
		}
		for !v.Probe(0, 1) {
		}
		// Probe does not consume.
		if !v.Probe(0, 1) {
			t.Error("second Probe failed")
		}
		src, tag, ok := v.Nrecv(0, 1)
		if !ok || src != 0 || tag != 1 || v.RecvBuf().UnpackInt() != 5 {
			t.Errorf("Nrecv = %d,%d,%v", src, tag, ok)
		}
		v.InitSend()
		v.Send(0, 2)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastAndBarrier(t *testing.T) {
	const pes = 4
	cm := newMachine(pes)
	err := cm.Run(func(p *core.Proc) {
		v := Attach(p)
		if v.Mytid() == 0 {
			v.InitSend().PackString("all")
			v.Bcast(3)
		} else {
			v.Recv(0, 3)
			if v.RecvBuf().UnpackString() != "all" {
				t.Errorf("pe %d: bcast payload wrong", v.Mytid())
			}
		}
		for i := 0; i < 5; i++ {
			v.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMcast(t *testing.T) {
	cm := newMachine(4)
	err := cm.Run(func(p *core.Proc) {
		v := Attach(p)
		if v.Mytid() == 0 {
			v.InitSend().PackInt(9)
			v.Mcast([]int{1, 3}, 8)
			return
		}
		if v.Mytid() == 2 {
			return // must not receive
		}
		if src, _ := v.Recv(0, 8); src != 0 || v.RecvBuf().UnpackInt() != 9 {
			t.Errorf("pe %d: mcast wrong", v.Mytid())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendBufReusable(t *testing.T) {
	cm := newMachine(2)
	err := cm.Run(func(p *core.Proc) {
		v := Attach(p)
		if v.Mytid() == 0 {
			v.InitSend().PackInt(77)
			v.Send(1, 1)
			v.Send(1, 2) // same buffer again
			return
		}
		v.Recv(0, 1)
		a := v.RecvBuf().UnpackInt()
		v.Recv(0, 2)
		b := v.RecvBuf().UnpackInt()
		if a != 77 || b != 77 {
			t.Errorf("a=%d b=%d", a, b)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvBufWithoutRecvPanics(t *testing.T) {
	cm := newMachine(1)
	err := cm.Run(func(p *core.Proc) {
		Attach(p).RecvBuf()
	})
	if err == nil {
		t.Fatal("RecvBuf without Recv did not error")
	}
}

// TestPiCalculation: a small SPMD numerical program in the PVM style —
// each task integrates a slice and task 0 reduces.
func TestPiCalculation(t *testing.T) {
	const pes = 4
	const steps = 10000
	cm := newMachine(pes)
	var pi float64
	err := cm.Run(func(p *core.Proc) {
		v := Attach(p)
		h := 1.0 / steps
		sum := 0.0
		for i := v.Mytid(); i < steps; i += pes {
			x := h * (float64(i) + 0.5)
			sum += 4.0 / (1.0 + x*x)
		}
		part := h * sum
		if v.Mytid() != 0 {
			v.InitSend().PackFloat64(part)
			v.Send(0, 1)
			return
		}
		pi = part
		for i := 1; i < pes; i++ {
			v.Recv(Any, 1)
			pi += v.RecvBuf().UnpackFloat64()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if pi < 3.14158 || pi > 3.14161 {
		t.Fatalf("pi = %v", pi)
	}
}
