// Package sm implements SM, the paper's "simple messaging layer": a
// single-process-module (SPM) messaging system in the no-concurrency
// category of §2.1. A module blocks in Recv for a specific message;
// while it blocks, no other user-space activity takes place on the
// processor — messages for other handlers are buffered by the CMI
// (CmiGetSpecificMsg) and messages for SM with the wrong tag are parked
// in a message manager.
//
// The API is tag+source addressed, which also covers the NX-style
// (csend/crecv) layer the paper lists alongside SM and PVM: all three
// are SPM messaging layers over the same MMI calls.
package sm

import (
	"encoding/binary"
	"fmt"

	"converse/internal/core"
	"converse/internal/msgmgr"
)

// Wildcard matches any tag or source in Recv/Probe.
const Wildcard = msgmgr.Wildcard

// SM is the per-processor state of the simple messaging layer. Attach
// one on every processor at the same point of startup.
type SM struct {
	p  *core.Proc
	h  int
	mm *msgmgr.M

	barrierSeq int
}

// barrierTagBase is the start of the internal tag range used by Barrier;
// user tags must stay below it.
const barrierTagBase = 1 << 30

// wire format of an SM message payload: [tag u32][src u32][data...]
const smHeader = 8

// extKey locates the SM state in a Proc.
const extKey = "converse.lang.sm"

// Attach creates (or returns) the processor's SM layer.
func Attach(p *core.Proc) *SM {
	if s, ok := p.Ext(extKey).(*SM); ok {
		return s
	}
	s := &SM{p: p, mm: msgmgr.New()}
	s.h = p.RegisterHandler(func(p *core.Proc, msg []byte) {
		// SM messages are consumed by Recv, never dispatched; reaching
		// here means the program mixed Scheduler dispatch with pending
		// SM traffic — park the message for a later Recv.
		s.park(p.GrabBuffer())
	})
	p.SetExt(extKey, s)
	return s
}

// Proc returns the layer's processor.
func (s *SM) Proc() *core.Proc { return s.p }

// Send transmits data to processor dst under the given tag. The data is
// copied; the caller may reuse it immediately.
func (s *SM) Send(dst, tag int, data []byte) {
	if tag < 0 || tag >= barrierTagBase {
		panic(fmt.Sprintf("sm: pe %d: tag %d outside the user range [0, 1<<30)", s.p.MyPe(), tag))
	}
	s.send(dst, tag, data)
}

func (s *SM) send(dst, tag int, data []byte) {
	msg := core.NewMsg(s.h, smHeader+len(data))
	pl := core.Payload(msg)
	binary.LittleEndian.PutUint32(pl[0:], uint32(tag))
	binary.LittleEndian.PutUint32(pl[4:], uint32(s.p.MyPe()))
	copy(pl[smHeader:], data)
	s.p.SyncSendAndFree(dst, msg)
}

// Broadcast sends data under tag to every other processor.
func (s *SM) Broadcast(tag int, data []byte) {
	for dst := 0; dst < s.p.NumPes(); dst++ {
		if dst != s.p.MyPe() {
			s.Send(dst, tag, data)
		}
	}
}

// Recv blocks until a message matching tag (or Wildcard) is available
// and returns its data, source and actual tag. Messages with other tags
// that arrive meanwhile are buffered in arrival order.
func (s *SM) Recv(tag int) (data []byte, src, rettag int) {
	return s.recv(tag, Wildcard)
}

// RecvFrom is Recv restricted to a particular source processor (the
// NX/PVM-style addressing); both tag and src may be Wildcard.
func (s *SM) RecvFrom(src, tag int) (data []byte, rettag int) {
	d, _, rt := s.recv(tag, src)
	return d, rt
}

func (s *SM) recv(tag, src int) (data []byte, msgSrc, rettag int) {
	for {
		if msg, t1, t2, ok := s.mm.Get2(tag, src); ok {
			return msg[smHeader:], t2, t1
		}
		s.p.GetSpecificMsg(s.h)
		buf := s.p.GrabBuffer()
		pl := core.Payload(buf)
		mtag := int(binary.LittleEndian.Uint32(pl[0:]))
		msrc := int(binary.LittleEndian.Uint32(pl[4:]))
		if (tag == Wildcard || mtag == tag) && (src == Wildcard || msrc == src) {
			return pl[smHeader:], msrc, mtag
		}
		s.mm.Put2(pl, mtag, msrc)
	}
}

// park stores an already-grabbed SM message for a later Recv.
func (s *SM) park(buf []byte) {
	pl := core.Payload(buf)
	mtag := int(binary.LittleEndian.Uint32(pl[0:]))
	msrc := int(binary.LittleEndian.Uint32(pl[4:]))
	s.mm.Put2(pl, mtag, msrc)
}

// Probe reports whether a message matching tag is buffered or can be
// drained from the network without blocking, returning its size and tag.
func (s *SM) Probe(tag int) (size, rettag int, ok bool) {
	s.drain()
	size, rettag, ok = s.mm.Probe(tag)
	if ok {
		size -= smHeader
	}
	return size, rettag, ok
}

// drain moves all currently available SM network messages into the
// message manager without blocking. Non-SM messages stay deferred for
// their own handlers.
func (s *SM) drain() {
	for {
		msg, ok := s.p.GetMsg()
		if !ok {
			return
		}
		if core.HandlerOf(msg) == s.h {
			s.park(s.p.GrabBuffer())
			continue
		}
		// Not ours: hand it to its handler the way the scheduler
		// would. SPM purists would buffer it, but Probe is already an
		// "impatient" call; dispatching keeps the system live.
		s.p.GrabBuffer()
		s.p.Enqueue(msg)
	}
}

// Barrier synchronizes all processors: each sends a round-stamped token
// to every other and waits for all of theirs. Tokens carry the round in
// their tag, so a fast processor's round-k+1 token can never satisfy a
// slow processor's round-k wait. It uses only SM's own machinery,
// preserving SPM semantics (non-SM traffic stays buffered).
func (s *SM) Barrier() {
	s.barrierSeq++
	tag := barrierTagBase + s.barrierSeq
	for dst := 0; dst < s.p.NumPes(); dst++ {
		if dst != s.p.MyPe() {
			s.send(dst, tag, nil)
		}
	}
	for n := 0; n < s.p.NumPes()-1; n++ {
		s.recv(tag, Wildcard)
	}
}
