package sm

import (
	"fmt"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"converse/internal/core"
)

func newMachine(pes int) *core.Machine {
	return core.NewMachine(core.Config{PEs: pes, Watchdog: 15 * time.Second})
}

func TestSendRecvBasic(t *testing.T) {
	cm := newMachine(2)
	err := cm.Run(func(p *core.Proc) {
		s := Attach(p)
		if p.MyPe() == 0 {
			s.Send(1, 5, []byte("hello"))
			data, src, tag := s.Recv(6)
			if string(data) != "world" || src != 1 || tag != 6 {
				t.Errorf("Recv = %q,%d,%d", data, src, tag)
			}
			return
		}
		data, src, tag := s.Recv(5)
		if string(data) != "hello" || src != 0 || tag != 5 {
			t.Errorf("Recv = %q,%d,%d", data, src, tag)
		}
		s.Send(0, 6, []byte("world"))
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvBuffersWrongTags(t *testing.T) {
	cm := newMachine(2)
	err := cm.Run(func(p *core.Proc) {
		s := Attach(p)
		if p.MyPe() == 0 {
			s.Send(1, 1, []byte("first"))
			s.Send(1, 2, []byte("second"))
			s.Send(1, 3, []byte("third"))
			return
		}
		// Receive out of order: the layer must buffer tags 1 and 2.
		d3, _, _ := s.Recv(3)
		d1, _, _ := s.Recv(1)
		d2, _, _ := s.Recv(2)
		if string(d1) != "first" || string(d2) != "second" || string(d3) != "third" {
			t.Errorf("got %q %q %q", d1, d2, d3)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvWildcard(t *testing.T) {
	cm := newMachine(2)
	err := cm.Run(func(p *core.Proc) {
		s := Attach(p)
		if p.MyPe() == 0 {
			s.Send(1, 9, []byte("any"))
			return
		}
		data, src, tag := s.Recv(Wildcard)
		if string(data) != "any" || src != 0 || tag != 9 {
			t.Errorf("Recv(*) = %q,%d,%d", data, src, tag)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvFrom(t *testing.T) {
	cm := newMachine(3)
	err := cm.Run(func(p *core.Proc) {
		s := Attach(p)
		switch p.MyPe() {
		case 1, 2:
			s.Send(0, 7, []byte{byte(p.MyPe())})
		case 0:
			// Receive specifically from PE2 first, then PE1.
			d2, _ := s.RecvFrom(2, 7)
			d1, _ := s.RecvFrom(1, 7)
			if d2[0] != 2 || d1[0] != 1 {
				t.Errorf("RecvFrom order wrong: %v %v", d2, d1)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProbe(t *testing.T) {
	cm := newMachine(2)
	err := cm.Run(func(p *core.Proc) {
		s := Attach(p)
		if p.MyPe() == 0 {
			s.Send(1, 4, []byte("abcdef"))
			s.Recv(99) // wait for ack so the probe below is deterministic
			return
		}
		// Wait until the message is actually here.
		for {
			if size, tag, ok := s.Probe(4); ok {
				if size != 6 || tag != 4 {
					t.Errorf("Probe = %d,%d", size, tag)
				}
				break
			}
		}
		if _, _, ok := s.Probe(5); ok {
			t.Error("Probe(5) matched")
		}
		// The probed message is still receivable.
		if d, _, _ := s.Recv(4); string(d) != "abcdef" {
			t.Errorf("Recv after Probe = %q", d)
		}
		s.Send(0, 99, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBroadcast(t *testing.T) {
	const pes = 5
	cm := newMachine(pes)
	err := cm.Run(func(p *core.Proc) {
		s := Attach(p)
		if p.MyPe() == 2 {
			s.Broadcast(11, []byte("fanout"))
			return
		}
		d, src, _ := s.Recv(11)
		if string(d) != "fanout" || src != 2 {
			t.Errorf("pe %d: got %q from %d", p.MyPe(), d, src)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierOrdering(t *testing.T) {
	const pes = 4
	cm := newMachine(pes)
	var before, after int64
	err := cm.Run(func(p *core.Proc) {
		s := Attach(p)
		atomic.AddInt64(&before, 1)
		s.Barrier()
		// Every PE must observe all arrivals before anyone proceeds.
		if n := atomic.LoadInt64(&before); n != pes {
			t.Errorf("pe %d passed barrier with only %d arrivals", p.MyPe(), n)
		}
		atomic.AddInt64(&after, 1)
		s.Barrier()
		if n := atomic.LoadInt64(&after); n != pes {
			t.Errorf("pe %d passed 2nd barrier with only %d", p.MyPe(), n)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierManyRounds(t *testing.T) {
	const pes = 3
	cm := newMachine(pes)
	err := cm.Run(func(p *core.Proc) {
		s := Attach(p)
		for round := 0; round < 50; round++ {
			s.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagRangeValidation(t *testing.T) {
	cm := newMachine(1)
	err := cm.Run(func(p *core.Proc) {
		Attach(p).Send(0, -1, nil)
	})
	if err == nil {
		t.Fatal("negative tag did not error")
	}
}

func TestAttachIdempotent(t *testing.T) {
	cm := newMachine(1)
	err := cm.Run(func(p *core.Proc) {
		if Attach(p) != Attach(p) {
			t.Error("Attach not idempotent")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSPMRing: the classic SPMD ring program — each PE sends to its
// right neighbor and receives from the left, accumulating a token.
func TestSPMRing(t *testing.T) {
	const pes = 6
	cm := newMachine(pes)
	var total int
	err := cm.Run(func(p *core.Proc) {
		s := Attach(p)
		me, n := p.MyPe(), p.NumPes()
		right := (me + 1) % n
		if me == 0 {
			s.Send(right, 1, []byte{1})
			d, _, _ := s.Recv(1)
			total = int(d[0])
			return
		}
		d, _, _ := s.Recv(1)
		s.Send(right, 1, []byte{d[0] + 1})
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != pes {
		t.Fatalf("ring token = %d, want %d", total, pes)
	}
}

// TestInterleavedWithScheduler: an SPM module explicitly yields cycles
// to the scheduler (the §2.2 explicit control regime interacting with
// message-driven code), and parked SM messages survive it.
func TestInterleavedWithScheduler(t *testing.T) {
	cm := newMachine(2)
	var handled int32
	h := cm.RegisterHandler(func(p *core.Proc, msg []byte) {
		atomic.AddInt32(&handled, 1)
	})
	err := cm.Run(func(p *core.Proc) {
		s := Attach(p)
		if p.MyPe() == 0 {
			// Message-driven traffic and SM traffic interleaved.
			p.SyncSendAndFree(1, core.NewMsg(h, 0))
			s.Send(1, 1, []byte("sm-data"))
			p.SyncSendAndFree(1, core.NewMsg(h, 0))
			return
		}
		d, _, _ := s.Recv(1) // buffers the two handler messages
		if string(d) != "sm-data" {
			t.Errorf("Recv = %q", d)
		}
		p.Scheduler(2) // now grant the buffered messages their handlers
		if atomic.LoadInt32(&handled) != 2 {
			t.Errorf("handled = %d, want 2", handled)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func ExampleSM_usage() {
	cm := core.NewMachine(core.Config{PEs: 2, Watchdog: 10 * time.Second})
	out := make(chan string, 1)
	_ = cm.Run(func(p *core.Proc) {
		s := Attach(p)
		if p.MyPe() == 0 {
			s.Send(1, 42, []byte("ping"))
			d, _, _ := s.Recv(43)
			out <- string(d)
			return
		}
		d, src, _ := s.Recv(42)
		s.Send(src, 43, append(d, []byte("/pong")...))
	})
	fmt.Println(<-out)
	// Output: ping/pong
}

// TestPerTagFIFOProperty: for any sequence of (tag, value) sends between
// a fixed pair, receives by tag return values in per-tag send order.
func TestPerTagFIFOProperty(t *testing.T) {
	f := func(seq []uint8) bool {
		cm := newMachine(2)
		ok := true
		err := cm.Run(func(p *core.Proc) {
			s := Attach(p)
			if p.MyPe() == 0 {
				for i, v := range seq {
					s.Send(1, int(v%4), []byte{byte(i)})
				}
				return
			}
			// Receive tag by tag; each tag's stream must be in order.
			byTag := map[int][]byte{}
			for _, v := range seq {
				byTag[int(v%4)] = nil
			}
			for tag := range byTag {
				count := 0
				for _, v := range seq {
					if int(v%4) == tag {
						count++
					}
				}
				last := -1
				for i := 0; i < count; i++ {
					d, _, _ := s.Recv(tag)
					if int(d[0]) <= last {
						ok = false
						return
					}
					last = int(d[0])
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroLengthSM(t *testing.T) {
	cm := newMachine(2)
	err := cm.Run(func(p *core.Proc) {
		s := Attach(p)
		if p.MyPe() == 0 {
			s.Send(1, 1, nil)
			return
		}
		d, src, tag := s.Recv(1)
		if len(d) != 0 || src != 0 || tag != 1 {
			t.Errorf("zero-length recv = %v,%d,%d", d, src, tag)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLargeMessageSM(t *testing.T) {
	cm := newMachine(2)
	const size = 1 << 18 // 256 KB
	err := cm.Run(func(p *core.Proc) {
		s := Attach(p)
		if p.MyPe() == 0 {
			big := make([]byte, size)
			for i := range big {
				big[i] = byte(i * 7)
			}
			s.Send(1, 2, big)
			return
		}
		d, _, _ := s.Recv(2)
		if len(d) != size {
			t.Fatalf("len = %d", len(d))
		}
		for i := 0; i < size; i += 1013 {
			if d[i] != byte(i*7) {
				t.Fatalf("corruption at %d", i)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
