// Package tsm implements tSM, the threaded simple-messaging package of
// §3.2.2: the paper's worked example of a language runtime composed from
// the thread object, the message manager and the unified scheduler.
// Users see two calls — Create (tSMCreate: make a thread and schedule it
// via the Converse scheduler) and Recv (tSMReceive: block the calling
// thread waiting for a particular tagged message) — and never touch the
// low-level thread-object calls.
//
// While a tSM thread blocks, other threads and message-driven modules on
// the same processor keep running under the scheduler: this is the
// implicit control regime of §2.2.
package tsm

import (
	"encoding/binary"
	"fmt"

	"converse/internal/core"
	"converse/internal/cth"
	"converse/internal/msgmgr"
)

// Wildcard matches any tag in Recv.
const Wildcard = msgmgr.Wildcard

// TSM is the per-processor threaded-messaging runtime.
type TSM struct {
	p  *core.Proc
	rt *cth.Runtime
	mm *msgmgr.M
	h  int

	waiting []waiter
	live    int
}

type waiter struct {
	tag int
	th  *cth.Thread
}

// wire format of a tSM message payload: [tag u32][src u32][data...]
const tsmHeader = 8

// extKey locates the tSM state in a Proc.
const extKey = "converse.lang.tsm"

// Attach creates (or returns) the processor's tSM runtime, initializing
// the thread runtime if needed.
func Attach(p *core.Proc) *TSM {
	if ts, ok := p.Ext(extKey).(*TSM); ok {
		return ts
	}
	ts := &TSM{p: p, rt: cth.Init(p), mm: msgmgr.New()}
	ts.h = p.RegisterHandler(ts.onMsg)
	p.SetExt(extKey, ts)
	return ts
}

// Proc returns the runtime's processor.
func (ts *TSM) Proc() *core.Proc { return ts.p }

// Threads returns the underlying thread runtime (for locks, condition
// variables, Yield, ...).
func (ts *TSM) Threads() *cth.Runtime { return ts.rt }

// Live reports the number of tSM threads on this processor that have
// not yet finished.
func (ts *TSM) Live() int { return ts.live }

// Create makes a new tSM thread executing fn and schedules it for
// execution via the Converse scheduler (tSMCreate). The thread starts
// running the next time the scheduler picks it up.
func (ts *TSM) Create(fn func()) *cth.Thread {
	ts.live++
	th := ts.rt.Create(func() {
		defer func() { ts.live-- }()
		fn()
	})
	th.UseSchedulerStrategy(0)
	ts.rt.Awaken(th)
	return th
}

// Send transmits data under tag to a tSM runtime on processor dst. It
// may be called from threads or from the main context.
func (ts *TSM) Send(dst, tag int, data []byte) {
	if tag < 0 {
		panic(fmt.Sprintf("tsm: pe %d: negative tag %d (reserved)", ts.p.MyPe(), tag))
	}
	msg := core.NewMsg(ts.h, tsmHeader+len(data))
	pl := core.Payload(msg)
	binary.LittleEndian.PutUint32(pl[0:], uint32(tag))
	binary.LittleEndian.PutUint32(pl[4:], uint32(ts.p.MyPe()))
	copy(pl[tsmHeader:], data)
	ts.p.SyncSendAndFree(dst, msg)
}

// Recv blocks the calling thread until a message matching tag (or
// Wildcard) is available and returns its data, source, and actual tag
// (tSMReceive). It must be called from a tSM thread; while it waits,
// the processor keeps scheduling other work.
func (ts *TSM) Recv(tag int) (data []byte, src, rettag int) {
	self := ts.rt.Self()
	if self.IsMain() {
		panic(fmt.Sprintf("tsm: pe %d: Recv called outside a tSM thread", ts.p.MyPe()))
	}
	for {
		if msg, t1, t2, ok := ts.mm.Get2(tag, msgmgr.Wildcard); ok {
			return msg[tsmHeader:], t2, t1
		}
		ts.waiting = append(ts.waiting, waiter{tag: tag, th: self})
		ts.rt.Suspend()
	}
}

// onMsg parks an arriving message and awakens the first thread whose
// Recv matches its tag.
func (ts *TSM) onMsg(p *core.Proc, msg []byte) {
	buf := p.GrabBuffer()
	pl := core.Payload(buf)
	tag := int(binary.LittleEndian.Uint32(pl[0:]))
	src := int(binary.LittleEndian.Uint32(pl[4:]))
	ts.mm.Put2(pl, tag, src)
	for i, w := range ts.waiting {
		if w.tag == Wildcard || w.tag == tag {
			ts.waiting = append(ts.waiting[:i], ts.waiting[i+1:]...)
			ts.rt.Awaken(w.th)
			return
		}
	}
}

// Run drives the scheduler until every tSM thread on this processor has
// finished. Remote messages keep being served throughout, so threads on
// different processors can converse freely.
func (ts *TSM) Run() {
	ts.p.ServeUntil(func() bool { return ts.live == 0 })
}
