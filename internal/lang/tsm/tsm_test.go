package tsm

import (
	"strings"
	"testing"
	"time"

	"converse/internal/core"
	"converse/internal/csync"
)

func newMachine(pes int) *core.Machine {
	return core.NewMachine(core.Config{PEs: pes, Watchdog: 15 * time.Second})
}

func TestThreadPingPongAcrossPEs(t *testing.T) {
	cm := newMachine(2)
	var got string
	err := cm.Run(func(p *core.Proc) {
		ts := Attach(p)
		if p.MyPe() == 0 {
			ts.Create(func() {
				ts.Send(1, 1, []byte("ping"))
				d, src, _ := ts.Recv(2)
				if src != 1 {
					t.Errorf("reply from %d", src)
				}
				got = string(d)
			})
		} else {
			ts.Create(func() {
				d, src, _ := ts.Recv(1)
				ts.Send(src, 2, append(d, []byte("/pong")...))
			})
		}
		ts.Run()
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != "ping/pong" {
		t.Fatalf("got %q", got)
	}
}

func TestManyThreadsInterleave(t *testing.T) {
	// n threads on PE0 each converse with a partner thread on PE1;
	// all conversations interleave under one scheduler.
	const n = 20
	cm := newMachine(2)
	results := make([]int, n)
	err := cm.Run(func(p *core.Proc) {
		ts := Attach(p)
		if p.MyPe() == 0 {
			for i := 0; i < n; i++ {
				ts.Create(func() {
					ts.Send(1, 100+i, []byte{byte(i)})
					d, _, _ := ts.Recv(200 + i)
					results[i] = int(d[0])
				})
			}
		} else {
			for i := 0; i < n; i++ {
				ts.Create(func() {
					d, src, _ := ts.Recv(100 + i)
					ts.Send(src, 200+i, []byte{d[0] * 2})
				})
			}
		}
		ts.Run()
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r != i*2 {
			t.Fatalf("conversation %d result = %d, want %d", i, r, i*2)
		}
	}
}

func TestRecvWildcardThread(t *testing.T) {
	cm := newMachine(2)
	var tags []int
	err := cm.Run(func(p *core.Proc) {
		ts := Attach(p)
		if p.MyPe() == 1 {
			ts.Send(0, 5, nil)
			ts.Send(0, 6, nil)
			return
		}
		ts.Create(func() {
			for i := 0; i < 2; i++ {
				_, _, tag := ts.Recv(Wildcard)
				tags = append(tags, tag)
			}
		})
		ts.Run()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tags) != 2 || tags[0] != 5 || tags[1] != 6 {
		t.Fatalf("tags = %v", tags)
	}
}

func TestLocalThreadsConverse(t *testing.T) {
	// Two threads on the same PE exchange messages through the runtime.
	cm := newMachine(1)
	var log []string
	err := cm.Run(func(p *core.Proc) {
		ts := Attach(p)
		ts.Create(func() {
			d, _, _ := ts.Recv(1)
			log = append(log, "b-got-"+string(d))
			ts.Send(0, 2, []byte("resp"))
		})
		ts.Create(func() {
			log = append(log, "a-send")
			ts.Send(0, 1, []byte("req"))
			d, _, _ := ts.Recv(2)
			log = append(log, "a-got-"+string(d))
		})
		ts.Run()
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "a-send,b-got-req,a-got-resp"
	if got := strings.Join(log, ","); got != want {
		t.Fatalf("log = %q, want %q", got, want)
	}
}

func TestRecvFromMainPanics(t *testing.T) {
	cm := newMachine(1)
	err := cm.Run(func(p *core.Proc) {
		Attach(p).Recv(1)
	})
	if err == nil || !strings.Contains(err.Error(), "outside a tSM thread") {
		t.Fatalf("err = %v", err)
	}
}

func TestMessageBeforeRecv(t *testing.T) {
	// The message arrives before the thread asks for it: it must be
	// parked in the message manager and found by the later Recv.
	cm := newMachine(2)
	var got string
	err := cm.Run(func(p *core.Proc) {
		ts := Attach(p)
		if p.MyPe() == 1 {
			ts.Send(0, 3, []byte("early"))
			return
		}
		// Let the message arrive and be parked first.
		p.Scheduler(1)
		ts.Create(func() {
			d, _, _ := ts.Recv(3)
			got = string(d)
		})
		ts.Run()
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != "early" {
		t.Fatalf("got %q", got)
	}
}

func TestThreadsWithLocks(t *testing.T) {
	// tSM threads share a counter under a csync lock; the interleaving
	// through Recv suspensions must stay mutually exclusive.
	cm := newMachine(2)
	counter := 0
	err := cm.Run(func(p *core.Proc) {
		ts := Attach(p)
		if p.MyPe() == 1 {
			for i := 0; i < 10; i++ {
				ts.Send(0, i, nil)
			}
			return
		}
		l := csync.NewLock(ts.Threads())
		for i := 0; i < 10; i++ {
			ts.Create(func() {
				ts.Recv(i)
				l.Lock()
				v := counter
				ts.Threads().Yield() // adversarial: yield inside the critical section
				counter = v + 1
				if err := l.Unlock(); err != nil {
					t.Errorf("Unlock: %v", err)
				}
			})
		}
		ts.Run()
	})
	if err != nil {
		t.Fatal(err)
	}
	if counter != 10 {
		t.Fatalf("counter = %d, want 10 (lost updates)", counter)
	}
}

func TestLiveCountAndRun(t *testing.T) {
	cm := newMachine(1)
	err := cm.Run(func(p *core.Proc) {
		ts := Attach(p)
		if ts.Live() != 0 {
			t.Errorf("Live = %d initially", ts.Live())
		}
		ts.Create(func() {})
		ts.Create(func() {})
		if ts.Live() != 2 {
			t.Errorf("Live = %d after 2 creates", ts.Live())
		}
		ts.Run()
		if ts.Live() != 0 {
			t.Errorf("Live = %d after Run", ts.Live())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNegativeTagPanics(t *testing.T) {
	cm := newMachine(1)
	err := cm.Run(func(p *core.Proc) {
		Attach(p).Send(0, -2, nil)
	})
	if err == nil {
		t.Fatal("negative tag did not error")
	}
}

func TestTreeOfThreadsAcrossPEs(t *testing.T) {
	// The paper's FMA sketch: cell logic as threads communicating along
	// tree edges. A 7-node binary tree spread over 4 PEs computes a
	// bottom-up sum.
	const pes = 4
	cm := newMachine(pes)
	var result int
	err := cm.Run(func(p *core.Proc) {
		ts := Attach(p)
		// Node i lives on PE i%pes; children of i are 2i+1, 2i+2.
		for node := 0; node < 7; node++ {
			if node%pes != p.MyPe() {
				continue
			}
			ts.Create(func() {
				sum := node + 1 // node's own value
				if 2*node+1 < 7 {
					for c := 0; c < 2; c++ {
						d, _, _ := ts.Recv(10 + node)
						sum += int(d[0])
					}
				}
				if node == 0 {
					result = sum
					return
				}
				parent := (node - 1) / 2
				ts.Send(parent%pes, 10+parent, []byte{byte(sum)})
			})
		}
		ts.Run()
	})
	if err != nil {
		t.Fatal(err)
	}
	if result != 28 { // 1+2+...+7
		t.Fatalf("tree sum = %d, want 28", result)
	}
}
