// Package ldb implements Converse's dynamic load balancing module for
// "seeds" (§3.3.1): pieces of work, represented as generalized messages,
// that can execute on any processor. A language runtime hands a seed to
// the balancer on any processor; the balancing strategy moves it from
// processor to processor until it "takes root" — is handed to its
// handler — on some destination.
//
// As the paper notes, "there are a large number of load balancing
// modules supported in Converse. Each one is often useful in a different
// situation. Depending on the application, the user is able to link in a
// different load balancing strategy." Here the strategy is a Policy
// value: Random, Spray (round robin), Neighbor (load diffusion on a
// ring), or Central (manager-based).
package ldb

import (
	"fmt"
	"math/rand"

	"converse/internal/core"
)

// Balancer is the per-processor load-balancing module. Create one with
// New on every processor, at the same point of startup (it registers
// message handlers).
type Balancer struct {
	p   *core.Proc
	pol Policy

	hSeed   int
	hStatus int

	// dead marks processors the machine layer has declared dead
	// (FailRetry recovery exhausted); route steers seeds around them so
	// work re-homes onto survivors instead of vanishing into a void.
	dead map[int]bool

	deposited, rooted, forwarded, rehomed uint64
}

// Policy decides where seeds go. Implementations are per-processor
// (each Balancer owns its own Policy value) and communicate with remote
// counterparts through status messages.
type Policy interface {
	// Name identifies the strategy for diagnostics.
	Name() string
	// Setup is called once when the balancer is created.
	Setup(b *Balancer)
	// Place picks the destination processor for a seed that is being
	// deposited locally or is passing through (hops counts prior
	// forwards). Returning the local processor id roots the seed here.
	Place(b *Balancer, hops int) int
	// OnStatus processes a strategy-specific status message from a
	// peer balancer.
	OnStatus(b *Balancer, src int, payload []byte)
}

// maxHops bounds seed forwarding so no strategy can make a seed float
// forever.
const maxHops = 8

// New creates the processor's balancer with the given policy.
func New(p *core.Proc, pol Policy) *Balancer {
	b := &Balancer{p: p, pol: pol, dead: make(map[int]bool)}
	b.hSeed = p.RegisterHandler(b.onSeed)
	b.hStatus = p.RegisterHandler(b.onStatus)
	p.NotifyPeerDown(func(pe int, reason string) { b.NotePeerDown(pe) })
	pol.Setup(b)
	return b
}

// NotePeerDown marks a processor dead: the balancer stops routing seeds
// to it and re-homes any placement decision that names it. Wired
// automatically to the core's peer-down notification (FailRetry); tests
// and alternative failure detectors may call it directly.
func (b *Balancer) NotePeerDown(pe int) {
	if pe == b.p.MyPe() {
		return // the local processor cannot be dead from its own view
	}
	b.dead[pe] = true
}

// nextLive returns dst if it is live, else the nearest live processor
// scanning upward with wraparound. The local processor is always live,
// so the scan terminates.
func (b *Balancer) nextLive(dst int) int {
	pes := b.p.NumPes()
	for i := 0; i < pes; i++ {
		c := (dst + i) % pes
		if c == b.p.MyPe() || !b.dead[c] {
			return c
		}
	}
	return b.p.MyPe()
}

// Proc returns the balancer's processor.
func (b *Balancer) Proc() *core.Proc { return b.p }

// Deposit hands a seed — a generalized message whose handler performs
// the work — to the balancing module (the paper's "a language runtime
// may hand over a seed, in the form of a generalized message, on any
// processor"). Ownership of the buffer transfers to the balancer.
func (b *Balancer) Deposit(seed []byte) {
	if len(seed) < core.HeaderSize {
		panic(fmt.Sprintf("ldb: pe %d: seed smaller than a message header", b.p.MyPe()))
	}
	b.deposited++
	if m := b.p.Metrics(); m != nil {
		m.SeedDeposited()
	}
	b.route(seed, 0)
}

// route sends the seed to the policy's pick, or roots it locally.
func (b *Balancer) route(seed []byte, hops int) {
	dst := b.p.MyPe()
	if hops < maxHops {
		dst = b.pol.Place(b, hops)
	}
	if b.dead[dst] {
		// The policy named a dead processor (its view may lag): re-home
		// the seed on the nearest survivor.
		dst = b.nextLive(dst)
		b.rehomed++
	}
	if dst == b.p.MyPe() {
		b.rooted++
		if m := b.p.Metrics(); m != nil {
			m.SeedRooted()
		}
		b.p.Enqueue(seed) // takes root: scheduled for its handler here
		return
	}
	b.forwarded++
	if m := b.p.Metrics(); m != nil {
		m.SeedForwarded()
	}
	env := core.NewMsg(b.hSeed, 1+len(seed))
	pl := core.Payload(env)
	pl[0] = byte(hops + 1)
	copy(pl[1:], seed)
	b.p.SyncSendAndFree(dst, env)
}

// onSeed receives a traveling seed envelope.
func (b *Balancer) onSeed(p *core.Proc, msg []byte) {
	pl := core.Payload(msg)
	hops := int(pl[0])
	seed := make([]byte, len(pl)-1)
	copy(seed, pl[1:])
	b.route(seed, hops)
}

// onStatus delivers a policy status message.
func (b *Balancer) onStatus(p *core.Proc, msg []byte) {
	pl := core.Payload(msg)
	src := int(pl[0])
	b.pol.OnStatus(b, src, pl[1:])
}

// sendStatus ships a policy status payload to a peer balancer.
func (b *Balancer) sendStatus(dst int, payload []byte) {
	msg := core.NewMsg(b.hStatus, 1+len(payload))
	pl := core.Payload(msg)
	pl[0] = byte(b.p.MyPe())
	copy(pl[1:], payload)
	b.p.SyncSendAndFree(dst, msg)
}

// Load is the local load metric: the scheduler queue length (which
// includes rooted seeds awaiting execution). The paper's module "can
// also make calls to other entities for ascertaining the load"; the
// queue length is the core's own measure.
func (b *Balancer) Load() int { return b.p.QueueLen() }

// Stats reports the number of seeds deposited locally, rooted locally,
// and forwarded onward by this balancer.
func (b *Balancer) Stats() (deposited, rooted, forwarded uint64) {
	return b.deposited, b.rooted, b.forwarded
}

// Rehomed reports how many placement decisions named a dead processor
// and were redirected to a survivor.
func (b *Balancer) Rehomed() uint64 { return b.rehomed }

// --- Random ---

// RandomPolicy sends every deposited seed to a uniformly random
// processor (including this one), where it takes root. Simple, cheap,
// and surprisingly effective for irregular task trees.
type RandomPolicy struct {
	rng *rand.Rand
}

// NewRandom builds a random policy; each processor should use a
// different seed for decorrelation (e.g. its PE number).
func NewRandom(seed int64) *RandomPolicy {
	return &RandomPolicy{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Policy.
func (*RandomPolicy) Name() string { return "random" }

// Setup implements Policy.
func (*RandomPolicy) Setup(*Balancer) {}

// Place implements Policy: fresh seeds scatter randomly; arriving seeds
// take root.
func (r *RandomPolicy) Place(b *Balancer, hops int) int {
	if hops > 0 {
		return b.p.MyPe()
	}
	return r.rng.Intn(b.p.NumPes())
}

// OnStatus implements Policy.
func (*RandomPolicy) OnStatus(*Balancer, int, []byte) {}

// --- Spray (round robin) ---

// SprayPolicy deals deposited seeds round-robin across all processors,
// guaranteeing an even spread of seed counts regardless of depositor.
type SprayPolicy struct {
	next int
}

// NewSpray builds a spray policy.
func NewSpray() *SprayPolicy { return &SprayPolicy{} }

// Name implements Policy.
func (*SprayPolicy) Name() string { return "spray" }

// Setup implements Policy: stagger starting points so concurrent
// depositors do not all dump on processor 0.
func (s *SprayPolicy) Setup(b *Balancer) { s.next = b.p.MyPe() }

// Place implements Policy.
func (s *SprayPolicy) Place(b *Balancer, hops int) int {
	if hops > 0 {
		return b.p.MyPe()
	}
	dst := s.next % b.p.NumPes()
	s.next++
	return dst
}

// OnStatus implements Policy.
func (*SprayPolicy) OnStatus(*Balancer, int, []byte) {}

// --- Neighbor (load diffusion on a ring) ---

// NeighborPolicy keeps seeds local while the local load is modest and
// diffuses them to the less-loaded ring neighbor when it is not,
// exchanging load estimates with the two ring neighbors on every
// placement decision. This is the classic neighborhood-averaging scheme
// the paper's module family includes.
type NeighborPolicy struct {
	// Threshold is how much the local load may exceed the best
	// neighbor estimate before seeds are pushed away.
	Threshold int

	left, right         int
	leftLoad, rightLoad int
	sinceStatus         int
}

// NewNeighbor builds a neighbor-diffusion policy.
func NewNeighbor(threshold int) *NeighborPolicy {
	if threshold < 1 {
		threshold = 1
	}
	return &NeighborPolicy{Threshold: threshold}
}

// Name implements Policy.
func (*NeighborPolicy) Name() string { return "neighbor" }

// Setup implements Policy.
func (n *NeighborPolicy) Setup(b *Balancer) {
	pes := b.p.NumPes()
	me := b.p.MyPe()
	n.left = (me - 1 + pes) % pes
	n.right = (me + 1) % pes
}

// Place implements Policy.
func (n *NeighborPolicy) Place(b *Balancer, hops int) int {
	me := b.p.MyPe()
	if n.left == me { // single-processor machine
		return me
	}
	n.sinceStatus++
	if n.sinceStatus >= 4 {
		n.sinceStatus = 0
		n.broadcastLoad(b)
	}
	load := b.Load()
	best, bestLoad := n.left, n.leftLoad
	if n.right != n.left && n.rightLoad < bestLoad {
		best, bestLoad = n.right, n.rightLoad
	}
	if load > bestLoad+n.Threshold {
		return best
	}
	return me
}

// OnStatus implements Policy: record a neighbor's reported load.
func (n *NeighborPolicy) OnStatus(b *Balancer, src int, payload []byte) {
	load := int(payload[0]) | int(payload[1])<<8
	if src == n.left {
		n.leftLoad = load
	}
	if src == n.right {
		n.rightLoad = load
	}
}

// broadcastLoad reports the local load to both ring neighbors.
func (n *NeighborPolicy) broadcastLoad(b *Balancer) {
	load := b.Load()
	payload := []byte{byte(load), byte(load >> 8)}
	b.sendStatus(n.left, payload)
	if n.right != n.left {
		b.sendStatus(n.right, payload)
	}
}

// --- Central manager ---

// CentralPolicy funnels every seed through a manager processor, which
// deals them out round-robin. It models the centralized strategies in
// Converse's module family: simple global decisions at the cost of a
// potential bottleneck.
type CentralPolicy struct {
	Manager int
	next    int
}

// NewCentral builds a central-manager policy; all processors must name
// the same manager.
func NewCentral(manager int) *CentralPolicy { return &CentralPolicy{Manager: manager} }

// Name implements Policy.
func (*CentralPolicy) Name() string { return "central" }

// Setup implements Policy.
func (*CentralPolicy) Setup(*Balancer) {}

// Place implements Policy: non-managers forward fresh seeds to the
// manager; the manager deals arrivals (and its own deposits) round
// robin; workers root whatever the manager assigns them.
func (c *CentralPolicy) Place(b *Balancer, hops int) int {
	me := b.p.MyPe()
	if me != c.Manager {
		if hops == 0 {
			return c.Manager
		}
		return me // assigned by the manager: take root
	}
	if hops > 1 {
		return me // already dealt once: avoid ping-ponging
	}
	dst := c.next % b.p.NumPes()
	c.next++
	return dst
}

// OnStatus implements Policy.
func (*CentralPolicy) OnStatus(*Balancer, int, []byte) {}
