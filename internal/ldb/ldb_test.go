package ldb

import (
	"sync/atomic"
	"testing"
	"time"

	"converse/internal/core"
)

// runSeedWorkload deposits perPE seeds on every processor of a pes-wide
// machine under the given policy factory, runs until every seed has
// executed exactly once, and returns the per-PE execution counts.
func runSeedWorkload(t *testing.T, pes, perPE int, mkPolicy func(pe int) Policy) []int64 {
	t.Helper()
	cm := core.NewMachine(core.Config{PEs: pes, Watchdog: 20 * time.Second})
	total := int64(pes * perPE)
	executed := make([]int64, pes) // owned per-PE; read after Run
	var acks int64
	var hWork, hAck, hStop int
	hWork = cm.RegisterHandler(func(p *core.Proc, msg []byte) {
		executed[p.MyPe()]++
		p.SyncSendAndFree(0, core.NewMsg(hAck, 0))
	})
	hAck = cm.RegisterHandler(func(p *core.Proc, msg []byte) {
		if atomic.AddInt64(&acks, 1) == total {
			p.SyncBroadcastAllAndFree(core.NewMsg(hStop, 0))
		}
	})
	hStop = cm.RegisterHandler(func(p *core.Proc, msg []byte) {
		p.ExitScheduler()
	})
	err := cm.Run(func(p *core.Proc) {
		b := New(p, mkPolicy(p.MyPe()))
		for i := 0; i < perPE; i++ {
			b.Deposit(core.NewMsg(hWork, 8))
		}
		p.Scheduler(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, n := range executed {
		sum += n
	}
	if sum != total {
		t.Fatalf("executed %d seeds, want %d (conservation violated)", sum, total)
	}
	return executed
}

func TestRandomConservation(t *testing.T) {
	counts := runSeedWorkload(t, 4, 50, func(pe int) Policy { return NewRandom(int64(pe) + 1) })
	// Uniform random: no PE should be starved entirely with 200 seeds.
	for pe, n := range counts {
		if n == 0 {
			t.Errorf("PE %d executed no seeds under random policy: %v", pe, counts)
		}
	}
}

func TestSprayEvenSpread(t *testing.T) {
	const pes, perPE = 4, 40
	counts := runSeedWorkload(t, pes, perPE, func(pe int) Policy { return NewSpray() })
	// Round robin from staggered origins: exactly even.
	for pe, n := range counts {
		if n != perPE {
			t.Errorf("PE %d executed %d seeds, want exactly %d under spray: %v", pe, n, perPE, counts)
		}
	}
}

func TestCentralDealsAll(t *testing.T) {
	const pes, perPE = 5, 20
	counts := runSeedWorkload(t, pes, perPE, func(pe int) Policy { return NewCentral(0) })
	for pe, n := range counts {
		if n == 0 {
			t.Errorf("PE %d starved under central policy: %v", pe, counts)
		}
	}
}

func TestNeighborConservation(t *testing.T) {
	counts := runSeedWorkload(t, 4, 30, func(pe int) Policy { return NewNeighbor(2) })
	_ = counts // conservation is asserted inside runSeedWorkload
}

func TestNeighborDiffusesFromHotSpot(t *testing.T) {
	// All seeds deposited on PE0; the diffusion policy must push a
	// meaningful share to the ring neighbors.
	const pes = 4
	const total = 200
	cm := core.NewMachine(core.Config{PEs: pes, Watchdog: 20 * time.Second})
	executed := make([]int64, pes)
	var acks int64
	var hWork, hAck, hStop int
	hWork = cm.RegisterHandler(func(p *core.Proc, msg []byte) {
		executed[p.MyPe()]++
		p.SyncSendAndFree(0, core.NewMsg(hAck, 0))
	})
	hAck = cm.RegisterHandler(func(p *core.Proc, msg []byte) {
		if atomic.AddInt64(&acks, 1) == total {
			p.SyncBroadcastAllAndFree(core.NewMsg(hStop, 0))
		}
	})
	hStop = cm.RegisterHandler(func(p *core.Proc, msg []byte) { p.ExitScheduler() })
	err := cm.Run(func(p *core.Proc) {
		b := New(p, NewNeighbor(1))
		if p.MyPe() == 0 {
			for i := 0; i < total; i++ {
				b.Deposit(core.NewMsg(hWork, 8))
			}
		}
		p.Scheduler(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, n := range executed {
		sum += n
	}
	if sum != total {
		t.Fatalf("executed %d, want %d", sum, total)
	}
	if executed[0] == total {
		t.Errorf("no diffusion happened: %v", executed)
	}
}

func TestSingleProcessorAllPolicies(t *testing.T) {
	for _, mk := range []func(pe int) Policy{
		func(pe int) Policy { return NewRandom(1) },
		func(pe int) Policy { return NewSpray() },
		func(pe int) Policy { return NewNeighbor(1) },
		func(pe int) Policy { return NewCentral(0) },
	} {
		counts := runSeedWorkload(t, 1, 10, mk)
		if counts[0] != 10 {
			t.Errorf("1-PE machine executed %d seeds, want 10", counts[0])
		}
	}
}

func TestDepositShortSeedPanics(t *testing.T) {
	cm := core.NewMachine(core.Config{PEs: 1, Watchdog: 5 * time.Second})
	err := cm.Run(func(p *core.Proc) {
		b := New(p, NewSpray())
		b.Deposit([]byte{1})
	})
	if err == nil {
		t.Fatal("short seed did not error")
	}
}

func TestStatsAccounting(t *testing.T) {
	cm := core.NewMachine(core.Config{PEs: 1, Watchdog: 5 * time.Second})
	h := cm.RegisterHandler(func(p *core.Proc, msg []byte) {})
	err := cm.Run(func(p *core.Proc) {
		b := New(p, NewSpray())
		for i := 0; i < 5; i++ {
			b.Deposit(core.NewMsg(h, 0))
		}
		p.ScheduleUntilIdle()
		dep, rooted, fwd := b.Stats()
		if dep != 5 || rooted != 5 || fwd != 0 {
			t.Errorf("stats = %d,%d,%d; want 5,5,0 on one PE", dep, rooted, fwd)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPolicyNames(t *testing.T) {
	names := map[string]bool{}
	for _, pol := range []Policy{NewRandom(1), NewSpray(), NewNeighbor(1), NewCentral(0)} {
		if pol.Name() == "" || names[pol.Name()] {
			t.Errorf("bad or duplicate policy name %q", pol.Name())
		}
		names[pol.Name()] = true
	}
}

func TestDeadPeerRehomesSeeds(t *testing.T) {
	// Declare PE 1 dead on every surviving balancer before depositing
	// (a dead PE deposits nothing itself): no seed may execute there,
	// and placements that named it must count as rehomed.
	const pes, perPE = 4, 30
	cm := core.NewMachine(core.Config{PEs: pes, Watchdog: 20 * time.Second})
	total := int64((pes - 1) * perPE)
	executed := make([]int64, pes)
	var acks int64
	var hWork, hAck, hStop int
	hWork = cm.RegisterHandler(func(p *core.Proc, msg []byte) {
		executed[p.MyPe()]++
		p.SyncSendAndFree(0, core.NewMsg(hAck, 0))
	})
	hAck = cm.RegisterHandler(func(p *core.Proc, msg []byte) {
		if atomic.AddInt64(&acks, 1) == total {
			p.SyncBroadcastAllAndFree(core.NewMsg(hStop, 0))
		}
	})
	hStop = cm.RegisterHandler(func(p *core.Proc, msg []byte) {
		p.ExitScheduler()
	})
	var rehomed int64
	err := cm.Run(func(p *core.Proc) {
		b := New(p, NewSpray())
		b.NotePeerDown(1)
		if p.MyPe() != 1 {
			for i := 0; i < perPE; i++ {
				b.Deposit(core.NewMsg(hWork, 8))
			}
		}
		p.Scheduler(-1)
		atomic.AddInt64(&rehomed, int64(b.Rehomed()))
	})
	if err != nil {
		t.Fatal(err)
	}
	if executed[1] != 0 {
		t.Errorf("dead PE 1 executed %d seeds", executed[1])
	}
	var sum int64
	for _, n := range executed {
		sum += n
	}
	if sum != total {
		t.Fatalf("executed %d seeds, want %d (re-homing lost work)", sum, total)
	}
	if rehomed == 0 {
		t.Error("spray over a dead PE recorded no rehomed placements")
	}
}

func TestNotePeerDownIgnoresSelf(t *testing.T) {
	cm := core.NewMachine(core.Config{PEs: 2, Watchdog: 10 * time.Second})
	err := cm.Run(func(p *core.Proc) {
		b := New(p, NewSpray())
		b.NotePeerDown(p.MyPe())
		if b.dead[p.MyPe()] {
			t.Errorf("pe %d marked itself dead", p.MyPe())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
