// Package analysis is a self-contained, stdlib-only core for writing
// static analyzers, API-compatible with the subset of
// golang.org/x/tools/go/analysis that converselint needs. The container
// this repo builds in has no module proxy access, so rather than
// vendoring x/tools we keep the same shapes (Analyzer, Pass,
// Diagnostic) on a tiny local implementation; should x/tools become
// available, the analyzers port by changing one import line.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one analysis: its name, documentation, and
// per-package entry point.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, flags, and
	// //lint:ignore directives. It must be a valid Go identifier.
	Name string

	// Doc is the analyzer's documentation. The first line is the
	// summary shown in usage listings.
	Doc string

	// Run applies the analyzer to a single package and reports
	// diagnostics through pass.Report. The returned value is ignored by
	// the converselint driver (kept for x/tools signature parity).
	Run func(pass *Pass) (any, error)
}

// Pass provides one analyzer run with a single type-checked package and
// a sink for its diagnostics.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver installs it; analyzers
	// should use Reportf for convenience.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf formats and reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
