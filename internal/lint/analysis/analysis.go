// Package analysis is a self-contained, stdlib-only core for writing
// static analyzers, API-compatible with the subset of
// golang.org/x/tools/go/analysis that converselint needs. The container
// this repo builds in has no module proxy access, so rather than
// vendoring x/tools we keep the same shapes (Analyzer, Pass,
// Diagnostic) on a tiny local implementation; should x/tools become
// available, the analyzers port by changing one import line.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one analysis: its name, documentation, and
// per-package entry point.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, flags, and
	// //lint:ignore directives. It must be a valid Go identifier.
	Name string

	// Doc is the analyzer's documentation. The first line is the
	// summary shown in usage listings.
	Doc string

	// Run applies the analyzer to a single package and reports
	// diagnostics through pass.Report. The returned value is ignored by
	// the converselint driver (kept for x/tools signature parity).
	Run func(pass *Pass) (any, error)

	// FactTypes lists the fact types the analyzer exports and imports,
	// one zero value per concrete type (all must be pointers to
	// gob-serializable structs). A non-empty list makes the analyzer
	// modular: the driver runs it over dependency packages first and
	// carries its facts across package (and, under go vet, process)
	// boundaries.
	FactTypes []Fact
}

// A Fact is a serializable unit of knowledge one package's analysis
// exports for the analyses of the packages that import it — the
// mechanism that lets a per-package analyzer prove whole-program
// properties (mirrors golang.org/x/tools/go/analysis.Fact). Concrete
// fact types must be pointers, gob-encodable, and marked with AFact.
type Fact interface {
	AFact() // dummy marker method
}

// PackageFact pairs a fact with the import path of the package it
// describes.
type PackageFact struct {
	Path string
	Fact Fact
}

// Pass provides one analyzer run with a single type-checked package and
// a sink for its diagnostics.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver installs it; analyzers
	// should use Reportf for convenience.
	Report func(Diagnostic)

	// ExportPackageFact records a fact about the package under
	// analysis. The fact is gob-serialized immediately, so a
	// non-serializable fact fails the exporting package's run rather
	// than a later importer's.
	ExportPackageFact func(fact Fact)

	// ImportPackageFact copies the fact of the given type recorded for
	// the package with the given import path into fact (a pointer),
	// reporting whether one was found. Only facts of dependencies
	// analyzed before this pass are visible.
	ImportPackageFact func(path string, fact Fact) bool

	// AllPackageFacts returns every visible package fact of the types
	// in Analyzer.FactTypes, excluding the package under analysis.
	AllPackageFacts func() []PackageFact
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf formats and reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
