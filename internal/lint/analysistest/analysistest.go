// Package analysistest runs converselint analyzers over testdata
// packages and checks their diagnostics against expectations embedded
// in the sources, in the style of
// golang.org/x/tools/go/analysis/analysistest:
//
//	p.SyncSendAndFree(1, msg)
//	_ = msg[0] // want `used after ownership transfer`
//
// A `// want` comment holds one or more backquoted regular expressions,
// each of which must match a diagnostic reported on that line; every
// diagnostic must in turn be expected. Testdata packages live inside
// the module (under testdata/, which go build wildcards skip), so they
// type-check against the real converse packages.
package analysistest

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"converse/internal/lint"
	"converse/internal/lint/analysis"
	"converse/internal/lint/load"
)

// wantRe extracts the backquoted patterns of a // want comment.
var wantRe = regexp.MustCompile("`([^`]*)`")

// Run loads the package in dir and applies the analyzers, failing t on
// any mismatch between reported and expected diagnostics. It returns
// the diagnostics for further inspection.
//
// When any analyzer is modular (exports facts), dir is loaded as a
// package tree ("./...") with in-module dependencies, analyzed
// dependencies-first with a shared fact store — so a corpus can split
// declaring and consuming packages across subdirectories and exercise
// the cross-package fact flow for real.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) []lint.Diagnostic {
	t.Helper()
	var units []*load.Package
	if lint.HasFacts(analyzers) {
		var err error
		units, err = load.PackagesAndDeps(dir, "./...")
		if err != nil {
			t.Fatalf("loading %s: %v", dir, err)
		}
	} else {
		pkg, err := load.Dir(dir)
		if err != nil {
			t.Fatalf("loading %s: %v", dir, err)
		}
		units = []*load.Package{pkg}
	}

	facts := lint.NewFactStore()
	var diags []lint.Diagnostic

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, pkg := range units {
		if !pkg.FactsOnly && len(pkg.TypeErrors) > 0 {
			t.Fatalf("type errors in %s: %v", pkg.ImportPath, pkg.TypeErrors)
		}
		facts.NoteImports(pkg.ImportPath, pkg.Imports)
		ds, err := lint.RunWithFacts(pkg, analyzers, facts)
		if err != nil {
			t.Fatalf("running analyzers on %s: %v", pkg.ImportPath, err)
		}
		diags = append(diags, ds...)
		if pkg.FactsOnly {
			continue
		}
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					i := strings.Index(c.Text, "// want ")
					if i < 0 {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, m := range wantRe.FindAllStringSubmatch(c.Text[i:], -1) {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", pos, m[1], err)
						}
						k := key{pos.Filename, pos.Line}
						wants[k] = append(wants[k], re)
					}
				}
			}
		}
	}

	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		matched := -1
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: expected diagnostic matching %q was not reported",
				k.file, k.line, re)
		}
	}
	return diags
}

// MustFind asserts that at least one diagnostic message matches the
// pattern — used to pin down that a corpus really exercises a rule.
func MustFind(t *testing.T, diags []lint.Diagnostic, pattern string) {
	t.Helper()
	re := regexp.MustCompile(pattern)
	for _, d := range diags {
		if re.MatchString(d.Message) {
			return
		}
	}
	t.Errorf("no diagnostic matches %q in:\n%s", pattern, diagList(diags))
}

func diagList(diags []lint.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	if b.Len() == 0 {
		return "  (no diagnostics)"
	}
	return b.String()
}
