package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"converse/internal/lint/analysis"
)

// AtomicFact is the per-package fact atomicmix exports: the fully
// qualified struct fields ("pkgpath.Type.field") this package accesses
// through sync/atomic functions. Importers must treat those fields as
// atomic too — one plain read anywhere in the repo is a silent race.
type AtomicFact struct {
	Fields []string
}

// AFact marks AtomicFact as a serializable analysis fact.
func (*AtomicFact) AFact() {}

// AtomicMix enforces atomic-everywhere: a struct field accessed through
// a sync/atomic function in any package must be accessed atomically in
// every package. The repo's own state words use the typed atomics
// (atomic.Int64 and friends), which make plain access impossible by
// construction; this analyzer holds the line for the function-style
// atomics (atomic.LoadUint64(&s.f)...), where one forgotten Load is a
// data race the race detector only catches under load. Plain access is
// permitted in constructor scope — a function that just allocated the
// struct — and under //lint:ignore atomicmix with a justification.
var AtomicMix = &analysis.Analyzer{
	Name: "atomicmix",
	Doc: "report plain accesses to fields accessed via sync/atomic elsewhere\n\n" +
		"Any struct field that is the target of a sync/atomic call (in this\n" +
		"package or, through facts, in any dependency) must be accessed\n" +
		"atomically everywhere: plain reads and writes and escaping &f\n" +
		"aliases are reported. Freshly allocated structs (constructor\n" +
		"scope) are exempt, as are _test.go files.",
	Run:       runAtomicMix,
	FactTypes: []analysis.Fact{(*AtomicFact)(nil)},
}

func runAtomicMix(pass *analysis.Pass) (any, error) {
	info := pass.TypesInfo

	// Fields already known atomic, with the package that proves it.
	atomicFields := map[string]string{}
	for _, pf := range pass.AllPackageFacts() {
		if f, ok := pf.Fact.(*AtomicFact); ok {
			for _, id := range f.Fields {
				atomicFields[id] = pf.Path
			}
		}
	}

	prodFiles := make([]*ast.File, 0, len(pass.Files))
	for _, f := range pass.Files {
		if !isTestFile(pass.Fset, f.Pos()) {
			prodFiles = append(prodFiles, f)
		}
	}

	// Pass 1: collect this package's atomic call targets, remembering
	// the exact &x.f operands so pass 2 can tell sanctioned accesses
	// from plain ones.
	ownAtomic := map[string]bool{}
	sanctioned := map[ast.Expr]bool{}
	for _, f := range prodFiles {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isAtomicFnCall(info, call) || len(call.Args) == 0 {
				return true
			}
			ue, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if id := fieldIDOf(info, sel); id != "" {
				ownAtomic[id] = true
				sanctioned[sel] = true
			}
			return true
		})
	}
	for id := range ownAtomic {
		if _, dup := atomicFields[id]; !dup {
			atomicFields[id] = ""
		}
	}

	// Pass 2: every other access to an atomic field is a finding.
	for _, f := range prodFiles {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fresh := freshLocals(info, fd)
			handled := map[ast.Node]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				// An escaping &x.f alias defeats the analysis: flag the
				// whole unary once and skip the selector inside it.
				if ue, ok := n.(*ast.UnaryExpr); ok {
					sel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr)
					if !ok || sanctioned[sel] {
						return true
					}
					id := fieldIDOf(info, sel)
					src, isAtomic := atomicFields[id]
					if !isAtomic || isFreshBase(info, sel, fresh) {
						return true
					}
					handled[sel] = true
					pass.Reportf(ue.Pos(),
						"address of field %s escapes outside sync/atomic; the field is atomically accessed%s and aliases hide plain access",
						id, atWhere(src))
					return true
				}
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || sanctioned[sel] || handled[sel] {
					return true
				}
				id := fieldIDOf(info, sel)
				src, isAtomic := atomicFields[id]
				if !isAtomic || isFreshBase(info, sel, fresh) {
					return true
				}
				pass.Reportf(sel.Pos(),
					"plain access to field %s, which is accessed with sync/atomic%s: mixed access is a data race",
					id, atWhere(src))
				return true
			})
		}
	}

	if len(ownAtomic) > 0 {
		fact := &AtomicFact{}
		for id := range ownAtomic {
			fact.Fields = append(fact.Fields, id)
		}
		sort.Strings(fact.Fields)
		pass.ExportPackageFact(fact)
	}
	return nil, nil
}

// atWhere renders the provenance suffix for a diagnostic.
func atWhere(src string) string {
	if src == "" {
		return " in this package"
	}
	return " in " + src
}

// isAtomicFnCall reports whether call invokes a package-level
// sync/atomic function whose first parameter is the target pointer
// (Load/Store/Add/Swap/CompareAndSwap/And/Or across all widths).
func isAtomicFnCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeOf(info, call)
	if fn == nil || pkgPathOf(fn) != "sync/atomic" {
		return false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() != nil || sig.Params().Len() == 0 {
		return false
	}
	_, ok := sig.Params().At(0).Type().(*types.Pointer)
	return ok
}

// fieldIDOf resolves a selector to "pkgpath.Type.field" when it names a
// field of a named struct type, or "" otherwise (locals, methods,
// fields of anonymous structs).
func fieldIDOf(info *types.Info, sel *ast.SelectorExpr) string {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return ""
	}
	owner, field := fieldOwner(s)
	if owner == nil || owner.Obj().Pkg() == nil {
		return ""
	}
	return owner.Obj().Pkg().Path() + "." + owner.Obj().Name() + "." + field.Name()
}

// fieldOwner walks a selection's index chain to the named struct that
// declares the selected field (through embedding and pointers).
func fieldOwner(s *types.Selection) (*types.Named, *types.Var) {
	t := s.Recv()
	idx := s.Index()
	for step, i := range idx {
		for {
			if p, ok := t.Underlying().(*types.Pointer); ok {
				t = p.Elem()
				continue
			}
			break
		}
		named, _ := t.(*types.Named)
		st, ok := t.Underlying().(*types.Struct)
		if !ok || i >= st.NumFields() {
			return nil, nil
		}
		f := st.Field(i)
		if step == len(idx)-1 {
			return named, f
		}
		t = f.Type()
	}
	return nil, nil
}

// freshLocals returns the local variables fd visibly allocates itself —
// x := S{...}, x := &S{...}, x := new(S), x := newS(...), var x S —
// whose fields are in constructor scope: no other goroutine can see
// them yet, so plain initialization is fine. Plain `=` assignment of a
// fresh allocation to a local also qualifies: the variable now points
// at an unpublished object.
func freshLocals(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	fresh := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i, rhs := range st.Rhs {
				id, ok := st.Lhs[i].(*ast.Ident)
				if !ok || !isFreshAlloc(info, rhs) {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if v, ok := obj.(*types.Var); ok && !v.IsField() && !isPackageLevel(v) {
					fresh[obj] = true
				}
			}
		case *ast.ValueSpec:
			if len(st.Values) == 0 {
				for _, id := range st.Names {
					if obj := info.Defs[id]; obj != nil {
						fresh[obj] = true
					}
				}
				return true
			}
			if len(st.Values) != len(st.Names) {
				return true
			}
			for i, id := range st.Names {
				if isFreshAlloc(info, st.Values[i]) {
					if obj := info.Defs[id]; obj != nil {
						fresh[obj] = true
					}
				}
			}
		}
		return true
	})
	return fresh
}

// isFreshAlloc reports whether an expression visibly allocates a new
// value: a composite literal, its address, new(T), or a call to a
// constructor by naming convention (new*/New* returns an object no one
// else has seen yet).
func isFreshAlloc(info *types.Info, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		_, ok := ast.Unparen(x.X).(*ast.CompositeLit)
		return ok
	case *ast.CallExpr:
		switch fun := ast.Unparen(x.Fun).(type) {
		case *ast.Ident:
			if fun.Name == "new" {
				if _, isBuiltin := info.Uses[fun].(*types.Builtin); isBuiltin {
					return true
				}
			}
			return strings.HasPrefix(fun.Name, "new") || strings.HasPrefix(fun.Name, "New")
		case *ast.SelectorExpr:
			return strings.HasPrefix(fun.Sel.Name, "New")
		}
	}
	return false
}

// isPackageLevel reports whether a variable is declared at package
// scope (shared: never constructor-fresh).
func isPackageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// isFreshBase reports whether a selector's base is one of the
// function's freshly allocated locals.
func isFreshBase(info *types.Info, sel *ast.SelectorExpr, fresh map[types.Object]bool) bool {
	base := ast.Unparen(sel.X)
	for {
		if inner, ok := base.(*ast.SelectorExpr); ok {
			base = ast.Unparen(inner.X)
			continue
		}
		break
	}
	id, ok := base.(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	return obj != nil && fresh[obj]
}
