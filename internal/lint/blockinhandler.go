package lint

import (
	"go/ast"
	"go/constant"
	"go/types"

	"converse/internal/lint/analysis"
)

// BlockInHandler reports blocking operations inside registered message
// handlers — the classic message-driven deadlock. A handler runs to
// completion on the scheduler's stack: if it blocks waiting for another
// message (unbounded Scheduler(-1) re-entry, GetSpecificMsg, ServeUntil,
// Scanf) or suspends on a csync primitive without a thread context, the
// processor can never dispatch the message that would unblock it.
// Blocking belongs on cth threads; code inside a nested function
// literal (a thread body, a callback) is therefore not flagged unless
// it is invoked immediately.
var BlockInHandler = &analysis.Analyzer{
	Name: "blockinhandler",
	Doc: "report blocking calls inside registered message handlers\n\n" +
		"Flags, directly inside a function registered with Register*:\n" +
		"Scheduler with a negative (blocking) count, GetSpecificMsg,\n" +
		"ServeUntil, Scanf, and csync Lock.Lock/Cond.Wait/Barrier.Arrive.\n" +
		"The analysis is intraprocedural: handlers are function literals or\n" +
		"same-package functions passed to a Register* call.",
	Run: runBlockInHandler,
}

func runBlockInHandler(pass *analysis.Pass) (any, error) {
	// Pass 1: collect handler bodies — function literals passed to
	// Register* calls, and same-package named functions so passed.
	named := map[*types.Func]bool{}
	var lits []*ast.FuncLit
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isRegisterCall(pass.TypesInfo, call) {
				return true
			}
			for _, arg := range call.Args {
				switch arg := ast.Unparen(arg).(type) {
				case *ast.FuncLit:
					lits = append(lits, arg)
				case *ast.Ident:
					if fn, ok := pass.TypesInfo.Uses[arg].(*types.Func); ok {
						named[fn] = true
					}
				}
			}
			return true
		})
	}

	for _, lit := range lits {
		checkHandlerBody(pass, lit.Body)
	}
	if len(named) > 0 {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok && named[fn] {
					checkHandlerBody(pass, fd.Body)
				}
			}
		}
	}
	return nil, nil
}

// isRegisterCall reports whether call registers a message handler: a
// call to a function or method whose name starts with "Register",
// defined in a converse package.
func isRegisterCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeOf(info, call)
	if fn == nil || len(fn.Name()) < len("Register") || fn.Name()[:len("Register")] != "Register" {
		return false
	}
	path := pkgPathOf(fn)
	return path == facadePath || len(path) > len(facadePath) && path[:len(facadePath)+1] == facadePath+"/"
}

// checkHandlerBody walks one handler body, skipping nested function
// literals (thread bodies, callbacks) unless immediately invoked.
func checkHandlerBody(pass *analysis.Pass, body *ast.BlockStmt) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			// An immediately-invoked literal runs on the handler's
			// stack: descend into it.
			if lit, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, walk)
				for _, arg := range n.Args {
					ast.Inspect(arg, walk)
				}
				return false
			}
			if what := blockingCall(pass.TypesInfo, n); what != "" {
				pass.Reportf(n.Pos(),
					"%s inside a message handler blocks the scheduler: the handler can never receive the message it is waiting for (run it on a cth thread instead)",
					what)
			}
		}
		return true
	}
	ast.Inspect(body, walk)
}

// blockingCall classifies a call that can block the processor, or
// returns "".
func blockingCall(info *types.Info, call *ast.CallExpr) string {
	fn := calleeOf(info, call)
	switch {
	case isProcMethod(fn, "Scheduler") && len(call.Args) == 1:
		if tv, ok := info.Types[call.Args[0]]; ok && tv.Value != nil {
			if v, ok := constant.Int64Val(tv.Value); ok && v < 0 {
				return "Scheduler with a negative count (blocking re-entry)"
			}
		}
	case isProcMethod(fn, "GetSpecificMsg"):
		return "blocking receive GetSpecificMsg"
	case isProcMethod(fn, "ServeUntil"):
		return "blocking wait ServeUntil"
	case isProcMethod(fn, "Scanf"):
		return "blocking console read Scanf"
	case isMethod(fn, csyncPath, "Lock", "Lock"):
		return "csync Lock.Lock (thread suspension)"
	case isMethod(fn, csyncPath, "Cond", "Wait"):
		return "csync Cond.Wait (thread suspension)"
	case isMethod(fn, csyncPath, "Barrier", "Arrive"):
		return "csync Barrier.Arrive (thread suspension)"
	}
	return ""
}
