package lint

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"reflect"
	"sort"

	"converse/internal/lint/analysis"
)

// FactStore carries serialized package facts between analyzer passes.
// Facts are gob bytes keyed by (analyzer, package path, fact type), so
// the same store backs both drivers: the standalone runner fills it in
// dependency order within one process, and the go vet -vettool path
// round-trips it through vet's .vetx fact files, one per package unit.
// Facts are encoded at export time and decoded at import time even
// in-process — an unserializable fact fails loudly at its source.
type FactStore struct {
	m map[factKey][]byte

	// deps records each analyzed package's direct imports. The
	// standalone driver analyzes a whole module in one process, so its
	// store holds every package's facts — but a pass may only see facts
	// of packages it (transitively) imports, exactly as under go vet,
	// where .vetx files carry only the dependency closure. An empty deps
	// map means the store was built from vetx files and is pre-scoped.
	deps map[string][]string
}

type factKey struct {
	analyzer string
	pkg      string
	typ      string
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{m: map[factKey][]byte{}, deps: map[string][]string{}}
}

// NoteImports records a package's direct imports for visibility
// scoping; the driver calls it for every unit it analyzes.
func (s *FactStore) NoteImports(path string, imports []string) {
	s.deps[path] = imports
}

// visibleFrom returns the set of package paths whose facts a unit with
// the given direct imports may see: the transitive closure over the
// recorded import edges. A nil return means the store is pre-scoped
// (vet mode: no imports were ever noted) and everything is visible.
func (s *FactStore) visibleFrom(imports []string) map[string]bool {
	if len(s.deps) == 0 {
		return nil
	}
	visible := map[string]bool{}
	stack := append([]string{}, imports...)
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if visible[p] {
			continue
		}
		visible[p] = true
		stack = append(stack, s.deps[p]...)
	}
	return visible
}

// factTypeName keys a fact by its concrete type.
func factTypeName(f analysis.Fact) string {
	return reflect.TypeOf(f).String()
}

// add encodes one fact exported by analyzer for package pkg.
func (s *FactStore) add(analyzer, pkg string, f analysis.Fact) error {
	if reflect.TypeOf(f).Kind() != reflect.Pointer {
		return fmt.Errorf("fact %T is not a pointer", f)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		return fmt.Errorf("encoding fact %T for %s: %v", f, pkg, err)
	}
	s.m[factKey{analyzer, pkg, factTypeName(f)}] = buf.Bytes()
	return nil
}

// get decodes the fact of f's type recorded for (analyzer, pkg) into f.
func (s *FactStore) get(analyzer, pkg string, f analysis.Fact) bool {
	data, ok := s.m[factKey{analyzer, pkg, factTypeName(f)}]
	if !ok {
		return false
	}
	return gob.NewDecoder(bytes.NewReader(data)).Decode(f) == nil
}

// all decodes every stored fact for analyzer whose type appears in
// factTypes, except those describing package self, sorted by package
// path for deterministic diagnostics.
func (s *FactStore) all(analyzer, self string, factTypes []analysis.Fact) []analysis.PackageFact {
	var out []analysis.PackageFact
	for k, data := range s.m {
		if k.analyzer != analyzer || k.pkg == self {
			continue
		}
		for _, ft := range factTypes {
			if factTypeName(ft) != k.typ {
				continue
			}
			f := reflect.New(reflect.TypeOf(ft).Elem()).Interface().(analysis.Fact)
			if gob.NewDecoder(bytes.NewReader(data)).Decode(f) == nil {
				out = append(out, analysis.PackageFact{Path: k.pkg, Fact: f})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// factRec is the on-disk form of one fact, the unit of the vetx files
// the go vet driver persists between package units.
type factRec struct {
	Analyzer string
	Pkg      string
	Type     string
	Data     []byte
}

// WriteVetx serializes the whole store to path (go vet's VetxOutput for
// the current unit). The store already contains the facts imported from
// dependency units, so fact flow is transitive: a unit only ever needs
// the vetx files of its direct dependencies.
func (s *FactStore) WriteVetx(path string) error {
	recs := make([]factRec, 0, len(s.m))
	for k, data := range s.m {
		recs = append(recs, factRec{Analyzer: k.analyzer, Pkg: k.pkg, Type: k.typ, Data: data})
	}
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Type < b.Type
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(recs); err != nil {
		return fmt.Errorf("encoding fact file: %v", err)
	}
	return os.WriteFile(path, buf.Bytes(), 0o666)
}

// ReadVetx merges the facts serialized in path into the store. An empty
// file is a valid empty store (go vet pre-creates outputs).
func (s *FactStore) ReadVetx(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return nil
	}
	var recs []factRec
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&recs); err != nil {
		return fmt.Errorf("decoding fact file %s: %v", path, err)
	}
	for _, r := range recs {
		s.m[factKey{r.Analyzer, r.Pkg, r.Type}] = r.Data
	}
	return nil
}

// Len reports the number of stored facts (used by the registry tests).
func (s *FactStore) Len() int { return len(s.m) }
