package lint

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"converse/internal/lint/analysis"
	"converse/internal/lint/load"
)

// TestFactStoreVetxRoundTrip pins the on-disk fact format: what one
// vet unit writes, the next must read back bit-identically — the whole
// cross-process fact flow rests on this.
func TestFactStoreVetxRoundTrip(t *testing.T) {
	s := NewFactStore()
	in := &WireKindsFact{
		Kinds:      []KindConst{{Name: "kA", Value: 1}, {Name: "kB", Value: 2}},
		Forwarders: map[string]int{"Forward": 1},
	}
	if err := s.add("wirekinds", "example.com/p", in); err != nil {
		t.Fatalf("add: %v", err)
	}
	if err := s.add("atomicmix", "example.com/p", &AtomicFact{Fields: []string{"p.T.f"}}); err != nil {
		t.Fatalf("add: %v", err)
	}
	path := filepath.Join(t.TempDir(), "p.vetx")
	if err := s.WriteVetx(path); err != nil {
		t.Fatalf("WriteVetx: %v", err)
	}

	r := NewFactStore()
	if err := r.ReadVetx(path); err != nil {
		t.Fatalf("ReadVetx: %v", err)
	}
	if r.Len() != 2 {
		t.Fatalf("round-tripped store has %d facts, want 2", r.Len())
	}
	var out WireKindsFact
	if !r.get("wirekinds", "example.com/p", &out) {
		t.Fatal("wirekinds fact did not survive the round trip")
	}
	if len(out.Kinds) != 2 || out.Kinds[0].Name != "kA" || out.Kinds[1].Value != 2 ||
		out.Forwarders["Forward"] != 1 {
		t.Fatalf("fact mutated in round trip: %+v", out)
	}
	var am AtomicFact
	if !r.get("atomicmix", "example.com/p", &am) || len(am.Fields) != 1 {
		t.Fatalf("atomicmix fact mutated in round trip: %+v", am)
	}

	// An empty file is a valid empty store (go vet pre-creates outputs).
	empty := filepath.Join(t.TempDir(), "empty.vetx")
	if err := os.WriteFile(empty, nil, 0o666); err != nil {
		t.Fatal(err)
	}
	if err := r.ReadVetx(empty); err != nil {
		t.Fatalf("ReadVetx(empty): %v", err)
	}
}

// TestRepoPlaneFactsDisjoint runs wirekinds over the real protocol
// packages and pins that the planes it extracts are non-empty and
// pairwise disjoint. This is the guard against a vacuously clean lint:
// if a refactor ever stopped the analyzer from seeing the mnet, ccs,
// or service/journal kind enums, `make lint` would stay green while
// proving nothing — this test would fail instead. It is also the
// repo-level statement of the acceptance property: renumbering a jk*
// or service kind into a neighboring plane makes wirekinds (and this
// test) fail.
func TestRepoPlaneFactsDisjoint(t *testing.T) {
	_, self, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate test source")
	}
	root := filepath.Join(filepath.Dir(self), "..", "..")
	units, err := load.PackagesAndDeps(root, "./internal/mnet", "./internal/ccs", "./internal/service")
	if err != nil {
		t.Fatalf("loading protocol packages: %v", err)
	}
	facts := NewFactStore()
	for _, u := range units {
		facts.NoteImports(u.ImportPath, u.Imports)
		if _, err := RunWithFacts(u, []*analysis.Analyzer{WireKinds}, facts); err != nil {
			t.Fatalf("wirekinds over %s: %v", u.ImportPath, err)
		}
	}

	wantMin := map[string]int{
		"converse/internal/mnet":    16, // fHello..fMonitorAddr
		"converse/internal/ccs":     5,  // kReq..kErr
		"converse/internal/service": 20, // kSubmit..kDrain + jk* journal records
	}
	seen := map[int64]string{}
	for path, min := range wantMin {
		var f WireKindsFact
		if !facts.get("wirekinds", path, &f) {
			t.Errorf("no wirekinds fact for %s: the plane went invisible, lint is vacuous", path)
			continue
		}
		if len(f.Kinds) < min {
			t.Errorf("%s plane has %d kinds, want >= %d: %v", path, len(f.Kinds), min, f.Kinds)
		}
		for _, k := range f.Kinds {
			if prev, dup := seen[k.Value]; dup {
				t.Errorf("planes overlap: %s.%s = %d already taken by %s", path, k.Name, k.Value, prev)
			}
			seen[k.Value] = path + "." + k.Name
		}
	}
}
