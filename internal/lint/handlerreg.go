package lint

import (
	"go/ast"
	"go/types"

	"converse/internal/lint/analysis"
)

// HandlerReg enforces the handler-registration discipline: a handler
// index is only meaningful after RegisterHandler returned it on this
// processor, so production code must not wire raw integer literals
// into the handler slot of a message. Literal indices silently break
// the moment registration order changes (and the core registers its
// own handlers first, so "0" is never a user handler). _test.go files
// are exempt: tests legitimately build synthetic headers.
var HandlerReg = &analysis.Analyzer{
	Name: "handlerreg",
	Doc: "report raw integer literals used as handler indices\n\n" +
		"Handler indices must originate from a Register* call on the same\n" +
		"Proc; a literal in NewMsg/MakeMsg/SetHandler/VectorSend/\n" +
		"HandlerFunc/GetSpecificMsg/ScanfAsync is reported, as is index\n" +
		"arithmetic involving a literal (h+1 assumes a registration order\n" +
		"no API guarantees).",
	Run: runHandlerReg,
}

func runHandlerReg(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			arg, site := handlerIndexArg(pass.TypesInfo, call)
			if arg == nil {
				return true
			}
			if lit := literalIndex(pass.TypesInfo, arg); lit != nil {
				pass.Reportf(lit.Pos(),
					"raw integer literal as handler index in %s: indices are only valid after RegisterHandler returns them",
					site)
			}
			return true
		})
	}
	return nil, nil
}

// handlerIndexArg returns the expression occupying the handler-index
// slot of a core-API call, with the call's name for the diagnostic.
func handlerIndexArg(info *types.Info, call *ast.CallExpr) (ast.Expr, string) {
	fn := calleeOf(info, call)
	switch {
	case (isCoreMsgFunc(fn, "NewMsg") || isCoreMsgFunc(fn, "MakeMsg")) && len(call.Args) == 2:
		return call.Args[0], fn.Name()
	case isCoreMsgFunc(fn, "SetHandler") && len(call.Args) == 2:
		return call.Args[1], "SetHandler"
	case isProcMethod(fn, "VectorSend") && len(call.Args) >= 2:
		return call.Args[1], "VectorSend"
	case isProcMethod(fn, "HandlerFunc") && len(call.Args) == 1:
		return call.Args[0], "HandlerFunc"
	case isProcMethod(fn, "GetSpecificMsg") && len(call.Args) == 1:
		return call.Args[0], "GetSpecificMsg"
	case isProcMethod(fn, "ScanfAsync") && len(call.Args) == 1:
		return call.Args[0], "ScanfAsync"
	}
	return nil, ""
}

// literalIndex reports the offending node when an expression is a raw
// integer literal or arithmetic involving one (h+1): both hardwire a
// registration order the API does not promise. Named constants and
// plain variables pass — the analysis cannot see where a variable came
// from across functions, so it only flags what is certainly not a
// Register* result.
func literalIndex(info *types.Info, e ast.Expr) ast.Node {
	switch x := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		return x
	case *ast.UnaryExpr:
		return literalIndex(info, x.X)
	case *ast.BinaryExpr:
		if lit := literalIndex(info, x.X); lit != nil {
			return lit
		}
		return literalIndex(info, x.Y)
	case *ast.CallExpr:
		// A conversion like int(3) still wraps a literal.
		if tv, ok := info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return literalIndex(info, x.Args[0])
		}
	}
	return nil
}
