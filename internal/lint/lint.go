// Package lint implements converselint: static analyzers that enforce
// the Converse runtime's message-ownership and handler invariants at
// compile time. The buffer-ownership protocol ("the runtime owns the
// message after a Transfer send; the caller may not touch it") and the
// handler-index registration discipline are performance-critical and
// easy to violate silently — a reused pooled buffer turns a
// use-after-send into cross-message data corruption rather than a
// crash — so they are held by tooling, not discipline:
//
//   - msgownership: no read, write, or re-send of a message buffer
//     after ownership was transferred to the runtime
//   - handlerreg: handler indices originate from Register* calls, not
//     integer literals
//   - blockinhandler: no blocking operations inside message handlers
//   - noallocinhot: functions marked //converse:hotpath stay free of
//     the syntactic allocation sources the 0 allocs/op gates measure
//
// The runtime complement is the msgcheck build tag in internal/core,
// which catches dynamically what escapes the static analysis.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"converse/internal/lint/analysis"
	"converse/internal/lint/load"
)

// Analyzers returns the full converselint suite.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		MsgOwnership,
		HandlerReg,
		BlockInHandler,
		NoAllocInHot,
		WireKinds,
		AtomicMix,
		LockDiscipline,
	}
}

// ByName returns the named analyzers, or an error naming the unknown
// one.
func ByName(names []string) ([]*analysis.Analyzer, error) {
	byName := map[string]*analysis.Analyzer{}
	for _, a := range Analyzers() {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Diagnostic is one reported finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Run applies the analyzers to one loaded package with a fresh, empty
// fact store — the right call for self-contained analyzers. Modular
// (fact-exporting) analyzers need RunWithFacts over a dependency-sorted
// unit list instead.
func Run(pkg *load.Package, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	return RunWithFacts(pkg, analyzers, NewFactStore())
}

// HasFacts reports whether any of the analyzers is modular (exports or
// imports facts), which decides whether dependency units must be loaded
// and analyzed first.
func HasFacts(analyzers []*analysis.Analyzer) bool {
	for _, a := range analyzers {
		if len(a.FactTypes) > 0 {
			return true
		}
	}
	return false
}

// RunWithFacts applies the analyzers to one loaded package, honoring
// //lint:ignore directives, and returns the surviving diagnostics
// sorted by position. Facts exported by earlier passes are visible
// through the shared store, and facts this package exports are added to
// it; for a facts-only dependency unit only the modular analyzers run
// and all diagnostics are discarded.
func RunWithFacts(pkg *load.Package, analyzers []*analysis.Analyzer, facts *FactStore) ([]Diagnostic, error) {
	ignores := collectIgnores(pkg)
	visible := facts.visibleFrom(pkg.Imports)
	canSee := func(path string) bool { return visible == nil || visible[path] }
	var out []Diagnostic
	for _, a := range analyzers {
		if pkg.FactsOnly && len(a.FactTypes) == 0 {
			continue
		}
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.Info,
		}
		name := a.Name
		var factErr error
		pass.Report = func(d analysis.Diagnostic) {
			if pkg.FactsOnly {
				return
			}
			pos := pkg.Fset.Position(d.Pos)
			if ignores.match(name, pos) {
				return
			}
			out = append(out, Diagnostic{Analyzer: name, Pos: pos, Message: d.Message})
		}
		pass.ExportPackageFact = func(f analysis.Fact) {
			if err := facts.add(name, pkg.ImportPath, f); err != nil && factErr == nil {
				factErr = err
			}
		}
		pass.ImportPackageFact = func(path string, f analysis.Fact) bool {
			return canSee(path) && facts.get(name, path, f)
		}
		pass.AllPackageFacts = func() []analysis.PackageFact {
			all := facts.all(name, pkg.ImportPath, a.FactTypes)
			out := all[:0]
			for _, pf := range all {
				if canSee(pf.Path) {
					out = append(out, pf)
				}
			}
			return out
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", pkg.ImportPath, a.Name, err)
		}
		if factErr != nil {
			return nil, fmt.Errorf("%s: %s: %v", pkg.ImportPath, a.Name, factErr)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out, nil
}

// ignoreSet records //lint:ignore directives: an entry at line L
// suppresses matching diagnostics on line L (trailing comment) and
// line L+1 (directive on its own line above the flagged statement).
type ignoreSet map[string]map[int][]string // filename -> line -> analyzer names

func (s ignoreSet) match(analyzer string, pos token.Position) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	for _, l := range []int{pos.Line, pos.Line - 1} {
		for _, name := range lines[l] {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}

// collectIgnores scans every comment in the package for directives of
// the form
//
//	//lint:ignore analyzername justification...
//
// The justification is mandatory; a bare directive is not honored (so
// silencing a finding always costs an explanation in the source).
func collectIgnores(pkg *load.Package) ignoreSet {
	s := ignoreSet{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore ")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					continue // no justification: not honored
				}
				pos := pkg.Fset.Position(c.Pos())
				if s[pos.Filename] == nil {
					s[pos.Filename] = map[int][]string{}
				}
				for _, name := range strings.Split(fields[0], ",") {
					s[pos.Filename][pos.Line] = append(s[pos.Filename][pos.Line], name)
				}
			}
		}
	}
	return s
}

// isTestFile reports whether the file containing pos is a _test.go
// file.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// funcDocHas reports whether a function's doc comment contains the
// given directive line (e.g. "//converse:hotpath").
func funcDocHas(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == directive {
			return true
		}
	}
	return false
}
