package lint_test

import (
	"path/filepath"
	"runtime"
	"testing"

	"converse/internal/lint"
	"converse/internal/lint/analysistest"
)

// testdata returns the corpus directory for one analyzer.
func testdata(t *testing.T, name string) string {
	t.Helper()
	_, self, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate test source")
	}
	return filepath.Join(filepath.Dir(self), "testdata", "src", name)
}

func TestMsgOwnership(t *testing.T) {
	diags := analysistest.Run(t, testdata(t, "msgownership"), lint.MsgOwnership)
	// The acceptance gate: the corpus must actually exercise the rule.
	analysistest.MustFind(t, diags, `used after ownership transfer \(SyncSendAndFree`)
	analysistest.MustFind(t, diags, `used after ownership transfer \(Send\(\.\.\., Transfer\)`)
	analysistest.MustFind(t, diags, `used after ownership transfer \(SyncBroadcastAllAndFree`)
}

func TestHandlerReg(t *testing.T) {
	diags := analysistest.Run(t, testdata(t, "handlerreg"), lint.HandlerReg)
	analysistest.MustFind(t, diags, `raw integer literal as handler index`)
}

func TestBlockInHandler(t *testing.T) {
	diags := analysistest.Run(t, testdata(t, "blockinhandler"), lint.BlockInHandler)
	analysistest.MustFind(t, diags, `Scheduler with a negative count`)
	analysistest.MustFind(t, diags, `blocking receive GetSpecificMsg`)
	analysistest.MustFind(t, diags, `csync Lock\.Lock`)
}

func TestNoAllocInHot(t *testing.T) {
	diags := analysistest.Run(t, testdata(t, "noallocinhot"), lint.NoAllocInHot)
	analysistest.MustFind(t, diags, `append growth`)
	analysistest.MustFind(t, diags, `map creation`)
	analysistest.MustFind(t, diags, `heap-escaping composite literal`)
}

// TestSuiteRegistry pins the analyzer set: four analyzers, stable
// names (the Makefile lint target and //lint:ignore directives depend
// on them).
func TestSuiteRegistry(t *testing.T) {
	want := []string{"msgownership", "handlerreg", "blockinhandler", "noallocinhot"}
	got := lint.Analyzers()
	if len(got) != len(want) {
		t.Fatalf("got %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer %d = %q, want %q", i, a.Name, want[i])
		}
	}
	if _, err := lint.ByName([]string{"msgownership"}); err != nil {
		t.Errorf("ByName(msgownership): %v", err)
	}
	if _, err := lint.ByName([]string{"nonsense"}); err == nil {
		t.Errorf("ByName(nonsense) should fail")
	}
}
