package lint_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"converse/internal/lint"
	"converse/internal/lint/analysistest"
)

// testdata returns the corpus directory for one analyzer.
func testdata(t *testing.T, name string) string {
	t.Helper()
	_, self, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate test source")
	}
	return filepath.Join(filepath.Dir(self), "testdata", "src", name)
}

func TestMsgOwnership(t *testing.T) {
	diags := analysistest.Run(t, testdata(t, "msgownership"), lint.MsgOwnership)
	// The acceptance gate: the corpus must actually exercise the rule.
	analysistest.MustFind(t, diags, `used after ownership transfer \(SyncSendAndFree`)
	analysistest.MustFind(t, diags, `used after ownership transfer \(Send\(\.\.\., Transfer\)`)
	analysistest.MustFind(t, diags, `used after ownership transfer \(SyncBroadcastAllAndFree`)
}

func TestHandlerReg(t *testing.T) {
	diags := analysistest.Run(t, testdata(t, "handlerreg"), lint.HandlerReg)
	analysistest.MustFind(t, diags, `raw integer literal as handler index`)
}

func TestBlockInHandler(t *testing.T) {
	diags := analysistest.Run(t, testdata(t, "blockinhandler"), lint.BlockInHandler)
	analysistest.MustFind(t, diags, `Scheduler with a negative count`)
	analysistest.MustFind(t, diags, `blocking receive GetSpecificMsg`)
	analysistest.MustFind(t, diags, `csync Lock\.Lock`)
}

func TestNoAllocInHot(t *testing.T) {
	diags := analysistest.Run(t, testdata(t, "noallocinhot"), lint.NoAllocInHot)
	analysistest.MustFind(t, diags, `append growth`)
	analysistest.MustFind(t, diags, `map creation`)
	analysistest.MustFind(t, diags, `heap-escaping composite literal`)
}

func TestWireKinds(t *testing.T) {
	diags := analysistest.Run(t, testdata(t, "wirekinds"), lint.WireKinds)
	analysistest.MustFind(t, diags, `raw integer literal 9 as frame kind`)
	analysistest.MustFind(t, diags, `raw integer literal 7 as frame kind`) // through the forwarder fact
	analysistest.MustFind(t, diags, `collides with .*AK2.*pairwise disjoint across packages`)
	analysistest.MustFind(t, diags, `collides with JKBad in the same package`)
	analysistest.MustFind(t, diags, `imported frame-kind planes overlap`)
	analysistest.MustFind(t, diags, `kind-dispatch switch has no default clause and misses declared kinds: AK3`)
}

func TestAtomicMix(t *testing.T) {
	diags := analysistest.Run(t, testdata(t, "atomicmix"), lint.AtomicMix)
	analysistest.MustFind(t, diags, `plain access to field .*Counter\.N`)
	analysistest.MustFind(t, diags, `address of field .*Counter\.N escapes`)
	analysistest.MustFind(t, diags, `accessed with sync/atomic in .*/atomicmix/a`) // cross-package, via the fact
}

func TestLockDiscipline(t *testing.T) {
	diags := analysistest.Run(t, testdata(t, "lockdiscipline"), lint.LockDiscipline)
	analysistest.MustFind(t, diags, `guarded by mu on 4 of 6 accesses`)
	analysistest.MustFind(t, diags, `guarded by Mu in .*/lockdiscipline/a`) // cross-package, via the fact
	analysistest.MustFind(t, diags, `lock order inversion`)
}

// TestSuiteRegistry pins the analyzer set: seven analyzers, stable
// names (the Makefile lint target and //lint:ignore directives depend
// on them), wired into both entrypoints — the standalone runner and
// the go vet -vettool path both serve lint.Analyzers(), so one list
// check covers both. The modular three must declare their fact types,
// or the drivers would never load dependencies first.
func TestSuiteRegistry(t *testing.T) {
	want := []string{
		"msgownership", "handlerreg", "blockinhandler", "noallocinhot",
		"wirekinds", "atomicmix", "lockdiscipline",
	}
	got := lint.Analyzers()
	if len(got) != len(want) {
		t.Fatalf("got %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer %d = %q, want %q", i, a.Name, want[i])
		}
	}
	modular := map[string]bool{"wirekinds": true, "atomicmix": true, "lockdiscipline": true}
	for _, a := range got {
		if modular[a.Name] != (len(a.FactTypes) > 0) {
			t.Errorf("analyzer %s: FactTypes=%d, modular=%v — fact declaration out of sync",
				a.Name, len(a.FactTypes), modular[a.Name])
		}
	}
	if !lint.HasFacts(got) {
		t.Error("HasFacts(full suite) = false; dependency loading would be skipped")
	}
	if _, err := lint.ByName([]string{"msgownership"}); err != nil {
		t.Errorf("ByName(msgownership): %v", err)
	}
	if _, err := lint.ByName([]string{"wirekinds", "lockdiscipline"}); err != nil {
		t.Errorf("ByName(wirekinds,lockdiscipline): %v", err)
	}
	if _, err := lint.ByName([]string{"nonsense"}); err == nil {
		t.Errorf("ByName(nonsense) should fail")
	}
}

// TestLintCoverageDerived asserts the packages lint runs over are
// derived from the module (`go list ./...`), never a hand-maintained
// list: the command binaries, the examples, and the public facade
// packages must all be in the derived set, and the Makefile's lint
// recipe must feed go vet the wildcard, not an enumeration.
func TestLintCoverageDerived(t *testing.T) {
	_, self, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate test source")
	}
	root := filepath.Join(filepath.Dir(self), "..", "..")
	cmd := exec.Command("go", "list", "./...")
	cmd.Dir = root
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("go list ./...: %v", err)
	}
	listed := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		listed[line] = true
	}
	mustCover := []string{
		"converse",                   // the facade
		"converse/cmd/converselint",  // the linter lints itself
		"converse/cmd/converserun",   // launcher
		"converse/cmd/conversed",     // cluster daemon
		"converse/examples/jacobi",   // examples are user-facing idiom
		"converse/internal/service",  // the packages the new analyzers guard
		"converse/internal/mnet",
		"converse/internal/ccs",
	}
	for _, p := range mustCover {
		if !listed[p] {
			t.Errorf("go list ./... does not cover %s; lint coverage has a hole", p)
		}
	}
	mk, err := os.ReadFile(filepath.Join(root, "Makefile"))
	if err != nil {
		t.Fatalf("reading Makefile: %v", err)
	}
	text := string(mk)
	lintIdx := strings.Index(text, "\nlint:")
	if lintIdx < 0 {
		t.Fatal("Makefile has no lint target")
	}
	recipe := text[lintIdx:]
	if end := strings.Index(recipe[1:], "\n\n"); end > 0 {
		recipe = recipe[:end+1]
	}
	if !strings.Contains(recipe, "-vettool=") || !strings.Contains(recipe, "./...") {
		t.Errorf("Makefile lint recipe must run go vet -vettool over ./... (derived), got:\n%s", recipe)
	}
}
