// Package load turns Go package patterns into parsed, type-checked
// units ready for analysis, using only the standard library and the go
// tool itself: `go list -export` compiles dependencies and hands back
// gc export data, which go/importer reads natively. This replaces
// golang.org/x/tools/go/packages (unavailable in the build container)
// for the subset converselint needs.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one type-checked analysis unit: a package's compiled
// sources plus, for in-package units, its _test.go files.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	TypeErrors []error

	// Imports are the unit's direct imports (test imports included for
	// units that carry test files) — the edges the fact-aware driver
	// topologically sorts by.
	Imports []string

	// FactsOnly marks a dependency unit loaded solely so modular
	// analyzers can derive facts from it; its diagnostics are discarded
	// (it was not named by the requested patterns).
	FactsOnly bool
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir          string
	ImportPath   string
	Name         string
	Export       string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Imports      []string
	TestImports  []string
	XTestImports []string
	Standard     bool
	DepOnly      bool
	ForTest      string
	Incomplete   bool
}

// Packages loads every unit matching the given go-list patterns,
// rooted at dir (the module directory). Each matched package yields an
// in-package unit (GoFiles + TestGoFiles) and, when present, an
// external test unit (XTestGoFiles as package foo_test).
func Packages(dir string, patterns ...string) ([]*Package, error) {
	return load(dir, false, patterns...)
}

// PackagesAndDeps is Packages plus facts-only units for every
// non-standard dependency of the matched packages, the whole set
// topologically sorted dependencies-first. This is the loading mode for
// modular analyzers: by the time a target unit runs, every in-module
// package it imports (directly or not) has been analyzed and its facts
// recorded — the in-process mirror of go vet's .vetx fact flow.
func PackagesAndDeps(dir string, patterns ...string) ([]*Package, error) {
	return load(dir, true, patterns...)
}

func load(dir string, withDeps bool, patterns ...string) ([]*Package, error) {
	raw, err := golist(dir, true, patterns...)
	if err != nil {
		return nil, err
	}

	// Export data by import path. Test-carrying variants ("p [p.test]")
	// are recompilations of p that include its _test.go files; when one
	// exists it supersedes the plain export so that in-package test
	// symbols resolve (and it is a superset of the plain API, so using
	// it everywhere keeps type identity consistent).
	exports := map[string]string{}
	variant := map[string]string{}
	var targets, deps []listPkg
	for _, p := range raw {
		path, isVariant := splitVariant(p.ImportPath)
		if p.Export != "" {
			if isVariant {
				variant[path] = p.Export
			} else if _, ok := exports[path]; !ok {
				exports[path] = p.Export
			}
		}
		if isVariant || strings.HasSuffix(p.ImportPath, ".test") {
			continue
		}
		if p.DepOnly || p.Standard {
			if withDeps && !p.Standard && len(p.GoFiles) > 0 {
				deps = append(deps, p)
			}
			continue
		}
		targets = append(targets, p)
	}
	for path, exp := range variant {
		exports[path] = exp
	}

	fset := token.NewFileSet()
	imp := newImporter(fset, exports)

	var out []*Package
	for _, t := range targets {
		files := append(append([]string{}, t.GoFiles...), t.TestGoFiles...)
		unit, err := check(fset, imp, t.ImportPath, t.Dir, files)
		if err != nil {
			return nil, err
		}
		unit.Imports = union(t.Imports, t.TestImports)
		out = append(out, unit)
		if len(t.XTestGoFiles) > 0 {
			xunit, err := check(fset, imp, t.ImportPath+"_test", t.Dir, t.XTestGoFiles)
			if err != nil {
				return nil, err
			}
			xunit.Imports = append([]string{t.ImportPath}, t.XTestImports...)
			out = append(out, xunit)
		}
	}
	for _, d := range deps {
		unit, err := check(fset, imp, d.ImportPath, d.Dir, d.GoFiles)
		if err != nil {
			return nil, err
		}
		unit.Imports = append([]string{}, d.Imports...)
		unit.FactsOnly = true
		out = append(out, unit)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return topoSort(out), nil
}

// union merges two import lists, deduplicated, order-preserving.
func union(a, b []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range append(append([]string{}, a...), b...) {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// topoSort orders units dependencies-first (Kahn's algorithm over the
// direct-import edges restricted to the unit set; edges to packages
// outside the set — the standard library — are ignored). Input order
// breaks ties, so the result is deterministic. Go forbids import
// cycles, but a defensive tail append keeps even a malformed input from
// losing units.
func topoSort(units []*Package) []*Package {
	byPath := map[string]*Package{}
	for _, u := range units {
		// A facts-only dep never shadows a target unit for the same path.
		if prev, ok := byPath[u.ImportPath]; !ok || prev.FactsOnly {
			byPath[u.ImportPath] = u
		}
	}
	done := map[*Package]bool{}
	var out []*Package
	for changed := true; changed; {
		changed = false
		for _, u := range units {
			if done[u] {
				continue
			}
			ready := true
			for _, imp := range u.Imports {
				if dep, ok := byPath[imp]; ok && dep != u && !done[dep] {
					ready = false
					break
				}
			}
			if ready {
				done[u] = true
				out = append(out, u)
				changed = true
			}
		}
	}
	for _, u := range units {
		if !done[u] {
			out = append(out, u)
		}
	}
	return out
}

// Dir loads the single package in dir (all its .go files, tests
// included), type-checked against the enclosing module. It is the
// analysistest entry point, so deliberate diagnostics in the sources
// are fine as long as the files still type-check.
func Dir(dir string) (*Package, error) {
	pkgs, err := Packages(dir, ".")
	if err != nil {
		return nil, err
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("load: no package in %s", dir)
	}
	return pkgs[0], nil
}

// Unit type-checks one pre-resolved unit: the given files as package
// importPath, with imports satisfied from the given map of import path
// to gc export-data file. This is the go vet -vettool entry point,
// where the go command has already planned the build.
func Unit(importPath, dir string, goFiles []string, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	return check(fset, newImporter(fset, exports), importPath, dir, goFiles)
}

// golist runs the go tool and decodes its JSON package stream.
func golist(dir string, withTests bool, patterns ...string) ([]listPkg, error) {
	args := []string{"list", "-e", "-export", "-deps"}
	if withTests {
		args = append(args, "-test")
	}
	args = append(args, "-json=Dir,ImportPath,Name,Export,GoFiles,TestGoFiles,XTestGoFiles,Imports,TestImports,XTestImports,Standard,DepOnly,ForTest,Incomplete")
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// splitVariant strips a test-variant suffix: "p [q.test]" -> "p", true.
func splitVariant(importPath string) (string, bool) {
	if i := strings.Index(importPath, " ["); i >= 0 {
		return importPath[:i], true
	}
	return importPath, false
}

// newImporter builds a gc-export-data importer over the go list output.
func newImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// check parses and type-checks one unit.
func check(fset *token.FileSet, imp types.Importer, importPath, dir string, fileNames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range fileNames {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", path, err)
		}
		files = append(files, f)
	}
	unit := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		},
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(err error) { unit.TypeErrors = append(unit.TypeErrors, err) },
	}
	unit.Pkg, _ = conf.Check(importPath, fset, files, unit.Info)
	return unit, nil
}
