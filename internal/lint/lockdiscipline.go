package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"converse/internal/lint/analysis"
)

// LockFact is the per-package fact lockdiscipline exports: the fields
// ("pkgpath.Type.field") whose every access in their home package holds
// the named receiver mutex. Downstream packages touching such a field
// must hold the same lock.
type LockFact struct {
	Guarded map[string]string // fieldID -> mutex field name
}

// AFact marks LockFact as a serializable analysis fact.
func (*LockFact) AFact() {}

// LockDiscipline infers guarded-by relationships and enforces them: a
// struct field consistently touched only while a sync.Mutex/RWMutex
// field of the same struct is held is inferred guarded, and the
// minority of accesses that skip the lock are reported (RacerD-style
// inference — the analyzer never needs an annotation, the code's own
// majority behavior is the spec). It also builds a lock-order graph —
// which locks are acquired while which others are held, one level of
// calls deep — and reports cycles: the gateway/daemon/job mutex web in
// internal/service is exactly where an inversion becomes a rare,
// load-dependent deadlock.
var LockDiscipline = &analysis.Analyzer{
	Name: "lockdiscipline",
	Doc: "report unguarded accesses to mutex-guarded fields and lock-order cycles\n\n" +
		"A field of a mutex-bearing struct whose accesses hold the mutex at\n" +
		"least twice and at least twice as often as not is inferred\n" +
		"guarded-by; the unguarded accesses are reported. Fields guarded on\n" +
		"every home-package access are exported as facts and enforced in\n" +
		"importers. Acquiring lock B while holding lock A adds edge A->B to\n" +
		"a per-package lock-order graph; cycles are reported at one edge\n" +
		"with the position of the counter-edge. Constructor scope (freshly\n" +
		"allocated structs), _test.go files, and functions whose name ends\n" +
		"in \"Locked\" (callee of a lock-holding caller, by convention) are\n" +
		"exempt.",
	Run:       runLockDiscipline,
	FactTypes: []analysis.Fact{(*LockFact)(nil)},
}

// heldLock is one lock the walker believes is held at a program point.
type heldLock struct {
	base  types.Object // leading identifier's object (receiver, local, package var)
	owner *types.Named // struct owning the mutex field (nil for package-level mutexes)
	field string       // mutex field name ("" for package-level)
	node  string       // canonical lock node id ("pkg.Type.field" or "pkg.var")
}

// fieldStats accumulates the evidence for one field's guarded-by
// inference.
type fieldStats struct {
	locked      int
	unlocked    []token.Pos
	guardCounts map[string]int // mutex field name -> times held during a locked access
}

type lockEdge struct {
	from, to string
	pos      token.Pos
}

type lockState struct {
	pass      *analysis.Pass
	info      *types.Info
	stats     map[string]*fieldStats
	edges     map[[2]string]token.Pos
	funcLocks map[*types.Func]map[string]bool
	imported  map[string]importedGuard // fieldID -> guard from dependency facts
}

type importedGuard struct {
	mutex string
	from  string
}

func runLockDiscipline(pass *analysis.Pass) (any, error) {
	st := &lockState{
		pass:      pass,
		info:      pass.TypesInfo,
		stats:     map[string]*fieldStats{},
		edges:     map[[2]string]token.Pos{},
		funcLocks: map[*types.Func]map[string]bool{},
		imported:  map[string]importedGuard{},
	}
	for _, pf := range pass.AllPackageFacts() {
		if f, ok := pf.Fact.(*LockFact); ok {
			for id, mu := range f.Guarded {
				st.imported[id] = importedGuard{mutex: mu, from: pf.Path}
			}
		}
	}

	prodFiles := make([]*ast.File, 0, len(pass.Files))
	for _, f := range pass.Files {
		if !isTestFile(pass.Fset, f.Pos()) {
			prodFiles = append(prodFiles, f)
		}
	}

	// Pre-pass: which lock nodes does each function acquire anywhere in
	// its body, propagated transitively through same-package calls so
	// the order graph sees "holds A, calls helper that locks B".
	for _, f := range prodFiles {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := st.info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			locks := map[string]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if hl, op := st.lockOp(call); hl != nil && (op == "Lock" || op == "RLock") {
						locks[hl.node] = true
					}
				}
				return true
			})
			st.funcLocks[fn] = locks
		}
	}
	for changed := true; changed; {
		changed = false
		for _, f := range prodFiles {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := st.info.Defs[fd.Name].(*types.Func)
				locks := st.funcLocks[fn]
				if locks == nil {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					for node := range st.funcLocks[calleeOf(st.info, call)] {
						if !locks[node] {
							locks[node] = true
							changed = true
						}
					}
					return true
				})
			}
		}
	}

	// Main walk: simulate held locks through each function body,
	// classifying field accesses and recording order edges.
	for _, f := range prodFiles {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			held := map[string]heldLock{}
			// By convention a fooLocked function runs with its
			// receiver's locks already held by the caller.
			if strings.HasSuffix(fd.Name.Name, "Locked") && fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
				if recv, ok := st.info.Defs[fd.Recv.List[0].Names[0]].(*types.Var); ok {
					if named := namedOf(recv.Type()); named != nil {
						for _, mf := range mutexFieldsOf(named) {
							hl := heldLock{base: recv, owner: named, field: mf, node: lockNodeID(named, mf)}
							held[heldKey(hl)] = hl
						}
					}
				}
			}
			fresh := freshLocals(st.info, fd)
			st.walkStmts(fd.Body.List, held, fresh)
		}
	}

	// Guarded-by findings. A field is inferred guarded when the lock is
	// held on at least two accesses and at least twice as often as not;
	// the unguarded accesses are then the anomaly worth reporting.
	ids := make([]string, 0, len(st.stats))
	for id := range st.stats {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	guarded := map[string]string{}
	for _, id := range ids {
		s := st.stats[id]
		mu := dominantGuard(s.guardCounts)
		if s.locked >= 2 && len(s.unlocked) == 0 {
			guarded[id] = mu
			continue
		}
		if ig, ok := st.imported[id]; ok {
			for _, pos := range s.unlocked {
				pass.Reportf(pos,
					"field %s is guarded by %s in %s; this access does not hold it",
					id, ig.mutex, ig.from)
			}
			continue
		}
		if s.locked >= 2 && len(s.unlocked) > 0 && s.locked >= 2*len(s.unlocked) {
			for _, pos := range s.unlocked {
				pass.Reportf(pos,
					"field %s is guarded by %s on %d of %d accesses; this access does not hold it",
					id, mu, s.locked, s.locked+len(s.unlocked))
			}
		}
	}

	// Lock-order cycles: report edge A->B when B also reaches A.
	st.reportCycles()

	if len(guarded) > 0 {
		pass.ExportPackageFact(&LockFact{Guarded: guarded})
	}
	return nil, nil
}

// walkStmts simulates a statement list with the given held-lock set.
// Branch bodies run on copies: a lock taken or released inside a branch
// does not leak past it (release-before-early-return, the common shape,
// is inside the branch with its return).
func (st *lockState) walkStmts(stmts []ast.Stmt, held map[string]heldLock, fresh map[types.Object]bool) {
	for _, s := range stmts {
		st.walkStmt(s, held, fresh)
	}
}

func (st *lockState) walkStmt(s ast.Stmt, held map[string]heldLock, fresh map[types.Object]bool) {
	switch x := s.(type) {
	case *ast.ExprStmt:
		if call, ok := x.X.(*ast.CallExpr); ok {
			if hl, op := st.lockOp(call); hl != nil {
				switch op {
				case "Lock", "RLock":
					st.acquire(*hl, call.Pos(), held)
				case "Unlock", "RUnlock":
					delete(held, heldKey(*hl))
				}
				return
			}
		}
		st.visitExpr(x.X, held, fresh)
	case *ast.DeferStmt:
		// A deferred unlock keeps the lock held to the end of the
		// function; other deferred calls run in an unknown lock state,
		// but their arguments are evaluated here and now.
		if hl, op := st.lockOp(x.Call); hl != nil && (op == "Unlock" || op == "RUnlock") {
			return
		}
		for _, a := range x.Call.Args {
			st.visitExpr(a, held, fresh)
		}
		if fl, ok := x.Call.Fun.(*ast.FuncLit); ok {
			st.walkStmts(fl.Body.List, map[string]heldLock{}, fresh)
		}
	case *ast.GoStmt:
		for _, a := range x.Call.Args {
			st.visitExpr(a, held, fresh)
		}
		if fl, ok := x.Call.Fun.(*ast.FuncLit); ok {
			st.walkStmts(fl.Body.List, map[string]heldLock{}, fresh)
		}
	case *ast.BlockStmt:
		st.walkStmts(x.List, held, fresh)
	case *ast.IfStmt:
		if x.Init != nil {
			st.walkStmt(x.Init, held, fresh)
		}
		st.visitExpr(x.Cond, held, fresh)
		st.walkStmts(x.Body.List, copyHeld(held), fresh)
		if x.Else != nil {
			st.walkStmt(x.Else, copyHeld(held), fresh)
		}
	case *ast.ForStmt:
		if x.Init != nil {
			st.walkStmt(x.Init, held, fresh)
		}
		if x.Cond != nil {
			st.visitExpr(x.Cond, held, fresh)
		}
		body := copyHeld(held)
		st.walkStmts(x.Body.List, body, fresh)
		if x.Post != nil {
			st.walkStmt(x.Post, body, fresh)
		}
	case *ast.RangeStmt:
		st.visitExpr(x.X, held, fresh)
		st.walkStmts(x.Body.List, copyHeld(held), fresh)
	case *ast.SwitchStmt:
		if x.Init != nil {
			st.walkStmt(x.Init, held, fresh)
		}
		if x.Tag != nil {
			st.visitExpr(x.Tag, held, fresh)
		}
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					st.visitExpr(e, held, fresh)
				}
				st.walkStmts(cc.Body, copyHeld(held), fresh)
			}
		}
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			st.walkStmt(x.Init, held, fresh)
		}
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				st.walkStmts(cc.Body, copyHeld(held), fresh)
			}
		}
	case *ast.SelectStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm != nil {
					st.walkStmt(cc.Comm, copyHeld(held), fresh)
				}
				st.walkStmts(cc.Body, copyHeld(held), fresh)
			}
		}
	case *ast.LabeledStmt:
		st.walkStmt(x.Stmt, held, fresh)
	case *ast.AssignStmt:
		for _, e := range x.Rhs {
			st.visitExpr(e, held, fresh)
		}
		for _, e := range x.Lhs {
			st.visitExpr(e, held, fresh)
		}
	case *ast.ReturnStmt:
		for _, e := range x.Results {
			st.visitExpr(e, held, fresh)
		}
	case *ast.IncDecStmt:
		st.visitExpr(x.X, held, fresh)
	case *ast.SendStmt:
		st.visitExpr(x.Chan, held, fresh)
		st.visitExpr(x.Value, held, fresh)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						st.visitExpr(v, held, fresh)
					}
				}
			}
		}
	}
}

// visitExpr classifies every field access in an expression against the
// current held set and records lock-order edges for calls into
// lock-acquiring functions. Function literals run with an empty held
// set (they execute later, on whatever goroutine calls them).
func (st *lockState) visitExpr(e ast.Expr, held map[string]heldLock, fresh map[types.Object]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			st.walkStmts(x.Body.List, map[string]heldLock{}, fresh)
			return false
		case *ast.CallExpr:
			// An immediately-invoked closure runs synchronously on this
			// goroutine: it inherits the held set.
			if fl, ok := x.Fun.(*ast.FuncLit); ok {
				for _, a := range x.Args {
					st.visitExpr(a, held, fresh)
				}
				st.walkStmts(fl.Body.List, copyHeld(held), fresh)
				return false
			}
			if len(held) > 0 {
				for node := range st.funcLocks[calleeOf(st.info, x)] {
					for _, h := range held {
						if h.node != node {
							st.addEdge(h.node, node, x.Pos())
						}
					}
				}
			}
		case *ast.SelectorExpr:
			st.classifyAccess(x, held, fresh)
		}
		return true
	})
}

// classifyAccess records one field access as locked or unlocked.
func (st *lockState) classifyAccess(sel *ast.SelectorExpr, held map[string]heldLock, fresh map[types.Object]bool) {
	s, ok := st.info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	owner, field := fieldOwner(s)
	if owner == nil || owner.Obj().Pkg() == nil {
		return
	}
	// Self-synchronizing field types need no external guard, and the
	// mutexes themselves are operated on, not guarded.
	if isSyncType(field.Type()) || isChanType(field.Type()) {
		return
	}
	id := owner.Obj().Pkg().Path() + "." + owner.Obj().Name() + "." + field.Name()
	_, imported := st.imported[id]
	if len(mutexFieldsOf(owner)) == 0 && !imported {
		return
	}
	if isFreshBase(st.info, sel, fresh) {
		return
	}
	base := baseObjOf(st.info, sel)
	var heldMutex string
	for _, h := range held {
		if h.base != nil && h.base == base && h.owner == owner {
			heldMutex = h.field
			break
		}
	}
	stats := st.stats[id]
	if stats == nil {
		stats = &fieldStats{guardCounts: map[string]int{}}
		st.stats[id] = stats
	}
	if heldMutex != "" {
		stats.locked++
		stats.guardCounts[heldMutex]++
	} else {
		stats.unlocked = append(stats.unlocked, sel.Pos())
	}
}

// acquire adds a lock to the held set, first recording order edges from
// everything already held.
func (st *lockState) acquire(hl heldLock, pos token.Pos, held map[string]heldLock) {
	for _, h := range held {
		if h.node != hl.node {
			st.addEdge(h.node, hl.node, pos)
		}
	}
	held[heldKey(hl)] = hl
}

func (st *lockState) addEdge(from, to string, pos token.Pos) {
	k := [2]string{from, to}
	if _, ok := st.edges[k]; !ok {
		st.edges[k] = pos
	}
}

// reportCycles finds lock-order cycles and reports each once, at the
// lexically first edge, naming where the counter-path starts.
func (st *lockState) reportCycles() {
	adj := map[string][]string{}
	for k := range st.edges {
		adj[k[0]] = append(adj[k[0]], k[1])
	}
	for a := range adj {
		sort.Strings(adj[a])
	}
	reaches := func(from, to string) bool {
		seen := map[string]bool{}
		var stack []string
		stack = append(stack, from)
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if n == to {
				return true
			}
			if seen[n] {
				continue
			}
			seen[n] = true
			stack = append(stack, adj[n]...)
		}
		return false
	}
	keys := make([][2]string, 0, len(st.edges))
	for k := range st.edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		a, b := k[0], k[1]
		if a >= b || !reaches(b, a) {
			continue
		}
		// Find one concrete counter-edge position to cite.
		counter := token.NoPos
		for k2, pos := range st.edges {
			if k2[0] == b && reaches(k2[1], a) || (k2[0] == b && k2[1] == a) {
				counter = pos
				break
			}
		}
		pass := st.pass
		pass.Reportf(st.edges[k],
			"lock order inversion: %s acquired while holding %s, but the opposite order is taken at %s",
			b, a, pass.Fset.Position(counter))
	}
}

// lockOp recognizes x.mu.Lock()/Unlock()/RLock()/RUnlock() on a
// sync.Mutex or sync.RWMutex (field, embedded, or package-level
// variable), returning the lock identity and the operation name.
func (st *lockState) lockOp(call *ast.CallExpr) (*heldLock, string) {
	fn := calleeOf(st.info, call)
	if fn == nil {
		return nil, ""
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return nil, ""
	}
	recv := recvNamed(fn)
	if recv == nil || recv.Obj().Pkg() == nil || recv.Obj().Pkg().Path() != "sync" {
		return nil, ""
	}
	if recv.Obj().Name() != "Mutex" && recv.Obj().Name() != "RWMutex" {
		return nil, ""
	}
	selFun, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	mutexExpr := ast.Unparen(selFun.X)
	switch m := mutexExpr.(type) {
	case *ast.SelectorExpr:
		// x.mu.Lock(): the mutex is field m.Sel of x's type.
		owner := namedOf(exprType(st.info, m.X))
		if owner == nil || owner.Obj().Pkg() == nil {
			return nil, ""
		}
		return &heldLock{
			base:  baseObjOf(st.info, m),
			owner: owner,
			field: m.Sel.Name,
			node:  lockNodeID(owner, m.Sel.Name),
		}, fn.Name()
	case *ast.Ident:
		obj := st.info.Uses[m]
		if obj == nil {
			return nil, ""
		}
		if v, ok := obj.(*types.Var); ok && !v.IsField() {
			if named := namedOf(v.Type()); named == nil || named.Obj().Pkg().Path() == "sync" {
				// Package-level or local mutex variable.
				node := m.Name
				if v.Pkg() != nil {
					node = v.Pkg().Path() + "." + m.Name
				}
				return &heldLock{base: obj, node: node}, fn.Name()
			}
			// Embedded mutex promoted through a named type: r.Lock().
			named := namedOf(v.Type())
			return &heldLock{base: obj, owner: named, field: "Mutex", node: lockNodeID(named, "Mutex")}, fn.Name()
		}
		return nil, ""
	}
	return nil, ""
}

func heldKey(hl heldLock) string {
	return fmt.Sprintf("%p/%s", hl.base, hl.node)
}

func copyHeld(held map[string]heldLock) map[string]heldLock {
	out := make(map[string]heldLock, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// lockNodeID names a lock for the order graph.
func lockNodeID(owner *types.Named, field string) string {
	path := ""
	if owner.Obj().Pkg() != nil {
		path = owner.Obj().Pkg().Path() + "."
	}
	return path + owner.Obj().Name() + "." + field
}

// dominantGuard returns the most frequently held mutex field name.
func dominantGuard(counts map[string]int) string {
	best, bestN := "mu", -1
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if counts[n] > bestN {
			best, bestN = n, counts[n]
		}
	}
	return best
}

// mutexFieldsOf lists the sync.Mutex/RWMutex fields (named or embedded)
// of a named struct type.
func mutexFieldsOf(named *types.Named) []string {
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var out []string
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if n := namedOf(f.Type()); n != nil && n.Obj().Pkg() != nil &&
			n.Obj().Pkg().Path() == "sync" &&
			(n.Obj().Name() == "Mutex" || n.Obj().Name() == "RWMutex") {
			out = append(out, f.Name())
		}
	}
	return out
}

// namedOf unwraps pointers and aliases to the named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Named:
			return x
		case *types.Alias:
			t = types.Unalias(x)
		default:
			return nil
		}
	}
}

// exprType returns the static type of an expression, or nil.
func exprType(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// isSyncType reports whether t is declared in sync or sync/atomic.
func isSyncType(t types.Type) bool {
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	p := n.Obj().Pkg().Path()
	return p == "sync" || p == "sync/atomic"
}

// isChanType reports whether t is (or aliases) a channel: channel
// operations synchronize themselves.
func isChanType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// baseObjOf returns the object of the leading identifier of a selector
// chain (s in s.a.b), or nil for anything else (calls, indexes).
func baseObjOf(info *types.Info, sel *ast.SelectorExpr) types.Object {
	e := ast.Unparen(sel.X)
	for {
		if inner, ok := e.(*ast.SelectorExpr); ok {
			e = ast.Unparen(inner.X)
			continue
		}
		break
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}
