package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"converse/internal/lint/analysis"
)

// MsgOwnership enforces the CMI buffer-ownership protocol at the send
// site: once a message buffer has been handed to the runtime — via
// Send(dst, msg, converse.Transfer), SyncSendAndFree,
// SyncBroadcastAllAndFree, or (inside the core) recycle — the caller
// may not read, write, or re-send it. A violation does not crash: the
// pooled buffer is reused for a future message, so the stale access
// silently corrupts someone else's data. The analysis is flow-sensitive
// within each function and follows aliases created by plain
// assignments, slicing, and Payload().
var MsgOwnership = &analysis.Analyzer{
	Name: "msgownership",
	Doc: "report uses of a message buffer after its ownership was transferred to the runtime\n\n" +
		"After Send(dst, msg, Transfer), SyncSendAndFree(dst, msg) or\n" +
		"SyncBroadcastAllAndFree(msg) the runtime owns msg and recycles it\n" +
		"through the message pool; any later use of msg (or an alias of it)\n" +
		"in the same function is reported.",
	Run: runMsgOwnership,
}

// transferSite records where a buffer's ownership left the caller.
type transferSite struct {
	what string // e.g. "SyncSendAndFree"
	pos  token.Pos
}

// owState is the per-program-point ownership state: each tracked local
// variable maps to an alias cell, and a cell is either live or poisoned
// by a transfer site.
type owState struct {
	cellOf map[*types.Var]int
	poison map[int]*transferSite
	next   *int
}

func newOwState() *owState {
	n := 0
	return &owState{cellOf: map[*types.Var]int{}, poison: map[int]*transferSite{}, next: &n}
}

func (st *owState) clone() *owState {
	c := &owState{cellOf: make(map[*types.Var]int, len(st.cellOf)),
		poison: make(map[int]*transferSite, len(st.poison)), next: st.next}
	for k, v := range st.cellOf {
		c.cellOf[k] = v
	}
	for k, v := range st.poison {
		c.poison[k] = v
	}
	return c
}

// cell returns v's alias cell, creating a fresh live one on first use.
func (st *owState) cell(v *types.Var) int {
	if c, ok := st.cellOf[v]; ok {
		return c
	}
	*st.next++
	st.cellOf[v] = *st.next
	return *st.next
}

// rebind points v at a brand-new live cell (it was reassigned).
func (st *owState) rebind(v *types.Var) {
	*st.next++
	st.cellOf[v] = *st.next
}

func (st *owState) poisoned(v *types.Var) *transferSite {
	c, ok := st.cellOf[v]
	if !ok {
		return nil
	}
	return st.poison[c]
}

// merge folds a branch state back into st: any variable the branch
// poisoned is poisoned here too (the branch may have executed).
func (st *owState) merge(branch *owState) {
	for v := range st.cellOf {
		if site := branch.poisoned(v); site != nil {
			st.poison[st.cell(v)] = site
		}
	}
	// Variables first tracked inside the branch that are still in scope
	// here (declared earlier, merely untouched before the branch).
	for v, c := range branch.cellOf {
		if _, ok := st.cellOf[v]; !ok {
			if site := branch.poison[c]; site != nil {
				st.poison[st.cell(v)] = site
			}
		}
	}
}

type owAnalysis struct {
	pass     *analysis.Pass
	reported map[token.Pos]bool
}

func runMsgOwnership(pass *analysis.Pass) (any, error) {
	a := &owAnalysis{pass: pass, reported: map[token.Pos]bool{}}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			a.block(newOwState(), fd.Body)
		}
	}
	return nil, nil
}

// block executes a statement list, reporting whether control cannot
// flow past it (return / panic / branch).
func (a *owAnalysis) block(st *owState, b *ast.BlockStmt) bool {
	for _, s := range b.List {
		if a.stmt(st, s) {
			return true // the rest is unreachable; do not analyze it
		}
	}
	return false
}

func (a *owAnalysis) stmt(st *owState, s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		a.uses(st, s.X)
		a.effects(st, s.X)
		return isPanicCall(a.pass.TypesInfo, s.X)

	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			a.uses(st, r)
			a.effects(st, r)
		}
		for _, l := range s.Lhs {
			if localVar(a.pass.TypesInfo, l) == nil {
				a.uses(st, l) // msg[0] = x, s.f = x: the base is a use
			}
		}
		// Rebind plain-identifier targets. With a 1:1 assignment shape
		// the new value may alias a tracked buffer; anything else gets
		// a fresh live cell.
		for i, l := range s.Lhs {
			v := localVar(a.pass.TypesInfo, l)
			if v == nil {
				continue
			}
			if len(s.Lhs) == len(s.Rhs) {
				if src := a.aliasSource(st, s.Rhs[i]); src != nil {
					st.cellOf[v] = st.cell(src)
					continue
				}
			}
			st.rebind(v)
		}
		return false

	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return false
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, r := range vs.Values {
				a.uses(st, r)
				a.effects(st, r)
			}
			for i, name := range vs.Names {
				v, _ := a.pass.TypesInfo.Defs[name].(*types.Var)
				if v == nil {
					continue
				}
				if len(vs.Values) == len(vs.Names) {
					if src := a.aliasSource(st, vs.Values[i]); src != nil {
						st.cellOf[v] = st.cell(src)
						continue
					}
				}
				st.rebind(v)
			}
		}
		return false

	case *ast.IfStmt:
		if s.Init != nil {
			a.stmt(st, s.Init)
		}
		a.uses(st, s.Cond)
		thenSt := st.clone()
		thenTerm := a.block(thenSt, s.Body)
		elseTerm := false
		var elseSt *owState
		if s.Else != nil {
			elseSt = st.clone()
			elseTerm = a.stmt(elseSt, s.Else)
		}
		if !thenTerm {
			st.merge(thenSt)
		}
		if elseSt != nil && !elseTerm {
			st.merge(elseSt)
		}
		return thenTerm && s.Else != nil && elseTerm

	case *ast.BlockStmt:
		inner := st.clone()
		term := a.block(inner, s)
		if !term {
			st.merge(inner)
		}
		return term

	case *ast.ForStmt:
		if s.Init != nil {
			a.stmt(st, s.Init)
		}
		if s.Cond != nil {
			a.uses(st, s.Cond)
		}
		// Two passes: the second starts from the first's exit state, so
		// a transfer at the bottom of the loop poisons a use at the top
		// of the next iteration (the loop-carried use-after-send).
		body := st.clone()
		a.block(body, s.Body)
		if s.Post != nil {
			a.stmt(body, s.Post)
		}
		if s.Cond != nil {
			a.uses(body, s.Cond)
		}
		a.block(body, s.Body)
		st.merge(body)
		return false

	case *ast.RangeStmt:
		a.uses(st, s.X)
		body := st.clone()
		for _, kv := range []ast.Expr{s.Key, s.Value} {
			if kv == nil {
				continue
			}
			if v := localVar(a.pass.TypesInfo, kv); v != nil {
				body.rebind(v)
			}
		}
		a.block(body, s.Body)
		for _, kv := range []ast.Expr{s.Key, s.Value} {
			if kv == nil {
				continue
			}
			if v := localVar(a.pass.TypesInfo, kv); v != nil {
				body.rebind(v)
			}
		}
		a.block(body, s.Body)
		st.merge(body)
		return false

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return a.branchy(st, s)

	case *ast.ReturnStmt:
		for _, r := range s.Results {
			a.uses(st, r)
		}
		return true

	case *ast.BranchStmt:
		return s.Tok != token.FALLTHROUGH

	case *ast.DeferStmt:
		a.uses(st, s.Call)
		return false
	case *ast.GoStmt:
		a.uses(st, s.Call)
		return false

	case *ast.LabeledStmt:
		return a.stmt(st, s.Stmt)

	case *ast.IncDecStmt:
		a.uses(st, s.X)
		return false
	case *ast.SendStmt:
		a.uses(st, s.Chan)
		a.uses(st, s.Value)
		return false
	}
	return false
}

// branchy handles switch/type-switch/select: every clause body runs on
// its own clone and merges back.
func (a *owAnalysis) branchy(st *owState, s ast.Stmt) bool {
	var body *ast.BlockStmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			a.stmt(st, s.Init)
		}
		if s.Tag != nil {
			a.uses(st, s.Tag)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			a.stmt(st, s.Init)
		}
		a.stmt(st, s.Assign)
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	// Clauses are alternatives: each runs on its own clone of the entry
	// state, and only after all are analyzed do the surviving exits
	// merge back (a poison in case 1 must not leak into case 2).
	var exits []*owState
	for _, clause := range body.List {
		cl := st.clone()
		var list []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				a.uses(st, e)
			}
			list = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				a.stmt(cl, c.Comm)
			}
			list = c.Body
		}
		term := false
		for _, cs := range list {
			if a.stmt(cl, cs) {
				term = true
				break
			}
		}
		if !term {
			exits = append(exits, cl)
		}
	}
	for _, cl := range exits {
		st.merge(cl)
	}
	return false
}

// uses reports every reference to a poisoned buffer inside e. Function
// literals are analyzed in place on a clone of the current state (their
// bodies see the captured variables) without leaking effects out.
func (a *owAnalysis) uses(st *owState, e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			a.block(st.clone(), n.Body)
			return false
		case *ast.Ident:
			v, _ := a.pass.TypesInfo.Uses[n].(*types.Var)
			if v == nil || v.IsField() {
				return true
			}
			if site := st.poisoned(v); site != nil && !a.reported[n.Pos()] {
				a.reported[n.Pos()] = true
				a.pass.Reportf(n.Pos(),
					"message buffer %q used after ownership transfer (%s at %s)",
					n.Name, site.what, a.pass.Fset.Position(site.pos))
			}
		}
		return true
	})
}

// effects applies ownership transfers performed by calls inside e.
func (a *owAnalysis) effects(st *owState, e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // analyzed by uses; effects stay local to it
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		what, msgArg := transferCall(a.pass.TypesInfo, call)
		if msgArg == nil {
			return true
		}
		if v := a.bufferBase(msgArg); v != nil {
			st.poison[st.cell(v)] = &transferSite{what: what, pos: call.Pos()}
		}
		return true
	})
}

// transferCall reports whether call hands a message buffer to the
// runtime, returning a description and the buffer argument.
func transferCall(info *types.Info, call *ast.CallExpr) (string, ast.Expr) {
	fn := calleeOf(info, call)
	switch {
	case isProcMethod(fn, "Send") && len(call.Args) >= 3 && hasTransferOpt(info, call.Args[2:]):
		return "Send(..., Transfer)", call.Args[1]
	case isProcMethod(fn, "SyncSendAndFree") && len(call.Args) == 2:
		return "SyncSendAndFree", call.Args[1]
	case isProcMethod(fn, "SyncBroadcastAllAndFree") && len(call.Args) == 1:
		return "SyncBroadcastAllAndFree", call.Args[0]
	case isProcMethod(fn, "recycle") && len(call.Args) == 1:
		return "recycle", call.Args[0]
	}
	return "", nil
}

// bufferBase resolves the local variable at the root of a buffer
// expression: msg, (msg), msg[4:].
func (a *owAnalysis) bufferBase(e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SliceExpr:
			e = x.X
		default:
			return localVar(a.pass.TypesInfo, e)
		}
	}
}

// aliasSource resolves the tracked variable an assigned value aliases:
// plain copies (b := msg), reslices (b := msg[4:]) and Payload(msg).
func (a *owAnalysis) aliasSource(st *owState, rhs ast.Expr) *types.Var {
	switch x := ast.Unparen(rhs).(type) {
	case *ast.Ident:
		return localVar(a.pass.TypesInfo, rhs)
	case *ast.SliceExpr:
		return a.aliasSource(st, x.X)
	case *ast.CallExpr:
		fn := calleeOf(a.pass.TypesInfo, x)
		if isCoreMsgFunc(fn, "Payload") && len(x.Args) == 1 {
			return a.aliasSource(st, x.Args[0])
		}
	}
	return nil
}

// isPanicCall reports whether e is a direct call to the panic builtin.
func isPanicCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}
