package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"converse/internal/lint/analysis"
)

// NoAllocInHot turns the "0 allocs/op" bench gates (the Makefile
// overhead target) into a compile-time check: a function annotated
//
//	//converse:hotpath
//
// in its doc comment must not contain the syntactic allocation sources
// that would show up there — heap-escaping composite literals (&T{...},
// slice and map literals), append growth, or map/chan creation. The
// check covers the annotated function's own body only; callees are
// gated by their own annotations (or by the benchmarks).
var NoAllocInHot = &analysis.Analyzer{
	Name: "noallocinhot",
	Doc: "report allocation sources in functions marked //converse:hotpath\n\n" +
		"Flags &composite{...}, slice/map literals, append, make(map/chan)\n" +
		"and new(T) inside annotated functions. Intentional, amortized\n" +
		"allocations (a pool refill, a slice that reuses capacity in steady\n" +
		"state) carry a //lint:ignore noallocinhot justification.",
	Run: runNoAllocInHot,
}

func runNoAllocInHot(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !funcDocHas(fd.Doc, "//converse:hotpath") {
				continue
			}
			checkHotBody(pass, fd.Name.Name, fd.Body)
		}
	}
	return nil, nil
}

func checkHotBody(pass *analysis.Pass, fname string, body *ast.BlockStmt) {
	report := func(pos interface{ Pos() token.Pos }, what string) {
		pass.Reportf(pos.Pos(), "%s in hot-path function %s (marked //converse:hotpath)", what, fname)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n, "closure allocation")
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(n, "heap-escaping composite literal (&T{...})")
					return false
				}
			}
		case *ast.CompositeLit:
			switch typeOf(pass.TypesInfo, n).(type) {
			case *types.Slice:
				report(n, "slice literal allocation")
			case *types.Map:
				report(n, "map literal allocation")
			}
		case *ast.CallExpr:
			switch builtinName(pass.TypesInfo, n) {
			case "append":
				report(n, "append growth")
			case "new":
				report(n, "new(T) allocation")
			case "make":
				switch typeOf(pass.TypesInfo, n).(type) {
				case *types.Map:
					report(n, "map creation")
				case *types.Chan:
					report(n, "channel creation")
				}
			}
		case *ast.GoStmt:
			report(n, "goroutine launch")
		}
		return true
	})
}

// typeOf returns the underlying type of e, or nil.
func typeOf(info *types.Info, e ast.Expr) types.Type {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return nil
	}
	return tv.Type.Underlying()
}

// builtinName returns the name of the builtin a call invokes, or "".
func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}
