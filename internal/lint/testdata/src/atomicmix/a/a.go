// Package a owns a counter struct whose hot field is accessed through
// sync/atomic, plus every in-package way to get that wrong.
package a

import "sync/atomic"

// Counter's N field is atomic: the Bump path below proves it, the fact
// export makes every importer honor it.
type Counter struct {
	N    uint64
	Name string
}

// Bump is the sanctioned access.
func Bump(c *Counter) uint64 {
	atomic.AddUint64(&c.N, 1)
	return atomic.LoadUint64(&c.N)
}

func plainRead(c *Counter) uint64 {
	return c.N // want `plain access to field .*/atomicmix/a\.Counter\.N, which is accessed with sync/atomic`
}

func plainWrite(c *Counter) {
	c.N = 0 // want `plain access to field .*/atomicmix/a\.Counter\.N`
}

func escape(c *Counter) *uint64 {
	return &c.N // want `address of field .*/atomicmix/a\.Counter\.N escapes outside sync/atomic`
}

// NewCounter initializes in constructor scope: the struct is fresh,
// no other goroutine can see it, plain writes are fine.
func NewCounter(start uint64) *Counter {
	c := &Counter{Name: "fresh"}
	c.N = start
	return c
}

func ignored(c *Counter) uint64 {
	//lint:ignore atomicmix corpus exercises the justification-bearing escape hatch
	return c.N
}

func otherFieldIsFine(c *Counter) string {
	return c.Name
}
