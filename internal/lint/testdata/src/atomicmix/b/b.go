// Package b imports the counter: the atomic-everywhere obligation
// crosses the package boundary through the exported fact.
package b

import (
	"sync/atomic"

	"converse/internal/lint/testdata/src/atomicmix/a"
)

func atomicUse(c *a.Counter) uint64 {
	return atomic.LoadUint64(&c.N)
}

func plainUse(c *a.Counter) uint64 {
	return c.N // want `plain access to field .*/atomicmix/a\.Counter\.N, which is accessed with sync/atomic in .*/atomicmix/a`
}

func freshUse() uint64 {
	c := a.NewCounter(3)
	c.N = 4 // constructor-call freshness extends to the caller's local
	return atomic.LoadUint64(&c.N)
}
