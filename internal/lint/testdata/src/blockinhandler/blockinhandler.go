// Package blockinhandler is the converselint corpus for the
// blocking-in-handler analyzer.
package blockinhandler

import (
	"converse"
	"converse/csync"
	"converse/cth"
)

func blockingHandlers(cm *converse.Machine, hEcho int) {
	cm.RegisterHandler(func(p *converse.Proc, msg []byte) {
		p.Scheduler(-1) // want `Scheduler with a negative count \(blocking re-entry\) inside a message handler`
	})
	cm.RegisterHandler(func(p *converse.Proc, msg []byte) {
		_ = p.GetSpecificMsg(hEcho) // want `blocking receive GetSpecificMsg inside a message handler`
	})
	cm.RegisterHandler(func(p *converse.Proc, msg []byte) {
		p.ServeUntil(func() bool { return false }) // want `blocking wait ServeUntil inside a message handler`
	})
	cm.RegisterHandler(func(p *converse.Proc, msg []byte) {
		var n int
		_, _ = p.Scanf("%d", &n) // want `blocking console read Scanf inside a message handler`
	})
}

func csyncInHandler(cm *converse.Machine, lk *csync.Lock, cond *csync.Cond, bar *csync.Barrier) {
	cm.RegisterHandler(func(p *converse.Proc, msg []byte) {
		lk.Lock() // want `csync Lock.Lock \(thread suspension\) inside a message handler`
	})
	cm.RegisterHandler(func(p *converse.Proc, msg []byte) {
		cond.Wait() // want `csync Cond.Wait \(thread suspension\) inside a message handler`
	})
	cm.RegisterHandler(func(p *converse.Proc, msg []byte) {
		bar.Arrive() // want `csync Barrier.Arrive \(thread suspension\) inside a message handler`
	})
}

// onNamed is registered by name below; its body is checked too.
func onNamed(p *converse.Proc, msg []byte) {
	_ = p.GetSpecificMsg(0) // want `blocking receive GetSpecificMsg inside a message handler`
}

func registersNamed(cm *converse.Machine) {
	cm.RegisterHandler(onNamed)
}

func immediatelyInvokedLiteralIsHandlerCode(cm *converse.Machine, hEcho int) {
	cm.RegisterHandler(func(p *converse.Proc, msg []byte) {
		func() {
			_ = p.GetSpecificMsg(hEcho) // want `blocking receive GetSpecificMsg inside a message handler`
		}()
	})
}

// Blocking on a cth thread spawned from a handler is the sanctioned
// pattern: the thread suspends, the scheduler keeps running.
func threadBodyMayBlock(cm *converse.Machine, lk *csync.Lock, hEcho int) {
	cm.RegisterHandler(func(p *converse.Proc, msg []byte) {
		rt := cth.Get(p)
		t := rt.Create(func() {
			lk.Lock()
			_ = p.GetSpecificMsg(hEcho)
			lk.Unlock()
		})
		rt.Resume(t)
	})
}

// Bounded scheduler grants and driver code outside handlers stay
// legal.
func nonHandlerBlockingIsFine(cm *converse.Machine, hEcho int) {
	cm.Run(func(p *converse.Proc) {
		_ = p.GetSpecificMsg(hEcho)
		p.Scheduler(-1)
	})
}

func boundedReentryIsFine(cm *converse.Machine) {
	cm.RegisterHandler(func(p *converse.Proc, msg []byte) {
		p.Scheduler(4)
		p.ScheduleUntilIdle()
	})
}
