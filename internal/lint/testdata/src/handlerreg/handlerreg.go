// Package handlerreg is the converselint corpus for the
// handler-registration analyzer.
package handlerreg

import "converse"

func literalIndices(p *converse.Proc) {
	msg := converse.NewMsg(3, 8) // want `raw integer literal as handler index in NewMsg`
	converse.SetHandler(msg, 1)  // want `raw integer literal as handler index in SetHandler`
	_ = converse.MakeMsg(2, nil) // want `raw integer literal as handler index in MakeMsg`
	p.VectorSend(1, 7, nil)      // want `raw integer literal as handler index in VectorSend`
	_ = p.HandlerFunc(0)         // want `raw integer literal as handler index in HandlerFunc`
	_ = p.GetSpecificMsg(5)      // want `raw integer literal as handler index in GetSpecificMsg`
	_ = p.ScanfAsync(4)          // want `raw integer literal as handler index in ScanfAsync`
}

func literalArithmetic(p *converse.Proc, h int) {
	// h+1 assumes RegisterHandler returns consecutive indices in an
	// order no API guarantees.
	_ = converse.NewMsg(h+1, 8) // want `raw integer literal as handler index in NewMsg`
	_ = converse.NewMsg(int(2), 8) // want `raw integer literal as handler index in NewMsg`
}

func registeredIndicesAreFine(cm *converse.Machine, p *converse.Proc) {
	h := cm.RegisterHandler(func(p *converse.Proc, msg []byte) {})
	msg := converse.NewMsg(h, 8)
	converse.SetHandler(msg, h)
	_ = p.HandlerFunc(h)
	_ = p.GetSpecificMsg(h)
}

func justifiedIgnoreIsHonored() {
	//lint:ignore handlerreg corpus check that a justified suppression silences the finding
	_ = converse.NewMsg(9, 8)
}

func bareIgnoreIsNotHonored() {
	//lint:ignore handlerreg
	_ = converse.NewMsg(9, 8) // want `raw integer literal as handler index in NewMsg`
}

// nonHandlerLiteralsAreFine: integer literals in other argument slots
// stay legal.
func nonHandlerLiteralsAreFine(p *converse.Proc, h int) {
	msg := converse.NewMsg(h, 64)
	p.SyncSend(0, msg)
	_ = p.Alloc(128)
}
