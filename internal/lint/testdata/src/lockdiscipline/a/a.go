// Package a exercises guarded-by inference: a field mostly accessed
// under its struct's mutex is inferred guarded, and the stragglers are
// the findings.
package a

import "sync"

type G struct {
	mu sync.Mutex
	n  int
}

// NewG initializes in constructor scope; nothing counts yet.
func NewG() *G {
	g := &G{}
	g.n = 5
	return g
}

func (g *G) inc() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n++
}

func (g *G) get() int {
	g.mu.Lock()
	v := g.n
	g.mu.Unlock()
	return v
}

// bumpLocked runs with g.mu held by the caller — the *Locked naming
// convention the analyzer honors.
func (g *G) bumpLocked() {
	g.n++
}

// iife: an immediately-invoked closure inherits the held set.
func (g *G) iife() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return func() int { return g.n }()
}

func (g *G) bad() int {
	return g.n // want `field .*/lockdiscipline/a\.G\.n is guarded by mu on 4 of 6 accesses; this access does not hold it`
}

func (g *G) ignored() int {
	//lint:ignore lockdiscipline corpus exercises the justification-bearing escape hatch
	return g.n
}

// P's exported field is guarded on every home access, so the guard is
// exported as a fact and enforced in importers.
type P struct {
	Mu sync.RWMutex
	V  int
}

func (p *P) SetV(v int) {
	p.Mu.Lock()
	p.V = v
	p.Mu.Unlock()
}

func (p *P) GetV() int {
	p.Mu.RLock()
	defer p.Mu.RUnlock()
	return p.V
}

// Lock-order inversion: lockAB takes LA.mu then LB.mu, lockBA the
// reverse — the cycle that becomes a load-dependent deadlock.
type LA struct{ mu sync.Mutex }
type LB struct{ mu sync.Mutex }

func lockAB(x *LA, y *LB) {
	x.mu.Lock()
	y.mu.Lock() // want `lock order inversion: .*/lockdiscipline/a\.LB\.mu acquired while holding .*/lockdiscipline/a\.LA\.mu, but the opposite order is taken at`
	y.mu.Unlock()
	x.mu.Unlock()
}

func lockBA(x *LA, y *LB) {
	y.mu.Lock()
	x.mu.Lock()
	x.mu.Unlock()
	y.mu.Unlock()
}
