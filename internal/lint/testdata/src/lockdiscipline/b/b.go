// Package b imports the guarded struct: the guarded-by obligation
// crosses the package boundary through the exported fact.
package b

import "converse/internal/lint/testdata/src/lockdiscipline/a"

func lockedUse(p *a.P) int {
	p.Mu.RLock()
	defer p.Mu.RUnlock()
	return p.V
}

func plainUse(p *a.P) int {
	return p.V // want `field .*/lockdiscipline/a\.P\.V is guarded by Mu in .*/lockdiscipline/a; this access does not hold it`
}
