// Package msgownership is the converselint corpus for the
// use-after-transfer analyzer. Every flagged line carries a `// want`
// expectation; the rest must stay silent.
package msgownership

import "converse"

func useAfterSendAndFree(p *converse.Proc, h int) {
	msg := p.Alloc(8)
	converse.SetHandler(msg, h)
	p.SyncSendAndFree(1, msg)
	_ = msg[0] // want `message buffer "msg" used after ownership transfer \(SyncSendAndFree`
}

func useAfterTransferOpt(p *converse.Proc, h int) {
	msg := p.Alloc(8)
	converse.SetHandler(msg, h)
	p.Send(1, msg, converse.Transfer)
	converse.SetHandler(msg, h) // want `used after ownership transfer \(Send\(\.\.\., Transfer\)`
}

func writeAfterBroadcastFree(p *converse.Proc, h int) {
	msg := converse.NewMsg(h, 16)
	p.SyncBroadcastAllAndFree(msg)
	msg[8] = 1 // want `used after ownership transfer \(SyncBroadcastAllAndFree`
}

func resendAfterTransfer(p *converse.Proc, h int) {
	msg := converse.NewMsg(h, 4)
	p.SyncSendAndFree(1, msg)
	p.SyncSend(2, msg) // want `used after ownership transfer`
}

func aliasThroughAssignment(p *converse.Proc, h int) {
	msg := p.Alloc(8)
	converse.SetHandler(msg, h)
	alias := msg
	p.SyncSendAndFree(1, msg)
	_ = alias[0] // want `message buffer "alias" used after ownership transfer`
}

func aliasThroughPayload(p *converse.Proc, h int) {
	msg := p.Alloc(8)
	converse.SetHandler(msg, h)
	body := converse.Payload(msg)
	p.Send(1, msg, converse.Transfer)
	body[0] = 42 // want `message buffer "body" used after ownership transfer`
}

func aliasThroughSlice(p *converse.Proc, h int) {
	msg := p.Alloc(32)
	converse.SetHandler(msg, h)
	tail := msg[8:]
	p.SyncSendAndFree(1, msg)
	tail[0] = 7 // want `message buffer "tail" used after ownership transfer`
}

func transferOfSliceExpr(p *converse.Proc, h int) {
	msg := p.Alloc(8)
	converse.SetHandler(msg, h)
	p.SyncSendAndFree(1, msg[:])
	_ = msg[0] // want `used after ownership transfer`
}

func doubleFree(p *converse.Proc, h int) {
	msg := converse.NewMsg(h, 0)
	p.SyncSendAndFree(1, msg)
	p.SyncSendAndFree(1, msg) // want `used after ownership transfer`
}

func transferInBranchPoisonsAfter(p *converse.Proc, h int, big bool) {
	msg := converse.NewMsg(h, 8)
	if big {
		p.SyncSendAndFree(1, msg)
	}
	_ = msg[0] // want `used after ownership transfer`
}

func loopCarriedUse(p *converse.Proc, h int) {
	msg := converse.NewMsg(h, 8)
	for i := 0; i < 4; i++ {
		converse.SetHandler(msg, h) // want `used after ownership transfer`
		p.SyncSendAndFree(1, msg) // want `used after ownership transfer`
	}
}

func returnAfterTransfer(p *converse.Proc, h int) []byte {
	msg := converse.NewMsg(h, 8)
	p.SyncSendAndFree(1, msg)
	return msg // want `used after ownership transfer`
}

func insideHandlerLiteral(cm *converse.Machine) {
	var h int
	h = cm.RegisterHandler(func(p *converse.Proc, msg []byte) {
		reply := p.Alloc(8)
		converse.SetHandler(reply, h)
		p.Send(0, reply, converse.Transfer)
		_ = reply[0] // want `message buffer "reply" used after ownership transfer`
	})
	_ = h
}
