package msgownership

import "converse"

// The negative corpus: ownership-correct code the analyzer must not
// flag.

func plainSendKeepsOwnership(p *converse.Proc, h int) {
	msg := converse.NewMsg(h, 8)
	p.SyncSend(1, msg)
	msg[8] = 1 // fine: SyncSend copies, the caller keeps the buffer
	p.SyncSend(2, msg)
}

func sendWithoutTransferOpt(p *converse.Proc, h int) {
	msg := converse.NewMsg(h, 8)
	p.Send(1, msg)
	_ = msg[0]
	p.Send(converse.BroadcastOthers, msg)
	_ = msg[0]
}

func reallocationClearsPoison(p *converse.Proc, h int) {
	msg := p.Alloc(8)
	converse.SetHandler(msg, h)
	p.SyncSendAndFree(1, msg)
	msg = p.Alloc(8) // rebinding makes msg a fresh, live buffer
	converse.SetHandler(msg, h)
	_ = msg[0]
	p.SyncSendAndFree(1, msg)
}

func transferThenReturnEarly(p *converse.Proc, h int, done bool) {
	msg := converse.NewMsg(h, 8)
	if done {
		p.SyncSendAndFree(1, msg)
		return
	}
	msg[8] = 1 // fine: the transferring branch returned
	p.SyncSendAndFree(1, msg)
}

func freshBufferEachIteration(p *converse.Proc, h int) {
	for i := 0; i < 4; i++ {
		msg := p.Alloc(8)
		converse.SetHandler(msg, h)
		p.SyncSendAndFree(1, msg)
	}
}

func switchCasesAreAlternatives(p *converse.Proc, h, dst int) {
	msg := converse.NewMsg(h, 8)
	switch {
	case dst >= 0:
		p.SyncSendAndFree(dst, msg)
	case dst == converse.BroadcastOthers:
		p.SyncBroadcastAllAndFree(msg) // a poison here must not leak into the case above
	}
}

func asyncSendKeepsOwnership(p *converse.Proc, h int) {
	msg := converse.NewMsg(h, 8)
	hnd := p.AsyncSend(1, msg)
	for !p.IsSent(hnd) {
	}
	_ = msg[0] // fine: AsyncSend buffers stay caller-owned
}
