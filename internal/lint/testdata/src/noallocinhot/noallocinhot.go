// Package noallocinhot is the converselint corpus for the hot-path
// allocation analyzer.
package noallocinhot

type stats struct {
	n     int
	names []string
}

// addEscaping is on the hot path and allocates: every category the
// analyzer knows must fire.
//
//converse:hotpath
func addEscaping(s *stats) *stats {
	extra := &stats{n: 1}           // want `heap-escaping composite literal \(&T\{\.\.\.\}\) in hot-path function addEscaping`
	ids := []int{1, 2, 3}           // want `slice literal allocation in hot-path function addEscaping`
	byName := map[string]int{"": 0} // want `map literal allocation in hot-path function addEscaping`
	s.names = append(s.names, "x")  // want `append growth in hot-path function addEscaping`
	m := make(map[int]int)          // want `map creation in hot-path function addEscaping`
	c := make(chan int)             // want `channel creation in hot-path function addEscaping`
	q := new(stats)                 // want `new\(T\) allocation in hot-path function addEscaping`
	go func() {}()                  // want `goroutine launch in hot-path function addEscaping` `closure allocation in hot-path function addEscaping`
	_, _, _, _, _ = extra, ids, byName, m, c
	return q
}

// hotAndClean stays within the rules: value composites, slice make,
// arithmetic, calls.
//
//converse:hotpath
func hotAndClean(s *stats, buf []byte) int {
	local := stats{n: s.n}
	scratch := make([]byte, 0, 64)
	_ = scratch
	for _, b := range buf {
		local.n += int(b)
	}
	return local.n
}

// hotWithJustifiedAllocation shows the sanctioned escape hatch: the
// allocation is deliberate and amortized, and says why.
//
//converse:hotpath
func hotWithJustifiedAllocation(s *stats, name string) {
	//lint:ignore noallocinhot the slice doubles a few times then reuses capacity; steady state performs no allocation
	s.names = append(s.names, name)
}

// coldFunctionsAllocateFreely is not annotated, so nothing is flagged.
func coldFunctionsAllocateFreely() []*stats {
	out := []*stats{}
	for i := 0; i < 4; i++ {
		out = append(out, &stats{n: i})
	}
	return out
}
