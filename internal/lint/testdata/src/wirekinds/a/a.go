// Package a declares one frame-kind plane and exercises the wirekinds
// in-package rules: raw literals, dispatch exhaustiveness, and the
// ignore escape hatch.
package a

import (
	"io"

	"converse/internal/wire"
)

const (
	AK1 byte = 1 + iota
	AK2
	AK3
)

// Forward relays a caller-chosen kind into the shared framing; the
// analyzer discovers the forwarding and exports it as a fact, so
// literal-kind detection works through it from importing packages.
func Forward(w io.Writer, k byte, payload []byte) error {
	return wire.WriteFrame(w, k, payload)
}

func sendAll(w io.Writer) {
	wire.WriteFrame(w, AK1, nil)
	wire.WriteFrame(w, byte(AK2), nil)
	Forward(w, AK3, nil)
}

func sendRaw(w io.Writer) {
	wire.WriteFrame(w, 9, nil) // want `raw integer literal 9 as frame kind`
}

func sendIgnored(w io.Writer) {
	//lint:ignore wirekinds corpus exercises the justification-bearing escape hatch
	wire.WriteFrame(w, 10, nil)
}

func dispatchIncomplete(k byte) string {
	switch k { // want `kind-dispatch switch has no default clause and misses declared kinds: AK3`
	case AK1:
		return "one"
	case AK2:
		return "two"
	}
	return ""
}

func dispatchWithDefault(k byte) string {
	switch k {
	case AK1:
		return "one"
	default:
		return "other"
	}
}
