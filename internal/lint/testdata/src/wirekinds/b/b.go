// Package b imports both declared planes: its own kinds are checked
// against every imported plane, the imported planes are checked
// against each other (neither a nor c can see the other), and the
// forwarder fact from a keeps literal detection working one package
// removed from wire.WriteFrame.
package b

import (
	"io"

	"converse/internal/lint/testdata/src/wirekinds/a"
	"converse/internal/lint/testdata/src/wirekinds/c" // want `imported frame-kind planes overlap: .*/wirekinds/a\.AK3 = .*/wirekinds/c\.CK1 = 3`
)

const (
	BK1 byte = 2 + iota // want `frame kind BK1 = 2 collides with .*/wirekinds/a\.AK2`
	BK2 byte = 40
)

func send(w io.Writer) {
	a.Forward(w, BK1, nil)
	a.Forward(w, BK2, nil)
	c.CKSend(w)
}

func sendRawThroughForwarder(w io.Writer) {
	a.Forward(w, 7, nil) // want `raw integer literal 7 as frame kind`
}
