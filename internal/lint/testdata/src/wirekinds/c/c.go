// Package c declares a second frame-kind plane. On its own it is
// clean; its value 3 collides with package a's AK3, which only a
// package importing both planes can see (package b).
package c

import (
	"io"

	"converse/internal/wire"
)

const (
	CK1 byte = 3 + iota
	CK2
)

// CKSend writes one frame of each kind (and justifies b's import).
func CKSend(w io.Writer) {
	wire.WriteFrame(w, CK1, nil)
	wire.WriteFrame(w, CK2, nil)
}
