// Package jj mirrors the service package's layout — two kind planes
// (control messages and journal records) in one Go package — and pins
// the acceptance property: renumbering a journal kind into the control
// range is a lint failure, not a silent wire corruption.
package jj

import (
	"io"

	"converse/internal/wire"
)

const (
	KSubmit byte = 96 + iota
	KAccept // want `frame kind KAccept = 97 collides with JKBad in the same package`
)

const (
	JKEpoch byte = 120
	JKBad   byte = 97
)

func sendBoth(w io.Writer) {
	wire.WriteFrame(w, KSubmit, nil)
	wire.WriteFrame(w, JKEpoch, nil)
}
