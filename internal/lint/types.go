package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// Import paths of the packages whose APIs the analyzers model. The
// public facades (converse, converse/cth, converse/csync) re-export
// these through type aliases and thin wrappers, so type-based checks
// against the internal paths cover facade callers too; wrapper
// functions are matched by (package, name) pairs.
const (
	corePath   = "converse/internal/core"
	facadePath = "converse"
	cthPath    = "converse/internal/cth"
	csyncPath  = "converse/internal/csync"
)

// calleeOf resolves a call expression to the function or method object
// it invokes, or nil for indirect calls, conversions and builtins.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// pkgPathOf returns the import path of the package defining fn ("" for
// builtins and error.Error).
func pkgPathOf(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// isPkgFunc reports whether fn is the package-level function
// path.name. The converse facade wraps core's message helpers in new
// functions, so call sites match either package.
func isPkgFunc(fn *types.Func, path, name string) bool {
	return fn != nil && fn.Name() == name && pkgPathOf(fn) == path &&
		fn.Type().(*types.Signature).Recv() == nil
}

// isCoreMsgFunc matches the message-helper function name in either the
// core package or its public facade.
func isCoreMsgFunc(fn *types.Func, name string) bool {
	return isPkgFunc(fn, corePath, name) || isPkgFunc(fn, facadePath, name)
}

// recvNamed returns the defining named type of fn's receiver (through
// one pointer), or nil for package-level functions.
func recvNamed(fn *types.Func) *types.Named {
	if fn == nil {
		return nil
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// isMethod reports whether fn is the method path.typeName.name.
func isMethod(fn *types.Func, path, typeName, name string) bool {
	named := recvNamed(fn)
	if named == nil || fn.Name() != name {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Path() == path
}

// isProcMethod reports whether fn is the named method on core.Proc.
func isProcMethod(fn *types.Func, name string) bool {
	return isMethod(fn, corePath, "Proc", name)
}

// hasTransferOpt reports whether any of the given arguments is a
// SendOpt constant with the Transfer bit set (core.Transfer == 1<<0).
// Non-constant SendOpt expressions are treated as not transferring:
// the analyzer only asserts what it can prove.
func hasTransferOpt(info *types.Info, args []ast.Expr) bool {
	for _, a := range args {
		tv, ok := info.Types[a]
		if !ok || tv.Value == nil {
			continue
		}
		named, ok := tv.Type.(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Name() != "SendOpt" || obj.Pkg() == nil || obj.Pkg().Path() != corePath {
			continue
		}
		if v, ok := constant.Int64Val(tv.Value); ok && v&1 != 0 {
			return true
		}
	}
	return false
}

// localVar returns the local variable (or parameter) object an
// expression names, unwrapping parentheses, or nil when the expression
// is anything else (selectors, indexes, calls...).
func localVar(info *types.Info, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok {
		v, ok = info.Defs[id].(*types.Var)
	}
	if !ok || v.IsField() {
		return nil
	}
	return v
}
