package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"converse/internal/lint/analysis"
)

// wirePath is the shared framing package: the root of every frame-kind
// flow the analyzer tracks.
const wirePath = "converse/internal/wire"

// WireKindsFact is the per-package fact wirekinds exports: the
// frame-kind constants the package declares (its "plane" of the shared
// wire framing) and the exported functions that forward a parameter
// into wire.WriteFrame's kind slot. Downstream packages use the kinds
// to prove plane disjointness repo-wide and the forwarders to keep
// literal-kind detection working through wrappers.
type WireKindsFact struct {
	Kinds      []KindConst
	Forwarders map[string]int // exported package-level func name -> kind param index
}

// KindConst is one declared frame-kind constant.
type KindConst struct {
	Name  string
	Value int64
}

// AFact marks WireKindsFact as a serializable analysis fact.
func (*WireKindsFact) AFact() {}

func (f *WireKindsFact) String() string {
	var parts []string
	for _, k := range f.Kinds {
		parts = append(parts, fmt.Sprintf("%s=%d", k.Name, k.Value))
	}
	return "kinds(" + strings.Join(parts, " ") + ")"
}

// WireKinds proves the frame-kind planes of the shared wire framing
// stay pairwise disjoint across the whole repository. Every package
// that writes frames keeps its own kind enum (mnet's control/data
// protocol, ccs introspection, the service control plane, the gateway
// journal) over ranges that must never overlap — a frame misdirected
// across planes has to fail on its kind byte, not half-parse. Before
// this analyzer that disjointness was a comment; the fact mechanism
// makes it a check.
var WireKinds = &analysis.Analyzer{
	Name: "wirekinds",
	Doc: "prove frame-kind planes disjoint and kind dispatch complete\n\n" +
		"Collects every frame-kind constant in packages that call\n" +
		"wire.WriteFrame (directly or through wrappers), exports them as\n" +
		"package facts, and checks: no two kinds share a value within a\n" +
		"package or across any two packages visible through the import\n" +
		"graph; no integer literal is passed as a kind (name it in the\n" +
		"plane's const block); and every kind-dispatch switch without a\n" +
		"default clause handles every kind its plane declares.",
	Run:       runWireKinds,
	FactTypes: []analysis.Fact{(*WireKindsFact)(nil)},
}

func runWireKinds(pass *analysis.Pass) (any, error) {
	info := pass.TypesInfo

	facts := map[string]*WireKindsFact{}
	var factPaths []string
	for _, pf := range pass.AllPackageFacts() {
		if f, ok := pf.Fact.(*WireKindsFact); ok {
			facts[pf.Path] = f
			factPaths = append(factPaths, pf.Path)
		}
	}
	sort.Strings(factPaths)

	// kindFns maps functions of this package to the index of the
	// parameter they forward into wire.WriteFrame's kind slot,
	// discovered to a fixed point so wrappers of wrappers still count
	// (mnet: writeFrame -> writeFrameParts -> wire.WriteFrame).
	kindFns := map[*types.Func]int{}
	kindParamOf := func(fn *types.Func) (int, bool) {
		if fn == nil {
			return 0, false
		}
		if fn.Name() == "WriteFrame" && pkgPathOf(fn) == wirePath {
			return 1, true
		}
		if idx, ok := kindFns[fn]; ok {
			return idx, true
		}
		if f, ok := facts[pkgPathOf(fn)]; ok && fn.Type().(*types.Signature).Recv() == nil {
			if idx, ok := f.Forwarders[fn.Name()]; ok {
				return idx, true
			}
		}
		return 0, false
	}

	prodFiles := make([]*ast.File, 0, len(pass.Files))
	for _, f := range pass.Files {
		if !isTestFile(pass.Fset, f.Pos()) {
			prodFiles = append(prodFiles, f)
		}
	}

	for changed := true; changed; {
		changed = false
		for _, f := range prodFiles {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fnObj, ok := info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				params := fnObj.Type().(*types.Signature).Params()
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					idx, ok := kindParamOf(calleeOf(info, call))
					if !ok || idx >= len(call.Args) {
						return true
					}
					v := localVar(info, unwrapConv(info, call.Args[idx]))
					if v == nil {
						return true
					}
					for i := 0; i < params.Len(); i++ {
						if params.At(i) == v {
							if _, seen := kindFns[fnObj]; !seen {
								kindFns[fnObj] = i
								changed = true
							}
						}
					}
					return true
				})
			}
		}
	}

	// Map each const of this package to its declaring const block: one
	// kind used as a frame kind marks the whole block as a kind plane
	// (the enum's other members are kinds too, even if this package
	// only reads them back).
	constBlock := map[*types.Const]*ast.GenDecl{}
	for _, f := range prodFiles {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if c, ok := info.Defs[name].(*types.Const); ok {
						constBlock[c] = gd
					}
				}
			}
		}
	}

	// Walk every kind-call site: named constants mark their block as a
	// kind plane, constant expressions that are not named constants are
	// flagged (a raw 97 on the wire is how two planes silently collide).
	usedBlocks := map[*ast.GenDecl]bool{}
	for _, f := range prodFiles {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			idx, ok := kindParamOf(calleeOf(info, call))
			if !ok || idx >= len(call.Args) {
				return true
			}
			arg := unwrapConv(info, call.Args[idx])
			if c := constObjOf(info, arg); c != nil {
				if c.Pkg() == pass.Pkg {
					if blk := constBlock[c]; blk != nil {
						usedBlocks[blk] = true
					}
				}
				return true
			}
			if tv, ok := info.Types[arg]; ok && tv.Value != nil {
				pass.Reportf(arg.Pos(),
					"raw integer literal %s as frame kind: declare it in the plane's const block so wirekinds can prove the planes disjoint",
					tv.Value.ExactString())
			}
			return true
		})
	}

	// The declared kind set of this package: every byte-valued constant
	// of every block used as a kind plane.
	type ownKind struct {
		name  string
		value int64
		pos   token.Pos
		block *ast.GenDecl
	}
	var own []ownKind
	ownByObj := map[*types.Const]*ast.GenDecl{}
	for blk := range usedBlocks {
		for _, spec := range blk.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, name := range vs.Names {
				c, ok := info.Defs[name].(*types.Const)
				if !ok {
					continue
				}
				v, exact := constant.Int64Val(c.Val())
				if !exact || v < 0 || v > 255 {
					continue
				}
				own = append(own, ownKind{name: c.Name(), value: v, pos: name.Pos(), block: blk})
				ownByObj[c] = blk
			}
		}
	}
	sort.Slice(own, func(i, j int) bool {
		if own[i].value != own[j].value {
			return own[i].value < own[j].value
		}
		return own[i].name < own[j].name
	})

	// In-package collisions (this also covers two planes hosted by one
	// package, like the service control plane and the gateway journal).
	for i := 1; i < len(own); i++ {
		if own[i].value == own[i-1].value {
			pass.Reportf(own[i].pos,
				"frame kind %s = %d collides with %s in the same package: kinds on the shared wire framing must be unique",
				own[i].name, own[i].value, own[i-1].name)
		}
	}

	// This package's kinds against every plane visible through facts.
	for _, path := range factPaths {
		byValue := map[int64]string{}
		for _, k := range facts[path].Kinds {
			byValue[k.Value] = k.Name
		}
		for _, k := range own {
			if name, ok := byValue[k.value]; ok {
				pass.Reportf(k.pos,
					"frame kind %s = %d collides with %s.%s: kind planes must stay pairwise disjoint across packages",
					k.name, k.value, path, name)
			}
		}
	}

	// Planes of two dependencies against each other, for packages that
	// see both sides of an overlap neither side can see alone (ccs and
	// mnet import only the wire package; their disjointness is proved in
	// the packages that import both).
	for i, pa := range factPaths {
		for _, pb := range factPaths[i+1:] {
			byValue := map[int64]string{}
			for _, k := range facts[pa].Kinds {
				byValue[k.Value] = k.Name
			}
			for _, k := range facts[pb].Kinds {
				if name, ok := byValue[k.Value]; ok {
					pass.Reportf(importPos(pass.Files, pb),
						"imported frame-kind planes overlap: %s.%s = %s.%s = %d",
						pa, name, pb, k.Name, k.Value)
				}
			}
		}
	}

	// Kind-dispatch switches: without a default clause, a switch over a
	// plane must handle every kind the plane declares — the check that
	// catches "added a kind, forgot the dispatcher".
	for _, f := range prodFiles {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			covered := map[string]bool{}
			var block *ast.GenDecl
			mixed, hasDefault := false, false
			for _, stmt := range sw.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				if cc.List == nil {
					hasDefault = true
					continue
				}
				for _, e := range cc.List {
					c := constObjOf(info, unwrapConv(info, e))
					if c == nil {
						continue
					}
					blk, ok := ownByObj[c]
					if !ok {
						continue
					}
					if block == nil {
						block = blk
					} else if block != blk {
						mixed = true
					}
					covered[c.Name()] = true
				}
			}
			if hasDefault || mixed || block == nil || len(covered) < 2 {
				return true
			}
			var missing []string
			for _, k := range own {
				if k.block == block && !covered[k.name] {
					missing = append(missing, k.name)
				}
			}
			if len(missing) > 0 {
				pass.Reportf(sw.Pos(),
					"kind-dispatch switch has no default clause and misses declared kinds: %s",
					strings.Join(missing, ", "))
			}
			return true
		})
	}

	if len(own) > 0 || len(kindFns) > 0 {
		fact := &WireKindsFact{Forwarders: map[string]int{}}
		for _, k := range own {
			fact.Kinds = append(fact.Kinds, KindConst{Name: k.name, Value: k.value})
		}
		for fn, idx := range kindFns {
			if fn.Exported() && fn.Type().(*types.Signature).Recv() == nil {
				fact.Forwarders[fn.Name()] = idx
			}
		}
		pass.ExportPackageFact(fact)
	}
	return nil, nil
}

// unwrapConv strips parentheses and type conversions (byte(k), kind(x))
// from an expression.
func unwrapConv(info *types.Info, e ast.Expr) ast.Expr {
	for {
		e = ast.Unparen(e)
		if call, ok := e.(*ast.CallExpr); ok && len(call.Args) == 1 {
			if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
				e = call.Args[0]
				continue
			}
		}
		return e
	}
}

// constObjOf resolves an identifier or selector to the named constant
// it uses, or nil.
func constObjOf(info *types.Info, e ast.Expr) *types.Const {
	switch x := e.(type) {
	case *ast.Ident:
		c, _ := info.Uses[x].(*types.Const)
		return c
	case *ast.SelectorExpr:
		c, _ := info.Uses[x.Sel].(*types.Const)
		return c
	}
	return nil
}

// importPos returns the position of the import declaration for path, or
// the first file's package clause when the import is transitive.
func importPos(files []*ast.File, path string) token.Pos {
	for _, f := range files {
		for _, imp := range f.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil && p == path {
				return imp.Pos()
			}
		}
	}
	if len(files) > 0 {
		return files[0].Name.Pos()
	}
	return token.NoPos
}
