package machine

import (
	"strings"
	"testing"
	"time"
)

func TestFormatBlockState(t *testing.T) {
	cases := []struct {
		st   BlockState
		want string
	}{
		{BlockState{}, "pe0 running inbox=0"},
		{BlockState{RecvWait: true, InboxLen: 3}, "pe0 blocked-in-recv inbox=3"},
		{BlockState{ThreadsSuspended: 2}, "pe0 running inbox=0 threads-suspended=2"},
		{BlockState{RecvWait: true, BarrierWaiters: 1}, "pe0 blocked-in-recv inbox=0 barrier-waiters=1"},
		{
			BlockState{RecvWait: true, InboxLen: 7, ThreadsSuspended: 4, BarrierWaiters: 2},
			"pe0 blocked-in-recv inbox=7 threads-suspended=4 barrier-waiters=2",
		},
	}
	for _, c := range cases {
		if got := FormatBlockState("pe0", c.st); got != c.want {
			t.Errorf("FormatBlockState(%+v) = %q, want %q", c.st, got, c.want)
		}
	}
}

// TestDescribeBlockedLiveMachine drives one PE into a blocking receive
// with thread and barrier waiters noted and checks the machine-wide
// report names the right PE with the right reason — the diagnostic the
// watchdog attaches to deadlocks and mnet reuses for failure reports.
func TestDescribeBlockedLiveMachine(t *testing.T) {
	m := New(Config{PEs: 2})
	stateCh := make(chan string, 1)
	err := m.Run(func(pe *PE) {
		switch pe.ID() {
		case 0:
			pe.NoteThreadsSuspended(2)
			pe.NoteBarrierWaiters(1)
			pe.Recv() // blocks until pe1 stops the machine
		case 1:
			// Wait for pe0 to be asleep inside Recv, then snapshot.
			deadline := time.Now().Add(5 * time.Second)
			for {
				if st := m.PE(0).BlockState(); st.RecvWait {
					break
				}
				if time.Now().After(deadline) {
					break
				}
				time.Sleep(time.Millisecond)
			}
			stateCh <- m.DescribeBlocked()
			m.Stop()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	got := <-stateCh
	if !strings.Contains(got, "pe0 blocked-in-recv inbox=0 threads-suspended=2 barrier-waiters=1") {
		t.Errorf("DescribeBlocked = %q, want pe0 blocked in recv with noted waiters", got)
	}
	if !strings.Contains(got, "pe1 running") {
		t.Errorf("DescribeBlocked = %q, want pe1 running", got)
	}
}

// TestWatchdogReportIncludesBlockState deadlocks a machine on purpose
// and checks the watchdog error carries the per-PE diagnosis.
func TestWatchdogReportIncludesBlockState(t *testing.T) {
	m := New(Config{PEs: 1, Watchdog: 50 * time.Millisecond})
	err := m.Run(func(pe *PE) {
		pe.Recv() // nothing will ever arrive
	})
	if err == nil {
		t.Fatal("deadlocked machine returned nil error")
	}
	if !strings.Contains(err.Error(), "watchdog expired") ||
		!strings.Contains(err.Error(), "pe0 blocked-in-recv") {
		t.Errorf("watchdog error %q missing block-state diagnosis", err)
	}
}
