package machine

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
)

// console serializes standard output, error and input across PEs,
// implementing the MMI guarantee that "data from two separate printfs is
// not interleaved" and that scanfs "from different sources are
// effectively serialized".
type console struct {
	mu  sync.Mutex
	out io.Writer
	err io.Writer
	in  *bufio.Reader
}

func (c *console) init() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.out = os.Stdout
	c.err = os.Stderr
	c.in = bufio.NewReader(os.Stdin)
}

// SetConsole redirects the machine's standard output and error streams.
// Tests use it to capture atomic printf output. Either writer may be nil
// to keep the current one.
func (m *Machine) SetConsole(out, errw io.Writer) {
	m.console.mu.Lock()
	defer m.console.mu.Unlock()
	if out != nil {
		m.console.out = out
	}
	if errw != nil {
		m.console.err = errw
	}
}

// SetInput redirects the machine's standard input stream.
func (m *Machine) SetInput(r io.Reader) {
	m.console.mu.Lock()
	defer m.console.mu.Unlock()
	m.console.in = bufio.NewReader(r)
}

// Printf performs an atomic formatted write to the machine's standard
// output on behalf of a PE (CmiPrintf).
func (pe *PE) Printf(format string, args ...any) {
	c := &pe.m.console
	c.mu.Lock()
	defer c.mu.Unlock()
	fmt.Fprintf(c.out, format, args...)
}

// Errorf performs an atomic formatted write to the machine's standard
// error (CmiError).
func (pe *PE) Errorf(format string, args ...any) {
	c := &pe.m.console
	c.mu.Lock()
	defer c.mu.Unlock()
	fmt.Fprintf(c.err, format, args...)
}

// Scanf performs an atomic formatted read from the machine's standard
// input, blocking the calling PE (CmiScanf). Reads from different PEs
// are serialized: each call consumes one input line and scans it.
func (pe *PE) Scanf(format string, args ...any) (int, error) {
	line, err := pe.ReadLine()
	if err != nil {
		return 0, err
	}
	return fmt.Sscanf(line, format, args...)
}

// ReadLine atomically consumes one line from the machine's standard
// input, without the trailing newline. It backs both the blocking and
// the non-blocking (handler-result) forms of CmiScanf: the non-blocking
// form ships the returned string to a handler, which can re-scan it with
// fmt.Sscanf, exactly as the paper describes ("a formatted string, which
// the recipient can re-scan using sscanf").
func (pe *PE) ReadLine() (string, error) {
	c := &pe.m.console
	c.mu.Lock()
	defer c.mu.Unlock()
	line, err := c.in.ReadString('\n')
	if err != nil && line == "" {
		return "", err
	}
	return strings.TrimRight(line, "\n"), nil
}
