package machine

import (
	"sync"
	"sync/atomic"

	"converse/internal/queue"
)

// Inbox is a bounded lock-free MPSC inbound packet queue with a
// mutex-protected overflow behind it — the structure behind every PE's
// inbound network queue, extracted so any substrate hosting processors
// in-process can reuse it: the simulated PE and the network machine
// layer's intra-node delivery path (internal/mnet in nodes×PEs mode)
// share this one implementation.
//
// Producers (Put) are any goroutines; the consumer side (TryPop, Pop,
// and the pending staging they drain into) belongs to exactly one
// consumer goroutine. Senders touch the mutex only when the ring is
// full or the consumer is blocked asleep; the consumer drains the ring
// in whole batches into a consumer-local pending queue, preserving
// per-producer FIFO order across both paths (see refill).
type Inbox struct {
	ring *packetRing

	// mu guards overflow and the sleep/wake handshake. cond is
	// broadcast by producers that observe the consumer asleep and by
	// Stop.
	mu       sync.Mutex
	cond     *sync.Cond
	overflow queue.Deque[Packet]

	// overflowN mirrors overflow.Len() atomically. While nonzero, every
	// producer routes through the overflow queue (not the ring), so a
	// producer's packets are never split ring-after-overflow — the
	// property that keeps per-pair FIFO intact across the fallback.
	overflowN atomic.Int64

	// sleeping is set (under mu) by the consumer before blocking in
	// Pop; producers check it after publishing and wake the consumer.
	sleeping atomic.Bool

	// pending is the consumer-local staging queue: refill moves whole
	// ring batches (then any overflow) into it; pops take from it with
	// no synchronization. pendingN mirrors its length for Len readers
	// on other goroutines.
	pending  queue.Deque[Packet]
	pendingN atomic.Int64

	// recvWait is set while the consumer sleeps inside Pop, for
	// block-state diagnostics.
	recvWait atomic.Bool

	stopped atomic.Bool
}

// NewInbox builds an inbox with the standard ring capacity.
func NewInbox() *Inbox {
	ib := &Inbox{ring: newPacketRing(ringCapacity)}
	ib.cond = sync.NewCond(&ib.mu)
	return ib
}

// Put publishes a packet and wakes the consumer if it is blocked. The
// lock-free ring is the fast path; while any packet sits in overflow,
// all producers take the overflow path so a single producer's packets
// cannot be consumed out of order. Safe from any goroutine.
func (ib *Inbox) Put(pkt Packet) {
	if ib.overflowN.Load() > 0 || !ib.ring.tryPush(pkt) {
		ib.mu.Lock()
		ib.overflow.PushBack(pkt)
		ib.overflowN.Add(1)
		ib.cond.Broadcast()
		ib.mu.Unlock()
		return
	}
	if ib.sleeping.Load() {
		ib.mu.Lock()
		ib.cond.Broadcast()
		ib.mu.Unlock()
	}
}

// refill drains the whole ring, then any overflow, into the
// consumer-local pending queue. Ordering: a producer only uses the ring
// while the overflow is empty, and overflow is only declared empty
// (overflowN reset) at the moment its contents move into pending — so
// for any single producer, everything it put in the ring before
// overflowing is drained in step 1, its overflow packets follow in
// step 2, and anything it sends after the reset lands in the ring for a
// later refill, after the current pending batch. Per-pair FIFO holds.
func (ib *Inbox) refill() {
	for {
		pkt, ok := ib.ring.tryPop()
		if !ok {
			break
		}
		ib.pending.PushBack(pkt)
		ib.pendingN.Add(1)
	}
	if ib.overflowN.Load() > 0 {
		ib.mu.Lock()
		for {
			pkt, ok := ib.overflow.PopFront()
			if !ok {
				break
			}
			ib.pending.PushBack(pkt)
			ib.pendingN.Add(1)
		}
		ib.overflowN.Store(0)
		ib.mu.Unlock()
	}
}

// TryPop returns the next packet without blocking, refilling the
// pending batch from the ring and overflow when it runs dry. Consumer
// goroutine only.
func (ib *Inbox) TryPop() (Packet, bool) {
	if pkt, ok := ib.pending.PopFront(); ok {
		ib.pendingN.Add(-1)
		return pkt, true
	}
	ib.refill()
	pkt, ok := ib.pending.PopFront()
	if ok {
		ib.pendingN.Add(-1)
	}
	return pkt, ok
}

// Pop blocks until a packet is available and returns it. It returns
// ok=false if the inbox is stopped while waiting. Consumer goroutine
// only.
func (ib *Inbox) Pop() (Packet, bool) {
	for {
		if pkt, ok := ib.TryPop(); ok {
			return pkt, true
		}
		ib.mu.Lock()
		ib.sleeping.Store(true)
		// Recheck after announcing sleep: a producer that published
		// before seeing sleeping=true is visible here (seq-cst
		// ordering), so the wakeup cannot be lost.
		if ib.ring.len() > 0 || ib.overflow.Len() > 0 {
			ib.sleeping.Store(false)
			ib.mu.Unlock()
			continue
		}
		if ib.stopped.Load() {
			ib.sleeping.Store(false)
			ib.mu.Unlock()
			return Packet{}, false
		}
		ib.recvWait.Store(true)
		ib.cond.Wait()
		ib.recvWait.Store(false)
		ib.sleeping.Store(false)
		ib.mu.Unlock()
	}
}

// Len reports the number of packets waiting. Safe from any goroutine;
// under concurrent traffic the count is a point-in-time approximation.
func (ib *Inbox) Len() int {
	return ib.ring.len() + int(ib.overflowN.Load()) + int(ib.pendingN.Load())
}

// Stop unblocks a consumer waiting in Pop (ok=false). Idempotent, safe
// from any goroutine. Packets already queued remain poppable via
// TryPop.
func (ib *Inbox) Stop() {
	ib.mu.Lock()
	ib.stopped.Store(true)
	ib.cond.Broadcast()
	ib.mu.Unlock()
}

// Stopped reports whether Stop has been called. Safe from any
// goroutine; one atomic load, cheap enough for a scheduler loop to
// poll every iteration.
func (ib *Inbox) Stopped() bool { return ib.stopped.Load() }

// RecvWaiting reports whether the consumer is asleep inside Pop, for
// block-state diagnostics.
func (ib *Inbox) RecvWaiting() bool { return ib.recvWait.Load() }
