// Package machine implements the simulated multicomputer substrate that
// stands in for the parallel hardware of the paper's evaluation (Sun/HP
// workstation networks, Cray T3D, IBM SP, Intel Paragon).
//
// A Machine is a set of logical processing elements (PEs). Each PE is
// driven by exactly one goroutine, owns a private address space by
// convention (nothing is shared except through messages), and has a
// thread-safe inbound packet queue fed by the other PEs. This is the
// layer below the Converse machine interface (CMI): internal/core
// implements CmiSyncSend, CmiGetMsg and friends on top of it.
//
// Every packet carries a virtual arrival time in microseconds, computed
// from the sending PE's virtual clock plus a pluggable CostModel (wire
// latency + software overheads). With a nil model all costs are zero and
// the machine is a purely functional message-passing substrate; with one
// of the internal/netmodel models attached, the virtual clocks reproduce
// the timing behaviour of the paper's target machines.
package machine

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// CostModel prices communication in virtual microseconds. Implementations
// live in internal/netmodel; a nil model means every cost is zero.
type CostModel interface {
	// WireTime is the network transit time for a packet of the given
	// total size in bytes (latency plus per-byte cost, including any
	// packetization effects).
	WireTime(bytes int) float64
	// SendOverhead is the per-message software cost charged to the
	// sender's clock at send time.
	SendOverhead() float64
	// RecvOverhead is the per-message software cost charged to the
	// receiver's clock when it picks the packet up.
	RecvOverhead() float64
}

// Config parameterizes a Machine.
type Config struct {
	// PEs is the number of processing elements; must be >= 1.
	PEs int
	// NodeSizes, when non-nil, groups the PEs into nodes: NodeSizes[g]
	// PEs on node g, numbered contiguously, summing to PEs. Packets
	// between PEs of the same node pay no wire time (an in-memory
	// handoff), which is how the simulated machine presents any
	// nodes×PEs topology for in-process testing. Nil means the classic
	// flat map — one node per PE — with unchanged timing.
	NodeSizes []int
	// Model prices communication in virtual time. Nil means free.
	Model CostModel
	// Watchdog, if nonzero, aborts Run after the given wall-clock
	// duration, unblocking every PE. It exists so that tests of
	// blocking primitives fail with an error instead of hanging.
	Watchdog time.Duration
}

// Machine is a simulated multicomputer: Config.PEs processing elements
// connected by a reliable, non-overtaking-per-pair transport.
type Machine struct {
	pes      []*PE
	model    CostModel
	console  console
	watchdog time.Duration

	// topo is the node map (never nil); explicitTopo records whether it
	// was configured, which turns on the intra-node wire-time discount.
	topo         *Topology
	explicitTopo bool

	stopMu  sync.Mutex
	stopped bool
}

// New creates a machine with the given configuration.
func New(cfg Config) *Machine {
	if cfg.PEs < 1 {
		panic(fmt.Sprintf("machine: PEs must be >= 1, got %d", cfg.PEs))
	}
	m := &Machine{model: cfg.Model}
	if cfg.NodeSizes != nil {
		m.topo = NewTopology(cfg.NodeSizes)
		m.explicitTopo = true
		if m.topo.NumPEs() != cfg.PEs {
			panic(fmt.Sprintf("machine: node map %v covers %d PEs, machine has %d",
				cfg.NodeSizes, m.topo.NumPEs(), cfg.PEs))
		}
	} else {
		m.topo = FlatTopology(cfg.PEs)
	}
	m.console.init()
	m.pes = make([]*PE, cfg.PEs)
	for i := range m.pes {
		m.pes[i] = newPE(m, i)
	}
	if cfg.Watchdog > 0 {
		m.watchdog = cfg.Watchdog
	}
	return m
}

// NumPEs reports the number of processing elements.
func (m *Machine) NumPEs() int { return len(m.pes) }

// PE returns the processing element with the given id.
func (m *Machine) PE(id int) *PE { return m.pes[id] }

// Topology returns the machine's node map (never nil; the flat
// one-node-per-PE map unless Config.NodeSizes set one).
func (m *Machine) Topology() *Topology { return m.topo }

// Model returns the machine's cost model (possibly nil).
func (m *Machine) Model() CostModel { return m.model }

// Run starts one driver goroutine per PE, each executing start with its
// PE, and returns when all of them have returned. It corresponds to the
// process creation and coordination at initiation and termination points
// that the paper assigns to the MMI (CmiInit/CmiExit).
//
// If any PE panics, Run recovers it and returns it as an error after the
// remaining PEs finish or the watchdog fires. If the watchdog fires
// first, Run unblocks every blocked receive and returns an error.
func (m *Machine) Run(start func(pe *PE)) error {
	var wg sync.WaitGroup
	errs := make(chan error, len(m.pes))
	for _, pe := range m.pes {
		wg.Add(1)
		go func(pe *PE) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					buf := make([]byte, 16<<10)
					n := runtime.Stack(buf, false)
					errs <- fmt.Errorf("machine: PE %d panicked: %v\n%s", pe.id, r, buf[:n])
					m.Stop() // unblock the other PEs
				}
			}()
			start(pe)
		}(pe)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	var timeout <-chan time.Time
	if m.watchdog > 0 {
		t := time.NewTimer(m.watchdog)
		defer t.Stop()
		timeout = t.C
	}

	select {
	case <-done:
	case <-timeout:
		// Snapshot the block states before Stop wakes the blocked
		// receives (waking them clears their blocked-in-recv flag, which
		// is the most important part of the diagnosis).
		desc := m.describeBlocked()
		m.Stop()
		<-done
		select {
		case err := <-errs:
			return err
		default:
		}
		return fmt.Errorf("machine: watchdog expired after %v (likely deadlock: %s)", m.watchdog, desc)
	}
	select {
	case err := <-errs:
		return err
	default:
	}
	return nil
}

// Stop marks the machine stopped and unblocks every PE blocked in a
// receive; their blocking calls return ok=false. Stop is idempotent and
// safe to call from any goroutine.
func (m *Machine) Stop() {
	m.stopMu.Lock()
	if m.stopped {
		m.stopMu.Unlock()
		return
	}
	m.stopped = true
	m.stopMu.Unlock()
	for _, pe := range m.pes {
		pe.inbox.Stop()
	}
}

// Stopped reports whether Stop has been called.
func (m *Machine) Stopped() bool {
	m.stopMu.Lock()
	defer m.stopMu.Unlock()
	return m.stopped
}

// BlockState is a point-in-time summary of why one processing element
// may not be making progress. It distinguishes a driver blocked in a
// receive from one whose threads are all suspended or parked at a
// barrier, which is the difference between "waiting for a message that
// never comes" and "local synchronization bug".
type BlockState struct {
	RecvWait         bool // the driver is asleep inside Recv
	InboxLen         int  // packets waiting, unconsumed
	ThreadsSuspended int  // cth thread objects currently suspended
	BarrierWaiters   int  // threads blocked at a csync barrier
}

// FormatBlockState renders one PE's block state in the shared
// diagnostic format. The simulated machine's watchdog report and the
// network machine layer's failure report (internal/mnet) both use it,
// so a distributed hang reads the same as a local one.
func FormatBlockState(label string, st BlockState) string {
	s := label
	if st.RecvWait {
		s += " blocked-in-recv"
	} else {
		s += " running"
	}
	s += fmt.Sprintf(" inbox=%d", st.InboxLen)
	if st.ThreadsSuspended > 0 {
		s += fmt.Sprintf(" threads-suspended=%d", st.ThreadsSuspended)
	}
	if st.BarrierWaiters > 0 {
		s += fmt.Sprintf(" barrier-waiters=%d", st.BarrierWaiters)
	}
	return s
}

// DescribeBlocked reports every PE's block state in one line, the
// diagnostic attached to watchdog expiries.
func (m *Machine) DescribeBlocked() string { return m.describeBlocked() }

// describeBlocked summarizes per-PE block states for watchdog
// diagnostics: whether each driver is asleep in a receive, its inbox
// depth, and any suspended threads or barrier waiters.
func (m *Machine) describeBlocked() string {
	s := ""
	for _, pe := range m.pes {
		if s != "" {
			s += ", "
		}
		s += FormatBlockState(fmt.Sprintf("pe%d", pe.id), pe.BlockState())
	}
	return s
}
