package machine

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestNewBasics(t *testing.T) {
	m := New(Config{PEs: 4})
	if m.NumPEs() != 4 {
		t.Fatalf("NumPEs = %d, want 4", m.NumPEs())
	}
	for i := 0; i < 4; i++ {
		if m.PE(i).ID() != i {
			t.Fatalf("PE(%d).ID() = %d", i, m.PE(i).ID())
		}
		if m.PE(i).NumPEs() != 4 {
			t.Fatalf("PE(%d).NumPEs() = %d", i, m.PE(i).NumPEs())
		}
		if m.PE(i).Machine() != m {
			t.Fatalf("PE(%d).Machine() mismatch", i)
		}
	}
}

func TestNewPanicsOnZeroPEs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(Config{PEs: 0}) did not panic")
		}
	}()
	New(Config{PEs: 0})
}

func TestSendRecvRoundTrip(t *testing.T) {
	m := New(Config{PEs: 2, Watchdog: 5 * time.Second})
	var got []byte
	err := m.Run(func(pe *PE) {
		switch pe.ID() {
		case 0:
			pe.Send(1, []byte("hello"))
			pkt, ok := pe.Recv()
			if !ok {
				t.Error("PE0 Recv failed")
				return
			}
			got = pkt.Data
		case 1:
			pkt, ok := pe.Recv()
			if !ok {
				t.Error("PE1 Recv failed")
				return
			}
			reply := append([]byte("re:"), pkt.Data...)
			pe.Send(0, reply)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "re:hello" {
		t.Fatalf("round trip got %q", got)
	}
}

func TestSendCopiesBuffer(t *testing.T) {
	m := New(Config{PEs: 2, Watchdog: 5 * time.Second})
	err := m.Run(func(pe *PE) {
		if pe.ID() == 0 {
			buf := []byte("original")
			pe.Send(1, buf)
			copy(buf, "CLOBBER!") // CmiSyncSend: caller may reuse the buffer
			return
		}
		pkt, ok := pe.Recv()
		if !ok {
			t.Error("Recv failed")
			return
		}
		if string(pkt.Data) != "original" {
			t.Errorf("receiver saw %q, want %q (Send must copy)", pkt.Data, "original")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTryRecvNonBlocking(t *testing.T) {
	m := New(Config{PEs: 1})
	pe := m.PE(0)
	if _, ok := pe.TryRecv(); ok {
		t.Fatal("TryRecv on empty inbox returned ok")
	}
	pe.Send(0, []byte("self"))
	pkt, ok := pe.TryRecv()
	if !ok || string(pkt.Data) != "self" {
		t.Fatalf("TryRecv = %v,%v", pkt, ok)
	}
	if pkt.Src != 0 || pkt.Dst != 0 {
		t.Fatalf("packet endpoints = %d->%d", pkt.Src, pkt.Dst)
	}
}

func TestSendInvalidDestinationPanics(t *testing.T) {
	m := New(Config{PEs: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("Send to invalid PE did not panic")
		}
	}()
	m.PE(0).Send(7, []byte("x"))
}

func TestPairwiseOrderPreserved(t *testing.T) {
	// The transport must not reorder messages between a fixed pair.
	m := New(Config{PEs: 2, Watchdog: 10 * time.Second})
	const n = 500
	err := m.Run(func(pe *PE) {
		if pe.ID() == 0 {
			for i := 0; i < n; i++ {
				pe.Send(1, []byte{byte(i), byte(i >> 8)})
			}
			return
		}
		for i := 0; i < n; i++ {
			pkt, ok := pe.Recv()
			if !ok {
				t.Error("Recv failed")
				return
			}
			got := int(pkt.Data[0]) | int(pkt.Data[1])<<8
			if got != i {
				t.Errorf("message %d arrived out of order (got %d)", i, got)
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestManyToOne(t *testing.T) {
	const pes = 8
	const per = 100
	m := New(Config{PEs: pes, Watchdog: 10 * time.Second})
	counts := make([]int, pes)
	err := m.Run(func(pe *PE) {
		if pe.ID() != 0 {
			for i := 0; i < per; i++ {
				pe.Send(0, []byte{byte(pe.ID())})
			}
			return
		}
		for i := 0; i < (pes-1)*per; i++ {
			pkt, ok := pe.Recv()
			if !ok {
				t.Error("Recv failed")
				return
			}
			counts[pkt.Data[0]]++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for src := 1; src < pes; src++ {
		if counts[src] != per {
			t.Errorf("received %d messages from PE %d, want %d", counts[src], src, per)
		}
	}
}

func TestWatchdogBreaksDeadlock(t *testing.T) {
	m := New(Config{PEs: 2, Watchdog: 100 * time.Millisecond})
	start := time.Now()
	err := m.Run(func(pe *PE) {
		// Both PEs wait for a message that never comes.
		pe.Recv()
	})
	if err == nil {
		t.Fatal("Run returned nil error despite deadlock")
	}
	if !strings.Contains(err.Error(), "watchdog") {
		t.Fatalf("error = %v, want watchdog mention", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("watchdog took far too long")
	}
}

func TestPanicPropagation(t *testing.T) {
	m := New(Config{PEs: 2, Watchdog: 5 * time.Second})
	err := m.Run(func(pe *PE) {
		if pe.ID() == 1 {
			panic("boom")
		}
		pe.Recv() // would deadlock, but the panic stops the machine
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want panic propagation", err)
	}
}

func TestStopIdempotent(t *testing.T) {
	m := New(Config{PEs: 1})
	m.Stop()
	m.Stop()
	if !m.Stopped() {
		t.Fatal("Stopped() = false after Stop")
	}
}

func TestAtomicPrintf(t *testing.T) {
	m := New(Config{PEs: 8, Watchdog: 10 * time.Second})
	var buf bytes.Buffer
	var mu sync.Mutex
	m.SetConsole(writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	}), nil)
	err := m.Run(func(pe *PE) {
		for i := 0; i < 50; i++ {
			pe.Printf("pe=%d i=%d tail\n", pe.ID(), i)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 8*50 {
		t.Fatalf("got %d lines, want %d", len(lines), 8*50)
	}
	for _, l := range lines {
		var peid, i int
		if _, err := fmt.Sscanf(l, "pe=%d i=%d tail", &peid, &i); err != nil {
			t.Fatalf("interleaved or malformed line %q: %v", l, err)
		}
	}
}

func TestScanfSerialized(t *testing.T) {
	m := New(Config{PEs: 3, Watchdog: 10 * time.Second})
	m.SetInput(strings.NewReader("10\n20\n30\n"))
	var mu sync.Mutex
	got := map[int]bool{}
	err := m.Run(func(pe *PE) {
		var v int
		if _, err := pe.Scanf("%d", &v); err != nil {
			t.Errorf("Scanf: %v", err)
			return
		}
		mu.Lock()
		got[v] = true
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if !got[10] || !got[20] || !got[30] || len(got) != 3 {
		t.Fatalf("scanned values = %v", got)
	}
}

func TestErrorfGoesToStderrStream(t *testing.T) {
	m := New(Config{PEs: 1})
	var out, errw bytes.Buffer
	m.SetConsole(&out, &errw)
	m.PE(0).Printf("to-out")
	m.PE(0).Errorf("to-err")
	if out.String() != "to-out" || errw.String() != "to-err" {
		t.Fatalf("out=%q err=%q", out.String(), errw.String())
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// --- virtual clock tests ---

// fixedModel charges a constant latency plus per-byte cost.
type fixedModel struct {
	alpha, beta, sendOv, recvOv float64
}

func (f fixedModel) WireTime(n int) float64 { return f.alpha + f.beta*float64(n) }
func (f fixedModel) SendOverhead() float64  { return f.sendOv }
func (f fixedModel) RecvOverhead() float64  { return f.recvOv }

func TestVirtualClockPingPong(t *testing.T) {
	mod := fixedModel{alpha: 10, beta: 0.01, sendOv: 1, recvOv: 2}
	m := New(Config{PEs: 2, Model: mod, Watchdog: 10 * time.Second})
	const size = 100
	var t0 float64
	err := m.Run(func(pe *PE) {
		msg := make([]byte, size)
		if pe.ID() == 0 {
			pe.Send(1, msg)
			pe.Recv()
			t0 = pe.Clock()
			return
		}
		pkt, _ := pe.Recv()
		pe.Send(0, pkt.Data)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Round trip: 2 * (sendOv + wire + recvOv) with wire = alpha + beta*size.
	want := 2 * (mod.sendOv + mod.alpha + mod.beta*size + mod.recvOv)
	if diff := t0 - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("round-trip virtual time = %v, want %v", t0, want)
	}
}

// TestClockCausalityProperty: for any message size, receive time at the
// destination is at least send time plus wire time.
func TestClockCausalityProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		mod := fixedModel{alpha: 5, beta: 0.02, sendOv: 0.5, recvOv: 0.7}
		m := New(Config{PEs: 2, Model: mod, Watchdog: 10 * time.Second})
		ok := true
		err := m.Run(func(pe *PE) {
			if pe.ID() == 0 {
				for _, s := range sizes {
					pe.Send(1, make([]byte, int(s)%4096))
				}
				return
			}
			last := -1.0
			for range sizes {
				pkt, k := pe.Recv()
				if !k {
					ok = false
					return
				}
				if pkt.Arrive < last {
					// pairwise FIFO should keep arrival stamps
					// nondecreasing from a single sender
					ok = false
					return
				}
				last = pkt.Arrive
				if pe.Clock() < pkt.Arrive {
					ok = false
					return
				}
			}
		})
		return err == nil && ok
	}
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestChargeAndAdvanceTo(t *testing.T) {
	m := New(Config{PEs: 1})
	pe := m.PE(0)
	pe.Charge(5)
	if pe.Clock() != 5 {
		t.Fatalf("Clock = %v, want 5", pe.Clock())
	}
	pe.AdvanceTo(3) // backwards: no-op
	if pe.Clock() != 5 {
		t.Fatalf("AdvanceTo moved clock backwards: %v", pe.Clock())
	}
	pe.AdvanceTo(9)
	if pe.Clock() != 9 {
		t.Fatalf("Clock = %v, want 9", pe.Clock())
	}
}

func TestStatsCounts(t *testing.T) {
	m := New(Config{PEs: 2, Watchdog: 5 * time.Second})
	err := m.Run(func(pe *PE) {
		if pe.ID() == 0 {
			pe.Send(1, []byte("a"))
			pe.Send(1, []byte("b"))
		} else {
			pe.Recv()
			pe.Recv()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := m.PE(0).Stats(); s != 2 {
		t.Fatalf("PE0 sent = %d, want 2", s)
	}
	if _, r := m.PE(1).Stats(); r != 2 {
		t.Fatalf("PE1 received = %d, want 2", r)
	}
}

func TestInboxLen(t *testing.T) {
	m := New(Config{PEs: 1})
	pe := m.PE(0)
	if pe.InboxLen() != 0 {
		t.Fatal("fresh inbox not empty")
	}
	pe.Send(0, []byte("x"))
	pe.Send(0, []byte("y"))
	if pe.InboxLen() != 2 {
		t.Fatalf("InboxLen = %d, want 2", pe.InboxLen())
	}
}
