package machine

import (
	"sync"

	"converse/internal/queue"
)

// Packet is a block of bytes in flight between two PEs, the machine-level
// carrier of a Converse generalized message.
type Packet struct {
	Src, Dst int
	Data     []byte
	// Arrive is the packet's virtual arrival time at the destination,
	// in microseconds: sender clock at send time plus modeled send
	// overhead and wire time.
	Arrive float64
}

// PE is one processing element of a simulated multicomputer. All of its
// methods except the send family must be called only from the PE's own
// driver goroutine (or a context hand-off chain rooted in it); the send
// family may be called by any PE targeting this one.
type PE struct {
	id int
	m  *Machine

	mu    sync.Mutex
	cond  *sync.Cond
	inbox queue.Deque[*Packet]

	clock float64 // virtual time in microseconds; owned by the driver

	// lastArrive[dst] is the arrival stamp of the previous packet this
	// PE sent to dst. Links are FIFO (non-overtaking), so a packet's
	// arrival time is never earlier than its predecessor's on the same
	// link. Owned by the driver goroutine.
	lastArrive []float64

	// statistics, owned by the driver goroutine
	sent     uint64
	received uint64
	sentToMe uint64 // updated under mu by senders
}

func newPE(m *Machine, id int) *PE {
	pe := &PE{id: id, m: m}
	pe.cond = sync.NewCond(&pe.mu)
	return pe
}

// ID returns the PE's logical processor number (CmiMyPe).
func (pe *PE) ID() int { return pe.id }

// Machine returns the owning machine.
func (pe *PE) Machine() *Machine { return pe.m }

// NumPEs reports the machine size (CmiNumPe).
func (pe *PE) NumPEs() int { return len(pe.m.pes) }

// Clock returns the PE's current virtual time in microseconds
// (the substrate behind CmiTimer).
func (pe *PE) Clock() float64 { return pe.clock }

// Charge advances the PE's virtual clock by dt microseconds. Layers above
// use it to account for software costs that the cost model prices.
func (pe *PE) Charge(dt float64) { pe.clock += dt }

// AdvanceTo moves the clock forward to t if t is later than now.
func (pe *PE) AdvanceTo(t float64) {
	if t > pe.clock {
		pe.clock = t
	}
}

// Send transmits a copy of data to the destination PE. The caller may
// reuse data immediately (CmiSyncSend buffer semantics). The packet's
// virtual arrival time is stamped from this PE's clock and the machine's
// cost model.
func (pe *PE) Send(dst int, data []byte) {
	buf := make([]byte, len(data))
	copy(buf, data)
	pe.SendOwned(dst, buf)
}

// SendOwned transmits data without copying; ownership of the slice
// passes to the destination (the CmiSyncSendAndFree pattern: the sender
// must not touch data afterwards).
func (pe *PE) SendOwned(dst int, data []byte) {
	if dst < 0 || dst >= len(pe.m.pes) {
		panic("machine: send to invalid PE")
	}
	arrive := pe.clock
	if mod := pe.m.model; mod != nil {
		pe.clock += mod.SendOverhead()
		arrive = pe.clock + mod.WireTime(len(data))
	}
	if pe.lastArrive == nil {
		pe.lastArrive = make([]float64, len(pe.m.pes))
	}
	if arrive < pe.lastArrive[dst] {
		arrive = pe.lastArrive[dst] // FIFO link: no overtaking
	}
	pe.lastArrive[dst] = arrive
	pe.sent++
	pkt := &Packet{Src: pe.id, Dst: dst, Data: data, Arrive: arrive}
	pe.m.pes[dst].deliver(pkt)
}

// deliver appends a packet to the inbox and wakes blocked receivers.
func (pe *PE) deliver(pkt *Packet) {
	pe.mu.Lock()
	pe.inbox.PushBack(pkt)
	pe.sentToMe++
	pe.mu.Unlock()
	pe.cond.Broadcast()
}

// TryRecv removes and returns the oldest inbound packet without
// blocking. It returns nil, false if the inbox is empty. On success the
// PE's clock advances to the packet's arrival time plus the model's
// receive overhead.
func (pe *PE) TryRecv() (*Packet, bool) {
	pe.mu.Lock()
	pkt, ok := pe.inbox.PopFront()
	pe.mu.Unlock()
	if !ok {
		return nil, false
	}
	pe.arrived(pkt)
	return pkt, true
}

// Recv blocks until a packet is available and returns it. It returns
// nil, false if the machine is stopped while waiting (watchdog or
// explicit Stop).
func (pe *PE) Recv() (*Packet, bool) {
	pe.mu.Lock()
	for pe.inbox.Len() == 0 {
		if pe.m.Stopped() {
			pe.mu.Unlock()
			return nil, false
		}
		pe.cond.Wait()
	}
	pkt, _ := pe.inbox.PopFront()
	pe.mu.Unlock()
	pe.arrived(pkt)
	return pkt, true
}

// arrived performs the receive-side clock accounting for a packet.
func (pe *PE) arrived(pkt *Packet) {
	pe.AdvanceTo(pkt.Arrive)
	if mod := pe.m.model; mod != nil {
		pe.clock += mod.RecvOverhead()
	}
	pe.received++
}

// InboxLen reports the number of packets waiting in the inbox.
func (pe *PE) InboxLen() int {
	pe.mu.Lock()
	defer pe.mu.Unlock()
	return pe.inbox.Len()
}

// Stats reports the number of packets this PE has sent and received.
func (pe *PE) Stats() (sent, received uint64) { return pe.sent, pe.received }
