package machine

import (
	"sync/atomic"
)

// Packet is a block of bytes in flight between two PEs, the machine-level
// carrier of a Converse generalized message. Packets travel by value
// through the inbound ring so the steady-state receive path performs no
// allocation.
type Packet struct {
	Src, Dst int
	Data     []byte
	// Arrive is the packet's virtual arrival time at the destination,
	// in microseconds: sender clock at send time plus modeled send
	// overhead and wire time.
	Arrive float64
}

// ringCapacity is the size of each PE's lock-free inbound ring. Bursts
// beyond it spill to the mutex-protected overflow queue, so the ring
// bounds memory without ever dropping or blocking a send.
const ringCapacity = 1024

// PE is one processing element of a simulated multicomputer. All of its
// methods except the send family must be called only from the PE's own
// driver goroutine (or a context hand-off chain rooted in it); the send
// family may be called by any PE targeting this one.
//
// The inbound queue is an Inbox: a bounded lock-free MPSC ring (the
// fast path) with a mutex-protected overflow deque behind it. Senders
// touch a mutex only when the ring is full or the receiver is blocked
// asleep; the receiver drains the ring in whole batches, preserving
// per-sender FIFO order across both paths (see Inbox).
type PE struct {
	id int
	m  *Machine

	inbox *Inbox

	clock float64 // virtual time in microseconds; owned by the driver

	// lastArrive[dst] is the arrival stamp of the previous packet this
	// PE sent to dst. Links are FIFO (non-overtaking), so a packet's
	// arrival time is never earlier than its predecessor's on the same
	// link. Owned by the driver goroutine.
	lastArrive []float64

	// statistics, owned by the driver goroutine
	sent     uint64
	received uint64
	sentToMe atomic.Uint64 // updated by senders

	// Block-state bookkeeping for deadlock diagnostics (describeBlocked
	// and the network layer's failure reports). The receive-wait flag
	// lives in the inbox; the two counters are maintained by the thread
	// (cth) and synchronization (csync) layers through the
	// NoteThreadsSuspended/NoteBarrierWaiters hooks.
	threadsSusp    atomic.Int64
	barrierWaiters atomic.Int64
}

func newPE(m *Machine, id int) *PE {
	return &PE{id: id, m: m, inbox: NewInbox()}
}

// ID returns the PE's logical processor number (CmiMyPe).
func (pe *PE) ID() int { return pe.id }

// Machine returns the owning machine.
func (pe *PE) Machine() *Machine { return pe.m }

// Model returns the machine's cost model (possibly nil). It is part of
// the substrate interface internal/core consumes.
func (pe *PE) Model() CostModel { return pe.m.model }

// NumPEs reports the machine size (CmiNumPe).
func (pe *PE) NumPEs() int { return len(pe.m.pes) }

// Node reports the node hosting this PE (CmiMyNode). The machine's
// node map comes from Config.NodeSizes; by default every PE is its own
// node.
func (pe *PE) Node() int { return pe.m.topo.NodeOf(pe.id) }

// NumNodes reports the machine's node count (CmiNumNodes).
func (pe *PE) NumNodes() int { return pe.m.topo.NumNodes() }

// NodeSize reports how many PEs the given node hosts (CmiNodeSize).
func (pe *PE) NodeSize(node int) int { return pe.m.topo.NodeSize(node) }

// NodeOf reports the node hosting the given PE (CmiNodeOf).
func (pe *PE) NodeOf(p int) int { return pe.m.topo.NodeOf(p) }

// Clock returns the PE's current virtual time in microseconds
// (the substrate behind CmiTimer).
func (pe *PE) Clock() float64 { return pe.clock }

// Charge advances the PE's virtual clock by dt microseconds. Layers above
// use it to account for software costs that the cost model prices.
func (pe *PE) Charge(dt float64) { pe.clock += dt }

// AdvanceTo moves the clock forward to t if t is later than now.
func (pe *PE) AdvanceTo(t float64) {
	if t > pe.clock {
		pe.clock = t
	}
}

// Send transmits a copy of data to the destination PE. The caller may
// reuse data immediately (CmiSyncSend buffer semantics). The packet's
// virtual arrival time is stamped from this PE's clock and the machine's
// cost model.
func (pe *PE) Send(dst int, data []byte) {
	buf := make([]byte, len(data))
	copy(buf, data)
	pe.SendOwned(dst, buf)
}

// SendOwned transmits data without copying; ownership of the slice
// passes to the destination (the CmiSyncSendAndFree pattern: the sender
// must not touch data afterwards).
//
// Under an explicit node map (Config.NodeSizes) a packet between two
// PEs of the same node pays the send overhead but no wire time: it is
// a pooled in-memory handoff, not a network transit — the property the
// two-level collectives exploit. With the default one-PE-per-node map
// every non-self destination is a wire hop, exactly as before.
func (pe *PE) SendOwned(dst int, data []byte) {
	if dst < 0 || dst >= len(pe.m.pes) {
		panic("machine: send to invalid PE")
	}
	arrive := pe.clock
	if mod := pe.m.model; mod != nil {
		pe.clock += mod.SendOverhead()
		arrive = pe.clock
		if !(pe.m.explicitTopo && pe.m.topo.NodeOf(dst) == pe.m.topo.NodeOf(pe.id)) {
			arrive += mod.WireTime(len(data))
		}
	}
	if pe.lastArrive == nil {
		pe.lastArrive = make([]float64, len(pe.m.pes))
	}
	if arrive < pe.lastArrive[dst] {
		arrive = pe.lastArrive[dst] // FIFO link: no overtaking
	}
	pe.lastArrive[dst] = arrive
	pe.sent++
	pe.m.pes[dst].deliver(Packet{Src: pe.id, Dst: dst, Data: data, Arrive: arrive})
}

// Inject publishes a message straight to this PE's own inbound queue.
// Unlike SendOwned it may be called from any goroutine: it touches no
// driver-owned state (no clock charge, no network model), so foreign
// observers — the monitor doorbell in internal/core — can ring a PE
// without racing its driver. The packet arrives immediately (Arrive 0
// is never ahead of the receiver's clock).
func (pe *PE) Inject(data []byte) {
	pe.deliver(Packet{Src: pe.id, Dst: pe.id, Data: data, Arrive: 0})
}

// deliver publishes a packet to this PE's inbound queue and wakes the
// receiver if it is blocked.
func (pe *PE) deliver(pkt Packet) {
	pe.sentToMe.Add(1)
	pe.inbox.Put(pkt)
}

// TryRecv removes and returns the oldest inbound packet without
// blocking. It returns ok=false if the inbox is empty. On success the
// PE's clock advances to the packet's arrival time plus the model's
// receive overhead.
func (pe *PE) TryRecv() (Packet, bool) {
	pkt, ok := pe.inbox.TryPop()
	if !ok {
		return Packet{}, false
	}
	pe.arrived(&pkt)
	return pkt, true
}

// TryRecvBatch fills out with up to len(out) inbound packets and
// returns the count, performing the per-packet receive accounting for
// each. It is the batch form deliverFromNetwork-style loops use: one
// refill drains the whole ring pass.
func (pe *PE) TryRecvBatch(out []Packet) int {
	n := 0
	for n < len(out) {
		pkt, ok := pe.inbox.TryPop()
		if !ok {
			break
		}
		pe.arrived(&pkt)
		out[n] = pkt
		n++
	}
	return n
}

// Recv blocks until a packet is available and returns it. It returns
// ok=false if the machine is stopped while waiting (watchdog or
// explicit Stop).
func (pe *PE) Recv() (Packet, bool) {
	pkt, ok := pe.inbox.Pop()
	if !ok {
		return Packet{}, false
	}
	pe.arrived(&pkt)
	return pkt, true
}

// arrived performs the receive-side clock accounting for a packet.
func (pe *PE) arrived(pkt *Packet) {
	pe.AdvanceTo(pkt.Arrive)
	if mod := pe.m.model; mod != nil {
		pe.clock += mod.RecvOverhead()
	}
	pe.received++
}

// InboxLen reports the number of packets waiting to be received. It is
// safe to call from any goroutine; under concurrent traffic the count
// is a point-in-time approximation.
func (pe *PE) InboxLen() int { return pe.inbox.Len() }

// Stopped reports whether the machine has been stopped. Scheduler
// loops poll it so a PE busy with purely local work still notices an
// abort (a blocked Recv learns the same thing from ok=false).
func (pe *PE) Stopped() bool { return pe.inbox.Stopped() }

// Stats reports the number of packets this PE has sent and received.
func (pe *PE) Stats() (sent, received uint64) { return pe.sent, pe.received }

// NoteThreadsSuspended adjusts the count of thread objects currently
// suspended on this PE. The thread layer (cth) calls it around
// suspend/resume so that blocked-state diagnostics can distinguish "all
// threads parked" from a plain receive wait. Safe from any goroutine.
func (pe *PE) NoteThreadsSuspended(delta int) { pe.threadsSusp.Add(int64(delta)) }

// NoteBarrierWaiters adjusts the count of threads blocked at a
// synchronization barrier on this PE (csync.Barrier.Arrive).
func (pe *PE) NoteBarrierWaiters(delta int) { pe.barrierWaiters.Add(int64(delta)) }

// BlockState summarizes why this PE might not be making progress.
func (pe *PE) BlockState() BlockState {
	return BlockState{
		RecvWait:         pe.inbox.RecvWaiting(),
		InboxLen:         pe.InboxLen(),
		ThreadsSuspended: int(pe.threadsSusp.Load()),
		BarrierWaiters:   int(pe.barrierWaiters.Load()),
	}
}
