package machine

import "sync/atomic"

// packetRing is a bounded multi-producer single-consumer queue of
// Packets, the lock-free fast path of a PE's inbound network queue.
// It is a sequence-number ring (Vyukov's bounded MPMC algorithm,
// restricted here to one consumer): each slot carries a sequence cell
// that tells producers when the slot is free and the consumer when it
// is filled, so neither side takes a lock and the hot path is two
// atomic operations per packet.
//
// When the ring is momentarily full the machine falls back to the PE's
// mutex-protected overflow queue (see PE.deliver); the ring never
// blocks.
type packetRing struct {
	mask  uint64
	slots []ringSlot

	_    [56]byte // keep enq and deq on separate cache lines
	enq  atomic.Uint64
	_pad [56]byte
	deq  atomic.Uint64
}

// ringSlot is one cell of the ring. seq encodes the slot state: equal
// to the enqueue position when free for that position, position+1 when
// filled and awaiting the consumer.
type ringSlot struct {
	seq atomic.Uint64
	pkt Packet
}

// newPacketRing builds a ring with the given capacity, which must be a
// power of two.
func newPacketRing(capacity int) *packetRing {
	if capacity <= 0 || capacity&(capacity-1) != 0 {
		panic("machine: packetRing capacity must be a power of two")
	}
	r := &packetRing{
		mask:  uint64(capacity - 1),
		slots: make([]ringSlot, capacity),
	}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// tryPush publishes pkt. It returns false when the ring is full; the
// caller must then take the overflow path. Safe for concurrent
// producers.
func (r *packetRing) tryPush(pkt Packet) bool {
	pos := r.enq.Load()
	for {
		slot := &r.slots[pos&r.mask]
		seq := slot.seq.Load()
		switch diff := int64(seq) - int64(pos); {
		case diff == 0:
			// Slot free for this position: claim it.
			if r.enq.CompareAndSwap(pos, pos+1) {
				slot.pkt = pkt
				slot.seq.Store(pos + 1) // publish
				return true
			}
			pos = r.enq.Load()
		case diff < 0:
			// Slot still holds an unconsumed packet a lap behind: full.
			return false
		default:
			// Another producer claimed pos; retry at the new tail.
			pos = r.enq.Load()
		}
	}
}

// tryPop removes the oldest packet. Single consumer only.
func (r *packetRing) tryPop() (Packet, bool) {
	pos := r.deq.Load()
	slot := &r.slots[pos&r.mask]
	if slot.seq.Load() != pos+1 {
		return Packet{}, false // empty (or producer mid-publish)
	}
	pkt := slot.pkt
	slot.pkt = Packet{}              // release payload reference
	slot.seq.Store(pos + r.mask + 1) // mark free for the next lap
	r.deq.Store(pos + 1)
	return pkt, true
}

// len reports the number of published packets currently in the ring.
// It is approximate under concurrent pushes (reads two atomics).
func (r *packetRing) len() int {
	enq, deq := r.enq.Load(), r.deq.Load()
	if enq < deq {
		return 0
	}
	return int(enq - deq)
}
