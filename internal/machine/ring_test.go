package machine

import (
	"encoding/binary"
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestRingPushPopBasic(t *testing.T) {
	r := newPacketRing(8)
	if _, ok := r.tryPop(); ok {
		t.Fatal("pop from empty ring succeeded")
	}
	for i := 0; i < 8; i++ {
		if !r.tryPush(Packet{Src: i}) {
			t.Fatalf("push %d failed on non-full ring", i)
		}
	}
	if r.tryPush(Packet{Src: 99}) {
		t.Fatal("push succeeded on full ring")
	}
	if r.len() != 8 {
		t.Fatalf("len = %d, want 8", r.len())
	}
	for i := 0; i < 8; i++ {
		pkt, ok := r.tryPop()
		if !ok || pkt.Src != i {
			t.Fatalf("pop %d = %v,%v", i, pkt.Src, ok)
		}
	}
	if _, ok := r.tryPop(); ok {
		t.Fatal("pop from drained ring succeeded")
	}
}

func TestRingWrapsAroundManyLaps(t *testing.T) {
	r := newPacketRing(4)
	for i := 0; i < 1000; i++ {
		if !r.tryPush(Packet{Src: i}) {
			t.Fatalf("push %d failed", i)
		}
		pkt, ok := r.tryPop()
		if !ok || pkt.Src != i {
			t.Fatalf("lap %d: pop = %v,%v", i, pkt.Src, ok)
		}
	}
}

func TestRingBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("newPacketRing(3) did not panic")
		}
	}()
	newPacketRing(3)
}

// TestRingMPSCOrderPerProducer hammers one ring with several producers
// and checks, under the race detector in CI, that each producer's
// packets come out in its own send order.
func TestRingMPSCOrderPerProducer(t *testing.T) {
	const producers = 8
	const perProducer = 5000
	r := newPacketRing(64)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				buf := make([]byte, 4)
				binary.LittleEndian.PutUint32(buf, uint32(i))
				for !r.tryPush(Packet{Src: p, Data: buf}) {
					runtime.Gosched() // full: let the consumer drain
				}
			}
		}(p)
	}
	next := make([]uint32, producers)
	got := 0
	for got < producers*perProducer {
		pkt, ok := r.tryPop()
		if !ok {
			runtime.Gosched()
			continue
		}
		seq := binary.LittleEndian.Uint32(pkt.Data)
		if seq != next[pkt.Src] {
			t.Fatalf("producer %d: got seq %d, want %d", pkt.Src, seq, next[pkt.Src])
		}
		next[pkt.Src]++
		got++
	}
	wg.Wait()
	if _, ok := r.tryPop(); ok {
		t.Fatal("ring not empty after consuming everything")
	}
}

// TestOverflowPreservesPairFIFO forces the overflow fallback by sending
// far more packets than the ring holds before the receiver runs, then
// checks per-sender order end to end.
func TestOverflowPreservesPairFIFO(t *testing.T) {
	const pes = 4
	const per = 3 * ringCapacity // guarantees overflow on PE 0
	m := New(Config{PEs: pes, Watchdog: 60 * time.Second})
	next := make([]uint32, pes)
	err := m.Run(func(pe *PE) {
		if pe.ID() != 0 {
			for i := 0; i < per; i++ {
				buf := make([]byte, 8)
				binary.LittleEndian.PutUint32(buf, uint32(pe.ID()))
				binary.LittleEndian.PutUint32(buf[4:], uint32(i))
				pe.Send(0, buf)
			}
			return
		}
		for n := 0; n < (pes-1)*per; n++ {
			pkt, ok := pe.Recv()
			if !ok {
				t.Error("recv failed")
				return
			}
			src := binary.LittleEndian.Uint32(pkt.Data)
			seq := binary.LittleEndian.Uint32(pkt.Data[4:])
			if seq != next[src] {
				t.Errorf("sender %d: got seq %d, want %d", src, seq, next[src])
				return
			}
			next[src]++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRecvBatchDrains exercises the batch receive path.
func TestRecvBatchDrains(t *testing.T) {
	m := New(Config{PEs: 1})
	pe := m.PE(0)
	for i := 0; i < 10; i++ {
		pe.Send(0, []byte{byte(i)})
	}
	var out [4]Packet
	total := 0
	for {
		n := pe.TryRecvBatch(out[:])
		if n == 0 {
			break
		}
		for i := 0; i < n; i++ {
			if int(out[i].Data[0]) != total+i {
				t.Fatalf("batch out of order: %d at position %d", out[i].Data[0], total+i)
			}
		}
		total += n
	}
	if total != 10 {
		t.Fatalf("drained %d packets, want 10", total)
	}
}
