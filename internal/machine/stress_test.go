package machine

import (
	"encoding/binary"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

// TestRandomAllToAllConservation floods a 16-PE machine with random
// traffic and checks exact conservation: every byte sent arrives
// exactly once, per sender-receiver pair.
func TestRandomAllToAllConservation(t *testing.T) {
	const pes = 16
	const perPE = 100
	m := New(Config{PEs: pes, Watchdog: 30 * time.Second})
	// counts[src*pes+dst] incremented at send and decremented at recv.
	var sent [pes * pes]int64
	var recv [pes * pes]int64
	var totalRecv int64
	err := m.Run(func(pe *PE) {
		rng := rand.New(rand.NewSource(int64(pe.ID()) * 977))
		for i := 0; i < perPE; i++ {
			dst := rng.Intn(pes)
			size := 4 + rng.Intn(300)
			buf := make([]byte, size)
			binary.LittleEndian.PutUint32(buf, uint32(pe.ID()))
			atomic.AddInt64(&sent[pe.ID()*pes+dst], 1)
			pe.Send(dst, buf)
		}
		// Receive until the machine-wide total is reached; every PE
		// polls with short blocking receives.
		for atomic.LoadInt64(&totalRecv) < pes*perPE {
			pkt, ok := pe.TryRecv()
			if !ok {
				continue
			}
			src := int(binary.LittleEndian.Uint32(pkt.Data))
			if src != pkt.Src {
				t.Errorf("payload src %d != packet src %d", src, pkt.Src)
			}
			atomic.AddInt64(&recv[src*pes+pe.ID()], 1)
			atomic.AddInt64(&totalRecv, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range sent {
		if sent[i] != recv[i] {
			t.Fatalf("pair %d: sent %d recv %d", i, sent[i], recv[i])
		}
	}
}

// TestManyPEs spins up a 128-PE machine and runs a ring to exercise the
// machine at scale.
func TestManyPEs(t *testing.T) {
	const pes = 128
	m := New(Config{PEs: pes, Watchdog: 30 * time.Second})
	var hops int64
	err := m.Run(func(pe *PE) {
		if pe.ID() == 0 {
			pe.Send(1, []byte{1})
			if _, ok := pe.Recv(); !ok {
				t.Error("ring token lost")
			}
			atomic.AddInt64(&hops, 1)
			return
		}
		pkt, ok := pe.Recv()
		if !ok {
			t.Error("recv failed")
			return
		}
		atomic.AddInt64(&hops, 1)
		pe.Send((pe.ID()+1)%pes, pkt.Data)
	})
	if err != nil {
		t.Fatal(err)
	}
	if hops != pes {
		t.Fatalf("hops = %d, want %d", hops, pes)
	}
}

// TestVirtualTimeUnderContention: with a cost model, many senders to
// one receiver still yield a receiver clock at least as late as every
// arrival stamp.
func TestVirtualTimeUnderContention(t *testing.T) {
	const pes = 8
	mod := fixedModel{alpha: 3, beta: 0.01, sendOv: 0.5, recvOv: 0.5}
	m := New(Config{PEs: pes, Model: mod, Watchdog: 20 * time.Second})
	err := m.Run(func(pe *PE) {
		if pe.ID() != 0 {
			for i := 0; i < 50; i++ {
				pe.Send(0, make([]byte, 64))
			}
			return
		}
		var maxArrive float64
		for i := 0; i < (pes-1)*50; i++ {
			pkt, ok := pe.Recv()
			if !ok {
				t.Error("recv failed")
				return
			}
			if pkt.Arrive > maxArrive {
				maxArrive = pkt.Arrive
			}
			if pe.Clock() < pkt.Arrive {
				t.Errorf("receiver clock %v behind arrival %v", pe.Clock(), pkt.Arrive)
				return
			}
		}
		if pe.Clock() < maxArrive {
			t.Errorf("final clock %v < max arrival %v", pe.Clock(), maxArrive)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSendOwnedNoCopy: SendOwned must hand the identical backing array
// to the receiver.
func TestSendOwnedNoCopy(t *testing.T) {
	m := New(Config{PEs: 1})
	pe := m.PE(0)
	buf := []byte("owned")
	pe.SendOwned(0, buf)
	pkt, ok := pe.TryRecv()
	if !ok || &pkt.Data[0] != &buf[0] {
		t.Fatal("SendOwned copied the buffer")
	}
}
