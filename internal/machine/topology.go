package machine

import "fmt"

// Topology is the node map of a machine: how its PEs are grouped into
// nodes (the paper's node-level CMI — CmiMyNode/CmiNumNodes — where a
// Converse "processor" lives inside a node that may host many PEs).
// PEs are numbered so that each node's PEs are contiguous: node g owns
// the global PE range [NodeFirst(g), NodeFirst(g)+NodeSize(g)).
//
// A Topology is immutable after construction and safe for concurrent
// readers; all lookups are O(1) slice indexing so topology-aware hot
// paths (the two-level collectives) pay no more than a flat-PE lookup.
type Topology struct {
	sizes  []int // sizes[g] = PEs hosted by node g
	first  []int // first[g] = first global PE of node g
	nodeOf []int // nodeOf[pe] = node hosting pe
}

// NewTopology builds the node map from per-node PE counts. Every size
// must be >= 1 (empty nodes hold no processors and cannot appear in the
// map; a launcher models surplus processes outside the Topology).
func NewTopology(sizes []int) *Topology {
	if len(sizes) == 0 {
		panic("machine: topology with no nodes")
	}
	t := &Topology{
		sizes: append([]int(nil), sizes...),
		first: make([]int, len(sizes)),
	}
	total := 0
	for g, sz := range sizes {
		if sz < 1 {
			panic(fmt.Sprintf("machine: node %d of the topology has size %d; every node hosts at least one PE", g, sz))
		}
		t.first[g] = total
		total += sz
	}
	t.nodeOf = make([]int, total)
	for g := range sizes {
		for pe := t.first[g]; pe < t.first[g]+sizes[g]; pe++ {
			t.nodeOf[pe] = g
		}
	}
	return t
}

// FlatTopology is the classic one-PE-per-node map: pes nodes of size 1.
// It is the default everywhere a node map is not configured, preserving
// the pre-SMP behaviour where rank and PE coincide.
func FlatTopology(pes int) *Topology {
	sizes := make([]int, pes)
	for i := range sizes {
		sizes[i] = 1
	}
	return NewTopology(sizes)
}

// UniformTopology distributes pes PEs over nodes of ppn each (the
// converserun -nodes/-ppn shape); the last node takes the remainder
// when ppn does not divide pes.
func UniformTopology(pes, ppn int) *Topology {
	if ppn < 1 {
		panic(fmt.Sprintf("machine: topology with %d PEs per node", ppn))
	}
	var sizes []int
	for off := 0; off < pes; off += ppn {
		sz := ppn
		if off+sz > pes {
			sz = pes - off
		}
		sizes = append(sizes, sz)
	}
	return NewTopology(sizes)
}

// NumPEs reports the total PE count of the map.
func (t *Topology) NumPEs() int { return len(t.nodeOf) }

// NumNodes reports the node count (CmiNumNodes).
func (t *Topology) NumNodes() int { return len(t.sizes) }

// NodeSize reports how many PEs node g hosts (CmiNodeSize).
func (t *Topology) NodeSize(g int) int { return t.sizes[g] }

// NodeFirst reports the first global PE of node g (CmiNodeFirst).
func (t *Topology) NodeFirst(g int) int { return t.first[g] }

// NodeOf reports the node hosting the given PE (CmiNodeOf).
func (t *Topology) NodeOf(pe int) int { return t.nodeOf[pe] }

// Sizes returns a copy of the per-node PE counts.
func (t *Topology) Sizes() []int { return append([]int(nil), t.sizes...) }

// String renders the map compactly, e.g. "8 PEs / 3 nodes [1 3 4]".
func (t *Topology) String() string {
	return fmt.Sprintf("%d PEs / %d nodes %v", t.NumPEs(), t.NumNodes(), t.sizes)
}
