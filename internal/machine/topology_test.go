package machine

import "testing"

func TestTopologyAsymmetric(t *testing.T) {
	topo := NewTopology([]int{1, 3, 4})
	if got := topo.NumPEs(); got != 8 {
		t.Fatalf("NumPEs = %d, want 8", got)
	}
	if got := topo.NumNodes(); got != 3 {
		t.Fatalf("NumNodes = %d, want 3", got)
	}
	wantNode := []int{0, 1, 1, 1, 2, 2, 2, 2}
	for pe, want := range wantNode {
		if got := topo.NodeOf(pe); got != want {
			t.Errorf("NodeOf(%d) = %d, want %d", pe, got, want)
		}
	}
	wantFirst := []int{0, 1, 4}
	wantSize := []int{1, 3, 4}
	for g := range wantFirst {
		if got := topo.NodeFirst(g); got != wantFirst[g] {
			t.Errorf("NodeFirst(%d) = %d, want %d", g, got, wantFirst[g])
		}
		if got := topo.NodeSize(g); got != wantSize[g] {
			t.Errorf("NodeSize(%d) = %d, want %d", g, got, wantSize[g])
		}
	}
}

func TestFlatTopology(t *testing.T) {
	topo := FlatTopology(5)
	if topo.NumNodes() != 5 || topo.NumPEs() != 5 {
		t.Fatalf("flat: %d nodes / %d PEs, want 5/5", topo.NumNodes(), topo.NumPEs())
	}
	for pe := 0; pe < 5; pe++ {
		if topo.NodeOf(pe) != pe || topo.NodeFirst(pe) != pe || topo.NodeSize(pe) != 1 {
			t.Errorf("pe %d: NodeOf=%d NodeFirst=%d NodeSize=%d, want all identity/1",
				pe, topo.NodeOf(pe), topo.NodeFirst(pe), topo.NodeSize(pe))
		}
	}
}

func TestUniformTopologyRemainder(t *testing.T) {
	// 7 PEs at 3 per node: nodes of 3, 3, 1 — the last node takes the
	// remainder.
	topo := UniformTopology(7, 3)
	if got := topo.NumNodes(); got != 3 {
		t.Fatalf("NumNodes = %d, want 3", got)
	}
	if got := topo.NodeSize(2); got != 1 {
		t.Errorf("NodeSize(2) = %d, want 1 (remainder node)", got)
	}
	if got := topo.NodeOf(6); got != 2 {
		t.Errorf("NodeOf(6) = %d, want 2", got)
	}
}

func TestMachineTopologyFromConfig(t *testing.T) {
	m := New(Config{PEs: 4, NodeSizes: []int{2, 2}})
	defer m.Stop()
	pe := m.PE(3)
	if pe.Node() != 1 || pe.NumNodes() != 2 || pe.NodeSize(1) != 2 || pe.NodeOf(0) != 0 {
		t.Errorf("pe3: Node=%d NumNodes=%d NodeSize(1)=%d NodeOf(0)=%d, want 1/2/2/0",
			pe.Node(), pe.NumNodes(), pe.NodeSize(1), pe.NodeOf(0))
	}
}

func TestMachineRejectsBadNodeSizes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Config.NodeSizes not covering PEs did not panic")
		}
	}()
	New(Config{PEs: 4, NodeSizes: []int{2, 1}})
}
