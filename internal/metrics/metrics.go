// Package metrics implements the Projections-style observability
// registry that grew out of the paper's tracing component (§3.3.2):
// where internal/trace records *event streams*, this package keeps
// *aggregates* — counters, gauges and fixed-bucket histograms — cheap
// enough to leave on for whole runs.
//
// The registry is strictly per-PE, like every other piece of Converse
// runtime state: each processor records into its own PE value with no
// cross-processor sharing on the hot path. All cells are atomics, so a
// machine-level Snapshot can be taken at any time — concurrently with a
// running machine — and is read-consistent per cell. Recording is
// allocation-free in the steady state; when no registry is attached the
// core's hot paths pay a single nil check (verified by
// BenchmarkMetricsDisabled in internal/core).
package metrics

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// NumBuckets is the number of histogram buckets. Bucket 0 counts
// observations below 1 µs; bucket i counts [2^(i-1), 2^i) µs; the last
// bucket absorbs everything beyond.
const NumBuckets = 16

// Histogram is a fixed-bucket latency histogram over virtual
// microseconds. Recording is lock-free and allocation-free.
type Histogram struct {
	buckets [NumBuckets]atomic.Uint64
}

// Observe records one duration in virtual microseconds.
func (h *Histogram) Observe(us float64) {
	i := 0
	for b := 1.0; i < NumBuckets-1 && us >= b; i++ {
		b *= 2
	}
	h.buckets[i].Add(1)
}

// BucketBound returns the exclusive upper bound of bucket i in
// microseconds (+Inf is represented by the last bucket, bound 2^(n-1)).
func BucketBound(i int) float64 {
	b := 1.0
	for ; i > 0; i-- {
		b *= 2
	}
	return b
}

// snapshot copies the bucket counts.
func (h *Histogram) snapshot() [NumBuckets]uint64 {
	var out [NumBuckets]uint64
	for i := range out {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// HandlerStats aggregates one handler's dispatches on one PE.
type HandlerStats struct {
	count  atomic.Uint64
	bytes  atomic.Uint64
	timeNs atomic.Uint64 // virtual handler time, nanoseconds
	hist   Histogram     // per-dispatch latency, virtual µs
}

// PE is one processor's metrics registry. Its recording methods are
// called by the instrumented runtime layers (core, cth, ldb); they are
// safe for the owner PE to call concurrently with Snapshot readers.
type PE struct {
	id     int
	numPEs int

	idleNs     atomic.Uint64 // scheduler blocked-idle virtual time, ns
	busyNs     atomic.Uint64 // outermost handler virtual time, ns
	dispatches atomic.Uint64
	enqueues   atomic.Uint64
	queueHWM   atomic.Uint64 // scheduler queue depth high-water mark

	threadSwitches atomic.Uint64
	threadsCreated atomic.Uint64

	seedsDeposited atomic.Uint64
	seedsRooted    atomic.Uint64
	seedsForwarded atomic.Uint64

	// communication fast path (PR 2): message-pool effectiveness and
	// send-coalescing activity.
	poolHits         atomic.Uint64
	poolMisses       atomic.Uint64
	coalesceStaged   atomic.Uint64
	coalescePacks    atomic.Uint64
	coalesceUnpacked atomic.Uint64

	sentMsgs  []atomic.Uint64 // per peer PE
	sentBytes []atomic.Uint64
	recvMsgs  []atomic.Uint64
	recvBytes []atomic.Uint64

	// network machine layer (PR 3): wire-level traffic per peer link,
	// below the message counters above (frames include coalesced packs
	// and protocol overhead; a frame is one length-prefixed TCP write).
	netTxFrames   []atomic.Uint64
	netTxBytes    []atomic.Uint64
	netRxFrames   []atomic.Uint64
	netRxBytes    []atomic.Uint64
	netReconnects atomic.Uint64
	netStalls     atomic.Uint64 // sends that blocked on a full link queue

	// Reliability sub-layer counters (FailRetry only; all stay zero
	// under fail-fast or the simulated machine).
	netRetransmits atomic.Uint64   // data frames re-sent (NACK, RTO, or resume replay)
	netDupDrops    atomic.Uint64   // already-delivered frames discarded by seq
	netCrcErrors   atomic.Uint64   // frames whose checksum failed to verify
	netLinkDowns   atomic.Uint64   // established mesh links lost mid-run
	netRecoveries  atomic.Uint64   // links that came back inside the recovery window
	netWireErrs    []atomic.Uint64 // per-peer classified wire write/read errors

	// handlers grows copy-on-write (only the owner PE grows it, on the
	// first dispatch of each handler id) so lock-free readers and the
	// dispatch hot path see a stable slice.
	handlers atomic.Pointer[[]*HandlerStats]
	growMu   sync.Mutex
}

// Registry is the machine-level registry: one PE registry per
// processor. Pass it as core.Config.Metrics.
type Registry struct {
	pes []*PE
}

// New builds a registry for a machine of numPEs processors.
func New(numPEs int) *Registry {
	if numPEs < 1 {
		panic(fmt.Sprintf("metrics: numPEs must be >= 1, got %d", numPEs))
	}
	r := &Registry{pes: make([]*PE, numPEs)}
	for i := range r.pes {
		pe := &PE{
			id:          i,
			numPEs:      numPEs,
			sentMsgs:    make([]atomic.Uint64, numPEs),
			sentBytes:   make([]atomic.Uint64, numPEs),
			recvMsgs:    make([]atomic.Uint64, numPEs),
			recvBytes:   make([]atomic.Uint64, numPEs),
			netTxFrames: make([]atomic.Uint64, numPEs),
			netTxBytes:  make([]atomic.Uint64, numPEs),
			netRxFrames: make([]atomic.Uint64, numPEs),
			netRxBytes:  make([]atomic.Uint64, numPEs),
			netWireErrs: make([]atomic.Uint64, numPEs),
		}
		empty := make([]*HandlerStats, 0)
		pe.handlers.Store(&empty)
		r.pes[i] = pe
	}
	return r
}

// NumPEs reports the machine size the registry was built for.
func (r *Registry) NumPEs() int { return len(r.pes) }

// PE returns processor pe's registry.
func (r *Registry) PE(pe int) *PE { return r.pes[pe] }

// nsOf converts virtual microseconds to the integer nanoseconds the
// atomic time cells accumulate.
func nsOf(us float64) uint64 {
	if us <= 0 {
		return 0
	}
	return uint64(us * 1e3)
}

// MsgSent records one message of n bytes sent to peer dst.
func (m *PE) MsgSent(dst, n int) {
	m.sentMsgs[dst].Add(1)
	m.sentBytes[dst].Add(uint64(n))
}

// MsgRecv records one message of n bytes received from peer src.
func (m *PE) MsgRecv(src, n int) {
	m.recvMsgs[src].Add(1)
	m.recvBytes[src].Add(uint64(n))
}

// HandlerDone records one completed dispatch of handler id: message
// size, virtual duration, and whether this was an outermost dispatch
// (only outermost dispatches accumulate scheduler busy time, so nested
// dispatches are not double counted).
func (m *PE) HandlerDone(id, bytes int, us float64, outermost bool) {
	m.dispatches.Add(1)
	if outermost {
		m.busyNs.Add(nsOf(us))
	}
	h := m.handler(id)
	h.count.Add(1)
	h.bytes.Add(uint64(bytes))
	h.timeNs.Add(nsOf(us))
	h.hist.Observe(us)
}

// SchedIdle records virtual time the scheduler spent blocked waiting
// for the network.
func (m *PE) SchedIdle(us float64) { m.idleNs.Add(nsOf(us)) }

// Enqueued records one scheduler-queue enqueue and the resulting queue
// depth, maintaining the high-water mark.
func (m *PE) Enqueued(depth int) {
	m.enqueues.Add(1)
	d := uint64(depth)
	for {
		cur := m.queueHWM.Load()
		if d <= cur || m.queueHWM.CompareAndSwap(cur, d) {
			return
		}
	}
}

// PoolHit records a message allocation served from the sized-class
// buffer pool.
func (m *PE) PoolHit() { m.poolHits.Add(1) }

// PoolMiss records a message allocation that fell through to the heap.
func (m *PE) PoolMiss() { m.poolMisses.Add(1) }

// CoalesceStaged records one small message staged into a per-peer pack.
func (m *PE) CoalesceStaged() { m.coalesceStaged.Add(1) }

// CoalesceFlush records one coalesced packet put on the wire.
func (m *PE) CoalesceFlush() { m.coalescePacks.Add(1) }

// CoalesceUnpacked records one message split out of an inbound pack.
func (m *PE) CoalesceUnpacked() { m.coalesceUnpacked.Add(1) }

// NetTx records one wire frame of n bytes written to peer's link. Peers
// outside the registry's PE range (surplus converserun ranks carry
// heartbeats but no machine traffic) are ignored.
func (m *PE) NetTx(peer, n int) {
	if peer < 0 || peer >= len(m.netTxFrames) {
		return
	}
	m.netTxFrames[peer].Add(1)
	m.netTxBytes[peer].Add(uint64(n))
}

// NetRx records one wire frame of n bytes read from peer's link.
func (m *PE) NetRx(peer, n int) {
	if peer < 0 || peer >= len(m.netRxFrames) {
		return
	}
	m.netRxFrames[peer].Add(1)
	m.netRxBytes[peer].Add(uint64(n))
}

// NetReconnect records one mesh dial retry during connection setup.
func (m *PE) NetReconnect() { m.netReconnects.Add(1) }

// NetStall records one send that found the peer's link queue full and
// had to block (backpressure).
func (m *PE) NetStall() { m.netStalls.Add(1) }

// NetRetransmit records one data frame re-sent by the reliability layer
// (NACK-triggered, retransmit-timeout, or resume replay).
func (m *PE) NetRetransmit() { m.netRetransmits.Add(1) }

// NetDupDrop records one inbound data frame discarded because its
// sequence number had already been delivered.
func (m *PE) NetDupDrop() { m.netDupDrops.Add(1) }

// NetCrcError records one inbound frame whose checksum failed to verify.
func (m *PE) NetCrcError() { m.netCrcErrors.Add(1) }

// NetLinkDown records one established mesh link lost mid-run.
func (m *PE) NetLinkDown() { m.netLinkDowns.Add(1) }

// NetRecovered records one lost link that resumed inside the recovery
// window.
func (m *PE) NetRecovered() { m.netRecoveries.Add(1) }

// NetWireErr records one classified wire-level I/O error (short write,
// broken pipe, reset, timeout, ...) on peer's link. Out-of-range peers
// (surplus converserun ranks) are ignored, matching NetTx.
func (m *PE) NetWireErr(peer int) {
	if peer < 0 || peer >= len(m.netWireErrs) {
		return
	}
	m.netWireErrs[peer].Add(1)
}

// ThreadSwitch records one thread context switch.
func (m *PE) ThreadSwitch() { m.threadSwitches.Add(1) }

// ThreadCreated records one thread object creation.
func (m *PE) ThreadCreated() { m.threadsCreated.Add(1) }

// SeedDeposited records a seed handed to the local balancer.
func (m *PE) SeedDeposited() { m.seedsDeposited.Add(1) }

// SeedRooted records a seed taking root on this PE.
func (m *PE) SeedRooted() { m.seedsRooted.Add(1) }

// SeedForwarded records a seed migrated onward to another PE.
func (m *PE) SeedForwarded() { m.seedsForwarded.Add(1) }

// handler returns handler id's stats cell, growing the table on first
// use. Growth is copy-on-write: the hot path is one atomic pointer load
// plus an index.
func (m *PE) handler(id int) *HandlerStats {
	// Fast path in its own frame: growHandler stores &hs, which would
	// otherwise make the slice header escape (and allocate) on every
	// call.
	if hs := *m.handlers.Load(); id < len(hs) && hs[id] != nil {
		return hs[id]
	}
	return m.growHandler(id)
}

// growHandler extends the copy-on-write handler table to cover id.
func (m *PE) growHandler(id int) *HandlerStats {
	m.growMu.Lock()
	defer m.growMu.Unlock()
	hs := *m.handlers.Load()
	if id >= len(hs) {
		grown := make([]*HandlerStats, id+1)
		copy(grown, hs)
		hs = grown
	} else {
		hs = append([]*HandlerStats(nil), hs...)
	}
	if hs[id] == nil {
		hs[id] = &HandlerStats{}
	}
	m.handlers.Store(&hs)
	return hs[id]
}

// --- snapshots -------------------------------------------------------

// HandlerSnapshot is one handler's aggregate on one PE.
type HandlerSnapshot struct {
	Handler int
	Count   uint64
	Bytes   uint64
	// TimeUs is the total virtual time spent in this handler
	// (inclusive of nested dispatches it performed).
	TimeUs float64
	// LatencyBuckets is the per-dispatch latency histogram; bucket i
	// counts dispatches of [BucketBound(i-1), BucketBound(i)) µs.
	LatencyBuckets [NumBuckets]uint64
}

// PESnapshot is one processor's aggregates.
type PESnapshot struct {
	PE int

	SchedIdleUs float64 // virtual time blocked idle in the scheduler
	BusyUs      float64 // virtual time in outermost handler dispatches
	Dispatches  uint64
	Enqueues    uint64
	QueueHWM    uint64

	ThreadSwitches uint64
	ThreadsCreated uint64

	SeedsDeposited uint64
	SeedsRooted    uint64
	SeedsForwarded uint64

	// Pool and coalescing effectiveness (the comm fast path).
	PoolHits         uint64
	PoolMisses       uint64
	CoalesceStaged   uint64 // small messages staged into packs at send
	CoalescePacks    uint64 // coalesced packets actually sent
	CoalesceUnpacked uint64 // messages split out of inbound packs

	SentMsgs  []uint64 // indexed by peer PE
	SentBytes []uint64
	RecvMsgs  []uint64
	RecvBytes []uint64

	// Wire-level per-peer traffic on a network substrate (zero under
	// the simulated machine).
	NetTxFrames   []uint64
	NetTxBytes    []uint64
	NetRxFrames   []uint64
	NetRxBytes    []uint64
	NetReconnects uint64
	NetStalls     uint64

	// Reliability sub-layer aggregates (nonzero only under FailRetry).
	NetRetransmits uint64
	NetDupDrops    uint64
	NetCrcErrors   uint64
	NetLinkDowns   uint64
	NetRecoveries  uint64
	NetWireErrs    []uint64 // per-peer classified wire I/O errors

	Handlers []HandlerSnapshot // only handlers that ran
}

// Utilization is BusyUs / (BusyUs + SchedIdleUs), the Projections-style
// utilization measure; it reports 0 when the PE recorded nothing.
func (s *PESnapshot) Utilization() float64 {
	tot := s.BusyUs + s.SchedIdleUs
	if tot <= 0 {
		return 0
	}
	return s.BusyUs / tot
}

// TotalSentBytes sums bytes sent to all peers.
func (s *PESnapshot) TotalSentBytes() uint64 { return sum(s.SentBytes) }

// TotalRecvBytes sums bytes received from all peers.
func (s *PESnapshot) TotalRecvBytes() uint64 { return sum(s.RecvBytes) }

func sum(v []uint64) uint64 {
	var t uint64
	for _, x := range v {
		t += x
	}
	return t
}

// Snapshot is a machine-level view: every PE's aggregates, merged from
// the per-PE registries at one point in time.
type Snapshot struct {
	PEs []PESnapshot
}

// Snapshot merges all PE registries into one read-consistent view. It
// may be taken while the machine runs (each cell is read atomically) or
// after Run returns (fully consistent).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{PEs: make([]PESnapshot, len(r.pes))}
	for i, m := range r.pes {
		ps := PESnapshot{
			PE:               i,
			SchedIdleUs:      float64(m.idleNs.Load()) / 1e3,
			BusyUs:           float64(m.busyNs.Load()) / 1e3,
			Dispatches:       m.dispatches.Load(),
			Enqueues:         m.enqueues.Load(),
			QueueHWM:         m.queueHWM.Load(),
			ThreadSwitches:   m.threadSwitches.Load(),
			ThreadsCreated:   m.threadsCreated.Load(),
			SeedsDeposited:   m.seedsDeposited.Load(),
			SeedsRooted:      m.seedsRooted.Load(),
			SeedsForwarded:   m.seedsForwarded.Load(),
			PoolHits:         m.poolHits.Load(),
			PoolMisses:       m.poolMisses.Load(),
			CoalesceStaged:   m.coalesceStaged.Load(),
			CoalescePacks:    m.coalescePacks.Load(),
			CoalesceUnpacked: m.coalesceUnpacked.Load(),
			SentMsgs:         loadAll(m.sentMsgs),
			SentBytes:        loadAll(m.sentBytes),
			RecvMsgs:         loadAll(m.recvMsgs),
			RecvBytes:        loadAll(m.recvBytes),
			NetTxFrames:      loadAll(m.netTxFrames),
			NetTxBytes:       loadAll(m.netTxBytes),
			NetRxFrames:      loadAll(m.netRxFrames),
			NetRxBytes:       loadAll(m.netRxBytes),
			NetReconnects:    m.netReconnects.Load(),
			NetStalls:        m.netStalls.Load(),
			NetRetransmits:   m.netRetransmits.Load(),
			NetDupDrops:      m.netDupDrops.Load(),
			NetCrcErrors:     m.netCrcErrors.Load(),
			NetLinkDowns:     m.netLinkDowns.Load(),
			NetRecoveries:    m.netRecoveries.Load(),
			NetWireErrs:      loadAll(m.netWireErrs),
		}
		for id, h := range *m.handlers.Load() {
			if h == nil || h.count.Load() == 0 {
				continue
			}
			ps.Handlers = append(ps.Handlers, HandlerSnapshot{
				Handler:        id,
				Count:          h.count.Load(),
				Bytes:          h.bytes.Load(),
				TimeUs:         float64(h.timeNs.Load()) / 1e3,
				LatencyBuckets: h.hist.snapshot(),
			})
		}
		s.PEs[i] = ps
	}
	return s
}

func loadAll(v []atomic.Uint64) []uint64 {
	out := make([]uint64, len(v))
	for i := range v {
		out[i] = v[i].Load()
	}
	return out
}

// MessageBytesMatrix returns the PE×PE matrix of bytes sent, indexed
// [src][dst], from the senders' accounting.
func (s *Snapshot) MessageBytesMatrix() [][]uint64 {
	out := make([][]uint64, len(s.PEs))
	for i := range s.PEs {
		out[i] = append([]uint64(nil), s.PEs[i].SentBytes...)
	}
	return out
}

// HandlerTotals merges every PE's per-handler aggregates into one
// machine-wide profile, sorted by handler id.
func (s *Snapshot) HandlerTotals() []HandlerSnapshot {
	byID := map[int]*HandlerSnapshot{}
	maxID := -1
	for _, pe := range s.PEs {
		for _, h := range pe.Handlers {
			t := byID[h.Handler]
			if t == nil {
				t = &HandlerSnapshot{Handler: h.Handler}
				byID[h.Handler] = t
				if h.Handler > maxID {
					maxID = h.Handler
				}
			}
			t.Count += h.Count
			t.Bytes += h.Bytes
			t.TimeUs += h.TimeUs
			for i, c := range h.LatencyBuckets {
				t.LatencyBuckets[i] += c
			}
		}
	}
	var out []HandlerSnapshot
	for id := 0; id <= maxID; id++ {
		if t := byID[id]; t != nil {
			out = append(out, *t)
		}
	}
	return out
}
