package metrics

import (
	"sync"
	"testing"
)

func TestCountersAndSnapshot(t *testing.T) {
	r := New(3)
	m := r.PE(1)
	m.MsgSent(0, 100)
	m.MsgSent(0, 50)
	m.MsgSent(2, 8)
	m.MsgRecv(2, 64)
	m.HandlerDone(4, 32, 10.0, true)
	m.HandlerDone(4, 32, 2.5, false)
	m.SchedIdle(7.5)
	m.Enqueued(3)
	m.Enqueued(1)
	m.ThreadSwitch()
	m.ThreadCreated()
	m.SeedDeposited()
	m.SeedRooted()

	s := r.Snapshot()
	pe := s.PEs[1]
	if pe.SentMsgs[0] != 2 || pe.SentBytes[0] != 150 {
		t.Fatalf("sent to 0: %d msgs %d bytes", pe.SentMsgs[0], pe.SentBytes[0])
	}
	if pe.SentBytes[2] != 8 || pe.RecvBytes[2] != 64 {
		t.Fatalf("peer 2 accounting wrong: %v %v", pe.SentBytes, pe.RecvBytes)
	}
	if pe.TotalSentBytes() != 158 || pe.TotalRecvBytes() != 64 {
		t.Fatalf("totals: %d %d", pe.TotalSentBytes(), pe.TotalRecvBytes())
	}
	if pe.Dispatches != 2 {
		t.Fatalf("dispatches = %d", pe.Dispatches)
	}
	// Only the outermost dispatch contributes busy time.
	if pe.BusyUs < 9.99 || pe.BusyUs > 10.01 {
		t.Fatalf("BusyUs = %v, want 10", pe.BusyUs)
	}
	if pe.SchedIdleUs < 7.49 || pe.SchedIdleUs > 7.51 {
		t.Fatalf("SchedIdleUs = %v, want 7.5", pe.SchedIdleUs)
	}
	if u := pe.Utilization(); u < 0.57 || u > 0.58 {
		t.Fatalf("utilization = %v, want 10/17.5", u)
	}
	if pe.QueueHWM != 3 || pe.Enqueues != 2 {
		t.Fatalf("queue hwm=%d enqueues=%d", pe.QueueHWM, pe.Enqueues)
	}
	if pe.ThreadSwitches != 1 || pe.ThreadsCreated != 1 {
		t.Fatal("thread counters wrong")
	}
	if pe.SeedsDeposited != 1 || pe.SeedsRooted != 1 || pe.SeedsForwarded != 0 {
		t.Fatal("seed counters wrong")
	}
	if len(pe.Handlers) != 1 || pe.Handlers[0].Handler != 4 {
		t.Fatalf("handlers = %+v", pe.Handlers)
	}
	h := pe.Handlers[0]
	if h.Count != 2 || h.Bytes != 64 {
		t.Fatalf("handler count=%d bytes=%d", h.Count, h.Bytes)
	}
	if h.TimeUs < 12.49 || h.TimeUs > 12.51 {
		t.Fatalf("handler TimeUs = %v, want 12.5", h.TimeUs)
	}
	// Untouched PEs snapshot clean.
	if s.PEs[0].Dispatches != 0 || len(s.PEs[0].Handlers) != 0 {
		t.Fatal("pe 0 not clean")
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(0.5)  // bucket 0: < 1us
	h.Observe(1.0)  // bucket 1: [1,2)
	h.Observe(3.0)  // bucket 2: [2,4)
	h.Observe(1e12) // overflow: last bucket
	s := h.snapshot()
	if s[0] != 1 || s[1] != 1 || s[2] != 1 || s[NumBuckets-1] != 1 {
		t.Fatalf("buckets = %v", s)
	}
	if BucketBound(0) != 1 || BucketBound(3) != 8 {
		t.Fatalf("bounds: %v %v", BucketBound(0), BucketBound(3))
	}
}

func TestHandlerTableGrowth(t *testing.T) {
	r := New(1)
	m := r.PE(0)
	m.HandlerDone(17, 8, 1, true)
	m.HandlerDone(2, 8, 1, true)
	m.HandlerDone(17, 8, 1, true)
	hs := r.Snapshot().PEs[0].Handlers
	if len(hs) != 2 || hs[0].Handler != 2 || hs[1].Handler != 17 {
		t.Fatalf("handlers = %+v", hs)
	}
	if hs[1].Count != 2 {
		t.Fatalf("handler 17 count = %d", hs[1].Count)
	}
}

func TestHandlerTotalsAndMatrix(t *testing.T) {
	r := New(2)
	r.PE(0).HandlerDone(3, 10, 5, true)
	r.PE(1).HandlerDone(3, 10, 7, true)
	r.PE(0).MsgSent(1, 100)
	r.PE(1).MsgSent(0, 40)
	s := r.Snapshot()
	tot := s.HandlerTotals()
	if len(tot) != 1 || tot[0].Count != 2 {
		t.Fatalf("totals = %+v", tot)
	}
	if tot[0].TimeUs < 11.99 || tot[0].TimeUs > 12.01 {
		t.Fatalf("merged TimeUs = %v", tot[0].TimeUs)
	}
	mat := s.MessageBytesMatrix()
	if mat[0][1] != 100 || mat[1][0] != 40 || mat[0][0] != 0 {
		t.Fatalf("matrix = %v", mat)
	}
}

// TestConcurrentRecordAndSnapshot exercises recording from per-PE
// goroutines while another goroutine snapshots, under -race.
func TestConcurrentRecordAndSnapshot(t *testing.T) {
	const pes, iters = 4, 2000
	r := New(pes)
	var wg sync.WaitGroup
	for pe := 0; pe < pes; pe++ {
		wg.Add(1)
		go func(pe int) {
			defer wg.Done()
			m := r.PE(pe)
			for i := 0; i < iters; i++ {
				m.MsgSent((pe+1)%pes, 64)
				m.MsgRecv((pe+1)%pes, 64)
				m.HandlerDone(i%8, 64, 1.5, true)
				m.Enqueued(i % 10)
				m.SchedIdle(0.25)
			}
		}(pe)
	}
	stop := make(chan struct{})
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = r.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(stop)
	snapWG.Wait()
	s := r.Snapshot()
	for pe := 0; pe < pes; pe++ {
		if s.PEs[pe].Dispatches != iters {
			t.Fatalf("pe %d dispatches = %d", pe, s.PEs[pe].Dispatches)
		}
	}
}
