package mnet

// ControlServer is the launcher side of the rendezvous protocol,
// extracted from Launch so it can serve jobs whose workers are not
// child processes of this process: cmd/converserun wraps it around
// spawned workers, and the elastic cluster service (internal/service)
// runs one per admitted job, with conversed daemons joining the round
// as in-process nodes. One ControlServer coordinates one job: a fixed
// worker count, one token, and any number of sequential rendezvous
// rounds (a program that builds machines in sequence joins once per
// machine, like under converserun).

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ControlCallbacks connect a ControlServer to its owner. All callbacks
// may be nil; they are invoked from connection-reader goroutines and
// must be safe for concurrent use.
type ControlCallbacks struct {
	// Console receives forwarded CmiPrintf/CmiError output.
	Console func(rank int, isErr bool, text string)
	// MonitorAddr receives a worker's reported introspection endpoint.
	MonitorAddr func(rank int, addr string)
	// Fail receives the job's first fatal error (worker-reported fatal,
	// protocol violation, or — when RankLost declines to tolerate it — a
	// lost control connection). The server keeps running; stopping the
	// job is the owner's call.
	Fail func(err error)
	// RankLost is consulted when a rank's control connection is lost
	// before its round released. Returning true tolerates the loss: the
	// rank is marked dead so release barriers don't wait for it
	// (converserun's FailRetry posture, and the service's daemon-drain
	// path). Returning false — or a nil callback — escalates to Fail.
	RankLost func(rank int, err error) bool
	// Released fires when a round's release barrier completes: every
	// active node reported done and the release was broadcast.
	Released func(round int)
}

// ControlServer serves the worker side of one job's control
// connections. Construct with NewControlServer, then Serve on a
// listener owned by the caller.
type ControlServer struct {
	np    int
	ppn   int
	token string
	hb    time.Duration
	cbs   ControlCallbacks

	mu      sync.Mutex
	rounds  map[int]*round
	conns   map[net.Conn]struct{} // live worker control connections
	aborted bool

	// done suppresses failure reports during orderly shutdown, when
	// connection teardown is expected rather than diagnostic.
	done atomic.Bool
	// connWg tracks live control-connection readers so an owner can
	// drain final console frames before tearing down.
	connWg sync.WaitGroup
}

// NewControlServer builds a control server for a job of np workers,
// each hosting up to ppn PEs (0 or 1 means the classic one PE per
// process), guarded by token. hb is the worker liveness interval: a
// control connection silent for heartbeatMissFactor intervals is
// treated as a lost rank.
func NewControlServer(np, ppn int, token string, hb time.Duration, cbs ControlCallbacks) *ControlServer {
	if ppn < 1 {
		ppn = 1
	}
	if hb <= 0 {
		hb = defaultHeartbeat
	}
	return &ControlServer{
		np: np, ppn: ppn, token: token, hb: hb, cbs: cbs,
		rounds: map[int]*round{},
		conns:  map[net.Conn]struct{}{},
	}
}

// Serve accepts and serves control connections until the listener
// closes. It blocks; run it on its own goroutine.
func (s *ControlServer) Serve(ls net.Listener) {
	for {
		conn, err := ls.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.aborted {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.connWg.Add(1)
		go func() {
			defer s.connWg.Done()
			s.handleConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Shutdown marks the server as winding down: subsequent connection
// losses are expected teardown, not failures. The caller closes the
// listener itself.
func (s *ControlServer) Shutdown() { s.done.Store(true) }

// Abort is Shutdown plus force: it severs every live worker control
// connection. Shutdown alone leaves workers to notice on their own,
// which can take a full handshake timeout for a rank still blocked in
// rendezvous — its missing peer will never say hello, and no frame
// reaches it until the table broadcast. Closing the connection makes
// the worker's control reader fail the node immediately ("launcher
// connection lost"), so a doomed gang drains in milliseconds. Late
// dialers are covered too: Serve accepts and immediately closes new
// connections after Abort, which beats closing the listener — workers
// retry a refused connect with backoff until their handshake deadline,
// but an accepted-then-closed connection fails them at once. Owners
// with workers worth preserving must use Shutdown instead.
func (s *ControlServer) Abort() {
	s.done.Store(true)
	s.mu.Lock()
	s.aborted = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// Drain waits up to timeout for the connection readers to finish, so
// final console frames are delivered before the owner returns.
func (s *ControlServer) Drain(timeout time.Duration) {
	drained := make(chan struct{})
	go func() { s.connWg.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-time.After(timeout):
	}
}

func (s *ControlServer) fail(err error) {
	if s.cbs.Fail != nil {
		s.cbs.Fail(err)
	}
}

// handleConn serves one worker control connection. The rolling read
// deadline is the worker-liveness detector: workers ping every
// heartbeat interval, so heartbeatMissFactor intervals of silence mean
// the worker is wedged. A clean close is expected only after the
// worker's round was released.
func (s *ControlServer) handleConn(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	allowance := time.Duration(heartbeatMissFactor) * s.hb
	var rd *round
	rank := -1
	for {
		conn.SetReadDeadline(time.Now().Add(allowance))
		k, payload, err := readFrame(r)
		if err != nil {
			if s.done.Load() {
				return
			}
			s.mu.Lock()
			released := rd != nil && rd.released
			s.mu.Unlock()
			if released || rank < 0 {
				return // normal post-release close, or a stray connection
			}
			if isTimeout(err) {
				err = fmt.Errorf("no ping for %v (worker wedged)", allowance)
			}
			if s.cbs.RankLost != nil && s.cbs.RankLost(rank, err) {
				// Tolerated loss (converserun FailRetry, service daemon
				// drain): mark the rank dead so barriers don't wait on it.
				s.MarkDead(rank)
				return
			}
			s.fail(fmt.Errorf("mnet: lost control connection to worker rank %d: %v", rank, err))
			return
		}
		switch k {
		case fHello:
			var h helloMsg
			if err := decodeJSON(k, payload, &h); err != nil {
				s.fail(err)
				return
			}
			if err := s.hello(conn, h); err != nil {
				s.fail(err)
				return
			}
			rank = h.Rank
			s.mu.Lock()
			rd = s.rounds[h.Round]
			s.mu.Unlock()
		case fMeshOK:
			var m meshOKMsg
			if err := decodeJSON(k, payload, &m); err != nil {
				s.fail(err)
				return
			}
			s.meshOK(m)
		case fDone:
			var d doneMsg
			if err := decodeJSON(k, payload, &d); err != nil {
				s.fail(err)
				return
			}
			s.workerDone(d)
		case fConsole:
			var c consoleMsg
			if err := decodeJSON(k, payload, &c); err != nil {
				s.fail(err)
				return
			}
			if s.cbs.Console != nil {
				s.cbs.Console(c.Rank, c.Err, c.Text)
			}
		case fFail:
			var f failMsg
			if decodeJSON(k, payload, &f) == nil {
				s.fail(fmt.Errorf("mnet: worker rank %d reports fatal error: %s", f.Rank, f.Text))
			} else {
				s.fail(fmt.Errorf("mnet: worker rank %d reports fatal error", rank))
			}
			return
		case fMonitorAddr:
			var m monitorAddrMsg
			if err := decodeJSON(k, payload, &m); err != nil {
				s.fail(err)
				return
			}
			if s.cbs.MonitorAddr != nil {
				s.cbs.MonitorAddr(m.Rank, m.Addr)
			}
		case fPing:
			// Receiving it already refreshed the deadline.
		default:
			s.fail(fmt.Errorf("mnet: unexpected %v frame from worker rank %d", k, rank))
			return
		}
	}
}

// hello registers one worker in its rendezvous round; the NP-th hello
// completes the round's membership and broadcasts the node table.
func (s *ControlServer) hello(conn net.Conn, h helloMsg) error {
	if h.Magic != protoMagic || h.Version != protoVersion {
		return fmt.Errorf("mnet: worker hello with magic %q version %d (launcher speaks %q version %d; mixed binaries?)",
			h.Magic, h.Version, protoMagic, protoVersion)
	}
	if h.Token != s.token {
		return fmt.Errorf("mnet: worker hello with wrong job token (stray connection?)")
	}
	if h.Rank < 0 || h.Rank >= s.np {
		return fmt.Errorf("mnet: worker hello with rank %d outside job of %d", h.Rank, s.np)
	}
	if h.PEs < 1 || h.PEs > s.np*s.ppn {
		return fmt.Errorf("mnet: program builds a %d-PE machine but the job holds at most %d (%d workers × %d PEs per node; raise converserun -np/-nodes or -ppn)",
			h.PEs, s.np*s.ppn, s.np, s.ppn)
	}
	if h.Nodes < 1 || h.Nodes > s.np {
		return fmt.Errorf("mnet: program needs %d node processes but the job has only %d workers (raise converserun -np/-nodes)",
			h.Nodes, s.np)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rd := s.rounds[h.Round]
	if rd == nil {
		rd = &round{
			num: h.Round, pes: h.PEs, nodes: h.Nodes,
			addrs:   make([]string, s.np),
			conns:   make([]net.Conn, s.np),
			doneSet: map[int]bool{},
		}
		s.rounds[h.Round] = rd
	}
	if h.PEs != rd.pes || h.Nodes != rd.nodes {
		return fmt.Errorf("mnet: round %d: rank %d builds a %d-PE/%d-node machine but others build %d-PE/%d-node (drifted SPMD program?)",
			h.Round, h.Rank, h.PEs, h.Nodes, rd.pes, rd.nodes)
	}
	if rd.conns[h.Rank] != nil {
		return fmt.Errorf("mnet: round %d: duplicate hello from rank %d", h.Round, h.Rank)
	}
	rd.conns[h.Rank] = conn
	rd.addrs[h.Rank] = h.Addr
	rd.hellos++
	if rd.hellos == s.np {
		tbl := tableMsg{Round: rd.num, PEs: rd.pes, Addrs: rd.addrs}
		for _, c := range rd.conns {
			if err := writeJSONFrame(c, fTable, tbl); err != nil {
				return fmt.Errorf("mnet: broadcasting node table: %w", err)
			}
		}
	}
	return nil
}

// meshOK counts mesh completions; the NP-th releases the go barrier.
func (s *ControlServer) meshOK(m meshOKMsg) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rd := s.rounds[m.Round]
	if rd == nil {
		return
	}
	rd.meshoks++
	if rd.meshoks == s.np {
		for _, c := range rd.conns {
			if c != nil {
				writeJSONFrame(c, fGo, goMsg{Round: rd.num})
			}
		}
	}
}

// workerDone records an active node's completed drivers; when all of
// the round's node processes are done, every worker (surplus included)
// is released.
func (s *ControlServer) workerDone(d doneMsg) {
	s.mu.Lock()
	rd := s.rounds[d.Round]
	if rd == nil || rd.released {
		s.mu.Unlock()
		return
	}
	if d.Rank < rd.nodes {
		rd.doneSet[d.Rank] = true
	}
	released := s.maybeRelease(rd)
	s.mu.Unlock()
	if released && s.cbs.Released != nil {
		s.cbs.Released(rd.num)
	}
}

// maybeRelease broadcasts the release once every active node is done.
// Caller holds mu; reports whether the release happened on this call.
func (s *ControlServer) maybeRelease(rd *round) bool {
	if rd.released || len(rd.doneSet) != rd.nodes {
		return false
	}
	rd.released = true
	for _, c := range rd.conns {
		if c != nil {
			writeJSONFrame(c, fRelease, releaseMsg{Round: rd.num})
		}
	}
	return true
}

// MarkDead treats a dead rank as done in every round: the release
// barrier must not wait forever on a rank that can never report, or
// every survivor would hang in Finish until the timeout.
func (s *ControlServer) MarkDead(rank int) {
	var released []int
	s.mu.Lock()
	for _, rd := range s.rounds {
		if rd.released || rank >= rd.nodes {
			continue
		}
		rd.doneSet[rank] = true
		if s.maybeRelease(rd) {
			released = append(released, rd.num)
		}
	}
	s.mu.Unlock()
	if s.cbs.Released != nil {
		for _, num := range released {
			s.cbs.Released(num)
		}
	}
}

// Describe summarizes the rounds' progress for timeout reports.
func (s *ControlServer) Describe() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.rounds) == 0 {
		return "no worker reached the rendezvous"
	}
	out := ""
	for _, rd := range s.rounds {
		if out != "" {
			out += "; "
		}
		out += fmt.Sprintf("round %d (%d PEs on %d nodes): %d/%d hellos, %d/%d meshok, %d/%d done",
			rd.num, rd.pes, rd.nodes, rd.hellos, s.np, rd.meshoks, s.np, len(rd.doneSet), rd.nodes)
	}
	return out
}
