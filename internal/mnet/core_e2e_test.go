package mnet_test

// End-to-end: the full Converse core (handlers, scheduler, coalescing)
// running on in-process mnet nodes through core.NewMachineOn — the same
// seam converserun jobs use, without spawning processes.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"converse/internal/core"
	"converse/internal/mnet"
)

func TestCoreMachineOnNet(t *testing.T) {
	const pes = 3
	const msgsPerPE = 200
	addr, _ := mnet.StartTestJob(t, pes, time.Second)

	var wg sync.WaitGroup
	errs := make([]error, pes)
	counts := make([]int, pes)
	for rank := 0; rank < pes; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			n, err := mnet.Join(mnet.Config{
				Launcher: addr, Token: mnet.TestToken,
				Rank: rank, NP: pes, PEs: pes, Round: 1,
				Handshake: 10 * time.Second,
			})
			if err != nil {
				errs[rank] = err
				return
			}
			// Coalescing on: PR 2's packs must survive the wire unchanged.
			cm := core.NewMachineOn(n, core.Config{
				PEs: pes, Watchdog: 30 * time.Second,
				Coalesce: core.CoalesceConfig{Enabled: true},
			})
			var hCount, hStop int
			hCount = cm.RegisterHandler(func(p *core.Proc, msg []byte) {
				counts[rank]++
				if counts[rank] == (pes-1)*msgsPerPE {
					// All peers' traffic arrived: tell everyone to stop.
					for dst := 0; dst < pes; dst++ {
						p.SyncSend(dst, core.MakeMsg(hStop, nil))
					}
				}
			})
			stops := 0
			hStop = cm.RegisterHandler(func(p *core.Proc, msg []byte) {
				if stops++; stops == pes {
					p.ExitScheduler()
				}
			})
			errs[rank] = cm.Run(func(p *core.Proc) {
				for dst := 0; dst < pes; dst++ {
					if dst == rank {
						continue
					}
					for i := 0; i < msgsPerPE; i++ {
						p.SyncSend(dst, core.MakeMsg(hCount, []byte(fmt.Sprintf("m%d", i))))
					}
				}
				p.Scheduler(-1)
			})
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Errorf("rank %d: %v", rank, err)
		}
	}
	for rank, got := range counts {
		if want := (pes - 1) * msgsPerPE; got != want {
			t.Errorf("rank %d delivered %d messages, want %d", rank, got, want)
		}
	}
}

func TestCoreRunNetPropagatesDriverPanic(t *testing.T) {
	const pes = 2
	addr, _ := mnet.StartTestJob(t, pes, time.Second)

	var wg sync.WaitGroup
	errs := make([]error, pes)
	for rank := 0; rank < pes; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			n, err := mnet.Join(mnet.Config{
				Launcher: addr, Token: mnet.TestToken,
				Rank: rank, NP: pes, PEs: pes, Round: 1,
				Handshake: 10 * time.Second,
			})
			if err != nil {
				errs[rank] = err
				return
			}
			cm := core.NewMachineOn(n, core.Config{PEs: pes, Watchdog: 30 * time.Second})
			errs[rank] = cm.Run(func(p *core.Proc) {
				if p.MyPe() == 1 {
					panic("driver exploded")
				}
				p.Scheduler(-1) // would wait forever without failure propagation
			})
		}(rank)
	}
	wg.Wait()
	if errs[1] == nil {
		t.Error("panicking driver's Run returned nil")
	}
	if errs[0] == nil {
		t.Error("peer of the panicking driver hung or returned nil; failure did not propagate")
	}
}
